(* Quickstart: build a fault-tolerant spanner and check it survives faults.

   Run with:  dune exec examples/quickstart.exe

   The library's three-step workflow:
     1. get a graph (here: a random G(n,p), via Generators);
     2. build an f-fault-tolerant (2k-1)-spanner (Poly_greedy - the
        polynomial-time algorithm of Dinitz-Robelle, PODC 2020);
     3. verify/measure it (Verify). *)

let () =
  let rng = Rng.create ~seed:42 in

  (* 1. A random connected graph on 150 vertices, ~1100 edges. *)
  let g = Generators.connected_gnp rng ~n:150 ~p:0.1 in
  Printf.printf "input graph:   %d vertices, %d edges\n" (Graph.n g) (Graph.m g);

  (* 2. A 2-fault-tolerant 3-spanner (k = 2, so stretch 2k-1 = 3). *)
  let k = 2 and f = 2 in
  let spanner = Poly_greedy.build ~mode:Fault.VFT ~k ~f g in
  Printf.printf "spanner:       %d edges (%.0f%% of the input)\n"
    spanner.Selection.size
    (100. *. float_of_int spanner.Selection.size /. float_of_int (Graph.m g));
  Printf.printf "paper bound:   %.0f edges (Theorem 8: O(k f^{1-1/k} n^{1+1/k}))\n"
    (Bounds.poly_greedy_size ~k ~f ~n:(Graph.n g));

  (* 3. Knock out up to f vertices, adversarially, and check the stretch. *)
  let stretch = float_of_int ((2 * k) - 1) in
  let report =
    Verify.adversarial
      ~cfg:(Verify.config ~rng ~trials:500 ())
      spanner ~mode:Fault.VFT ~stretch ~f
  in
  (match report.Verify.violation with
  | None ->
      Printf.printf "verification:  %d adversarial fault sets, no violation\n"
        report.Verify.checked
  | Some v ->
      Printf.printf "verification:  VIOLATION %s\n"
        (Format.asprintf "%a" Verify.pp_violation v));

  (* Bonus: what actually happens to distances when two vertices die? *)
  let fault = Fault.random rng Fault.VFT g ~f in
  Printf.printf "sample fault:  %s -> worst stretch %.2f (allowed %.0f)\n"
    (Format.asprintf "%a" Fault.pp fault)
    (Verify.max_stretch_under_fault spanner fault)
    stretch
