(* Distributed constructions: LOCAL vs CONGEST on the same network.

   Run with:  dune exec examples/distributed_demo.exe

   Section 5 of the paper gives two distributed algorithms.  This example
   runs both on the round-accurate simulator over a 16x16 torus (a classic
   distributed-computing topology) and prints what each model pays:
   the LOCAL algorithm finishes in O(log n) rounds but ships whole cluster
   topologies in single messages; the CONGEST algorithm respects an
   O(log n)-bit message budget and pays more rounds instead. *)

let () =
  let rng = Rng.create ~seed:11 in
  let g = Generators.torus ~rows:16 ~cols:16 in
  let k = 2 and f = 1 in
  Printf.printf "network: 16x16 torus, %d nodes, %d links; target: %d-VFT %d-spanner\n"
    (Graph.n g) (Graph.m g) f ((2 * k) - 1);

  (* ------------------------- LOCAL (Theorem 12) --------------------- *)
  let local = Local_spanner.build rng ~mode:Fault.VFT ~k ~f g in
  let d = local.Local_spanner.decomposition in
  Printf.printf "\n[LOCAL]\n";
  Printf.printf "  decomposition: %d partitions, %d rounds, %.1f%% of edges padded\n"
    (Array.length d.Decomposition.partitions)
    d.Decomposition.rounds
    (100. *. Decomposition.coverage d);
  Printf.printf "  gather/scatter: %d + %d rounds over trees of depth <= %d\n"
    local.Local_spanner.gather_rounds local.Local_spanner.scatter_rounds
    d.Decomposition.max_depth;
  Printf.printf "  total rounds: %d (paper: O(log n); log2 n = %.1f)\n"
    local.Local_spanner.total_rounds
    (log (float_of_int (Graph.n g)) /. log 2.);
  Printf.printf "  spanner size: %d edges\n" local.Local_spanner.selection.Selection.size;
  Printf.printf "  largest message: %d bits - unbounded messages are the point of LOCAL\n"
    local.Local_spanner.stats.Net.max_message_bits;

  (* ------------------------ CONGEST (Theorem 15) -------------------- *)
  let congest = Congest_ft.build rng ~c:0.5 ~mode:Fault.VFT ~k ~f g in
  Printf.printf "\n[CONGEST]\n";
  Printf.printf "  word size: %d bits per message (O(log n))\n" congest.Congest_ft.word_bits;
  Printf.printf "  DK11 iterations: %d Baswana-Sen instances in parallel\n"
    congest.Congest_ft.iterations;
  Printf.printf "  rounds: %d ship-participation + %d scheduled = %d total\n"
    congest.Congest_ft.phase1_rounds congest.Congest_ft.phase2_rounds
    congest.Congest_ft.total_rounds;
  Printf.printf "  busiest link carried %d instances in one step (paper: O(f log n))\n"
    congest.Congest_ft.max_overlap;
  Printf.printf "  spanner size: %d edges (CONGEST pays a ~f log n size factor)\n"
    congest.Congest_ft.selection.Selection.size;

  (* --------------------------- validation --------------------------- *)
  Printf.printf "\n[validation: 200 adversarial single-node failures each]\n";
  List.iter
    (fun (name, sel) ->
      let report =
        Verify.adversarial
          ~cfg:(Verify.config ~rng ~trials:200 ())
          sel ~mode:Fault.VFT
          ~stretch:(float_of_int ((2 * k) - 1))
          ~f
      in
      Printf.printf "  %-10s %s\n" name
        (if Verify.ok report then "ok" else "VIOLATED"))
    [
      ("LOCAL", local.Local_spanner.selection);
      ("CONGEST", congest.Congest_ft.selection);
    ]
