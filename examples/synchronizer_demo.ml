(* Synchronizers over spanner skeletons - the original application of
   spanners (Peleg-Ullman 1989), with the fault-tolerance twist this
   paper's construction enables.

   Run with:  dune exec examples/synchronizer_demo.exe
   Optionally pass --chaos SPEC (e.g. --chaos drop=0.2,dup=0.05) to run
   the same workload over an unreliable network: the reliable-delivery
   layer retransmits until every safety message lands, so the pulses
   still complete - at a message premium the table makes visible.

   An asynchronous network emulates synchronous pulses with an alpha
   synchronizer: a node advances once all its skeleton neighbors reported
   "safe".  The skeleton choice trades three quantities:

     messages/pulse ~ 2|skeleton|,   skew ~ skeleton stretch,
     and - when nodes crash - survival = skeleton fault tolerance.

   We run the same 10-pulse workload over four skeletons, then repeat it
   with two crashed routers. *)

let parse_chaos_argv () =
  let rec go = function
    | [] -> None
    | "--chaos" :: spec :: _ -> (
        match Chaos.parse_spec spec with
        | Ok plan -> Some plan
        | Error msg ->
            prerr_endline msg;
            exit 2)
    | _ :: rest -> go rest
  in
  go (Array.to_list Sys.argv)

let () =
  let chaos = parse_chaos_argv () in
  let rng = Rng.create ~seed:33 in
  let g = Generators.connected_gnp rng ~n:120 ~p:0.08 in
  Printf.printf "network: n=%d m=%d, 10 pulses, async delays U[0.1, 1.0]\n"
    (Graph.n g) (Graph.m g);
  (match chaos with
  | None -> ()
  | Some plan ->
      Printf.printf "chaos: %s (reliable delivery armed)\n"
        (Format.asprintf "%a" Chaos.pp_plan plan));

  (* Skeleton candidates. *)
  let bfs_tree =
    let dist = Bfs.distances g 0 in
    let ids = ref [] in
    for v = 1 to Graph.n g - 1 do
      let best = ref (-1) in
      Graph.iter_neighbors g v (fun y id ->
          if dist.(y) = dist.(v) - 1 && !best < 0 then best := id);
      if !best >= 0 then ids := !best :: !ids
    done;
    Selection.of_ids g !ids
  in
  let skeletons =
    [
      ("all edges (plain alpha)", Selection.full g);
      ("BFS spanning tree", bfs_tree);
      ("3-spanner (f=0)", Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:0 g);
      ("2-FT 3-spanner (this paper)", Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g);
    ]
  in

  let show ?failures title =
    Printf.printf "\n[%s]\n" title;
    Printf.printf "%-30s %8s %10s %8s %8s %10s %8s\n" "skeleton" "edges"
      "messages" "pulses" "skew" "connected" "retrans";
    List.iter
      (fun (name, skel) ->
        let rep =
          Synchronizer.run (Rng.create ~seed:5) ?failures ?chaos ~pulses:10
            ~skeleton:skel g
        in
        Printf.printf "%-30s %8d %10d %8d %8.2f %10b %8d\n" name
          rep.Synchronizer.skeleton_edges rep.Synchronizer.messages
          rep.Synchronizer.pulses rep.Synchronizer.max_skew
          rep.Synchronizer.survivors_connected rep.Synchronizer.retransmits)
      skeletons
  in

  show "fault-free";

  (* Crash two busy routers mid-run. *)
  let by_degree = Array.init (Graph.n g) (fun v -> (Graph.degree g v, v)) in
  Array.sort (fun a b -> compare b a) by_degree;
  let victims = [ snd by_degree.(0); snd by_degree.(1) ] in
  show
    ~failures:(2.5, victims)
    (Printf.sprintf "crashing the 2 busiest routers (%d, %d) at t=2.5"
       (List.nth victims 0) (List.nth victims 1));

  Printf.printf
    "\nReading the tables: the tree is cheapest but one crash partitions it\n\
     (unbounded skew between fragments); the plain 3-spanner usually\n\
     survives a crash but offers no guarantee; the 2-fault-tolerant\n\
     spanner keeps the surviving network connected with bounded skew, at a\n\
     modest message premium - the paper's object doing its job.\n"
