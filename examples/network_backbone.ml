(* Network backbone design: the scenario that motivates fault-tolerant
   spanners in the paper's introduction.

   Run with:  dune exec examples/network_backbone.exe

   A provider has point-to-point links between 250 sites (a random
   geometric graph; link cost = Euclidean distance).  It wants to lease a
   sparse backbone such that, even with any two routers down, every
   surviving pair of sites still communicates over a route at most 3x its
   optimal length.  That is exactly a 2-vertex-fault-tolerant 3-spanner.

   The example compares the candidate constructions on cost and
   resilience, then stress-tests the winner with router failures. *)

let () =
  let rng = Rng.create ~seed:7 in
  let g =
    Generators.ensure_connected rng
      (Generators.random_geometric rng ~n:250 ~radius:0.12 ~euclidean_weights:true)
  in
  Printf.printf "topology: %d sites, %d links, total length %.2f\n" (Graph.n g)
    (Graph.m g) (Graph.total_weight g);

  let k = 2 and f = 2 in
  let stretch = float_of_int ((2 * k) - 1) in
  let candidates =
    [
      ("full mesh (no sparsification)", Selection.full g);
      ("classic greedy (not fault-tolerant)", Classic_greedy.build ~k g);
      ("dk11 + baswana-sen", Dk11.build rng ~mode:Fault.VFT ~k ~f g);
      ("greedy-poly (this paper)", Poly_greedy.build ~mode:Fault.VFT ~k ~f g);
    ]
  in

  Printf.printf "\n%-38s %8s %10s %14s\n" "backbone" "links" "length" "worst stretch";
  List.iter
    (fun (name, sel) ->
      (* worst stretch over 300 random 2-router failures *)
      let worst = ref 1.0 in
      let probe_rng = Rng.create ~seed:99 in
      for _ = 1 to 300 do
        let fault = Fault.random_adversarial probe_rng Fault.VFT g ~f in
        let s = Verify.max_stretch_under_fault sel fault in
        if s > !worst then worst := s
      done;
      let pretty_worst =
        if !worst = infinity then "DISCONNECTED" else Printf.sprintf "%.2f" !worst
      in
      Printf.printf "%-38s %8d %10.2f %14s\n" name sel.Selection.size
        (Selection.weight sel) pretty_worst)
    candidates;

  Printf.printf
    "\nThe non-fault-tolerant greedy is cheapest but a single failure can\n\
     disconnect it or blow up latency; the paper's greedy pays a modest\n\
     premium for a guaranteed %gx bound under any %d failures.\n"
    stretch f;

  (* Stress test the chosen backbone: all single and double failures of the
     10 highest-degree routers (the realistic worry). *)
  let backbone = List.assoc "greedy-poly (this paper)" candidates in
  let by_degree = Array.init (Graph.n g) (fun v -> (Graph.degree g v, v)) in
  Array.sort (fun a b -> compare b a) by_degree;
  let hubs = Array.to_list (Array.map snd (Array.sub by_degree 0 10)) in
  let worst = ref 1.0 and cases = ref 0 in
  List.iter
    (fun h1 ->
      List.iter
        (fun h2 ->
          if h1 < h2 then begin
            incr cases;
            let s =
              Verify.max_stretch_under_fault backbone (Fault.of_vertices [ h1; h2 ])
            in
            if s > !worst then worst := s
          end)
        hubs)
    hubs;
  Printf.printf
    "hub stress test: %d double-failures of the 10 busiest routers, worst\n\
     route stretch %.2f (guarantee: %.0f)\n"
    !cases !worst stretch
