(* Approximate distance queries over a fault-tolerant spanner.

   Run with:  dune exec examples/distance_oracle.exe

   Spanners were introduced for exactly this kind of stack (the paper's
   introduction cites Thorup-Zwick distance oracles first among the
   applications):

     graph  --(f-FT spanner)-->  sparse subgraph  --(TZ oracle)-->  queries

   The oracle answers in O(k) time from O(k n^{1+1/k}) space with stretch
   2k-1 relative to the graph it indexes.  Indexing the fault-tolerant
   spanner instead of the raw graph multiplies the guarantee by the
   spanner's stretch but shrinks the indexed graph - and the spanner's
   fault tolerance means the sparse structure still carries every distance
   (approximately) after up to f vertices die. *)

let () =
  let rng = Rng.create ~seed:21 in
  let g =
    Generators.with_uniform_weights rng
      (Generators.connected_gnp rng ~n:400 ~p:0.06)
      ~lo:1.0 ~hi:10.0
  in
  let k = 2 and f = 2 in
  Printf.printf "graph: n=%d m=%d\n" (Graph.n g) (Graph.m g);

  (* The sparse, fault-tolerant backbone. *)
  let spanner = Poly_greedy.build ~mode:Fault.VFT ~k ~f g in
  let sub = Selection.to_subgraph spanner in
  Printf.printf "FT spanner: %d edges (%.0f%%)\n" spanner.Selection.size
    (100. *. float_of_int spanner.Selection.size /. float_of_int (Graph.m g));

  (* Oracles over the raw graph and over the spanner. *)
  let oracle_raw = Oracle.build rng ~k g in
  let oracle_spanner = Oracle.build rng ~k sub.Subgraph.graph in
  Printf.printf "oracle storage: %d entries on G, %d entries on the spanner\n"
    (Oracle.storage oracle_raw)
    (Oracle.storage oracle_spanner);

  (* Compare answers against the truth on sampled pairs. *)
  let trials = 2000 in
  let worst_raw = ref 1.0 and worst_span = ref 1.0 in
  let sum_raw = ref 0. and sum_span = ref 0. in
  let counted = ref 0 in
  for _ = 1 to trials do
    let u = Rng.int rng (Graph.n g) and v = Rng.int rng (Graph.n g) in
    if u <> v then begin
      let exact = (Dijkstra.distances g u).(v) in
      if exact < infinity then begin
        incr counted;
        let r1 = Oracle.query oracle_raw u v /. exact in
        let r2 = Oracle.query oracle_spanner u v /. exact in
        sum_raw := !sum_raw +. r1;
        sum_span := !sum_span +. r2;
        if r1 > !worst_raw then worst_raw := r1;
        if r2 > !worst_span then worst_span := r2
      end
    end
  done;
  let fc = float_of_int !counted in
  Printf.printf "\n%-28s %12s %12s %14s\n" "oracle" "mean stretch" "max stretch"
    "guarantee";
  Printf.printf "%-28s %12.3f %12.3f %14.0f\n" "TZ on G" (!sum_raw /. fc) !worst_raw
    (float_of_int ((2 * k) - 1));
  Printf.printf "%-28s %12.3f %12.3f %14.0f\n" "TZ on FT spanner"
    (!sum_span /. fc) !worst_span
    (float_of_int (((2 * k) - 1) * ((2 * k) - 1)));

  Printf.printf
    "\nObserved stretch sits far below the composed worst case; the spanner\n\
     layer costs almost nothing on average while making the indexed graph\n\
     %d-fault-tolerant and %.0f%% smaller.\n"
    f
    (100. -. (100. *. float_of_int spanner.Selection.size /. float_of_int (Graph.m g)))
