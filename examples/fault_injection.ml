(* Fault injection study: how much fault tolerance do you need?

   Run with:  dune exec examples/fault_injection.exe

   Builds f-fault-tolerant spanners of one network for f = 0..4 and
   replays the same battery of failure scenarios against each, reporting
   survival (no disconnection among surviving pairs) and worst stretch.
   The table shows the core trade-off: each +1 of tolerated faults costs
   edges (~f^{1/2} for k=2) and buys survival against one more failure.

   The scenario batteries are embarrassingly parallel, so they run on a
   persistent Exec domain pool shared by every row; FTSPAN_JOBS=4 (or any
   N >= 2) fans the sweeps out without changing a digit of the table. *)

let () =
  Exec.Pool.with_pool ~domains:(Exec.default_jobs ()) @@ fun pool ->
  let rng = Rng.create ~seed:123 in
  let g = Generators.barabasi_albert rng ~n:300 ~attach:4 in
  let k = 2 in
  let stretch = float_of_int ((2 * k) - 1) in
  Printf.printf
    "network: preferential-attachment graph, n=%d m=%d (hubs make it fragile)\n"
    (Graph.n g) (Graph.m g);

  (* The failure battery: 150 adversarial scenarios at each severity. *)
  let severities = [ 1; 2; 3 ] in
  let scenarios =
    List.map
      (fun severity ->
        let r = Rng.create ~seed:(1000 + severity) in
        ( severity,
          Array.init 150 (fun _ -> Fault.random_adversarial r Fault.VFT g ~f:severity) ))
      severities
  in

  Printf.printf "\n%4s %8s | %s\n" "f" "edges"
    "per failure severity: %% scenarios within stretch / worst stretch";
  Printf.printf "%4s %8s |" "" "";
  List.iter (fun s -> Printf.printf "   %8s" (Printf.sprintf "%d faults" s)) severities;
  print_newline ();

  List.iter
    (fun f ->
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k ~f g in
      Printf.printf "%4d %8d |" f sel.Selection.size;
      List.iter
        (fun (_, faults) ->
          let good = ref 0 in
          Array.iter
            (fun s -> if s <= stretch +. 1e-9 then incr good)
            (Verify.stretch_many ~cfg:(Verify.config ~pool ()) sel faults);
          Printf.printf "   %7.0f%%" (100. *. float_of_int !good /. 150.))
        scenarios;
      print_newline ())
    [ 0; 1; 2; 3; 4 ];

  Printf.printf
    "\nReading the table: a spanner built for f faults keeps every scenario\n\
     with <= f failures within the stretch guarantee (its column reads 100%%),\n\
     while scenarios above its budget may exceed it - and f=0 (the classic\n\
     greedy) degrades immediately.  Rows confirm Theorems 5/8: tolerance is\n\
     bought with edges, sublinearly in f.\n"
