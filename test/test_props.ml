(* Property-based tests (qcheck, run under alcotest): randomized invariants
   over the core data structures and algorithms.

   The generators draw small random graphs so the expensive oracles
   (exhaustive fault enumeration, the exact Length-Bounded Cut solver) stay
   cheap per case while the case count stays high. *)

let seeded_rng seed = Rng.create ~seed

(* ----------------------- graph generators ---------------------------- *)

(* A random connected unit-weight graph described by (seed, n, density). *)
let arb_graph_desc =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "(seed=%d, n=%d, p=%.2f)" seed n p)
    QCheck.Gen.(
      triple (int_bound 100_000) (int_range 4 24) (float_range 0.1 0.6))

let graph_of (seed, n, p) = Generators.connected_gnp (seeded_rng seed) ~n ~p

let weighted_graph_of (seed, n, p) =
  let r = seeded_rng (seed + 77) in
  Generators.with_uniform_weights r (graph_of (seed, n, p)) ~lo:0.25 ~hi:4.0

(* --------------------------- properties ------------------------------ *)

let prop_bfs_dist_matches_path_hops =
  QCheck.Test.make ~count:60 ~name:"bfs: extracted path length = distance"
    arb_graph_desc (fun desc ->
      let g = graph_of desc in
      let n = Graph.n g in
      let d = Bfs.distances g 0 in
      let ok = ref true in
      for v = 0 to n - 1 do
        if v <> 0 then begin
          match Bfs.hop_bounded_path g ~src:0 ~dst:v ~max_hops:n with
          | Some p ->
              if Path.hops p <> d.(v) || not (Path.is_valid g p) then ok := false
          | None -> if d.(v) >= 0 then ok := false
        end
      done;
      !ok)

let prop_dijkstra_triangle_inequality =
  QCheck.Test.make ~count:40 ~name:"dijkstra: distances satisfy triangle inequality"
    arb_graph_desc (fun desc ->
      let g = weighted_graph_of desc in
      let n = Graph.n g in
      let d0 = Dijkstra.distances g 0 in
      let ok = ref true in
      Graph.iter_edges g (fun e ->
          if d0.(e.Graph.u) +. e.Graph.w +. 1e-9 < d0.(e.Graph.v) then ok := false;
          if d0.(e.Graph.v) +. e.Graph.w +. 1e-9 < d0.(e.Graph.u) then ok := false);
      ignore n;
      !ok)

let prop_dijkstra_vs_bfs_unit =
  QCheck.Test.make ~count:40 ~name:"dijkstra = bfs on unit weights" arb_graph_desc
    (fun desc ->
      let g = graph_of desc in
      let db = Bfs.distances g 0 in
      let dd = Dijkstra.distances g 0 in
      let ok = ref true in
      Array.iteri
        (fun v bd ->
          let expect = if bd < 0 then infinity else float_of_int bd in
          if dd.(v) <> expect then ok := false)
        db;
      !ok)

let prop_lbc_yes_certificate =
  QCheck.Test.make ~count:60 ~name:"lbc: YES certificate is a genuine cut"
    (QCheck.pair arb_graph_desc (QCheck.make QCheck.Gen.(int_bound 1000)))
    (fun (desc, pick) ->
      let g = graph_of desc in
      let n = Graph.n g in
      let u = pick mod n and v = (pick / n) mod n in
      if u = v then true
      else
        List.for_all
          (fun mode ->
            match Lbc.decide ~mode g ~u ~v ~t:3 ~alpha:2 with
            | Lbc.Yes { cut } -> Lbc_exact.is_cut ~mode g ~u ~v ~t:3 cut
            | Lbc.No _ -> true)
          [ Fault.VFT; Fault.EFT ])

let prop_lbc_gap_theorem4 =
  QCheck.Test.make ~count:50 ~name:"lbc: Theorem 4 gap promise" arb_graph_desc
    (fun desc ->
      let g = graph_of desc in
      let n = Graph.n g in
      let u = 0 and v = n - 1 in
      let t = 3 and alpha = 1 in
      let verdict = Lbc.decide ~mode:Fault.VFT g ~u ~v ~t ~alpha in
      (match Lbc_exact.min_cut ~mode:Fault.VFT g ~u ~v ~t ~limit:alpha with
      | Some _ -> ( match verdict with Lbc.Yes _ -> true | Lbc.No _ -> false)
      | None -> true)
      &&
      (* soundness side: if LBC said YES its certificate already witnesses a
         cut of size <= alpha * t, consistent with the gap *)
      match verdict with
      | Lbc.Yes { cut } -> List.length cut <= alpha * t
      | Lbc.No _ -> true)

let prop_poly_greedy_spanner_under_random_faults =
  QCheck.Test.make ~count:25 ~name:"poly greedy: sampled fault sets never violated"
    arb_graph_desc (fun desc ->
      let g = graph_of desc in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
      let r = seeded_rng 5 in
      Verify.ok (Verify.random ~cfg:(Verify.config ~rng:r ~trials:20 ()) sel ~mode:Fault.VFT ~stretch:3.0 ~f:1)
      && Verify.ok
           (Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:20 ()) sel ~mode:Fault.VFT ~stretch:3.0 ~f:1))

let prop_poly_greedy_exhaustive_f1 =
  QCheck.Test.make ~count:12 ~name:"poly greedy: exhaustive f=1 VFT"
    arb_graph_desc (fun desc ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 13, p) in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
      Verify.ok (Verify.exhaustive sel ~mode:Fault.VFT ~stretch:3.0 ~f:1))

let prop_poly_greedy_weighted_exhaustive =
  QCheck.Test.make ~count:10 ~name:"poly greedy: weighted exhaustive f=1 (Thm 10)"
    arb_graph_desc (fun desc ->
      let seed, n, p = desc in
      let g = weighted_graph_of (seed, min n 12, p) in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
      Verify.ok (Verify.exhaustive sel ~mode:Fault.VFT ~stretch:3.0 ~f:1))

let prop_poly_greedy_eft_exhaustive =
  QCheck.Test.make ~count:8 ~name:"poly greedy: exhaustive f=1 EFT" arb_graph_desc
    (fun desc ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 11, p) in
      let sel = Poly_greedy.build ~mode:Fault.EFT ~k:2 ~f:1 g in
      Verify.ok
        (Verify.exhaustive ~cfg:(Verify.config ~max_sets:1e5 ()) sel ~mode:Fault.EFT ~stretch:3.0 ~f:1))

let prop_classic_greedy_girth =
  QCheck.Test.make ~count:30 ~name:"classic greedy: girth > 2k" arb_graph_desc
    (fun desc ->
      let g = graph_of desc in
      List.for_all
        (fun k ->
          let sel = Classic_greedy.build ~k g in
          let sub = Selection.to_subgraph sel in
          Girth.girth_exceeds sub.Subgraph.graph ~bound:(2 * k))
        [ 2; 3 ])

let prop_exp_greedy_subset_check =
  QCheck.Test.make ~count:10 ~name:"exp greedy: exhaustive f=1 on small graphs"
    arb_graph_desc (fun desc ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 11, p) in
      let sel = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
      Verify.ok (Verify.exhaustive sel ~mode:Fault.VFT ~stretch:3.0 ~f:1))

let prop_greedy_poly_never_sparser_than_exp_intuition =
  QCheck.Test.make ~count:12
    ~name:"poly greedy adds whenever exp greedy must (per-instance size sanity)"
    arb_graph_desc (fun desc ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 13, p) in
      let poly = (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g).Selection.size in
      let ex = (Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g).Selection.size in
      (* the poly spanner is valid, the exp spanner is the sparsest greedy
         benchmark; allow poly to be smaller only by luck of ordering but
         never below the connectivity floor *)
      poly >= Graph.n g - 1 || poly >= ex || Graph.m g < Graph.n g - 1)

let prop_baswana_sen_valid =
  QCheck.Test.make ~count:20 ~name:"baswana-sen: always a (2k-1)-spanner"
    (QCheck.pair arb_graph_desc (QCheck.make QCheck.Gen.(int_range 1 3)))
    (fun (desc, k) ->
      let g = weighted_graph_of desc in
      let sel = Baswana_sen.build (seeded_rng 11) ~k g in
      Verify.ok
        (Verify.exhaustive sel ~mode:Fault.VFT
           ~stretch:(float_of_int ((2 * k) - 1))
           ~f:0))

let prop_selection_union_commutes =
  QCheck.Test.make ~count:40 ~name:"selection: union is commutative and idempotent"
    (QCheck.triple arb_graph_desc (QCheck.make QCheck.Gen.(int_bound 1000))
       (QCheck.make QCheck.Gen.(int_bound 1000)))
    (fun (desc, a, b) ->
      let g = graph_of desc in
      let m = Graph.m g in
      if m = 0 then true
      else begin
        let ids1 = [ a mod m; b mod m ] and ids2 = [ b mod m ] in
        let s1 = Selection.of_ids g ids1 and s2 = Selection.of_ids g ids2 in
        Selection.ids (Selection.union s1 s2) = Selection.ids (Selection.union s2 s1)
        && Selection.ids (Selection.union s1 s1) = Selection.ids s1
      end)

let prop_subgraph_induced_edge_count =
  QCheck.Test.make ~count:40 ~name:"subgraph: induced edges = edges with both ends kept"
    (QCheck.pair arb_graph_desc (QCheck.make QCheck.Gen.(int_bound 1_000_000)))
    (fun (desc, mask_seed) ->
      let g = graph_of desc in
      let r = seeded_rng mask_seed in
      let keep = Array.init (Graph.n g) (fun _ -> Rng.bool r) in
      let sub = Subgraph.induced_mask g keep in
      let expected =
        Graph.fold_edges g 0 (fun acc e ->
            if keep.(e.Graph.u) && keep.(e.Graph.v) then acc + 1 else acc)
      in
      Graph.m sub.Subgraph.graph = expected)

let prop_fault_enumerate_size_bound =
  QCheck.Test.make ~count:30 ~name:"fault: enumeration respects the size bound"
    (QCheck.pair arb_graph_desc (QCheck.make QCheck.Gen.(int_range 0 2)))
    (fun (desc, f) ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 8, p) in
      let ok = ref true in
      let count = ref 0 in
      Fault.enumerate Fault.VFT g ~f (fun fault ->
          incr count;
          if Fault.size fault > f then ok := false);
      !ok
      && abs_float (float_of_int !count -. Fault.count_subsets ~universe:(Graph.n g) ~f)
         < 0.5)

let prop_verify_full_graph_is_1_spanner =
  QCheck.Test.make ~count:20 ~name:"verify: G is a 1-spanner of itself under faults"
    arb_graph_desc (fun desc ->
      let g = weighted_graph_of desc in
      let sel = Selection.full g in
      let r = seeded_rng 3 in
      Verify.ok (Verify.random ~cfg:(Verify.config ~rng:r ~trials:15 ()) sel ~mode:Fault.VFT ~stretch:1.0 ~f:2)
      && Verify.ok (Verify.random ~cfg:(Verify.config ~rng:r ~trials:15 ()) sel ~mode:Fault.EFT ~stretch:1.0 ~f:2))

let prop_girth_consistency =
  QCheck.Test.make ~count:40 ~name:"girth: girth_exceeds consistent with girth"
    arb_graph_desc (fun desc ->
      let g = graph_of desc in
      match Girth.girth g with
      | None -> Girth.girth_exceeds g ~bound:(2 * Graph.n g)
      | Some girth ->
          Girth.girth_exceeds g ~bound:(girth - 1)
          && not (Girth.girth_exceeds g ~bound:girth))

let prop_io_round_trip =
  QCheck.Test.make ~count:30 ~name:"graph_io: parse . print = id" arb_graph_desc
    (fun desc ->
      let g = weighted_graph_of desc in
      let h = Graph_io.of_string (Graph_io.to_string g) in
      Graph.n g = Graph.n h && Graph.m g = Graph.m h
      && Graph.fold_edges g true (fun acc e ->
             acc
             &&
             match Graph.find_edge h e.Graph.u e.Graph.v with
             | Some id -> abs_float (Graph.weight h id -. e.Graph.w) < 1e-9
             | None -> false))

let prop_local_spanner_valid =
  QCheck.Test.make ~count:8 ~name:"local spanner: sampled faults never violated"
    arb_graph_desc (fun desc ->
      let seed, n, p = desc in
      let g = graph_of (seed, max 10 n, p) in
      let r = seeded_rng (seed + 1) in
      let res = Local_spanner.build r ~mode:Fault.VFT ~k:2 ~f:1 g in
      Verify.ok
        (Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:15 ()) res.Local_spanner.selection ~mode:Fault.VFT
           ~stretch:3.0 ~f:1))

let prop_congest_bs_valid =
  QCheck.Test.make ~count:10 ~name:"congest baswana-sen: always a (2k-1)-spanner"
    arb_graph_desc (fun desc ->
      let g = weighted_graph_of desc in
      let res = Congest_bs.build (seeded_rng 13) ~k:2 g in
      Verify.ok
        (Verify.exhaustive res.Congest_bs.selection ~mode:Fault.VFT
           ~stretch:3.0 ~f:0))

let prop_oracle_stretch =
  QCheck.Test.make ~count:15 ~name:"oracle: query within [exact, (2k-1) exact]"
    arb_graph_desc (fun desc ->
      let g = weighted_graph_of desc in
      let oracle = Oracle.build (seeded_rng 17) ~k:2 g in
      let ok = ref true in
      for u = 0 to Graph.n g - 1 do
        let exact = Dijkstra.distances g u in
        for v = 0 to Graph.n g - 1 do
          let est = Oracle.query oracle u v in
          if exact.(v) = infinity then begin
            if est <> infinity then ok := false
          end
          else if est < exact.(v) -. 1e-9 || est > (3. *. exact.(v)) +. 1e-9 then
            ok := false
        done
      done;
      !ok)

let prop_incremental_equals_offline =
  QCheck.Test.make ~count:20 ~name:"dynamic: stream = offline input order"
    arb_graph_desc (fun desc ->
      let g = graph_of desc in
      let d =
        Dynamic.create
          ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ())
          (Graph.create (Graph.n g))
      in
      Graph.iter_edges g (fun e ->
          ignore
            (Dynamic.apply d
               [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = e.Graph.w } ]));
      let offline =
        Poly_greedy.build ~order:Poly_greedy.Input_order ~mode:Fault.VFT ~k:2
          ~f:1 g
      in
      Selection.ids (Dynamic.snapshot d) = Selection.ids offline)

(* The differential check against the facade: streaming a nondecreasing-
   weight edge sequence through [Dynamic.apply] must reproduce
   [Spanner.build] (default algorithm + order = greedy by weight) on the
   final graph, even when the final graph lists its edges in a different
   order.  Distinct weights make the by-weight order a strict total order,
   so both sides process the same sequence.  Selections live over
   different [Graph.t] values, so we compare canonical endpoint sets. *)
let prop_incremental_sorted_equals_spanner_build =
  QCheck.Test.make ~count:12
    ~name:"dynamic: sorted stream = Spanner.build on final graph"
    (QCheck.pair arb_graph_desc
       (QCheck.make
          ~print:(fun (k, f, eft) ->
            Printf.sprintf "(k=%d, f=%d, %s)" k f (if eft then "EFT" else "VFT"))
          QCheck.Gen.(triple (int_range 2 3) (int_range 0 2) bool)))
    (fun (desc, (k, f, eft)) ->
      let mode = if eft then Fault.EFT else Fault.VFT in
      let seed, _, _ = desc in
      let g0 = graph_of desc in
      let edges = ref [] in
      Graph.iter_edges g0 (fun e -> edges := (e.Graph.u, e.Graph.v) :: !edges);
      let edges = Array.of_list !edges in
      let m = Array.length edges in
      (* distinct weights 1..m, shuffled so weight order <> id order *)
      let weights = Array.init m (fun i -> float_of_int (i + 1)) in
      Rng.shuffle (seeded_rng (seed + 4242)) weights;
      let final =
        Graph.of_weighted_edges (Graph.n g0)
          (Array.to_list (Array.mapi (fun i (u, v) -> (u, v, weights.(i))) edges))
      in
      let offline = Spanner.build { Spanner.k; f; mode } final in
      let d =
        Dynamic.create ~opts:(Dynamic.opts ~mode ~k ~f ())
          (Graph.create (Graph.n g0))
      in
      let order = Array.init m (fun i -> i) in
      Array.sort (fun a b -> compare weights.(a) weights.(b)) order;
      Array.iter
        (fun i ->
          let u, v = edges.(i) in
          ignore (Dynamic.apply d [ Dynamic.Insert { u; v; w = weights.(i) } ]))
        order;
      let canon sel =
        List.sort compare
          (List.map
             (fun id ->
               let u, v = Graph.endpoints sel.Selection.source id in
               (min u v, max u v))
             (Selection.ids sel))
      in
      canon (Dynamic.snapshot d) = canon offline)

let prop_blocking_certificates =
  QCheck.Test.make ~count:15 ~name:"blocking: greedy certificates block all short cycles"
    arb_graph_desc (fun desc ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 18, p) in
      let sel, certs =
        Poly_greedy.build_with_certificates ~mode:Fault.VFT ~k:2 ~f:1 g
      in
      let b = Blocking.of_certificates sel certs in
      match Blocking.is_blocking b ~t_bound:4 with
      | Ok None -> true
      | Ok (Some _) -> false
      | Error _ -> true (* enumeration limit: inconclusive, not a failure *))

let prop_batch_greedy_valid_any_batch =
  QCheck.Test.make ~count:12 ~name:"batch greedy: valid at random batch sizes"
    (QCheck.pair arb_graph_desc (QCheck.make QCheck.Gen.(int_range 1 40)))
    (fun (desc, batch) ->
      let seed, n, p = desc in
      let g = graph_of (seed, min n 12, p) in
      let res = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch g in
      Verify.ok
        (Verify.exhaustive res.Batch_greedy.selection ~mode:Fault.VFT
           ~stretch:3.0 ~f:1))

let prop_synchronizer_completes =
  QCheck.Test.make ~count:10 ~name:"synchronizer: full skeleton always completes"
    arb_graph_desc (fun desc ->
      let seed, _, _ = desc in
      let g = graph_of desc in
      let rep =
        Synchronizer.run (seeded_rng seed) ~pulses:4 ~skeleton:(Selection.full g) g
      in
      rep.Synchronizer.pulses = 4 && rep.Synchronizer.survivors_connected)

let prop_blow_up_counts =
  QCheck.Test.make ~count:25 ~name:"blow-up: n and m scale by c and c^2"
    (QCheck.pair arb_graph_desc (QCheck.make QCheck.Gen.(int_range 1 4)))
    (fun (desc, c) ->
      let g = graph_of desc in
      let b = Lower_bound.blow_up g ~copies:c in
      Graph.n b = Graph.n g * c && Graph.m b = Graph.m g * c * c)

let prop_io_parser_total =
  (* The parser must reject garbage with [Failure], never crash with
     anything else, and must re-accept anything it printed. *)
  QCheck.Test.make ~count:200 ~name:"graph_io: parser is total (Failure or value)"
    (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_bound 80)))
    (fun s ->
      match Graph_io.of_string s with
      | g -> Graph.n g >= 0
      | exception Failure _ -> true)

let prop_int32_backend_bit_identical =
  (* The storage seam must be invisible to every algorithm: repacking a
     graph into the int32 Bigarray backend (and the instances the
     generators produce directly on it) yields bit-identical BFS
     parents, Dijkstra distances, and greedy spanner selections,
     because both backends present half-edges in the same order. *)
  QCheck.Test.make ~count:40 ~name:"backends: int32 repack is bit-identical"
    arb_graph_desc (fun desc ->
      let g = weighted_graph_of desc in
      let g32 = Graph.with_backend Csr.Int32_bigarray g in
      let bfs_same =
        Bfs.distances g 0 = Bfs.distances g32 0
        && Bfs.hop_bounded_path g ~src:0 ~dst:(Graph.n g - 1)
             ~max_hops:(Graph.n g)
           = Bfs.hop_bounded_path g32 ~src:0 ~dst:(Graph.n g - 1)
               ~max_hops:(Graph.n g)
      in
      let dij_same = Dijkstra.distances g 0 = Dijkstra.distances g32 0 in
      let sel mode gr = (Poly_greedy.build ~mode ~k:2 ~f:1 gr).Selection.selected in
      let greedy_same =
        sel Fault.VFT g = sel Fault.VFT g32 && sel Fault.EFT g = sel Fault.EFT g32
      in
      bfs_same && dij_same && greedy_same)

let prop_binio_round_trip =
  QCheck.Test.make ~count:25 ~name:"graph_binio: save/load is the identity"
    arb_graph_desc (fun desc ->
      let g = weighted_graph_of desc in
      let file = Filename.temp_file "ftspan_prop" ".ftsb" in
      Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
      Graph_io.save g file;
      let h = Graph_io.load file in
      Graph_io.to_string g = Graph_io.to_string h
      && Graph.backend h = Csr.Int32_bigarray)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_bfs_dist_matches_path_hops;
      prop_dijkstra_triangle_inequality;
      prop_dijkstra_vs_bfs_unit;
      prop_lbc_yes_certificate;
      prop_lbc_gap_theorem4;
      prop_poly_greedy_spanner_under_random_faults;
      prop_poly_greedy_exhaustive_f1;
      prop_poly_greedy_weighted_exhaustive;
      prop_poly_greedy_eft_exhaustive;
      prop_classic_greedy_girth;
      prop_exp_greedy_subset_check;
      prop_greedy_poly_never_sparser_than_exp_intuition;
      prop_baswana_sen_valid;
      prop_selection_union_commutes;
      prop_subgraph_induced_edge_count;
      prop_fault_enumerate_size_bound;
      prop_verify_full_graph_is_1_spanner;
      prop_girth_consistency;
      prop_io_round_trip;
      prop_int32_backend_bit_identical;
      prop_binio_round_trip;
      prop_local_spanner_valid;
      prop_congest_bs_valid;
      prop_oracle_stretch;
      prop_incremental_equals_offline;
      prop_incremental_sorted_equals_spanner_build;
      prop_blocking_certificates;
      prop_batch_greedy_valid_any_batch;
      prop_synchronizer_completes;
      prop_blow_up_counts;
      prop_io_parser_total;
    ]

let () = Alcotest.run "properties" [ ("qcheck", suite) ]
