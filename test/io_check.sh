#!/usr/bin/env bash
# Binary graph format gate (dune build @io-check; chained into
# @refactor-check): generate a graph, round-trip it through the
# ftspan.graph.v1 binary format, and require the spanner the CLI builds
# from the binary file — on either storage backend — to be byte-for-byte
# the selection built from the text file.  Then the failure surface:
# not-a-graph files must exit 2, structurally corrupt files must exit 1,
# matching Graph_binio's two error classes.
#   $1 = ftspan CLI binary
set -u
BIN="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "io_check FAILED: $1" >&2; exit 1; }

GEN="--family gnp -n 300 -p 0.05 --connect --seed 23"

# same seed, two containers: the text file and the binary file hold the
# identical graph, so everything downstream must agree byte-for-byte
"$BIN" generate $GEN -o "$TMP/g.graph" >/dev/null || fail "generate text"
"$BIN" generate $GEN -o "$TMP/g.ftsb" | grep -q "ftspan.graph.v1" \
  || fail "generate must report the binary format"

# info sees the backend the file landed on, and --backend overrides it
"$BIN" info "$TMP/g.ftsb" | grep -q "storage: int32 backend" \
  || fail "binary load must land on the int32 backend"
"$BIN" info --backend int "$TMP/g.ftsb" | grep -q "storage: int backend" \
  || fail "info --backend int"
"$BIN" info --backend int32 "$TMP/g.graph" | grep -q "storage: int32 backend" \
  || fail "info --backend int32 on text"

# selection equality: text/int, binary/int32 (default), binary/int,
# text/int32 must all pick the same edges
"$BIN" build -k 2 -f 1 "$TMP/g.graph" -o "$TMP/sel-text.txt" >/dev/null \
  || fail "build from text"
"$BIN" build -k 2 -f 1 "$TMP/g.ftsb" -o "$TMP/sel-bin.txt" >/dev/null \
  || fail "build from binary"
"$BIN" build -k 2 -f 1 --backend int "$TMP/g.ftsb" -o "$TMP/sel-bin-int.txt" \
  >/dev/null || fail "build from binary on int backend"
"$BIN" build -k 2 -f 1 --backend int32 "$TMP/g.graph" -o "$TMP/sel-text-i32.txt" \
  >/dev/null || fail "build from text on int32 backend"
cmp -s "$TMP/sel-text.txt" "$TMP/sel-bin.txt" \
  || fail "text and binary selections differ"
cmp -s "$TMP/sel-text.txt" "$TMP/sel-bin-int.txt" \
  || fail "binary/int selection differs"
cmp -s "$TMP/sel-text.txt" "$TMP/sel-text-i32.txt" \
  || fail "text/int32 selection differs"

# error class 1: not an ftspan.graph file at all -> exit 2
printf 'this is not a graph, just bytes\n' > "$TMP/junk.ftsb"
"$BIN" info "$TMP/junk.ftsb" >/dev/null 2>&1
[ $? -eq 2 ] || fail "junk .ftsb must exit 2"
printf 'x' > "$TMP/tiny.ftsb"
"$BIN" info "$TMP/tiny.ftsb" >/dev/null 2>&1
[ $? -eq 2 ] || fail "sub-magic-size .ftsb must exit 2"

# error class 2: recognized but damaged -> exit 1
head -c 60 "$TMP/g.ftsb" > "$TMP/trunc.ftsb"
"$BIN" info "$TMP/trunc.ftsb" >/dev/null 2>&1
[ $? -eq 1 ] || fail "truncated .ftsb must exit 1"
cp "$TMP/g.ftsb" "$TMP/ver.ftsb"
printf '\011' | dd of="$TMP/ver.ftsb" bs=1 seek=8 count=1 conv=notrunc 2>/dev/null
"$BIN" info "$TMP/ver.ftsb" >/dev/null 2>&1
[ $? -eq 1 ] || fail "wrong-version .ftsb must exit 1"
cp "$TMP/g.ftsb" "$TMP/big-m.ftsb"
printf '\377' | dd of="$TMP/big-m.ftsb" bs=1 seek=31 count=1 conv=notrunc 2>/dev/null
"$BIN" info "$TMP/big-m.ftsb" >/dev/null 2>&1
[ $? -eq 1 ] || fail "oversize-m .ftsb must exit 1"
cp "$TMP/g.ftsb" "$TMP/trail.ftsb"
printf '\0\0\0\0' >> "$TMP/trail.ftsb"
"$BIN" info "$TMP/trail.ftsb" >/dev/null 2>&1
[ $? -eq 1 ] || fail "trailing-bytes .ftsb must exit 1"

echo "io_check OK"
