#!/usr/bin/env bash
# End-to-end integration test of the ftspan CLI: every subcommand, plus
# failure-path checks.  Run by dune as part of @runtest with the freshly
# built binaries: $1 = ftspan CLI, $2 = bench/main.exe, $3 =
# bench/compare.exe, $4 = the checked-in BENCH_BASELINE.json.
set -u
BIN="$1"
BENCH="$2"
COMPARE="$3"
BASELINE="$4"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "cli_test FAILED: $1" >&2; exit 1; }

# generate + info
"$BIN" generate --family gnp -n 60 -p 0.15 --connect --seed 11 -o "$TMP/g.graph" \
  >/dev/null || fail "generate gnp"
"$BIN" info "$TMP/g.graph" | grep -q "n=60" || fail "info reports n"

# binary container + storage backend: same seed into a .ftsb file, the
# same spanner out of it, whichever backend holds the adjacency
"$BIN" generate --family gnp -n 60 -p 0.15 --connect --seed 11 -o "$TMP/g.ftsb" \
  | grep -q "ftspan.graph.v1" || fail "generate .ftsb"
"$BIN" info "$TMP/g.ftsb" | grep -q "storage: int32 backend" \
  || fail "info on .ftsb reports int32 storage"
"$BIN" build -k 2 -f 1 "$TMP/g.graph" -o "$TMP/sel-a.txt" >/dev/null \
  || fail "build text"
"$BIN" build -k 2 -f 1 "$TMP/g.ftsb" -o "$TMP/sel-b.txt" >/dev/null \
  || fail "build .ftsb"
"$BIN" build -k 2 -f 1 --backend int32 "$TMP/g.graph" -o "$TMP/sel-c.txt" \
  >/dev/null || fail "build --backend int32"
cmp -s "$TMP/sel-a.txt" "$TMP/sel-b.txt" || fail ".ftsb selection differs"
cmp -s "$TMP/sel-a.txt" "$TMP/sel-c.txt" || fail "int32 selection differs"
printf 'junk\n' > "$TMP/junk.ftsb"
"$BIN" info "$TMP/junk.ftsb" >/dev/null 2>&1
[ $? -eq 2 ] || fail "junk .ftsb must exit 2"

# weighted generation
"$BIN" generate --family geometric -n 50 -p 0.3 --connect --seed 4 -o "$TMP/w.graph" \
  >/dev/null || fail "generate geometric"

# hard lower-bound family: the greedy must keep everything
"$BIN" generate --family hard -n 3 --extra 2 -o "$TMP/hard.graph" >/dev/null \
  || fail "generate hard"
"$BIN" build -k 2 -f 2 "$TMP/hard.graph" | grep -q "208/208 edges" \
  || fail "hard instance must force all 208 edges"

# build + verify round trip (sampled and exhaustive)
"$BIN" build -k 2 -f 1 --algo greedy-poly "$TMP/g.graph" -o "$TMP/sel.txt" \
  >/dev/null || fail "build"
"$BIN" verify -k 2 -f 1 --trials 40 "$TMP/g.graph" "$TMP/sel.txt" \
  | grep -q "OK" || fail "verify sampled"
"$BIN" verify -k 2 -f 1 --exhaustive "$TMP/g.graph" "$TMP/sel.txt" \
  | grep -q "OK" || fail "verify exhaustive"

# a broken selection must be caught (empty selection of a connected graph)
: > "$TMP/empty.txt"
if "$BIN" verify -k 2 -f 0 --exhaustive "$TMP/g.graph" "$TMP/empty.txt" \
  >/dev/null 2>&1; then
  fail "verify must reject the empty selection"
fi

# prune keeps validity
"$BIN" generate --family gnp -n 24 -p 0.35 --connect --seed 3 -o "$TMP/s.graph" \
  >/dev/null || fail "generate small"
"$BIN" build -k 2 -f 1 "$TMP/s.graph" -o "$TMP/ssel.txt" >/dev/null || fail "build small"
"$BIN" prune -k 2 -f 1 "$TMP/s.graph" "$TMP/ssel.txt" -o "$TMP/pruned.txt" \
  | grep -q "pruned" || fail "prune"
"$BIN" verify -k 2 -f 1 --exhaustive "$TMP/s.graph" "$TMP/pruned.txt" \
  | grep -q "OK" || fail "pruned selection stays valid"

# --jobs: a pooled build must produce the bit-identical selection (the
# Exec.parallel_for determinism contract), and the parallel verify
# batteries the same verdict.  --batch is pinned: its default flips to
# 512 when jobs > 1, which intentionally changes the spanner.
"$BIN" build -k 2 -f 1 --jobs 1 --batch 64 "$TMP/g.graph" -o "$TMP/sel-seq.txt" \
  >/dev/null || fail "build --jobs 1"
"$BIN" build -k 2 -f 1 -j 2 --batch 64 "$TMP/g.graph" -o "$TMP/sel-par.txt" \
  >/dev/null || fail "build -j 2"
cmp -s "$TMP/sel-seq.txt" "$TMP/sel-par.txt" \
  || fail "-j 2 selection must be bit-identical to --jobs 1"
"$BIN" verify -k 2 -f 1 -j 2 --trials 40 "$TMP/g.graph" "$TMP/sel-par.txt" \
  | grep -q "OK" || fail "verify -j 2"
"$BIN" build -k 2 -f 1 --jobs 0 "$TMP/g.graph" >/dev/null 2>&1 \
  && fail "jobs=0 accepted"
"$BIN" build -k 2 -f 1 -j 2 --batch 0 "$TMP/g.graph" >/dev/null 2>&1 \
  && fail "batch=0 accepted"

# --shard: the decomposition-sharded build — valid output, shard stats
# on stdout, bit-identical selection at --jobs 4, and rejected by
# subcommands that have no sharded path (dynamic)
"$BIN" build --seed 7 -k 2 -f 1 --shard "$TMP/g.graph" -o "$TMP/shard.txt" \
  | grep -q "^shard: " || fail "build --shard must print shard stats"
"$BIN" verify -k 2 -f 1 --trials 40 "$TMP/g.graph" "$TMP/shard.txt" \
  | grep -q "OK" || fail "verify sharded selection"
"$BIN" build --seed 7 -k 2 -f 1 --shard --jobs 4 "$TMP/g.graph" \
  -o "$TMP/shard-j4.txt" >/dev/null || fail "build --shard --jobs 4"
cmp -s "$TMP/shard.txt" "$TMP/shard-j4.txt" \
  || fail "--shard selection must be bit-identical at --jobs 4"

# dot export
"$BIN" build -k 2 -f 1 "$TMP/s.graph" --dot "$TMP/s.dot" >/dev/null || fail "build --dot"
grep -q "graph ftspan" "$TMP/s.dot" || fail "dot output malformed"

# dynamic: replay an update/query script against the generated graph,
# byte-identical across runs and --jobs counts, and the final selection
# it writes must verify against the final graph it also writes
cat > "$TMP/dyn.ops" <<'EOF'
query 0 30
faults 5
query 0 30
delv 3
flush
query 0 30
EOF
"$BIN" dynamic -k 2 -f 1 --graph "$TMP/g.graph" "$TMP/dyn.ops" \
  -o "$TMP/dyn-sel.txt" --out-graph "$TMP/dyn-final.graph" > "$TMP/dyn1.out" \
  || fail "dynamic replay"
grep -q "repair: touched" "$TMP/dyn1.out" || fail "dynamic must report repair"
"$BIN" dynamic -k 2 -f 1 -j 2 --graph "$TMP/g.graph" "$TMP/dyn.ops" \
  > "$TMP/dyn2.out" || fail "dynamic -j 2"
grep -v "^selection written\|^final graph written" "$TMP/dyn1.out" > "$TMP/dyn1.cmp"
cmp -s "$TMP/dyn1.cmp" "$TMP/dyn2.out" \
  || fail "dynamic -j 2 transcript must match --jobs 1"
"$BIN" verify -k 2 -f 1 --trials 40 "$TMP/dyn-final.graph" "$TMP/dyn-sel.txt" \
  | grep -q "OK" || fail "dynamic final selection must verify"
printf 'bogus\n' > "$TMP/dyn-bad.ops"
"$BIN" dynamic "$TMP/dyn-bad.ops" >/dev/null 2>&1
[ $? -eq 2 ] || fail "bad dynamic script must exit 2"
# --shard has no dynamic path: cmdliner must reject the unknown flag
"$BIN" dynamic -k 2 -f 1 --shard "$TMP/dyn.ops" >/dev/null 2>&1 \
  && fail "dynamic must reject --shard"

# oracle, local, congest
"$BIN" oracle -k 2 --queries 200 "$TMP/g.graph" | grep -q "guarantee 3" \
  || fail "oracle"
"$BIN" local -k 2 -f 1 "$TMP/g.graph" | grep -q "rounds:" || fail "local"
"$BIN" congest -k 2 -f 1 -c 0.5 "$TMP/g.graph" | grep -q "iterations:" \
  || fail "congest"

# chaos: an unreliable network must not change what gets selected — the
# reliable-delivery layer masks drop/dup/reorder, it only costs rounds.
CHAOS="drop=0.2,dup=0.05,reorder=4,seed=5"
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 "$TMP/s.graph" > "$TMP/congest-clean.txt" \
  || fail "congest clean reference"
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 --chaos "$CHAOS" "$TMP/s.graph" \
  > "$TMP/congest-chaos.txt" || fail "congest --chaos must terminate"
[ "$(grep '^spanner:' "$TMP/congest-clean.txt")" = \
  "$(grep '^spanner:' "$TMP/congest-chaos.txt")" ] \
  || fail "congest --chaos must select the same spanner as the clean run"
# same seed, same schedule: the lossy run replays bit-for-bit
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 --chaos "$CHAOS" "$TMP/s.graph" \
  > "$TMP/congest-chaos2.txt" || fail "congest --chaos rerun"
cmp -s "$TMP/congest-chaos.txt" "$TMP/congest-chaos2.txt" \
  || fail "congest --chaos must be deterministic for a fixed seed"
# the retransmit machinery shows up in the telemetry, and only there
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 --chaos "$CHAOS" --metrics=pretty \
  "$TMP/s.graph" > "$TMP/congest-chaos-metrics.txt" || fail "congest --chaos --metrics"
grep -q "net.retries" "$TMP/congest-chaos-metrics.txt" \
  || fail "chaos metrics must report net.retries"
grep -q "net.drops" "$TMP/congest-chaos-metrics.txt" \
  || fail "chaos metrics must report net.drops"
"$BIN" local --seed 11 -k 2 -f 1 --chaos "$CHAOS" "$TMP/s.graph" \
  | grep -q "rounds:" || fail "local --chaos"
"$BIN" congest -k 2 -f 1 --chaos "drop=1.5" "$TMP/s.graph" >/dev/null 2>&1 \
  && fail "chaos spec with drop > 1 accepted"
"$BIN" congest -k 2 -f 1 --chaos "frobnicate=1" "$TMP/s.graph" >/dev/null 2>&1 \
  && fail "unknown chaos key accepted"

# dk11 and exponential algorithms through the facade
"$BIN" build -k 2 -f 1 --algo dk11 "$TMP/s.graph" >/dev/null || fail "build dk11"
"$BIN" build -k 2 -f 1 --algo greedy-exp "$TMP/s.graph" >/dev/null || fail "build exp"

# telemetry: --metrics pretty listing and --metrics=json schema
# (bare --metrics goes after the positional: with an optional value the
# flag would otherwise swallow the graph path)
"$BIN" build -k 2 -f 1 "$TMP/s.graph" --metrics | grep -q "lbc.calls" \
  || fail "--metrics pretty must list lbc.calls"
"$BIN" build -k 2 -f 1 --metrics=json "$TMP/s.graph" > "$TMP/metrics.json" \
  || fail "build --metrics=json"
grep -q '"schema": "ftspan.metrics.v1"' "$TMP/metrics.json" \
  || fail "metrics json schema tag"
grep -q '"lbc.bfs_rounds"' "$TMP/metrics.json" || fail "metrics json bfs rounds"
grep -q '"wall_time_s"' "$TMP/metrics.json" || fail "metrics json wall time"
"$BIN" local -k 2 -f 1 --metrics=json "$TMP/s.graph" | grep -q '"net.messages"' \
  || fail "local --metrics=json must report net counters"

# event trace: native export carries the schema tag and per-edge LBC events
"$BIN" build -k 2 -f 1 "$TMP/s.graph" --trace "$TMP/t.json" \
  | grep -q "trace written" || fail "build --trace must report the file"
grep -q '"schema": "ftspan.trace.v1"' "$TMP/t.json" || fail "trace schema tag"
grep -q '"lbc_begin"' "$TMP/t.json" || fail "trace must contain lbc_begin events"
grep -q '"greedy_edge"' "$TMP/t.json" || fail "trace must contain greedy_edge events"

# ... and the chrome flavour is an event array with the required keys
"$BIN" build -k 2 -f 1 "$TMP/s.graph" --trace "$TMP/t-chrome.json,chrome" \
  >/dev/null || fail "build --trace FILE,chrome"
grep -q '"ph"' "$TMP/t-chrome.json" || fail "chrome trace ph key"
grep -q '"pid"' "$TMP/t-chrome.json" || fail "chrome trace pid key"
grep -q '"tid"' "$TMP/t-chrome.json" || fail "chrome trace tid key"

# congest runs trace per-round message traffic
"$BIN" congest -k 2 -f 1 -c 0.5 "$TMP/s.graph" --trace "$TMP/t-congest.json" \
  >/dev/null || fail "congest --trace"
grep -q '"congest_round"' "$TMP/t-congest.json" \
  || fail "congest trace must contain congest_round events"

# bench: a filter matching nothing must still write a valid empty report
"$BENCH" --json "$TMP/bench-empty.json" --match no-such-job \
  | grep -q "no jobs selected" || fail "bench empty-selection notice"
grep -q '"schema": "ftspan.metrics.v1"' "$TMP/bench-empty.json" \
  || fail "empty bench report schema tag"
grep -q '"entries": \[\]' "$TMP/bench-empty.json" \
  || fail "empty bench report must have an empty entries array"

# bench --jobs: the parallel smoke entry runs on a 2-worker pool and its
# metrics document still carries the entry (pool.* series are skipped by
# the comparison, not by the report)
"$BENCH" --jobs 2 --smoke --match greedy-parallel \
  --json "$TMP/bench-jobs.json" >/dev/null || fail "bench --jobs 2"
grep -q '"id": "greedy-parallel"' "$TMP/bench-jobs.json" \
  || fail "bench --jobs must run greedy-parallel"
"$BENCH" --jobs 0 --smoke >/dev/null 2>&1 && fail "bench jobs=0 accepted"

# bench regression gate: a fresh smoke run passes against the checked-in
# baseline (generous slack: counters are deterministic, wall time is not)...
"$BENCH" --smoke --json "$TMP/bench-run.json" >/dev/null || fail "bench --smoke"
"$COMPARE" --slack 2 "$BASELINE" "$TMP/bench-run.json" >/dev/null \
  || fail "compare must accept an in-tolerance smoke run"
# refactor gate (the @refactor-check alias chains this same comparison
# after build + runtest): counters must hold at the default, tight
# tolerance — only wall time gets extra slack, since it is the one
# nondeterministic metric on a shared runner
"$COMPARE" --tol-wall 4 --tol-wall-abs 1 "$BASELINE" "$TMP/bench-run.json" \
  >/dev/null || fail "refactor gate: counters must hold at default tolerance"
# ... and an artificially inflated counter trips it
sed 's/"lbc.calls": [0-9]*/"lbc.calls": 999999999/' "$TMP/bench-run.json" \
  > "$TMP/bench-inflated.json"
if "$COMPARE" --slack 2 "$BASELINE" "$TMP/bench-inflated.json" >/dev/null; then
  fail "compare must reject an inflated counter"
fi

# trace sampling: a sampled run reports its accounting, and the same
# sampling seed replays the same kept set bit-for-bit (jobs pinned to 1:
# parallel emission order is legitimately nondeterministic)
"$BIN" build -k 2 -f 1 --jobs 1 --seed 11 "$TMP/s.graph" \
  --trace "$TMP/t-s1.json,sample=0.25,seed=7" | grep -q "sampled" \
  || fail "sampled trace must report sampled count"
"$BIN" build -k 2 -f 1 --jobs 1 --seed 11 "$TMP/s.graph" \
  --trace "$TMP/t-s2.json,sample=0.25,seed=7" >/dev/null \
  || fail "sampled trace rerun"
sed '/"created_unix"/d; /"ts_s"/d' "$TMP/t-s1.json" > "$TMP/t-s1.stable"
sed '/"created_unix"/d; /"ts_s"/d' "$TMP/t-s2.json" > "$TMP/t-s2.stable"
cmp -s "$TMP/t-s1.stable" "$TMP/t-s2.stable" \
  || fail "same sampling seed must keep the identical event set"
# ... and a different seed keeps a different set
"$BIN" build -k 2 -f 1 --jobs 1 --seed 11 "$TMP/s.graph" \
  --trace "$TMP/t-s3.json,sample=0.25,seed=8" >/dev/null \
  || fail "sampled trace with another seed"
sed '/"created_unix"/d; /"ts_s"/d' "$TMP/t-s3.json" > "$TMP/t-s3.stable"
cmp -s "$TMP/t-s1.stable" "$TMP/t-s3.stable" \
  && fail "different sampling seeds must not keep the identical event set"

# causal trace analysis: a lossy run small enough not to overflow the
# trace ring (dropped=0) reconstructs a lifecycle report whose
# retransmit total reconciles EXACTLY with the net.retries counter from
# the same run's metrics document, and two same-seed runs analyze to
# the byte-identical report (the analyzer reads the simulated clock,
# never wall time)
"$BIN" generate --family gnp -n 12 -p 0.5 --connect --seed 7 -o "$TMP/tiny.graph" \
  >/dev/null || fail "generate tiny"
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 --chaos "$CHAOS" \
  --trace "$TMP/ct1.json" --metrics=json "$TMP/tiny.graph" \
  > "$TMP/ct1-metrics.json" || fail "congest --chaos --trace"
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 --chaos "$CHAOS" \
  --trace "$TMP/ct2.json" "$TMP/tiny.graph" >/dev/null \
  || fail "congest --chaos --trace rerun"
"$COMPARE" --check-trace "$TMP/ct1.json" | grep -q "dropped)" \
  || fail "compare --check-trace must accept the congest trace"
"$COMPARE" --check-trace "$TMP/ct1.json" | grep -q ", 0 dropped)" \
  || fail "reconciliation needs an unsampled, non-overflowing trace"
"$BIN" trace analyze --json "$TMP/ct1.json" > "$TMP/ct1-report.json" \
  || fail "trace analyze --json"
"$BIN" trace analyze --json "$TMP/ct2.json" > "$TMP/ct2-report.json" \
  || fail "trace analyze --json rerun"
cmp -s "$TMP/ct1-report.json" "$TMP/ct2-report.json" \
  || fail "same-seed lossy runs must analyze to the identical report"
RETRANS=$("$BIN" trace analyze "$TMP/ct1.json" \
  | sed -n 's/^fates: \([0-9][0-9]*\) retransmits.*/\1/p')
RETRIES=$(sed -n 's/.*"net.retries": \([0-9][0-9]*\).*/\1/p' "$TMP/ct1-metrics.json")
[ -n "$RETRANS" ] || fail "analyzer must report a retransmit total"
[ -n "$RETRIES" ] || fail "metrics document must report net.retries"
[ "$RETRANS" -gt 0 ] || fail "a lossy run must retransmit at least once"
[ "$RETRANS" = "$RETRIES" ] \
  || fail "analyzer retransmits ($RETRANS) must equal net.retries ($RETRIES)"

# malformed trace documents: not-a-trace is usage-class (exit 2) for
# both the CLI analyzer and the compare gate; a parsable trace that
# violates the structural contract (non-monotonic seqs) is a gate
# failure for --check-trace (exit 1) and still exit 2 for analyze
echo 'not json at all' > "$TMP/bad-trace.json"
"$BIN" trace analyze "$TMP/bad-trace.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "trace analyze on garbage must exit 2"
"$COMPARE" --check-trace "$TMP/bad-trace.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "compare --check-trace on garbage must exit 2"
printf '{"schema": "ftspan.metrics.v1"}\n' > "$TMP/wrong-schema.json"
"$BIN" trace analyze "$TMP/wrong-schema.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "trace analyze on a non-trace schema must exit 2"
"$COMPARE" --check-trace "$TMP/wrong-schema.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "compare --check-trace on a non-trace schema must exit 2"
"$BIN" trace analyze "$TMP/no-such-trace.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "trace analyze on a missing file must exit 2"
printf '%s\n' '{"schema": "ftspan.trace.v1", "seen": 2, "sampled": 2,' \
  ' "dropped": 0, "events": [' \
  '  {"seq": 5, "type": "msg_send", "cid": 0, "src": 0, "dst": 1, "at": 1.0, "bits": 8},' \
  '  {"seq": 3, "type": "msg_deliver", "cid": 0, "src": 0, "dst": 1, "at": 2.0}]}' \
  > "$TMP/unordered-trace.json"
"$COMPARE" --check-trace "$TMP/unordered-trace.json" >/dev/null 2>&1
[ $? -eq 1 ] || fail "compare --check-trace on non-monotonic seqs must exit 1"
"$BIN" trace analyze "$TMP/unordered-trace.json" >/dev/null 2>&1
[ $? -eq 2 ] || fail "trace analyze on non-monotonic seqs must exit 2"

# heartbeat stream: ops-paced beats from the CLI validate under the
# stream gate, and the quantile block carries the new latency series
"$BIN" congest --seed 11 -k 2 -f 1 -c 0.5 --chaos "$CHAOS" \
  --metrics-stream "$TMP/hb.jsonl,ops=16" "$TMP/s.graph" \
  | grep -q "metrics stream written" || fail "congest --metrics-stream"
grep -q '"schema":"ftspan.heartbeat.v1"' "$TMP/hb.jsonl" \
  || fail "heartbeat schema tag"
grep -q '"reliable.rtt"' "$TMP/hb.jsonl" \
  || fail "heartbeat must carry the reliable.rtt series"
grep -q '"p99"' "$TMP/hb.jsonl" || fail "heartbeat must carry quantiles"
"$COMPARE" --check-heartbeat "$TMP/hb.jsonl" >/dev/null \
  || fail "compare --check-heartbeat must accept the stream"

# bench heartbeat + sampled trace in one run
"$BENCH" --smoke --match smoke-lbc --metrics-stream "$TMP/hb-bench.jsonl,ops=256" \
  --trace "$TMP/t-bench.json,sample=0.5,seed=3" \
  | grep -q "metrics stream written" || fail "bench --metrics-stream"
"$COMPARE" --check-heartbeat "$TMP/hb-bench.jsonl" >/dev/null \
  || fail "bench heartbeat stream must validate"

# malformed observability specs: bench rejects them with usage (exit 2),
# the CLI with a nonzero cmdliner error
"$BENCH" --trace "$TMP/x.json,sample=nope" --match no-such-job >/dev/null 2>&1
[ $? -eq 2 ] || fail "bench bad sample spec must exit 2"
"$BENCH" --metrics-stream "$TMP/x.jsonl,ops=0" --match no-such-job >/dev/null 2>&1
[ $? -eq 2 ] || fail "bench ops=0 must exit 2"
"$BENCH" --metrics-stream "$TMP/x.jsonl,-1.5" --match no-such-job >/dev/null 2>&1
[ $? -eq 2 ] || fail "bench negative interval must exit 2"
"$BIN" build -k 2 -f 1 "$TMP/s.graph" --trace "$TMP/x.json,sample=2.0" \
  >/dev/null 2>&1 && fail "CLI sample > 1 accepted"
"$BIN" build -k 2 -f 1 "$TMP/s.graph" --metrics-stream "$TMP/x.jsonl,ops=zero" \
  >/dev/null 2>&1 && fail "CLI ops=zero accepted"
"$COMPARE" --check-heartbeat /dev/null >/dev/null 2>&1 \
  && fail "empty heartbeat stream accepted"

# failure paths: unknown family, bad file, bad algo
"$BIN" generate --family nope -n 5 -o "$TMP/x" >/dev/null 2>&1 && fail "bad family accepted"
"$BIN" info /nonexistent.graph >/dev/null 2>&1 && fail "missing file accepted"
"$BIN" build --algo nonsense "$TMP/g.graph" >/dev/null 2>&1 && fail "bad algo accepted"

echo "cli_test OK"
