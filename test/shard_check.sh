#!/usr/bin/env bash
# Shard gate (dune build @shard-check; chained into @refactor-check):
# the decomposition-sharded build against the sequential build on the
# same graph — the sharded selection must verify as a valid f-FT
# spanner, must stay within the O(log n) size factor of the sequential
# selection, and must be byte-identical at --jobs 1/2/4 and across the
# int/int32 storage backends; dk11 --shard must be byte-identical at
# every jobs count too.
#   $1 = ftspan CLI binary
set -u
BIN="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "shard_check FAILED: $1" >&2; exit 1; }

"$BIN" generate --family gnp -n 120 -p 0.08 --connect --seed 9 -o "$TMP/g.graph" \
  > /dev/null || fail "graph generation"

# ---- selection validity: shard build, then ftspan verify ------------
"$BIN" build --seed 7 -k 2 -f 1 --shard "$TMP/g.graph" -o "$TMP/shard.sel" \
  > "$TMP/shard.out" || fail "sharded build"
grep -q "^shard: " "$TMP/shard.out" || fail "sharded build must print shard stats"
"$BIN" verify -k 2 -f 1 --trials 60 "$TMP/g.graph" "$TMP/shard.sel" \
  > "$TMP/verify.out" || fail "sharded selection does not verify"

# ---- size vs sequential: within the log-n factor --------------------
"$BIN" build --seed 7 -k 2 -f 1 "$TMP/g.graph" -o "$TMP/seq.sel" \
  > /dev/null || fail "sequential build"
shard_size=$(wc -l < "$TMP/shard.sel")
seq_size=$(wc -l < "$TMP/seq.sel")
# ceil(log2 120) = 7
[ "$shard_size" -le $((seq_size * 7)) ] \
  || fail "sharded size $shard_size exceeds 7x sequential $seq_size"

# ---- jobs determinism: byte-identical selections --------------------
for j in 2 4; do
  "$BIN" build --seed 7 -k 2 -f 1 --shard -j "$j" "$TMP/g.graph" \
    -o "$TMP/shard-j$j.sel" > /dev/null || fail "sharded build at --jobs $j"
  cmp -s "$TMP/shard.sel" "$TMP/shard-j$j.sel" \
    || fail "sharded selection differs at --jobs $j"
done

# ---- backend determinism: int vs int32 ------------------------------
"$BIN" build --seed 7 -k 2 -f 1 --shard --backend int32 "$TMP/g.graph" \
  -o "$TMP/shard-i32.sel" > /dev/null || fail "sharded build on int32"
cmp -s "$TMP/shard.sel" "$TMP/shard-i32.sel" \
  || fail "sharded selection differs across backends"

# ---- dk11 --shard: pooled path deterministic at every jobs count ----
"$BIN" build --seed 7 -k 2 -f 1 --algo dk11 --shard "$TMP/g.graph" \
  -o "$TMP/dk.sel" > /dev/null || fail "dk11 sharded build"
for j in 2 4; do
  "$BIN" build --seed 7 -k 2 -f 1 --algo dk11 --shard -j "$j" "$TMP/g.graph" \
    -o "$TMP/dk-j$j.sel" > /dev/null || fail "dk11 sharded build at --jobs $j"
  cmp -s "$TMP/dk.sel" "$TMP/dk-j$j.sel" \
    || fail "dk11 sharded selection differs at --jobs $j"
done

echo "shard_check OK"
