(* Tests for the distributed substrate (Net) and the Section 5 algorithms:
   padded decompositions (Theorem 11), the LOCAL spanner (Theorem 12),
   CONGEST Baswana-Sen (Theorem 14) and the CONGEST fault-tolerant spanner
   (Theorem 15). *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rng () = Rng.create ~seed:7777

let stretch k = float_of_int ((2 * k) - 1)

(* ------------------------------ Net ---------------------------------- *)

let test_net_delivery_next_round_only () =
  let g = Generators.path 3 in
  let net = Net.create ~model:Net.Local ~bits:(fun _ -> 8) g in
  Net.send net ~src:0 ~dst:1 "hello";
  checki "not delivered yet" 0 (List.length (Net.inbox net 1));
  Net.next_round net;
  (match Net.inbox net 1 with
  | [ (0, "hello") ] -> ()
  | _ -> Alcotest.fail "expected exactly the staged message");
  Net.next_round net;
  checki "cleared after round" 0 (List.length (Net.inbox net 1))

let test_net_requires_adjacency () =
  let g = Generators.path 3 in
  let net = Net.create ~model:Net.Local ~bits:(fun _ -> 8) g in
  try
    Net.send net ~src:0 ~dst:2 "nope";
    Alcotest.fail "non-adjacent send should fail"
  with Invalid_argument _ -> ()

let test_net_broadcast () =
  let g = Generators.complete 4 in
  let net = Net.create ~model:Net.Local ~bits:(fun _ -> 8) g in
  Net.broadcast net ~src:0 "x";
  Net.next_round net;
  for v = 1 to 3 do
    checki (Printf.sprintf "inbox %d" v) 1 (List.length (Net.inbox net v))
  done

let test_net_stats_accounting () =
  let g = Generators.path 2 in
  let net = Net.create ~model:Net.Local ~bits:String.length g in
  Net.send net ~src:0 ~dst:1 "four";
  Net.send net ~src:1 ~dst:0 "sevenchr";
  Net.next_round net;
  let s = Net.stats net in
  checki "rounds" 1 s.Net.rounds;
  checki "messages" 2 s.Net.messages;
  checki "total bits" 12 s.Net.total_bits;
  checki "max message" 8 s.Net.max_message_bits

let test_net_congest_violations () =
  let g = Generators.path 2 in
  let net = Net.create ~model:(Net.Congest 16) ~bits:(fun b -> b) g in
  Net.send net ~src:0 ~dst:1 10;
  Net.send net ~src:0 ~dst:1 99;
  Net.next_round net;
  let s = Net.stats net in
  checki "one oversized send" 1 s.Net.congest_violations;
  checki "edge load sums" 109 s.Net.max_edge_round_bits

let test_net_charge_rounds () =
  let g = Generators.path 2 in
  let net = Net.create ~model:Net.Local ~bits:(fun _ -> 1) g in
  Net.charge_rounds net 5;
  checki "rounds charged" 5 (Net.stats net).Net.rounds

let test_net_history () =
  let g = Generators.path 3 in
  let net = Net.create ~record_history:true ~model:(Net.Congest 64) ~bits:(fun _ -> 10) g in
  Net.send net ~src:0 ~dst:1 ();
  Net.send net ~src:1 ~dst:0 ();
  Net.next_round net;
  Net.send net ~src:1 ~dst:2 ();
  Net.next_round net;
  let h = Net.history net in
  checki "two rounds recorded" 2 (Array.length h);
  checki "round 0 loads" 2 (List.length h.(0));
  checki "round 1 loads" 1 (List.length h.(1))

(* -------------------------- Decomposition ---------------------------- *)

let test_decomposition_is_partition () =
  let r = rng () in
  let g = Generators.grid ~rows:8 ~cols:8 in
  let d = Decomposition.run r g in
  Array.iter
    (fun c ->
      Array.iteri
        (fun v ctr ->
          checkb "center in range" true (ctr >= 0 && ctr < Graph.n g);
          (* center of a center is itself *)
          if v = ctr then checki "center self" ctr c.Decomposition.center_of.(ctr))
        c.Decomposition.center_of)
    d.Decomposition.partitions

let test_decomposition_trees_consistent () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.1 in
  let d = Decomposition.run r g in
  Array.iter
    (fun c ->
      Array.iteri
        (fun v parent ->
          if parent >= 0 then begin
            checkb "parent adjacent" true (Graph.mem_edge g v parent);
            checki "same cluster as parent"
              c.Decomposition.center_of.(parent)
              c.Decomposition.center_of.(v);
            checki "depth = parent + 1"
              (c.Decomposition.depth_of.(parent) + 1)
              c.Decomposition.depth_of.(v)
          end
          else checki "root is its own center" v c.Decomposition.center_of.(v))
        c.Decomposition.parent_of)
    d.Decomposition.partitions

let test_decomposition_coverage_whp () =
  (* Theorem 11.4: with the default ~2 log n partitions, every edge should
     be padded in some partition.  Allow a tiny slack for unlucky seeds. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:80 ~p:0.08 in
  let d = Decomposition.run r g in
  checkb
    (Printf.sprintf "coverage %.3f >= 0.99" (Decomposition.coverage d))
    true
    (Decomposition.coverage d >= 0.99)

let test_decomposition_cluster_diameter_logarithmic () =
  let r = rng () in
  let g = Generators.grid ~rows:12 ~cols:12 in
  let d = Decomposition.run r ~beta:0.25 g in
  (* max shift of Exp(0.25) over ~144*partitions draws is ~(ln N)/0.25 ~ 35;
     tree depth is bounded by the max shift.  Grid diameter is 22, so this
     only bites via the shifts; just check sanity. *)
  checkb
    (Printf.sprintf "max depth %d reasonable" d.Decomposition.max_depth)
    true
    (d.Decomposition.max_depth <= 60);
  checkb "rounds = horizon >= depth" true (d.Decomposition.rounds >= d.Decomposition.max_depth)

let test_decomposition_members_consistent () =
  let r = rng () in
  let g = Generators.cycle 30 in
  let d = Decomposition.run r g in
  let c = d.Decomposition.partitions.(0) in
  let members = Decomposition.cluster_members c in
  let total = List.fold_left (fun acc (_, l) -> acc + List.length l) 0 members in
  checki "members cover all vertices" 30 total;
  List.iter
    (fun (ctr, l) ->
      List.iter (fun v -> checki "member's center" ctr c.Decomposition.center_of.(v)) l)
    members

let test_decomposition_beta_tradeoff () =
  (* Smaller beta -> fewer cut edges per partition (bigger clusters). *)
  let g = Generators.grid ~rows:10 ~cols:10 in
  let cut_fraction beta =
    let r = Rng.create ~seed:31415 in
    let d = Decomposition.run r ~beta ~partitions:1 g in
    let c = d.Decomposition.partitions.(0) in
    let cut = ref 0 in
    Graph.iter_edges g (fun e ->
        if c.Decomposition.center_of.(e.Graph.u) <> c.Decomposition.center_of.(e.Graph.v)
        then incr cut);
    float_of_int !cut /. float_of_int (Graph.m g)
  in
  let many = ref 0 in
  (* average over a few seeds to keep the check stable *)
  for _ = 1 to 3 do
    if cut_fraction 0.08 < cut_fraction 0.7 then incr many
  done;
  checkb "beta=0.08 cuts fewer edges than beta=0.7" true (!many >= 2)

let test_decomposition_assigns_exactly_once () =
  (* Every vertex lands in exactly one cluster of every partition — over
     several seeds, not just one lucky draw. *)
  let g = Generators.connected_gnp (rng ()) ~n:45 ~p:0.12 in
  List.iter
    (fun seed ->
      let d = Decomposition.run (Rng.create ~seed) g in
      Array.iteri
        (fun p c ->
          let seen = Array.make (Graph.n g) 0 in
          List.iter
            (fun (_, members) ->
              List.iter (fun v -> seen.(v) <- seen.(v) + 1) members)
            (Decomposition.cluster_members c);
          Array.iteri
            (fun v count ->
              checki
                (Printf.sprintf "seed %d partition %d vertex %d" seed p v)
                1 count)
            seen)
        d.Decomposition.partitions)
    [ 1; 2; 3; 4; 5 ]

let test_decomposition_edge_cases () =
  (* Singleton graph: one cluster, itself, depth 0, full coverage. *)
  let one = Graph.create 1 in
  let d1 = Decomposition.run (rng ()) one in
  Array.iter
    (fun c ->
      checki "singleton is its own center" 0 c.Decomposition.center_of.(0);
      checki "singleton parent" (-1) c.Decomposition.parent_of.(0);
      checki "singleton depth" 0 c.Decomposition.depth_of.(0))
    d1.Decomposition.partitions;
  checkb "edgeless coverage is 1.0" true (Decomposition.coverage d1 = 1.0);
  (* Edgeless graph: every cluster is a singleton in every partition. *)
  let iso = Graph.create 4 in
  let d4 = Decomposition.run (rng ()) iso in
  Array.iter
    (fun c ->
      let members = Decomposition.cluster_members c in
      checki "four singleton clusters" 4 (List.length members);
      List.iter
        (fun (ctr, ms) -> checki (Printf.sprintf "cluster %d" ctr) 1 (List.length ms))
        members)
    d4.Decomposition.partitions;
  (* Parameter validation. *)
  List.iter
    (fun beta ->
      try
        ignore (Decomposition.run (rng ()) ~beta iso);
        Alcotest.fail "beta outside (0,1) should fail"
      with Invalid_argument _ -> ())
    [ 0.0; 1.0 ];
  try
    ignore (Decomposition.run (rng ()) ~partitions:0 iso);
    Alcotest.fail "partitions=0 should fail"
  with Invalid_argument _ -> ()

let test_decomposition_padding_probability () =
  (* Theorem 11.4 quantitatively: a single partition pads a constant
     fraction of edges, and the default ell = ~2 log2 n stack pushes the
     uncovered fraction to ~0 on every seed. *)
  let g = Generators.connected_gnp (rng ()) ~n:70 ~p:0.08 in
  let single = ref 0.0 and stacked = ref 0.0 in
  let seeds = [ 11; 22; 33; 44; 55 ] in
  List.iter
    (fun seed ->
      let d1 = Decomposition.run (Rng.create ~seed) ~partitions:1 g in
      single := !single +. Decomposition.coverage d1;
      let dl = Decomposition.run (Rng.create ~seed) g in
      stacked := !stacked +. Decomposition.coverage dl)
    seeds;
  let nseeds = float_of_int (List.length seeds) in
  checkb
    (Printf.sprintf "single partition pads a constant fraction (%.3f >= 0.3)"
       (!single /. nseeds))
    true
    (!single /. nseeds >= 0.3);
  checkb
    (Printf.sprintf "default stack pads almost everything (%.3f >= 0.99)"
       (!stacked /. nseeds))
    true
    (!stacked /. nseeds >= 0.99)

(* -------------------------- LOCAL spanner ---------------------------- *)

let test_local_spanner_valid_sampled () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:50 ~p:0.12 in
  let res = Local_spanner.build r ~mode:Fault.VFT ~k:2 ~f:2 g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) res.Local_spanner.selection ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:2
  in
  (match report.Verify.violation with
  | None -> ()
  | Some v -> Alcotest.failf "local: %s" (Format.asprintf "%a" Verify.pp_violation v));
  let report2 =
    Verify.random ~cfg:(Verify.config ~rng:r ~trials:40 ()) res.Local_spanner.selection ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:2
  in
  checkb "random faults ok" true (Verify.ok report2)

let test_local_spanner_exponential_engine () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:25 ~p:0.2 in
  let res =
    Local_spanner.build r ~engine:Local_spanner.Exponential ~mode:Fault.VFT ~k:2
      ~f:1 g
  in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) res.Local_spanner.selection ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:1
  in
  checkb "exact engine valid" true (Verify.ok report)

let test_local_spanner_eft () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.15 in
  let res = Local_spanner.build r ~mode:Fault.EFT ~k:2 ~f:1 g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) res.Local_spanner.selection ~mode:Fault.EFT
      ~stretch:(stretch 2) ~f:1
  in
  checkb "EFT valid" true (Verify.ok report)

let test_local_spanner_round_structure () =
  let r = rng () in
  let g = Generators.grid ~rows:7 ~cols:7 in
  let res = Local_spanner.build r ~mode:Fault.VFT ~k:2 ~f:1 g in
  checki "total = decomp + announce + gather + scatter"
    (res.Local_spanner.decomposition.Decomposition.rounds
    + res.Local_spanner.announce_rounds + res.Local_spanner.gather_rounds
    + res.Local_spanner.scatter_rounds)
    res.Local_spanner.total_rounds;
  checkb "rounds positive" true (res.Local_spanner.total_rounds > 0)

let test_local_spanner_size_vs_bound () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:90 ~p:0.25 in
  let res = Local_spanner.build r ~mode:Fault.VFT ~k:2 ~f:1 g in
  let bound = Bounds.local_size ~k:2 ~f:1 ~n:90 in
  checkb
    (Printf.sprintf "size %d <= 3x bound %.0f" res.Local_spanner.selection.Selection.size bound)
    true
    (float_of_int res.Local_spanner.selection.Selection.size <= 3. *. bound)

(* ------------------------- CONGEST Baswana-Sen ----------------------- *)

let test_congest_bs_valid () =
  let r = rng () in
  for seed = 1 to 4 do
    let g = Generators.connected_gnp (Rng.create ~seed) ~n:45 ~p:0.2 in
    let res = Congest_bs.build r ~k:2 g in
    let report =
      Verify.exhaustive res.Congest_bs.selection ~mode:Fault.VFT
        ~stretch:(stretch 2) ~f:0
    in
    match report.Verify.violation with
    | None -> ()
    | Some v -> Alcotest.failf "congest bs: %s" (Format.asprintf "%a" Verify.pp_violation v)
  done

let test_congest_bs_weighted_valid () =
  let r = rng () in
  let base = Generators.connected_gnp r ~n:40 ~p:0.25 in
  let g = Generators.with_uniform_weights r base ~lo:0.2 ~hi:7.0 in
  let res = Congest_bs.build r ~k:3 g in
  let report =
    Verify.exhaustive res.Congest_bs.selection ~mode:Fault.VFT
      ~stretch:(stretch 3) ~f:0
  in
  checkb "weighted k=3 valid" true (Verify.ok report)

let test_congest_bs_rounds_scale_k2 () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.15 in
  let r2 = (Congest_bs.build r ~k:2 g).Congest_bs.rounds in
  let r4 = (Congest_bs.build r ~k:4 g).Congest_bs.rounds in
  (* sum_{i<k}(i+2)+2: k=2 -> 5, k=4 -> 14, both graph-independent *)
  checki "k=2 rounds" 5 r2;
  checki "k=4 rounds" 14 r4

let test_congest_bs_no_violations () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.15 in
  let res = Congest_bs.build r ~k:3 g in
  checki "no CONGEST violations" 0 res.Congest_bs.stats.Net.congest_violations

let test_congest_bs_history_recorded () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.2 in
  let res = Congest_bs.build r ~record_history:true ~k:2 g in
  checki "history rounds = rounds" res.Congest_bs.rounds
    (Array.length res.Congest_bs.history);
  let without = Congest_bs.build r ~k:2 g in
  checki "no history by default" 0 (Array.length without.Congest_bs.history)

let test_congest_bs_matches_size_shape () =
  let r = rng () in
  let g = Generators.complete 50 in
  let res = Congest_bs.build r ~k:2 g in
  checkb "sparsifies K50" true
    (res.Congest_bs.selection.Selection.size < Graph.m g / 2)

(* ------------------------- CONGEST FT spanner ------------------------ *)

let test_congest_ft_valid_sampled () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:36 ~p:0.2 in
  let res = Congest_ft.build r ~mode:Fault.VFT ~k:2 ~f:1 g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) res.Congest_ft.selection ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:1
  in
  (match report.Verify.violation with
  | None -> ()
  | Some v -> Alcotest.failf "congest ft: %s" (Format.asprintf "%a" Verify.pp_violation v));
  checkb "iterations positive" true (res.Congest_ft.iterations >= 1)

let test_congest_ft_eft () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.25 in
  let res = Congest_ft.build r ~mode:Fault.EFT ~k:2 ~f:1 g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) res.Congest_ft.selection ~mode:Fault.EFT
      ~stretch:(stretch 2) ~f:1
  in
  checkb "EFT valid" true (Verify.ok report)

let test_congest_ft_round_accounting () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.25 in
  let res = Congest_ft.build r ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:2 g in
  checki "total = phase1 + phase2"
    (res.Congest_ft.phase1_rounds + res.Congest_ft.phase2_rounds)
    res.Congest_ft.total_rounds;
  checkb "scheduling only adds rounds" true
    (res.Congest_ft.phase2_rounds >= res.Congest_ft.phase2_base_rounds);
  checkb "overlap observed" true (res.Congest_ft.max_overlap >= 1)

let test_congest_ft_f0_degenerates () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:25 ~p:0.3 in
  let res = Congest_ft.build r ~mode:Fault.VFT ~k:2 ~f:0 g in
  checki "one iteration" 1 res.Congest_ft.iterations;
  let report =
    Verify.exhaustive res.Congest_ft.selection ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:0
  in
  checkb "plain spanner" true (Verify.ok report)

let test_congest_ft_overlap_grows_with_f () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.2 in
  let o1 = (Congest_ft.build r ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:1 g).Congest_ft.max_overlap in
  let o3 = (Congest_ft.build r ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:3 g).Congest_ft.max_overlap in
  checkb (Printf.sprintf "more iterations, more overlap (%d vs %d)" o1 o3) true (o3 >= o1)

(* --------------------------- async net -------------------------------- *)

let test_async_at_rejects_past () =
  let g = Generators.path 2 in
  let net = Async_net.create (rng ()) g in
  (* a timer at the current instant is fine... *)
  Async_net.at net ~time:(Async_net.now net) (fun () -> ());
  ignore (Async_net.run net);
  (* ...but strictly in the past is refused, also after the clock moved *)
  Async_net.at net ~time:2. (fun () -> ());
  ignore (Async_net.run net);
  checkb "clock advanced" true (Async_net.now net >= 2.);
  try
    Async_net.at net ~time:1. (fun () -> ());
    Alcotest.fail "timer in the past accepted"
  with Invalid_argument _ -> ()

let test_async_send_requires_adjacency () =
  let g = Generators.path 3 in
  let net = Async_net.create (rng ()) g in
  (try
     Async_net.send net ~src:0 ~dst:2 (fun () -> ());
     Alcotest.fail "non-adjacent send accepted"
   with Invalid_argument _ -> ());
  checki "rejected send not counted" 0 (Async_net.messages net)

let test_async_run_max_events_pauses_mid_queue () =
  let g = Generators.path 2 in
  let net = Async_net.create (rng ()) g in
  let hits = ref 0 in
  for i = 0 to 4 do
    Async_net.at net ~time:(float_of_int i) (fun () -> incr hits)
  done;
  checki "stops at the budget" 2 (Async_net.run ~max_events:2 net);
  checki "exactly two handlers ran" 2 !hits;
  checkb "clock at the last processed event" true (Async_net.now net = 1.);
  checki "remainder still queued" 3 (Async_net.run net);
  checki "all handlers ran" 5 !hits

let test_async_run_until_keeps_future_events () =
  let g = Generators.path 2 in
  let net = Async_net.create (rng ()) g in
  let log = ref [] in
  List.iter
    (fun t -> Async_net.at net ~time:t (fun () -> log := t :: !log))
    [ 1.; 2.; 10. ];
  checki "events up to the horizon" 2 (Async_net.run ~until:5. net);
  checkb "clock does not pass the horizon" true (Async_net.now net <= 5.);
  checki "future event survives the pause" 1 (Async_net.run net);
  checkb "order preserved" true (!log = [ 10.; 2.; 1. ])

let () =
  Alcotest.run "distributed"
    [
      ( "net",
        [
          Alcotest.test_case "round delivery" `Quick test_net_delivery_next_round_only;
          Alcotest.test_case "adjacency required" `Quick test_net_requires_adjacency;
          Alcotest.test_case "broadcast" `Quick test_net_broadcast;
          Alcotest.test_case "stats" `Quick test_net_stats_accounting;
          Alcotest.test_case "congest violations" `Quick test_net_congest_violations;
          Alcotest.test_case "charge rounds" `Quick test_net_charge_rounds;
          Alcotest.test_case "history" `Quick test_net_history;
        ] );
      ( "decomposition (Thm 11)",
        [
          Alcotest.test_case "partition" `Quick test_decomposition_is_partition;
          Alcotest.test_case "trees consistent" `Quick test_decomposition_trees_consistent;
          Alcotest.test_case "edge coverage" `Quick test_decomposition_coverage_whp;
          Alcotest.test_case "cluster diameter" `Quick test_decomposition_cluster_diameter_logarithmic;
          Alcotest.test_case "members" `Quick test_decomposition_members_consistent;
          Alcotest.test_case "beta tradeoff" `Quick test_decomposition_beta_tradeoff;
          Alcotest.test_case "assigns exactly once" `Quick test_decomposition_assigns_exactly_once;
          Alcotest.test_case "edge cases" `Quick test_decomposition_edge_cases;
          Alcotest.test_case "padding probability" `Quick test_decomposition_padding_probability;
        ] );
      ( "local spanner (Thm 12)",
        [
          Alcotest.test_case "valid sampled" `Quick test_local_spanner_valid_sampled;
          Alcotest.test_case "exponential engine" `Quick test_local_spanner_exponential_engine;
          Alcotest.test_case "EFT" `Quick test_local_spanner_eft;
          Alcotest.test_case "round structure" `Quick test_local_spanner_round_structure;
          Alcotest.test_case "size vs bound" `Quick test_local_spanner_size_vs_bound;
        ] );
      ( "congest baswana-sen (Thm 14)",
        [
          Alcotest.test_case "valid" `Quick test_congest_bs_valid;
          Alcotest.test_case "weighted" `Quick test_congest_bs_weighted_valid;
          Alcotest.test_case "rounds O(k^2)" `Quick test_congest_bs_rounds_scale_k2;
          Alcotest.test_case "no violations" `Quick test_congest_bs_no_violations;
          Alcotest.test_case "history" `Quick test_congest_bs_history_recorded;
          Alcotest.test_case "sparsifies" `Quick test_congest_bs_matches_size_shape;
        ] );
      ( "congest ft spanner (Thm 15)",
        [
          Alcotest.test_case "valid sampled" `Quick test_congest_ft_valid_sampled;
          Alcotest.test_case "EFT" `Quick test_congest_ft_eft;
          Alcotest.test_case "round accounting" `Quick test_congest_ft_round_accounting;
          Alcotest.test_case "f=0" `Quick test_congest_ft_f0_degenerates;
          Alcotest.test_case "overlap grows" `Quick test_congest_ft_overlap_grows_with_f;
        ] );
      ( "async net",
        [
          Alcotest.test_case "at rejects past" `Quick test_async_at_rejects_past;
          Alcotest.test_case "adjacency required" `Quick test_async_send_requires_adjacency;
          Alcotest.test_case "max_events pauses" `Quick test_async_run_max_events_pauses_mid_queue;
          Alcotest.test_case "until keeps future" `Quick test_async_run_until_keeps_future_events;
        ] );
    ]
