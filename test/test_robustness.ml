(* Robustness and edge-case coverage across the public APIs: degenerate
   graphs (empty, single vertex, disconnected), extreme parameters (f
   larger than the graph, k past the diameter), and boundary conditions
   the main suites do not reach. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rng () = Rng.create ~seed:4242

let stretch k = float_of_int ((2 * k) - 1)

let disconnected () =
  (* two triangles + an isolated vertex *)
  Graph.of_edges 7 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ]

(* ------------------------- degenerate graphs ------------------------- *)

let test_empty_graph_everywhere () =
  let g = Graph.create 0 in
  checki "poly greedy" 0 (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g).Selection.size;
  checki "classic" 0 (Classic_greedy.build ~k:2 g).Selection.size;
  checki "baswana-sen" 0 (Baswana_sen.build (rng ()) ~k:2 g).Selection.size;
  checki "thorup-zwick" 0 (Thorup_zwick.build (rng ()) ~k:2 g).Selection.size;
  checki "dk11" 0 (Dk11.build (rng ()) ~mode:Fault.VFT ~k:2 ~f:1 g).Selection.size;
  let report =
    Verify.exhaustive (Selection.full g) ~mode:Fault.VFT ~stretch:3.0 ~f:1
  in
  checkb "verify" true (Verify.ok report)

let test_single_vertex_everywhere () =
  let g = Graph.create 1 in
  checki "poly greedy" 0 (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:3 g).Selection.size;
  checki "baswana-sen" 0 (Baswana_sen.build (rng ()) ~k:3 g).Selection.size;
  checki "thorup-zwick" 0 (Thorup_zwick.build (rng ()) ~k:3 g).Selection.size;
  let oracle = Oracle.build (rng ()) ~k:2 g in
  checkb "oracle self" true (Oracle.query oracle 0 0 = 0.)

let test_disconnected_all_builders () =
  let g = disconnected () in
  List.iter
    (fun (name, sel) ->
      let report =
        Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:1
      in
      checkb name true (Verify.ok report))
    [
      ("poly greedy", Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g);
      ("exp greedy", Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g);
      ("dk11", Dk11.build (rng ()) ~mode:Fault.VFT ~k:2 ~f:1 g);
    ];
  (* f=0 algorithms *)
  List.iter
    (fun (name, sel) ->
      let report =
        Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:0
      in
      checkb name true (Verify.ok report))
    [
      ("classic", Classic_greedy.build ~k:2 g);
      ("baswana-sen", Baswana_sen.build (rng ()) ~k:2 g);
      ("thorup-zwick", Thorup_zwick.build (rng ()) ~k:2 g);
    ]

let test_disconnected_distributed () =
  let g = disconnected () in
  let r = rng () in
  let local = Local_spanner.build r ~mode:Fault.VFT ~k:2 ~f:1 g in
  checkb "local valid" true
    (Verify.ok
       (Verify.exhaustive local.Local_spanner.selection ~mode:Fault.VFT
          ~stretch:(stretch 2) ~f:1));
  let congest = Congest_ft.build r ~c:1.0 ~mode:Fault.VFT ~k:2 ~f:1 g in
  checkb "congest valid" true
    (Verify.ok
       (Verify.exhaustive congest.Congest_ft.selection ~mode:Fault.VFT
          ~stretch:(stretch 2) ~f:1))

let test_disconnected_oracle () =
  let g = disconnected () in
  let oracle = Oracle.build (rng ()) ~k:2 g in
  checkb "cross-component infinity" true (Oracle.query oracle 0 3 = infinity);
  checkb "isolated vertex" true (Oracle.query oracle 0 6 = infinity);
  checkb "within component" true (Oracle.query oracle 3 5 <= 3.0)

(* ------------------------ extreme parameters ------------------------- *)

let test_f_larger_than_graph () =
  let g = Generators.complete 6 in
  (* f = 50 vertex faults on a 6-vertex graph: every edge must stay (any
     pair can be isolated from all others). *)
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:50 g in
  checki "whole graph kept" (Graph.m g) sel.Selection.size;
  let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:4 in
  checkb "valid" true (Verify.ok report)

let test_k_past_diameter () =
  (* With 2k-1 >= diameter and f = 0 the spanner can be a spanning
     structure far sparser than G. *)
  let g = Generators.complete 12 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:6 ~f:0 g in
  checkb "very sparse" true (sel.Selection.size <= 2 * 12);
  let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 6) ~f:0 in
  checkb "valid" true (Verify.ok report)

let test_k_equals_one_all_builders () =
  (* 1-spanners must preserve exact distances: on K_n everything stays. *)
  let g = Generators.complete 7 in
  List.iter
    (fun (name, size) -> checki name (Graph.m g) size)
    [
      ("poly", (Poly_greedy.build ~mode:Fault.VFT ~k:1 ~f:1 g).Selection.size);
      ("classic", (Classic_greedy.build ~k:1 g).Selection.size);
      ("bs", (Baswana_sen.build (rng ()) ~k:1 g).Selection.size);
      ("tz", (Thorup_zwick.build (rng ()) ~k:1 g).Selection.size);
    ]

let test_k_f_2_on_k_f_plus_2 () =
  (* K_{f+2}: faulting all but two vertices isolates any pair, so every
     edge is forced at fault budget f. *)
  List.iter
    (fun f ->
      let g = Generators.complete (f + 2) in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g in
      checki (Printf.sprintf "K_%d at f=%d keeps all" (f + 2) f) (Graph.m g)
        sel.Selection.size)
    [ 1; 2; 3; 4 ]

let test_eft_star_graph () =
  (* A star has no alternative paths: any EFT spanner keeps every edge,
     and faulting an edge legitimately disconnects its leaf. *)
  let g = Graph.of_edges 6 [ (0, 1); (0, 2); (0, 3); (0, 4); (0, 5) ] in
  let sel = Poly_greedy.build ~mode:Fault.EFT ~k:2 ~f:2 g in
  checki "star kept whole" 5 sel.Selection.size;
  let report = Verify.exhaustive sel ~mode:Fault.EFT ~stretch:(stretch 2) ~f:2 in
  checkb "valid (disconnection matches source)" true (Verify.ok report)

(* ------------------------ simulator boundaries ----------------------- *)

let test_net_zero_capacity_congest () =
  let g = Generators.path 2 in
  let net = Net.create ~model:(Net.Congest 0) ~bits:(fun _ -> 1) g in
  Net.send net ~src:0 ~dst:1 ();
  Net.next_round net;
  checki "everything violates a zero budget" 1 (Net.stats net).Net.congest_violations

let test_async_zero_delay_bounds () =
  let r = rng () in
  let net = Async_net.create r ~min_delay:0.0 ~max_delay:0.0 (Generators.path 2) in
  let t = ref (-1.) in
  Async_net.send net ~src:0 ~dst:1 (fun () -> t := Async_net.now net);
  ignore (Async_net.run net);
  checkb "instant delivery" true (!t >= 0. && !t < 1e-9)

let test_synchronizer_all_dead () =
  let g = Generators.cycle 4 in
  let rep =
    Synchronizer.run (rng ()) ~failures:(0.0, [ 0; 1; 2; 3 ]) ~pulses:3
      ~skeleton:(Selection.full g) g
  in
  checkb "vacuously connected" true rep.Synchronizer.survivors_connected

let test_decomposition_single_vertex () =
  let g = Graph.create 1 in
  let d = Decomposition.run (rng ()) g in
  Array.iter
    (fun c -> checki "self-centered" 0 c.Decomposition.center_of.(0))
    d.Decomposition.partitions

(* ------------------------- mask boundary cases ----------------------- *)

let test_short_masks_ignored_beyond_length () =
  (* Masks shorter than n/m are legal: entries beyond their length count
     as unblocked. *)
  let g = Generators.path 5 in
  let short = [| true |] in
  let d = Bfs.distances ~blocked_vertices:short g 1 in
  checki "vertex 0 blocked" (-1) d.(0);
  checki "vertex 4 fine" 3 d.(4)

let test_fault_empty_set () =
  let g = Generators.cycle 5 in
  let sel = Selection.full g in
  checkb "empty fault trivially ok" true
    (Verify.check_under_fault sel ~stretch:1.0 (Fault.empty Fault.VFT) = None)

let test_selection_empty_mask () =
  let g = Generators.cycle 4 in
  let sel = Selection.of_ids g [] in
  checki "empty" 0 sel.Selection.size;
  checkb "every edge blocked" true
    (Array.for_all (fun b -> b) (Selection.blocked_edges sel []))

(* ---------------------- determinism end to end ----------------------- *)

let test_full_pipeline_deterministic () =
  let build seed =
    let r = Rng.create ~seed in
    let g = Generators.connected_gnp r ~n:50 ~p:0.2 in
    let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
    let local = Local_spanner.build r ~mode:Fault.VFT ~k:2 ~f:1 g in
    let congest = Congest_ft.build r ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:1 g in
    ( Selection.ids sel,
      Selection.ids local.Local_spanner.selection,
      Selection.ids congest.Congest_ft.selection,
      congest.Congest_ft.total_rounds )
  in
  let a = build 77 and b = build 77 in
  checkb "bit-for-bit reproducible" true (a = b)

let () =
  Alcotest.run "robustness"
    [
      ( "degenerate graphs",
        [
          Alcotest.test_case "empty graph" `Quick test_empty_graph_everywhere;
          Alcotest.test_case "single vertex" `Quick test_single_vertex_everywhere;
          Alcotest.test_case "disconnected builders" `Quick test_disconnected_all_builders;
          Alcotest.test_case "disconnected distributed" `Quick test_disconnected_distributed;
          Alcotest.test_case "disconnected oracle" `Quick test_disconnected_oracle;
        ] );
      ( "extreme parameters",
        [
          Alcotest.test_case "f > n" `Quick test_f_larger_than_graph;
          Alcotest.test_case "k past diameter" `Quick test_k_past_diameter;
          Alcotest.test_case "k = 1" `Quick test_k_equals_one_all_builders;
          Alcotest.test_case "K_{f+2} forced" `Quick test_k_f_2_on_k_f_plus_2;
          Alcotest.test_case "EFT star" `Quick test_eft_star_graph;
        ] );
      ( "simulator boundaries",
        [
          Alcotest.test_case "zero-capacity CONGEST" `Quick test_net_zero_capacity_congest;
          Alcotest.test_case "zero-delay async" `Quick test_async_zero_delay_bounds;
          Alcotest.test_case "all nodes dead" `Quick test_synchronizer_all_dead;
          Alcotest.test_case "1-vertex decomposition" `Quick test_decomposition_single_vertex;
        ] );
      ( "mask boundaries",
        [
          Alcotest.test_case "short masks" `Quick test_short_masks_ignored_beyond_length;
          Alcotest.test_case "empty fault" `Quick test_fault_empty_set;
          Alcotest.test_case "empty selection" `Quick test_selection_empty_mask;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "full pipeline" `Quick test_full_pipeline_deterministic;
        ] );
    ]
