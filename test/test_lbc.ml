(* Tests for Algorithm 2 (Lbc) and the exact Length-Bounded Cut solver
   (Lbc_exact): hand-built instances, the Theorem 4 gap guarantee, and
   cross-validation of the two on random graphs. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rng () = Rng.create ~seed:1234

let is_yes = function Lbc.Yes _ -> true | Lbc.No _ -> false

(* A "theta graph": [paths] internally-disjoint u-v paths of [len] hops
   each.  The minimum length-t vertex cut (t >= len) has size [paths]. *)
let theta ~paths ~len =
  let n = 2 + (paths * (len - 1)) in
  let g = Graph.create n in
  let u = 0 and v = 1 in
  let next = ref 2 in
  for _ = 1 to paths do
    let prev = ref u in
    for _ = 1 to len - 1 do
      ignore (Graph.add_edge_unit g !prev !next);
      prev := !next;
      incr next
    done;
    ignore (Graph.add_edge_unit g !prev v)
  done;
  (g, u, v)

(* ---------------------- Lbc_exact oracle ---------------------------- *)

let test_exact_single_path () =
  let g = Generators.path 5 in
  (match Lbc_exact.min_cut ~mode:Fault.VFT g ~u:0 ~v:4 ~t:4 ~limit:3 with
  | Some cut -> checki "one interior vertex suffices" 1 (List.length cut)
  | None -> Alcotest.fail "cut expected");
  match Lbc_exact.min_cut ~mode:Fault.EFT g ~u:0 ~v:4 ~t:4 ~limit:3 with
  | Some cut -> checki "one edge suffices" 1 (List.length cut)
  | None -> Alcotest.fail "cut expected"

let test_exact_direct_edge_vft_uncuttable () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  checkb "no vertex cut can remove a direct edge" true
    (Lbc_exact.min_cut ~mode:Fault.VFT g ~u:0 ~v:1 ~t:1 ~limit:10 = None);
  match Lbc_exact.min_cut ~mode:Fault.EFT g ~u:0 ~v:1 ~t:1 ~limit:10 with
  | Some cut -> checki "edge cut removes it" 1 (List.length cut)
  | None -> Alcotest.fail "edge cut expected"

let test_exact_theta_graphs () =
  List.iter
    (fun paths ->
      let g, u, v = theta ~paths ~len:3 in
      match Lbc_exact.min_cut ~mode:Fault.VFT g ~u ~v ~t:5 ~limit:paths with
      | Some cut ->
          checki (Printf.sprintf "theta %d" paths) paths (List.length cut);
          checkb "certified" true (Lbc_exact.is_cut ~mode:Fault.VFT g ~u ~v ~t:5 cut)
      | None -> Alcotest.fail "cut expected")
    [ 1; 2; 3; 4 ]

let test_exact_limit_respected () =
  let g, u, v = theta ~paths:3 ~len:3 in
  checkb "limit below optimum" true
    (Lbc_exact.min_cut ~mode:Fault.VFT g ~u ~v ~t:5 ~limit:2 = None)

let test_exact_t_sensitivity () =
  (* Cycle C6: between antipodes there are two 3-hop paths.  For t = 2 no
     path exists at all, so the empty set is already a cut. *)
  let g = Generators.cycle 6 in
  (match Lbc_exact.min_cut ~mode:Fault.VFT g ~u:0 ~v:3 ~t:2 ~limit:2 with
  | Some cut -> checki "empty cut for t=2" 0 (List.length cut)
  | None -> Alcotest.fail "empty cut expected");
  match Lbc_exact.min_cut ~mode:Fault.VFT g ~u:0 ~v:3 ~t:3 ~limit:3 with
  | Some cut -> checki "two vertices for t=3" 2 (List.length cut)
  | None -> Alcotest.fail "cut expected"

let test_exact_cut_certificate_valid () =
  let r = rng () in
  for _ = 1 to 15 do
    let g = Generators.connected_gnp r ~n:14 ~p:0.25 in
    let u = 0 and v = Graph.n g - 1 in
    match Lbc_exact.min_cut ~mode:Fault.VFT g ~u ~v ~t:3 ~limit:4 with
    | Some cut ->
        checkb "certificate" true (Lbc_exact.is_cut ~mode:Fault.VFT g ~u ~v ~t:3 cut)
    | None -> ()
  done

(* ------------------------- Lbc (Algorithm 2) ------------------------ *)

let test_lbc_no_path_is_immediate_yes () =
  let g = Graph.create 4 in
  match Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:3 ~t:3 ~alpha:2 with
  | Lbc.Yes { cut } -> checki "empty cut" 0 (List.length cut)
  | Lbc.No _ -> Alcotest.fail "expected YES"

let test_lbc_direct_edge_vft_is_no () =
  (* VFT cannot cut a direct edge, so LBC must answer NO. *)
  let g = Graph.of_edges 2 [ (0, 1) ] in
  checkb "NO" false (is_yes (Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:1 ~t:1 ~alpha:5))

let test_lbc_direct_edge_eft_is_yes () =
  let g = Graph.of_edges 2 [ (0, 1) ] in
  checkb "YES" true (is_yes (Lbc.decide ~mode:Fault.EFT g ~u:0 ~v:1 ~t:1 ~alpha:1))

let test_lbc_single_path_yes () =
  let g = Generators.path 4 in
  match Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:3 ~t:3 ~alpha:1 with
  | Lbc.Yes { cut } ->
      checkb "cut within alpha*(t-1)" true (List.length cut <= 1 * 2);
      checkb "certified" true (Lbc_exact.is_cut ~mode:Fault.VFT g ~u:0 ~v:3 ~t:3 cut)
  | Lbc.No _ -> Alcotest.fail "expected YES"

let test_lbc_alpha_zero_is_reachability () =
  (* alpha = 0: YES iff there is no t-hop path at all (the classic greedy
     test). *)
  let g = Generators.cycle 8 in
  checkb "4 hops needed, t=3 -> YES" true
    (is_yes (Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:4 ~t:3 ~alpha:0));
  checkb "t=4 path exists -> NO" false
    (is_yes (Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:4 ~t:4 ~alpha:0))

let test_lbc_gap_yes_side () =
  (* Theorem 4 completeness: if a cut of size <= alpha exists, the answer
     must be YES.  Cross-check against the exact solver. *)
  let r = rng () in
  let tested = ref 0 in
  for _ = 1 to 40 do
    let g = Generators.connected_gnp r ~n:16 ~p:0.2 in
    let u = Rng.int r 16 and v = Rng.int r 16 in
    if u <> v then begin
      let t = 3 in
      let alpha = 2 in
      match Lbc_exact.min_cut ~mode:Fault.VFT g ~u ~v ~t ~limit:alpha with
      | Some _ ->
          incr tested;
          checkb "small cut forces YES" true
            (is_yes (Lbc.decide ~mode:Fault.VFT g ~u ~v ~t ~alpha))
      | None -> ()
    end
  done;
  checkb "the sweep exercised the YES side" true (!tested > 5)

let test_lbc_gap_no_side () =
  (* Theorem 4 soundness: if every cut has size > alpha * t, the answer
     must be NO.  A theta graph with alpha*t + 1 disjoint short paths
     qualifies. *)
  let t = 3 in
  let alpha = 2 in
  let g, u, v = theta ~paths:((alpha * t) + 1) ~len:3 in
  checkb "NO forced" false (is_yes (Lbc.decide ~mode:Fault.VFT g ~u ~v ~t ~alpha))

let test_lbc_yes_certificate_is_cut () =
  let r = rng () in
  for _ = 1 to 30 do
    let g = Generators.connected_gnp r ~n:20 ~p:0.15 in
    let u = Rng.int r 20 and v = Rng.int r 20 in
    if u <> v then
      List.iter
        (fun mode ->
          match Lbc.decide ~mode g ~u ~v ~t:3 ~alpha:2 with
          | Lbc.Yes { cut } ->
              checkb "certificate is a length-t cut" true
                (Lbc_exact.is_cut ~mode g ~u ~v ~t:3 cut);
              checkb "certificate size bound" true (List.length cut <= 2 * 3)
          | Lbc.No _ -> ())
        [ Fault.VFT; Fault.EFT ]
  done

let test_lbc_eft_theta () =
  let g, u, v = theta ~paths:2 ~len:3 in
  checkb "EFT yes at alpha=2" true
    (is_yes (Lbc.decide ~mode:Fault.EFT g ~u ~v ~t:5 ~alpha:2))

let test_lbc_workspace_reuse_consistent () =
  let ws = Lbc.Workspace.create () in
  let r = rng () in
  for _ = 1 to 25 do
    let g = Generators.connected_gnp r ~n:18 ~p:0.2 in
    let u = Rng.int r 18 and v = Rng.int r 18 in
    if u <> v then begin
      let a = Lbc.decide ~ws ~mode:Fault.VFT g ~u ~v ~t:3 ~alpha:2 in
      let b = Lbc.decide ~mode:Fault.VFT g ~u ~v ~t:3 ~alpha:2 in
      checkb "same verdict with and without shared workspace" (is_yes a) (is_yes b)
    end
  done

(* Regression for the workspace growth bug: [Workspace.ensure] used to
   replace a too-small mask with a fresh array instead of blit-growing it,
   so a workspace shared across graphs of interleaved sizes lost mask
   state exactly when a bigger graph forced a growth.  Verdicts AND cut
   certificates must match fresh-workspace runs at every step. *)
let test_lbc_workspace_growth_preserves_state () =
  let ws = Lbc.Workspace.create () in
  let r = rng () in
  let sizes = [ 8; 40; 12; 200; 10; 400; 16 ] in
  List.iter
    (fun n ->
      let g = Generators.connected_gnp r ~n ~p:(min 0.5 (8.0 /. float_of_int n)) in
      let u = Rng.int r n and v = Rng.int r n in
      if u <> v then
        List.iter
          (fun mode ->
            let shared = Lbc.decide ~ws ~mode g ~u ~v ~t:3 ~alpha:2 in
            let fresh = Lbc.decide ~mode g ~u ~v ~t:3 ~alpha:2 in
            match (shared, fresh) with
            | Lbc.Yes { cut = c1 }, Lbc.Yes { cut = c2 } ->
                check
                  Alcotest.(list int)
                  (Printf.sprintf "same cut at n=%d" n)
                  (List.sort compare c2) (List.sort compare c1)
            | Lbc.No _, Lbc.No _ -> ()
            | _ ->
                Alcotest.failf "verdict diverged at n=%d: shared=%b fresh=%b" n
                  (is_yes shared) (is_yes fresh))
          [ Fault.VFT; Fault.EFT ])
    sizes

let test_lbc_rejects_bad_args () =
  let g = Generators.path 3 in
  (try
     ignore (Lbc.decide ~mode:Fault.VFT g ~u:1 ~v:1 ~t:1 ~alpha:1);
     Alcotest.fail "u = v should fail"
   with Invalid_argument _ -> ());
  (try
     ignore (Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:1 ~t:0 ~alpha:1);
     Alcotest.fail "t = 0 should fail"
   with Invalid_argument _ -> ());
  try
    ignore (Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:1 ~t:1 ~alpha:(-1));
    Alcotest.fail "alpha < 0 should fail"
  with Invalid_argument _ -> ()

let test_lbc_monotone_in_alpha () =
  (* More removal rounds can only flip NO -> YES. *)
  let r = rng () in
  for _ = 1 to 30 do
    let g = Generators.connected_gnp r ~n:16 ~p:0.25 in
    let u = Rng.int r 16 and v = Rng.int r 16 in
    if u <> v then begin
      let weaker = is_yes (Lbc.decide ~mode:Fault.VFT g ~u ~v ~t:3 ~alpha:1) in
      let stronger = is_yes (Lbc.decide ~mode:Fault.VFT g ~u ~v ~t:3 ~alpha:4) in
      if weaker then checkb "YES stays YES as alpha grows" true stronger
    end
  done

let test_lbc_does_not_mutate_graph () =
  let g = Generators.cycle 8 in
  let before = Graph.m g in
  ignore (Lbc.decide ~mode:Fault.VFT g ~u:0 ~v:4 ~t:4 ~alpha:2);
  ignore (Lbc.decide ~mode:Fault.EFT g ~u:0 ~v:4 ~t:4 ~alpha:2);
  checki "m unchanged" before (Graph.m g)

let () =
  Alcotest.run "length-bounded cut"
    [
      ( "exact",
        [
          Alcotest.test_case "single path" `Quick test_exact_single_path;
          Alcotest.test_case "direct edge VFT" `Quick test_exact_direct_edge_vft_uncuttable;
          Alcotest.test_case "theta graphs" `Quick test_exact_theta_graphs;
          Alcotest.test_case "limit respected" `Quick test_exact_limit_respected;
          Alcotest.test_case "t sensitivity" `Quick test_exact_t_sensitivity;
          Alcotest.test_case "certificates" `Quick test_exact_cut_certificate_valid;
        ] );
      ( "algorithm 2",
        [
          Alcotest.test_case "no path = YES" `Quick test_lbc_no_path_is_immediate_yes;
          Alcotest.test_case "direct edge VFT = NO" `Quick test_lbc_direct_edge_vft_is_no;
          Alcotest.test_case "direct edge EFT = YES" `Quick test_lbc_direct_edge_eft_is_yes;
          Alcotest.test_case "single path YES" `Quick test_lbc_single_path_yes;
          Alcotest.test_case "alpha=0 reachability" `Quick test_lbc_alpha_zero_is_reachability;
          Alcotest.test_case "gap YES side (Thm 4)" `Quick test_lbc_gap_yes_side;
          Alcotest.test_case "gap NO side (Thm 4)" `Quick test_lbc_gap_no_side;
          Alcotest.test_case "YES certificates" `Quick test_lbc_yes_certificate_is_cut;
          Alcotest.test_case "EFT theta" `Quick test_lbc_eft_theta;
          Alcotest.test_case "workspace reuse" `Quick test_lbc_workspace_reuse_consistent;
          Alcotest.test_case "workspace growth" `Quick
            test_lbc_workspace_growth_preserves_state;
          Alcotest.test_case "rejects bad args" `Quick test_lbc_rejects_bad_args;
          Alcotest.test_case "monotone in alpha" `Quick test_lbc_monotone_in_alpha;
          Alcotest.test_case "no graph mutation" `Quick test_lbc_does_not_mutate_graph;
        ] );
    ]
