(* Tests for the application-layer modules: the dynamic maintainer's
   insertion-only face, the Thorup-Zwick distance oracle, the
   asynchronous simulator and the synchronizer. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

let rng () = Rng.create ~seed:808

let stretch k = float_of_int ((2 * k) - 1)

(* ----------------- Dynamic (insertion-only face) --------------------- *)

let dyn ~mode ~k ~f ~n =
  Dynamic.create ~opts:(Dynamic.opts ~mode ~k ~f ()) (Graph.create n)

let test_incremental_matches_offline_input_order () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.25 in
  let d = dyn ~mode:Fault.VFT ~k:2 ~f:2 ~n:40 in
  Graph.iter_edges g (fun e ->
      ignore (Dynamic.apply d [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = e.Graph.w } ]));
  let offline = Poly_greedy.build ~order:Poly_greedy.Input_order ~mode:Fault.VFT ~k:2 ~f:2 g in
  let snap = Dynamic.snapshot d in
  checki "same size" offline.Selection.size (Dynamic.size d);
  (* insertion-only: the maintainer's edge ids are arrival-ordered, hence
     identical to the source graph's. *)
  check (Alcotest.list Alcotest.int) "same selection" (Selection.ids offline)
    (Selection.ids snap)

let test_incremental_snapshot_is_valid_spanner () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:13 ~p:0.4 in
  let d = dyn ~mode:Fault.VFT ~k:2 ~f:1 ~n:13 in
  Graph.iter_edges g (fun e ->
      ignore (Dynamic.apply d [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = 1.0 } ]));
  let report =
    Verify.exhaustive (Dynamic.snapshot d) ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:1
  in
  checkb "valid" true (Verify.ok report)

let test_incremental_prefix_validity () =
  (* Every prefix of the stream yields a valid spanner of the prefix. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:12 ~p:0.4 in
  let d = dyn ~mode:Fault.VFT ~k:2 ~f:1 ~n:12 in
  let count = ref 0 in
  Graph.iter_edges g (fun e ->
      ignore (Dynamic.apply d [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = 1.0 } ]);
      incr count;
      if !count mod 10 = 0 then begin
        let report =
          Verify.exhaustive (Dynamic.snapshot d) ~mode:Fault.VFT
            ~stretch:(stretch 2) ~f:1
        in
        checkb (Printf.sprintf "prefix %d valid" !count) true (Verify.ok report)
      end)

let test_incremental_monotone_flag () =
  let d = dyn ~mode:Fault.VFT ~k:2 ~f:1 ~n:4 in
  ignore (Dynamic.apply d [ Dynamic.Insert { u = 0; v = 1; w = 1.0 } ]);
  ignore (Dynamic.apply d [ Dynamic.Insert { u = 1; v = 2; w = 2.0 } ]);
  checkb "still monotone" true (Dynamic.weight_monotone d);
  ignore (Dynamic.apply d [ Dynamic.Insert { u = 2; v = 3; w = 1.5 } ]);
  checkb "violation detected" false (Dynamic.weight_monotone d)

let test_incremental_counts () =
  let d = dyn ~mode:Fault.EFT ~k:2 ~f:1 ~n:3 in
  let s1 = Dynamic.apply d [ Dynamic.Insert { u = 0; v = 1; w = 1.0 } ] in
  checki "first kept" 1 s1.Dynamic.kept;
  let s2 = Dynamic.apply d [ Dynamic.Insert { u = 1; v = 2; w = 1.0 } ] in
  checki "second kept" 1 s2.Dynamic.kept;
  checki "seen" 2 (Dynamic.live_edges d);
  checki "kept" 2 (Dynamic.size d)

let test_incremental_replay_determinism () =
  (* The guarantee the removed Incremental alias leaned on: an insertion
     stream replayed through a fresh handle reproduces the selection
     bit for bit. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:20 ~p:0.3 in
  let feed () =
    let d = dyn ~mode:Fault.VFT ~k:2 ~f:1 ~n:20 in
    Graph.iter_edges g (fun e ->
        ignore
          (Dynamic.apply d
             [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = e.Graph.w } ]));
    d
  in
  let a = feed () and b = feed () in
  checki "replay size" (Dynamic.size a) (Dynamic.size b);
  checki "replay seen" (Dynamic.live_edges a) (Dynamic.live_edges b);
  check (Alcotest.list Alcotest.int) "replay selection"
    (Selection.ids (Dynamic.snapshot a))
    (Selection.ids (Dynamic.snapshot b))

(* ------------------------ Distance oracle ---------------------------- *)

let oracle_instance ~seed ~n ~p ~k ~weighted =
  let r = Rng.create ~seed in
  let g0 = Generators.connected_gnp r ~n ~p in
  let g = if weighted then Generators.with_uniform_weights r g0 ~lo:0.5 ~hi:7. else g0 in
  (g, Oracle.build r ~k g)

let check_oracle_stretch g oracle ~k =
  let bound = stretch k in
  for u = 0 to Graph.n g - 1 do
    let exact = Dijkstra.distances g u in
    for v = 0 to Graph.n g - 1 do
      let est = Oracle.query oracle u v in
      if exact.(v) = infinity then
        checkb "disconnected pairs answer infinity" true (est = infinity)
      else begin
        checkb
          (Printf.sprintf "estimate >= exact (%d,%d): %.3f >= %.3f" u v est exact.(v))
          true
          (est >= exact.(v) -. 1e-9);
        checkb
          (Printf.sprintf "stretch bound (%d,%d): %.3f <= %.0f * %.3f" u v est
             bound exact.(v))
          true
          (est <= (bound *. exact.(v)) +. 1e-9)
      end
    done
  done

let test_oracle_unweighted_k2 () =
  let g, oracle = oracle_instance ~seed:1 ~n:40 ~p:0.15 ~k:2 ~weighted:false in
  check_oracle_stretch g oracle ~k:2

let test_oracle_weighted_k2 () =
  let g, oracle = oracle_instance ~seed:2 ~n:35 ~p:0.2 ~k:2 ~weighted:true in
  check_oracle_stretch g oracle ~k:2

let test_oracle_weighted_k3 () =
  let g, oracle = oracle_instance ~seed:3 ~n:35 ~p:0.2 ~k:3 ~weighted:true in
  check_oracle_stretch g oracle ~k:3

let test_oracle_k1_exact () =
  (* k = 1: bunches hold everything, answers are exact. *)
  let g, oracle = oracle_instance ~seed:4 ~n:20 ~p:0.3 ~k:1 ~weighted:true in
  for u = 0 to 19 do
    let exact = Dijkstra.distances g u in
    for v = 0 to 19 do
      if exact.(v) < infinity then
        checkf (Printf.sprintf "exact (%d,%d)" u v) exact.(v) (Oracle.query oracle u v)
    done
  done

let test_oracle_self_distance () =
  let _, oracle = oracle_instance ~seed:5 ~n:15 ~p:0.3 ~k:2 ~weighted:false in
  for v = 0 to 14 do
    checkf "d(v,v)=0" 0. (Oracle.query oracle v v)
  done

let test_oracle_disconnected () =
  let r = rng () in
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let oracle = Oracle.build r ~k:2 g in
  checkb "cross-component = infinity" true (Oracle.query oracle 0 5 = infinity);
  checkb "within component finite" true (Oracle.query oracle 0 2 < infinity)

let test_oracle_storage_reasonable () =
  let r = rng () in
  let g = Generators.complete 50 in
  let oracle = Oracle.build r ~k:2 g in
  (* k n^{1+1/k} = 2 * 50^1.5 ~ 707; storage must beat the n^2 = 2500 table *)
  checkb
    (Printf.sprintf "storage %d below quadratic" (Oracle.storage oracle))
    true
    (Oracle.storage oracle < 2500)

(* ------------------------- Async_net -------------------------------- *)

let test_async_delivery_order_and_time () =
  let r = rng () in
  let g = Generators.path 3 in
  let net = Async_net.create r ~min_delay:0.5 ~max_delay:0.5 g in
  let log = ref [] in
  Async_net.send net ~src:0 ~dst:1 (fun () -> log := (`A, Async_net.now net) :: !log);
  Async_net.at net ~time:0.2 (fun () ->
      Async_net.send net ~src:1 ~dst:2 (fun () -> log := (`B, Async_net.now net) :: !log));
  let events = Async_net.run net in
  checki "three events" 3 events;
  (match List.rev !log with
  | [ (`A, ta); (`B, tb) ] ->
      checkf "A at 0.5" 0.5 ta;
      checkf "B at 0.7" 0.7 tb
  | _ -> Alcotest.fail "unexpected log");
  checki "two messages" 2 (Async_net.messages net)

let test_async_requires_adjacency () =
  let r = rng () in
  let net = Async_net.create r (Generators.path 3) in
  try
    Async_net.send net ~src:0 ~dst:2 (fun () -> ());
    Alcotest.fail "non-adjacent send should fail"
  with Invalid_argument _ -> ()

let test_async_until_pauses () =
  let r = rng () in
  let net = Async_net.create r ~min_delay:1.0 ~max_delay:1.0 (Generators.path 2) in
  let hits = ref 0 in
  Async_net.send net ~src:0 ~dst:1 (fun () -> incr hits);
  ignore (Async_net.run ~until:0.5 net);
  checki "not yet delivered" 0 !hits;
  ignore (Async_net.run net);
  checki "delivered on resume" 1 !hits

let test_async_rejects_past_timer () =
  let r = rng () in
  let net = Async_net.create r ~min_delay:1.0 ~max_delay:1.0 (Generators.path 2) in
  Async_net.send net ~src:0 ~dst:1 (fun () -> ());
  ignore (Async_net.run net);
  try
    Async_net.at net ~time:0.1 (fun () -> ());
    Alcotest.fail "past timer should fail"
  with Invalid_argument _ -> ()

(* ------------------------ Synchronizer ------------------------------- *)

let test_sync_full_graph_completes () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.2 in
  let rep = Synchronizer.run r ~pulses:5 ~skeleton:(Selection.full g) g in
  checki "all pulses done" 5 rep.Synchronizer.pulses;
  checkb "connected" true rep.Synchronizer.survivors_connected;
  (* alpha over full graph: one safe per edge direction per pulse round
     (pulses 0..5 send) *)
  checki "messages = 2m(P+1)" (2 * Graph.m g * 6) rep.Synchronizer.messages

let test_sync_skeleton_fewer_messages () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.3 in
  let spanner = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:0 g in
  let full = Synchronizer.run (Rng.create ~seed:1) ~pulses:5 ~skeleton:(Selection.full g) g in
  let sparse = Synchronizer.run (Rng.create ~seed:1) ~pulses:5 ~skeleton:spanner g in
  checkb "skeleton cuts traffic" true
    (sparse.Synchronizer.messages < full.Synchronizer.messages);
  checki "still completes" 5 sparse.Synchronizer.pulses

let test_sync_skew_zero_on_full_like () =
  (* With the full skeleton, neighbors are directly synchronized: skew is
     bounded by one max delay per pulse difference; just sanity-check it is
     finite and small. *)
  let r = rng () in
  let g = Generators.cycle 12 in
  let rep = Synchronizer.run r ~pulses:6 ~skeleton:(Selection.full g) g in
  checkb "skew below 2 pulses worth" true (rep.Synchronizer.max_skew < 2.0)

let test_sync_tree_dies_spanner_survives () =
  let g = Generators.connected_gnp (Rng.create ~seed:6) ~n:40 ~p:0.25 in
  (* a BFS tree as skeleton *)
  let tree_ids = ref [] in
  let dist = Bfs.distances g 0 in
  for v = 1 to 39 do
    let best = ref (-1) in
    Graph.iter_neighbors g v (fun y id -> if dist.(y) = dist.(v) - 1 && !best < 0 then best := id);
    if !best >= 0 then tree_ids := !best :: !tree_ids
  done;
  let tree = Selection.of_ids g !tree_ids in
  let ft = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  (* kill an internal tree vertex *)
  let victim = ref (-1) in
  let deg = Array.make 40 0 in
  List.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    !tree_ids;
  for v = 39 downto 1 do
    if deg.(v) >= 2 then victim := v
  done;
  checkb "internal tree vertex exists" true (!victim >= 0);
  let failures = (1.5, [ !victim ]) in
  let tree_rep = Synchronizer.run (Rng.create ~seed:2) ~failures ~pulses:8 ~skeleton:tree g in
  let ft_rep = Synchronizer.run (Rng.create ~seed:2) ~failures ~pulses:8 ~skeleton:ft g in
  checkb "tree skeleton partitions" false tree_rep.Synchronizer.survivors_connected;
  checkb "FT spanner skeleton survives" true ft_rep.Synchronizer.survivors_connected;
  checki "FT skeleton finishes all pulses" 8 ft_rep.Synchronizer.pulses

let test_sync_rejects_foreign_skeleton () =
  let r = rng () in
  let g = Generators.cycle 5 and h = Generators.cycle 5 in
  let skel = Selection.full h in
  try
    ignore (Synchronizer.run r ~pulses:2 ~skeleton:skel g);
    Alcotest.fail "foreign skeleton should fail"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "applications"
    [
      ( "incremental",
        [
          Alcotest.test_case "matches offline" `Quick test_incremental_matches_offline_input_order;
          Alcotest.test_case "valid snapshot" `Quick test_incremental_snapshot_is_valid_spanner;
          Alcotest.test_case "prefix validity" `Quick test_incremental_prefix_validity;
          Alcotest.test_case "monotone flag" `Quick test_incremental_monotone_flag;
          Alcotest.test_case "counts" `Quick test_incremental_counts;
          Alcotest.test_case "replay determinism" `Quick test_incremental_replay_determinism;
        ] );
      ( "distance oracle",
        [
          Alcotest.test_case "unweighted k=2" `Quick test_oracle_unweighted_k2;
          Alcotest.test_case "weighted k=2" `Quick test_oracle_weighted_k2;
          Alcotest.test_case "weighted k=3" `Quick test_oracle_weighted_k3;
          Alcotest.test_case "k=1 exact" `Quick test_oracle_k1_exact;
          Alcotest.test_case "self distance" `Quick test_oracle_self_distance;
          Alcotest.test_case "disconnected" `Quick test_oracle_disconnected;
          Alcotest.test_case "storage" `Quick test_oracle_storage_reasonable;
        ] );
      ( "async net",
        [
          Alcotest.test_case "delivery" `Quick test_async_delivery_order_and_time;
          Alcotest.test_case "adjacency" `Quick test_async_requires_adjacency;
          Alcotest.test_case "until pauses" `Quick test_async_until_pauses;
          Alcotest.test_case "past timer" `Quick test_async_rejects_past_timer;
        ] );
      ( "synchronizer",
        [
          Alcotest.test_case "full graph completes" `Quick test_sync_full_graph_completes;
          Alcotest.test_case "skeleton cuts traffic" `Quick test_sync_skeleton_fewer_messages;
          Alcotest.test_case "skew sanity" `Quick test_sync_skew_zero_on_full_like;
          Alcotest.test_case "tree dies, spanner survives" `Quick test_sync_tree_dies_spanner_survives;
          Alcotest.test_case "foreign skeleton" `Quick test_sync_rejects_foreign_skeleton;
        ] );
    ]
