(* Tests for the Dynamic spanner service: the differential story (any op
   sequence is equivalent to a fresh Spanner.build on the final graph, up
   to the verified stretch bound), repair locality, the shed pass, the
   batched query plane's determinism, and the handle's error surface. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let stretch k = float_of_int ((2 * k) - 1)

let dyn ?shed ?pool ~mode ~k ~f n =
  Dynamic.create ~opts:(Dynamic.opts ~mode ~k ~f ?shed ?pool ()) (Graph.create n)

let insert d u v = ignore (Dynamic.apply d [ Dynamic.Insert { u; v; w = 1.0 } ])

(* ------------------------ unit helpers ------------------------------- *)

let path_graph n =
  let d = dyn ~mode:Fault.VFT ~k:2 ~f:1 n in
  for v = 0 to n - 2 do
    insert d v (v + 1)
  done;
  d

let test_create_seeds_like_build () =
  let r = Rng.create ~seed:11 in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let d = Dynamic.create ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ()) g in
  let fresh =
    Poly_greedy.build ~order:Poly_greedy.Input_order ~mode:Fault.VFT ~k:2 ~f:1 g
  in
  checki "seed spanner = fresh build" fresh.Selection.size (Dynamic.size d);
  check (Alcotest.list Alcotest.int) "same selection" (Selection.ids fresh)
    (Selection.ids (Dynamic.snapshot d));
  checki "epoch starts at 0" 0 (Dynamic.epoch d);
  checki "all edges live" (Graph.m g) (Dynamic.live_edges d)

let test_delete_and_query () =
  let d = path_graph 6 in
  let q = Dynamic.query_batch d ~faults:(Fault.empty Fault.VFT) [| (0, 5) |] in
  checki "path distance" 5 q.(0).Dynamic.hops;
  let s = Dynamic.apply d [ Dynamic.Delete_edge { u = 2; v = 3 } ] in
  checki "one edge deleted" 1 s.Dynamic.deleted_edges;
  let q = Dynamic.query_batch d ~faults:(Fault.empty Fault.VFT) [| (0, 5) |] in
  checkb "disconnected after cut" true (q.(0).Dynamic.distance = infinity);
  checki "hops flag disconnection" (-1) q.(0).Dynamic.hops

let test_delete_vertex_retires () =
  let d = path_graph 5 in
  let s = Dynamic.apply d [ Dynamic.Delete_vertex 2 ] in
  checki "vertex deleted" 1 s.Dynamic.deleted_vertices;
  checki "incident edges die with it" 2 s.Dynamic.deleted_edges;
  (try
     insert d 2 4;
     Alcotest.fail "insert on retired vertex should fail"
   with Invalid_argument _ -> ());
  (* a retired endpoint answers as disconnected, not as an error *)
  let q = Dynamic.query_batch d ~faults:(Fault.empty Fault.VFT) [| (2, 4) |] in
  checkb "retired endpoint disconnected" true (q.(0).Dynamic.distance = infinity)

let test_epoch_and_snapshot_cache () =
  let d = path_graph 4 in
  let e0 = Dynamic.epoch d in
  let s1 = Dynamic.snapshot d in
  let s2 = Dynamic.snapshot d in
  checkb "snapshot cached per epoch" true (s1 == s2);
  insert d 0 2;
  checkb "mutating apply bumps epoch" true (Dynamic.epoch d > e0);
  checkb "snapshot refreshed" true (Dynamic.snapshot d != s1);
  (* no-op batch: no epoch bump *)
  let e1 = Dynamic.epoch d in
  ignore (Dynamic.apply d []);
  checki "empty batch keeps epoch" e1 (Dynamic.epoch d)

let test_error_surface () =
  let d = path_graph 4 in
  let expect_invalid label ops =
    try
      ignore (Dynamic.apply d ops);
      Alcotest.failf "%s should raise" label
    with Invalid_argument _ -> ()
  in
  expect_invalid "self loop" [ Dynamic.Insert { u = 1; v = 1; w = 1.0 } ];
  expect_invalid "out of range" [ Dynamic.Insert { u = 0; v = 9; w = 1.0 } ];
  expect_invalid "duplicate" [ Dynamic.Insert { u = 0; v = 1; w = 1.0 } ];
  expect_invalid "bad weight" [ Dynamic.Insert { u = 0; v = 2; w = 0.0 } ];
  expect_invalid "absent edge" [ Dynamic.Delete_edge { u = 0; v = 3 } ];
  try
    ignore (Dynamic.query_batch d ~faults:(Fault.empty Fault.VFT) [| (0, 99) |]);
    Alcotest.fail "out-of-range query should raise"
  with Invalid_argument _ -> ()

(* ---------------------- repair locality ------------------------------ *)

let test_repair_is_local_on_grid () =
  (* On a sparse grid the 2k-1 = 3-hop neighborhood of one deleted edge
     is a few dozen vertices; repair must not walk the whole graph. *)
  let g = Generators.grid ~rows:20 ~cols:20 in
  let d = Dynamic.create ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ()) g in
  let sel = Dynamic.snapshot d in
  let kept_id = List.hd (Selection.ids sel) in
  let u, v = Graph.endpoints sel.Selection.source kept_id in
  let s = Dynamic.apply d [ Dynamic.Delete_edge { u; v } ] in
  checkb
    (Printf.sprintf "touched %d << n=400" s.Dynamic.touched_vertices)
    true
    (s.Dynamic.touched_vertices > 0 && s.Dynamic.touched_vertices < 150)

(* ------------------- differential vs fresh build --------------------- *)

(* Scripted op soup over a base graph: delete a slice of edges (spanner
   and non-spanner alike), retire a vertex, re-insert some deleted edges.
   The surviving selection must verify to the same stretch bound a fresh
   build on the final graph satisfies. *)
let differential_case ~mode ~backend ~seed ~n ~p =
  let r = Rng.create ~seed in
  let g0 = Generators.connected_gnp r ~n ~p in
  let g = Graph.create ~backend n in
  Graph.iter_edges g0 (fun e ->
      ignore (Graph.add_edge g e.Graph.u e.Graph.v ~w:e.Graph.w));
  let k = 2 and f = 1 in
  let d = Dynamic.create ~opts:(Dynamic.opts ~mode ~k ~f ()) g in
  (* delete every 5th edge, arbitrary order *)
  let doomed = ref [] in
  Graph.iter_edges g (fun e -> if e.Graph.id mod 5 = 0 then doomed := e :: !doomed);
  List.iter
    (fun e ->
      ignore
        (Dynamic.apply d [ Dynamic.Delete_edge { u = e.Graph.u; v = e.Graph.v } ]))
    !doomed;
  (* retire one vertex *)
  let victim = n - 1 in
  ignore (Dynamic.apply d [ Dynamic.Delete_vertex victim ]);
  (* re-insert half of the deleted edges (skip the retired vertex) *)
  List.iteri
    (fun i e ->
      if i mod 2 = 0 && e.Graph.u <> victim && e.Graph.v <> victim then
        insert d e.Graph.u e.Graph.v)
    !doomed;
  let sel = Dynamic.snapshot d in
  (* the maintained selection is a valid f-FT (2k-1)-spanner of the live
     graph — the same bound a fresh build satisfies *)
  let report = Verify.exhaustive sel ~mode ~stretch:(stretch k) ~f in
  (match report.Verify.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "dynamic selection violated: %s"
        (Format.asprintf "%a" Verify.pp_violation v));
  let fresh = Spanner.build { Spanner.k; f; mode } sel.Selection.source in
  let freshr = Verify.exhaustive fresh ~mode ~stretch:(stretch k) ~f in
  checkb "fresh build verifies too" true (Verify.ok freshr)

let test_differential_vft_int () =
  differential_case ~mode:Fault.VFT ~backend:Csr.Int_array ~seed:21 ~n:14 ~p:0.35

let test_differential_vft_int32 () =
  differential_case ~mode:Fault.VFT ~backend:Csr.Int32_bigarray ~seed:22 ~n:14
    ~p:0.35

let test_differential_eft_int () =
  differential_case ~mode:Fault.EFT ~backend:Csr.Int_array ~seed:23 ~n:12 ~p:0.4

let test_differential_eft_int32 () =
  differential_case ~mode:Fault.EFT ~backend:Csr.Int32_bigarray ~seed:24 ~n:12
    ~p:0.4

let arb_ops =
  (* (seed, n, ops): a random interleaved op script over an initially
     empty graph; ops reference only vertices < n and are repaired into
     validity during execution (inserts of existing edges and deletes of
     absent ones are skipped). *)
  QCheck.make
    ~print:(fun (seed, n, ops) ->
      Printf.sprintf "(seed=%d, n=%d, %d ops)" seed n (List.length ops))
    QCheck.Gen.(
      triple (int_range 1 1000) (int_range 6 13)
        (list_size (int_range 10 60) (triple (int_range 0 2) small_nat small_nat)))

let run_random_script ~mode (seed, n, ops) =
  let d = dyn ~mode ~k:2 ~f:1 n in
  let retired = Array.make n false in
  let live = Hashtbl.create 16 in
  let keyp u v = (min u v, max u v) in
  let rng = Rng.create ~seed in
  List.iter
    (fun (kind, a, b) ->
      let u = a mod n and v = b mod n in
      if u <> v && (not retired.(u)) && not retired.(v) then
        match kind with
        | 0 ->
            if not (Hashtbl.mem live (keyp u v)) then begin
              Hashtbl.replace live (keyp u v) ();
              insert d u v
            end
        | 1 ->
            if Hashtbl.mem live (keyp u v) then begin
              Hashtbl.remove live (keyp u v);
              ignore (Dynamic.apply d [ Dynamic.Delete_edge { u; v } ])
            end
        | _ ->
            (* occasionally retire a vertex (low probability) *)
            if Rng.int rng 10 = 0 then begin
              retired.(u) <- true;
              Hashtbl.reset live;
              (* recompute the live set from the handle *)
              let src = (Dynamic.snapshot d).Selection.source in
              ignore (Dynamic.apply d [ Dynamic.Delete_vertex u ]);
              Graph.iter_edges src (fun e ->
                  if e.Graph.u <> u && e.Graph.v <> u then
                    Hashtbl.replace live (keyp e.Graph.u e.Graph.v) ())
            end)
    ops;
  d

let prop_random_scripts mode name =
  QCheck.Test.make ~count:40 ~name arb_ops (fun case ->
      let d = run_random_script ~mode case in
      let sel = Dynamic.snapshot d in
      Verify.ok (Verify.exhaustive sel ~mode ~stretch:3.0 ~f:1))

let prop_random_scripts_vft =
  prop_random_scripts Fault.VFT "dynamic: random op scripts stay valid (VFT)"

let prop_random_scripts_eft =
  prop_random_scripts Fault.EFT "dynamic: random op scripts stay valid (EFT)"

let prop_shed_keeps_validity =
  (* with the shed pass disabled the selection is still valid, and the
     shed selection is never larger *)
  QCheck.Test.make ~count:25 ~name:"dynamic: shed pass sound and never grows"
    arb_ops (fun (seed, n, ops) ->
      let replay shed =
        let d = dyn ~shed ~mode:Fault.VFT ~k:2 ~f:1 n in
        let live = Hashtbl.create 16 in
        let keyp u v = (min u v, max u v) in
        List.iter
          (fun (kind, a, b) ->
            let u = a mod n and v = b mod n in
            if u <> v then
              match kind with
              | 0 | 2 ->
                  if not (Hashtbl.mem live (keyp u v)) then begin
                    Hashtbl.replace live (keyp u v) ();
                    insert d u v
                  end
              | _ ->
                  if Hashtbl.mem live (keyp u v) then begin
                    Hashtbl.remove live (keyp u v);
                    ignore (Dynamic.apply d [ Dynamic.Delete_edge { u; v } ])
                  end)
          ops;
        d
      in
      let with_shed = replay true and without = replay false in
      ignore seed;
      Dynamic.size with_shed <= Dynamic.size without
      && Verify.ok
           (Verify.exhaustive (Dynamic.snapshot with_shed) ~mode:Fault.VFT
              ~stretch:3.0 ~f:1))

(* ---------------------- query-plane determinism ---------------------- *)

let test_query_batch_deterministic_across_jobs () =
  let r = Rng.create ~seed:31 in
  let g = Generators.connected_gnp r ~n:60 ~p:0.12 in
  let mk pool =
    let d = Dynamic.create ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ?pool ()) g in
    ignore (Dynamic.apply d [ Dynamic.Delete_vertex 3 ]);
    d
  in
  let pairs =
    Array.init 40 (fun i -> (i mod 60, (7 * i + 13) mod 60))
  in
  let faults = Fault.of_vertices [ 5; 17 ] in
  let answers pool = Dynamic.query_batch (mk pool) ~faults pairs in
  let seq = answers None in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains @@ fun pool ->
      let par = answers (Some pool) in
      checkb
        (Printf.sprintf "jobs=%d identical" domains)
        true (par = seq))
    [ 2; 4 ]

let test_query_batch_matches_reference_distances () =
  let r = Rng.create ~seed:32 in
  let g = Generators.connected_gnp r ~n:30 ~p:0.25 in
  let d = Dynamic.create ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ()) g in
  let sel = Dynamic.snapshot d in
  let faults = Fault.of_vertices [ 2 ] in
  let bv, _ = Fault.masks sel.Selection.source faults in
  let blocked = Selection.blocked_edges sel [] in
  let pairs = [| (0, 1); (5, 20); (11, 29) |] in
  let res = Dynamic.query_batch d ~faults pairs in
  Array.iteri
    (fun i (u, v) ->
      let dist =
        Bfs.distances ?blocked_vertices:bv ~blocked_edges:blocked
          sel.Selection.source u
      in
      let expect = if dist.(v) < 0 then infinity else float_of_int dist.(v) in
      checkb
        (Printf.sprintf "query %d matches spanner BFS" i)
        true
        (res.(i).Dynamic.distance = expect))
    pairs

(* the spanner distance respects the FT stretch bound under f faults *)
let test_query_respects_stretch_bound () =
  let r = Rng.create ~seed:33 in
  let g = Generators.connected_gnp r ~n:40 ~p:0.2 in
  let d = Dynamic.create ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ()) g in
  let sel = Dynamic.snapshot d in
  let faults = Fault.of_vertices [ 7 ] in
  let bv, _ = Fault.masks sel.Selection.source faults in
  let ok = ref true in
  for u = 0 to 19 do
    let d_g = Bfs.distances ?blocked_vertices:bv sel.Selection.source u in
    let res =
      Dynamic.query_batch d ~faults (Array.init 40 (fun v -> (u, v)))
    in
    Array.iteri
      (fun v r ->
        if v <> u && u <> 7 && v <> 7 && d_g.(v) >= 0 then
          if r.Dynamic.distance > (3.0 *. float_of_int d_g.(v)) +. 1e-9 then
            ok := false)
      res
  done;
  checkb "all faulted distances within 3x" true !ok

(* ---------------------- insertion-stream replay ---------------------- *)

(* The coverage the removed Incremental alias test carried: feeding the
   same edge stream one insert at a time is deterministic and agrees
   with a single batched apply. *)
let test_insert_stream_equivalence () =
  let r = Rng.create ~seed:34 in
  let g = Generators.connected_gnp r ~n:25 ~p:0.3 in
  let one = dyn ~mode:Fault.VFT ~k:2 ~f:1 25 in
  let batched = dyn ~mode:Fault.VFT ~k:2 ~f:1 25 in
  let ops = ref [] in
  Graph.iter_edges g (fun e ->
      let op = Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = e.Graph.w } in
      ops := op :: !ops;
      ignore (Dynamic.apply one [ op ]));
  ignore (Dynamic.apply batched (List.rev !ops));
  checki "sizes agree" (Dynamic.size batched) (Dynamic.size one);
  check (Alcotest.list Alcotest.int) "selections agree"
    (Selection.ids (Dynamic.snapshot batched))
    (Selection.ids (Dynamic.snapshot one))

let () =
  Alcotest.run "dynamic"
    [
      ( "handle",
        [
          Alcotest.test_case "create seeds like build" `Quick test_create_seeds_like_build;
          Alcotest.test_case "delete and query" `Quick test_delete_and_query;
          Alcotest.test_case "delete vertex" `Quick test_delete_vertex_retires;
          Alcotest.test_case "epoch and snapshot" `Quick test_epoch_and_snapshot_cache;
          Alcotest.test_case "error surface" `Quick test_error_surface;
          Alcotest.test_case "insert stream equivalence" `Quick test_insert_stream_equivalence;
        ] );
      ( "repair",
        [
          Alcotest.test_case "locality on grid" `Quick test_repair_is_local_on_grid;
          Alcotest.test_case "differential VFT int" `Quick test_differential_vft_int;
          Alcotest.test_case "differential VFT int32" `Quick test_differential_vft_int32;
          Alcotest.test_case "differential EFT int" `Quick test_differential_eft_int;
          Alcotest.test_case "differential EFT int32" `Quick test_differential_eft_int32;
        ] );
      ( "random scripts",
        [
          QCheck_alcotest.to_alcotest prop_random_scripts_vft;
          QCheck_alcotest.to_alcotest prop_random_scripts_eft;
          QCheck_alcotest.to_alcotest prop_shed_keeps_validity;
        ] );
      ( "queries",
        [
          Alcotest.test_case "jobs determinism" `Quick test_query_batch_deterministic_across_jobs;
          Alcotest.test_case "reference distances" `Quick test_query_batch_matches_reference_distances;
          Alcotest.test_case "stretch bound" `Quick test_query_respects_stretch_bound;
        ] );
    ]
