(* Tests for the fault-injection layer (Chaos), the chaos-aware simulators
   and the reliable-delivery protocol (Reliable): seeded determinism, each
   fault kind in isolation on the raw network, protocol masking, and
   end-to-end "same spanner as the chaos-free run" on the Section 5
   constructions. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

(* ------------------------- seeded determinism ------------------------- *)

(* Drive the same traffic through two networks armed with the same plan:
   every per-round inbox and the fault tally must coincide.  A third
   network with a different fault seed must diverge somewhere. *)
let drive_schedule ~seed =
  let g = Generators.complete 5 in
  let ch = Chaos.start (Chaos.plan ~drop:0.3 ~dup:0.2 ~reorder:2 ~seed ()) in
  let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 8) g in
  let schedule = ref [] in
  for round = 0 to 19 do
    for src = 0 to 4 do
      Net.broadcast net ~src (round, src)
    done;
    Net.next_round net;
    for v = 0 to 4 do
      schedule := (round, v, Net.inbox net v) :: !schedule
    done
  done;
  (!schedule, Chaos.counts ch)

let test_same_seed_same_schedule () =
  let s1, c1 = drive_schedule ~seed:42 in
  let s2, c2 = drive_schedule ~seed:42 in
  checkb "same seed, same schedule" true (s1 = s2);
  checkb "same seed, same counts" true (c1 = c2);
  checkb "faults actually injected" true (c1.Chaos.c_drops > 0);
  let s3, _ = drive_schedule ~seed:43 in
  checkb "different seed, different schedule" true (s1 <> s3)

let test_chaos_stream_is_private () =
  (* The algorithm's generator is untouched by fault draws: the same
     algorithm rng produces the same values with and without chaos. *)
  let draw_with chaos =
    let g = Generators.complete 4 in
    let net =
      match chaos with
      | None -> Net.create ~model:Net.Local ~bits:(fun _ -> 1) g
      | Some ch -> Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 1) g
    in
    let rng = Rng.create ~seed:5 in
    let out = ref [] in
    for _ = 1 to 10 do
      Net.broadcast net ~src:0 ();
      Net.next_round net;
      out := Rng.int rng 1000 :: !out
    done;
    !out
  in
  let clean = draw_with None in
  let chaotic =
    draw_with (Some (Chaos.start (Chaos.plan ~drop:0.5 ~dup:0.5 ~reorder:3 ())))
  in
  checkb "algorithm draws unchanged under chaos" true (clean = chaotic)

(* ------------------------ faults in isolation ------------------------- *)

let test_drop_only () =
  let g = Generators.path 2 in
  let ch = Chaos.start (Chaos.plan ~drop:1.0 ()) in
  let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 4) g in
  for _ = 1 to 20 do
    Net.send net ~src:0 ~dst:1 "x"
  done;
  Net.next_round net;
  checki "nothing delivered" 0 (List.length (Net.inbox net 1));
  checki "all drops counted" 20 (Chaos.counts ch).Chaos.c_drops;
  checki "no dups" 0 (Chaos.counts ch).Chaos.c_dups;
  (* offered-load accounting is untouched by the faults *)
  checki "sends still accounted" 20 (Net.stats net).Net.messages

let test_dup_only () =
  let g = Generators.path 2 in
  let ch = Chaos.start (Chaos.plan ~dup:1.0 ()) in
  let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 4) g in
  for i = 1 to 5 do
    Net.send net ~src:0 ~dst:1 i
  done;
  Net.next_round net;
  checki "every message doubled" 10 (List.length (Net.inbox net 1));
  checki "dups counted" 5 (Chaos.counts ch).Chaos.c_dups;
  (* one network message per copy pair was offered *)
  checki "offered load unchanged" 5 (Net.stats net).Net.messages

let test_reorder_only () =
  let lag_bound = 3 in
  let g = Generators.path 2 in
  let ch = Chaos.start (Chaos.plan ~reorder:lag_bound ~seed:9 ()) in
  let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 4) g in
  let rounds = 30 in
  let deliveries = ref [] in
  for round = 0 to rounds - 1 do
    if round < 20 then Net.send net ~src:0 ~dst:1 round;
    Net.next_round net;
    List.iter
      (fun (_, tag) -> deliveries := (tag, round) :: !deliveries)
      (Net.inbox net 1)
  done;
  checki "no copy lost or duplicated" 20 (List.length !deliveries);
  List.iter
    (fun (tag, round) ->
      checkb
        (Printf.sprintf "tag %d delivered at %d within lag bound" tag round)
        true
        (round >= tag && round <= tag + lag_bound))
    !deliveries;
  let late = List.length (List.filter (fun (tag, r) -> r > tag) !deliveries) in
  checki "late copies = reorder count" late (Chaos.counts ch).Chaos.c_reorders;
  checkb "some copies actually lagged" true (late > 0)

let test_crash_window () =
  let g = Generators.path 3 in
  (* node 1 is down for rounds [1, 3) *)
  let ch = Chaos.start (Chaos.plan ~crashes:[ (1, 1., 3.) ] ()) in
  let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 4) g in
  (* sent in round 0, delivered at time 1: destination just crashed *)
  Net.send net ~src:0 ~dst:1 "lost-on-delivery";
  Net.next_round net;
  checki "delivery into the crash window is lost" 0 (List.length (Net.inbox net 1));
  (* round 1: the crashed node cannot send either *)
  Net.send net ~src:1 ~dst:2 "lost-at-send";
  Net.next_round net;
  checki "crashed sender emits nothing" 0 (List.length (Net.inbox net 2));
  (* round 2: delivery lands at time 3, the node is back *)
  Net.send net ~src:0 ~dst:1 "arrives";
  Net.next_round net;
  checki "delivery after recovery" 1 (List.length (Net.inbox net 1));
  checki "both window losses counted" 2 (Chaos.counts ch).Chaos.c_drops

(* ------------------------ physical congestion ------------------------- *)

let test_congestion_counts_duplicates () =
  (* dup=1.0 doubles every physical copy: the busiest per-edge-per-round
     load is exactly twice the clean run's, while offered load matches *)
  let flood chaos =
    let g = Generators.path 2 in
    let net =
      match chaos with
      | None -> Net.create ~model:Net.Local ~bits:(fun _ -> 4) g
      | Some ch -> Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 4) g
    in
    for i = 1 to 5 do
      Net.send net ~src:0 ~dst:1 i
    done;
    Net.next_round net;
    net
  in
  let clean = flood None in
  let dup = flood (Some (Chaos.start (Chaos.plan ~dup:1.0 ()))) in
  let sc = Net.stats clean and sd = Net.stats dup in
  checki "clean busiest slot: 5 msgs x 4 bits" 20 sc.Net.max_edge_round_bits;
  checki "dup'd copies charge the wire twice" 40 sd.Net.max_edge_round_bits;
  checki "offered bits identical" sc.Net.total_bits sd.Net.total_bits;
  (match Net.hot_edges dup with
  | he :: _ ->
      checki "leaderboard carries the doubled load" 40 he.Net.he_bits;
      checki "slot busy for one round" 1 he.Net.he_rounds
  | [] -> Alcotest.fail "no hot edges");
  (* a crashed sender's message never touches the wire *)
  let g = Generators.path 2 in
  let ch = Chaos.start (Chaos.plan ~crashes:[ (0, 0., 10.) ] ()) in
  let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 4) g in
  Net.send net ~src:0 ~dst:1 0;
  Net.next_round net;
  checki "crashed sender charges nothing" 0
    (Net.stats net).Net.max_edge_round_bits

let test_congestion_seeded_replay () =
  let run () =
    let g = Generators.complete 5 in
    let ch =
      Chaos.start (Chaos.plan ~drop:0.3 ~dup:0.3 ~reorder:2 ~seed:21 ())
    in
    let net = Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 8) g in
    for round = 0 to 9 do
      for src = 0 to 4 do
        Net.broadcast net ~src round
      done;
      Net.next_round net
    done;
    ((Net.stats net).Net.max_edge_round_bits, Net.hot_edges net)
  in
  let m1, h1 = run () in
  let m2, h2 = run () in
  checki "max_edge_round_bits identical across replays" m1 m2;
  checkb "hot-edge leaderboard identical" true (h1 = h2);
  checkb "faults actually moved the physical load" true (m1 > 0)

let test_congestion_skeleton_attribution () =
  Obs.set_enabled true;
  Obs.reset ();
  let g = Generators.path 3 in
  (* edge 0 = {0,1} in the skeleton, edge 1 = {1,2} outside it *)
  let net = Net.create ~model:Net.Local ~bits:(fun _ -> 4) g in
  Net.set_skeleton net [| true; false |];
  for _ = 1 to 3 do
    Net.send net ~src:0 ~dst:1 0
  done;
  Net.send net ~src:1 ~dst:2 0;
  Net.next_round net;
  checki "skeleton-edge bits attributed" 12
    (Obs.Counter.value (Obs.counter "net.bits.spanner"));
  checki "off-skeleton bits attributed" 4
    (Obs.Counter.value (Obs.counter "net.bits.other"));
  checkb "size mismatch rejected" true
    (try
       Net.set_skeleton net [| true |];
       false
     with Invalid_argument _ -> true)

(* ----------------------------- spec grammar --------------------------- *)

let test_parse_spec () =
  (match Chaos.parse_spec "drop=0.2,dup=0.05,reorder=4,seed=7" with
  | Ok p ->
      checkb "drop" true (p.Chaos.drop = 0.2);
      checkb "dup" true (p.Chaos.dup = 0.05);
      checki "reorder" 4 p.Chaos.reorder;
      checki "seed" 7 p.Chaos.seed
  | Error e -> Alcotest.fail e);
  (match Chaos.parse_spec "crash=3@2.5,recover=3@9" with
  | Ok p -> checkb "crash window" true (p.Chaos.crashes = [ (3, 2.5, 9.) ])
  | Error e -> Alcotest.fail e);
  let rejects spec =
    match Chaos.parse_spec spec with
    | Ok _ -> Alcotest.fail (Printf.sprintf "spec %S should be rejected" spec)
    | Error _ -> ()
  in
  rejects "drop=1.5";
  rejects "frobnicate=1";
  rejects "drop";
  rejects "recover=3@9";
  (* pp round-trips through the parser *)
  match Chaos.parse_spec "drop=0.1,reorder=2,crash=1@0,recover=1@5" with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      match Chaos.parse_spec (Format.asprintf "%a" Chaos.pp_plan p) with
      | Ok p' -> checkb "pp_plan round-trips" true (p = p')
      | Error e -> Alcotest.fail e)

(* --------------------------- reliable layer --------------------------- *)

let test_reliable_passthrough_is_free () =
  let traffic create_send =
    let g = Generators.complete 4 in
    let net, send, next = create_send g in
    for round = 0 to 4 do
      for src = 0 to 3 do
        for dst = 0 to 3 do
          if src <> dst then send ~src ~dst (round * src)
        done
      done;
      next ()
    done;
    net ()
  in
  let raw =
    traffic (fun g ->
        let net = Net.create ~model:(Net.Congest 32) ~bits:(fun _ -> 16) g in
        ( (fun () -> Net.stats net),
          (fun ~src ~dst m -> Net.send net ~src ~dst m),
          fun () -> Net.next_round net ))
  in
  let wrapped =
    traffic (fun g ->
        let t = Reliable.create ~model:(Net.Congest 32) ~bits:(fun _ -> 16) g in
        ( (fun () -> Reliable.stats t),
          (fun ~src ~dst m -> Reliable.send t ~src ~dst m),
          fun () -> Reliable.next_round t ))
  in
  checkb "passthrough accounting is bit-identical" true (raw = wrapped)

let test_reliable_masks_drops () =
  let g = Generators.complete 5 in
  let chaos = Chaos.plan ~drop:0.3 ~dup:0.1 ~reorder:2 ~seed:11 () in
  let t = Reliable.create ~chaos ~model:Net.Local ~bits:(fun _ -> 8) g in
  for round = 0 to 9 do
    for src = 0 to 4 do
      Reliable.broadcast t ~src (round, src)
    done;
    Reliable.next_round t;
    (* lockstep semantics hold exactly: every vertex sees one message per
       neighbor per logical round, in canonical sender order *)
    for v = 0 to 4 do
      let senders = List.map fst (Reliable.inbox t v) in
      let expected = List.filter (fun s -> s <> v) [ 0; 1; 2; 3; 4 ] in
      check
        (Alcotest.list Alcotest.int)
        (Printf.sprintf "round %d inbox of %d" round v)
        expected senders;
      List.iter
        (fun (s, (r, s')) ->
          checki "payload round" round r;
          checki "payload sender" s s')
        (Reliable.inbox t v)
    done
  done;
  checkb "drops forced retransmissions" true (Reliable.retransmits t > 0);
  checki "no packet abandoned" 0 (Reliable.giveups t);
  match Reliable.chaos_counts t with
  | None -> Alcotest.fail "chaos should be armed"
  | Some c -> checkb "faults were injected" true (c.Chaos.c_drops > 0)

let test_reliable_same_seed_bit_identical () =
  let run () =
    let g = Generators.complete 4 in
    let chaos = Chaos.plan ~drop:0.25 ~dup:0.1 ~seed:3 () in
    let t = Reliable.create ~chaos ~model:Net.Local ~bits:(fun _ -> 8) g in
    let log = ref [] in
    for round = 0 to 7 do
      for src = 0 to 3 do
        Reliable.broadcast t ~src round
      done;
      Reliable.next_round t;
      for v = 0 to 3 do
        log := Reliable.inbox t v :: !log
      done
    done;
    (!log, Reliable.stats t, Reliable.retransmits t)
  in
  checkb "same seeds, same run" true (run () = run ())

(* ------------------------ end-to-end constructions -------------------- *)

let chaos_heavy = Chaos.plan ~drop:0.2 ~dup:0.05 ~reorder:2 ~seed:21 ()

let test_congest_bs_selection_survives_chaos () =
  let g = Generators.connected_gnp (Rng.create ~seed:100) ~n:30 ~p:0.2 in
  let clean = Congest_bs.build (Rng.create ~seed:4) ~k:2 g in
  let lossy = Congest_bs.build (Rng.create ~seed:4) ~chaos:chaos_heavy ~k:2 g in
  check
    (Alcotest.list Alcotest.int)
    "same selection"
    (Selection.ids clean.Congest_bs.selection)
    (Selection.ids lossy.Congest_bs.selection);
  checkb "lossy run paid extra rounds" true
    (lossy.Congest_bs.rounds > clean.Congest_bs.rounds)

let test_congest_ft_selection_survives_chaos () =
  let g = Generators.connected_gnp (Rng.create ~seed:101) ~n:26 ~p:0.25 in
  let clean = Congest_ft.build (Rng.create ~seed:4) ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:1 g in
  let lossy =
    Congest_ft.build (Rng.create ~seed:4) ~c:0.5 ~chaos:chaos_heavy
      ~mode:Fault.VFT ~k:2 ~f:1 g
  in
  check
    (Alcotest.list Alcotest.int)
    "same selection"
    (Selection.ids clean.Congest_ft.selection)
    (Selection.ids lossy.Congest_ft.selection)

let test_local_spanner_selection_survives_chaos () =
  let g = Generators.connected_gnp (Rng.create ~seed:102) ~n:40 ~p:0.15 in
  let clean =
    Local_spanner.build (Rng.create ~seed:4) ~mode:Fault.EFT ~k:2 ~f:1 g
  in
  let lossy =
    Local_spanner.build (Rng.create ~seed:4) ~chaos:chaos_heavy ~mode:Fault.EFT
      ~k:2 ~f:1 g
  in
  check
    (Alcotest.list Alcotest.int)
    "same selection"
    (Selection.ids clean.Local_spanner.selection)
    (Selection.ids lossy.Local_spanner.selection)

let test_synchronizer_completes_on_lossy_network () =
  let g = Generators.connected_gnp (Rng.create ~seed:103) ~n:40 ~p:0.15 in
  let skel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  let clean = Synchronizer.run (Rng.create ~seed:5) ~pulses:5 ~skeleton:skel g in
  let chaos = Chaos.plan ~drop:0.2 ~dup:0.05 ~seed:77 () in
  let lossy =
    Synchronizer.run (Rng.create ~seed:5) ~chaos ~pulses:5 ~skeleton:skel g
  in
  checki "all pulses completed" 5 lossy.Synchronizer.pulses;
  checki "clean run needs no retransmissions" 0 clean.Synchronizer.retransmits;
  checkb "lossy run retransmitted" true (lossy.Synchronizer.retransmits > 0);
  checkb "acks and retries cost messages" true
    (lossy.Synchronizer.messages > clean.Synchronizer.messages)

let () =
  Alcotest.run "chaos"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same schedule" `Quick
            test_same_seed_same_schedule;
          Alcotest.test_case "private fault stream" `Quick
            test_chaos_stream_is_private;
        ] );
      ( "faults in isolation",
        [
          Alcotest.test_case "drop" `Quick test_drop_only;
          Alcotest.test_case "dup" `Quick test_dup_only;
          Alcotest.test_case "reorder" `Quick test_reorder_only;
          Alcotest.test_case "crash window" `Quick test_crash_window;
        ] );
      ( "congestion",
        [
          Alcotest.test_case "duplicates charge the wire" `Quick
            test_congestion_counts_duplicates;
          Alcotest.test_case "seeded replay identical" `Quick
            test_congestion_seeded_replay;
          Alcotest.test_case "skeleton attribution" `Quick
            test_congestion_skeleton_attribution;
        ] );
      ("spec grammar", [ Alcotest.test_case "parse" `Quick test_parse_spec ]);
      ( "reliable delivery",
        [
          Alcotest.test_case "passthrough is free" `Quick
            test_reliable_passthrough_is_free;
          Alcotest.test_case "masks drops" `Quick test_reliable_masks_drops;
          Alcotest.test_case "seeded determinism" `Quick
            test_reliable_same_seed_bit_identical;
        ] );
      ( "end to end",
        [
          Alcotest.test_case "congest bs" `Quick
            test_congest_bs_selection_survives_chaos;
          Alcotest.test_case "congest ft" `Quick
            test_congest_ft_selection_survives_chaos;
          Alcotest.test_case "local spanner" `Quick
            test_local_spanner_selection_survives_chaos;
          Alcotest.test_case "lossy synchronizer" `Quick
            test_synchronizer_completes_on_lossy_network;
        ] );
    ]
