#!/usr/bin/env bash
# Dynamic-service gate (dune build @dynamic-check; chained into
# @refactor-check): replay update/query op scripts through `ftspan
# dynamic` — twice, and again on a 2-worker pool — requiring
# byte-identical transcripts; verify the final selection the replay
# writes against the final graph it also writes; and pin the
# exit-code contract (2 = bad script/usage, 1 = data error during
# replay), mirroring the io_check error classes.
#   $1 = ftspan CLI binary
set -u
BIN="$1"
TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT
fail() { echo "dynamic_check FAILED: $1" >&2; exit 1; }

# ---- script A: self-contained (seeds its own graph with `n`) --------
cat > "$TMP/a.ops" <<'EOF'
# path 0..11 with chords; then queries under faults, deletions, repair
n 12
add 0 1
add 1 2
add 2 3
add 3 4
add 4 5
add 5 6
add 6 7
add 7 8
add 8 9
add 9 10
add 10 11
add 0 2
add 0 4
add 3 7
add 2 9
flush
query 0 11
faults 5
query 0 11
query 2 8
del 3 4
query 0 11
delv 6
query 0 11
query 5 7
EOF

"$BIN" dynamic -k 2 -f 1 "$TMP/a.ops" > "$TMP/a1.out" \
  || fail "script A replay"
"$BIN" dynamic -k 2 -f 1 "$TMP/a.ops" > "$TMP/a2.out" \
  || fail "script A second replay"
cmp -s "$TMP/a1.out" "$TMP/a2.out" || fail "script A replay not deterministic"
grep -q "^seeded:" "$TMP/a1.out" || fail "script A must print the seed line"
grep -q "repair: touched" "$TMP/a1.out" \
  || fail "deletions must report the repair counters"
grep -q "^final:" "$TMP/a1.out" || fail "script A must print the final line"

# query plane on a pool: byte-identical to the sequential transcript
"$BIN" dynamic -k 2 -f 1 --jobs 2 "$TMP/a.ops" > "$TMP/a-j2.out" \
  || fail "script A replay on 2 workers"
cmp -s "$TMP/a1.out" "$TMP/a-j2.out" || fail "--jobs 2 transcript differs"

# ---- replay -> verify: the maintained selection is a real spanner ---
"$BIN" dynamic -k 2 -f 1 "$TMP/a.ops" -o "$TMP/a-sel.txt" \
  --out-graph "$TMP/a-final.graph" > /dev/null || fail "script A with outputs"
"$BIN" verify -k 2 -f 1 --exhaustive "$TMP/a-final.graph" "$TMP/a-sel.txt" \
  | grep -q "OK" || fail "final selection must verify exhaustively"

# ---- script B: seeded from a generated graph (--graph) --------------
"$BIN" generate --family gnp -n 40 -p 0.15 --connect --seed 7 \
  -o "$TMP/g.graph" > /dev/null || fail "generate"
cat > "$TMP/b.ops" <<'EOF'
query 0 20
query 5 35
delv 3
query 0 20
flush
EOF
"$BIN" dynamic -k 2 -f 1 --graph "$TMP/g.graph" "$TMP/b.ops" > "$TMP/b1.out" \
  || fail "script B replay"
"$BIN" dynamic -k 2 -f 1 --graph "$TMP/g.graph" "$TMP/b.ops" > "$TMP/b2.out" \
  || fail "script B second replay"
cmp -s "$TMP/b1.out" "$TMP/b2.out" || fail "script B replay not deterministic"

# ---- exit-code contract --------------------------------------------
# usage/spec errors -> 2
printf 'bogus 1 2\n' > "$TMP/bad.ops"
"$BIN" dynamic "$TMP/bad.ops" >/dev/null 2>&1
[ $? -eq 2 ] || fail "unknown directive must exit 2"
"$BIN" dynamic --graph "$TMP/g.graph" "$TMP/a.ops" >/dev/null 2>&1
[ $? -eq 2 ] || fail "both --graph and a leading n must exit 2"
printf 'query 0 1\n' > "$TMP/noseed.ops"
"$BIN" dynamic "$TMP/noseed.ops" >/dev/null 2>&1
[ $? -eq 2 ] || fail "a script with no seed graph must exit 2"

# data errors during replay -> 1
printf 'n 4\nadd 0 1\ndel 1 2\n' > "$TMP/del-absent.ops"
"$BIN" dynamic "$TMP/del-absent.ops" >/dev/null 2>&1
[ $? -eq 1 ] || fail "deleting an absent edge must exit 1"
printf 'n 4\nadd 0 1\nadd 0 1\n' > "$TMP/dup.ops"
"$BIN" dynamic "$TMP/dup.ops" >/dev/null 2>&1
[ $? -eq 1 ] || fail "a duplicate insert must exit 1"

echo "dynamic_check OK"
