(* Tests for the extension modules: Thorup-Zwick (the CLPR10-era baseline
   substrate), blocking sets (the paper's Lemma 6/7 machinery made
   executable), sound pruning, and the batched greedy. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rng () = Rng.create ~seed:31337

let stretch k = float_of_int ((2 * k) - 1)

(* ------------------------- Thorup-Zwick ------------------------------ *)

let test_tz_is_spanner_unweighted () =
  let r = rng () in
  for seed = 1 to 6 do
    let g = Generators.connected_gnp (Rng.create ~seed) ~n:50 ~p:0.2 in
    let sel = Thorup_zwick.build r ~k:2 g in
    let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:0 in
    match report.Verify.violation with
    | None -> ()
    | Some v -> Alcotest.failf "tz: %s" (Format.asprintf "%a" Verify.pp_violation v)
  done

let test_tz_is_spanner_weighted () =
  let r = rng () in
  for seed = 1 to 6 do
    let base = Generators.connected_gnp (Rng.create ~seed) ~n:40 ~p:0.25 in
    let g = Generators.with_uniform_weights (Rng.create ~seed:(seed * 7)) base ~lo:0.1 ~hi:10. in
    let sel = Thorup_zwick.build r ~k:3 g in
    let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 3) ~f:0 in
    checkb "tz k=3 weighted valid" true (Verify.ok report)
  done

let test_tz_k1_is_everything () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:25 ~p:0.3 in
  checki "1-spanner keeps all edges" (Graph.m g) (Thorup_zwick.build r ~k:1 g).Selection.size

let test_tz_sparsifies_complete () =
  let r = rng () in
  let g = Generators.complete 60 in
  let sel = Thorup_zwick.build r ~k:2 g in
  checkb
    (Printf.sprintf "K60: %d < %d" sel.Selection.size (Graph.m g))
    true
    (sel.Selection.size < Graph.m g / 2)

let test_tz_state_levels () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.15 in
  let _, st = Thorup_zwick.build_with_state r ~k:3 g in
  Array.iter (fun l -> checkb "level range" true (l >= 0 && l <= 2)) st.Thorup_zwick.levels;
  checkb "some clusters formed" true (st.Thorup_zwick.cluster_count > 0)

let test_tz_spanning_when_connected () =
  (* A spanner of a connected graph is connected. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.12 in
  let sel = Thorup_zwick.build r ~k:2 g in
  let sub = Selection.to_subgraph sel in
  checkb "connected" true (Components.is_connected sub.Subgraph.graph)

let test_tz_inside_dk11 () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.25 in
  let algo rng sub = Thorup_zwick.build rng ~k:2 sub in
  let sel = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:1 ~algo g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) sel
      ~mode:Fault.VFT ~stretch:(stretch 2) ~f:1
  in
  checkb "dk11 over TZ valid" true (Verify.ok report)

(* ------------------------- Blocking sets ----------------------------- *)

let greedy_with_blocking g ~k ~f =
  let sel, certs = Poly_greedy.build_with_certificates ~mode:Fault.VFT ~k ~f g in
  (sel, Blocking.of_certificates sel certs)

let test_blocking_certificates_per_edge () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let sel, certs = Poly_greedy.build_with_certificates ~mode:Fault.VFT ~k:2 ~f:2 g in
  checki "one certificate per added edge" sel.Selection.size (List.length certs);
  List.iter
    (fun c ->
      checkb "certificate within Lemma 6 size" true
        (List.length c.Poly_greedy.cut <= 3 * 2);
      checkb "edge was selected" true (Selection.mem sel c.Poly_greedy.edge.Graph.id))
    certs

let test_blocking_is_blocking_set () =
  (* Lemma 6: the certificates form a (2k)-blocking set. *)
  for seed = 1 to 5 do
    let g = Generators.connected_gnp (Rng.create ~seed) ~n:30 ~p:0.3 in
    let k = 2 and f = 2 in
    let sel, b = greedy_with_blocking g ~k ~f in
    checkb "size bound" true
      (Blocking.size b <= Blocking.lemma6_bound ~k ~f ~spanner_size:sel.Selection.size);
    match Blocking.is_blocking b ~t_bound:(2 * k) with
    | Ok None -> ()
    | Ok (Some _) -> Alcotest.failf "unblocked short cycle found (seed %d)" seed
    | Error msg -> Alcotest.failf "enumeration failed: %s" msg
  done

let test_blocking_k3 () =
  let g = Generators.connected_gnp (Rng.create ~seed:9) ~n:25 ~p:0.35 in
  let sel, b = greedy_with_blocking g ~k:3 ~f:1 in
  ignore sel;
  match Blocking.is_blocking b ~t_bound:6 with
  | Ok None -> ()
  | Ok (Some _) -> Alcotest.fail "unblocked 6-cycle"
  | Error msg -> Alcotest.failf "enumeration failed: %s" msg

let test_blocking_detects_missing_pairs () =
  (* Strip the blocking set of a cyclic spanner: the checker must complain
     (provided a short cycle exists). *)
  let g = Generators.complete 6 in
  let sel, b = greedy_with_blocking g ~k:2 ~f:1 in
  let sub = Selection.to_subgraph sel in
  if not (Girth.girth_exceeds sub.Subgraph.graph ~bound:4) then begin
    let stripped = { b with Blocking.pairs = [] } in
    match Blocking.is_blocking stripped ~t_bound:4 with
    | Ok (Some _) -> ()
    | Ok None -> Alcotest.fail "empty blocking set accepted despite short cycles"
    | Error msg -> Alcotest.failf "enumeration failed: %s" msg
  end

let test_blocking_short_cycles_counts () =
  (* C5 has exactly one cycle of length 5 and none shorter. *)
  let g = Generators.cycle 5 in
  let sel = Selection.full g in
  let cycles4, ex4 = Blocking.short_cycles sel ~max_len:4 in
  checkb "exhaustive" true ex4;
  checki "no 4-cycles in C5" 0 (List.length cycles4);
  let cycles5, _ = Blocking.short_cycles sel ~max_len:5 in
  checki "one 5-cycle" 1 (List.length cycles5);
  (* K4: four triangles + three 4-cycles *)
  let k4 = Selection.full (Generators.complete 4) in
  let tri, _ = Blocking.short_cycles k4 ~max_len:3 in
  checki "K4 triangles" 4 (List.length tri);
  let four, _ = Blocking.short_cycles k4 ~max_len:4 in
  checki "K4 cycles up to 4" 7 (List.length four)

let test_blocking_lemma7_girth_deterministic () =
  (* The Lemma 7 subsample must always have girth > 2k. *)
  let r = rng () in
  let g = Generators.connected_gnp (Rng.create ~seed:4) ~n:80 ~p:0.2 in
  let _, b = greedy_with_blocking g ~k:2 ~f:1 in
  for _ = 1 to 10 do
    let s = Blocking.lemma7_subsample r b ~k:2 ~f:1 in
    checkb "girth > 2k" true s.Blocking.girth_exceeds_2k;
    checkb "node count as specified" true (s.Blocking.sampled_nodes <= 80 / 6 + 1)
  done

(* --------------------------- Lower bound ------------------------------ *)

let test_pp_incidence_structure () =
  List.iter
    (fun q ->
      let g = Lower_bound.projective_plane_incidence ~q in
      let count = (q * q) + q + 1 in
      checki (Printf.sprintf "n for q=%d" q) (2 * count) (Graph.n g);
      checki "m = (q+1)(q^2+q+1)" ((q + 1) * count) (Graph.m g);
      for v = 0 to Graph.n g - 1 do
        checki "regular" (q + 1) (Graph.degree g v)
      done;
      check (Alcotest.option Alcotest.int) "girth 6" (Some 6) (Girth.girth g))
    [ 2; 3 ]

let test_pp_rejects_composite () =
  try
    ignore (Lower_bound.projective_plane_incidence ~q:4);
    Alcotest.fail "q=4 (prime power, not prime) should be rejected"
  with Invalid_argument _ -> ()

let test_blow_up_structure () =
  let g = Generators.path 3 in
  let b = Lower_bound.blow_up g ~copies:3 in
  checki "n" 9 (Graph.n b);
  checki "m = m * copies^2" (2 * 9) (Graph.m b);
  (* copies of vertex 1 are adjacent to every copy of 0 and 2 *)
  for a = 0 to 2 do
    for c = 0 to 2 do
      checkb "bundle edge" true (Graph.mem_edge b ((1 * 3) + a) ((0 * 3) + c))
    done
  done

let test_lower_bound_forces_everything () =
  (* On the floor(f/2)+1 blow-up of a girth-6 graph, any f-VFT 3-spanner
     keeps every edge; the greedy must therefore return the whole graph. *)
  let base = Lower_bound.projective_plane_incidence ~q:2 in
  List.iter
    (fun f ->
      let g = Lower_bound.hard_instance ~f base in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g in
      checki
        (Printf.sprintf "f=%d: greedy keeps all %d edges" f (Graph.m g))
        (Graph.m g) sel.Selection.size)
    [ 0; 2; 4 ]

let test_lower_bound_exp_greedy_agrees () =
  let base = Lower_bound.projective_plane_incidence ~q:2 in
  let g = Lower_bound.hard_instance ~f:2 base in
  let sel = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  checki "optimal greedy also keeps everything" (Graph.m g) sel.Selection.size;
  (* sanity: the blow-up really is a valid f-VFT instance forcing via
     exhaustive verification that dropping any edge breaks it *)
  let full = Selection.full g in
  let report =
    Verify.random ~cfg:(Verify.config ~rng:(rng ()) ~trials:20 ()) full
      ~mode:Fault.VFT ~stretch:3.0 ~f:2
  in
  checkb "full graph trivially valid" true (Verify.ok report)

(* ----------------------------- Prune ---------------------------------- *)

let test_prune_output_still_valid () =
  for seed = 1 to 3 do
    let g = Generators.connected_gnp (Rng.create ~seed) ~n:14 ~p:0.45 in
    let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
    let res = Prune.minimalize ~mode:Fault.VFT ~k:2 ~f:1 sel in
    checki "candidates = spanner size" sel.Selection.size res.Prune.candidates;
    checki "size accounting" (sel.Selection.size - res.Prune.removed)
      res.Prune.pruned.Selection.size;
    let report =
      Verify.exhaustive res.Prune.pruned ~mode:Fault.VFT ~stretch:(stretch 2) ~f:1
    in
    checkb "pruned spanner still valid" true (Verify.ok report)
  done

let test_prune_weighted_still_valid () =
  let r = rng () in
  let g0 = Generators.connected_gnp r ~n:12 ~p:0.5 in
  let g = Generators.with_uniform_weights r g0 ~lo:0.5 ~hi:4.0 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  let res = Prune.minimalize ~mode:Fault.VFT ~k:2 ~f:1 sel in
  let report =
    Verify.exhaustive res.Prune.pruned ~mode:Fault.VFT ~stretch:(stretch 2) ~f:1
  in
  checkb "weighted pruned valid" true (Verify.ok report)

let test_prune_cycle_is_minimal () =
  (* A cycle at f=1 EFT: nothing is removable. *)
  let g = Generators.cycle 8 in
  let sel = Poly_greedy.build ~mode:Fault.EFT ~k:2 ~f:1 g in
  let res = Prune.minimalize ~mode:Fault.EFT ~k:2 ~f:1 sel in
  checki "nothing removable" 0 res.Prune.removed

let test_prune_removes_redundancy () =
  (* Start from the full graph (a trivially valid spanner): pruning must
     find slack on a dense instance. *)
  let g = Generators.complete 9 in
  let res = Prune.minimalize ~mode:Fault.VFT ~k:2 ~f:1 (Selection.full g) in
  checkb
    (Printf.sprintf "removed %d of %d" res.Prune.removed (Graph.m g))
    true (res.Prune.removed > 0)

(* -------------------------- Batch greedy ------------------------------ *)

let test_batch_one_equals_sequential () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let seq = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  let bat = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch:1 g in
  check (Alcotest.list Alcotest.int) "identical" (Selection.ids seq)
    (Selection.ids bat.Batch_greedy.selection);
  checki "m batches" (Graph.m g) bat.Batch_greedy.batches

let test_batch_full_is_whole_graph () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:25 ~p:0.3 in
  let bat = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch:(Graph.m g) g in
  checki "one batch" 1 bat.Batch_greedy.batches;
  checki "everything accepted" (Graph.m g) bat.Batch_greedy.selection.Selection.size

let test_batch_valid_at_any_batch_size () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:13 ~p:0.4 in
  List.iter
    (fun batch ->
      let bat = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch g in
      let report =
        Verify.exhaustive bat.Batch_greedy.selection ~mode:Fault.VFT
          ~stretch:(stretch 2) ~f:1
      in
      checkb (Printf.sprintf "batch=%d valid" batch) true (Verify.ok report))
    [ 1; 2; 5; 16; 1000 ]

let test_batch_size_monotone_tendency () =
  (* Bigger batches see less context, so sizes should not shrink. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.25 in
  let size batch =
    (Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch g).Batch_greedy.selection
      .Selection.size
  in
  let s1 = size 1 and s16 = size 16 and sall = size (Graph.m g) in
  checkb "batch 16 >= sequential" true (s16 >= s1);
  checkb "single batch is largest" true (sall >= s16)

let test_batch_weighted_valid () =
  let r = rng () in
  let g0 = Generators.connected_gnp r ~n:12 ~p:0.5 in
  let g = Generators.with_uniform_weights r g0 ~lo:1.0 ~hi:6.0 in
  let bat = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch:8 g in
  let report =
    Verify.exhaustive bat.Batch_greedy.selection ~mode:Fault.VFT
      ~stretch:(stretch 2) ~f:1
  in
  checkb "weighted batched valid" true (Verify.ok report)

let test_batch_parallel_matches_sequential () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.25 in
  List.iter
    (fun (batch, domains) ->
      let seq = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 ~batch g in
      let par =
        Exec.Pool.with_pool ~domains (fun pool ->
            Batch_greedy.build ~pool ~mode:Fault.VFT ~k:2 ~f:2 ~batch g)
      in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "batch=%d domains=%d" batch domains)
        (Selection.ids seq.Batch_greedy.selection)
        (Selection.ids par.Batch_greedy.selection))
    [ (8, 2); (64, 3); (1000, 4) ]

(* The per-call-spawn [build_parallel] wrapper is gone; the facade's
   [Spanner.options ?pool ?batch] is the supported route to the batched
   parallel build and must keep producing the sequential selection. *)
let test_batch_parallel_via_facade () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.3 in
  let seq = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch:16 g in
  let par =
    Exec.Pool.with_pool ~domains:2 (fun pool ->
        Spanner.build
          ~options:(Spanner.options ~batch:16 ~pool ())
          { Spanner.k = 2; f = 1; mode = Fault.VFT }
          g)
  in
  check (Alcotest.list Alcotest.int) "facade route matches"
    (Selection.ids seq.Batch_greedy.selection)
    (Selection.ids par)

let test_batch_rejects_bad_batch () =
  let g = Generators.cycle 4 in
  try
    ignore (Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch:0 g);
    Alcotest.fail "batch=0 should fail"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "extensions"
    [
      ( "thorup-zwick",
        [
          Alcotest.test_case "unweighted valid" `Quick test_tz_is_spanner_unweighted;
          Alcotest.test_case "weighted valid" `Quick test_tz_is_spanner_weighted;
          Alcotest.test_case "k=1 keeps all" `Quick test_tz_k1_is_everything;
          Alcotest.test_case "sparsifies" `Quick test_tz_sparsifies_complete;
          Alcotest.test_case "state levels" `Quick test_tz_state_levels;
          Alcotest.test_case "connectivity" `Quick test_tz_spanning_when_connected;
          Alcotest.test_case "inside dk11" `Quick test_tz_inside_dk11;
        ] );
      ( "blocking (Lemmas 6-7)",
        [
          Alcotest.test_case "certificates per edge" `Quick test_blocking_certificates_per_edge;
          Alcotest.test_case "is blocking set" `Quick test_blocking_is_blocking_set;
          Alcotest.test_case "k=3" `Quick test_blocking_k3;
          Alcotest.test_case "detects missing pairs" `Quick test_blocking_detects_missing_pairs;
          Alcotest.test_case "cycle counts" `Quick test_blocking_short_cycles_counts;
          Alcotest.test_case "lemma 7 girth" `Quick test_blocking_lemma7_girth_deterministic;
        ] );
      ( "lower bound (BDPW18 family)",
        [
          Alcotest.test_case "incidence structure" `Quick test_pp_incidence_structure;
          Alcotest.test_case "rejects composite" `Quick test_pp_rejects_composite;
          Alcotest.test_case "blow-up structure" `Quick test_blow_up_structure;
          Alcotest.test_case "forces everything" `Quick test_lower_bound_forces_everything;
          Alcotest.test_case "exp greedy agrees" `Quick test_lower_bound_exp_greedy_agrees;
        ] );
      ( "prune",
        [
          Alcotest.test_case "output valid" `Quick test_prune_output_still_valid;
          Alcotest.test_case "weighted valid" `Quick test_prune_weighted_still_valid;
          Alcotest.test_case "cycle minimal" `Quick test_prune_cycle_is_minimal;
          Alcotest.test_case "removes redundancy" `Quick test_prune_removes_redundancy;
        ] );
      ( "batch greedy",
        [
          Alcotest.test_case "batch=1 = sequential" `Quick test_batch_one_equals_sequential;
          Alcotest.test_case "one batch = G" `Quick test_batch_full_is_whole_graph;
          Alcotest.test_case "valid at any batch" `Quick test_batch_valid_at_any_batch_size;
          Alcotest.test_case "size monotone" `Quick test_batch_size_monotone_tendency;
          Alcotest.test_case "weighted valid" `Quick test_batch_weighted_valid;
          Alcotest.test_case "parallel = sequential" `Quick test_batch_parallel_matches_sequential;
          Alcotest.test_case "facade pool route" `Quick test_batch_parallel_via_facade;
          Alcotest.test_case "bad batch" `Quick test_batch_rejects_bad_batch;
        ] );
    ]
