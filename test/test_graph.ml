(* Unit tests for the graph substrate: Graph, Path, Pqueue, Bfs, Dijkstra,
   Hop_dp, Union_find, Components, Girth, Subgraph, Stats, Generators,
   Graph_io, Rng. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

let rng () = Rng.create ~seed:42

(* -------------------------------------------------------------------- *)
(* Graph                                                                *)

let test_graph_empty () =
  let g = Graph.create 5 in
  checki "n" 5 (Graph.n g);
  checki "m" 0 (Graph.m g);
  checki "degree" 0 (Graph.degree g 0);
  checkb "no edge" false (Graph.mem_edge g 0 1)

let test_graph_add_edge () =
  let g = Graph.create 4 in
  let id = Graph.add_edge g 2 1 ~w:3.5 in
  checki "first id" 0 id;
  checki "m" 1 (Graph.m g);
  checkb "mem 1-2" true (Graph.mem_edge g 1 2);
  checkb "mem 2-1" true (Graph.mem_edge g 2 1);
  let e = Graph.edge g id in
  checki "u normalized to min" 1 e.Graph.u;
  checki "v normalized to max" 2 e.Graph.v;
  checkf "w" 3.5 e.Graph.w;
  checki "other endpoint of 1" 2 (Graph.other_endpoint g id 1);
  checki "other endpoint of 2" 1 (Graph.other_endpoint g id 2)

let test_graph_rejects_self_loop () =
  let g = Graph.create 3 in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge g 1 1 ~w:1.))

let test_graph_rejects_duplicate () =
  let g = Graph.create 3 in
  ignore (Graph.add_edge_unit g 0 1);
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Graph.add_edge: duplicate edge {1,0}") (fun () ->
      ignore (Graph.add_edge g 1 0 ~w:2.))

let test_graph_rejects_bad_weight () =
  let g = Graph.create 3 in
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Graph.add_edge: non-positive weight") (fun () ->
      ignore (Graph.add_edge g 0 1 ~w:0.))

let test_graph_rejects_out_of_range () =
  let g = Graph.create 3 in
  (try
     ignore (Graph.add_edge g 0 7 ~w:1.);
     Alcotest.fail "expected exception"
   with Invalid_argument _ -> ())

let test_graph_grows_storage () =
  let g = Graph.create 40 in
  for u = 0 to 39 do
    for v = u + 1 to 39 do
      ignore (Graph.add_edge_unit g u v)
    done
  done;
  checki "complete graph m" (40 * 39 / 2) (Graph.m g);
  checki "degree" 39 (Graph.degree g 0);
  checki "max degree" 39 (Graph.max_degree g)

let test_graph_iterators () =
  let g = Graph.of_weighted_edges 4 [ (0, 1, 1.); (1, 2, 2.); (2, 3, 3.) ] in
  let total = Graph.fold_edges g 0. (fun acc e -> acc +. e.Graph.w) in
  checkf "fold weight" 6. total;
  checkf "total_weight" 6. (Graph.total_weight g);
  let seen = ref [] in
  Graph.iter_neighbors g 1 (fun v _ -> seen := v :: !seen);
  checki "neighbors of 1" 2 (List.length !seen);
  checkb "0 in neighbors" true (List.mem 0 !seen);
  checkb "2 in neighbors" true (List.mem 2 !seen)

let test_graph_copy_independent () =
  let g = Graph.of_edges 3 [ (0, 1) ] in
  let h = Graph.copy g in
  ignore (Graph.add_edge_unit h 1 2);
  checki "original m" 1 (Graph.m g);
  checki "copy m" 2 (Graph.m h)

let test_graph_unit_weighted () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2) ] in
  checkb "unit" true (Graph.is_unit_weighted g);
  let h = Graph.of_weighted_edges 3 [ (0, 1, 1.); (1, 2, 2.) ] in
  checkb "not unit" false (Graph.is_unit_weighted h)

let test_graph_find_edge () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  check (Alcotest.option Alcotest.int) "found" (Some 1) (Graph.find_edge g 3 2);
  check (Alcotest.option Alcotest.int) "absent" None (Graph.find_edge g 0 3)

(* -------------------------------------------------------------------- *)
(* Csr — the flat adjacency behind Graph                                *)

(* Every half-edge sequence a vertex exposes, via the public Csr.iter. *)
let iter_seq adj v =
  let acc = ref [] in
  Csr.iter adj v (fun nbr id -> acc := (nbr, id) :: !acc);
  List.rev !acc

(* A random graph built through interleaved add_edge calls, so the append
   buffer sees many partial states and several compactions fire. *)
let random_grown r ~n ~m =
  let g = Graph.create n in
  while Graph.m g < m do
    let u = Rng.int r n and v = Rng.int r n in
    if u <> v && not (Graph.mem_edge g u v) then
      ignore (Graph.add_edge g u v ~w:(1. +. float_of_int (Rng.int r 5)))
  done;
  g

let test_csr_invariants_under_growth () =
  let r = rng () in
  let g = random_grown r ~n:40 ~m:220 in
  let adj = Graph.adjacency g in
  let halves = ref 0 in
  let seen = Array.make (Graph.m g) 0 in
  for v = 0 to Graph.n g - 1 do
    let seq = iter_seq adj v in
    checki (Printf.sprintf "degree %d" v) (Graph.degree g v) (List.length seq);
    halves := !halves + List.length seq;
    (* Ordering contract: strictly decreasing edge ids (newest first). *)
    let ids = List.map snd seq in
    (match ids with
    | [] -> ()
    | _ :: tl ->
        checkb
          (Printf.sprintf "vertex %d ids strictly decreasing" v)
          true
          (List.for_all2 ( > ) ids (tl @ [ -1 ])));
    List.iter (fun id -> seen.(id) <- seen.(id) + 1) ids
  done;
  checki "buffered + packed = 2m" (2 * Graph.m g) !halves;
  Array.iteri (fun id c -> checki (Printf.sprintf "edge %d twice" id) 2 c) seen

let test_csr_compact_preserves_iteration () =
  let r = rng () in
  let g = random_grown r ~n:30 ~m:120 in
  let adj = Graph.adjacency g in
  let before = List.init (Graph.n g) (iter_seq adj) in
  Csr.compact adj;
  checki "buffer drained" 0 (Csr.buffered adj);
  let after = List.init (Graph.n g) (iter_seq adj) in
  List.iteri
    (fun v (b, a) ->
      check
        (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
        (Printf.sprintf "vertex %d sequence unchanged" v)
        b a)
    (List.combine before after)

(* The buffered and fully-compacted views must be observationally
   equivalent: same BFS layers, same Dijkstra distances, same LBC
   verdicts.  [compacted] is a deep copy whose buffer is force-drained,
   so the two graphs differ only in physical layout. *)
let test_csr_views_equivalent () =
  let r = rng () in
  for _ = 1 to 5 do
    let g = random_grown r ~n:36 ~m:150 in
    let c = Graph.copy g in
    Csr.compact (Graph.adjacency c);
    let src = Rng.int r (Graph.n g) in
    let db = Bfs.distances g src and dc = Bfs.distances c src in
    check (Alcotest.array Alcotest.int) "bfs layers" db dc;
    for dst = 0 to Graph.n g - 1 do
      let wb = Dijkstra.distance_upto g ~src ~dst ~cutoff:infinity in
      let wc = Dijkstra.distance_upto c ~src ~dst ~cutoff:infinity in
      check (Alcotest.option (Alcotest.float 1e-9)) "dijkstra" wb wc
    done;
    let u = Rng.int r (Graph.n g) and v = Rng.int r (Graph.n g) in
    if u <> v then
      List.iter
        (fun mode ->
          let vb = Lbc.decide ~mode g ~u ~v ~t:3 ~alpha:2 in
          let vc = Lbc.decide ~mode c ~u ~v ~t:3 ~alpha:2 in
          match (vb, vc) with
          | Lbc.Yes { cut = c1 }, Lbc.Yes { cut = c2 } ->
              check
                (Alcotest.list Alcotest.int)
                "lbc cut" (List.sort compare c1) (List.sort compare c2)
          | Lbc.No _, Lbc.No _ -> ()
          | _ -> Alcotest.fail "lbc verdict diverged between views")
        [ Fault.VFT; Fault.EFT ]
  done

(* The CSR must reproduce the historical cons-list adjacency exactly:
   iteration order equals the order of a [(v, id) :: list] model. *)
let test_csr_matches_list_model () =
  let r = rng () in
  let n = 25 in
  let g = Graph.create n in
  let model = Array.make n [] in
  for _ = 1 to 400 do
    let u = Rng.int r n and v = Rng.int r n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      let id = Graph.add_edge g u v ~w:1. in
      let u', v' = (min u v, max u v) in
      model.(u') <- (v', id) :: model.(u');
      model.(v') <- (u', id) :: model.(v')
    end
  done;
  let adj = Graph.adjacency g in
  for v = 0 to n - 1 do
    check
      (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
      (Printf.sprintf "vertex %d matches model" v)
      model.(v) (iter_seq adj v)
  done

(* -------------------------------------------------------------------- *)
(* Path                                                                 *)

let test_path_basic () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (2, 3) ] in
  let p = { Path.vertices = [ 0; 1; 2; 3 ]; edges = [ 0; 1; 2 ] } in
  checki "hops" 3 (Path.hops p);
  checki "source" 0 (Path.source p);
  checki "target" 3 (Path.target p);
  check (Alcotest.list Alcotest.int) "interior" [ 1; 2 ] (Path.interior p);
  checkb "valid" true (Path.is_valid g p);
  checkf "weight" 3. (Path.weight g p)

let test_path_single_vertex () =
  let p = { Path.vertices = [ 7 ]; edges = [] } in
  checki "hops" 0 (Path.hops p);
  check (Alcotest.list Alcotest.int) "interior empty" [] (Path.interior p)

let test_path_invalid_detected () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let p = { Path.vertices = [ 0; 1; 2 ]; edges = [ 0; 1 ] } in
  checkb "edge 1 doesn't join 1-2" false (Path.is_valid g p)

(* -------------------------------------------------------------------- *)
(* Pqueue                                                               *)

let test_pqueue_ordering () =
  let h = Pqueue.create ~capacity:4 in
  List.iter (fun (k, p) -> Pqueue.push h k p)
    [ (5., 50); (1., 10); (3., 30); (2., 20); (4., 40) ];
  let order = ref [] in
  let rec drain () =
    match Pqueue.pop_min h with
    | None -> ()
    | Some (_, p) ->
        order := p :: !order;
        drain ()
  in
  drain ();
  check (Alcotest.list Alcotest.int) "sorted" [ 10; 20; 30; 40; 50 ]
    (List.rev !order)

let test_pqueue_duplicates_and_clear () =
  let h = Pqueue.create ~capacity:2 in
  Pqueue.push h 1. 1;
  Pqueue.push h 1. 1;
  checki "len" 2 (Pqueue.length h);
  Pqueue.clear h;
  checkb "empty after clear" true (Pqueue.is_empty h);
  check (Alcotest.option (Alcotest.pair (Alcotest.float 0.) Alcotest.int))
    "pop empty" None (Pqueue.pop_min h)

let test_pqueue_interleaved () =
  let h = Pqueue.create ~capacity:1 in
  Pqueue.push h 2. 2;
  Pqueue.push h 1. 1;
  (match Pqueue.pop_min h with
  | Some (k, 1) -> checkf "min key" 1. k
  | _ -> Alcotest.fail "expected payload 1");
  Pqueue.push h 0.5 0;
  match Pqueue.pop_min h with
  | Some (_, p) -> checki "new min" 0 p
  | None -> Alcotest.fail "expected element"

(* -------------------------------------------------------------------- *)
(* BFS                                                                  *)

let test_bfs_distances_path_graph () =
  let g = Generators.path 5 in
  let d = Bfs.distances g 0 in
  check (Alcotest.array Alcotest.int) "distances" [| 0; 1; 2; 3; 4 |] d

let test_bfs_unreachable () =
  let g = Graph.of_edges 4 [ (0, 1); (2, 3) ] in
  let d = Bfs.distances g 0 in
  checki "unreachable" (-1) d.(3)

let test_bfs_hop_bounded_respects_limit () =
  let g = Generators.path 5 in
  checkb "4 hops needed, 3 allowed" true
    (Bfs.hop_bounded_path g ~src:0 ~dst:4 ~max_hops:3 = None);
  match Bfs.hop_bounded_path g ~src:0 ~dst:4 ~max_hops:4 with
  | Some p ->
      checki "hops" 4 (Path.hops p);
      checkb "valid" true (Path.is_valid g p)
  | None -> Alcotest.fail "path expected"

let test_bfs_finds_min_hop () =
  (* triangle with a pendant: 0-1, 1-2, 0-2, 2-3 *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  match Bfs.hop_bounded_path g ~src:0 ~dst:3 ~max_hops:5 with
  | Some p -> checki "min hops 2" 2 (Path.hops p)
  | None -> Alcotest.fail "path expected"

let test_bfs_blocked_vertex () =
  (* 0-1-3 and 0-2-3: blocking 1 forces via 2 *)
  let g = Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let blocked = Array.make 4 false in
  blocked.(1) <- true;
  match Bfs.hop_bounded_path ~blocked_vertices:blocked g ~src:0 ~dst:3 ~max_hops:3 with
  | Some p -> checkb "avoids 1" false (List.mem 1 p.Path.vertices)
  | None -> Alcotest.fail "path expected"

let test_bfs_blocked_edge () =
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let direct = Option.get (Graph.find_edge g 0 2) in
  let blocked = Array.make 3 false in
  blocked.(direct) <- true;
  match Bfs.hop_bounded_path ~blocked_edges:blocked g ~src:0 ~dst:2 ~max_hops:3 with
  | Some p -> checki "detour" 2 (Path.hops p)
  | None -> Alcotest.fail "path expected"

let test_bfs_blocked_terminal () =
  let g = Generators.path 3 in
  let blocked = Array.make 3 false in
  blocked.(0) <- true;
  checkb "blocked src" true
    (Bfs.hop_bounded_path ~blocked_vertices:blocked g ~src:0 ~dst:2 ~max_hops:3 = None)

let test_bfs_src_eq_dst () =
  let g = Generators.path 3 in
  match Bfs.hop_bounded_path g ~src:1 ~dst:1 ~max_hops:0 with
  | Some p -> checki "zero hops" 0 (Path.hops p)
  | None -> Alcotest.fail "trivial path expected"

let test_bfs_workspace_reuse () =
  let g = Generators.cycle 10 in
  let ws = Bfs.Workspace.create () in
  for _ = 1 to 50 do
    (match Bfs.hop_bounded_path ~ws g ~src:0 ~dst:5 ~max_hops:5 with
    | Some p -> checki "hops" 5 (Path.hops p)
    | None -> Alcotest.fail "path expected");
    match Bfs.hop_bounded_path ~ws g ~src:0 ~dst:5 ~max_hops:4 with
    | Some _ -> Alcotest.fail "4 hops can't reach antipode of C10"
    | None -> ()
  done

let test_bfs_workspace_grows () =
  let ws = Bfs.Workspace.create () in
  let small = Generators.path 3 in
  ignore (Bfs.hop_bounded_path ~ws small ~src:0 ~dst:2 ~max_hops:2);
  let big = Generators.path 50 in
  match Bfs.hop_bounded_path ~ws big ~src:0 ~dst:49 ~max_hops:49 with
  | Some p -> checki "hops" 49 (Path.hops p)
  | None -> Alcotest.fail "path expected"

let test_bfs_eccentricity () =
  let g = Generators.path 5 in
  checki "end" 4 (Bfs.eccentricity g 0);
  checki "middle" 2 (Bfs.eccentricity g 2)

let test_bfs_hop_distance () =
  let g = Generators.cycle 6 in
  check (Alcotest.option Alcotest.int) "antipode" (Some 3) (Bfs.hop_distance g 0 3);
  let h = Graph.create 2 in
  check (Alcotest.option Alcotest.int) "disconnected" None (Bfs.hop_distance h 0 1)

(* -------------------------------------------------------------------- *)
(* Dijkstra                                                             *)

let test_dijkstra_weighted_shortcut () =
  (* 0-1 (1.0), 1-2 (1.0), 0-2 (5.0): best 0->2 is 2.0 *)
  let g = Graph.of_weighted_edges 3 [ (0, 1, 1.); (1, 2, 1.); (0, 2, 5.) ] in
  let d = Dijkstra.distances g 0 in
  checkf "via middle" 2. d.(2)

let test_dijkstra_unreachable_infinity () =
  let g = Graph.of_edges 4 [ (0, 1) ] in
  let d = Dijkstra.distances g 0 in
  checkb "infinite" true (d.(3) = infinity)

let test_dijkstra_distance_upto_cutoff () =
  let g = Graph.of_weighted_edges 3 [ (0, 1, 2.); (1, 2, 2.) ] in
  check (Alcotest.option (Alcotest.float 1e-9)) "within" (Some 4.)
    (Dijkstra.distance_upto g ~src:0 ~dst:2 ~cutoff:4.);
  check (Alcotest.option (Alcotest.float 1e-9)) "beyond" None
    (Dijkstra.distance_upto g ~src:0 ~dst:2 ~cutoff:3.9)

let test_dijkstra_shortest_path_valid () =
  let g =
    Graph.of_weighted_edges 5
      [ (0, 1, 1.); (1, 2, 1.); (2, 4, 1.); (0, 3, 1.5); (3, 4, 1.4) ]
  in
  match Dijkstra.shortest_path g ~src:0 ~dst:4 with
  | Some p ->
      checkb "valid" true (Path.is_valid g p);
      checkf "weight" 2.9 (Path.weight g p)
  | None -> Alcotest.fail "path expected"

let test_dijkstra_blocked_matches_bfs_on_unit () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.12 in
  let blocked = Array.make 40 false in
  blocked.(3) <- true;
  blocked.(17) <- true;
  let db = Bfs.distances ~blocked_vertices:blocked g 0 in
  let dd = Dijkstra.distances ~blocked_vertices:blocked g 0 in
  for v = 0 to 39 do
    if not blocked.(v) then
      let expected = if db.(v) < 0 then infinity else float_of_int db.(v) in
      checkf (Printf.sprintf "v%d" v) expected dd.(v)
  done

(* -------------------------------------------------------------------- *)
(* Hop_dp                                                               *)

let test_hop_dp_budget_filters () =
  (* 0-2 direct weight 10; 0-1-2 weight 2 but 2 hops *)
  let g = Graph.of_weighted_edges 3 [ (0, 2, 10.); (0, 1, 1.); (1, 2, 1.) ] in
  (match Hop_dp.min_hop_path g ~src:0 ~dst:2 ~budget:10. ~max_hops:5 with
  | Some p -> checki "prefers 1 hop within budget" 1 (Path.hops p)
  | None -> Alcotest.fail "path expected");
  match Hop_dp.min_hop_path g ~src:0 ~dst:2 ~budget:5. ~max_hops:5 with
  | Some p -> checki "budget forces 2 hops" 2 (Path.hops p)
  | None -> Alcotest.fail "path expected"

let test_hop_dp_no_path_within_budget () =
  let g = Graph.of_weighted_edges 3 [ (0, 1, 3.); (1, 2, 3.) ] in
  checkb "budget too small" true
    (Hop_dp.min_hop_path g ~src:0 ~dst:2 ~budget:5. ~max_hops:5 = None)

let test_hop_dp_max_hops_binds () =
  let g = Generators.path 5 in
  checkb "3 hops insufficient" true
    (Hop_dp.min_hop_path g ~src:0 ~dst:4 ~budget:100. ~max_hops:3 = None);
  match Hop_dp.min_hop_path g ~src:0 ~dst:4 ~budget:100. ~max_hops:4 with
  | Some p -> checki "hops" 4 (Path.hops p)
  | None -> Alcotest.fail "path expected"

let test_hop_dp_respects_blocks () =
  let g = Graph.of_edges 4 [ (0, 1); (1, 3); (0, 2); (2, 3) ] in
  let blocked = Array.make 4 false in
  blocked.(1) <- true;
  match
    Hop_dp.min_hop_path ~blocked_vertices:blocked g ~src:0 ~dst:3 ~budget:10.
      ~max_hops:5
  with
  | Some p ->
      checkb "avoids blocked" false (List.mem 1 p.Path.vertices);
      checkb "valid" true (Path.is_valid g p)
  | None -> Alcotest.fail "path expected"

let test_hop_dp_agrees_with_bfs_on_unit () =
  let r = rng () in
  for _ = 1 to 10 do
    let g = Generators.connected_gnp r ~n:25 ~p:0.15 in
    let u = Rng.int r 25 and v = Rng.int r 25 in
    if u <> v then begin
      let bfs = Bfs.hop_bounded_path g ~src:u ~dst:v ~max_hops:6 in
      let dp = Hop_dp.min_hop_path g ~src:u ~dst:v ~budget:6.0 ~max_hops:6 in
      match (bfs, dp) with
      | None, None -> ()
      | Some p1, Some p2 -> checki "same hop count" (Path.hops p1) (Path.hops p2)
      | Some _, None -> Alcotest.fail "dp missed a path bfs found"
      | None, Some _ -> Alcotest.fail "dp found a path bfs missed"
    end
  done

(* -------------------------------------------------------------------- *)
(* Union_find / Components                                              *)

let test_union_find_basics () =
  let uf = Union_find.create 5 in
  checki "initial sets" 5 (Union_find.count uf);
  checkb "union new" true (Union_find.union uf 0 1);
  checkb "union redundant" false (Union_find.union uf 1 0);
  checkb "same" true (Union_find.same uf 0 1);
  checkb "not same" false (Union_find.same uf 0 2);
  checki "sets after union" 4 (Union_find.count uf)

let test_union_find_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  checkb "0 ~ 3" true (Union_find.same uf 0 3);
  checki "sets" 3 (Union_find.count uf)

let test_components_two_islands () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (3, 4) ] in
  let label, count = Components.labels g in
  checki "count" 2 count;
  checkb "0,2 together" true (label.(0) = label.(2));
  checkb "0,3 apart" true (label.(0) <> label.(3));
  checkb "connected" false (Components.is_connected g)

let test_components_under_faults () =
  (* path 0-1-2-3; removing vertex 1 splits it *)
  let g = Generators.path 4 in
  let blocked = Array.make 4 false in
  blocked.(1) <- true;
  let label, count = Components.labels ~blocked_vertices:blocked g in
  checki "three parts: {0} {2,3}" 2 count;
  checki "blocked labeled -1" (-1) label.(1)

let test_components_edge_faults () =
  let g = Generators.cycle 4 in
  let blocked = Array.make 4 false in
  blocked.(0) <- true;
  let _, count = Components.labels ~blocked_edges:blocked g in
  checki "cycle minus one edge still connected" 1 count

(* -------------------------------------------------------------------- *)
(* Girth                                                                *)

let test_girth_tree_none () =
  let g = Generators.path 6 in
  check (Alcotest.option Alcotest.int) "forest" None (Girth.girth g)

let test_girth_cycle () =
  check (Alcotest.option Alcotest.int) "C5" (Some 5) (Girth.girth (Generators.cycle 5));
  check (Alcotest.option Alcotest.int) "C3" (Some 3)
    (Girth.girth (Generators.complete 3))

let test_girth_complete () =
  check (Alcotest.option Alcotest.int) "K6" (Some 3) (Girth.girth (Generators.complete 6))

let test_girth_hypercube () =
  check (Alcotest.option Alcotest.int) "Q3 girth 4" (Some 4)
    (Girth.girth (Generators.hypercube ~dim:3))

let test_girth_exceeds () =
  let g = Generators.cycle 7 in
  checkb "exceeds 6" true (Girth.girth_exceeds g ~bound:6);
  checkb "not exceeds 7" false (Girth.girth_exceeds g ~bound:7)

let test_girth_petersen () =
  (* Petersen graph: girth 5 *)
  let outer = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let spokes = [ (0, 5); (1, 6); (2, 7); (3, 8); (4, 9) ] in
  let inner = [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ] in
  let g = Graph.of_edges 10 (outer @ spokes @ inner) in
  check (Alcotest.option Alcotest.int) "petersen" (Some 5) (Girth.girth g)

(* -------------------------------------------------------------------- *)
(* Subgraph                                                             *)

let test_subgraph_induced () =
  let g = Graph.of_edges 5 [ (0, 1); (1, 2); (2, 3); (3, 4); (0, 4) ] in
  let sub = Subgraph.induced g [ 0; 1; 2 ] in
  checki "n" 3 (Graph.n sub.Subgraph.graph);
  checki "m (0-1 and 1-2)" 2 (Graph.m sub.Subgraph.graph);
  (* provenance round trip *)
  Graph.iter_edges sub.Subgraph.graph (fun e ->
      let pid = sub.Subgraph.to_parent_edge.(e.Graph.id) in
      let pu, pv = Graph.endpoints g pid in
      let su = sub.Subgraph.to_parent_vertex.(e.Graph.u) in
      let sv = sub.Subgraph.to_parent_vertex.(e.Graph.v) in
      checkb "endpoints map" true ((su = pu && sv = pv) || (su = pv && sv = pu)))

let test_subgraph_of_parent_inverse () =
  let g = Generators.cycle 6 in
  let sub = Subgraph.induced g [ 1; 3; 5 ] in
  for sv = 0 to 2 do
    let pv = sub.Subgraph.to_parent_vertex.(sv) in
    checki "inverse" sv sub.Subgraph.of_parent_vertex.(pv)
  done;
  checki "absent" (-1) sub.Subgraph.of_parent_vertex.(0)

let test_subgraph_edge_subset () =
  let g = Generators.cycle 5 in
  let keep = Array.make 5 false in
  keep.(0) <- true;
  keep.(2) <- true;
  let sub = Subgraph.of_edge_subset g keep in
  checki "n preserved" 5 (Graph.n sub.Subgraph.graph);
  checki "m" 2 (Graph.m sub.Subgraph.graph);
  Graph.iter_edges sub.Subgraph.graph (fun e ->
      checkb "id maps to kept" true keep.(sub.Subgraph.to_parent_edge.(e.Graph.id)))

let test_subgraph_induced_weights_preserved () =
  let g = Graph.of_weighted_edges 3 [ (0, 1, 2.5); (1, 2, 7.) ] in
  let sub = Subgraph.induced g [ 0; 1 ] in
  checki "one edge" 1 (Graph.m sub.Subgraph.graph);
  checkf "weight carried" 2.5 (Graph.weight sub.Subgraph.graph 0)

(* -------------------------------------------------------------------- *)
(* Stats                                                                *)

let test_stats_cycle () =
  let s = Stats.compute (Generators.cycle 6) in
  checki "n" 6 s.Stats.n;
  checki "m" 6 s.Stats.m;
  checki "min deg" 2 s.Stats.min_degree;
  checki "max deg" 2 s.Stats.max_degree;
  checkf "avg deg" 2. s.Stats.avg_degree;
  checki "components" 1 s.Stats.components

let test_stats_diameter () =
  checki "path diameter" 4 (Stats.diameter (Generators.path 5));
  checki "complete diameter" 1 (Stats.diameter (Generators.complete 5))

let test_degree_histogram () =
  let g = Generators.path 4 in
  let h = Stats.degree_histogram g in
  checki "deg1 count" 2 h.(1);
  checki "deg2 count" 2 h.(2)

(* -------------------------------------------------------------------- *)
(* Generators                                                           *)

let test_gen_complete () =
  let g = Generators.complete 7 in
  checki "m" 21 (Graph.m g);
  checki "max degree" 6 (Graph.max_degree g)

let test_gen_grid () =
  let g = Generators.grid ~rows:3 ~cols:4 in
  checki "n" 12 (Graph.n g);
  checki "m" ((2 * 4) + (3 * 3)) (Graph.m g);
  checki "diameter" 5 (Stats.diameter g)

let test_gen_torus () =
  let g = Generators.torus ~rows:4 ~cols:4 in
  checki "m = 2n" 32 (Graph.m g);
  checki "4-regular" 4 (Graph.max_degree g)

let test_gen_hypercube () =
  let g = Generators.hypercube ~dim:4 in
  checki "n" 16 (Graph.n g);
  checki "m = n*dim/2" 32 (Graph.m g);
  checki "diameter = dim" 4 (Stats.diameter g)

let test_gen_gnp_bounds () =
  let r = rng () in
  let g = Generators.gnp r ~n:50 ~p:1.0 in
  checki "p=1 gives complete" (50 * 49 / 2) (Graph.m g);
  let h = Generators.gnp r ~n:50 ~p:0.0 in
  checki "p=0 gives empty" 0 (Graph.m h)

let test_gen_gnp_density () =
  let r = rng () in
  let g = Generators.gnp r ~n:120 ~p:0.3 in
  let expected = 0.3 *. float_of_int (120 * 119 / 2) in
  let actual = float_of_int (Graph.m g) in
  checkb "within 15% of expectation" true
    (abs_float (actual -. expected) < 0.15 *. expected)

let test_gen_gnm_exact () =
  let r = rng () in
  let g = Generators.gnm r ~n:30 ~m:100 in
  checki "exact edge count" 100 (Graph.m g);
  (* dense request takes the sampling path *)
  let h = Generators.gnm r ~n:20 ~m:180 in
  checki "dense exact" 180 (Graph.m h)

let test_gen_random_regular () =
  let r = rng () in
  let g = Generators.random_regular r ~n:20 ~d:4 in
  for v = 0 to 19 do
    checki (Printf.sprintf "deg %d" v) 4 (Graph.degree g v)
  done

let test_gen_barabasi_albert () =
  let r = rng () in
  let g = Generators.barabasi_albert r ~n:60 ~attach:2 in
  checki "n" 60 (Graph.n g);
  (* clique on 3 + 2 per newcomer *)
  checki "m" (3 + (57 * 2)) (Graph.m g);
  checkb "connected" true (Components.is_connected g)

let test_gen_geometric_weights () =
  let r = rng () in
  let g = Generators.random_geometric r ~n:80 ~radius:0.3 ~euclidean_weights:true in
  Graph.iter_edges g (fun e ->
      checkb "weight is distance <= radius" true (e.Graph.w <= 0.3 +. 1e-9))

let test_gen_planted_partition () =
  let r = rng () in
  let g = Generators.planted_partition r ~blocks:3 ~block_size:20 ~p_in:0.5 ~p_out:0.02 in
  checki "n" 60 (Graph.n g);
  (* count intra vs inter *)
  let intra = ref 0 and inter = ref 0 in
  Graph.iter_edges g (fun e ->
      if e.Graph.u / 20 = e.Graph.v / 20 then incr intra else incr inter);
  checkb "intra dominates" true (!intra > !inter)

let test_gen_cycle_with_chords () =
  let r = rng () in
  let g = Generators.cycle_with_chords r ~n:30 ~chords:10 in
  checki "m" 40 (Graph.m g);
  checkb "connected" true (Components.is_connected g)

let test_gen_ensure_connected () =
  let r = rng () in
  let g = Generators.gnp r ~n:60 ~p:0.02 in
  let h = Generators.ensure_connected r g in
  checkb "connected" true (Components.is_connected h);
  checkb "supergraph" true (Graph.m h >= Graph.m g)

let test_gen_with_uniform_weights () =
  let r = rng () in
  let g = Generators.cycle 10 in
  let h = Generators.with_uniform_weights r g ~lo:2. ~hi:5. in
  checki "same m" 10 (Graph.m h);
  Graph.iter_edges h (fun e ->
      checkb "weight in range" true (e.Graph.w >= 2. && e.Graph.w <= 5.))

let test_gen_determinism () =
  let g1 = Generators.gnp (Rng.create ~seed:7) ~n:40 ~p:0.2 in
  let g2 = Generators.gnp (Rng.create ~seed:7) ~n:40 ~p:0.2 in
  checki "same m" (Graph.m g1) (Graph.m g2);
  Graph.iter_edges g1 (fun e ->
      checkb "same edges" true (Graph.mem_edge g2 e.Graph.u e.Graph.v))

(* -------------------------------------------------------------------- *)
(* Graph_io                                                             *)

let test_io_round_trip () =
  let r = rng () in
  let g =
    Generators.with_uniform_weights r (Generators.connected_gnp r ~n:25 ~p:0.2)
      ~lo:0.5 ~hi:3.
  in
  let h = Graph_io.of_string (Graph_io.to_string g) in
  checki "n" (Graph.n g) (Graph.n h);
  checki "m" (Graph.m g) (Graph.m h);
  Graph.iter_edges g (fun e ->
      match Graph.find_edge h e.Graph.u e.Graph.v with
      | Some id -> checkf "weight" e.Graph.w (Graph.weight h id)
      | None -> Alcotest.fail "edge lost in round trip")

let test_io_comments_and_defaults () =
  let g = Graph_io.of_string "# header\np 3 2\ne 0 1\ne 1 2 2.5\n" in
  checki "m" 2 (Graph.m g);
  checkf "default weight" 1.0 (Graph.weight g 0);
  checkf "explicit weight" 2.5 (Graph.weight g 1)

let test_io_rejects_garbage () =
  (try
     ignore (Graph_io.of_string "e 0 1\n");
     Alcotest.fail "edge before p should fail"
   with Failure _ -> ());
  try
    ignore (Graph_io.of_string "p 2 1\ne 0 5\n");
    Alcotest.fail "out-of-range vertex should fail"
  with Failure _ -> ()

let test_io_file_round_trip () =
  let g = Generators.cycle 8 in
  let file = Filename.temp_file "ftspan" ".graph" in
  Graph_io.save g file;
  let h = Graph_io.load file in
  Sys.remove file;
  checki "m" 8 (Graph.m h)

let test_io_to_dot () =
  let g = Graph.of_weighted_edges 3 [ (0, 1, 2.5); (1, 2, 1.0) ] in
  let dot = Graph_io.to_dot ~highlight:[| true; false |] g in
  checkb "graph block" true
    (String.length dot > 0 && String.sub dot 0 5 = "graph");
  checkb "edge present" true
    (let re = "0 -- 1" in
     let rec find i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || find (i + 1))
     in
     find 0);
  checkb "highlight color used" true
    (let re = "penwidth" in
     let rec find i =
       i + String.length re <= String.length dot
       && (String.sub dot i (String.length re) = re || find (i + 1))
     in
     find 0)

(* -------------------------------------------------------------------- *)
(* Graph_binio + storage backends                                       *)

let with_temp_file suffix fn =
  let file = Filename.temp_file "ftspan_test" suffix in
  Fun.protect ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () -> fn file)

let sample_weighted () =
  let r = rng () in
  Generators.with_uniform_weights r
    (Generators.connected_gnp r ~n:40 ~p:0.15)
    ~lo:0.5 ~hi:3.

let test_binio_round_trip () =
  let check_graph g =
    with_temp_file ".ftsb" @@ fun file ->
    Graph_io.save g file;
    let h = Graph_io.load file in
    check Alcotest.string "canonical text identical" (Graph_io.to_string g)
      (Graph_io.to_string h);
    checkb "binary load lands on int32" true
      (Graph.backend h = Csr.Int32_bigarray)
  in
  check_graph (sample_weighted ());
  check_graph (Generators.grid ~rows:6 ~cols:7);
  check_graph (Graph.create 3)

let test_binio_text_binary_text () =
  let g = sample_weighted () in
  with_temp_file ".graph" @@ fun text_file ->
  with_temp_file ".ftsb" @@ fun bin_file ->
  Graph_io.save g text_file;
  let gt = Graph_io.load text_file in
  Graph_io.save gt bin_file;
  let gb = Graph_io.load bin_file in
  check Alcotest.string "text -> binary -> text bit-identical"
    (Graph_io.to_string gt) (Graph_io.to_string gb)

let test_binio_backend_choice () =
  let g = Generators.cycle 9 in
  with_temp_file ".ftsb" @@ fun file ->
  Graph_io.save g file;
  let gi = Graph_io.load ~backend:Csr.Int_array file in
  checkb "requested int backend" true (Graph.backend gi = Csr.Int_array);
  check Alcotest.string "same graph either way" (Graph_io.to_string g)
    (Graph_io.to_string gi)

let test_binio_not_a_graph () =
  let expect_not_a_graph label file =
    try
      ignore (Graph_binio.load file);
      Alcotest.fail (label ^ " should raise Not_a_graph")
    with Graph_binio.Not_a_graph _ -> ()
  in
  with_temp_file ".ftsb" @@ fun file ->
  let put s = Out_channel.with_open_bin file (fun oc -> output_string oc s) in
  put "not a graph at all, just prose long enough to pass the size check";
  expect_not_a_graph "garbage" file;
  put "xy";
  expect_not_a_graph "too short for the magic" file

let test_binio_corrupt () =
  let g = Generators.cycle 9 in
  let bytes_of file = In_channel.with_open_bin file In_channel.input_all in
  let expect_corrupt label s =
    with_temp_file ".ftsb" @@ fun file ->
    Out_channel.with_open_bin file (fun oc -> output_string oc s);
    try
      ignore (Graph_binio.load file);
      Alcotest.fail (label ^ " should raise Corrupt")
    with Graph_binio.Corrupt _ -> ()
  in
  with_temp_file ".ftsb" @@ fun file ->
  Graph_binio.save g file;
  let good = bytes_of file in
  (* truncated header: magic intact, header cut short *)
  expect_corrupt "truncated header" (String.sub good 0 20);
  (* truncated body: full header, adjacency regions cut *)
  expect_corrupt "truncated body" (String.sub good 0 (String.length good - 8));
  expect_corrupt "trailing bytes" (good ^ "\000\000\000\000");
  let patch pos value =
    let b = Bytes.of_string good in
    Bytes.set b pos value;
    Bytes.to_string b
  in
  (* wrong version: u32 at offset 8 *)
  expect_corrupt "wrong version" (patch 8 '\009');
  (* oversize m: u64 at offset 24; 0xff in the high byte overflows int32 *)
  expect_corrupt "oversize edge count" (patch 31 '\xff');
  (* bad magic is the not-a-graph class, not corruption *)
  with_temp_file ".ftsb" @@ fun bad ->
  Out_channel.with_open_bin bad (fun oc -> output_string oc (patch 0 'X'));
  (try
     ignore (Graph_binio.load bad);
     Alcotest.fail "bad magic should raise Not_a_graph"
   with Graph_binio.Not_a_graph _ -> ())

let test_binio_corrupt_adjacency () =
  (* A structurally valid file whose adjacency does not pair up: patch
     one neighbor entry of a valid dump.  The loader must reject it
     through the Graph.of_adjacency validation, as Corrupt. *)
  let g = Generators.cycle 9 in
  with_temp_file ".ftsb" @@ fun file ->
  Graph_binio.save g file;
  let good = In_channel.with_open_bin file In_channel.input_all in
  let b = Bytes.of_string good in
  (* first nbr entry lives at offset 40 + 4*(n+1); cycle 9 -> n = 9 *)
  Bytes.set_int32_le b (40 + (4 * 10)) 7l;
  Out_channel.with_open_bin file (fun oc -> output_bytes oc b);
  try
    ignore (Graph_binio.load file);
    Alcotest.fail "mismatched adjacency should raise Corrupt"
  with Graph_binio.Corrupt _ -> ()

let test_backend_convert_round_trip () =
  let g = sample_weighted () in
  let g32 = Graph.with_backend Csr.Int32_bigarray g in
  let g_back = Graph.with_backend Csr.Int_array g32 in
  checkb "backends as requested" true
    (Graph.backend g = Csr.Int_array
    && Graph.backend g32 = Csr.Int32_bigarray
    && Graph.backend g_back = Csr.Int_array);
  check Alcotest.string "convert round trip text-identical"
    (Graph_io.to_string g) (Graph_io.to_string g_back);
  check (Alcotest.array Alcotest.int) "bfs parents identical"
    (Bfs.distances g 0) (Bfs.distances g32 0);
  checkb "int32 adjacency is smaller" true
    (Graph.resident_bytes g32 < Graph.resident_bytes g)

let test_backend_mutation_after_load () =
  (* The mmap is private (copy-on-write): growing a binary-loaded graph
     must not disturb the loaded adjacency or the on-disk file. *)
  let g = Generators.cycle 6 in
  with_temp_file ".ftsb" @@ fun file ->
  Graph_io.save g file;
  let h = Graph_io.load file in
  ignore (Graph.add_edge h 0 3 ~w:2.0);
  checki "edge added" 7 (Graph.m h);
  checkb "new edge visible" true (Graph.mem_edge h 0 3);
  let again = Graph_io.load file in
  checki "file unchanged" 6 (Graph.m again)

let test_csr_limits () =
  checkb "int32 half-edge limit" true
    (Csr.max_half Csr.Int32_bigarray = Int32.to_int Int32.max_int);
  checkb "int limit covers arrays" true
    (Csr.max_half Csr.Int_array = Sys.max_array_length);
  Alcotest.check_raises "int32 backend rejects oversize n"
    (Invalid_argument
       "Csr.create: vertex count exceeds the int32 backend's index range")
    (fun () ->
      ignore (Csr.create ~backend:Csr.Int32_bigarray (Int32.to_int Int32.max_int)))

(* -------------------------------------------------------------------- *)
(* Rng                                                                  *)

let test_rng_determinism () =
  let a = Rng.create ~seed:9 and b = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bernoulli_extremes () =
  let r = rng () in
  checkb "p=0" false (Rng.bernoulli r ~p:0.);
  checkb "p=1" true (Rng.bernoulli r ~p:1.)

let test_rng_sample_without_replacement () =
  let r = rng () in
  for _ = 1 to 20 do
    let s = Rng.sample_without_replacement r ~k:5 ~n:10 in
    checki "size" 5 (List.length s);
    checki "distinct" 5 (List.length (List.sort_uniq compare s));
    List.iter (fun x -> checkb "in range" true (x >= 0 && x < 10)) s
  done;
  check (Alcotest.list Alcotest.int) "k=n is everything" [ 0; 1; 2 ]
    (Rng.sample_without_replacement r ~k:3 ~n:3)

let test_rng_permutation () =
  let r = rng () in
  let p = Rng.permutation r 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "is permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_exponential_positive () =
  let r = rng () in
  for _ = 1 to 100 do
    checkb "positive" true (Rng.exponential r ~rate:0.5 >= 0.)
  done

let test_rng_exponential_mean () =
  let r = rng () in
  let total = ref 0. in
  let trials = 20_000 in
  for _ = 1 to trials do
    total := !total +. Rng.exponential r ~rate:2.0
  done;
  let mean = !total /. float_of_int trials in
  checkb "mean near 1/rate" true (abs_float (mean -. 0.5) < 0.03)

let test_rng_split_independent () =
  let r = Rng.create ~seed:3 in
  let a = Rng.split r in
  let x = Rng.int a 1_000_000 in
  (* consuming from r must not change a's past draw; recreate to compare *)
  let r2 = Rng.create ~seed:3 in
  let a2 = Rng.split r2 in
  checki "split deterministic" x (Rng.int a2 1_000_000)

let () =
  Alcotest.run "graph substrate"
    [
      ( "graph",
        [
          Alcotest.test_case "empty" `Quick test_graph_empty;
          Alcotest.test_case "add edge" `Quick test_graph_add_edge;
          Alcotest.test_case "rejects self-loop" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "rejects duplicate" `Quick test_graph_rejects_duplicate;
          Alcotest.test_case "rejects bad weight" `Quick test_graph_rejects_bad_weight;
          Alcotest.test_case "rejects out of range" `Quick test_graph_rejects_out_of_range;
          Alcotest.test_case "grows storage" `Quick test_graph_grows_storage;
          Alcotest.test_case "iterators" `Quick test_graph_iterators;
          Alcotest.test_case "copy independent" `Quick test_graph_copy_independent;
          Alcotest.test_case "unit weighted" `Quick test_graph_unit_weighted;
          Alcotest.test_case "find edge" `Quick test_graph_find_edge;
        ] );
      ( "csr",
        [
          Alcotest.test_case "growth invariants" `Quick
            test_csr_invariants_under_growth;
          Alcotest.test_case "compact preserves order" `Quick
            test_csr_compact_preserves_iteration;
          Alcotest.test_case "views equivalent" `Quick test_csr_views_equivalent;
          Alcotest.test_case "matches list model" `Quick
            test_csr_matches_list_model;
        ] );
      ( "path",
        [
          Alcotest.test_case "basic" `Quick test_path_basic;
          Alcotest.test_case "single vertex" `Quick test_path_single_vertex;
          Alcotest.test_case "invalid detected" `Quick test_path_invalid_detected;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "ordering" `Quick test_pqueue_ordering;
          Alcotest.test_case "duplicates and clear" `Quick test_pqueue_duplicates_and_clear;
          Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
        ] );
      ( "bfs",
        [
          Alcotest.test_case "distances" `Quick test_bfs_distances_path_graph;
          Alcotest.test_case "unreachable" `Quick test_bfs_unreachable;
          Alcotest.test_case "hop bound respected" `Quick test_bfs_hop_bounded_respects_limit;
          Alcotest.test_case "min hop" `Quick test_bfs_finds_min_hop;
          Alcotest.test_case "blocked vertex" `Quick test_bfs_blocked_vertex;
          Alcotest.test_case "blocked edge" `Quick test_bfs_blocked_edge;
          Alcotest.test_case "blocked terminal" `Quick test_bfs_blocked_terminal;
          Alcotest.test_case "src=dst" `Quick test_bfs_src_eq_dst;
          Alcotest.test_case "workspace reuse" `Quick test_bfs_workspace_reuse;
          Alcotest.test_case "workspace grows" `Quick test_bfs_workspace_grows;
          Alcotest.test_case "eccentricity" `Quick test_bfs_eccentricity;
          Alcotest.test_case "hop distance" `Quick test_bfs_hop_distance;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "weighted shortcut" `Quick test_dijkstra_weighted_shortcut;
          Alcotest.test_case "unreachable" `Quick test_dijkstra_unreachable_infinity;
          Alcotest.test_case "cutoff" `Quick test_dijkstra_distance_upto_cutoff;
          Alcotest.test_case "shortest path" `Quick test_dijkstra_shortest_path_valid;
          Alcotest.test_case "matches bfs on unit" `Quick test_dijkstra_blocked_matches_bfs_on_unit;
        ] );
      ( "hop_dp",
        [
          Alcotest.test_case "budget filters" `Quick test_hop_dp_budget_filters;
          Alcotest.test_case "no path within budget" `Quick test_hop_dp_no_path_within_budget;
          Alcotest.test_case "max hops binds" `Quick test_hop_dp_max_hops_binds;
          Alcotest.test_case "respects blocks" `Quick test_hop_dp_respects_blocks;
          Alcotest.test_case "agrees with bfs" `Quick test_hop_dp_agrees_with_bfs_on_unit;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basics" `Quick test_union_find_basics;
          Alcotest.test_case "transitivity" `Quick test_union_find_transitivity;
        ] );
      ( "components",
        [
          Alcotest.test_case "two islands" `Quick test_components_two_islands;
          Alcotest.test_case "vertex faults" `Quick test_components_under_faults;
          Alcotest.test_case "edge faults" `Quick test_components_edge_faults;
        ] );
      ( "girth",
        [
          Alcotest.test_case "forest" `Quick test_girth_tree_none;
          Alcotest.test_case "cycles" `Quick test_girth_cycle;
          Alcotest.test_case "complete" `Quick test_girth_complete;
          Alcotest.test_case "hypercube" `Quick test_girth_hypercube;
          Alcotest.test_case "exceeds" `Quick test_girth_exceeds;
          Alcotest.test_case "petersen" `Quick test_girth_petersen;
        ] );
      ( "subgraph",
        [
          Alcotest.test_case "induced" `Quick test_subgraph_induced;
          Alcotest.test_case "vertex map inverse" `Quick test_subgraph_of_parent_inverse;
          Alcotest.test_case "edge subset" `Quick test_subgraph_edge_subset;
          Alcotest.test_case "weights preserved" `Quick test_subgraph_induced_weights_preserved;
        ] );
      ( "stats",
        [
          Alcotest.test_case "cycle" `Quick test_stats_cycle;
          Alcotest.test_case "diameter" `Quick test_stats_diameter;
          Alcotest.test_case "histogram" `Quick test_degree_histogram;
        ] );
      ( "generators",
        [
          Alcotest.test_case "complete" `Quick test_gen_complete;
          Alcotest.test_case "grid" `Quick test_gen_grid;
          Alcotest.test_case "torus" `Quick test_gen_torus;
          Alcotest.test_case "hypercube" `Quick test_gen_hypercube;
          Alcotest.test_case "gnp bounds" `Quick test_gen_gnp_bounds;
          Alcotest.test_case "gnp density" `Quick test_gen_gnp_density;
          Alcotest.test_case "gnm exact" `Quick test_gen_gnm_exact;
          Alcotest.test_case "random regular" `Quick test_gen_random_regular;
          Alcotest.test_case "barabasi-albert" `Quick test_gen_barabasi_albert;
          Alcotest.test_case "geometric weights" `Quick test_gen_geometric_weights;
          Alcotest.test_case "planted partition" `Quick test_gen_planted_partition;
          Alcotest.test_case "cycle with chords" `Quick test_gen_cycle_with_chords;
          Alcotest.test_case "ensure connected" `Quick test_gen_ensure_connected;
          Alcotest.test_case "uniform weights" `Quick test_gen_with_uniform_weights;
          Alcotest.test_case "determinism" `Quick test_gen_determinism;
        ] );
      ( "graph_io",
        [
          Alcotest.test_case "round trip" `Quick test_io_round_trip;
          Alcotest.test_case "comments and defaults" `Quick test_io_comments_and_defaults;
          Alcotest.test_case "rejects garbage" `Quick test_io_rejects_garbage;
          Alcotest.test_case "file round trip" `Quick test_io_file_round_trip;
          Alcotest.test_case "to_dot" `Quick test_io_to_dot;
        ] );
      ( "graph_binio",
        [
          Alcotest.test_case "binary round trip" `Quick test_binio_round_trip;
          Alcotest.test_case "text->binary->text" `Quick test_binio_text_binary_text;
          Alcotest.test_case "backend choice" `Quick test_binio_backend_choice;
          Alcotest.test_case "not a graph" `Quick test_binio_not_a_graph;
          Alcotest.test_case "corrupt files" `Quick test_binio_corrupt;
          Alcotest.test_case "corrupt adjacency" `Quick test_binio_corrupt_adjacency;
        ] );
      ( "backend",
        [
          Alcotest.test_case "convert round trip" `Quick test_backend_convert_round_trip;
          Alcotest.test_case "mutate after load" `Quick test_backend_mutation_after_load;
          Alcotest.test_case "index limits" `Quick test_csr_limits;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "sampling" `Quick test_rng_sample_without_replacement;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
        ] );
    ]
