(* Tests for the telemetry layer (lib/obs): metric semantics, the master
   switch, span nesting, snapshot/reset scoping, the JSON sink round-trip
   through Obs_json.of_string, and agreement between the obs registry and
   the counters Poly_greedy.build_traced derives from it. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)
let checks = check Alcotest.string

(* Every test starts from a clean registry state (registrations persist,
   values do not) with collection on. *)
let fresh () =
  Obs.set_enabled true;
  Obs.reset ()

(* ------------------------- counters ---------------------------------- *)

let test_counter_basics () =
  fresh ();
  let c = Obs.counter "test.counter" in
  checks "name" "test.counter" (Obs.Counter.name c);
  checki "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  checki "incr + add" 42 (Obs.Counter.value c);
  (* same name returns the same series *)
  let c' = Obs.counter "test.counter" in
  Obs.Counter.incr c';
  checki "shared by name" 43 (Obs.Counter.value c)

let test_counter_kind_mismatch () =
  fresh ();
  let _ = Obs.counter "test.kind" in
  checkb "timer under a counter name rejected" true
    (try
       ignore (Obs.timer "test.kind");
       false
     with Invalid_argument _ -> true)

let test_disabled_is_noop () =
  fresh ();
  let c = Obs.counter "test.disabled" in
  let h = Obs.histogram "test.disabled_h" in
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Histogram.observe h 5.0;
  let ran = ref false in
  Obs.with_span "test.disabled_span" (fun () -> ran := true);
  Obs.set_enabled true;
  checkb "body still runs" true !ran;
  checki "counter untouched" 0 (Obs.Counter.value c);
  checki "histogram untouched" 0 (Obs.Histogram.count h);
  let snap = Obs.snapshot () in
  checkb "no span recorded" true
    (List.for_all (fun s -> s.Obs.s_name <> "test.disabled_span") snap.Obs.spans)

(* -------------------------- timers ----------------------------------- *)

let test_timer () =
  fresh ();
  let t = Obs.timer "test.timer" in
  let v = Obs.Timer.time t (fun () -> 7) in
  checki "returns body value" 7 v;
  Obs.Timer.record t 0.25;
  checki "two samples" 2 (Obs.Timer.count t);
  checkb "total includes recorded" true (Obs.Timer.total_s t >= 0.25);
  (* exceptions propagate and the sample is still taken *)
  (try Obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  checki "sample on raise" 3 (Obs.Timer.count t)

(* ------------------------ histograms --------------------------------- *)

let test_histogram () =
  fresh ();
  let h = Obs.histogram "test.hist" in
  List.iter (Obs.Histogram.observe_int h) [ 1; 3; 3; 100 ];
  checki "count" 4 (Obs.Histogram.count h);
  checkf "sum" 107.0 (Obs.Histogram.sum h);
  let snap = Obs.snapshot () in
  let view = List.assoc "test.hist" snap.Obs.histograms in
  checkf "min" 1.0 view.Obs.h_min;
  checkf "max" 100.0 view.Obs.h_max;
  (* power-of-two buckets: 1 -> le 1, 3;3 -> le 4, 100 -> le 128 *)
  let bucket le =
    try List.assoc le view.Obs.h_buckets with Not_found -> 0
  in
  checki "bucket le=1" 1 (bucket (Some 1.0));
  checki "bucket le=4" 2 (bucket (Some 4.0));
  checki "bucket le=128" 1 (bucket (Some 128.0));
  checki "bucket counts total" 4
    (List.fold_left (fun acc (_, c) -> acc + c) 0 view.Obs.h_buckets)

let test_histogram_overflow () =
  fresh ();
  let h = Obs.histogram "test.hist_over" in
  Obs.Histogram.observe h 1e12;
  let snap = Obs.snapshot () in
  let view = List.assoc "test.hist_over" snap.Obs.histograms in
  checki "overflow bucket" 1 (List.assoc None view.Obs.h_buckets)

(* --------------------------- spans ----------------------------------- *)

let test_span_nesting () =
  fresh ();
  (* two a-spans, each holding one b-span, plus one sibling c -> the
     merged tree is a(2){ b(2) } c(1) *)
  for _ = 1 to 2 do
    Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ()))
  done;
  Obs.with_span "c" (fun () -> ());
  let snap = Obs.snapshot () in
  let find name l =
    match List.find_opt (fun s -> s.Obs.s_name = name) l with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" name
  in
  let a = find "a" snap.Obs.spans in
  checki "a merged" 2 a.Obs.s_count;
  let b = find "b" a.Obs.s_children in
  checki "b nested under a" 2 b.Obs.s_count;
  checki "c at top level" 1 (find "c" snap.Obs.spans).Obs.s_count;
  checkb "a time covers b" true (a.Obs.s_total_s >= b.Obs.s_total_s)

let test_span_exception_closes () =
  fresh ();
  (try Obs.with_span "outer" (fun () -> failwith "boom")
   with Failure _ -> ());
  (* the stack unwound: a fresh span lands at the top level, not under
     the aborted one *)
  Obs.with_span "after" (fun () -> ());
  let snap = Obs.snapshot () in
  checkb "after is a root span" true
    (List.exists (fun s -> s.Obs.s_name = "after") snap.Obs.spans)

let test_reset () =
  fresh ();
  let c = Obs.counter "test.reset" in
  Obs.Counter.add c 5;
  Obs.with_span "test.reset_span" (fun () -> ());
  Obs.reset ();
  checki "counter zeroed" 0 (Obs.Counter.value c);
  let snap = Obs.snapshot () in
  checkb "spans cleared" true (snap.Obs.spans = []);
  Obs.Counter.incr c;
  checki "registration survives" 1 (Obs.Counter.value c)

(* ------------------------- JSON sink --------------------------------- *)

let get_exn msg = function Some x -> x | None -> Alcotest.failf "%s" msg

let member path j =
  List.fold_left
    (fun j key -> get_exn ("missing " ^ key) (Obs_json.member key j))
    j path

let test_json_roundtrip () =
  fresh ();
  Obs.Counter.add (Obs.counter "rt.counter") 17;
  Obs.Timer.record (Obs.timer "rt.timer") 0.5;
  Obs.Histogram.observe_int (Obs.histogram "rt.hist") 6;
  Obs.with_span "rt.outer" (fun () -> Obs.with_span "rt.inner" (fun () -> ()));
  let entry = { Obs_sink.id = "unit"; wall_s = 1.25; snap = Obs.snapshot () } in
  let doc = Obs_sink.json_of_report ~created:1754000000.0 [ entry ] in
  (* serialize (indented, as the CLI does) and parse back *)
  let text = Obs_json.to_string ~indent:true doc in
  let parsed =
    match Obs_json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  checks "schema" "ftspan.metrics.v1"
    (get_exn "schema str" (Obs_json.to_str (member [ "schema" ] parsed)));
  let entries =
    get_exn "entries" (Obs_json.to_list (member [ "entries" ] parsed))
  in
  checki "one entry" 1 (List.length entries);
  let e = List.hd entries in
  checks "id" "unit" (get_exn "id" (Obs_json.to_str (member [ "id" ] e)));
  checkf "wall time" 1.25
    (get_exn "wall" (Obs_json.to_number (member [ "wall_time_s" ] e)));
  checki "counter value" 17
    (get_exn "ctr" (Obs_json.to_int (member [ "counters"; "rt.counter" ] e)));
  checki "timer count" 1
    (get_exn "tc" (Obs_json.to_int (member [ "timers"; "rt.timer"; "count" ] e)));
  checkf "timer total" 0.5
    (get_exn "ts"
       (Obs_json.to_number (member [ "timers"; "rt.timer"; "total_s" ] e)));
  checkf "histogram sum" 6.0
    (get_exn "hs"
       (Obs_json.to_number (member [ "histograms"; "rt.hist"; "sum" ] e)));
  (* bucket for 6 is le=8 *)
  let buckets =
    get_exn "buckets"
      (Obs_json.to_list (member [ "histograms"; "rt.hist"; "buckets" ] e))
  in
  checkb "le=8 bucket present" true
    (List.exists
       (fun b ->
         Obs_json.to_number (member [ "le" ] b) = Some 8.0
         && Obs_json.to_int (member [ "count" ] b) = Some 1)
       buckets);
  (* span tree nests in the JSON too *)
  let spans = get_exn "spans" (Obs_json.to_list (member [ "spans" ] e)) in
  let outer =
    get_exn "rt.outer"
      (List.find_opt
         (fun s -> Obs_json.to_str (member [ "name" ] s) = Some "rt.outer")
         spans)
  in
  let children =
    get_exn "children" (Obs_json.to_list (member [ "children" ] outer))
  in
  checkb "inner nested" true
    (List.exists
       (fun s -> Obs_json.to_str (member [ "name" ] s) = Some "rt.inner")
       children)

let test_json_parser_errors () =
  checkb "trailing garbage rejected" true
    (Result.is_error (Obs_json.of_string "{} x"));
  checkb "bare word rejected" true (Result.is_error (Obs_json.of_string "nope"));
  checkb "unterminated string rejected" true
    (Result.is_error (Obs_json.of_string "\"abc"));
  (match Obs_json.of_string " [1, 2.5, null, \"s\"] " with
  | Ok (Obs_json.List [ Obs_json.Int 1; Obs_json.Float 2.5; Obs_json.Null;
                        Obs_json.String "s" ]) -> ()
  | _ -> Alcotest.fail "mixed list misparsed")

(* ------------------- trace / registry agreement ---------------------- *)

let test_trace_matches_registry () =
  fresh ();
  let r = Rng.create ~seed:2026 in
  let g = Generators.connected_gnp r ~n:40 ~p:0.2 in
  let calls0 = Obs.Counter.value (Obs.counter "lbc.calls") in
  let yes0 = Obs.Counter.value (Obs.counter "lbc.yes") in
  let rounds0 = Obs.Counter.value (Obs.counter "lbc.bfs_rounds") in
  let sel, trace = Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f:1 g in
  checki "lbc_calls = registry delta"
    (Obs.Counter.value (Obs.counter "lbc.calls") - calls0)
    trace.Poly_greedy.lbc_calls;
  checki "yes_answers = registry delta"
    (Obs.Counter.value (Obs.counter "lbc.yes") - yes0)
    trace.Poly_greedy.yes_answers;
  checki "bfs_rounds = registry delta"
    (Obs.Counter.value (Obs.counter "lbc.bfs_rounds") - rounds0)
    trace.Poly_greedy.bfs_rounds;
  (* registry-level invariants mirrored from the trace contract *)
  checki "one LBC call per edge" (Graph.m g) trace.Poly_greedy.lbc_calls;
  checki "yes answers = spanner size" sel.Selection.size
    trace.Poly_greedy.yes_answers;
  let snap = Obs.snapshot () in
  let cut = List.assoc "lbc.cut_size" snap.Obs.histograms in
  checki "one cut observation per Yes" trace.Poly_greedy.yes_answers
    cut.Obs.h_count;
  checkb "build span recorded" true
    (List.exists (fun s -> s.Obs.s_name = "poly_greedy.build") snap.Obs.spans)

let test_trace_zero_when_disabled () =
  fresh ();
  let r = Rng.create ~seed:7 in
  let g = Generators.connected_gnp r ~n:20 ~p:0.3 in
  Obs.set_enabled false;
  let sel, trace = Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f:1 g in
  Obs.set_enabled true;
  checkb "spanner still built" true (sel.Selection.size > 0);
  checki "calls zero when disabled" 0 trace.Poly_greedy.lbc_calls;
  checki "rounds zero when disabled" 0 trace.Poly_greedy.bfs_rounds;
  checki "yes zero when disabled" 0 trace.Poly_greedy.yes_answers

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch" `Quick test_counter_kind_mismatch;
          Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and merge" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "parser errors" `Quick test_json_parser_errors;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace = registry deltas" `Quick
            test_trace_matches_registry;
          Alcotest.test_case "trace zero when disabled" `Quick
            test_trace_zero_when_disabled;
        ] );
    ]
