(* Tests for the telemetry layer (lib/obs): metric semantics, the master
   switch, span nesting, snapshot/reset scoping, the JSON sink round-trip
   through Obs_json.of_string, agreement between the obs registry and the
   counters Poly_greedy.build_traced derives from it, the structured
   event trace (ordering, ring-buffer overflow accounting, Chrome
   export), and the Obs_compare regression verdicts. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)
let checks = check Alcotest.string

(* Every test starts from a clean registry state (registrations persist,
   values do not) with collection on. *)
let fresh () =
  Obs.set_enabled true;
  Obs.reset ()

(* ------------------------- counters ---------------------------------- *)

let test_counter_basics () =
  fresh ();
  let c = Obs.counter "test.counter" in
  checks "name" "test.counter" (Obs.Counter.name c);
  checki "starts at zero" 0 (Obs.Counter.value c);
  Obs.Counter.incr c;
  Obs.Counter.add c 41;
  checki "incr + add" 42 (Obs.Counter.value c);
  (* same name returns the same series *)
  let c' = Obs.counter "test.counter" in
  Obs.Counter.incr c';
  checki "shared by name" 43 (Obs.Counter.value c)

let test_counter_kind_mismatch () =
  fresh ();
  let _ = Obs.counter "test.kind" in
  checkb "timer under a counter name rejected" true
    (try
       ignore (Obs.timer "test.kind");
       false
     with Invalid_argument _ -> true)

let test_disabled_is_noop () =
  fresh ();
  let c = Obs.counter "test.disabled" in
  let h = Obs.histogram "test.disabled_h" in
  Obs.set_enabled false;
  Obs.Counter.incr c;
  Obs.Counter.add c 10;
  Obs.Histogram.observe h 5.0;
  let ran = ref false in
  Obs.with_span "test.disabled_span" (fun () -> ran := true);
  Obs.set_enabled true;
  checkb "body still runs" true !ran;
  checki "counter untouched" 0 (Obs.Counter.value c);
  checki "histogram untouched" 0 (Obs.Histogram.count h);
  let snap = Obs.snapshot () in
  checkb "no span recorded" true
    (List.for_all (fun s -> s.Obs.s_name <> "test.disabled_span") snap.Obs.spans)

(* -------------------------- gauges ----------------------------------- *)

let test_gauge_basics () =
  fresh ();
  let g = Obs.gauge "gauge.test.level" in
  checks "name" "gauge.test.level" (Obs.Gauge.name g);
  checki "starts at zero" 0 (Obs.Gauge.value g);
  Obs.Gauge.set g 5;
  Obs.Gauge.add g 3;
  checki "set + add" 8 (Obs.Gauge.value g);
  Obs.Gauge.add g (-8);
  checki "back to zero" 0 (Obs.Gauge.value g);
  Obs.Gauge.set g 7;
  let snap = Obs.snapshot () in
  checki "snapshot carries gauges" 7
    (List.assoc "gauge.test.level" snap.Obs.gauges);
  Obs.reset ();
  checki "reset clears" 0 (Obs.Gauge.value g);
  Obs.set_enabled false;
  Obs.Gauge.set g 9;
  Obs.Gauge.add g 1;
  Obs.set_enabled true;
  checki "disabled is no-op" 0 (Obs.Gauge.value g)

let test_gauge_sharded () =
  fresh ();
  let g = Obs.gauge "gauge.test.sharded" in
  Obs.Gauge.add g 2;
  (* set/add act on the calling domain's shard; value sums the shards *)
  let d = Domain.spawn (fun () -> Obs.Gauge.add g 9; Obs.Gauge.set g 3) in
  Domain.join d;
  checki "value sums per-domain shards" 5 (Obs.Gauge.value g)

(* -------------------------- timers ----------------------------------- *)

let test_timer () =
  fresh ();
  let t = Obs.timer "test.timer" in
  let v = Obs.Timer.time t (fun () -> 7) in
  checki "returns body value" 7 v;
  Obs.Timer.record t 0.25;
  checki "two samples" 2 (Obs.Timer.count t);
  checkb "total includes recorded" true (Obs.Timer.total_s t >= 0.25);
  (* exceptions propagate and the sample is still taken *)
  (try Obs.Timer.time t (fun () -> failwith "boom") with Failure _ -> ());
  checki "sample on raise" 3 (Obs.Timer.count t)

(* ------------------------ histograms --------------------------------- *)

let test_histogram () =
  fresh ();
  let h = Obs.histogram "test.hist" in
  List.iter (Obs.Histogram.observe_int h) [ 1; 3; 3; 100 ];
  checki "count" 4 (Obs.Histogram.count h);
  checkf "sum" 107.0 (Obs.Histogram.sum h);
  let snap = Obs.snapshot () in
  let view = List.assoc "test.hist" snap.Obs.histograms in
  checkf "min" 1.0 view.Obs.h_min;
  checkf "max" 100.0 view.Obs.h_max;
  (* power-of-two buckets: 1 -> le 1, 3;3 -> le 4, 100 -> le 128 *)
  let bucket le =
    try List.assoc le view.Obs.h_buckets with Not_found -> 0
  in
  checki "bucket le=1" 1 (bucket (Some 1.0));
  checki "bucket le=4" 2 (bucket (Some 4.0));
  checki "bucket le=128" 1 (bucket (Some 128.0));
  checki "bucket counts total" 4
    (List.fold_left (fun acc (_, c) -> acc + c) 0 view.Obs.h_buckets)

let test_histogram_overflow () =
  fresh ();
  let h = Obs.histogram "test.hist_over" in
  Obs.Histogram.observe h 1e12;
  let snap = Obs.snapshot () in
  let view = List.assoc "test.hist_over" snap.Obs.histograms in
  checki "overflow bucket" 1 (List.assoc None view.Obs.h_buckets)

(* ------------------------- quantiles --------------------------------- *)

let test_quantile_edges () =
  fresh ();
  let empty = Obs.histogram_log "test.q_empty" in
  checkf "empty histogram -> 0" 0.0 (Obs.Histogram.quantile empty 0.99);
  let one = Obs.histogram_log "test.q_one" in
  Obs.Histogram.observe one 0.125;
  (* a single sample is every quantile, exactly: the covering bucket's
     upper bound is clamped into [min, max] = [0.125, 0.125] *)
  List.iter
    (fun q -> checkf "one sample" 0.125 (Obs.Histogram.quantile one q))
    [ 0.0; 0.5; 0.99; 1.0 ];
  let over = Obs.histogram_log "test.q_over" in
  Obs.Histogram.observe over 1e12;
  (* the overflow bucket has no upper bound; the max makes it exact *)
  checkf "overflow sample" 1e12 (Obs.Histogram.quantile over 0.5);
  checkb "q outside [0,1] rejected" true
    (try
       ignore (Obs.Histogram.quantile one 1.5);
       false
     with Invalid_argument _ -> true)

let test_quantile_order () =
  fresh ();
  let h = Obs.histogram_log "test.q_order" in
  (* 100 samples spread over three decades: quantiles must be monotone in
     q and bracketed by the extremes *)
  for i = 1 to 100 do
    Obs.Histogram.observe h (0.001 *. float_of_int i)
  done;
  let q50 = Obs.Histogram.quantile h 0.5
  and q90 = Obs.Histogram.quantile h 0.9
  and q99 = Obs.Histogram.quantile h 0.99 in
  checkb "p50 <= p90" true (q50 <= q90);
  checkb "p90 <= p99" true (q90 <= q99);
  checkb "p50 above min" true (q50 >= 0.001);
  checkb "p99 at most max" true (q99 <= 0.1);
  (* log-linear buckets are decade-relative: the p50 estimate must land
     within one sub-bucket (~11%) of the true median 0.050 *)
  checkb "p50 near true median" true (q50 >= 0.045 && q50 <= 0.06);
  (* pow2 histograms answer quantiles too *)
  let p = Obs.histogram "test.q_pow2" in
  List.iter (Obs.Histogram.observe_int p) [ 1; 2; 3; 4; 100 ];
  checkb "pow2 p50 in [2,4]" true
    (let v = Obs.Histogram.quantile p 0.5 in
     v >= 2.0 && v <= 4.0)

let test_quantiles_in_snapshot () =
  fresh ();
  let h = Obs.histogram_log "test.q_snap" in
  Obs.Histogram.observe h 0.25;
  let snap = Obs.snapshot () in
  let view = List.assoc "test.q_snap" snap.Obs.histograms in
  List.iter
    (fun label ->
      checkf ("snapshot " ^ label) 0.25
        (List.assoc label view.Obs.h_quantiles))
    [ "p50"; "p90"; "p99"; "p999" ]

(* --------------------------- shards ----------------------------------- *)

let test_shard_merge_equals_single () =
  fresh ();
  let t = Obs.timer "test.shard_timer" in
  let h = Obs.histogram "test.shard_hist" in
  (* three spawned domains plus the main one record concurrently; totals
     must equal the single-domain sum exactly once every domain joined *)
  let work_timer () =
    for _ = 1 to 100 do
      Obs.Timer.record t 0.001
    done
  in
  let work_hist seed =
    for i = 1 to 100 do
      Obs.Histogram.observe_int h ((seed * i) mod 64)
    done
  in
  let domains =
    List.init 3 (fun d ->
        Domain.spawn (fun () ->
            work_timer ();
            work_hist (d + 2)))
  in
  work_timer ();
  work_hist 1;
  List.iter Domain.join domains;
  checki "timer count merges" 400 (Obs.Timer.count t);
  checkb "timer total merges" true
    (abs_float (Obs.Timer.total_s t -. 0.4) < 1e-9);
  checki "histogram count merges" 400 (Obs.Histogram.count h);
  let expected_sum =
    let s = ref 0 in
    List.iter
      (fun seed ->
        for i = 1 to 100 do
          s := !s + ((seed * i) mod 64)
        done)
      [ 1; 2; 3; 4 ];
    float_of_int !s
  in
  checkf "histogram sum merges" expected_sum (Obs.Histogram.sum h);
  (* reset clears every shard, not just the calling domain's *)
  Obs.reset ();
  checki "reset clears shards" 0 (Obs.Timer.count t)

(* --------------------------- spans ----------------------------------- *)

let test_span_nesting () =
  fresh ();
  (* two a-spans, each holding one b-span, plus one sibling c -> the
     merged tree is a(2){ b(2) } c(1) *)
  for _ = 1 to 2 do
    Obs.with_span "a" (fun () -> Obs.with_span "b" (fun () -> ()))
  done;
  Obs.with_span "c" (fun () -> ());
  let snap = Obs.snapshot () in
  let find name l =
    match List.find_opt (fun s -> s.Obs.s_name = name) l with
    | Some s -> s
    | None -> Alcotest.failf "span %s missing" name
  in
  let a = find "a" snap.Obs.spans in
  checki "a merged" 2 a.Obs.s_count;
  let b = find "b" a.Obs.s_children in
  checki "b nested under a" 2 b.Obs.s_count;
  checki "c at top level" 1 (find "c" snap.Obs.spans).Obs.s_count;
  checkb "a time covers b" true (a.Obs.s_total_s >= b.Obs.s_total_s)

let test_span_exception_closes () =
  fresh ();
  (try Obs.with_span "outer" (fun () -> failwith "boom")
   with Failure _ -> ());
  (* the stack unwound: a fresh span lands at the top level, not under
     the aborted one *)
  Obs.with_span "after" (fun () -> ());
  let snap = Obs.snapshot () in
  checkb "after is a root span" true
    (List.exists (fun s -> s.Obs.s_name = "after") snap.Obs.spans)

let test_reset () =
  fresh ();
  let c = Obs.counter "test.reset" in
  Obs.Counter.add c 5;
  Obs.with_span "test.reset_span" (fun () -> ());
  Obs.reset ();
  checki "counter zeroed" 0 (Obs.Counter.value c);
  let snap = Obs.snapshot () in
  checkb "spans cleared" true (snap.Obs.spans = []);
  Obs.Counter.incr c;
  checki "registration survives" 1 (Obs.Counter.value c)

(* ------------------------- JSON sink --------------------------------- *)

let get_exn msg = function Some x -> x | None -> Alcotest.failf "%s" msg

let member path j =
  List.fold_left
    (fun j key -> get_exn ("missing " ^ key) (Obs_json.member key j))
    j path

let test_json_roundtrip () =
  fresh ();
  Obs.Counter.add (Obs.counter "rt.counter") 17;
  Obs.Timer.record (Obs.timer "rt.timer") 0.5;
  Obs.Histogram.observe_int (Obs.histogram "rt.hist") 6;
  Obs.with_span "rt.outer" (fun () -> Obs.with_span "rt.inner" (fun () -> ()));
  let entry = { Obs_sink.id = "unit"; wall_s = 1.25; snap = Obs.snapshot () } in
  let doc = Obs_sink.json_of_report ~created:1754000000.0 [ entry ] in
  (* serialize (indented, as the CLI does) and parse back *)
  let text = Obs_json.to_string ~indent:true doc in
  let parsed =
    match Obs_json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  checks "schema" "ftspan.metrics.v1"
    (get_exn "schema str" (Obs_json.to_str (member [ "schema" ] parsed)));
  let entries =
    get_exn "entries" (Obs_json.to_list (member [ "entries" ] parsed))
  in
  checki "one entry" 1 (List.length entries);
  let e = List.hd entries in
  checks "id" "unit" (get_exn "id" (Obs_json.to_str (member [ "id" ] e)));
  checkf "wall time" 1.25
    (get_exn "wall" (Obs_json.to_number (member [ "wall_time_s" ] e)));
  checki "counter value" 17
    (get_exn "ctr" (Obs_json.to_int (member [ "counters"; "rt.counter" ] e)));
  checki "timer count" 1
    (get_exn "tc" (Obs_json.to_int (member [ "timers"; "rt.timer"; "count" ] e)));
  checkf "timer total" 0.5
    (get_exn "ts"
       (Obs_json.to_number (member [ "timers"; "rt.timer"; "total_s" ] e)));
  checkf "histogram sum" 6.0
    (get_exn "hs"
       (Obs_json.to_number (member [ "histograms"; "rt.hist"; "sum" ] e)));
  (* bucket for 6 is le=8 *)
  let buckets =
    get_exn "buckets"
      (Obs_json.to_list (member [ "histograms"; "rt.hist"; "buckets" ] e))
  in
  checkb "le=8 bucket present" true
    (List.exists
       (fun b ->
         Obs_json.to_number (member [ "le" ] b) = Some 8.0
         && Obs_json.to_int (member [ "count" ] b) = Some 1)
       buckets);
  (* span tree nests in the JSON too *)
  let spans = get_exn "spans" (Obs_json.to_list (member [ "spans" ] e)) in
  let outer =
    get_exn "rt.outer"
      (List.find_opt
         (fun s -> Obs_json.to_str (member [ "name" ] s) = Some "rt.outer")
         spans)
  in
  let children =
    get_exn "children" (Obs_json.to_list (member [ "children" ] outer))
  in
  checkb "inner nested" true
    (List.exists
       (fun s -> Obs_json.to_str (member [ "name" ] s) = Some "rt.inner")
       children)

let test_gauge_in_sink () =
  fresh ();
  Obs.Gauge.set (Obs.gauge "gauge.test.sink") 4;
  Obs.Counter.add (Obs.counter "sink.test.counter") 1;
  let entry = { Obs_sink.id = "unit"; wall_s = 0.; snap = Obs.snapshot () } in
  let doc = Obs_sink.json_of_report ~created:0. [ entry ] in
  let parsed =
    match Obs_json.of_string (Obs_json.to_string doc) with
    | Ok j -> j
    | Error e -> Alcotest.failf "parse error: %s" e
  in
  let e =
    List.hd (get_exn "entries" (Obs_json.to_list (member [ "entries" ] parsed)))
  in
  (* gauges merge into the counters object — that is what makes the
     "gauge." prefix exclusion in Obs_compare meaningful *)
  checki "gauge merged into counters" 4
    (get_exn "gauge"
       (Obs_json.to_int (member [ "counters"; "gauge.test.sink" ] e)));
  checki "counters still there" 1
    (get_exn "ctr"
       (Obs_json.to_int (member [ "counters"; "sink.test.counter" ] e)))

let test_json_parser_errors () =
  checkb "trailing garbage rejected" true
    (Result.is_error (Obs_json.of_string "{} x"));
  checkb "bare word rejected" true (Result.is_error (Obs_json.of_string "nope"));
  checkb "unterminated string rejected" true
    (Result.is_error (Obs_json.of_string "\"abc"));
  (match Obs_json.of_string " [1, 2.5, null, \"s\"] " with
  | Ok (Obs_json.List [ Obs_json.Int 1; Obs_json.Float 2.5; Obs_json.Null;
                        Obs_json.String "s" ]) -> ()
  | _ -> Alcotest.fail "mixed list misparsed")

(* ------------------- trace / registry agreement ---------------------- *)

let test_trace_matches_registry () =
  fresh ();
  let r = Rng.create ~seed:2026 in
  let g = Generators.connected_gnp r ~n:40 ~p:0.2 in
  let calls0 = Obs.Counter.value (Obs.counter "lbc.calls") in
  let yes0 = Obs.Counter.value (Obs.counter "lbc.yes") in
  let rounds0 = Obs.Counter.value (Obs.counter "lbc.bfs_rounds") in
  let sel, trace = Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f:1 g in
  checki "lbc_calls = registry delta"
    (Obs.Counter.value (Obs.counter "lbc.calls") - calls0)
    trace.Poly_greedy.lbc_calls;
  checki "yes_answers = registry delta"
    (Obs.Counter.value (Obs.counter "lbc.yes") - yes0)
    trace.Poly_greedy.yes_answers;
  checki "bfs_rounds = registry delta"
    (Obs.Counter.value (Obs.counter "lbc.bfs_rounds") - rounds0)
    trace.Poly_greedy.bfs_rounds;
  (* registry-level invariants mirrored from the trace contract *)
  checki "one LBC call per edge" (Graph.m g) trace.Poly_greedy.lbc_calls;
  checki "yes answers = spanner size" sel.Selection.size
    trace.Poly_greedy.yes_answers;
  let snap = Obs.snapshot () in
  let cut = List.assoc "lbc.cut_size" snap.Obs.histograms in
  checki "one cut observation per Yes" trace.Poly_greedy.yes_answers
    cut.Obs.h_count;
  checkb "build span recorded" true
    (List.exists (fun s -> s.Obs.s_name = "poly_greedy.build") snap.Obs.spans)

let test_trace_zero_when_disabled () =
  fresh ();
  let r = Rng.create ~seed:7 in
  let g = Generators.connected_gnp r ~n:20 ~p:0.3 in
  Obs.set_enabled false;
  let sel, trace = Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f:1 g in
  Obs.set_enabled true;
  checkb "spanner still built" true (sel.Selection.size > 0);
  checki "calls zero when disabled" 0 trace.Poly_greedy.lbc_calls;
  checki "rounds zero when disabled" 0 trace.Poly_greedy.bfs_rounds;
  checki "yes zero when disabled" 0 trace.Poly_greedy.yes_answers

(* ------------------------- event trace -------------------------------- *)

(* Tracing is process-global; every trace test tears it down so later
   tests (and the registry tests above) see it disabled again. *)
let with_tracing ?capacity f =
  Obs_trace.start ?capacity ();
  Fun.protect ~finally:Obs_trace.stop f

let test_trace_ordering () =
  fresh ();
  with_tracing (fun () ->
      Obs_trace.emit (Obs_trace.Mark "first");
      Obs_trace.emit
        (Obs_trace.Lbc_begin { edge = 7; u = 1; v = 2; t = 3; alpha = 2 });
      Obs_trace.emit
        (Obs_trace.Lbc_end { edge = 7; yes = true; bfs_rounds = 3; cut_size = 2 });
      Obs_trace.emit (Obs_trace.Mark "last"));
  let evs = Obs_trace.events () in
  checki "all retained" 4 (List.length evs);
  checki "nothing dropped" 0 (Obs_trace.dropped ());
  List.iteri
    (fun i ev -> checki "seq is the emission index" i ev.Obs_trace.seq)
    evs;
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        a.Obs_trace.ts_s <= b.Obs_trace.ts_s && nondecreasing rest
    | _ -> true
  in
  checkb "timestamps non-decreasing" true (nondecreasing evs);
  (match (List.hd evs).Obs_trace.payload with
  | Obs_trace.Mark "first" -> ()
  | _ -> Alcotest.fail "first event not first");
  match (List.nth evs 2).Obs_trace.payload with
  | Obs_trace.Lbc_end { edge = 7; yes = true; bfs_rounds = 3; cut_size = 2 } -> ()
  | _ -> Alcotest.fail "payload fields lost"

let test_trace_ring_overflow () =
  fresh ();
  with_tracing ~capacity:4 (fun () ->
      for i = 0 to 9 do
        Obs_trace.emit (Obs_trace.Phase { name = "tick"; index = i })
      done);
  checki "all emissions counted" 10 (Obs_trace.seen ());
  checki "overflow accounted" 6 (Obs_trace.dropped ());
  let evs = Obs_trace.events () in
  checki "capacity retained" 4 (List.length evs);
  (* the retained window is the newest suffix, in order *)
  List.iteri
    (fun i ev -> checki "suffix seq" (6 + i) ev.Obs_trace.seq)
    evs

let test_trace_disabled_noop () =
  fresh ();
  with_tracing (fun () -> Obs_trace.emit (Obs_trace.Mark "kept"));
  checkb "disabled after stop" false (Obs_trace.enabled ());
  Obs_trace.emit (Obs_trace.Mark "after stop");
  checki "emit after stop ignored" 1 (Obs_trace.seen ())

let test_trace_span_hook () =
  fresh ();
  with_tracing (fun () -> Obs.with_span "hooked" (fun () -> ()));
  let names =
    List.filter_map
      (fun ev ->
        match ev.Obs_trace.payload with
        | Obs_trace.Span_begin n -> Some (`B, n)
        | Obs_trace.Span_end n -> Some (`E, n)
        | _ -> None)
      (Obs_trace.events ())
  in
  checkb "with_span recorded begin+end" true
    (names = [ (`B, "hooked"); (`E, "hooked") ]);
  (* the hook is gone after stop: spans no longer emit *)
  Obs.with_span "unhooked" (fun () -> ());
  checki "no events after stop" 2 (Obs_trace.seen ())

let test_trace_sink_streams () =
  fresh ();
  let streamed = ref [] in
  with_tracing (fun () ->
      Obs_trace.set_sink (Some (fun ev -> streamed := ev.Obs_trace.seq :: !streamed));
      Obs_trace.emit (Obs_trace.Mark "a");
      Obs_trace.emit (Obs_trace.Mark "b");
      Obs_trace.set_sink None;
      Obs_trace.emit (Obs_trace.Mark "c"));
  checkb "sink saw exactly the events while installed" true
    (List.rev !streamed = [ 0; 1 ])

let test_chrome_wellformed () =
  fresh ();
  with_tracing (fun () ->
      Obs.with_span "outer" (fun () ->
          Obs_trace.emit
            (Obs_trace.Lbc_begin { edge = 3; u = 0; v = 1; t = 3; alpha = 1 });
          Obs_trace.emit
            (Obs_trace.Lbc_end
               { edge = 3; yes = false; bfs_rounds = 2; cut_size = 0 });
          Obs_trace.emit
            (Obs_trace.Greedy_edge { edge = 3; kept = false; weight = 1.0 });
          Obs_trace.emit
            (Obs_trace.Congest_round { round = 1; messages = 8; bits = 512 })));
  let text = Obs_json.to_string ~indent:true (Obs_trace.to_chrome ()) in
  let parsed =
    match Obs_json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "chrome trace unparseable: %s" e
  in
  let evs = get_exn "top-level array" (Obs_json.to_list parsed) in
  checkb "non-empty" true (List.length evs > 0);
  (* the invariant the chrome://tracing importer needs: every element is
     an object carrying name/ph/ts/pid/tid *)
  List.iter
    (fun e ->
      ignore (get_exn "name" (Obs_json.to_str (member [ "name" ] e)));
      ignore (get_exn "ph" (Obs_json.to_str (member [ "ph" ] e)));
      ignore (get_exn "ts" (Obs_json.to_number (member [ "ts" ] e)));
      ignore (get_exn "pid" (Obs_json.to_int (member [ "pid" ] e)));
      ignore (get_exn "tid" (Obs_json.to_int (member [ "tid" ] e))))
    evs;
  let phs =
    List.filter_map (fun e -> Obs_json.to_str (member [ "ph" ] e)) evs
  in
  let count ph = List.length (List.filter (( = ) ph) phs) in
  checki "balanced duration events" (count "B") (count "E");
  checkb "counter track present" true (count "C" > 0);
  checkb "instant event present" true (count "i" > 0)

let test_chrome_unmatched_end_elided () =
  fresh ();
  (* capacity 2: the Begin is overwritten, only Span_end + Mark survive *)
  with_tracing ~capacity:2 (fun () ->
      Obs_trace.emit (Obs_trace.Span_begin "lost");
      Obs_trace.emit (Obs_trace.Span_end "lost");
      Obs_trace.emit (Obs_trace.Mark "tail"));
  let evs =
    get_exn "array" (Obs_json.to_list (Obs_trace.to_chrome ()))
  in
  checkb "orphan E elided" true
    (List.for_all
       (fun e -> Obs_json.to_str (member [ "ph" ] e) <> Some "E")
       evs)

let test_native_trace_roundtrip () =
  fresh ();
  with_tracing (fun () ->
      Obs_trace.emit
        (Obs_trace.Cluster_stats { partition = 0; clusters = 5; max_depth = 2 }));
  let text = Obs_json.to_string ~indent:true (Obs_trace.to_json ()) in
  let parsed =
    match Obs_json.of_string text with
    | Ok j -> j
    | Error e -> Alcotest.failf "native trace unparseable: %s" e
  in
  checks "schema" "ftspan.trace.v1"
    (get_exn "schema" (Obs_json.to_str (member [ "schema" ] parsed)));
  checki "dropped field" 0
    (get_exn "dropped" (Obs_json.to_int (member [ "dropped" ] parsed)));
  let evs = get_exn "events" (Obs_json.to_list (member [ "events" ] parsed)) in
  checki "one event" 1 (List.length evs);
  checks "typed record" "cluster_stats"
    (get_exn "type" (Obs_json.to_str (member [ "type" ] (List.hd evs))))

(* ------------------------- trace sampling ----------------------------- *)

let emit_mixed_workload () =
  for i = 0 to 199 do
    Obs_trace.emit (Obs_trace.Lbc_begin { edge = i; u = 0; v = 1; t = 3; alpha = 1 });
    Obs_trace.emit
      (Obs_trace.Lbc_end
         { edge = i; yes = i mod 3 = 0; bfs_rounds = 2; cut_size = 0 });
    Obs_trace.emit (Obs_trace.Greedy_edge { edge = i; kept = i mod 3 = 0; weight = 1.0 });
    if i mod 50 = 0 then
      Obs_trace.emit (Obs_trace.Phase { name = "block"; index = i / 50 })
  done;
  Obs_trace.emit (Obs_trace.Chaos_event { kind = "crash"; cid = -1; src = 3; dst = -1 })

let sampled_run ?sample ?sample_seed () =
  Obs_trace.start ?sample ?sample_seed ();
  Fun.protect ~finally:Obs_trace.stop (fun () ->
      emit_mixed_workload ();
      let evs =
        List.map
          (fun ev -> (ev.Obs_trace.seq, ev.Obs_trace.payload))
          (Obs_trace.events ())
      in
      (evs, Obs_trace.seen (), Obs_trace.sampled (), Obs_trace.dropped ()))

let test_sampling_accounting () =
  fresh ();
  let evs, seen, sampled, dropped = sampled_run ~sample:(Obs_trace.Rate 0.1) () in
  checki "every emission seen" 605 seen;
  checkb "a strict subset admitted" true (sampled > 0 && sampled < seen);
  checki "retained = admitted (no ring overflow)" sampled (List.length evs);
  checki "seen = retained + dropped" seen (List.length evs + dropped);
  (* phase markers and fault events bypass the sampler *)
  let count p = List.length (List.filter (fun (_, pl) -> p pl) evs) in
  checki "all phases kept" 4
    (count (function Obs_trace.Phase _ -> true | _ -> false));
  checki "crash kept" 1
    (count (function Obs_trace.Chaos_event { kind = "crash"; _ } -> true | _ -> false));
  (* Lbc begin/end are pair-sampled: balanced per edge *)
  let begins =
    List.filter_map
      (fun (_, pl) ->
        match pl with Obs_trace.Lbc_begin { edge; _ } -> Some edge | _ -> None)
      evs
  in
  let ends =
    List.filter_map
      (fun (_, pl) ->
        match pl with Obs_trace.Lbc_end { edge; _ } -> Some edge | _ -> None)
      evs
  in
  checkb "lbc pairs balanced" true (List.sort compare begins = List.sort compare ends)

let test_sampling_deterministic () =
  fresh ();
  let a = sampled_run ~sample:(Obs_trace.Rate 0.25) ~sample_seed:42 () in
  fresh ();
  let b = sampled_run ~sample:(Obs_trace.Rate 0.25) ~sample_seed:42 () in
  let evs_a, _, _, _ = a and evs_b, _, _, _ = b in
  checkb "same seed -> identical kept set" true (evs_a = evs_b);
  fresh ();
  let evs_c, _, _, _ = sampled_run ~sample:(Obs_trace.Rate 0.25) ~sample_seed:43 () in
  checkb "different seed -> different kept set" true (evs_a <> evs_c)

let test_sampling_one_in_n () =
  fresh ();
  (* 1/1 keeps everything — the sampler is bypassed entirely *)
  let evs, seen, sampled, dropped = sampled_run ~sample:(Obs_trace.One_in 1) () in
  checki "1/1 keeps all" seen sampled;
  checki "1/1 drops none" 0 dropped;
  checki "1/1 retains all" seen (List.length evs);
  checkb "invalid rate rejected" true
    (try
       Obs_trace.start ~sample:(Obs_trace.Rate 1.5) ();
       Obs_trace.stop ();
       false
     with Invalid_argument _ -> true)

let test_trace_spec_parsing () =
  let ok s = function
    | Ok spec -> spec
    | Error msg -> Alcotest.failf "spec %S rejected: %s" s msg
  in
  let spec = ok "t.json" (Obs_trace.parse_spec "t.json") in
  checks "bare file" "t.json" spec.Obs_trace.file;
  checkb "default native" true (spec.Obs_trace.format = Obs_trace.Native);
  checkb "default unsampled" true (spec.Obs_trace.sample = None);
  let spec = ok "full" (Obs_trace.parse_spec "t.json,chrome,sample=1/8,seed=7") in
  checkb "chrome parsed" true (spec.Obs_trace.format = Obs_trace.Chrome);
  checkb "1/N parsed" true (spec.Obs_trace.sample = Some (Obs_trace.One_in 8));
  checki "seed parsed" 7 spec.Obs_trace.sample_seed;
  let spec = ok "rate" (Obs_trace.parse_spec "t.json,sample=0.01") in
  checkb "rate parsed" true (spec.Obs_trace.sample = Some (Obs_trace.Rate 0.01));
  List.iter
    (fun s ->
      checkb ("rejected: " ^ s) true (Result.is_error (Obs_trace.parse_spec s)))
    [ ""; ",chrome"; "t.json,sample=nope"; "t.json,sample=2.0"; "t.json,sample=1/0"; "t.json,seed=x" ]

(* ----------------------- causal-id sampling --------------------------- *)

(* 60 message lifecycles on one edge: send, a "retransmit" fate, deliver.
   Under cid pair-sampling a kept message keeps all three events and a
   dropped one keeps none. *)
let emit_lifecycles () =
  for i = 0 to 59 do
    let cid = Obs_trace.mint_cid () in
    let at = float_of_int i in
    Obs_trace.emit (Obs_trace.Msg_send { cid; src = 0; dst = 1; at; bits = 8 });
    Obs_trace.emit
      (Obs_trace.Chaos_event { kind = "retransmit"; cid; src = 0; dst = 1 });
    Obs_trace.emit
      (Obs_trace.Msg_deliver { cid; src = 0; dst = 1; at = at +. 0.5 })
  done

let cid_sampled_run seed =
  Obs_trace.start ~sample:(Obs_trace.Rate 0.2) ~sample_seed:seed ();
  Fun.protect ~finally:Obs_trace.stop (fun () ->
      emit_lifecycles ();
      List.map (fun e -> e.Obs_trace.payload) (Obs_trace.events ()))

let test_cid_pair_sampling () =
  fresh ();
  let evs = cid_sampled_run 5 in
  let tally = Hashtbl.create 64 in
  let bump cid = Hashtbl.replace tally cid (1 + Option.value ~default:0 (Hashtbl.find_opt tally cid)) in
  List.iter
    (function
      | Obs_trace.Msg_send { cid; _ }
      | Obs_trace.Msg_deliver { cid; _ }
      | Obs_trace.Chaos_event { cid; _ } -> bump cid
      | _ -> ())
    evs;
  checkb "a strict subset of lifecycles kept" true
    (Hashtbl.length tally > 0 && Hashtbl.length tally < 60);
  Hashtbl.iter
    (fun cid n -> checki (Printf.sprintf "cid %d kept whole" cid) 3 n)
    tally;
  (* seeded replay keeps the identical set *)
  fresh ();
  let evs' = cid_sampled_run 5 in
  checkb "same seed -> same kept lifecycles" true (evs = evs');
  fresh ();
  let evs'' = cid_sampled_run 6 in
  checkb "different seed -> different kept set" true (evs <> evs'')

let test_cid_minting_resets () =
  fresh ();
  Obs_trace.start ();
  let first = Obs_trace.mint_cid () in
  ignore (Obs_trace.mint_cid ());
  Obs_trace.stop ();
  checki "cids start at zero" 0 first;
  Obs_trace.start ();
  let again = Obs_trace.mint_cid () in
  Obs_trace.stop ();
  checki "start resets the mint" 0 again

(* --------------------------- trace analysis --------------------------- *)

let parsed_trace () =
  match Obs_analyze.parse (Obs_trace.to_json ()) with
  | Ok tr -> tr
  | Error msg -> Alcotest.failf "trace rejected: %s" msg

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

(* A hand-built run with known lifecycles:
     A: 0->1, sent at 1.0, dropped, retransmitted at 2.0, delivered 3.0
     B: 0->1, sent at 1.5, delivered 2.0  (overtakes A on the wire)
     C: 1->0, sent at 0.5, never delivered, given up
   plus pulse-1 entries: node 0 at 2.0, node 1 at 2.5 (node 1 gates). *)
let emit_known_run () =
  let a = Obs_trace.mint_cid () in
  Obs_trace.emit (Obs_trace.Msg_send { cid = a; src = 0; dst = 1; at = 1.0; bits = 8 });
  Obs_trace.emit (Obs_trace.Chaos_event { kind = "drop"; cid = a; src = 0; dst = 1 });
  Obs_trace.emit (Obs_trace.Chaos_event { kind = "retransmit"; cid = a; src = 0; dst = 1 });
  Obs_trace.emit (Obs_trace.Msg_send { cid = a; src = 0; dst = 1; at = 2.0; bits = 8 });
  let b = Obs_trace.mint_cid () in
  Obs_trace.emit (Obs_trace.Msg_send { cid = b; src = 0; dst = 1; at = 1.5; bits = 8 });
  Obs_trace.emit (Obs_trace.Msg_deliver { cid = b; src = 0; dst = 1; at = 2.0 });
  Obs_trace.emit (Obs_trace.Msg_deliver { cid = a; src = 0; dst = 1; at = 3.0 });
  let c = Obs_trace.mint_cid () in
  Obs_trace.emit (Obs_trace.Msg_send { cid = c; src = 1; dst = 0; at = 0.5; bits = 4 });
  Obs_trace.emit (Obs_trace.Chaos_event { kind = "giveup"; cid = c; src = 1; dst = 0 });
  Obs_trace.emit (Obs_trace.Sync_pulse { node = 0; pulse = 1; at = 2.0 });
  Obs_trace.emit (Obs_trace.Sync_pulse { node = 1; pulse = 1; at = 2.5 })

let test_analyze_lifecycles () =
  fresh ();
  Obs_trace.start ();
  emit_known_run ();
  Obs_trace.stop ();
  let tr = parsed_trace () in
  checkb "well-formed" true (Obs_analyze.validate tr = []);
  let r = Obs_analyze.analyze tr in
  checki "messages" 3 r.Obs_analyze.a_messages;
  checki "delivered" 2 r.Obs_analyze.a_delivered;
  checki "sends" 4 r.Obs_analyze.a_sends;
  checki "delivers" 2 r.Obs_analyze.a_delivers;
  checki "retransmits" 1 r.Obs_analyze.a_retransmits;
  checki "giveups" 1 r.Obs_analyze.a_giveups;
  checki "drops" 1 r.Obs_analyze.a_drops;
  (* latencies from first send: A = 3.0 - 1.0 = 2.0, B = 0.5 *)
  checkf "mean latency" 1.25 r.Obs_analyze.a_latency_mean;
  checkf "max latency" 2.0 r.Obs_analyze.a_latency_max;
  let q label =
    match
      List.find_opt (fun q -> q.Obs_analyze.q_label = label) r.Obs_analyze.a_latency
    with
    | Some q -> q.Obs_analyze.q_value
    | None -> Alcotest.failf "missing quantile %s" label
  in
  checkf "p50 exact" 0.5 (q "p50");
  checkf "p99 exact" 2.0 (q "p99");
  (* B (sent second) delivered before A: one inversion of depth 1 *)
  checki "reordered deliveries" 1 r.Obs_analyze.a_reordered;
  checki "max reorder depth" 1 r.Obs_analyze.a_max_reorder;
  (* busiest edge 0->1: 2 messages, 3 sends -> amplification 1.5 *)
  (match r.Obs_analyze.a_edges with
  | e :: _ ->
      checki "edge src" 0 e.Obs_analyze.e_src;
      checki "edge dst" 1 e.Obs_analyze.e_dst;
      checki "edge msgs" 2 e.Obs_analyze.e_msgs;
      checki "edge sends" 3 e.Obs_analyze.e_sends;
      checki "edge retransmits" 1 e.Obs_analyze.e_retransmits;
      checkf "amplification" 1.5 e.Obs_analyze.e_amplification
  | [] -> Alcotest.fail "no edges in report");
  checki "edges with traffic" 2 r.Obs_analyze.a_edges_total;
  (* pulse 1 gated by node 1 (enters last); its latest delivery at or
     before the entry is B, 0->1 at 2.0 *)
  match r.Obs_analyze.a_pulses with
  | [ p ] ->
      checki "gating node" 1 p.Obs_analyze.p_node;
      checkf "pulse entry" 2.5 p.Obs_analyze.p_at;
      checkb "gating edge" true (p.Obs_analyze.p_gate = Some (0, 1, 2.0))
  | ps -> Alcotest.failf "expected one pulse, got %d" (List.length ps)

let test_analyze_report_renders () =
  fresh ();
  Obs_trace.start ();
  emit_known_run ();
  Obs_trace.stop ();
  let r = Obs_analyze.analyze (parsed_trace ()) in
  let text = Format.asprintf "%a" Obs_analyze.pp_report r in
  checkb "text mentions critical path" true (contains text "critical path");
  let doc = Obs_analyze.json_of_report r in
  match Obs_json.of_string (Obs_json.to_string ~indent:true doc) with
  | Error e -> Alcotest.failf "report JSON unparseable: %s" e
  | Ok j ->
      checks "report schema" "ftspan.trace-report.v1"
        (get_exn "schema" (Obs_json.to_str (member [ "schema" ] j)));
      checki "retransmits round-trip" 1
        (get_exn "retransmits" (Obs_json.to_int (member [ "retransmits" ] j)))

let trace_doc ?(schema = "ftspan.trace.v1") ?(seen = 1) ?(sampled = 1)
    ?(dropped = 0) events =
  Obs_json.Obj
    [
      ("schema", Obs_json.String schema);
      ("seen", Obs_json.Int seen);
      ("sampled", Obs_json.Int sampled);
      ("dropped", Obs_json.Int dropped);
      ("events", Obs_json.List events);
    ]

let deliver_event seq cid =
  Obs_json.Obj
    [
      ("seq", Obs_json.Int seq);
      ("ts_s", Obs_json.Float 0.);
      ("type", Obs_json.String "msg_deliver");
      ("cid", Obs_json.Int cid);
      ("src", Obs_json.Int 0);
      ("dst", Obs_json.Int 1);
      ("at", Obs_json.Float 1.0);
    ]

let test_analyze_validation () =
  checkb "wrong schema is a parse error" true
    (Result.is_error (Obs_analyze.parse (trace_doc ~schema:"other.v1" [])));
  checkb "missing top-level field is a parse error" true
    (Result.is_error
       (Obs_analyze.parse (Obs_json.Obj [ ("schema", Obs_json.String "ftspan.trace.v1") ])));
  let ok_parse d =
    match Obs_analyze.parse d with
    | Ok tr -> tr
    | Error msg -> Alcotest.failf "parse failed: %s" msg
  in
  (* a lossless trace with a delivery but no send violates the lifecycle
     contract ... *)
  let tr = ok_parse (trace_doc [ deliver_event 0 7 ]) in
  checkb "orphan delivery flagged" true
    (List.exists (fun v -> contains v "without a send") (Obs_analyze.validate tr));
  (* ... but sampling (dropped > 0) excuses the missing send *)
  let tr = ok_parse (trace_doc ~seen:2 ~dropped:1 [ deliver_event 0 7 ]) in
  checkb "sampled trace excused" true (Obs_analyze.validate tr = []);
  (* non-monotonic seqs *)
  let tr =
    ok_parse (trace_doc ~seen:2 ~sampled:2 [ deliver_event 5 7; deliver_event 3 7 ])
  in
  checkb "non-monotonic seq flagged" true
    (List.exists (fun v -> contains v "non-monotonic") (Obs_analyze.validate tr));
  (* an event of a known type missing its fields *)
  let bad =
    Obs_json.Obj
      [ ("seq", Obs_json.Int 0); ("type", Obs_json.String "msg_send") ]
  in
  let tr = ok_parse (trace_doc [ bad ]) in
  checkb "malformed typed event flagged" true (Obs_analyze.validate tr <> []);
  (* unknown event types are fine (forward compatibility) *)
  let other =
    Obs_json.Obj
      [ ("seq", Obs_json.Int 0); ("type", Obs_json.String "mystery") ]
  in
  checkb "unknown type tolerated" true
    (Obs_analyze.validate (ok_parse (trace_doc [ other ])) = [])

(* --------------------------- heartbeat -------------------------------- *)

let test_heartbeat_spec_parsing () =
  let ok s = function
    | Ok spec -> spec
    | Error msg -> Alcotest.failf "spec %S rejected: %s" s msg
  in
  let spec = ok "bare" (Obs_heartbeat.parse_spec "hb.jsonl") in
  checks "file" "hb.jsonl" spec.Obs_heartbeat.file;
  checkb "no interval" true (spec.Obs_heartbeat.interval_s = None);
  checkb "no ops" true (spec.Obs_heartbeat.every_ops = None);
  let spec = ok "interval" (Obs_heartbeat.parse_spec "hb.jsonl,0.5") in
  checkb "interval parsed" true (spec.Obs_heartbeat.interval_s = Some 0.5);
  let spec = ok "ops" (Obs_heartbeat.parse_spec "hb.jsonl,ops=4096") in
  checkb "ops parsed" true (spec.Obs_heartbeat.every_ops = Some 4096);
  List.iter
    (fun s ->
      checkb ("rejected: " ^ s) true
        (Result.is_error (Obs_heartbeat.parse_spec s)))
    [ ""; ",0.5"; "hb.jsonl,ops=0"; "hb.jsonl,ops=x"; "hb.jsonl,-1.0"; "hb.jsonl,0" ]

let test_heartbeat_stream () =
  fresh ();
  let file = Filename.temp_file "ftspan_hb" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      (match Obs_heartbeat.parse_spec (file ^ ",ops=10") with
      | Ok spec -> Obs_heartbeat.start spec
      | Error msg -> Alcotest.failf "spec rejected: %s" msg);
      let c = Obs.counter "test.hb_counter" in
      let h = Obs.histogram_log "test.hb_lat" in
      for i = 1 to 35 do
        Obs.Counter.incr c;
        Obs.Histogram.observe h (0.001 *. float_of_int i);
        Obs_heartbeat.pulse ()
      done;
      Obs_heartbeat.stop ();
      (* 3 cadence beats (ops 10/20/30) + the final beat on stop *)
      checki "beats counted" 4 (Obs_heartbeat.beats ());
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      checki "one line per beat" 4 (List.length lines);
      let beats =
        List.map
          (fun line ->
            match Obs_json.of_string line with
            | Ok j -> j
            | Error e -> Alcotest.failf "beat unparseable: %s" e)
          lines
      in
      List.iteri
        (fun i j ->
          checks "schema" "ftspan.heartbeat.v1"
            (get_exn "schema" (Obs_json.to_str (member [ "schema" ] j)));
          checki "beat index" i
            (get_exn "beat" (Obs_json.to_int (member [ "beat" ] j))))
        beats;
      (* counters carry deltas since the previous beat: 10,10,10,5 *)
      let deltas =
        List.map
          (fun j ->
            get_exn "delta"
              (Obs_json.to_int (member [ "counters"; "test.hb_counter" ] j)))
          beats
      in
      checkb "counter deltas" true (deltas = [ 10; 10; 10; 5 ]);
      (* every beat carries the latency quantiles *)
      List.iter
        (fun j ->
          ignore
            (get_exn "p99"
               (Obs_json.to_number (member [ "quantiles"; "test.hb_lat"; "p99" ] j))))
        beats)

let test_heartbeat_skipped_and_gauges () =
  fresh ();
  let file = Filename.temp_file "ftspan_hb" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      (match Obs_heartbeat.parse_spec (file ^ ",ops=5") with
      | Ok spec -> Obs_heartbeat.start spec
      | Error msg -> Alcotest.failf "spec rejected: %s" msg);
      Obs.Gauge.set (Obs.gauge "gauge.test.hb") 3;
      for _ = 1 to 7 do
        Obs_heartbeat.pulse ()
      done;
      Obs_heartbeat.stop ();
      (* single-threaded: the try_lock never loses *)
      checki "no beats skipped without contention" 0 (Obs_heartbeat.skipped ());
      let ic = open_in file in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let beats =
        List.map
          (fun line ->
            match Obs_json.of_string line with
            | Ok j -> j
            | Error e -> Alcotest.failf "beat unparseable: %s" e)
          (List.rev !lines)
      in
      checki "cadence beat + final beat" 2 (List.length beats);
      List.iter
        (fun j ->
          checki "skipped field present and zero" 0
            (get_exn "skipped" (Obs_json.to_int (member [ "skipped" ] j)));
          (* gauges report absolute values, not deltas *)
          checki "gauge level in beat" 3
            (get_exn "gauge"
               (Obs_json.to_int (member [ "gauges"; "gauge.test.hb" ] j))))
        beats)

(* --------------------------- compare ---------------------------------- *)

let report entries =
  Obs_json.Obj
    [
      ("schema", Obs_json.String "ftspan.metrics.v1");
      ("created_unix", Obs_json.Float 0.);
      ("entries", Obs_json.List entries);
    ]

let entry id wall counters =
  Obs_json.Obj
    [
      ("id", Obs_json.String id);
      ("wall_time_s", Obs_json.Float wall);
      ( "counters",
        Obs_json.Obj (List.map (fun (n, v) -> (n, Obs_json.Int v)) counters) );
      ("timers", Obs_json.Obj []);
      ("histograms", Obs_json.Obj []);
      ("spans", Obs_json.List []);
    ]

let run_compare base run =
  match Obs_compare.compare_reports base run with
  | Ok findings -> findings
  | Error msg -> Alcotest.failf "compare failed: %s" msg

let verdict_of findings metric =
  match List.find_opt (fun f -> f.Obs_compare.metric = metric) findings with
  | Some f -> f.Obs_compare.verdict
  | None -> Alcotest.failf "no finding for %s" metric

let test_compare_within () =
  let base = report [ entry "e" 1.0 [ ("lbc.calls", 100) ] ] in
  let run = report [ entry "e" 1.1 [ ("lbc.calls", 110) ] ] in
  let fs = run_compare base run in
  checkb "no regression" false (Obs_compare.regressed fs);
  checkb "wall within" true (verdict_of fs "wall_time_s" = Obs_compare.Within);
  checkb "counter within" true (verdict_of fs "lbc.calls" = Obs_compare.Within)

let test_compare_regression () =
  let base = report [ entry "e" 1.0 [ ("lbc.calls", 100) ] ] in
  (* default counter tolerance is +25%: 126 > 125 regresses *)
  let run = report [ entry "e" 1.0 [ ("lbc.calls", 126) ] ] in
  let fs = run_compare base run in
  checkb "counter regression flagged" true
    (verdict_of fs "lbc.calls" = Obs_compare.Regression);
  checkb "gate trips" true (Obs_compare.regressed fs);
  (* ... and a doubled tolerance lets the same pair through *)
  let tol = Obs_compare.scale 2. Obs_compare.default_tolerances in
  match Obs_compare.compare_reports ~tol base run with
  | Ok fs -> checkb "slack 2 passes" false (Obs_compare.regressed fs)
  | Error msg -> Alcotest.failf "compare failed: %s" msg

let test_compare_wall_regression () =
  (* wall tolerance is relative + absolute floor: base*(1+1.5)+0.25 *)
  let base = report [ entry "e" 1.0 [] ] in
  let slow = report [ entry "e" 2.75 [] ] in
  let too_slow = report [ entry "e" 2.76 [] ] in
  checkb "at the limit passes" false
    (Obs_compare.regressed (run_compare base slow));
  checkb "past the limit fails" true
    (Obs_compare.regressed (run_compare base too_slow))

let test_compare_missing_and_new () =
  let base = report [ entry "e" 1.0 [ ("old.counter", 5) ] ] in
  let run = report [ entry "e" 1.0 [ ("new.counter", 7) ] ] in
  let fs = run_compare base run in
  checkb "baseline metric gone from run" true
    (verdict_of fs "old.counter" = Obs_compare.Missing);
  checkb "missing trips the gate" true (Obs_compare.regressed fs);
  checkb "metric missing from baseline is informational" true
    (verdict_of fs "new.counter" = Obs_compare.New);
  (* a run-only metric alone must not trip the gate *)
  let base2 = report [ entry "e" 1.0 [] ] in
  checkb "new metric alone passes" false
    (Obs_compare.regressed (run_compare base2 run))

let test_compare_missing_entry () =
  let base = report [ entry "gone" 1.0 [] ] in
  let run = report [] in
  let fs = run_compare base run in
  checkb "missing entry trips the gate" true (Obs_compare.regressed fs);
  checkb "flagged as entry-level" true
    (verdict_of fs "(entry)" = Obs_compare.Missing)

let test_compare_bad_schema () =
  let bad = Obs_json.Obj [ ("schema", Obs_json.String "other.v9") ] in
  checkb "wrong schema rejected" true
    (Result.is_error (Obs_compare.compare_reports bad (report [])))

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch" `Quick test_counter_kind_mismatch;
          Alcotest.test_case "disabled is no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "histogram overflow" `Quick test_histogram_overflow;
          Alcotest.test_case "gauge basics" `Quick test_gauge_basics;
          Alcotest.test_case "gauge sharded" `Quick test_gauge_sharded;
        ] );
      ( "quantiles",
        [
          Alcotest.test_case "edge cases" `Quick test_quantile_edges;
          Alcotest.test_case "monotone and accurate" `Quick test_quantile_order;
          Alcotest.test_case "snapshot carries quantiles" `Quick
            test_quantiles_in_snapshot;
        ] );
      ( "shards",
        [
          Alcotest.test_case "merge equals single-domain totals" `Quick
            test_shard_merge_equals_single;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and merge" `Quick test_span_nesting;
          Alcotest.test_case "exception closes span" `Quick
            test_span_exception_closes;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "json",
        [
          Alcotest.test_case "report round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "gauges merge into counters" `Quick
            test_gauge_in_sink;
          Alcotest.test_case "parser errors" `Quick test_json_parser_errors;
        ] );
      ( "integration",
        [
          Alcotest.test_case "trace = registry deltas" `Quick
            test_trace_matches_registry;
          Alcotest.test_case "trace zero when disabled" `Quick
            test_trace_zero_when_disabled;
        ] );
      ( "event trace",
        [
          Alcotest.test_case "ordering" `Quick test_trace_ordering;
          Alcotest.test_case "ring overflow" `Quick test_trace_ring_overflow;
          Alcotest.test_case "disabled no-op" `Quick test_trace_disabled_noop;
          Alcotest.test_case "span hook" `Quick test_trace_span_hook;
          Alcotest.test_case "streaming sink" `Quick test_trace_sink_streams;
          Alcotest.test_case "chrome well-formed" `Quick test_chrome_wellformed;
          Alcotest.test_case "chrome orphan end elided" `Quick
            test_chrome_unmatched_end_elided;
          Alcotest.test_case "native round-trip" `Quick
            test_native_trace_roundtrip;
        ] );
      ( "sampling",
        [
          Alcotest.test_case "accounting" `Quick test_sampling_accounting;
          Alcotest.test_case "seeded determinism" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "one-in-n" `Quick test_sampling_one_in_n;
          Alcotest.test_case "cid lifecycles" `Quick test_cid_pair_sampling;
          Alcotest.test_case "cid minting resets" `Quick
            test_cid_minting_resets;
          Alcotest.test_case "spec parsing" `Quick test_trace_spec_parsing;
        ] );
      ( "heartbeat",
        [
          Alcotest.test_case "spec parsing" `Quick test_heartbeat_spec_parsing;
          Alcotest.test_case "jsonl stream" `Quick test_heartbeat_stream;
          Alcotest.test_case "skipped + gauges" `Quick
            test_heartbeat_skipped_and_gauges;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "lifecycle report" `Quick test_analyze_lifecycles;
          Alcotest.test_case "rendering" `Quick test_analyze_report_renders;
          Alcotest.test_case "validation" `Quick test_analyze_validation;
        ] );
      ( "compare",
        [
          Alcotest.test_case "within tolerance" `Quick test_compare_within;
          Alcotest.test_case "counter regression" `Quick test_compare_regression;
          Alcotest.test_case "wall regression" `Quick
            test_compare_wall_regression;
          Alcotest.test_case "missing and new metrics" `Quick
            test_compare_missing_and_new;
          Alcotest.test_case "missing entry" `Quick test_compare_missing_entry;
          Alcotest.test_case "bad schema" `Quick test_compare_bad_schema;
        ] );
    ]
