(* Tests of the persistent domain-pool executor (lib/exec) and its
   determinism contract: results computed through Exec.parallel_for must
   be bit-identical to the sequential computation at every domain count,
   chunk size, and steal order. *)

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let rng ?(seed = 0xC0FFEE) () = Rng.create ~seed
let ids sel = Selection.ids sel

(* ------------------------- parallel_for core ------------------------ *)

let test_covers_every_index_once () =
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains @@ fun pool ->
      List.iter
        (fun chunk ->
          let n = 1013 in
          let hits = Array.make n 0 in
          Exec.parallel_for ?chunk pool ~lo:0 ~hi:n (fun ~worker:_ l h ->
              for i = l to h - 1 do
                hits.(i) <- hits.(i) + 1
              done);
          Array.iteri
            (fun i c ->
              checki (Printf.sprintf "index %d hit once (d=%d)" i domains) 1 c)
            hits)
        [ None; Some 1; Some 7; Some 64; Some 10_000 ])
    [ 1; 2; 4 ]

let test_empty_range_runs_nothing () =
  Exec.Pool.with_pool ~domains:2 @@ fun pool ->
  let ran = ref false in
  Exec.parallel_for pool ~lo:5 ~hi:5 (fun ~worker:_ _ _ -> ran := true);
  Exec.parallel_for pool ~lo:9 ~hi:3 (fun ~worker:_ _ _ -> ran := true);
  checkb "no body call on empty range" false !ran

let test_worker_indices_in_range () =
  let domains = 4 in
  Exec.Pool.with_pool ~domains @@ fun pool ->
  checki "pool size" domains (Exec.Pool.size pool);
  let bad = Atomic.make 0 in
  Exec.parallel_for ~chunk:1 pool ~lo:0 ~hi:500 (fun ~worker _ _ ->
      if worker < 0 || worker >= domains then Atomic.incr bad);
  checki "worker index always in [0, size)" 0 (Atomic.get bad)

let test_rejects_bad_arguments () =
  (try
     ignore (Exec.Pool.create ~domains:0 ());
     Alcotest.fail "domains=0 should fail"
   with Invalid_argument _ -> ());
  Exec.Pool.with_pool ~domains:2 @@ fun pool ->
  try
    Exec.parallel_for ~chunk:0 pool ~lo:0 ~hi:10 (fun ~worker:_ _ _ -> ());
    Alcotest.fail "chunk=0 should fail"
  with Invalid_argument _ -> ()

(* -------------------- failure and lifecycle -------------------------- *)

exception Boom

let test_exception_propagates_pool_survives () =
  let pool = Exec.Pool.create ~domains:4 () in
  Fun.protect ~finally:(fun () -> Exec.Pool.shutdown pool) @@ fun () ->
  (* A body raise must reach the caller... *)
  let raised =
    try
      Exec.parallel_for ~chunk:1 pool ~lo:0 ~hi:200 (fun ~worker:_ l _ ->
          if l = 97 then raise Boom);
      false
    with Boom -> true
  in
  checkb "exception re-raised in caller" true raised;
  (* ...and leave every helper parked, not leaked or wedged: the same
     pool must run a full region afterwards. *)
  let n = 300 in
  let out = Array.make n 0 in
  Exec.parallel_for ~chunk:8 pool ~lo:0 ~hi:n (fun ~worker:_ l h ->
      for i = l to h - 1 do
        out.(i) <- i * i
      done);
  let ok = ref true in
  Array.iteri (fun i v -> if v <> i * i then ok := false) out;
  checkb "pool usable after exception" true !ok

let test_shutdown_idempotent_and_fences () =
  let pool = Exec.Pool.create ~domains:3 () in
  Exec.Pool.shutdown pool;
  Exec.Pool.shutdown pool;
  (* idempotent *)
  try
    Exec.parallel_for ~chunk:1 pool ~lo:0 ~hi:100 (fun ~worker:_ _ _ -> ());
    Alcotest.fail "submit to a shut-down pool should fail"
  with Invalid_argument _ -> ()

let test_worker_local_lazy_per_worker () =
  Exec.Pool.with_pool ~domains:3 @@ fun pool ->
  let inits = Atomic.make 0 in
  let slots =
    Exec.Worker_local.create pool (fun w ->
        Atomic.incr inits;
        ref w)
  in
  Exec.parallel_for ~chunk:1 pool ~lo:0 ~hi:300 (fun ~worker _ _ ->
      let r = Exec.Worker_local.get slots ~worker in
      checki "slot bound to its worker" worker !r);
  checkb "each worker initialized at most once"
    true
    (Atomic.get inits <= Exec.Pool.size pool);
  checki "outside a region, worker 0" 0 !(Exec.Worker_local.get slots ~worker:0)

(* ----------------- determinism: builds and verify -------------------- *)

(* The tentpole's acceptance bar: selections through a pool are
   bit-identical to the sequential batched build on every family, both
   fault modes, at any domain count. *)
let graph_families () =
  let r = rng () in
  [
    ("gnp", Generators.connected_gnp r ~n:80 ~p:0.15);
    ("grid", Generators.grid ~rows:8 ~cols:8);
    ( "hard",
      Lower_bound.hard_instance ~f:1 (Lower_bound.projective_plane_incidence ~q:3)
    );
  ]

let test_build_bit_identical_across_domains () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun mode ->
          let seq = Batch_greedy.build ~mode ~k:2 ~f:1 ~batch:32 g in
          List.iter
            (fun domains ->
              let par =
                Exec.Pool.with_pool ~domains (fun pool ->
                    Batch_greedy.build ~pool ~mode ~k:2 ~f:1 ~batch:32 g)
              in
              check
                (Alcotest.list Alcotest.int)
                (Printf.sprintf "%s %s domains=%d" name
                   (match mode with Fault.VFT -> "VFT" | Fault.EFT -> "EFT")
                   domains)
                (ids seq.Batch_greedy.selection)
                (ids par.Batch_greedy.selection))
            [ 1; 2; 4 ])
        [ Fault.VFT; Fault.EFT ])
    (graph_families ())

let test_pool_reused_across_builds () =
  let r = rng () in
  let g1 = Generators.connected_gnp r ~n:60 ~p:0.2 in
  let g2 = Generators.grid ~rows:7 ~cols:7 in
  let seq1 = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 ~batch:16 g1 in
  let seq2 = Batch_greedy.build ~mode:Fault.EFT ~k:3 ~f:1 ~batch:16 g2 in
  Exec.Pool.with_pool ~domains:4 @@ fun pool ->
  (* Two consecutive builds on one pool: per-worker workspaces are
     cached and reused, and both results stay sequential-identical. *)
  let par1 = Batch_greedy.build ~pool ~mode:Fault.VFT ~k:2 ~f:2 ~batch:16 g1 in
  let par2 = Batch_greedy.build ~pool ~mode:Fault.EFT ~k:3 ~f:1 ~batch:16 g2 in
  check (Alcotest.list Alcotest.int) "first build on shared pool"
    (ids seq1.Batch_greedy.selection)
    (ids par1.Batch_greedy.selection);
  check (Alcotest.list Alcotest.int) "second build on shared pool"
    (ids seq2.Batch_greedy.selection)
    (ids par2.Batch_greedy.selection)

let test_spanner_options_facade () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:50 ~p:0.25 in
  let params = { Spanner.k = 2; f = 1; mode = Fault.VFT } in
  let plain = Spanner.build params g in
  (* Default options are the historical sequential path. *)
  let dflt = Spanner.build ~options:Spanner.default_options params g in
  check (Alcotest.list Alcotest.int) "default options = plain" (ids plain)
    (ids dflt);
  (* batch=1 through a pool still equals the sequential greedy. *)
  let pooled =
    Exec.Pool.with_pool ~domains:2 (fun pool ->
        Spanner.build ~options:(Spanner.options ~batch:1 ~pool ()) params g)
  in
  check (Alcotest.list Alcotest.int) "pooled batch=1 = sequential" (ids plain)
    (ids pooled);
  try
    ignore (Spanner.options ~batch:0 ());
    Alcotest.fail "batch=0 should fail"
  with Invalid_argument _ -> ()

let test_verify_batteries_deterministic () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:50 ~p:0.25 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  let run ?pool () =
    let rv = Rng.create ~seed:77 in
    let cfg = Verify.config ?pool ~rng:rv ~trials:40 () in
    let a = Verify.adversarial ~cfg sel ~mode:Fault.VFT ~stretch:3.0 ~f:2 in
    let b = Verify.random ~cfg sel ~mode:Fault.VFT ~stretch:3.0 ~f:2 in
    let p =
      Verify.profile ~cfg:(Verify.config ?pool ~rng:rv ~trials:20 ()) sel
        ~mode:Fault.VFT ~f:2
    in
    (a, b, p)
  in
  let seq = run () in
  Exec.Pool.with_pool ~domains:4 @@ fun pool ->
  let par = run ~pool () in
  checkb "verify batteries identical under a pool" true (seq = par)

(* ------------------------- default_jobs ------------------------------ *)

(* Kept last: set_default_jobs installs a process-wide override that
   cannot be cleared again. *)
let test_default_jobs () =
  let case env expect =
    Unix.putenv "FTSPAN_JOBS" env;
    checki (Printf.sprintf "FTSPAN_JOBS=%S" env) expect (Exec.default_jobs ())
  in
  case "3" 3;
  case " 5 " 5;
  case "0" 1;
  case "-2" 1;
  case "abc" 1;
  Exec.set_default_jobs 2;
  case "7" 2;
  (* the override wins over the environment *)
  Exec.set_default_jobs 1;
  try
    Exec.set_default_jobs 0;
    Alcotest.fail "set_default_jobs 0 should fail"
  with Invalid_argument _ -> ()

let () =
  Alcotest.run "exec"
    [
      ( "parallel_for",
        [
          Alcotest.test_case "covers once" `Quick test_covers_every_index_once;
          Alcotest.test_case "empty range" `Quick test_empty_range_runs_nothing;
          Alcotest.test_case "worker indices" `Quick test_worker_indices_in_range;
          Alcotest.test_case "bad arguments" `Quick test_rejects_bad_arguments;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "exception survives" `Quick
            test_exception_propagates_pool_survives;
          Alcotest.test_case "shutdown fences" `Quick
            test_shutdown_idempotent_and_fences;
          Alcotest.test_case "worker-local" `Quick test_worker_local_lazy_per_worker;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "builds bit-identical" `Quick
            test_build_bit_identical_across_domains;
          Alcotest.test_case "pool reuse" `Quick test_pool_reused_across_builds;
          Alcotest.test_case "spanner options" `Quick test_spanner_options_facade;
          Alcotest.test_case "verify batteries" `Quick
            test_verify_batteries_deterministic;
        ] );
      ( "default_jobs",
        [ Alcotest.test_case "parsing and override" `Quick test_default_jobs ] );
    ]
