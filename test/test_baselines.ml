(* Tests for the baseline constructions (Baswana-Sen, DK11) and the
   supporting modules (Fault, Selection, Verify, Bounds, Spanner facade). *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checkf = check (Alcotest.float 1e-9)

let rng () = Rng.create ~seed:2024

let stretch k = float_of_int ((2 * k) - 1)

(* --------------------------- Fault ---------------------------------- *)

let test_fault_masks_vft () =
  let g = Generators.cycle 5 in
  let fault = Fault.of_vertices [ 1; 3 ] in
  match Fault.masks g fault with
  | Some bv, None ->
      checkb "1 blocked" true bv.(1);
      checkb "3 blocked" true bv.(3);
      checkb "0 free" false bv.(0)
  | _ -> Alcotest.fail "expected vertex mask only"

let test_fault_masks_eft () =
  let g = Generators.cycle 5 in
  let fault = Fault.of_edges [ 0; 4 ] in
  match Fault.masks g fault with
  | None, Some be ->
      checkb "0 blocked" true be.(0);
      checkb "2 free" false be.(2)
  | _ -> Alcotest.fail "expected edge mask only"

let test_fault_dedup () =
  checki "dedup" 2 (Fault.size (Fault.of_vertices [ 3; 1; 3; 1 ]))

let test_fault_spares () =
  let f = Fault.of_vertices [ 2 ] in
  checkb "pair away from fault" true (Fault.spares f ~u:0 ~v:1);
  checkb "pair hit by fault" false (Fault.spares f ~u:2 ~v:1);
  let fe = Fault.of_edges [ 0 ] in
  checkb "EFT never removes endpoints" true (Fault.spares fe ~u:0 ~v:1)

let test_fault_random_size_and_range () =
  let r = rng () in
  let g = Generators.cycle 10 in
  for _ = 1 to 20 do
    let fv = Fault.random r Fault.VFT g ~f:3 in
    checki "vft size" 3 (Fault.size fv);
    List.iter (fun x -> checkb "vertex range" true (x >= 0 && x < 10)) fv.Fault.members;
    let fe = Fault.random r Fault.EFT g ~f:4 in
    checki "eft size" 4 (Fault.size fe);
    List.iter (fun x -> checkb "edge range" true (x >= 0 && x < 10)) fe.Fault.members
  done

let test_fault_random_capped_by_universe () =
  let r = rng () in
  let g = Generators.path 3 in
  checki "capped" 3 (Fault.size (Fault.random r Fault.VFT g ~f:50))

let test_fault_enumerate_counts () =
  let g = Generators.path 4 in
  (* n = 4: subsets of size <= 2 over 4 vertices: 1 + 4 + 6 = 11 *)
  let count = ref 0 in
  Fault.enumerate Fault.VFT g ~f:2 (fun _ -> incr count);
  checki "subset count" 11 !count;
  checkf "count_subsets agrees" 11. (Fault.count_subsets ~universe:4 ~f:2)

let test_fault_enumerate_distinct () =
  let g = Generators.path 4 in
  let seen = Hashtbl.create 16 in
  Fault.enumerate Fault.VFT g ~f:2 (fun fault ->
      let key = String.concat "," (List.map string_of_int fault.Fault.members) in
      checkb "no duplicates" false (Hashtbl.mem seen key);
      Hashtbl.replace seen key ());
  checki "all distinct" 11 (Hashtbl.length seen)

let test_fault_adversarial_near_edge () =
  let r = rng () in
  let g = Generators.complete 8 in
  for _ = 1 to 10 do
    let fault = Fault.random_adversarial r Fault.VFT g ~f:3 in
    checkb "size within f" true (Fault.size fault <= 3)
  done

(* -------------------------- Selection ------------------------------- *)

let test_selection_of_ids_and_mem () =
  let g = Generators.cycle 5 in
  let sel = Selection.of_ids g [ 0; 2 ] in
  checki "size" 2 sel.Selection.size;
  checkb "mem 0" true (Selection.mem sel 0);
  checkb "mem 1" false (Selection.mem sel 1);
  check (Alcotest.list Alcotest.int) "ids sorted" [ 0; 2 ] (Selection.ids sel)

let test_selection_union () =
  let g = Generators.cycle 6 in
  let a = Selection.of_ids g [ 0; 1 ] in
  let b = Selection.of_ids g [ 1; 4 ] in
  let u = Selection.union a b in
  check (Alcotest.list Alcotest.int) "union" [ 0; 1; 4 ] (Selection.ids u)

let test_selection_weight_and_subgraph () =
  let g = Graph.of_weighted_edges 4 [ (0, 1, 2.); (1, 2, 3.); (2, 3, 4.) ] in
  let sel = Selection.of_ids g [ 0; 2 ] in
  checkf "weight" 6. (Selection.weight sel);
  let sub = Selection.to_subgraph sel in
  checki "subgraph m" 2 (Graph.m sub.Subgraph.graph);
  checki "subgraph n preserved" 4 (Graph.n sub.Subgraph.graph)

let test_selection_blocked_edges () =
  let g = Generators.cycle 4 in
  let sel = Selection.of_ids g [ 0; 1 ] in
  let blocked = Selection.blocked_edges sel [ 1 ] in
  checkb "unselected blocked" true blocked.(2);
  checkb "faulted blocked" true blocked.(1);
  checkb "selected unfaulted open" false blocked.(0)

let test_selection_full () =
  let g = Generators.cycle 7 in
  checki "full" 7 (Selection.full g).Selection.size

let test_selection_rejects_bad_ids () =
  let g = Generators.cycle 4 in
  try
    ignore (Selection.of_ids g [ 9 ]);
    Alcotest.fail "bad id should fail"
  with Invalid_argument _ -> ()

(* -------------------------- Verify ---------------------------------- *)

let test_verify_full_selection_always_ok () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:25 ~p:0.2 in
  let sel = Selection.full g in
  let report = Verify.random ~cfg:(Verify.config ~rng:r ~trials:25 ()) sel ~mode:Fault.VFT ~stretch:1.0 ~f:3 in
  checkb "G is a 1-spanner of itself under any faults" true (Verify.ok report)

let test_verify_detects_bad_spanner () =
  (* C6 minus one edge is not a 1-FT spanner of C6: fault another edge and
     the two sides disconnect. *)
  let g = Generators.cycle 6 in
  let sel = Selection.of_ids g [ 0; 1; 2; 3; 4 ] (* drop edge 5 *) in
  let report = Verify.exhaustive sel ~mode:Fault.EFT ~stretch:(stretch 2) ~f:1 in
  checkb "violation found" false (Verify.ok report)

let test_verify_spanning_tree_f0 () =
  (* A BFS tree of a cycle is a valid (n-1)-spanner at f=0 but breaks at
     stretch 3 for long cycles. *)
  let g = Generators.cycle 10 in
  let sel = Selection.of_ids g [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let bad = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:3.0 ~f:0 in
  checkb "stretch 3 violated by path detour of length 9" false (Verify.ok bad);
  let good = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:9.0 ~f:0 in
  checkb "stretch 9 fine" true (Verify.ok good)

let test_verify_exhaustive_refuses_huge () =
  let g = Generators.complete 30 in
  let sel = Selection.full g in
  try
    ignore (Verify.exhaustive sel ~mode:Fault.VFT ~stretch:3.0 ~f:10);
    Alcotest.fail "should refuse"
  with Invalid_argument _ -> ()

let test_verify_max_stretch () =
  let g = Generators.cycle 6 in
  let sel = Selection.of_ids g [ 0; 1; 2; 3; 4 ] in
  (* dropped edge {0,5}: detour length 5 *)
  checkf "stretch of dropped edge" 5.0
    (Verify.max_stretch_under_fault sel (Fault.empty Fault.VFT));
  (* faulting edge 0 disconnects 5 from 0 within the spanner? no - the
     spanner is the path 0..5; faulting path edge 2 disconnects {0,5}'s
     detour but the cycle edge {0,5} is also gone from the spanner ->
     infinite stretch for surviving source edge? Source edge {0,5} still
     exists in G \ {edge 2}. *)
  let s = Verify.max_stretch_under_fault sel (Fault.of_edges [ 2 ]) in
  checkb "disconnection = infinite stretch" true (s = infinity)

let test_verify_stretch_profile () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.2 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  let p = Verify.profile ~cfg:(Verify.config ~rng:r ~trials:40 ()) sel ~mode:Fault.VFT ~f:2 in
  checki "samples" 40 p.Verify.samples;
  checki "no disconnections for a 2-FT spanner at f=2" 0 p.Verify.disconnections;
  checkb "worst within guarantee" true (p.Verify.worst <= 3.0 +. 1e-9);
  checkb "mean <= p95 <= worst" true
    (p.Verify.mean <= p.Verify.p95 +. 1e-9 && p.Verify.p95 <= p.Verify.worst +. 1e-9);
  (* an under-provisioned spanner shows strictly worse profile *)
  let weak = Classic_greedy.build ~k:2 g in
  let pw = Verify.profile ~cfg:(Verify.config ~rng:r ~trials:40 ()) weak ~mode:Fault.VFT ~f:2 in
  checkb "non-FT spanner degrades" true
    (pw.Verify.worst > p.Verify.worst || pw.Verify.disconnections > 0)

let test_verify_report_counts () =
  let r = rng () in
  let g = Generators.cycle 8 in
  let sel = Selection.full g in
  let report = Verify.random ~cfg:(Verify.config ~rng:r ~trials:17 ()) sel ~mode:Fault.VFT ~stretch:3.0 ~f:2 in
  checki "trials counted" 17 report.Verify.checked

(* ------------------------- Baswana-Sen ------------------------------ *)

let test_bs_is_spanner_unweighted () =
  let r = rng () in
  for seed = 1 to 5 do
    let g = Generators.connected_gnp (Rng.create ~seed) ~n:60 ~p:0.2 in
    let sel = Baswana_sen.build r ~k:2 g in
    let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:0 in
    checkb "BS k=2 valid" true (Verify.ok report)
  done

let test_bs_is_spanner_weighted () =
  let r = rng () in
  for seed = 1 to 5 do
    let base = Generators.connected_gnp (Rng.create ~seed) ~n:50 ~p:0.25 in
    let g = Generators.with_uniform_weights (Rng.create ~seed:(seed + 100)) base ~lo:0.1 ~hi:9.0 in
    let sel = Baswana_sen.build r ~k:3 g in
    let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 3) ~f:0 in
    checkb "BS k=3 weighted valid" true (Verify.ok report)
  done

let test_bs_k1_returns_everything () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:20 ~p:0.3 in
  checki "1-spanner is G" (Graph.m g) (Baswana_sen.build r ~k:1 g).Selection.size

let test_bs_sparsifies () =
  let r = rng () in
  let g = Generators.complete 64 in
  let sel = Baswana_sen.build r ~k:2 g in
  (* expected O(k n^1.5) = ~2*512 = 1024 < 2016; allow generous slack *)
  checkb
    (Printf.sprintf "sparsified: %d < %d" sel.Selection.size (Graph.m g))
    true
    (sel.Selection.size < Graph.m g)

let test_bs_size_expected_bound () =
  let r = rng () in
  let k = 2 in
  let g = Generators.connected_gnp r ~n:200 ~p:0.25 in
  let total = ref 0 in
  let runs = 5 in
  for _ = 1 to runs do
    total := !total + (Baswana_sen.build r ~k g).Selection.size
  done;
  let avg = float_of_int !total /. float_of_int runs in
  let bound = float_of_int k *. (float_of_int 200 ** 1.5) in
  checkb (Printf.sprintf "avg %.0f within 3x of k n^{1+1/k} = %.0f" avg bound)
    true (avg <= 3. *. bound)

let test_bs_keeps_tree_edges_of_sparse () =
  let r = rng () in
  let g = Generators.path 15 in
  let sel = Baswana_sen.build r ~k:2 g in
  checki "trees survive" 14 sel.Selection.size

let test_bs_state_exposed () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let _, st = Baswana_sen.build_with_state r ~k:3 g in
  checki "phases" 2 st.Baswana_sen.phases;
  Array.iter
    (fun c -> checkb "center valid or retired" true (c >= -1 && c < 30))
    st.Baswana_sen.center_of

(* ----------------------------- DK11 ---------------------------------- *)

let test_dk11_iterations_formula () =
  checki "f=0" 1 (Dk11.iterations ~f:0 ~n:100 ());
  let j1 = Dk11.iterations ~f:1 ~n:100 () in
  let j4 = Dk11.iterations ~f:4 ~n:100 () in
  (* (f+1)^3 ratio: (5/2)^3 = 15.6 *)
  checkb "grows cubically" true (j4 >= 15 * j1);
  let jc = Dk11.iterations ~c:2.0 ~f:1 ~n:100 () in
  checkb "c scales" true (jc >= 2 * j1 - 1)

let test_dk11_f0_single_spanner () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.3 in
  let sel = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:0 g in
  let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:0 in
  checkb "valid" true (Verify.ok report)

let test_dk11_vft_exhaustive_small () =
  let r = rng () in
  let g = Generators.complete 12 in
  let sel = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:1 ~c:2.0 g in
  let report = Verify.exhaustive sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:1 in
  checkb "valid w.h.p." true (Verify.ok report)

let test_dk11_vft_sampled_medium () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.25 in
  let sel = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:2 ~c:1.5 g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:2
  in
  checkb "valid on adversarial samples" true (Verify.ok report)

let test_dk11_eft_sampled () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.3 in
  let sel = Dk11.build r ~mode:Fault.EFT ~k:2 ~f:2 ~c:1.5 g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) sel ~mode:Fault.EFT ~stretch:(stretch 2) ~f:2
  in
  checkb "EFT variant valid" true (Verify.ok report)

let test_dk11_custom_algo_plugged () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  (* plug the classic greedy instead of Baswana-Sen *)
  let algo _rng sub = Classic_greedy.build ~k:2 sub in
  let sel = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:1 ~algo g in
  let report =
    Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:40 ()) sel ~mode:Fault.VFT ~stretch:(stretch 2) ~f:1
  in
  checkb "valid with plugged algo" true (Verify.ok report)

let test_dk11_denser_than_greedy_at_large_f () =
  (* E8's claim, spot-checked: at f = 4 the DK11 union is denser than the
     polynomial greedy. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:80 ~p:0.3 in
  let dk = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:4 g in
  let greedy = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:4 g in
  checkb
    (Printf.sprintf "dk11 %d >= greedy %d" dk.Selection.size greedy.Selection.size)
    true
    (dk.Selection.size >= greedy.Selection.size)

(* ----------------------------- Bounds -------------------------------- *)

let test_bounds_formulas () =
  checkf "optimal k=1" (float_of_int (10 * 10)) (Bounds.optimal_size ~k:1 ~f:1 ~n:10);
  checkf "poly = k * optimal" (2. *. Bounds.optimal_size ~k:2 ~f:3 ~n:50)
    (Bounds.poly_greedy_size ~k:2 ~f:3 ~n:50);
  checkb "dk11 denser than optimal" true
    (Bounds.dk11_size ~k:2 ~f:4 ~n:100 > Bounds.optimal_size ~k:2 ~f:4 ~n:100)

let test_bounds_monotonicity () =
  checkb "grows in f" true
    (Bounds.optimal_size ~k:2 ~f:8 ~n:100 > Bounds.optimal_size ~k:2 ~f:2 ~n:100);
  checkb "grows in n" true
    (Bounds.optimal_size ~k:2 ~f:2 ~n:200 > Bounds.optimal_size ~k:2 ~f:2 ~n:100)

let test_bounds_log_log_slope () =
  (* y = 3 x^2 has log-log slope 2. *)
  let pts = List.map (fun x -> (x, 3. *. x *. x)) [ 1.; 2.; 4.; 8.; 16. ] in
  checkb "slope 2" true (abs_float (Bounds.log_log_slope pts -. 2.) < 1e-9);
  try
    ignore (Bounds.log_log_slope [ (1., 1.) ]);
    Alcotest.fail "single point should fail"
  with Invalid_argument _ -> ()

(* -------------------------- Spanner facade --------------------------- *)

let test_facade_dispatch () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let params = { Spanner.k = 2; f = 1; mode = Fault.VFT } in
  List.iter
    (fun algorithm ->
      let sel = Spanner.build ~rng:r ~algorithm params g in
      let report =
        Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:30 ()) sel ~mode:Fault.VFT
          ~stretch:(Spanner.stretch params) ~f:1
      in
      checkb (Spanner.algorithm_name algorithm) true (Verify.ok report))
    Spanner.all_algorithms

let test_facade_stretch () =
  checkf "stretch" 3.0 (Spanner.stretch { Spanner.k = 2; f = 1; mode = Fault.VFT })

let test_facade_summary () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.3 in
  let params = { Spanner.k = 2; f = 2; mode = Fault.VFT } in
  let sel = Spanner.build ~rng:r params g in
  let s = Spanner.summarize ~algorithm:Spanner.Greedy_poly params sel in
  checki "m source" (Graph.m g) s.Spanner.m_source;
  checki "m spanner" sel.Selection.size s.Spanner.m_spanner;
  checkb "ratio positive" true (s.Spanner.bound_ratio > 0.)

let () =
  Alcotest.run "baselines and support"
    [
      ( "fault",
        [
          Alcotest.test_case "masks vft" `Quick test_fault_masks_vft;
          Alcotest.test_case "masks eft" `Quick test_fault_masks_eft;
          Alcotest.test_case "dedup" `Quick test_fault_dedup;
          Alcotest.test_case "spares" `Quick test_fault_spares;
          Alcotest.test_case "random size/range" `Quick test_fault_random_size_and_range;
          Alcotest.test_case "random capped" `Quick test_fault_random_capped_by_universe;
          Alcotest.test_case "enumerate counts" `Quick test_fault_enumerate_counts;
          Alcotest.test_case "enumerate distinct" `Quick test_fault_enumerate_distinct;
          Alcotest.test_case "adversarial" `Quick test_fault_adversarial_near_edge;
        ] );
      ( "selection",
        [
          Alcotest.test_case "ids and mem" `Quick test_selection_of_ids_and_mem;
          Alcotest.test_case "union" `Quick test_selection_union;
          Alcotest.test_case "weight/subgraph" `Quick test_selection_weight_and_subgraph;
          Alcotest.test_case "blocked edges" `Quick test_selection_blocked_edges;
          Alcotest.test_case "full" `Quick test_selection_full;
          Alcotest.test_case "bad ids" `Quick test_selection_rejects_bad_ids;
        ] );
      ( "verify",
        [
          Alcotest.test_case "full ok" `Quick test_verify_full_selection_always_ok;
          Alcotest.test_case "detects bad" `Quick test_verify_detects_bad_spanner;
          Alcotest.test_case "tree f=0" `Quick test_verify_spanning_tree_f0;
          Alcotest.test_case "refuses huge" `Quick test_verify_exhaustive_refuses_huge;
          Alcotest.test_case "max stretch" `Quick test_verify_max_stretch;
          Alcotest.test_case "stretch profile" `Quick test_verify_stretch_profile;
          Alcotest.test_case "report counts" `Quick test_verify_report_counts;
        ] );
      ( "baswana-sen",
        [
          Alcotest.test_case "unweighted valid" `Quick test_bs_is_spanner_unweighted;
          Alcotest.test_case "weighted valid" `Quick test_bs_is_spanner_weighted;
          Alcotest.test_case "k=1 keeps all" `Quick test_bs_k1_returns_everything;
          Alcotest.test_case "sparsifies" `Quick test_bs_sparsifies;
          Alcotest.test_case "expected size" `Quick test_bs_size_expected_bound;
          Alcotest.test_case "trees survive" `Quick test_bs_keeps_tree_edges_of_sparse;
          Alcotest.test_case "state exposed" `Quick test_bs_state_exposed;
        ] );
      ( "dk11",
        [
          Alcotest.test_case "iteration formula" `Quick test_dk11_iterations_formula;
          Alcotest.test_case "f=0" `Quick test_dk11_f0_single_spanner;
          Alcotest.test_case "VFT exhaustive" `Quick test_dk11_vft_exhaustive_small;
          Alcotest.test_case "VFT sampled" `Quick test_dk11_vft_sampled_medium;
          Alcotest.test_case "EFT sampled" `Quick test_dk11_eft_sampled;
          Alcotest.test_case "plugged algo" `Quick test_dk11_custom_algo_plugged;
          Alcotest.test_case "denser than greedy" `Quick test_dk11_denser_than_greedy_at_large_f;
        ] );
      ( "bounds",
        [
          Alcotest.test_case "formulas" `Quick test_bounds_formulas;
          Alcotest.test_case "monotonicity" `Quick test_bounds_monotonicity;
          Alcotest.test_case "log-log slope" `Quick test_bounds_log_log_slope;
        ] );
      ( "facade",
        [
          Alcotest.test_case "dispatch" `Quick test_facade_dispatch;
          Alcotest.test_case "stretch" `Quick test_facade_stretch;
          Alcotest.test_case "summary" `Quick test_facade_summary;
        ] );
    ]
