(* Tests for the greedy spanner constructions: the classic non-fault-
   tolerant greedy (ADD+93), the exponential greedy baseline (Algorithm 1)
   and the paper's polynomial modified greedy (Algorithms 3/4).  Validation
   is against the exhaustive/sampled fault verifier and the exact size
   bounds. *)

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool

let rng () = Rng.create ~seed:99

let stretch k = float_of_int ((2 * k) - 1)

let assert_ft_spanner_exhaustive ?(max_sets = 2e6) sel ~mode ~k ~f label =
  let report = Verify.exhaustive ~cfg:(Verify.config ~max_sets ()) sel ~mode ~stretch:(stretch k) ~f in
  match report.Verify.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "%s: %s" label (Format.asprintf "%a" Verify.pp_violation v)

let assert_ft_spanner_sampled sel ~mode ~k ~f label =
  let cfg = Verify.config ~rng:(rng ()) ~trials:60 () in
  let a = Verify.random ~cfg sel ~mode ~stretch:(stretch k) ~f in
  let b = Verify.adversarial ~cfg sel ~mode ~stretch:(stretch k) ~f in
  (match a.Verify.violation with
  | None -> ()
  | Some v -> Alcotest.failf "%s random: %s" label (Format.asprintf "%a" Verify.pp_violation v));
  match b.Verify.violation with
  | None -> ()
  | Some v ->
      Alcotest.failf "%s adversarial: %s" label (Format.asprintf "%a" Verify.pp_violation v)

(* ------------------------ classic greedy ---------------------------- *)

let test_classic_tree_on_tree () =
  let g = Generators.path 8 in
  let sel = Classic_greedy.build ~k:2 g in
  checki "keeps every tree edge" (Graph.m g) sel.Selection.size

let test_classic_girth_property () =
  (* The (2k-1)-greedy output has girth > 2k. *)
  let r = rng () in
  List.iter
    (fun k ->
      let g = Generators.connected_gnp r ~n:60 ~p:0.25 in
      let sel = Classic_greedy.build ~k g in
      let sub = Selection.to_subgraph sel in
      checkb
        (Printf.sprintf "girth > %d for k=%d" (2 * k) k)
        true
        (Girth.girth_exceeds sub.Subgraph.graph ~bound:(2 * k)))
    [ 1; 2; 3 ]

let test_classic_is_spanner () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:50 ~p:0.2 in
  let sel = Classic_greedy.build ~k:2 g in
  (* f = 0 spanner check: empty fault set only *)
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:0 "classic k=2"

let test_classic_weighted_is_spanner () =
  let r = rng () in
  let g0 = Generators.connected_gnp r ~n:40 ~p:0.25 in
  let g = Generators.with_uniform_weights r g0 ~lo:0.5 ~hi:4.0 in
  let sel = Classic_greedy.build ~k:2 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:0 "classic weighted"

let test_classic_k1_keeps_everything () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:20 ~p:0.4 in
  let sel = Classic_greedy.build ~k:1 g in
  checki "1-spanner = G" (Graph.m g) sel.Selection.size

let test_classic_sparsifies_dense () =
  let g = Generators.complete 40 in
  let sel = Classic_greedy.build ~k:2 g in
  (* K_n with k=2: greedy keeps far fewer than all edges *)
  checkb "sparsified" true (sel.Selection.size < Graph.m g / 3)

(* --------------------- exponential greedy --------------------------- *)

let test_exp_greedy_matches_classic_at_f0 () =
  let r = rng () in
  for _ = 1 to 5 do
    let g = Generators.connected_gnp r ~n:25 ~p:0.3 in
    let a = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:0 g in
    let b = Classic_greedy.build ~k:2 g in
    checki "same size at f=0" b.Selection.size a.Selection.size
  done

let test_exp_greedy_cycle_f1 () =
  (* A cycle is its own unique 1-FT spanner: dropping any edge leaves a
     fault able to disconnect a pair. *)
  let g = Generators.cycle 9 in
  let sel = Exp_greedy.build ~mode:Fault.EFT ~k:2 ~f:1 g in
  checki "whole cycle kept" 9 sel.Selection.size

let test_exp_greedy_complete_exhaustive_vft () =
  let g = Generators.complete 10 in
  let sel = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:2 "exp greedy K10 f=2"

let test_exp_greedy_complete_exhaustive_eft () =
  let g = Generators.complete 8 in
  let sel = Exp_greedy.build ~mode:Fault.EFT ~k:2 ~f:1 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.EFT ~k:2 ~f:1 "exp greedy K8 EFT f=1"

let test_exp_greedy_random_exhaustive () =
  let r = rng () in
  for _ = 1 to 4 do
    let g = Generators.connected_gnp r ~n:14 ~p:0.35 in
    let sel = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
    assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:1 "exp greedy gnp f=1"
  done

let test_exp_greedy_weighted () =
  let r = rng () in
  let g0 = Generators.connected_gnp r ~n:14 ~p:0.4 in
  let g = Generators.with_uniform_weights r g0 ~lo:1.0 ~hi:3.0 in
  let sel = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:1 "exp greedy weighted"

let test_exp_exists_fault_set_basic () =
  (* Path 0-1-2: removing vertex 1 kills the only detour. *)
  let g = Generators.path 3 in
  checkb "single path is cuttable" true
    (Exp_greedy.exists_fault_set ~mode:Fault.VFT g ~u:0 ~v:2 ~budget:3. ~f:1);
  checkb "f=0 cannot cut an existing path" false
    (Exp_greedy.exists_fault_set ~mode:Fault.VFT g ~u:0 ~v:2 ~budget:3. ~f:0)

let test_exp_naive_agrees_with_branching () =
  (* The literal try-all-sets decision and the branch-and-bound decision
     implement the same predicate, so the two greedy variants must agree
     edge for edge. *)
  let r = rng () in
  for _ = 1 to 3 do
    let g = Generators.connected_gnp r ~n:12 ~p:0.4 in
    List.iter
      (fun mode ->
        let a = Exp_greedy.build ~mode ~k:2 ~f:2 g in
        let b = Exp_greedy.build_naive ~mode ~k:2 ~f:2 g in
        check (Alcotest.list Alcotest.int) "same selection" (Selection.ids a)
          (Selection.ids b))
      [ Fault.VFT; Fault.EFT ]
  done;
  (* and on a weighted instance *)
  let g0 = Generators.connected_gnp r ~n:10 ~p:0.5 in
  let g = Generators.with_uniform_weights r g0 ~lo:0.5 ~hi:3.0 in
  let a = Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  let b = Exp_greedy.build_naive ~mode:Fault.VFT ~k:2 ~f:1 g in
  check (Alcotest.list Alcotest.int) "same weighted selection" (Selection.ids a)
    (Selection.ids b)

let test_exp_exists_fault_set_budget () =
  (* 0-1 (1), 1-2 (1): total 2. budget 1.5 -> already no path, even f=0 *)
  let g = Graph.of_weighted_edges 3 [ (0, 1, 1.); (1, 2, 1.) ] in
  checkb "budget below distance" true
    (Exp_greedy.exists_fault_set ~mode:Fault.VFT g ~u:0 ~v:2 ~budget:1.5 ~f:0)

(* --------------------- polynomial greedy ---------------------------- *)

let test_poly_tree_keeps_tree () =
  let g = Generators.path 8 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  checki "keeps every bridge" (Graph.m g) sel.Selection.size

let test_poly_cycle_f1_eft () =
  let g = Generators.cycle 9 in
  let sel = Poly_greedy.build ~mode:Fault.EFT ~k:2 ~f:1 g in
  checki "whole cycle kept" 9 sel.Selection.size

let test_poly_f0_is_valid_spanner () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:40 ~p:0.25 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:0 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:0 "poly f=0"

let test_poly_exhaustive_small_vft () =
  let r = rng () in
  for _ = 1 to 4 do
    let g = Generators.connected_gnp r ~n:13 ~p:0.4 in
    let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
    assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:1 "poly VFT f=1"
  done

let test_poly_exhaustive_small_eft () =
  let r = rng () in
  for _ = 1 to 3 do
    let g = Generators.connected_gnp r ~n:12 ~p:0.4 in
    let sel = Poly_greedy.build ~mode:Fault.EFT ~k:2 ~f:1 g in
    assert_ft_spanner_exhaustive ~max_sets:3e6 sel ~mode:Fault.EFT ~k:2 ~f:1 "poly EFT f=1"
  done

let test_poly_exhaustive_f2 () =
  let g = Generators.complete 9 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:2 "poly K9 f=2"

let test_poly_sampled_medium () =
  let r = rng () in
  List.iter
    (fun (k, f, mode) ->
      let g = Generators.connected_gnp r ~n:70 ~p:0.15 in
      let sel = Poly_greedy.build ~mode ~k ~f g in
      assert_ft_spanner_sampled sel ~mode ~k ~f
        (Printf.sprintf "poly n=70 k=%d f=%d" k f))
    [ (2, 1, Fault.VFT); (2, 3, Fault.VFT); (3, 2, Fault.VFT); (2, 2, Fault.EFT) ]

let test_poly_weighted_correctness () =
  (* Theorem 10: Algorithm 4 on weighted graphs. *)
  let r = rng () in
  for _ = 1 to 3 do
    let g0 = Generators.connected_gnp r ~n:13 ~p:0.4 in
    let g = Generators.with_uniform_weights r g0 ~lo:0.5 ~hi:5.0 in
    let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
    assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:1 "poly weighted f=1"
  done

let test_poly_weighted_geometric () =
  let r = rng () in
  let g = Generators.random_geometric r ~n:60 ~radius:0.35 ~euclidean_weights:true in
  let g = Generators.ensure_connected r g in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  assert_ft_spanner_sampled sel ~mode:Fault.VFT ~k:2 ~f:2 "poly geometric"

let test_poly_size_bound_theorem8 () =
  (* |E(H)| <= O(k f^{1-1/k} n^{1+1/k}); with the hidden constant ~1 the
     measured ratio should be well below a small constant on G(n,p). *)
  let r = rng () in
  List.iter
    (fun (k, f) ->
      let g = Generators.connected_gnp r ~n:150 ~p:0.3 in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k ~f g in
      let bound = Bounds.poly_greedy_size ~k ~f ~n:150 in
      checkb
        (Printf.sprintf "size %d within 3x bound %.0f (k=%d f=%d)"
           sel.Selection.size bound k f)
        true
        (float_of_int sel.Selection.size <= 3. *. bound))
    [ (2, 1); (2, 2); (2, 4); (3, 2) ]

let test_poly_unweighted_order_invariance_of_validity () =
  (* Theorem 8 holds for any order; on unit weights every order also keeps
     correctness.  Check a few shuffles. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:12 ~p:0.45 in
  List.iter
    (fun order ->
      let sel = Poly_greedy.build ~order ~mode:Fault.VFT ~k:2 ~f:1 g in
      assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:1 "poly shuffled")
    [
      Poly_greedy.Input_order;
      Poly_greedy.Shuffled (Rng.create ~seed:5);
      Poly_greedy.Shuffled (Rng.create ~seed:6);
      Poly_greedy.Reverse_weight;
    ]

let test_poly_explicit_order_checked () =
  let g = Generators.cycle 5 in
  (try
     ignore
       (Poly_greedy.build
          ~order:(Poly_greedy.Explicit [| 0; 1 |])
          ~mode:Fault.VFT ~k:2 ~f:1 g);
     Alcotest.fail "short permutation should fail"
   with Invalid_argument _ -> ());
  try
    ignore
      (Poly_greedy.build
         ~order:(Poly_greedy.Explicit [| 0; 1; 2; 3; 3 |])
         ~mode:Fault.VFT ~k:2 ~f:1 g);
    Alcotest.fail "duplicate id should fail"
  with Invalid_argument _ -> ()

let test_poly_subset_of_source () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  List.iter
    (fun id -> checkb "id valid" true (id >= 0 && id < Graph.m g))
    (Selection.ids sel)

let test_poly_trace_counters () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:30 ~p:0.3 in
  let sel, trace = Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f:2 g in
  checki "one LBC call per edge" (Graph.m g) trace.Poly_greedy.lbc_calls;
  checki "yes = size" sel.Selection.size trace.Poly_greedy.yes_answers;
  checkb "bfs rounds within (f+1) m" true
    (trace.Poly_greedy.bfs_rounds <= 3 * Graph.m g)

let test_poly_monotone_in_f () =
  (* More fault tolerance never yields a *smaller* spanner on the same
     graph with the same deterministic order... not a theorem, but the
     LBC test is monotone in alpha, so YES answers only grow with f given
     identical prefixes.  We check the weaker, always-true fact: f' > f
     spanners are supersets when built in the same order?  Also not
     guaranteed (H evolves differently).  So: sizes should be weakly
     increasing across f on average; we check a fixed instance family and
     allow equality. *)
  let r = rng () in
  let g = Generators.connected_gnp r ~n:60 ~p:0.25 in
  let size f = (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g).Selection.size in
  let s1 = size 1 and s2 = size 2 and s4 = size 4 in
  checkb "f=2 >= f=1" true (s2 >= s1);
  checkb "f=4 >= f=2" true (s4 >= s2)

let test_poly_vs_exp_size_ratio () =
  (* Theorem 2's price: poly greedy is within ~k of the exponential greedy
     (plus slack).  We allow 2k to be safe on small instances. *)
  let r = rng () in
  let total_poly = ref 0 and total_exp = ref 0 in
  for _ = 1 to 5 do
    let g = Generators.connected_gnp r ~n:16 ~p:0.35 in
    let k = 2 and f = 1 in
    let p = Poly_greedy.build ~mode:Fault.VFT ~k ~f g in
    let e = Exp_greedy.build ~mode:Fault.VFT ~k ~f g in
    total_poly := !total_poly + p.Selection.size;
    total_exp := !total_exp + e.Selection.size
  done;
  checkb
    (Printf.sprintf "poly (%d) within 2k of exp (%d)" !total_poly !total_exp)
    true
    (!total_poly <= 2 * 2 * !total_exp);
  checkb "exp not larger than poly on average" true (!total_exp <= !total_poly + 5)

let test_poly_disconnected_graph () =
  let g = Graph.of_edges 6 [ (0, 1); (1, 2); (3, 4); (4, 5) ] in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  checki "keeps both components' bridges" 4 sel.Selection.size;
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:2 ~f:1 "poly disconnected"

let test_poly_empty_and_tiny () =
  let g = Graph.create 0 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  checki "empty graph" 0 sel.Selection.size;
  let g1 = Graph.create 1 in
  checki "single vertex" 0 (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g1).Selection.size;
  let g2 = Graph.of_edges 2 [ (0, 1) ] in
  checki "single edge kept" 1 (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g2).Selection.size

let test_poly_rejects_bad_params () =
  let g = Generators.cycle 4 in
  (try
     ignore (Poly_greedy.build ~mode:Fault.VFT ~k:0 ~f:1 g);
     Alcotest.fail "k=0 should fail"
   with Invalid_argument _ -> ());
  try
    ignore (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:(-1) g);
    Alcotest.fail "f<0 should fail"
  with Invalid_argument _ -> ()

let test_poly_k3_stretch5 () =
  let r = rng () in
  let g = Generators.connected_gnp r ~n:12 ~p:0.5 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:3 ~f:1 g in
  assert_ft_spanner_exhaustive sel ~mode:Fault.VFT ~k:3 ~f:1 "poly k=3";
  (* a 5-spanner may be sparser than a 3-spanner *)
  let sel3 = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  checkb "k=3 not denser than k=2" true (sel.Selection.size <= sel3.Selection.size)

let test_poly_structured_graphs () =
  List.iter
    (fun (name, g) ->
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
      assert_ft_spanner_sampled sel ~mode:Fault.VFT ~k:2 ~f:2 name)
    [
      ("grid", Generators.grid ~rows:6 ~cols:6);
      ("torus", Generators.torus ~rows:5 ~cols:5);
      ("hypercube", Generators.hypercube ~dim:5);
      ("complete", Generators.complete 24);
    ]

let () =
  Alcotest.run "greedy spanners"
    [
      ( "classic (ADD+93)",
        [
          Alcotest.test_case "tree" `Quick test_classic_tree_on_tree;
          Alcotest.test_case "girth > 2k" `Quick test_classic_girth_property;
          Alcotest.test_case "is a spanner" `Quick test_classic_is_spanner;
          Alcotest.test_case "weighted" `Quick test_classic_weighted_is_spanner;
          Alcotest.test_case "k=1 keeps all" `Quick test_classic_k1_keeps_everything;
          Alcotest.test_case "sparsifies" `Quick test_classic_sparsifies_dense;
        ] );
      ( "exponential (Algorithm 1)",
        [
          Alcotest.test_case "matches classic at f=0" `Quick test_exp_greedy_matches_classic_at_f0;
          Alcotest.test_case "cycle f=1" `Quick test_exp_greedy_cycle_f1;
          Alcotest.test_case "K10 exhaustive VFT" `Quick test_exp_greedy_complete_exhaustive_vft;
          Alcotest.test_case "K8 exhaustive EFT" `Quick test_exp_greedy_complete_exhaustive_eft;
          Alcotest.test_case "gnp exhaustive" `Quick test_exp_greedy_random_exhaustive;
          Alcotest.test_case "weighted" `Quick test_exp_greedy_weighted;
          Alcotest.test_case "naive agrees" `Quick test_exp_naive_agrees_with_branching;
          Alcotest.test_case "decision basics" `Quick test_exp_exists_fault_set_basic;
          Alcotest.test_case "decision budget" `Quick test_exp_exists_fault_set_budget;
        ] );
      ( "polynomial (Algorithms 3/4)",
        [
          Alcotest.test_case "tree" `Quick test_poly_tree_keeps_tree;
          Alcotest.test_case "cycle EFT" `Quick test_poly_cycle_f1_eft;
          Alcotest.test_case "f=0 valid" `Quick test_poly_f0_is_valid_spanner;
          Alcotest.test_case "exhaustive VFT f=1" `Quick test_poly_exhaustive_small_vft;
          Alcotest.test_case "exhaustive EFT f=1" `Quick test_poly_exhaustive_small_eft;
          Alcotest.test_case "exhaustive f=2" `Quick test_poly_exhaustive_f2;
          Alcotest.test_case "sampled medium" `Quick test_poly_sampled_medium;
          Alcotest.test_case "weighted (Thm 10)" `Quick test_poly_weighted_correctness;
          Alcotest.test_case "weighted geometric" `Quick test_poly_weighted_geometric;
          Alcotest.test_case "size bound (Thm 8)" `Quick test_poly_size_bound_theorem8;
          Alcotest.test_case "order invariance" `Quick test_poly_unweighted_order_invariance_of_validity;
          Alcotest.test_case "explicit order checked" `Quick test_poly_explicit_order_checked;
          Alcotest.test_case "subset of source" `Quick test_poly_subset_of_source;
          Alcotest.test_case "trace counters" `Quick test_poly_trace_counters;
          Alcotest.test_case "monotone in f" `Quick test_poly_monotone_in_f;
          Alcotest.test_case "poly vs exp size" `Quick test_poly_vs_exp_size_ratio;
          Alcotest.test_case "disconnected" `Quick test_poly_disconnected_graph;
          Alcotest.test_case "tiny graphs" `Quick test_poly_empty_and_tiny;
          Alcotest.test_case "bad params" `Quick test_poly_rejects_bad_params;
          Alcotest.test_case "k=3" `Quick test_poly_k3_stretch5;
          Alcotest.test_case "structured graphs" `Quick test_poly_structured_graphs;
        ] );
    ]
