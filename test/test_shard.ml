(* Tests of the native decomposition-sharded builder (lib/core/shard):
   the differential harness of the sharding PR.

   - Shard_partition must compute the exact fixed point the simulated
     Decomposition floods to (same seed, same clustering, bit for bit);
   - Shard_build must produce valid f-VFT/f-EFT spanners within the
     paper's O(log n) size factor of the sequential build, bit-identical
     at every pool size, across storage backends, and on seed replay;
   - Dk11's pooled path must be bit-identical at every pool size. *)

let check = Alcotest.check
let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkil = check (Alcotest.list Alcotest.int)
let rng ?(seed = 0x5AD3) () = Rng.create ~seed

let graph_families () =
  let r = rng () in
  [
    ("gnp", Generators.connected_gnp r ~n:80 ~p:0.15);
    ("grid", Generators.grid ~rows:8 ~cols:8);
    ( "hard",
      Lower_bound.hard_instance ~f:1 (Lower_bound.projective_plane_incidence ~q:3)
    );
  ]

let log2n g = log (float_of_int (max 2 (Graph.n g))) /. log 2.

(* ----------------- native vs simulated decomposition ----------------- *)

(* Same seed, same fixed point: centres, depths, coverage and the round
   horizon all agree with the Net-flooded run.  (Parents may differ on
   equal-key relays — both are valid shortest-path trees — so they are
   deliberately not compared.) *)
let test_partition_matches_simulation () =
  List.iter
    (fun (name, g) ->
      let native = Shard_partition.run (Rng.create ~seed:91) g in
      let simulated = Decomposition.run (Rng.create ~seed:91) g in
      checki (name ^ ": partition count")
        (Array.length simulated.Decomposition.partitions)
        (Array.length native.Shard_partition.partitions);
      checki (name ^ ": horizon = rounds") simulated.Decomposition.rounds
        native.Shard_partition.horizon;
      checki (name ^ ": max depth") simulated.Decomposition.max_depth
        native.Shard_partition.max_depth;
      Array.iteri
        (fun p (nc : Shard_partition.clustering) ->
          let sc = simulated.Decomposition.partitions.(p) in
          checkil
            (Printf.sprintf "%s: centers of partition %d" name p)
            (Array.to_list sc.Decomposition.center_of)
            (Array.to_list nc.Shard_partition.center_of);
          checkil
            (Printf.sprintf "%s: depths of partition %d" name p)
            (Array.to_list sc.Decomposition.depth_of)
            (Array.to_list nc.Shard_partition.depth_of))
        native.Shard_partition.partitions;
      check
        (Alcotest.list Alcotest.bool)
        (name ^ ": covered edges")
        (Array.to_list simulated.Decomposition.covered)
        (Array.to_list native.Shard_partition.covered))
    (graph_families ())

let test_partition_replay_determinism () =
  let g = Generators.connected_gnp (rng ()) ~n:70 ~p:0.12 in
  let run () = Shard_partition.run (Rng.create ~seed:17) ~beta:0.3 g in
  let a = run () and b = run () in
  Array.iteri
    (fun p (c : Shard_partition.clustering) ->
      checkil
        (Printf.sprintf "replayed centers of partition %d" p)
        (Array.to_list c.Shard_partition.center_of)
        (Array.to_list b.Shard_partition.partitions.(p).Shard_partition.center_of))
    a.Shard_partition.partitions

let test_members_partition_vertices () =
  let g = Generators.connected_gnp (rng ()) ~n:50 ~p:0.1 in
  let part = Shard_partition.run (Rng.create ~seed:3) g in
  Array.iter
    (fun (c : Shard_partition.clustering) ->
      let seen = Array.make (Graph.n g) 0 in
      List.iter
        (fun (ctr, ms) ->
          checki "centre is its own centre" ctr c.Shard_partition.center_of.(ctr);
          checkb "centre listed among members" true (List.mem ctr ms);
          List.iter (fun v -> seen.(v) <- seen.(v) + 1) ms)
        (Shard_partition.members c);
      Array.iteri
        (fun v count ->
          checki (Printf.sprintf "vertex %d in exactly one cluster" v) 1 count)
        seen)
    part.Shard_partition.partitions

let test_partition_rejects_bad_arguments () =
  let g = Generators.grid ~rows:3 ~cols:3 in
  List.iter
    (fun beta ->
      try
        ignore (Shard_partition.run (rng ()) ~beta g);
        Alcotest.fail "beta outside (0,1) should fail"
      with Invalid_argument _ -> ())
    [ 0.0; 1.0; -0.5 ];
  try
    ignore (Shard_partition.run (rng ()) ~partitions:0 g);
    Alcotest.fail "partitions=0 should fail"
  with Invalid_argument _ -> ()

(* --------------------------- sharded build --------------------------- *)

let shard ?pool ?engine ~mode ~k ~f ~seed g =
  Shard_build.build ?pool ?engine ~rng:(Rng.create ~seed) ~mode ~k ~f g

let test_build_is_valid_spanner () =
  List.iter
    (fun (name, g) ->
      List.iter
        (fun mode ->
          let res = shard ~mode ~k:2 ~f:1 ~seed:5 g in
          let cfg = Verify.config ~rng:(rng ()) ~trials:30 () in
          checkb
            (name ^ ": random battery")
            true
            (Verify.ok
               (Verify.random ~cfg res.Shard_build.selection ~mode ~stretch:3.0
                  ~f:1));
          checkb
            (name ^ ": adversarial battery")
            true
            (Verify.ok
               (Verify.adversarial ~cfg res.Shard_build.selection ~mode
                  ~stretch:3.0 ~f:1)))
        [ Fault.VFT; Fault.EFT ])
    (graph_families ())

let test_build_within_log_factor () =
  List.iter
    (fun (name, g) ->
      let seq =
        Spanner.build { Spanner.k = 2; f = 1; mode = Fault.VFT } g
      in
      let res = shard ~mode:Fault.VFT ~k:2 ~f:1 ~seed:5 g in
      let bound = log2n g *. float_of_int seq.Selection.size in
      checkb
        (Printf.sprintf "%s: sharded %d <= log2(n) * sequential %d" name
           res.Shard_build.selection.Selection.size seq.Selection.size)
        true
        (float_of_int res.Shard_build.selection.Selection.size <= bound))
    (graph_families ())

let test_build_bit_identical_across_pool_sizes () =
  List.iter
    (fun (name, g) ->
      let reference =
        Selection.ids (shard ~mode:Fault.VFT ~k:2 ~f:1 ~seed:11 g).Shard_build.selection
      in
      List.iter
        (fun domains ->
          Exec.Pool.with_pool ~domains @@ fun pool ->
          let sel =
            (shard ~pool ~mode:Fault.VFT ~k:2 ~f:1 ~seed:11 g)
              .Shard_build.selection
          in
          checkil
            (Printf.sprintf "%s: jobs=%d matches no-pool build" name domains)
            reference (Selection.ids sel))
        [ 1; 2; 4 ])
    (graph_families ())

let test_build_bit_identical_across_backends () =
  let g = Generators.connected_gnp (rng ()) ~n:60 ~p:0.15 in
  let g32 = Graph.with_backend Csr.Int32_bigarray g in
  let ids g = Selection.ids (shard ~mode:Fault.VFT ~k:2 ~f:1 ~seed:29 g).Shard_build.selection in
  checkil "int vs int32 selections" (ids g) (ids g32)

let test_build_replay_determinism () =
  let g = Generators.connected_gnp (rng ()) ~n:60 ~p:0.15 in
  let run () = shard ~mode:Fault.EFT ~k:2 ~f:1 ~seed:41 g in
  let a = run () and b = run () in
  checkil "replayed selections"
    (Selection.ids a.Shard_build.selection)
    (Selection.ids b.Shard_build.selection);
  checki "replayed cluster count" a.Shard_build.clusters b.Shard_build.clusters;
  checki "replayed boundary count" a.Shard_build.boundary_edges
    b.Shard_build.boundary_edges

let test_build_exponential_engine () =
  let g = Generators.connected_gnp (rng ()) ~n:24 ~p:0.25 in
  let res =
    shard ~engine:Shard_build.Exponential ~mode:Fault.VFT ~k:2 ~f:1 ~seed:13 g
  in
  checkb "exp-engine shard is a valid spanner" true
    (Verify.ok
       (Verify.exhaustive res.Shard_build.selection ~mode:Fault.VFT
          ~stretch:3.0 ~f:1))

let test_boundary_edges_force_kept () =
  (* With a single partition, padding fails for some edges on most seeds;
     every uncovered edge must appear in the selection. *)
  let g = Generators.connected_gnp (rng ()) ~n:40 ~p:0.1 in
  let res =
    Shard_build.build ~rng:(Rng.create ~seed:2) ~partitions:1 ~mode:Fault.VFT
      ~k:2 ~f:1 g
  in
  let uncovered = ref 0 in
  Array.iteri
    (fun id covered ->
      if not covered then begin
        incr uncovered;
        checkb
          (Printf.sprintf "uncovered edge %d kept" id)
          true
          (Selection.mem res.Shard_build.selection id)
      end)
    res.Shard_build.partition.Shard_partition.covered;
  checki "boundary counter matches uncovered edges" !uncovered
    res.Shard_build.boundary_edges

(* ------------------------- facade and dk11 --------------------------- *)

let test_spanner_facade_shard_option () =
  let g = Generators.connected_gnp (rng ()) ~n:50 ~p:0.15 in
  let params = { Spanner.k = 2; f = 1; mode = Fault.VFT } in
  let direct =
    Selection.ids (shard ~mode:Fault.VFT ~k:2 ~f:1 ~seed:0x5eed g).Shard_build.selection
  in
  let via_facade =
    Selection.ids
      (Spanner.build ~rng:(Rng.create ~seed:0x5eed)
         ~options:(Spanner.options ~shard:true ()) params g)
  in
  checkil "facade ~shard:true routes through Shard_build" direct via_facade

let test_dk11_pooled_bit_identical () =
  let g = Generators.connected_gnp (rng ()) ~n:40 ~p:0.12 in
  let build pool =
    Selection.ids
      (Dk11.build (Rng.create ~seed:77) ~mode:Fault.VFT ~k:2 ~f:1 ~pool g)
  in
  let reference = Exec.Pool.with_pool ~domains:1 build in
  List.iter
    (fun domains ->
      Exec.Pool.with_pool ~domains @@ fun pool ->
      checkil
        (Printf.sprintf "dk11 jobs=%d matches jobs=1" domains)
        reference (build pool))
    [ 2; 4 ];
  let sel =
    Exec.Pool.with_pool ~domains:4 (fun pool ->
        Dk11.build (Rng.create ~seed:77) ~mode:Fault.VFT ~k:2 ~f:1 ~pool g)
  in
  let cfg = Verify.config ~rng:(rng ()) ~trials:30 () in
  checkb "pooled dk11 is a valid spanner" true
    (Verify.ok (Verify.random ~cfg sel ~mode:Fault.VFT ~stretch:3.0 ~f:1))

(* --------------------------- qcheck sweep ---------------------------- *)

let arb_instance =
  QCheck.make
    ~print:(fun (seed, n, p) -> Printf.sprintf "(seed=%d, n=%d, p=%d%%)" seed n p)
    QCheck.Gen.(triple (int_range 1 1000) (int_range 8 14) (int_range 25 50))

let prop_shard_valid mode name =
  QCheck.Test.make ~count:25 ~name arb_instance (fun (seed, n, p) ->
      let g =
        Generators.connected_gnp (Rng.create ~seed) ~n
          ~p:(float_of_int p /. 100.)
      in
      let res = shard ~mode ~k:2 ~f:1 ~seed g in
      Verify.ok
        (Verify.exhaustive res.Shard_build.selection ~mode ~stretch:3.0 ~f:1))

let prop_shard_valid_vft =
  prop_shard_valid Fault.VFT "shard: random instances stay valid (VFT)"

let prop_shard_valid_eft =
  prop_shard_valid Fault.EFT "shard: random instances stay valid (EFT)"

let () =
  Alcotest.run "shard"
    [
      ( "partition",
        [
          Alcotest.test_case "matches simulated decomposition" `Quick
            test_partition_matches_simulation;
          Alcotest.test_case "replay determinism" `Quick
            test_partition_replay_determinism;
          Alcotest.test_case "members partition the vertices" `Quick
            test_members_partition_vertices;
          Alcotest.test_case "error surface" `Quick
            test_partition_rejects_bad_arguments;
        ] );
      ( "build",
        [
          Alcotest.test_case "valid spanner" `Quick test_build_is_valid_spanner;
          Alcotest.test_case "within log factor" `Quick
            test_build_within_log_factor;
          Alcotest.test_case "bit-identical across pool sizes" `Quick
            test_build_bit_identical_across_pool_sizes;
          Alcotest.test_case "bit-identical across backends" `Quick
            test_build_bit_identical_across_backends;
          Alcotest.test_case "replay determinism" `Quick
            test_build_replay_determinism;
          Alcotest.test_case "exponential engine" `Quick
            test_build_exponential_engine;
          Alcotest.test_case "boundary edges force-kept" `Quick
            test_boundary_edges_force_kept;
        ] );
      ( "facade",
        [
          Alcotest.test_case "Spanner ~shard:true" `Quick
            test_spanner_facade_shard_option;
          Alcotest.test_case "dk11 pooled determinism" `Quick
            test_dk11_pooled_bit_identical;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_shard_valid_vft;
          QCheck_alcotest.to_alcotest prop_shard_valid_eft;
        ] );
    ]
