(* ftspan: command-line front end for the fault-tolerant spanner library.

   Subcommands:
     generate   write a graph from one of the workload families
     info       print statistics of a graph file
     build      construct a fault-tolerant spanner and report its summary
     verify     check a spanner selection against sampled/exhaustive faults
     dynamic    replay an update/query script against the dynamic service
     local      run the LOCAL-model construction on the simulator
     congest    run the CONGEST-model construction on the simulator
     trace      offline analysis of recorded event traces *)

open Cmdliner

(* ------------------------- shared arguments ------------------------- *)

let seed_arg =
  let doc = "PRNG seed (all randomness in the tool is derived from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let k_arg =
  let doc = "Stretch parameter: the spanner has stretch 2k-1." in
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)

let f_arg =
  let doc = "Number of faults to tolerate." in
  Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc)

let mode_arg =
  let doc = "Fault mode: $(b,vertex) (VFT) or $(b,edge) (EFT)." in
  let enum_conv =
    Arg.enum [ ("vertex", Fault.VFT); ("edge", Fault.EFT); ("vft", Fault.VFT); ("eft", Fault.EFT) ]
  in
  Arg.(value & opt enum_conv Fault.VFT & info [ "mode" ] ~docv:"MODE" ~doc)

let graph_arg =
  let doc = "Input graph file (see ftspan generate for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

(* The execution/observability flag grammar (--jobs, --backend, --chaos,
   --trace, --metrics-stream, --metrics) is shared with bench/main.exe
   through Cli_flags, so every front end parses and errors identically. *)
let backend_arg = Cli_flags.backend_arg
let jobs_arg = Cli_flags.jobs_arg
let shard_arg = Cli_flags.shard_arg
let resolve_jobs = Cli_flags.resolve_jobs
let with_jobs = Cli_flags.with_jobs
let metrics_arg = Cli_flags.metrics_arg
let with_metrics = Cli_flags.with_metrics
let trace_arg = Cli_flags.trace_arg
let with_trace = Cli_flags.with_trace
let stream_arg = Cli_flags.stream_arg
let with_stream = Cli_flags.with_stream
let chaos_arg = Cli_flags.chaos_arg

(* Binary-format failures carry their own exit-code contract (exit 2
   when the file is not an ftspan graph at all, exit 1 when it is one
   but unusable) — report directly, like trace analyze does. *)
let load_graph ?backend file =
  try Ok (Graph_io.load ?backend file) with
  | Failure msg -> Error (`Msg msg)
  | Sys_error msg -> Error (`Msg msg)
  | Graph_binio.Not_a_graph msg ->
      Printf.eprintf "ftspan: %s\n" msg;
      exit 2
  | Graph_binio.Corrupt msg ->
      Printf.eprintf "ftspan: %s\n" msg;
      exit 1

(* --------------------------- generate -------------------------------- *)

let family_arg =
  let doc =
    "Graph family: gnp, gnm, complete, grid, torus, hypercube, geometric, \
     ba (Barabasi-Albert), regular, cycle-chords, projective (incidence \
     graph of PG(2,n), n prime), hard (BDPW18 lower-bound blow-up, n = \
     plane order, extra = f)."
  in
  Arg.(value & opt string "gnp" & info [ "family" ] ~docv:"FAMILY" ~doc)

let n_arg =
  let doc = "Number of vertices (or side/dimension for structured families)." in
  Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)

let p_arg =
  let doc = "Edge probability / radius / density parameter." in
  Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc)

let extra_arg =
  let doc = "Secondary integer parameter (gnm edges, BA attachment, degree, chords)." in
  Arg.(value & opt int 3 & info [ "extra" ] ~docv:"INT" ~doc)

let weights_arg =
  let doc = "Redraw edge weights uniformly from [LO,HI] (format LO,HI)." in
  Arg.(value & opt (some (pair ~sep:',' float float)) None & info [ "weights" ] ~docv:"LO,HI" ~doc)

let connect_arg =
  let doc = "Add random edges until the graph is connected." in
  Arg.(value & flag & info [ "connect" ] ~doc)

let out_arg =
  let doc =
    "Output file.  A $(b,.ftsb) extension writes the binary \
     ftspan.graph.v1 format (loads ~10-100x faster at the \
     million-edge tier); anything else writes text."
  in
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let generate_cmd =
  let run seed family n p extra weights connect out =
    let rng = Rng.create ~seed in
    let result =
      match family with
      | "gnp" -> Ok (Generators.gnp rng ~n ~p)
      | "gnm" -> Ok (Generators.gnm rng ~n ~m:extra)
      | "complete" -> Ok (Generators.complete n)
      | "grid" -> Ok (Generators.grid ~rows:n ~cols:n)
      | "torus" -> Ok (Generators.torus ~rows:n ~cols:n)
      | "hypercube" -> Ok (Generators.hypercube ~dim:n)
      | "geometric" -> Ok (Generators.random_geometric rng ~n ~radius:p ~euclidean_weights:true)
      | "ba" -> Ok (Generators.barabasi_albert rng ~n ~attach:extra)
      | "regular" -> Ok (Generators.random_regular rng ~n ~d:extra)
      | "cycle-chords" -> Ok (Generators.cycle_with_chords rng ~n ~chords:extra)
      | "projective" ->
          (* n is the plane order q (prime) *)
          (try Ok (Lower_bound.projective_plane_incidence ~q:n)
           with Invalid_argument msg -> Error (`Msg msg))
      | "hard" ->
          (* the BDPW18 lower-bound instance: n = plane order, extra = f *)
          (try
             Ok
               (Lower_bound.hard_instance ~f:extra
                  (Lower_bound.projective_plane_incidence ~q:n))
           with Invalid_argument msg -> Error (`Msg msg))
      | other -> Error (`Msg (Printf.sprintf "unknown family %S" other))
    in
    match result with
    | Error e -> Error e
    | Ok g ->
        let g = if connect then Generators.ensure_connected rng g else g in
        let g =
          match weights with
          | Some (lo, hi) -> Generators.with_uniform_weights rng g ~lo ~hi
          | None -> g
        in
        Graph_io.save g out;
        Printf.printf "wrote %s%s: %s\n" out
          (if Filename.check_suffix out Graph_io.binary_suffix then
             " (ftspan.graph.v1)"
           else "")
          (Format.asprintf "%a" Stats.pp (Stats.compute g));
        Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ family_arg $ n_arg $ p_arg $ extra_arg
       $ weights_arg $ connect_arg $ out_arg))
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a workload graph.") term

(* ----------------------------- info ---------------------------------- *)

let info_cmd =
  let run backend file =
    Result.map
      (fun g ->
        Printf.printf "%s\n" (Format.asprintf "%a" Stats.pp (Stats.compute g));
        Printf.printf "storage: %s backend, %d adjacency bytes\n"
          (Csr.backend_name (Graph.backend g))
          (Graph.resident_bytes g);
        Printf.printf "diameter (hops): %d\n" (Stats.diameter g);
        match Girth.girth g with
        | Some girth -> Printf.printf "girth: %d\n" girth
        | None -> Printf.printf "girth: none (forest)\n")
      (load_graph ?backend file)
  in
  let term = Term.(term_result (const run $ backend_arg $ graph_arg)) in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of a graph file.") term

(* ----------------------------- build ---------------------------------- *)

let algo_arg =
  let doc = "Algorithm: greedy-poly (Algorithms 3/4), greedy-exp (Algorithm 1), dk11." in
  let enum_conv =
    Arg.enum
      [
        ("greedy-poly", Spanner.Greedy_poly);
        ("greedy-exp", Spanner.Greedy_exponential);
        ("dk11", Spanner.Dinitz_krauthgamer);
      ]
  in
  Arg.(value & opt enum_conv Spanner.Greedy_poly & info [ "algo" ] ~docv:"ALGO" ~doc)

let batch_arg =
  let doc =
    "Decision-batch size for the greedy: edges per block decided against \
     the same frozen partial spanner.  $(b,--jobs) parallelism applies \
     within a block, so batching trades spanner size for parallel \
     speedup (experiment E12 quantifies the curve).  Defaults to 1 \
     (fully sequential decisions) when $(b,--jobs) is 1, else 512.  \
     Applies to greedy-poly only."
  in
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"B" ~doc)

let spanner_out_arg =
  let doc = "Write the selected edge ids (one per line) to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let dot_out_arg =
  let doc = "Write a Graphviz rendering (spanner edges highlighted)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let save_selection sel file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun id -> output_string oc (string_of_int id ^ "\n")) (Selection.ids sel))

let build_cmd =
  let run seed k f mode algo jobs shard batch backend metrics trace stream file
      out dot =
    match (resolve_jobs jobs, batch) with
    | Error _ as e, _ -> e
    | _, Some b when b < 1 ->
        Error (`Msg (Printf.sprintf "--batch must be >= 1 (got %d)" b))
    | Ok jobs, batch ->
    let batch =
      match batch with Some b -> b | None -> if jobs > 1 then 512 else 1
    in
    Result.map
      (fun g ->
        with_metrics metrics ~id:"build" @@ fun () ->
        with_stream stream @@ fun () ->
        with_trace trace @@ fun () ->
        with_jobs jobs @@ fun pool ->
        let rng = Rng.create ~seed in
        let params = { Spanner.k; f; mode } in
        let options = Spanner.options ~batch ?pool ~shard () in
        let clusters0 = Obs.Counter.value (Obs.counter "shard.clusters") in
        let boundary0 = Obs.Counter.value (Obs.counter "shard.boundary_edges") in
        let t0 = Unix.gettimeofday () in
        let sel = Spanner.build ~rng ~algorithm:algo ~options params g in
        let dt = Unix.gettimeofday () -. t0 in
        let summary = Spanner.summarize ~algorithm:algo params sel in
        Printf.printf "%s\n" (Format.asprintf "%a" Spanner.pp_summary summary);
        Printf.printf "build time: %.3f s\n" dt;
        if shard then
          Printf.printf "shard: %d clusters, %d boundary edges kept\n"
            (Obs.Counter.value (Obs.counter "shard.clusters") - clusters0)
            (Obs.Counter.value (Obs.counter "shard.boundary_edges") - boundary0);
        Option.iter
          (fun file ->
            save_selection sel file;
            Printf.printf "selection written to %s\n" file)
          out;
        Option.iter
          (fun file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Graph_io.to_dot ~highlight:sel.Selection.selected g));
            Printf.printf "dot rendering written to %s\n" file)
          dot)
      (load_graph ?backend file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ algo_arg $ jobs_arg
       $ shard_arg $ batch_arg $ backend_arg $ metrics_arg $ trace_arg
       $ stream_arg $ graph_arg $ spanner_out_arg $ dot_out_arg))
  in
  Cmd.v (Cmd.info "build" ~doc:"Construct a fault-tolerant spanner.") term

(* ----------------------------- verify --------------------------------- *)

let selection_arg =
  let doc = "Selection file (edge ids, one per line) produced by ftspan build." in
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SELECTION" ~doc)

let trials_arg =
  let doc = "Number of sampled fault sets per sampler." in
  Arg.(value & opt int 200 & info [ "trials" ] ~docv:"N" ~doc)

let exhaustive_arg =
  let doc = "Enumerate all fault sets instead of sampling (small inputs only)." in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let load_selection g file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ids = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" then ids := int_of_string line :: !ids
         done
       with End_of_file -> ());
      Selection.of_ids g !ids)

let verify_cmd =
  let run seed k f mode jobs trials exhaustive graph_file sel_file =
    match (resolve_jobs jobs, load_graph graph_file) with
    | (Error e, _) | (_, Error e) -> Error e
    | Ok jobs, Ok g -> (
        let sel =
          try Ok (load_selection g sel_file)
          with e -> Error (`Msg (Printexc.to_string e))
        in
        match sel with
        | Error e -> Error e
        | Ok sel ->
            with_jobs jobs @@ fun pool ->
            (* One rng threads through adversarial -> random -> profile, so
               the whole chain's figures are a function of [seed]. *)
            let rng = Rng.create ~seed in
            let cfg = Verify.config ?pool ~rng ~trials () in
            let stretch = float_of_int ((2 * k) - 1) in
            let report =
              if exhaustive then Verify.exhaustive ~cfg sel ~mode ~stretch ~f
              else begin
                let a = Verify.adversarial ~cfg sel ~mode ~stretch ~f in
                if Verify.ok a then Verify.random ~cfg sel ~mode ~stretch ~f
                else a
              end
            in
            Printf.printf "checked %d fault sets\n" report.Verify.checked;
            (match report.Verify.violation with
            | None ->
                Printf.printf "OK: no stretch violation found (stretch %.0f, f=%d)\n"
                  stretch f;
                let profile =
                  Verify.profile
                    ~cfg:(Verify.config ?pool ~rng ~trials:(min trials 50) ())
                    sel ~mode ~f
                in
                Printf.printf "%s\n" (Format.asprintf "%a" Verify.pp_profile profile);
                Ok ()
            | Some v ->
                Printf.printf "VIOLATION: %s\n"
                  (Format.asprintf "%a" Verify.pp_violation v);
                Error (`Msg "spanner property violated")))
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ jobs_arg
       $ trials_arg $ exhaustive_arg $ graph_arg $ selection_arg))
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify a spanner selection under faults.") term

(* ----------------------------- local ---------------------------------- *)

let local_cmd =
  let run seed k f mode chaos metrics trace stream file =
    Result.map
      (fun g ->
        with_metrics metrics ~id:"local" @@ fun () ->
        with_stream stream @@ fun () ->
        with_trace trace @@ fun () ->
        let rng = Rng.create ~seed in
        let res = Local_spanner.build rng ?chaos ~mode ~k ~f g in
        let d = res.Local_spanner.decomposition in
        Printf.printf "partitions: %d, coverage: %.1f%%, max cluster depth: %d\n"
          (Array.length d.Decomposition.partitions)
          (100. *. Decomposition.coverage d)
          d.Decomposition.max_depth;
        Printf.printf
          "rounds: %d total (%d decomposition + %d announce + %d gather + %d scatter)\n"
          res.Local_spanner.total_rounds d.Decomposition.rounds
          res.Local_spanner.announce_rounds res.Local_spanner.gather_rounds
          res.Local_spanner.scatter_rounds;
        Printf.printf "spanner: %d/%d edges (bound %.0f)\n"
          res.Local_spanner.selection.Selection.size (Graph.m g)
          (Bounds.local_size ~k ~f ~n:(Graph.n g));
        Printf.printf "traffic: %s\n"
          (Format.asprintf "%a" Net.pp_stats res.Local_spanner.stats))
      (load_graph file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ chaos_arg
       $ metrics_arg $ trace_arg $ stream_arg $ graph_arg))
  in
  Cmd.v
    (Cmd.info "local" ~doc:"Run the LOCAL-model construction (Theorem 12).")
    term

(* ----------------------------- congest -------------------------------- *)

let c_arg =
  let doc = "Iteration constant of the DK11 reduction." in
  Arg.(value & opt float 1.0 & info [ "c" ] ~docv:"C" ~doc)

let congest_cmd =
  let run seed k f mode c chaos metrics trace stream file =
    Result.map
      (fun g ->
        with_metrics metrics ~id:"congest" @@ fun () ->
        with_stream stream @@ fun () ->
        with_trace trace @@ fun () ->
        let rng = Rng.create ~seed in
        let res = Congest_ft.build rng ~c ?chaos ~mode ~k ~f g in
        Printf.printf "iterations: %d (word size %d bits)\n" res.Congest_ft.iterations
          res.Congest_ft.word_bits;
        Printf.printf "rounds: %d total = %d phase-1 + %d phase-2 (base %d, overlap %d)\n"
          res.Congest_ft.total_rounds res.Congest_ft.phase1_rounds
          res.Congest_ft.phase2_rounds res.Congest_ft.phase2_base_rounds
          res.Congest_ft.max_overlap;
        Printf.printf "spanner: %d/%d edges (bound %.0f, paper rounds %.0f)\n"
          res.Congest_ft.selection.Selection.size (Graph.m g)
          (Bounds.congest_size ~k ~f ~n:(Graph.n g))
          (Bounds.congest_rounds ~k ~f ~n:(Graph.n g)))
      (load_graph file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ c_arg $ chaos_arg
       $ metrics_arg $ trace_arg $ stream_arg $ graph_arg))
  in
  Cmd.v
    (Cmd.info "congest" ~doc:"Run the CONGEST-model construction (Theorem 15).")
    term

(* ----------------------------- oracle --------------------------------- *)

let queries_arg =
  let doc = "Number of sampled distance queries." in
  Arg.(value & opt int 1000 & info [ "queries" ] ~docv:"N" ~doc)

let oracle_cmd =
  let run seed k queries metrics trace file =
    Result.map
      (fun g ->
        with_metrics metrics ~id:"oracle" @@ fun () ->
        with_trace trace @@ fun () ->
        let rng = Rng.create ~seed in
        let t0 = Unix.gettimeofday () in
        let oracle = Oracle.build rng ~k g in
        let build_time = Unix.gettimeofday () -. t0 in
        Printf.printf "oracle built in %.3f s; storage %d entries (n^2 = %d)\n"
          build_time (Oracle.storage oracle)
          (Graph.n g * Graph.n g);
        let worst = ref 1.0 and total = ref 0. and counted = ref 0 in
        for _ = 1 to queries do
          let u = Rng.int rng (Graph.n g) and v = Rng.int rng (Graph.n g) in
          if u <> v then begin
            let exact = (Dijkstra.distances g u).(v) in
            if exact < infinity then begin
              let est = Oracle.query oracle u v in
              let ratio = est /. exact in
              incr counted;
              total := !total +. ratio;
              if ratio > !worst then worst := ratio
            end
          end
        done;
        Printf.printf
          "%d queries: mean stretch %.3f, max stretch %.3f (guarantee %.0f)\n"
          !counted
          (!total /. float_of_int (max 1 !counted))
          !worst (Oracle.stretch_bound oracle))
      (load_graph file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ queries_arg $ metrics_arg $ trace_arg
       $ graph_arg))
  in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Build a Thorup-Zwick distance oracle and sample queries.")
    term

(* ----------------------------- prune ---------------------------------- *)

let prune_cmd =
  let run k f mode graph_file sel_file out =
    match load_graph graph_file with
    | Error e -> Error e
    | Ok g ->
        let sel = load_selection g sel_file in
        let res = Prune.minimalize ~mode ~k ~f sel in
        Printf.printf "pruned %d of %d edges (%.1f%%); %d remain\n"
          res.Prune.removed res.Prune.candidates
          (100. *. float_of_int res.Prune.removed
          /. float_of_int (max 1 res.Prune.candidates))
          res.Prune.pruned.Selection.size;
        Option.iter
          (fun file ->
            save_selection res.Prune.pruned file;
            Printf.printf "pruned selection written to %s\n" file)
          out;
        Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ k_arg $ f_arg $ mode_arg $ graph_arg $ selection_arg
       $ spanner_out_arg))
  in
  Cmd.v
    (Cmd.info "prune"
       ~doc:"Minimalize a spanner selection by sound exact pruning (small inputs).")
    term

(* ----------------------------- dynamic --------------------------------- *)

let ops_file_arg =
  let doc =
    "Operation script: one directive per line, $(b,#) comments.  \
     $(b,n) N declares the vertex count (first line, scripts without \
     $(b,--graph)); $(b,add) U V [W] inserts an edge; $(b,del) U V \
     deletes one; $(b,delv) X retires a vertex; $(b,flush) forces the \
     pending update batch to apply; $(b,faults) ... sets the fault set \
     for subsequent queries (vertex ids under $(b,--mode) vertex, U-V \
     pairs under edge); $(b,query) U V asks for the fault-masked spanner \
     distance — consecutive queries run as one concurrent batch."
  in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"OPS" ~doc)

let init_graph_arg =
  let doc = "Seed the handle with this graph before the script runs." in
  Arg.(value & opt (some file) None & info [ "graph" ] ~docv:"GRAPH" ~doc)

let out_graph_arg =
  let doc = "Write the final live graph (ftspan text format) to this file." in
  Arg.(value & opt (some string) None & info [ "out-graph" ] ~docv:"FILE" ~doc)

type dyn_item =
  | Dyn_n of int
  | Dyn_op of Dynamic.op
  | Dyn_flush
  | Dyn_faults_v of int list
  | Dyn_faults_e of (int * int) list
  | Dyn_query of int * int

(* Script errors are usage-class failures: report the offending line on
   stderr and exit 2, like the other spec parsers. *)
let parse_ops_file ~mode file =
  let fail lineno fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "ftspan dynamic: %s:%d: %s\n" file lineno msg;
        exit 2)
      fmt
  in
  let int_tok lineno what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail lineno "%s must be an integer (got %S)" what s
  in
  let pair_tok lineno s =
    match String.index_opt s '-' with
    | Some i when i > 0 && i < String.length s - 1 ->
        ( int_tok lineno "fault edge endpoint" (String.sub s 0 i),
          int_tok lineno "fault edge endpoint"
            (String.sub s (i + 1) (String.length s - i - 1)) )
    | _ -> fail lineno "edge faults are U-V pairs (got %S)" s
  in
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let items = ref [] in
      let lineno = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr lineno;
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun s -> s <> "")
           with
           | [] -> ()
           | [ "n"; n ] -> items := Dyn_n (int_tok !lineno "n" n) :: !items
           | "add" :: u :: v :: rest ->
               let w =
                 match rest with
                 | [] -> 1.0
                 | [ w ] -> (
                     match float_of_string_opt w with
                     | Some w -> w
                     | None -> fail !lineno "weight must be a number (got %S)" w)
                 | _ -> fail !lineno "add takes U V [W]"
               in
               items :=
                 Dyn_op
                   (Dynamic.Insert
                      {
                        u = int_tok !lineno "u" u;
                        v = int_tok !lineno "v" v;
                        w;
                      })
                 :: !items
           | [ "del"; u; v ] ->
               items :=
                 Dyn_op
                   (Dynamic.Delete_edge
                      { u = int_tok !lineno "u" u; v = int_tok !lineno "v" v })
                 :: !items
           | [ "delv"; x ] ->
               items :=
                 Dyn_op (Dynamic.Delete_vertex (int_tok !lineno "vertex" x))
                 :: !items
           | [ "flush" ] -> items := Dyn_flush :: !items
           | "faults" :: members -> (
               match mode with
               | Fault.VFT ->
                   items :=
                     Dyn_faults_v
                       (List.map (int_tok !lineno "fault vertex") members)
                     :: !items
               | Fault.EFT ->
                   items :=
                     Dyn_faults_e (List.map (pair_tok !lineno) members) :: !items)
           | [ "query"; u; v ] ->
               items :=
                 Dyn_query (int_tok !lineno "u" u, int_tok !lineno "v" v)
                 :: !items
           | tok :: _ -> fail !lineno "unknown directive %S" tok
         done
       with End_of_file -> ());
      List.rev !items)

let dynamic_cmd =
  let run k f mode jobs backend metrics trace stream ops_file graph_file out
      out_graph =
    match resolve_jobs jobs with
    | Error _ as e -> e
    | Ok jobs -> (
        let items = parse_ops_file ~mode ops_file in
        let seed_graph =
          match (graph_file, items) with
          | Some _, Dyn_n _ :: _ ->
              Printf.eprintf
                "ftspan dynamic: %s declares n but --graph was given\n" ops_file;
              exit 2
          | Some file, _ -> Result.map (fun g -> (g, items)) (load_graph ?backend file)
          | None, Dyn_n n :: rest -> Ok (Graph.create ?backend n, rest)
          | None, _ ->
              Printf.eprintf
                "ftspan dynamic: no initial graph: pass --graph or start %s \
                 with an 'n N' line\n"
                ops_file;
              exit 2
        in
        match seed_graph with
        | Error e -> Error e
        | Ok (g, items) ->
            with_metrics metrics ~id:"dynamic" @@ fun () ->
            with_stream stream @@ fun () ->
            with_trace trace @@ fun () ->
            with_jobs jobs @@ fun pool ->
            let d = Dynamic.create ~opts:(Dynamic.opts ~mode ~k ~f ?pool ()) g in
            Printf.printf "seeded: n=%d, %d live edges, spanner %d\n"
              (Dynamic.n d) (Dynamic.live_edges d) (Dynamic.size d);
            let pending = ref [] and pending_q = ref [] in
            let cur_fault = ref (Fault.empty mode) in
            let flush_ops () =
              match List.rev !pending with
              | [] -> ()
              | ops ->
                  pending := [];
                  let stats = Dynamic.apply d ops in
                  Printf.printf "apply: %s\n"
                    (Format.asprintf "%a" Dynamic.pp_stats stats)
            in
            let flush_queries () =
              match List.rev !pending_q with
              | [] -> ()
              | pairs ->
                  pending_q := [];
                  let results =
                    Dynamic.query_batch d ~faults:!cur_fault
                      (Array.of_list pairs)
                  in
                  Array.iter
                    (fun r ->
                      Printf.printf "%s\n"
                        (Format.asprintf "%a" Dynamic.pp_query_result r))
                    results
            in
            (* Fault edge ids resolve against the post-update snapshot, so
               the fault set always names live edges. *)
            let set_faults fault_of =
              flush_ops ();
              flush_queries ();
              cur_fault := fault_of ()
            in
            (try
               List.iter
                 (function
                   | Dyn_n _ ->
                       Printf.eprintf
                         "ftspan dynamic: 'n' is only valid as the first \
                          directive\n";
                       exit 2
                   | Dyn_op op ->
                       flush_queries ();
                       pending := op :: !pending
                   | Dyn_flush -> flush_ops ()
                   | Dyn_faults_v vs ->
                       set_faults (fun () -> Fault.of_vertices vs)
                   | Dyn_faults_e pairs ->
                       set_faults (fun () ->
                           let src = (Dynamic.snapshot d).Selection.source in
                           Fault.of_edges
                             (List.map
                                (fun (u, v) ->
                                  match Graph.find_edge src u v with
                                  | Some id -> id
                                  | None ->
                                      Printf.eprintf
                                        "ftspan dynamic: faults: edge %d-%d \
                                         is not live\n"
                                        u v;
                                      exit 2)
                                pairs))
                   | Dyn_query (u, v) ->
                       flush_ops ();
                       pending_q := (u, v) :: !pending_q)
                 items;
               flush_ops ();
               flush_queries ()
             with Invalid_argument msg ->
               Printf.eprintf "ftspan dynamic: %s\n" msg;
               exit 1);
            let sel = Dynamic.snapshot d in
            Printf.printf "final: n=%d, %d live edges, spanner %d, epoch %d%s\n"
              (Dynamic.n d) (Dynamic.live_edges d) (Dynamic.size d)
              (Dynamic.epoch d)
              (if Dynamic.weight_monotone d then "" else " (weights out of order)");
            Option.iter
              (fun file ->
                save_selection sel file;
                Printf.printf "selection written to %s\n" file)
              out;
            Option.iter
              (fun file ->
                Graph_io.save sel.Selection.source file;
                Printf.printf "final graph written to %s\n" file)
              out_graph;
            Ok ())
  in
  let term =
    Term.(
      term_result
        (const run $ k_arg $ f_arg $ mode_arg $ jobs_arg $ backend_arg
       $ metrics_arg $ trace_arg $ stream_arg $ ops_file_arg $ init_graph_arg
       $ spanner_out_arg $ out_graph_arg))
  in
  Cmd.v
    (Cmd.info "dynamic"
       ~doc:
         "Maintain a fault-tolerant spanner under arbitrary-order updates \
          (insertions, deletions with local repair) and answer batched \
          fault-masked distance queries.")
    term

(* ------------------------------ trace ---------------------------------- *)

let trace_file_arg =
  let doc = "Trace file (ftspan.trace.v1 JSON, as written by --trace)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let trace_json_arg =
  let doc = "Emit the report as a ftspan.trace-report.v1 JSON document." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_top_arg =
  let doc = "Edges to keep in the per-edge leaderboard." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)

(* Malformed input is a usage-class failure: report on stderr and exit 2
   directly (term_result would map `Msg errors to 124). *)
let trace_analyze_cmd =
  let run file json top =
    if top < 0 then begin
      Printf.eprintf "ftspan trace analyze: --top must be >= 0 (got %d)\n" top;
      exit 2
    end;
    (match Obs_analyze.load file with
    | Error msg ->
        Printf.eprintf "ftspan trace analyze: %s\n" msg;
        exit 2
    | Ok tr -> (
        match Obs_analyze.validate tr with
        | _ :: _ as violations ->
            List.iter
              (fun v -> Printf.eprintf "ftspan trace analyze: %s: %s\n" file v)
              violations;
            exit 2
        | [] ->
            let report = Obs_analyze.analyze ~top tr in
            if json then
              print_endline
                (Obs_json.to_string ~indent:true
                   (Obs_analyze.json_of_report report))
            else Format.printf "%a@." Obs_analyze.pp_report report));
    Ok ()
  in
  let term =
    Term.(term_result (const run $ trace_file_arg $ trace_json_arg $ trace_top_arg))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct message lifecycles from a trace: delivery-latency \
          quantiles, per-edge retransmit amplification, reorder depth, and \
          the synchronizer critical path.")
    term

let trace_cmd =
  let doc = "Offline analysis of recorded event traces." in
  let info = Cmd.info "trace" ~doc in
  let default = Term.(ret (const (`Help (`Pager, Some "trace")))) in
  Cmd.group ~default info [ trace_analyze_cmd ]

(* ------------------------------ main ----------------------------------- *)

let () =
  let doc = "fault-tolerant graph spanners (Dinitz-Robelle, PODC 2020)" in
  let info = Cmd.info "ftspan" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            generate_cmd; info_cmd; build_cmd; verify_cmd; dynamic_cmd;
            local_cmd; congest_cmd; oracle_cmd; prune_cmd; trace_cmd;
          ]))
