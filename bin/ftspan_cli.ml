(* ftspan: command-line front end for the fault-tolerant spanner library.

   Subcommands:
     generate   write a graph from one of the workload families
     info       print statistics of a graph file
     build      construct a fault-tolerant spanner and report its summary
     verify     check a spanner selection against sampled/exhaustive faults
     local      run the LOCAL-model construction on the simulator
     congest    run the CONGEST-model construction on the simulator
     trace      offline analysis of recorded event traces *)

open Cmdliner

(* ------------------------- shared arguments ------------------------- *)

let seed_arg =
  let doc = "PRNG seed (all randomness in the tool is derived from it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let k_arg =
  let doc = "Stretch parameter: the spanner has stretch 2k-1." in
  Arg.(value & opt int 2 & info [ "k" ] ~docv:"K" ~doc)

let f_arg =
  let doc = "Number of faults to tolerate." in
  Arg.(value & opt int 1 & info [ "f" ] ~docv:"F" ~doc)

let mode_arg =
  let doc = "Fault mode: $(b,vertex) (VFT) or $(b,edge) (EFT)." in
  let enum_conv =
    Arg.enum [ ("vertex", Fault.VFT); ("edge", Fault.EFT); ("vft", Fault.VFT); ("eft", Fault.EFT) ]
  in
  Arg.(value & opt enum_conv Fault.VFT & info [ "mode" ] ~docv:"MODE" ~doc)

let graph_arg =
  let doc = "Input graph file (see ftspan generate for the format)." in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc)

let backend_arg =
  let doc =
    "Adjacency storage backend: $(b,int) (native word arrays) or \
     $(b,int32) (compact int32 Bigarrays — half the resident bytes, and \
     the layout binary $(b,.ftsb) graphs map into near-zero-copy).  \
     Defaults to int for text graphs and int32 for $(b,.ftsb) files.  \
     Selections and counters are bit-identical across backends; only \
     wall time and resident memory move."
  in
  let backend_conv =
    Arg.enum [ ("int", Csr.Int_array); ("int32", Csr.Int32_bigarray) ]
  in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~docv:"B" ~doc)

(* Binary-format failures carry their own exit-code contract (exit 2
   when the file is not an ftspan graph at all, exit 1 when it is one
   but unusable) — report directly, like trace analyze does. *)
let load_graph ?backend file =
  try Ok (Graph_io.load ?backend file) with
  | Failure msg -> Error (`Msg msg)
  | Sys_error msg -> Error (`Msg msg)
  | Graph_binio.Not_a_graph msg ->
      Printf.eprintf "ftspan: %s\n" msg;
      exit 2
  | Graph_binio.Corrupt msg ->
      Printf.eprintf "ftspan: %s\n" msg;
      exit 1

let jobs_arg =
  let doc =
    "Worker domains for the parallel sections (the batched greedy's \
     decision phase under $(b,build), the fault batteries under \
     $(b,verify)).  Defaults to 1 — fully sequential, so existing \
     scripted runs are byte-identical — or to $(b,FTSPAN_JOBS) when that \
     is set.  Results are deterministic: any jobs count produces the \
     same output as 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let resolve_jobs = function
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (`Msg (Printf.sprintf "--jobs must be >= 1 (got %d)" n))
  | None -> Ok (Exec.default_jobs ())

(* Run [f] with a pool of [jobs] workers ([None] when sequential), shut
   down on every exit path. *)
let with_jobs jobs f =
  if jobs = 1 then f None
  else Exec.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

let metrics_arg =
  let doc =
    "Report collected telemetry (counters, timers, histograms, spans) \
     after the command: $(b,pretty) for a human-readable listing, \
     $(b,json) for an ftspan.metrics.v1 document (the schema bench/main.exe \
     --json writes).  $(b,--metrics) alone means $(b,pretty)."
  in
  let fmt = Arg.enum [ ("pretty", `Pretty); ("json", `Json) ] in
  Arg.(value & opt ~vopt:(Some `Pretty) (some fmt) None & info [ "metrics" ] ~docv:"FMT" ~doc)

(* Wrap a subcommand body: scope the obs registry to it, time it, and
   render the snapshot in the requested sink. *)
let with_metrics metrics ~id f =
  match metrics with
  | None -> f ()
  | Some fmt ->
      Obs.reset ();
      let t0 = Unix.gettimeofday () in
      let result = f () in
      let wall = Unix.gettimeofday () -. t0 in
      let entry = { Obs_sink.id; wall_s = wall; snap = Obs.snapshot () } in
      (match fmt with
      | `Pretty ->
          Printf.printf "-- metrics (%s, %.3f s) --\n" id wall;
          Format.printf "%a@." Obs_sink.pp entry.Obs_sink.snap
      | `Json ->
          print_endline
            (Obs_json.to_string ~indent:true (Obs_sink.json_of_report [ entry ])));
      result

let trace_arg =
  let doc =
    "Record a structured event trace (per-edge LBC verdicts, greedy \
     keep/reject decisions, per-round CONGEST traffic) and write it to \
     $(docv) when the command finishes.  A $(b,,chrome) suffix selects \
     the Chrome trace-event format (open the file in chrome://tracing or \
     https://ui.perfetto.dev); the default is the native ftspan.trace.v1 \
     JSON.  A $(b,,sample=)S suffix (a rate in (0,1] or $(b,1/)N) head-samples \
     the bulk event stream — phase markers and fault events are always \
     kept — and $(b,,seed=)N picks the private sampling-RNG seed, so the \
     same seed replays the same kept set."
  in
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Obs_trace.parse_spec s with
          | Ok spec -> Ok spec
          | Error msg -> Error (`Msg msg)),
        Obs_trace.pp_spec )
  in
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "trace" ] ~docv:"FILE[,chrome][,sample=S][,seed=N]" ~doc)

(* Wrap a subcommand body in event collection; the file is written even
   when the body raises, so aborted runs keep their partial trace. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some spec ->
      Obs_trace.start ?sample:spec.Obs_trace.sample
        ~sample_seed:spec.Obs_trace.sample_seed ();
      Fun.protect
        ~finally:(fun () ->
          Obs_trace.stop ();
          Obs_trace.write ~file:spec.Obs_trace.file spec.Obs_trace.format;
          Printf.printf "trace written to %s (%d events, %d sampled, %d dropped)\n"
            spec.Obs_trace.file (Obs_trace.seen ()) (Obs_trace.sampled ())
            (Obs_trace.dropped ()))
        f

let stream_arg =
  let doc =
    "Stream run-time heartbeat snapshots to $(docv) while the command \
     runs: one ftspan.heartbeat.v1 JSON line per beat, carrying counter \
     deltas since the previous beat, latency quantiles (p50/p90/p99/p999 \
     of every log-linear histogram), GC numbers, and pool utilization.  \
     Beats default to one per second; a $(b,,)SECONDS suffix changes the \
     interval and $(b,,ops=)K beats every K logical operations instead."
  in
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Obs_heartbeat.parse_spec s with
          | Ok spec -> Ok spec
          | Error msg -> Error (`Msg msg)),
        Obs_heartbeat.pp_spec )
  in
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "metrics-stream" ] ~docv:"FILE[,SECONDS][,ops=K]" ~doc)

(* Wrap a subcommand body in the heartbeat reporter; the final beat and
   the close happen on every exit path. *)
let with_stream stream f =
  match stream with
  | None -> f ()
  | Some spec ->
      Obs_heartbeat.start spec;
      Fun.protect
        ~finally:(fun () ->
          Obs_heartbeat.stop ();
          Printf.printf "metrics stream written to %s (%d beats)\n"
            spec.Obs_heartbeat.file
            (Obs_heartbeat.beats ()))
        f

let chaos_arg =
  let doc =
    "Inject network faults into the simulator and mask them with the \
     reliable-delivery protocol.  $(docv) is a comma-separated list of \
     KEY=VALUE pairs: $(b,drop)=P, $(b,dup)=P, $(b,reorder)=R (max round \
     lag), $(b,spike)=P, $(b,spikex)=F (delay multiplier), $(b,seed)=N \
     (fault-stream seed), $(b,crash)=V@T, $(b,recover)=V@T.  The fault \
     stream is private to the plan, so the spanner selection matches the \
     chaos-free run; retransmissions show up in the $(b,net.retries) \
     counter under $(b,--metrics)."
  in
  let plan_conv =
    Arg.conv
      ( (fun s ->
          match Chaos.parse_spec s with
          | Ok plan -> Ok plan
          | Error msg -> Error (`Msg msg)),
        Chaos.pp_plan )
  in
  Arg.(value & opt (some plan_conv) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

(* --------------------------- generate -------------------------------- *)

let family_arg =
  let doc =
    "Graph family: gnp, gnm, complete, grid, torus, hypercube, geometric, \
     ba (Barabasi-Albert), regular, cycle-chords, projective (incidence \
     graph of PG(2,n), n prime), hard (BDPW18 lower-bound blow-up, n = \
     plane order, extra = f)."
  in
  Arg.(value & opt string "gnp" & info [ "family" ] ~docv:"FAMILY" ~doc)

let n_arg =
  let doc = "Number of vertices (or side/dimension for structured families)." in
  Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc)

let p_arg =
  let doc = "Edge probability / radius / density parameter." in
  Arg.(value & opt float 0.1 & info [ "p" ] ~docv:"P" ~doc)

let extra_arg =
  let doc = "Secondary integer parameter (gnm edges, BA attachment, degree, chords)." in
  Arg.(value & opt int 3 & info [ "extra" ] ~docv:"INT" ~doc)

let weights_arg =
  let doc = "Redraw edge weights uniformly from [LO,HI] (format LO,HI)." in
  Arg.(value & opt (some (pair ~sep:',' float float)) None & info [ "weights" ] ~docv:"LO,HI" ~doc)

let connect_arg =
  let doc = "Add random edges until the graph is connected." in
  Arg.(value & flag & info [ "connect" ] ~doc)

let out_arg =
  let doc =
    "Output file.  A $(b,.ftsb) extension writes the binary \
     ftspan.graph.v1 format (loads ~10-100x faster at the \
     million-edge tier); anything else writes text."
  in
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let generate_cmd =
  let run seed family n p extra weights connect out =
    let rng = Rng.create ~seed in
    let result =
      match family with
      | "gnp" -> Ok (Generators.gnp rng ~n ~p)
      | "gnm" -> Ok (Generators.gnm rng ~n ~m:extra)
      | "complete" -> Ok (Generators.complete n)
      | "grid" -> Ok (Generators.grid ~rows:n ~cols:n)
      | "torus" -> Ok (Generators.torus ~rows:n ~cols:n)
      | "hypercube" -> Ok (Generators.hypercube ~dim:n)
      | "geometric" -> Ok (Generators.random_geometric rng ~n ~radius:p ~euclidean_weights:true)
      | "ba" -> Ok (Generators.barabasi_albert rng ~n ~attach:extra)
      | "regular" -> Ok (Generators.random_regular rng ~n ~d:extra)
      | "cycle-chords" -> Ok (Generators.cycle_with_chords rng ~n ~chords:extra)
      | "projective" ->
          (* n is the plane order q (prime) *)
          (try Ok (Lower_bound.projective_plane_incidence ~q:n)
           with Invalid_argument msg -> Error (`Msg msg))
      | "hard" ->
          (* the BDPW18 lower-bound instance: n = plane order, extra = f *)
          (try
             Ok
               (Lower_bound.hard_instance ~f:extra
                  (Lower_bound.projective_plane_incidence ~q:n))
           with Invalid_argument msg -> Error (`Msg msg))
      | other -> Error (`Msg (Printf.sprintf "unknown family %S" other))
    in
    match result with
    | Error e -> Error e
    | Ok g ->
        let g = if connect then Generators.ensure_connected rng g else g in
        let g =
          match weights with
          | Some (lo, hi) -> Generators.with_uniform_weights rng g ~lo ~hi
          | None -> g
        in
        Graph_io.save g out;
        Printf.printf "wrote %s%s: %s\n" out
          (if Filename.check_suffix out Graph_io.binary_suffix then
             " (ftspan.graph.v1)"
           else "")
          (Format.asprintf "%a" Stats.pp (Stats.compute g));
        Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ family_arg $ n_arg $ p_arg $ extra_arg
       $ weights_arg $ connect_arg $ out_arg))
  in
  Cmd.v (Cmd.info "generate" ~doc:"Generate a workload graph.") term

(* ----------------------------- info ---------------------------------- *)

let info_cmd =
  let run backend file =
    Result.map
      (fun g ->
        Printf.printf "%s\n" (Format.asprintf "%a" Stats.pp (Stats.compute g));
        Printf.printf "storage: %s backend, %d adjacency bytes\n"
          (Csr.backend_name (Graph.backend g))
          (Graph.resident_bytes g);
        Printf.printf "diameter (hops): %d\n" (Stats.diameter g);
        match Girth.girth g with
        | Some girth -> Printf.printf "girth: %d\n" girth
        | None -> Printf.printf "girth: none (forest)\n")
      (load_graph ?backend file)
  in
  let term = Term.(term_result (const run $ backend_arg $ graph_arg)) in
  Cmd.v (Cmd.info "info" ~doc:"Print statistics of a graph file.") term

(* ----------------------------- build ---------------------------------- *)

let algo_arg =
  let doc = "Algorithm: greedy-poly (Algorithms 3/4), greedy-exp (Algorithm 1), dk11." in
  let enum_conv =
    Arg.enum
      [
        ("greedy-poly", Spanner.Greedy_poly);
        ("greedy-exp", Spanner.Greedy_exponential);
        ("dk11", Spanner.Dinitz_krauthgamer);
      ]
  in
  Arg.(value & opt enum_conv Spanner.Greedy_poly & info [ "algo" ] ~docv:"ALGO" ~doc)

let batch_arg =
  let doc =
    "Decision-batch size for the greedy: edges per block decided against \
     the same frozen partial spanner.  $(b,--jobs) parallelism applies \
     within a block, so batching trades spanner size for parallel \
     speedup (experiment E12 quantifies the curve).  Defaults to 1 \
     (fully sequential decisions) when $(b,--jobs) is 1, else 512.  \
     Applies to greedy-poly only."
  in
  Arg.(value & opt (some int) None & info [ "batch" ] ~docv:"B" ~doc)

let spanner_out_arg =
  let doc = "Write the selected edge ids (one per line) to this file." in
  Arg.(value & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let dot_out_arg =
  let doc = "Write a Graphviz rendering (spanner edges highlighted)." in
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc)

let save_selection sel file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter (fun id -> output_string oc (string_of_int id ^ "\n")) (Selection.ids sel))

let build_cmd =
  let run seed k f mode algo jobs batch backend metrics trace stream file out dot =
    match (resolve_jobs jobs, batch) with
    | Error _ as e, _ -> e
    | _, Some b when b < 1 ->
        Error (`Msg (Printf.sprintf "--batch must be >= 1 (got %d)" b))
    | Ok jobs, batch ->
    let batch =
      match batch with Some b -> b | None -> if jobs > 1 then 512 else 1
    in
    Result.map
      (fun g ->
        with_metrics metrics ~id:"build" @@ fun () ->
        with_stream stream @@ fun () ->
        with_trace trace @@ fun () ->
        with_jobs jobs @@ fun pool ->
        let rng = Rng.create ~seed in
        let params = { Spanner.k; f; mode } in
        let options = Spanner.options ~batch ?pool () in
        let t0 = Unix.gettimeofday () in
        let sel = Spanner.build ~rng ~algorithm:algo ~options params g in
        let dt = Unix.gettimeofday () -. t0 in
        let summary = Spanner.summarize ~algorithm:algo params sel in
        Printf.printf "%s\n" (Format.asprintf "%a" Spanner.pp_summary summary);
        Printf.printf "build time: %.3f s\n" dt;
        Option.iter
          (fun file ->
            save_selection sel file;
            Printf.printf "selection written to %s\n" file)
          out;
        Option.iter
          (fun file ->
            let oc = open_out file in
            Fun.protect
              ~finally:(fun () -> close_out oc)
              (fun () ->
                output_string oc
                  (Graph_io.to_dot ~highlight:sel.Selection.selected g));
            Printf.printf "dot rendering written to %s\n" file)
          dot)
      (load_graph ?backend file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ algo_arg $ jobs_arg
       $ batch_arg $ backend_arg $ metrics_arg $ trace_arg $ stream_arg
       $ graph_arg $ spanner_out_arg $ dot_out_arg))
  in
  Cmd.v (Cmd.info "build" ~doc:"Construct a fault-tolerant spanner.") term

(* ----------------------------- verify --------------------------------- *)

let selection_arg =
  let doc = "Selection file (edge ids, one per line) produced by ftspan build." in
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SELECTION" ~doc)

let trials_arg =
  let doc = "Number of sampled fault sets per sampler." in
  Arg.(value & opt int 200 & info [ "trials" ] ~docv:"N" ~doc)

let exhaustive_arg =
  let doc = "Enumerate all fault sets instead of sampling (small inputs only)." in
  Arg.(value & flag & info [ "exhaustive" ] ~doc)

let load_selection g file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let ids = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" then ids := int_of_string line :: !ids
         done
       with End_of_file -> ());
      Selection.of_ids g !ids)

let verify_cmd =
  let run seed k f mode jobs trials exhaustive graph_file sel_file =
    match (resolve_jobs jobs, load_graph graph_file) with
    | (Error e, _) | (_, Error e) -> Error e
    | Ok jobs, Ok g -> (
        let sel =
          try Ok (load_selection g sel_file)
          with e -> Error (`Msg (Printexc.to_string e))
        in
        match sel with
        | Error e -> Error e
        | Ok sel ->
            with_jobs jobs @@ fun pool ->
            let rng = Rng.create ~seed in
            let stretch = float_of_int ((2 * k) - 1) in
            let report =
              if exhaustive then Verify.check_exhaustive sel ~mode ~stretch ~f
              else begin
                let a = Verify.check_adversarial ?pool rng sel ~mode ~stretch ~f ~trials in
                if Verify.ok a then Verify.check_random ?pool rng sel ~mode ~stretch ~f ~trials
                else a
              end
            in
            Printf.printf "checked %d fault sets\n" report.Verify.checked;
            (match report.Verify.violation with
            | None ->
                Printf.printf "OK: no stretch violation found (stretch %.0f, f=%d)\n"
                  stretch f;
                let profile = Verify.stretch_profile ?pool rng sel ~mode ~f ~trials:(min trials 50) in
                Printf.printf "%s\n" (Format.asprintf "%a" Verify.pp_profile profile);
                Ok ()
            | Some v ->
                Printf.printf "VIOLATION: %s\n"
                  (Format.asprintf "%a" Verify.pp_violation v);
                Error (`Msg "spanner property violated")))
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ jobs_arg
       $ trials_arg $ exhaustive_arg $ graph_arg $ selection_arg))
  in
  Cmd.v (Cmd.info "verify" ~doc:"Verify a spanner selection under faults.") term

(* ----------------------------- local ---------------------------------- *)

let local_cmd =
  let run seed k f mode chaos metrics trace stream file =
    Result.map
      (fun g ->
        with_metrics metrics ~id:"local" @@ fun () ->
        with_stream stream @@ fun () ->
        with_trace trace @@ fun () ->
        let rng = Rng.create ~seed in
        let res = Local_spanner.build rng ?chaos ~mode ~k ~f g in
        let d = res.Local_spanner.decomposition in
        Printf.printf "partitions: %d, coverage: %.1f%%, max cluster depth: %d\n"
          (Array.length d.Decomposition.partitions)
          (100. *. Decomposition.coverage d)
          d.Decomposition.max_depth;
        Printf.printf
          "rounds: %d total (%d decomposition + %d announce + %d gather + %d scatter)\n"
          res.Local_spanner.total_rounds d.Decomposition.rounds
          res.Local_spanner.announce_rounds res.Local_spanner.gather_rounds
          res.Local_spanner.scatter_rounds;
        Printf.printf "spanner: %d/%d edges (bound %.0f)\n"
          res.Local_spanner.selection.Selection.size (Graph.m g)
          (Bounds.local_size ~k ~f ~n:(Graph.n g));
        Printf.printf "traffic: %s\n"
          (Format.asprintf "%a" Net.pp_stats res.Local_spanner.stats))
      (load_graph file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ chaos_arg
       $ metrics_arg $ trace_arg $ stream_arg $ graph_arg))
  in
  Cmd.v
    (Cmd.info "local" ~doc:"Run the LOCAL-model construction (Theorem 12).")
    term

(* ----------------------------- congest -------------------------------- *)

let c_arg =
  let doc = "Iteration constant of the DK11 reduction." in
  Arg.(value & opt float 1.0 & info [ "c" ] ~docv:"C" ~doc)

let congest_cmd =
  let run seed k f mode c chaos metrics trace stream file =
    Result.map
      (fun g ->
        with_metrics metrics ~id:"congest" @@ fun () ->
        with_stream stream @@ fun () ->
        with_trace trace @@ fun () ->
        let rng = Rng.create ~seed in
        let res = Congest_ft.build rng ~c ?chaos ~mode ~k ~f g in
        Printf.printf "iterations: %d (word size %d bits)\n" res.Congest_ft.iterations
          res.Congest_ft.word_bits;
        Printf.printf "rounds: %d total = %d phase-1 + %d phase-2 (base %d, overlap %d)\n"
          res.Congest_ft.total_rounds res.Congest_ft.phase1_rounds
          res.Congest_ft.phase2_rounds res.Congest_ft.phase2_base_rounds
          res.Congest_ft.max_overlap;
        Printf.printf "spanner: %d/%d edges (bound %.0f, paper rounds %.0f)\n"
          res.Congest_ft.selection.Selection.size (Graph.m g)
          (Bounds.congest_size ~k ~f ~n:(Graph.n g))
          (Bounds.congest_rounds ~k ~f ~n:(Graph.n g)))
      (load_graph file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ f_arg $ mode_arg $ c_arg $ chaos_arg
       $ metrics_arg $ trace_arg $ stream_arg $ graph_arg))
  in
  Cmd.v
    (Cmd.info "congest" ~doc:"Run the CONGEST-model construction (Theorem 15).")
    term

(* ----------------------------- oracle --------------------------------- *)

let queries_arg =
  let doc = "Number of sampled distance queries." in
  Arg.(value & opt int 1000 & info [ "queries" ] ~docv:"N" ~doc)

let oracle_cmd =
  let run seed k queries metrics trace file =
    Result.map
      (fun g ->
        with_metrics metrics ~id:"oracle" @@ fun () ->
        with_trace trace @@ fun () ->
        let rng = Rng.create ~seed in
        let t0 = Unix.gettimeofday () in
        let oracle = Oracle.build rng ~k g in
        let build_time = Unix.gettimeofday () -. t0 in
        Printf.printf "oracle built in %.3f s; storage %d entries (n^2 = %d)\n"
          build_time (Oracle.storage oracle)
          (Graph.n g * Graph.n g);
        let worst = ref 1.0 and total = ref 0. and counted = ref 0 in
        for _ = 1 to queries do
          let u = Rng.int rng (Graph.n g) and v = Rng.int rng (Graph.n g) in
          if u <> v then begin
            let exact = (Dijkstra.distances g u).(v) in
            if exact < infinity then begin
              let est = Oracle.query oracle u v in
              let ratio = est /. exact in
              incr counted;
              total := !total +. ratio;
              if ratio > !worst then worst := ratio
            end
          end
        done;
        Printf.printf
          "%d queries: mean stretch %.3f, max stretch %.3f (guarantee %.0f)\n"
          !counted
          (!total /. float_of_int (max 1 !counted))
          !worst (Oracle.stretch_bound oracle))
      (load_graph file)
  in
  let term =
    Term.(
      term_result
        (const run $ seed_arg $ k_arg $ queries_arg $ metrics_arg $ trace_arg
       $ graph_arg))
  in
  Cmd.v
    (Cmd.info "oracle" ~doc:"Build a Thorup-Zwick distance oracle and sample queries.")
    term

(* ----------------------------- prune ---------------------------------- *)

let prune_cmd =
  let run k f mode graph_file sel_file out =
    match load_graph graph_file with
    | Error e -> Error e
    | Ok g ->
        let sel = load_selection g sel_file in
        let res = Prune.minimalize ~mode ~k ~f sel in
        Printf.printf "pruned %d of %d edges (%.1f%%); %d remain\n"
          res.Prune.removed res.Prune.candidates
          (100. *. float_of_int res.Prune.removed
          /. float_of_int (max 1 res.Prune.candidates))
          res.Prune.pruned.Selection.size;
        Option.iter
          (fun file ->
            save_selection res.Prune.pruned file;
            Printf.printf "pruned selection written to %s\n" file)
          out;
        Ok ()
  in
  let term =
    Term.(
      term_result
        (const run $ k_arg $ f_arg $ mode_arg $ graph_arg $ selection_arg
       $ spanner_out_arg))
  in
  Cmd.v
    (Cmd.info "prune"
       ~doc:"Minimalize a spanner selection by sound exact pruning (small inputs).")
    term

(* ------------------------------ trace ---------------------------------- *)

let trace_file_arg =
  let doc = "Trace file (ftspan.trace.v1 JSON, as written by --trace)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let trace_json_arg =
  let doc = "Emit the report as a ftspan.trace-report.v1 JSON document." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_top_arg =
  let doc = "Edges to keep in the per-edge leaderboard." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)

(* Malformed input is a usage-class failure: report on stderr and exit 2
   directly (term_result would map `Msg errors to 124). *)
let trace_analyze_cmd =
  let run file json top =
    if top < 0 then begin
      Printf.eprintf "ftspan trace analyze: --top must be >= 0 (got %d)\n" top;
      exit 2
    end;
    (match Obs_analyze.load file with
    | Error msg ->
        Printf.eprintf "ftspan trace analyze: %s\n" msg;
        exit 2
    | Ok tr -> (
        match Obs_analyze.validate tr with
        | _ :: _ as violations ->
            List.iter
              (fun v -> Printf.eprintf "ftspan trace analyze: %s: %s\n" file v)
              violations;
            exit 2
        | [] ->
            let report = Obs_analyze.analyze ~top tr in
            if json then
              print_endline
                (Obs_json.to_string ~indent:true
                   (Obs_analyze.json_of_report report))
            else Format.printf "%a@." Obs_analyze.pp_report report));
    Ok ()
  in
  let term =
    Term.(term_result (const run $ trace_file_arg $ trace_json_arg $ trace_top_arg))
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Reconstruct message lifecycles from a trace: delivery-latency \
          quantiles, per-edge retransmit amplification, reorder depth, and \
          the synchronizer critical path.")
    term

let trace_cmd =
  let doc = "Offline analysis of recorded event traces." in
  let info = Cmd.info "trace" ~doc in
  let default = Term.(ret (const (`Help (`Pager, Some "trace")))) in
  Cmd.group ~default info [ trace_analyze_cmd ]

(* ------------------------------ main ----------------------------------- *)

let () =
  let doc = "fault-tolerant graph spanners (Dinitz-Robelle, PODC 2020)" in
  let info = Cmd.info "ftspan" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            generate_cmd; info_cmd; build_cmd; verify_cmd; local_cmd;
            congest_cmd; oracle_cmd; prune_cmd; trace_cmd;
          ]))
