(* Small formatting helpers shared by the experiment harness. *)

let banner title =
  let line = String.make 78 '=' in
  Printf.printf "\n%s\n%s\n%s\n" line title line

let subhead text =
  Printf.printf "\n-- %s\n" text

let note fmt = Printf.ksprintf (fun s -> Printf.printf "   %s\n" s) fmt

let row fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

(* Wall-clock timing of a thunk. *)
let time f =
  let t0 = Unix.gettimeofday () in
  let x = f () in
  (x, Unix.gettimeofday () -. t0)

let mean xs = List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))

let verdict ok = if ok then "ok" else "VIOLATED"
