(* Benchmark/experiment entry point.

   Usage:
     dune exec bench/main.exe                        # every experiment + micro benches
     dune exec bench/main.exe -- e2 e7               # selected experiments
     dune exec bench/main.exe -- micro               # micro benchmarks only
     dune exec bench/main.exe -- --smoke             # seconds-scale smoke subset
     dune exec bench/main.exe -- --json out.json e2  # + ftspan.metrics.v1 report

   Experiment ids follow DESIGN.md's index (e1..e17); each regenerates the
   table validating one of the paper's theorems, and EXPERIMENTS.md records
   the paper-claim vs measured comparison.  With [--json] each job runs
   against a freshly reset telemetry registry and its snapshot (wall time,
   every counter/timer/histogram, span tree) becomes one report entry.

   Unknown arguments are an error: usage goes to stderr and the process
   exits with code 2, so typos cannot silently skip experiments in CI. *)

let usage oc =
  output_string oc "usage: main.exe [--json FILE] [--smoke] [e1..e17|micro]...\n";
  output_string oc "experiments:\n";
  List.iter (fun (name, _) -> Printf.fprintf oc "  %s\n" name) Experiments.by_name;
  output_string oc "smoke subset (also run by --smoke):\n";
  List.iter (fun (name, _) -> Printf.fprintf oc "  %s\n" name) Experiments.smoke;
  output_string oc "  micro\n"

let bad_usage fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "main.exe: %s\n" msg;
      usage stderr;
      exit 2)
    fmt

let lookup_job id =
  let id = String.lowercase_ascii id in
  if id = "micro" then ("micro", Micro.run)
  else
    match List.assoc_opt id Experiments.by_name with
    | Some fn -> (id, fn)
    | None -> (
        match List.assoc_opt id Experiments.smoke with
        | Some fn -> (id, fn)
        | None -> bad_usage "unknown experiment id %S" id)

let parse_args args =
  let json = ref None and smoke = ref false and jobs = ref [] in
  let rec go = function
    | [] -> ()
    | "--json" :: file :: rest ->
        json := Some file;
        go rest
    | [ "--json" ] -> bad_usage "--json requires a file argument"
    | "--smoke" :: rest ->
        smoke := true;
        go rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--json=" ->
        json := Some (String.sub arg 7 (String.length arg - 7));
        go rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad_usage "unknown option %S" arg
    | id :: rest ->
        jobs := lookup_job id :: !jobs;
        go rest
  in
  go args;
  let jobs = List.rev !jobs in
  let jobs = if !smoke then Experiments.smoke @ jobs else jobs in
  let jobs =
    if jobs = [] && not !smoke then
      Experiments.by_name @ [ ("micro", Micro.run) ]
    else jobs
  in
  (!json, jobs)

let run_job (id, fn) =
  Obs.reset ();
  let (), wall = Tables.time fn in
  { Obs_sink.id; wall_s = wall; snap = Obs.snapshot () }

let () =
  let json, jobs =
    match Array.to_list Sys.argv with _ :: args -> parse_args args | [] -> (None, [])
  in
  let entries = List.map run_job jobs in
  match json with
  | None -> ()
  | Some file ->
      Obs_sink.write_report ~created:(Unix.time ()) ~file entries;
      Printf.printf "\nmetrics report written to %s (%d entries)\n" file
        (List.length entries)
