(* Benchmark/experiment entry point.

   Usage:
     dune exec bench/main.exe              # every experiment + micro benches
     dune exec bench/main.exe -- e2 e7     # selected experiments
     dune exec bench/main.exe -- micro     # micro benchmarks only

   Experiment ids follow DESIGN.md's index (e1..e16); each regenerates the
   table validating one of the paper's theorems, and EXPERIMENTS.md records
   the paper-claim vs measured comparison. *)

let usage () =
  print_endline "usage: main.exe [e1..e16|micro]...";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) Experiments.by_name;
  print_endline "  micro"

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      List.iter (fun e -> e ()) Experiments.all;
      Micro.run ()
  | _ :: args ->
      List.iter
        (fun arg ->
          if arg = "micro" then Micro.run ()
          else
            match List.assoc_opt (String.lowercase_ascii arg) Experiments.by_name with
            | Some e -> e ()
            | None -> usage ())
        args
  | [] -> usage ()
