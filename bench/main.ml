(* Benchmark/experiment entry point.

   Usage:
     dune exec bench/main.exe                        # every experiment + micro benches
     dune exec bench/main.exe -- e2 e7               # selected experiments
     dune exec bench/main.exe -- micro               # micro benchmarks only
     dune exec bench/main.exe -- --smoke             # seconds-scale smoke subset
     dune exec bench/main.exe -- --json out.json e2  # + ftspan.metrics.v1 report
     dune exec bench/main.exe -- --match lbc         # jobs whose id contains "lbc"
     dune exec bench/main.exe -- --trace t.json,chrome e2  # + event trace
     dune exec bench/main.exe -- --trace t.json,sample=0.01,seed=7 e2
     dune exec bench/main.exe -- --metrics-stream hb.jsonl,ops=4096 e2

   Experiment ids follow DESIGN.md's index (e1..e17); each regenerates the
   table validating one of the paper's theorems, and EXPERIMENTS.md records
   the paper-claim vs measured comparison.  With [--json] each job runs
   against a freshly reset telemetry registry and its snapshot (wall time,
   every counter/timer/histogram, span tree) becomes one report entry.
   With [--trace FILE[,chrome][,sample=S][,seed=N]] the whole run is
   event-traced (Obs_trace) — optionally head-sampled, keeping phase and
   fault events always — and the log written when the last job finishes.
   With [--metrics-stream FILE[,SECONDS][,ops=K]] a heartbeat reporter
   appends one ftspan.heartbeat.v1 JSON line per beat while jobs run.

   Unknown arguments are an error: usage goes to stderr and the process
   exits with code 2, so typos cannot silently skip experiments in CI. *)

let usage oc =
  output_string oc
    "usage: main.exe [--json FILE] [--trace FILE[,chrome][,sample=S][,seed=N]] \
     [--metrics-stream FILE[,SECONDS][,ops=K]] [--smoke] \
     [--match SUBSTR] [--jobs N] [--backend int|int32] [e1..e17|micro]...\n";
  output_string oc "experiments:\n";
  List.iter (fun (name, _) -> Printf.fprintf oc "  %s\n" name) Experiments.by_name;
  output_string oc "smoke subset (also run by --smoke):\n";
  List.iter (fun (name, _) -> Printf.fprintf oc "  %s\n" name) Experiments.smoke;
  output_string oc "  micro\n"

let bad_usage fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "main.exe: %s\n" msg;
      usage stderr;
      exit 2)
    fmt

let lookup_job id =
  let id = String.lowercase_ascii id in
  if id = "micro" then ("micro", Micro.run)
  else
    match List.assoc_opt id Experiments.by_name with
    | Some fn -> (id, fn)
    | None -> (
        match List.assoc_opt id Experiments.smoke with
        | Some fn -> (id, fn)
        | None -> bad_usage "unknown experiment id %S" id)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec scan i = i + n <= m && (String.sub s i n = sub || scan (i + 1)) in
  scan 0

let parse_args args =
  let json = ref None and trace = ref None and smoke = ref false in
  let filter = ref None and jobs = ref [] and stream = ref None in
  let set_trace spec =
    match Obs_trace.parse_spec spec with
    | Ok t -> trace := Some t
    | Error msg -> bad_usage "--trace: %s" msg
  in
  let set_stream spec =
    match Obs_heartbeat.parse_spec spec with
    | Ok s -> stream := Some s
    | Error msg -> bad_usage "--metrics-stream: %s" msg
  in
  (* Worker-domain count for the parallel experiments (greedy-parallel and
     the E12 sweep read it back via [Exec.default_jobs]).  The default, 1,
     keeps every job sequential so checked-in counters stay exact.  The
     flag grammar — parsing and error wording — is Cli_flags, shared with
     the ftspan subcommands. *)
  let set_jobs value =
    match Cli_flags.parse_jobs value with
    | Ok n -> Exec.set_default_jobs n
    | Error msg -> bad_usage "%s" msg
  in
  (* Storage backend for every graph the jobs build ([Graph.create]
     reads it back via [Csr.default_backend]).  Counters are
     bit-identical either way; only wall time and resident bytes move,
     so the checked-in baseline holds for both. *)
  let set_backend value =
    match Cli_flags.parse_backend value with
    | Ok b -> Csr.set_default_backend b
    | Error msg -> bad_usage "%s" msg
  in
  let opt_with_value name set = function
    | value :: rest ->
        set value;
        rest
    | [] -> bad_usage "%s requires an argument" name
  in
  let rec go = function
    | [] -> ()
    | "--json" :: rest -> go (opt_with_value "--json" (fun f -> json := Some f) rest)
    | "--trace" :: rest -> go (opt_with_value "--trace" set_trace rest)
    | "--metrics-stream" :: rest ->
        go (opt_with_value "--metrics-stream" set_stream rest)
    | "--match" :: rest ->
        go (opt_with_value "--match" (fun s -> filter := Some s) rest)
    | ("--jobs" | "-j") :: rest -> go (opt_with_value "--jobs" set_jobs rest)
    | "--backend" :: rest -> go (opt_with_value "--backend" set_backend rest)
    | "--smoke" :: rest ->
        smoke := true;
        go rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--json=" ->
        json := Some (String.sub arg 7 (String.length arg - 7));
        go rest
    | arg :: rest when String.length arg > 8 && String.sub arg 0 8 = "--trace=" ->
        set_trace (String.sub arg 8 (String.length arg - 8));
        go rest
    | arg :: rest
      when String.length arg > 17 && String.sub arg 0 17 = "--metrics-stream=" ->
        set_stream (String.sub arg 17 (String.length arg - 17));
        go rest
    | arg :: rest when String.length arg > 8 && String.sub arg 0 8 = "--match=" ->
        filter := Some (String.sub arg 8 (String.length arg - 8));
        go rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
        set_jobs (String.sub arg 7 (String.length arg - 7));
        go rest
    | arg :: rest when String.length arg > 10 && String.sub arg 0 10 = "--backend=" ->
        set_backend (String.sub arg 10 (String.length arg - 10));
        go rest
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad_usage "unknown option %S" arg
    | id :: rest ->
        jobs := lookup_job id :: !jobs;
        go rest
  in
  go args;
  let jobs = List.rev !jobs in
  let jobs = if !smoke then Experiments.smoke @ jobs else jobs in
  let jobs =
    if jobs = [] && not !smoke then
      Experiments.by_name @ [ ("micro", Micro.run) ]
    else jobs
  in
  (* [--match] narrows whatever the flags above selected; it may narrow
     it to nothing, which is not an error (see the empty-report guard). *)
  let jobs =
    match !filter with
    | None -> jobs
    | Some sub -> List.filter (fun (id, _) -> contains ~sub id) jobs
  in
  (!json, !trace, !stream, jobs)

(* Wall time feeds the log-linear histogram so the report's quantile block
   covers the bench itself, not just the instrumented library layers. *)
let h_wall = Obs.histogram_log "bench.wall_s"

let run_job (id, fn) =
  Obs.reset ();
  let (), wall = Tables.time fn in
  Obs.Histogram.observe h_wall wall;
  { Obs_sink.id; wall_s = wall; snap = Obs.snapshot () }

let () =
  let json, trace, stream, jobs =
    match Array.to_list Sys.argv with
    | _ :: args -> parse_args args
    | [] -> (None, None, None, [])
  in
  Option.iter
    (fun t ->
      Obs_trace.start ?sample:t.Obs_trace.sample
        ~sample_seed:t.Obs_trace.sample_seed ())
    trace;
  Option.iter Obs_heartbeat.start stream;
  let entries = List.map run_job jobs in
  (match stream with
  | None -> ()
  | Some s ->
      Obs_heartbeat.stop ();
      Printf.printf "\nmetrics stream written to %s (%d beats)\n"
        s.Obs_heartbeat.file
        (Obs_heartbeat.beats ()));
  (match trace with
  | None -> ()
  | Some t ->
      Obs_trace.stop ();
      Obs_trace.write ~file:t.Obs_trace.file t.Obs_trace.format;
      Printf.printf "\ntrace written to %s (%d events, %d sampled, %d dropped)\n"
        t.Obs_trace.file (Obs_trace.seen ()) (Obs_trace.sampled ())
        (Obs_trace.dropped ()));
  match json with
  | None -> ()
  | Some file ->
      (* Written even when the job list resolved to zero jobs: downstream
         tooling (compare.exe, the @obs-check gate) must always find a
         valid ftspan.metrics.v1 document, never a missing file. *)
      if entries = [] then
        Printf.printf "no jobs selected; writing an empty report\n";
      Obs_sink.write_report ~file entries;
      Printf.printf "\nmetrics report written to %s (%d entries)\n" file
        (List.length entries)
