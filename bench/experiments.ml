(* The experiment harness: one function per experiment in DESIGN.md's
   index (E1..E16).  Each regenerates the table validating the shape of a
   theorem of the paper; EXPERIMENTS.md records paper-claim vs measured.

   All experiments are deterministic given the seeds fixed here. *)

open Tables

let seed = 0xD1412

let stretch k = float_of_int ((2 * k) - 1)

let verify_sampled ?(trials = 12) rng sel ~mode ~k ~f =
  let ok1 =
    Verify.ok (Verify.adversarial ~cfg:(Verify.config ~rng ~trials ()) sel ~mode ~stretch:(stretch k) ~f)
  in
  let ok2 =
    Verify.ok (Verify.random ~cfg:(Verify.config ~rng ~trials ()) sel ~mode ~stretch:(stretch k) ~f)
  in
  ok1 && ok2

(* ------------------------------------------------------------------ *)
(* E1 (Theorem 4): LBC gap correctness and O((m+n) alpha) running time *)

let e1 () =
  banner "E1 (Theorem 4) - LBC(t, alpha): gap correctness and linear time in alpha";
  let rng = Rng.create ~seed in
  subhead "gap correctness against the exact solver (n=18, 300 instances)";
  let agree_yes = ref 0 and must_yes = ref 0 in
  let certified = ref 0 and yes_total = ref 0 in
  for _ = 1 to 300 do
    let g = Generators.connected_gnp rng ~n:18 ~p:0.22 in
    let u = Rng.int rng 18 and v = Rng.int rng 18 in
    if u <> v then begin
      let t = 3 and alpha = 2 in
      (match Lbc_exact.min_cut ~mode:Fault.VFT g ~u ~v ~t ~limit:alpha with
      | Some _ ->
          incr must_yes;
          (match Lbc.decide ~mode:Fault.VFT g ~u ~v ~t ~alpha with
          | Lbc.Yes _ -> incr agree_yes
          | Lbc.No _ -> ())
      | None -> ());
      match Lbc.decide ~mode:Fault.VFT g ~u ~v ~t ~alpha with
      | Lbc.Yes { cut } ->
          incr yes_total;
          if Lbc_exact.is_cut ~mode:Fault.VFT g ~u ~v ~t cut then incr certified
      | Lbc.No _ -> ()
    end
  done;
  row "  completeness: %d/%d instances with a <=alpha cut answered YES (paper: all)"
    !agree_yes !must_yes;
  row "  certificates: %d/%d YES answers carry a genuine length-t cut (paper: all)"
    !certified !yes_total;
  subhead "running time vs alpha (G(n=600, p=0.08), t=3, 400 calls per point)";
  row "  %6s %12s %16s" "alpha" "time/call" "time/(alpha+1)";
  let g = Generators.connected_gnp rng ~n:600 ~p:0.08 in
  let pairs =
    Array.init 400 (fun _ ->
        let u = Rng.int rng 600 in
        let v = Rng.int rng 600 in
        if u = v then (0, 1) else (u, v))
  in
  let points = ref [] in
  List.iter
    (fun alpha ->
      let ws = Lbc.Workspace.create () in
      let (), dt =
        time (fun () ->
            Array.iter
              (fun (u, v) ->
                ignore (Lbc.decide ~ws ~mode:Fault.VFT g ~u ~v ~t:3 ~alpha))
              pairs)
      in
      let per_call = dt /. 400. in
      points := (float_of_int (alpha + 1), per_call) :: !points;
      row "  %6d %10.2f us %13.2f us" alpha (per_call *. 1e6)
        (per_call /. float_of_int (alpha + 1) *. 1e6))
    [ 1; 2; 4; 8; 16; 32 ];
  let slope = Bounds.log_log_slope !points in
  (* Theorem 4's bound is [alpha+1] BFS rounds of O(m+n) each; early exit
     makes the first rounds cheaper, so the honest check is that the
     per-round cost stays below one full O(m+n) BFS. *)
  let (), full_bfs =
    time (fun () -> for src = 0 to 199 do ignore (Bfs.distances g src) done)
  in
  let full_bfs = full_bfs /. 200. in
  let worst_per_round =
    List.fold_left (fun acc (a, t) -> max acc (t /. a)) 0. !points
  in
  row "  log-log slope of time vs (alpha+1): %.2f" slope;
  row "  max per-round cost %.2f us vs one full O(m+n) BFS %.2f us (paper:"
    (worst_per_round *. 1e6) (full_bfs *. 1e6);
  note "each of the alpha+1 rounds costs at most one BFS - Theorem 4)"

(* ------------------------------------------------------------------ *)
(* E2 (Theorems 5+8): validity and size of Algorithm 3                  *)

let e2 () =
  banner "E2 (Theorems 5, 8) - Algorithm 3: valid f-FT (2k-1)-spanner, size shape";
  let rng = Rng.create ~seed in
  subhead "size scaling on complete graphs (worst-case family), k=2, f=2";
  row "  %6s %8s %10s %14s %10s" "n" "m" "|H|" "bound k*f^.5*n^1.5" "ratio";
  let ratios = ref [] and points = ref [] in
  List.iter
    (fun n ->
      let g = Generators.complete n in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
      let bound = Bounds.poly_greedy_size ~k:2 ~f:2 ~n in
      let ratio = float_of_int sel.Selection.size /. bound in
      ratios := ratio :: !ratios;
      points := (float_of_int n, float_of_int sel.Selection.size) :: !points;
      row "  %6d %8d %10d %14.0f %10.3f" n (Graph.m g) sel.Selection.size bound ratio)
    [ 40; 60; 90; 130; 180 ];
  row "  log-log slope of |H| vs n: %.2f (paper bound: <= 1 + 1/k = 1.50)"
    (Bounds.log_log_slope !points);
  subhead "size across f on G(n=250, p=0.25), k=2 (shape: f^{1-1/k} = f^0.5)";
  row "  %6s %10s %14s %10s" "f" "|H|" "bound" "ratio";
  let fpoints = ref [] in
  List.iter
    (fun f ->
      let g = Generators.connected_gnp rng ~n:250 ~p:0.25 in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g in
      let bound = Bounds.poly_greedy_size ~k:2 ~f ~n:250 in
      fpoints := (float_of_int f, float_of_int sel.Selection.size) :: !fpoints;
      row "  %6d %10d %14.0f %10.3f" f sel.Selection.size bound
        (float_of_int sel.Selection.size /. bound))
    [ 1; 2; 4; 8 ];
  row "  log-log slope of |H| vs f: %.2f (paper bound: <= 1 - 1/k = 0.50; graphs"
    (Bounds.log_log_slope !fpoints);
  note "this sparse saturate early, so measured slope is below the bound)";
  subhead "validity spot checks (adversarial + uniform fault sampling)";
  List.iter
    (fun (label, mode, k, f, g) ->
      let sel = Poly_greedy.build ~mode ~k ~f g in
      let ok = verify_sampled rng sel ~mode ~k ~f in
      row "  %-34s |H| = %5d  %s" label sel.Selection.size (verdict ok))
    [
      ("gnp n=200 k=2 f=2 VFT", Fault.VFT, 2, 2, Generators.connected_gnp rng ~n:200 ~p:0.15);
      ("gnp n=200 k=2 f=2 EFT", Fault.EFT, 2, 2, Generators.connected_gnp rng ~n:200 ~p:0.15);
      ("gnp n=150 k=3 f=3 VFT", Fault.VFT, 3, 3, Generators.connected_gnp rng ~n:150 ~p:0.2);
      ("grid 14x14  k=2 f=2 VFT", Fault.VFT, 2, 2, Generators.grid ~rows:14 ~cols:14);
      ("hypercube d=7 k=2 f=4 VFT", Fault.VFT, 2, 4, Generators.hypercube ~dim:7);
    ]

(* ------------------------------------------------------------------ *)
(* E3 (Theorem 9): running time scaling                                 *)

let e3 () =
  banner "E3 (Theorem 9) - Algorithm 3 running time: O(m k f^{2-1/k} n^{1+1/k})";
  let rng = Rng.create ~seed in
  subhead "wall-clock vs n (G(n, p=0.15), k=2, f=2)";
  row "  %6s %8s %10s %12s" "n" "m" "time" "time/bound";
  let points = ref [] in
  List.iter
    (fun n ->
      let g = Generators.connected_gnp rng ~n ~p:0.15 in
      let _, dt = time (fun () -> Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g) in
      let bound = Bounds.poly_greedy_time ~k:2 ~f:2 ~n ~m:(Graph.m g) in
      points := (float_of_int n, dt) :: !points;
      row "  %6d %8d %8.3f s %12.3g" n (Graph.m g) dt (dt /. bound))
    [ 100; 160; 250; 400 ];
  row "  log-log slope of time vs n: %.2f (bound slope with m ~ n^2: 3.5; BFS"
    (Bounds.log_log_slope !points);
  note "balls are much smaller than |E(H)| on these inputs, so measured < bound)";
  subhead "wall-clock vs f (G(n=220, p=0.15), k=2)";
  row "  %6s %10s %12s" "f" "time" "bfs rounds";
  let fpoints = ref [] in
  List.iter
    (fun f ->
      let g = Generators.connected_gnp rng ~n:220 ~p:0.15 in
      let (_, trace), dt =
        time (fun () -> Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f g)
      in
      fpoints := (float_of_int f, dt) :: !fpoints;
      row "  %6d %8.3f s %12d" f dt trace.Poly_greedy.bfs_rounds)
    [ 1; 2; 4; 8; 16 ];
  row "  log-log slope of time vs f: %.2f (paper bound: <= 2 - 1/k = 1.50)"
    (Bounds.log_log_slope !fpoints)

(* ------------------------------------------------------------------ *)
(* E4 (Theorem 2 vs BDPW18/BP19): poly vs exponential greedy            *)

let e4 () =
  banner "E4 (Theorem 2) - polynomial greedy vs exponential greedy (Algorithm 1)";
  let rng = Rng.create ~seed in
  row "  %-22s %8s %8s %10s %10s %10s" "instance" "|H|poly" "|H|exp" "size ratio"
    "t_poly" "t_exp";
  let totals = ref (0, 0) in
  List.iter
    (fun (label, k, f, g) ->
      let poly, t_poly =
        time (fun () -> Poly_greedy.build ~mode:Fault.VFT ~k ~f g)
      in
      let expo, t_exp = time (fun () -> Exp_greedy.build ~mode:Fault.VFT ~k ~f g) in
      let a, b = !totals in
      totals := (a + poly.Selection.size, b + expo.Selection.size);
      row "  %-22s %8d %8d %10.2f %8.3f s %8.3f s" label poly.Selection.size
        expo.Selection.size
        (float_of_int poly.Selection.size /. float_of_int (max 1 expo.Selection.size))
        t_poly t_exp)
    [
      ("K16 k=2 f=1", 2, 1, Generators.complete 16);
      ("K24 k=2 f=1", 2, 1, Generators.complete 24);
      ("K24 k=2 f=2", 2, 2, Generators.complete 24);
      ("K32 k=2 f=2", 2, 2, Generators.complete 32);
      ("gnp n=40 p=.3 k=2 f=1", 2, 1, Generators.connected_gnp rng ~n:40 ~p:0.3);
      ("gnp n=40 p=.3 k=2 f=2", 2, 2, Generators.connected_gnp rng ~n:40 ~p:0.3);
      ("gnp n=32 p=.4 k=3 f=1", 3, 1, Generators.connected_gnp rng ~n:32 ~p:0.4);
    ];
  let p, e = !totals in
  row "  aggregate size ratio poly/exp: %.2f (paper: within O(k) of optimal; k=2..3)"
    (float_of_int p /. float_of_int e);
  subhead "time blowup of the literal BDPW18/BP19 decision (enumerate all fault sets)";
  row "  %6s %12s %12s %12s" "f" "t_naive" "t_branch" "t_poly";
  let rng2 = Rng.create ~seed:(seed + 1) in
  let g = Generators.connected_gnp rng2 ~n:26 ~p:0.35 in
  List.iter
    (fun f ->
      let _, t_naive = time (fun () -> Exp_greedy.build_naive ~mode:Fault.VFT ~k:2 ~f g) in
      let _, t_branch = time (fun () -> Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f g) in
      let _, t_poly = time (fun () -> Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g) in
      row "  %6d %10.3f s %10.3f s %10.3f s" f t_naive t_branch t_poly)
    [ 0; 1; 2; 3 ];
  note "the naive time grows ~n^f per edge (the paper's 'try all sets'),";
  note "while Algorithm 3 stays polynomial - the headline of Theorem 2."

(* ------------------------------------------------------------------ *)
(* E5 (Theorem 10): weighted graphs                                     *)

let e5 () =
  banner "E5 (Theorem 10) - Algorithm 4 on weighted graphs";
  let rng = Rng.create ~seed in
  row "  %-38s %8s %8s %10s %6s" "instance" "m" "|H|" "max str." "check";
  List.iter
    (fun (label, mode, k, f, g) ->
      let sel = Poly_greedy.build ~mode ~k ~f g in
      let worst = ref 1.0 in
      for _ = 1 to 10 do
        let fault = Fault.random rng mode g ~f in
        let s = Verify.max_stretch_under_fault sel fault in
        if s > !worst then worst := s
      done;
      let ok = verify_sampled rng sel ~mode ~k ~f in
      row "  %-38s %8d %8d %10.2f %6s" label (Graph.m g) sel.Selection.size !worst
        (verdict (ok && !worst <= stretch k +. 1e-6)))
    [
      ( "geometric n=300 r=.12 (euclidean w)",
        Fault.VFT, 2, 2,
        Generators.ensure_connected rng
          (Generators.random_geometric rng ~n:300 ~radius:0.12 ~euclidean_weights:true) );
      ( "gnp n=200 p=.15, w~U[0.5,5]",
        Fault.VFT, 2, 2,
        Generators.with_uniform_weights rng
          (Generators.connected_gnp rng ~n:200 ~p:0.15)
          ~lo:0.5 ~hi:5. );
      ( "gnp n=150 p=.2, w~U[1,100] EFT",
        Fault.EFT, 2, 2,
        Generators.with_uniform_weights rng
          (Generators.connected_gnp rng ~n:150 ~p:0.2)
          ~lo:1. ~hi:100. );
      ( "gnp n=150 p=.2, w~U[1,10] k=3",
        Fault.VFT, 3, 2,
        Generators.with_uniform_weights rng
          (Generators.connected_gnp rng ~n:150 ~p:0.2)
          ~lo:1. ~hi:10. );
    ];
  subhead "ablation: same weighted graph, weight order vs violating orders";
  let g =
    Generators.with_uniform_weights rng
      (Generators.connected_gnp rng ~n:80 ~p:0.25)
      ~lo:0.5 ~hi:8.
  in
  List.iter
    (fun (label, order) ->
      let sel = Poly_greedy.build ~order ~mode:Fault.VFT ~k:2 ~f:1 g in
      let worst = ref 1.0 in
      for _ = 1 to 30 do
        let fault = Fault.random rng Fault.VFT g ~f:1 in
        let s = Verify.max_stretch_under_fault sel fault in
        if s > !worst then worst := s
      done;
      row "  %-24s |H| = %5d  max sampled stretch = %6.2f (allowed %.0f)" label
        sel.Selection.size !worst (stretch 2))
    [
      ("nondecreasing (Alg 4)", Poly_greedy.By_weight);
      ("input order", Poly_greedy.Input_order);
      ("reverse (worst case)", Poly_greedy.Reverse_weight);
    ];
  note "orders other than nondecreasing weight void Theorem 10's guarantee -";
  note "the stretch column shows whether the guarantee happened to survive."

(* ------------------------------------------------------------------ *)
(* E6 (Theorems 11+12): LOCAL model                                     *)

let e6 () =
  banner "E6 (Theorems 11, 12) - LOCAL: decomposition + cluster greedy";
  let rng = Rng.create ~seed in
  subhead "rounds and size vs n (G(n, avg deg ~8), k=2, f=1)";
  row "  %6s %8s %8s %8s %10s %12s %8s %6s" "n" "m" "rounds" "cover" "|H|"
    "bound" "ratio" "check";
  let round_points = ref [] in
  List.iter
    (fun n ->
      let g = Generators.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
      let res = Local_spanner.build rng ~mode:Fault.VFT ~k:2 ~f:1 g in
      let sel = res.Local_spanner.selection in
      let bound = Bounds.local_size ~k:2 ~f:1 ~n in
      let ok = verify_sampled ~trials:8 rng sel ~mode:Fault.VFT ~k:2 ~f:1 in
      round_points := (float_of_int n, float_of_int res.Local_spanner.total_rounds) :: !round_points;
      row "  %6d %8d %8d %7.1f%% %10d %12.0f %8.3f %6s" n (Graph.m g)
        res.Local_spanner.total_rounds
        (100. *. Decomposition.coverage res.Local_spanner.decomposition)
        sel.Selection.size bound
        (float_of_int sel.Selection.size /. bound)
        (verdict ok))
    [ 64; 128; 256; 512 ];
  let slope = Bounds.log_log_slope !round_points in
  row "  rounds grow with slope %.2f in n on log-log axes (paper: O(log n) =>" slope;
  note "slope well below any polynomial; log n doubling 64->512 is x1.5)"

(* ------------------------------------------------------------------ *)
(* E7 (Theorems 13-15): CONGEST model                                   *)

let e7 () =
  banner "E7 (Theorems 13-15) - CONGEST: DK11 x Baswana-Sen with scheduling";
  let rng = Rng.create ~seed in
  row "  %6s %4s %6s %8s %8s %8s %8s %10s %12s %6s" "n" "f" "iters" "ph1 rds"
    "ph2 rds" "overlap" "|H|" "bound" "paper rds" "check";
  List.iter
    (fun (n, f) ->
      let g = Generators.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
      let res = Congest_ft.build rng ~c:0.35 ~mode:Fault.VFT ~k:2 ~f g in
      let sel = res.Congest_ft.selection in
      let bound = Bounds.congest_size ~k:2 ~f ~n in
      let paper_rounds = Bounds.congest_rounds ~k:2 ~f ~n in
      let ok = verify_sampled ~trials:8 rng sel ~mode:Fault.VFT ~k:2 ~f in
      row "  %6d %4d %6d %8d %8d %8d %8d %10.0f %12.0f %6s" n f
        res.Congest_ft.iterations res.Congest_ft.phase1_rounds
        res.Congest_ft.phase2_rounds res.Congest_ft.max_overlap
        sel.Selection.size bound paper_rounds (verdict ok))
    [ (64, 1); (64, 2); (128, 1); (128, 2); (128, 3); (256, 2) ];
  note "overlap is the max number of BS instances sharing one edge-round;";
  note "the paper bounds it by O(f log n) w.h.p. - compare with f*log2(n).";
  subhead "CONGEST Baswana-Sen alone (Theorem 14): rounds are O(k^2), data-free";
  row "  %6s %4s %8s %12s" "n" "k" "rounds" "violations";
  List.iter
    (fun (n, k) ->
      let g = Generators.connected_gnp rng ~n ~p:(8. /. float_of_int n) in
      let res = Congest_bs.build rng ~k g in
      row "  %6d %4d %8d %12d" n k res.Congest_bs.rounds
        res.Congest_bs.stats.Net.congest_violations)
    [ (128, 2); (128, 3); (128, 4); (512, 3) ]

(* ------------------------------------------------------------------ *)
(* E8: DK11 vs polynomial greedy across f                               *)

let e8 () =
  banner "E8 - centralized DK11 (f^{2-1/k}) vs polynomial greedy (k f^{1-1/k})";
  let rng = Rng.create ~seed in
  row "  %4s %8s %10s %10s %10s %12s %14s" "f" "m" "|H| dk-bs" "|H| dk-tz"
    "|H| greedy" "measured" "paper ratio ~f/k";
  let tz_algo rng sub = Thorup_zwick.build rng ~k:2 sub in
  List.iter
    (fun f ->
      let g = Generators.connected_gnp rng ~n:220 ~p:0.2 in
      let dk = Dk11.build rng ~mode:Fault.VFT ~k:2 ~f g in
      let dk_tz = Dk11.build rng ~mode:Fault.VFT ~k:2 ~f ~algo:tz_algo g in
      let gr = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g in
      row "  %4d %8d %10d %10d %10d %12.2f %14.2f" f (Graph.m g)
        dk.Selection.size dk_tz.Selection.size gr.Selection.size
        (float_of_int dk.Selection.size /. float_of_int gr.Selection.size)
        (float_of_int f *. log (float_of_int 220) /. 2.))
    [ 1; 2; 3; 4; 6 ];
  note "who wins: the greedy, at every f - by 2.4x to 4.7x here.  At this";
  note "scale DK11's bound exceeds m and its union saturates at the WHOLE";
  note "graph (|H| = m for both plug-in spanners - the reduction, not the";
  note "plug-in, is the bottleneck), while the greedy keeps a real margin.";
  note "The bound-level gap (Theorem 13 vs Theorem 2) is ~(f/k) log n."

(* ------------------------------------------------------------------ *)
(* E9: EFT vs VFT                                                       *)

let e9 () =
  banner "E9 - edge faults vs vertex faults (Section 6 open problem, empirically)";
  let rng = Rng.create ~seed in
  row "  %-26s %3s %3s %10s %10s %10s" "graph" "k" "f" "|H| VFT" "|H| EFT" "EFT/VFT";
  List.iter
    (fun (label, k, f, g) ->
      let v = Poly_greedy.build ~mode:Fault.VFT ~k ~f g in
      let e = Poly_greedy.build ~mode:Fault.EFT ~k ~f g in
      row "  %-26s %3d %3d %10d %10d %10.3f" label k f v.Selection.size
        e.Selection.size
        (float_of_int e.Selection.size /. float_of_int v.Selection.size))
    [
      ("gnp n=200 p=.15", 2, 1, Generators.connected_gnp rng ~n:200 ~p:0.15);
      ("gnp n=200 p=.15", 2, 2, Generators.connected_gnp rng ~n:200 ~p:0.15);
      ("gnp n=200 p=.15", 2, 4, Generators.connected_gnp rng ~n:200 ~p:0.15);
      ("gnp n=200 p=.12", 3, 2, Generators.connected_gnp rng ~n:200 ~p:0.12);
      ("gnp n=200 p=.12", 3, 4, Generators.connected_gnp rng ~n:200 ~p:0.12);
      ("K100", 2, 2, Generators.complete 100);
      ("hypercube d=7", 3, 2, Generators.hypercube ~dim:7);
      ("barabasi-albert n=200", 3, 2, Generators.barabasi_albert rng ~n:200 ~attach:4);
    ];
  note "at k=2 the two modes coincide on these inputs: a 2-hop detour has a";
  note "single interior vertex, so vertex cuts and edge cuts collapse.  From";
  note "k=3 on, detours share vertices without sharing edges and EFT spanners";
  note "come out (slightly) sparser - consistent with the weaker EFT lower";
  note "bound (f^{(1-1/k)/2}) the paper's Section 6 highlights as open."

(* ------------------------------------------------------------------ *)
(* E10: ordering ablation (Theorem 8 holds for any order)               *)

let e10 () =
  banner "E10 - edge-ordering ablation on unit weights (Theorem 8: any order works)";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:180 ~p:0.2 in
  let build order = (Poly_greedy.build ~order ~mode:Fault.VFT ~k:2 ~f:2 g).Selection.size in
  let shuffles =
    List.map (fun s -> build (Poly_greedy.Shuffled (Rng.create ~seed:s))) [ 1; 2; 3; 4; 5 ]
  in
  row "  input order       : %d edges" (build Poly_greedy.Input_order);
  row "  by weight         : %d edges" (build Poly_greedy.By_weight);
  row "  reverse weight    : %d edges" (build Poly_greedy.Reverse_weight);
  row "  5 random shuffles : min %d / mean %.0f / max %d edges"
    (List.fold_left min max_int shuffles)
    (mean (List.map float_of_int shuffles))
    (List.fold_left max 0 shuffles);
  let bound = Bounds.poly_greedy_size ~k:2 ~f:2 ~n:180 in
  note "Theorem 8 bound for all orders: %.0f edges; spread across orders is" bound;
  note "small, confirming the order-free size analysis."

(* ------------------------------------------------------------------ *)
(* E11: the analysis machinery (Lemmas 6-7) + how far from minimal      *)

let e11 () =
  banner "E11 (Lemmas 6, 7) - blocking sets, the girth subsample, and minimality";
  subhead "Lemma 6: certificates assemble into a (2k)-blocking set";
  row "  %-22s %8s %10s %12s %10s" "instance" "|H|" "|B|" "Lemma6 bound" "blocking?";
  let lemma7_inputs = ref [] in
  List.iter
    (fun (label, k, f, g) ->
      let sel, certs = Poly_greedy.build_with_certificates ~mode:Fault.VFT ~k ~f g in
      let b = Blocking.of_certificates sel certs in
      let status =
        match Blocking.is_blocking b ~t_bound:(2 * k) with
        | Ok None -> "yes"
        | Ok (Some _) -> "NO"
        | Error _ -> "(cycle limit)"
      in
      if k = 2 then lemma7_inputs := (label, f, b) :: !lemma7_inputs;
      row "  %-22s %8d %10d %12d %10s" label sel.Selection.size (Blocking.size b)
        (Blocking.lemma6_bound ~k ~f ~spanner_size:sel.Selection.size)
        status)
    [
      ("gnp n=60 k=2 f=1", 2, 1, Generators.connected_gnp (Rng.create ~seed) ~n:60 ~p:0.25);
      ("gnp n=60 k=2 f=2", 2, 2, Generators.connected_gnp (Rng.create ~seed) ~n:60 ~p:0.25);
      ("gnp n=40 k=3 f=1", 3, 1, Generators.connected_gnp (Rng.create ~seed) ~n:40 ~p:0.3);
      ("K40  k=2 f=2", 2, 2, Generators.complete 40);
    ];
  subhead "Lemma 7: random subsample minus blocked edges has girth > 2k (deterministic)";
  row "  %-22s %4s %10s %12s %14s %10s" "instance" "f" "nodes" "edges" "lemma E[edges]" "girth>2k";
  let rng = Rng.create ~seed in
  List.iter
    (fun (label, f, b) ->
      let s = Blocking.lemma7_subsample rng b ~k:2 ~f in
      row "  %-22s %4d %10d %12d %14.1f %10s" label f s.Blocking.sampled_nodes
        s.Blocking.surviving_edges s.Blocking.expected_edges
        (if s.Blocking.girth_exceeds_2k then "yes" else "NO"))
    (List.rev !lemma7_inputs);
  subhead "minimality: sound exact pruning of the greedy output (k=2, f=1)";
  row "  %-22s %10s %10s %12s" "instance" "|H| greedy" "|H| pruned" "slack";
  List.iter
    (fun (label, g) ->
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
      let res = Prune.minimalize ~mode:Fault.VFT ~k:2 ~f:1 sel in
      row "  %-22s %10d %10d %11.1f%%" label sel.Selection.size
        res.Prune.pruned.Selection.size
        (100. *. float_of_int res.Prune.removed /. float_of_int (max 1 sel.Selection.size)))
    [
      ("gnp n=40 p=.3", Generators.connected_gnp (Rng.create ~seed) ~n:40 ~p:0.3);
      ("gnp n=50 p=.2", Generators.connected_gnp (Rng.create ~seed) ~n:50 ~p:0.2);
      ("K24", Generators.complete 24);
      ("hypercube d=5", Generators.hypercube ~dim:5);
    ];
  note "small slack = Algorithm 2's k-approximation loses little in practice,";
  note "matching E4's finding that the size ratio to Algorithm 1 is ~1."

(* ------------------------------------------------------------------ *)
(* E12: batched greedy - the conclusion's parallelization question      *)

let e12 () =
  banner "E12 (Conclusion) - batched greedy: size cost of parallel decisions";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:150 ~p:0.2 in
  let m = Graph.m g in
  row "  graph: gnp n=150 p=.2 (m=%d), k=2 f=1, VFT" m;
  row "  %10s %8s %10s %12s" "batch" "rounds" "|H|" "vs batch=1";
  let base = ref 0 in
  List.iter
    (fun batch ->
      let res = Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 ~batch g in
      let size = res.Batch_greedy.selection.Selection.size in
      if batch = 1 then base := size;
      row "  %10d %8d %10d %12.2f" batch res.Batch_greedy.batches size
        (float_of_int size /. float_of_int (max 1 !base)))
    [ 1; 4; 16; 64; 256; m ];
  note "batch=1 is Algorithm 3; batch=m decides every edge against the";
  note "empty spanner and keeps the whole graph.  The curve quantifies the";
  note "conclusion's remark that the greedy resists parallelization: each";
  note "x4 of parallelism costs a modest, then catastrophic, size factor.";
  subhead "multicore decision phase (OCaml domains, batch=512)";
  let cores = Domain.recommended_domain_count () in
  row "  this machine exposes %d core(s) (Domain.recommended_domain_count)" cores;
  row "  %10s %10s %10s" "domains" "time" "speedup";
  let g2 = Generators.connected_gnp rng ~n:300 ~p:0.2 in
  let base_time = ref 0. in
  List.iter
    (fun domains ->
      let _, dt =
        time (fun () ->
            Exec.Pool.with_pool ~domains (fun pool ->
                Batch_greedy.build ~pool ~mode:Fault.VFT ~k:2 ~f:2 ~batch:512
                  g2))
      in
      if domains = 1 then base_time := dt;
      row "  %10d %8.3f s %10.2f" domains dt (!base_time /. dt))
    [ 1; 2; 4 ];
  note "the decision phase shares no mutable state across calls, so extra";
  note "domains give real speedup exactly when the machine has extra cores;";
  note "on a single-core container the table shows pure scheduling overhead.";
  note "Output is identical at every domain count (checked by the tests)."

(* ------------------------------------------------------------------ *)
(* E13: streaming arrivals (order-free Theorem 8 put to work online)    *)

let e13 () =
  banner "E13 - incremental arrivals: the online greedy (unit weights)";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:200 ~p:0.15 in
  let m = Graph.m g in
  row "  graph: gnp n=200 p=.15 (m=%d), k=2 f=2, VFT; sizes after each quarter" m;
  row "  %-18s %8s %8s %8s %8s %10s" "arrival order" "25%" "50%" "75%" "100%"
    "vs offline";
  let offline =
    (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g).Selection.size
  in
  let stream label order_edges =
    let d =
      Dynamic.create
        ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:2 ())
        (Graph.create 200)
    in
    let marks = ref [] in
    Array.iteri
      (fun i e ->
        ignore
          (Dynamic.apply d
             [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = e.Graph.w } ]);
        if (i + 1) mod (m / 4) = 0 then marks := Dynamic.size d :: !marks)
      order_edges;
    let marks = List.rev !marks in
    let final = Dynamic.size d in
    row "  %-18s %8d %8d %8d %8d %10.2f" label (List.nth marks 0)
      (List.nth marks 1) (List.nth marks 2) final
      (float_of_int final /. float_of_int offline)
  in
  let sorted = Graph.edge_array g in
  stream "insertion order" sorted;
  let shuffled = Graph.edge_array g in
  Rng.shuffle rng shuffled;
  stream "random order" shuffled;
  (* adversarial-ish: highest-degree endpoints first *)
  let busy = Graph.edge_array g in
  let deg e = Graph.degree g e.Graph.u + Graph.degree g e.Graph.v in
  Array.sort (fun a b -> compare (deg b) (deg a)) busy;
  stream "hubs first" busy;
  note "offline (sorted) size: %d.  Theorem 8's order-free bound predicts" offline;
  note "every arrival order lands within the same O(k f^{1-1/k} n^{1+1/k});";
  note "measured spread across orders is a few percent."

(* ------------------------------------------------------------------ *)
(* E14: synchronizers over spanner skeletons (the PU89 application)     *)

let e14 () =
  banner "E14 (application) - alpha synchronizer over spanner skeletons";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:120 ~p:0.08 in
  let bfs_tree =
    let dist = Bfs.distances g 0 in
    let ids = ref [] in
    for v = 1 to Graph.n g - 1 do
      let best = ref (-1) in
      Graph.iter_neighbors g v (fun y id ->
          if dist.(y) = dist.(v) - 1 && !best < 0 then best := id);
      if !best >= 0 then ids := !best :: !ids
    done;
    Selection.of_ids g !ids
  in
  let skeletons =
    [
      ("all edges", Selection.full g);
      ("BFS tree", bfs_tree);
      ("3-spanner f=0", Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:0 g);
      ("FT spanner f=2", Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g);
    ]
  in
  let by_degree = Array.init (Graph.n g) (fun v -> (Graph.degree g v, v)) in
  Array.sort (fun a b -> compare b a) by_degree;
  let victims = [ snd by_degree.(0); snd by_degree.(1) ] in
  List.iter
    (fun (scenario, failures) ->
      subhead scenario;
      row "  %-20s %8s %10s %8s %8s %10s" "skeleton" "edges" "messages" "pulses"
        "skew" "connected";
      List.iter
        (fun (name, skel) ->
          let rep =
            Synchronizer.run (Rng.create ~seed:5) ?failures ~pulses:10
              ~skeleton:skel g
          in
          row "  %-20s %8d %10d %8d %8.2f %10b" name
            rep.Synchronizer.skeleton_edges rep.Synchronizer.messages
            rep.Synchronizer.pulses rep.Synchronizer.max_skew
            rep.Synchronizer.survivors_connected)
        skeletons)
    [
      ("fault-free", None);
      ("two busiest nodes crash at t=2.5", Some (2.5, victims));
    ];
  note "messages scale with skeleton size, skew with skeleton stretch, and";
  note "under crashes only the fault-tolerant skeleton keeps both guarantees";
  note "- the Peleg-Ullman synchronizer story, with fault tolerance added."

(* ------------------------------------------------------------------ *)
(* E15: the BDPW18 lower-bound family - exact optimality of the greedy  *)

let e15 () =
  banner "E15 (BDPW18 lower bound) - hard instances force every edge";
  row "  %-30s %4s %8s %8s %10s %12s" "instance" "f" "n" "m" "|H| greedy"
    "forced = m?";
  List.iter
    (fun (q, f) ->
      let base = Lower_bound.projective_plane_incidence ~q in
      let g = Lower_bound.hard_instance ~f base in
      let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f g in
      row "  PG(2,%d) x%d blow-up %12s %4d %8d %8d %10d %12s" q
        (Lower_bound.copies_for ~f) "" f (Graph.n g) (Graph.m g)
        sel.Selection.size
        (if sel.Selection.size = Graph.m g then "yes" else "NO"))
    [ (2, 0); (2, 2); (2, 4); (3, 2); (3, 4); (5, 2) ];
  note "girth-6 incidence graphs blown up by floor(f/2)+1 admit no sparser";
  note "f-VFT 3-spanner than the whole graph, Theta(f^{1/2} n^{3/2}) edges;";
  note "the greedy keeps exactly that - it is optimal on the extremal";
  note "family, with zero slack.  (Contrast with E2, where random inputs";
  note "sit far below the worst case.)"

(* ------------------------------------------------------------------ *)
(* E16: scalability - the polynomial algorithm at adoption-relevant n    *)

let e16 () =
  banner "E16 - scalability of Algorithm 3 (sparse graphs, avg degree 10)";
  let rng = Rng.create ~seed in
  row "  %8s %10s %10s %10s %12s %10s" "n" "m" "|H|" "time" "edges/sec" "heap MW";
  List.iter
    (fun n ->
      let g = Generators.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
      Gc.compact ();
      let sel, dt = time (fun () -> Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g) in
      let stat = Gc.quick_stat () in
      row "  %8d %10d %10d %8.2f s %12.0f %10.1f" n (Graph.m g)
        sel.Selection.size dt
        (float_of_int (Graph.m g) /. dt)
        (float_of_int stat.Gc.top_heap_words /. 1e6))
    [ 1_000; 2_000; 4_000; 8_000 ];
  subhead "denser inputs (avg degree 40): real sparsification at scale";
  row "  %8s %10s %10s %10s %10s" "n" "m" "|H|" "kept" "time";
  List.iter
    (fun n ->
      let g = Generators.connected_gnp rng ~n ~p:(40. /. float_of_int n) in
      let sel, dt = time (fun () -> Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g) in
      row "  %8d %10d %10d %9.1f%% %8.2f s" n (Graph.m g) sel.Selection.size
        (100. *. float_of_int sel.Selection.size /. float_of_int (Graph.m g))
        dt)
    [ 1_000; 2_000 ];
  subhead "validation at n=2000 (8 sampled fault sets)";
  let g = Generators.connected_gnp rng ~n:2000 ~p:0.005 in
  let sel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 g in
  let ok = verify_sampled ~trials:4 rng sel ~mode:Fault.VFT ~k:2 ~f:2 in
  row "  n=2000 m=%d |H|=%d: %s" (Graph.m g) sel.Selection.size (verdict ok);
  subhead "storage tier: 10^6-edge graphs - int vs int32 backend + binary IO";
  row "  %9s %11s %11s %9s %9s %9s %9s" "m" "int B" "int32 B" "bfs int"
    "bfs i32" "load txt" "load bin";
  List.iter
    (fun m ->
      let n = m / 4 in
      let g = Generators.gnm rng ~n ~m in
      let g32 = Graph.with_backend Csr.Int32_bigarray g in
      let sweep gr () =
        let acc = ref 0 in
        for s = 0 to 9 do
          let d = Bfs.distances gr (s * (n / 10)) in
          acc := !acc + Array.fold_left ( + ) 0 d
        done;
        !acc
      in
      let sum_int, bfs_int = time (sweep g) in
      let sum_i32, bfs_i32 = time (sweep g32) in
      assert (sum_int = sum_i32);
      let t_text, t_bin =
        let tmp suffix fn =
          let file = Filename.temp_file "ftspan_e16" suffix in
          Fun.protect
            ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
            (fun () -> fn file)
        in
        tmp ".graph" @@ fun text_file ->
        tmp ".ftsb" @@ fun bin_file ->
        Graph_io.save g text_file;
        Graph_io.save g bin_file;
        let _, t_text = time (fun () -> Graph_io.load text_file) in
        let _, t_bin = time (fun () -> Graph_io.load bin_file) in
        (t_text, t_bin)
      in
      row "  %9d %11d %11d %7.2f s %7.2f s %7.2f s %7.2f s" m
        (Graph.resident_bytes g)
        (Graph.resident_bytes g32)
        bfs_int bfs_i32 t_text t_bin)
    [ 1_000_000; 2_000_000 ];
  note "the int32 Bigarray backend halves the packed-adjacency bytes and the";
  note "ftspan.graph.v1 binary format loads it near-zero-copy (Unix.map_file);";
  note "the same tier extends to 10^7 edges via ftspan generate -o g.ftsb.";
  note "throughput stays in the ~100k edges/second range across the sweep;";
  note "a commodity core handles 10^4-vertex networks in seconds, which is";
  note "the practical payoff of replacing the exponential-time greedy."

(* ------------------------------------------------------------------ *)
(* E17: reliability of the randomized constructions over many seeds     *)

let e17 () =
  banner "E17 - 'w.h.p.' made concrete: failure rates over 30 seeds";
  let seeds = List.init 30 (fun i -> 1000 + i) in
  subhead "DK11 (Theorem 13): adversarial verification pass rate vs constant c";
  row "  %6s %8s %12s %14s" "c" "iters" "pass rate" "(n=60, f=2, k=2)";
  List.iter
    (fun c ->
      let passes = ref 0 in
      List.iter
        (fun s ->
          let r = Rng.create ~seed:s in
          let g = Generators.connected_gnp r ~n:60 ~p:0.2 in
          let sel = Dk11.build r ~mode:Fault.VFT ~k:2 ~f:2 ~c g in
          if
            Verify.ok
              (Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:20 ()) sel ~mode:Fault.VFT ~stretch:3.0
                 ~f:2)
          then incr passes)
        seeds;
      row "  %6.2f %8d %10d/30 %14s" c
        (Dk11.iterations ~c ~f:2 ~n:60 ())
        !passes "")
    [ 0.05; 0.15; 0.5; 1.0 ];
  note "the iteration formula ceil(c e (f+1)^3 ln n) with c = 1 leaves no";
  note "observed failures; starving it (c <= 0.15) makes the residual risk";
  note "measurable - the experiment DESIGN.md section 5 promises.";
  subhead "padded decomposition (Theorem 11.4): edge coverage over 30 seeds";
  let total_cov = ref 0. and min_cov = ref 1.0 and full = ref 0 in
  List.iter
    (fun s ->
      let r = Rng.create ~seed:s in
      let g = Generators.connected_gnp r ~n:100 ~p:0.08 in
      let d = Decomposition.run r g in
      let cov = Decomposition.coverage d in
      total_cov := !total_cov +. cov;
      if cov < !min_cov then min_cov := cov;
      if cov >= 1.0 then incr full)
    seeds;
  row "  mean coverage %.4f, min %.4f, fully padded %d/30 (paper: w.h.p. all)"
    (!total_cov /. 30.) !min_cov !full;
  subhead "CONGEST FT spanner (Theorem 15): validity over 30 seeds (n=48, f=2)";
  let passes = ref 0 in
  List.iter
    (fun s ->
      let r = Rng.create ~seed:s in
      let g = Generators.connected_gnp r ~n:48 ~p:0.2 in
      let res = Congest_ft.build r ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:2 g in
      if
        Verify.ok
          (Verify.adversarial ~cfg:(Verify.config ~rng:r ~trials:15 ()) res.Congest_ft.selection ~mode:Fault.VFT
             ~stretch:3.0 ~f:2)
      then incr passes)
    seeds;
  row "  pass rate %d/30 at c = 0.5" !passes

(* ------------------------------------------------------------------ *)
(* Smoke subset: seconds-scale runs of the three core pipelines          *)
(* (centralized LBC, the greedy, the distributed constructions), meant   *)
(* for CI (@bench-smoke alias) and cheap metrics-trajectory snapshots.   *)

let smoke_lbc () =
  banner "smoke-lbc - LBC(t, alpha) decisions on G(200, 0.08)";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:200 ~p:0.08 in
  let ws = Lbc.Workspace.create () in
  let yes = ref 0 and total = ref 0 in
  for _ = 1 to 400 do
    let u = Rng.int rng 200 and v = Rng.int rng 200 in
    if u <> v then begin
      incr total;
      match Lbc.decide ~ws ~mode:Fault.VFT g ~u ~v ~t:3 ~alpha:2 with
      | Lbc.Yes _ -> incr yes
      | Lbc.No _ -> ()
    end
  done;
  row "  %d/%d decisions answered YES (t=3, alpha=2)" !yes !total

let smoke_greedy () =
  banner "smoke-greedy - Algorithm 3 on G(150, 0.1), k=2 f=2";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:150 ~p:0.1 in
  let sel, trace = Poly_greedy.build_traced ~mode:Fault.VFT ~k:2 ~f:2 g in
  let ok = verify_sampled ~trials:4 rng sel ~mode:Fault.VFT ~k:2 ~f:2 in
  row "  |H| = %d/%d edges, %d LBC calls, %d BFS rounds, %s" sel.Selection.size
    (Graph.m g) trace.Poly_greedy.lbc_calls trace.Poly_greedy.bfs_rounds
    (verdict ok)

let smoke_distributed () =
  banner "smoke-distributed - LOCAL (n=64) and CONGEST (n=48) constructions";
  let rng = Rng.create ~seed in
  let g1 = Generators.connected_gnp rng ~n:64 ~p:(8. /. 64.) in
  let res = Local_spanner.build rng ~mode:Fault.VFT ~k:2 ~f:1 g1 in
  row "  LOCAL:   %4d rounds, |H| = %d/%d" res.Local_spanner.total_rounds
    res.Local_spanner.selection.Selection.size (Graph.m g1);
  let g2 = Generators.connected_gnp rng ~n:48 ~p:0.2 in
  let res2 = Congest_ft.build rng ~c:0.5 ~mode:Fault.VFT ~k:2 ~f:1 g2 in
  row "  CONGEST: %4d rounds, |H| = %d/%d" res2.Congest_ft.total_rounds
    res2.Congest_ft.selection.Selection.size (Graph.m g2)

let smoke_synchronizer_lossy () =
  banner
    "synchronizer-lossy - alpha synchronizer over a lossy network \
     (drop=0.15, dup=0.05, reliable delivery)";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:48 ~p:0.15 in
  let skel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  let clean =
    Synchronizer.run (Rng.create ~seed:5) ~pulses:6 ~skeleton:skel g
  in
  let chaos = Chaos.plan ~drop:0.15 ~dup:0.05 ~seed:7 () in
  let lossy =
    Synchronizer.run (Rng.create ~seed:5) ~chaos ~pulses:6 ~skeleton:skel g
  in
  row "  clean: %4d messages, %d pulses" clean.Synchronizer.messages
    clean.Synchronizer.pulses;
  row "  lossy: %4d messages (%d retransmits), %d pulses, %s"
    lossy.Synchronizer.messages lossy.Synchronizer.retransmits
    lossy.Synchronizer.pulses
    (verdict (lossy.Synchronizer.pulses = clean.Synchronizer.pulses))

let congest_hotpath () =
  banner
    "congest-hotpath - per-edge physical congestion under a dup-heavy \
     chaos plan (n=32, 8 broadcast rounds)";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:32 ~p:0.2 in
  let skel = Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g in
  let flood chaos =
    let net =
      match chaos with
      | None -> Net.create ~model:Net.Local ~bits:(fun _ -> 16) g
      | Some ch -> Net.create ~chaos:ch ~model:Net.Local ~bits:(fun _ -> 16) g
    in
    Net.set_skeleton net skel.Selection.selected;
    for _ = 1 to 8 do
      for v = 0 to Graph.n g - 1 do
        Net.broadcast net ~src:v v
      done;
      Net.next_round net
    done;
    net
  in
  let clean = flood None in
  let lossy = flood (Some (Chaos.start (Chaos.plan ~dup:0.25 ~seed:11 ()))) in
  let sc = Net.stats clean and sl = Net.stats lossy in
  row "  offered load: %d messages / %d bits, %s" sl.Net.messages
    sl.Net.total_bits
    (verdict
       (sc.Net.messages = sl.Net.messages
       && sc.Net.total_bits = sl.Net.total_bits));
  row "  physical hot slot: %d bits/round clean, %d bits/round with dup=0.25"
    sc.Net.max_edge_round_bits sl.Net.max_edge_round_bits;
  row "  spanner-edge bits %d vs other %d (skeleton %d/%d edges)"
    (Obs.Counter.value (Obs.counter "net.bits.spanner"))
    (Obs.Counter.value (Obs.counter "net.bits.other"))
    skel.Selection.size (Graph.m g);
  List.iter
    (fun he -> row "  hot: %s" (Format.asprintf "%a" Net.pp_hot_edge he))
    (Net.hot_edges ~top:5 lossy)

let greedy_parallel () =
  let jobs = Exec.default_jobs () in
  banner
    (Printf.sprintf
       "greedy-parallel - batched greedy on a persistent Exec pool (jobs=%d)"
       jobs);
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:150 ~p:0.1 in
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  let res, dt =
    time (fun () ->
        Batch_greedy.build ~pool ~mode:Fault.VFT ~k:2 ~f:2 ~batch:512 g)
  in
  let sel = res.Batch_greedy.selection in
  let ok = verify_sampled ~trials:4 rng sel ~mode:Fault.VFT ~k:2 ~f:2 in
  row "  |H| = %d/%d edges in %d batches, %.3f s, %s" sel.Selection.size
    (Graph.m g) res.Batch_greedy.batches dt (verdict ok);
  row
    "  selection and lbc.*/batch_greedy.* counters are identical at every \
     jobs count; only wall time and the pool.* scheduling series move"

(* The shard gate of the decomposition-sharding PR: Theorem 11 run
   natively — padded partition, per-cluster greedy on the pool, union —
   must stay a valid spanner within the O(log n) size factor of the
   sequential build, with the cluster/boundary counters pinned by the
   baseline (they are seed-deterministic, unlike wall time). *)
let shard_build () =
  let jobs = Exec.default_jobs () in
  banner
    (Printf.sprintf
       "shard-build - decomposition-sharded greedy vs sequential on \
        G(200, 0.08) (jobs=%d)"
       jobs);
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:200 ~p:0.08 in
  let seq, seq_dt =
    time (fun () -> Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 g)
  in
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  let res, dt =
    time (fun () ->
        Shard_build.build ~rng:(Rng.create ~seed) ~pool ~mode:Fault.VFT ~k:2
          ~f:1 g)
  in
  let sel = res.Shard_build.selection in
  let ok = verify_sampled ~trials:4 rng sel ~mode:Fault.VFT ~k:2 ~f:1 in
  let inflation =
    float_of_int sel.Selection.size /. float_of_int seq.Selection.size
  in
  let log2n = log (float_of_int (Graph.n g)) /. log 2. in
  row "  sequential |H| = %d in %.3f s; sharded |H| = %d/%d in %.3f s"
    seq.Selection.size seq_dt sel.Selection.size (Graph.m g) dt;
  row "  %d clusters over %d partitions, %d boundary edges, coverage %.3f"
    res.Shard_build.clusters
    (Array.length res.Shard_build.partition.Shard_partition.partitions)
    res.Shard_build.boundary_edges
    (Shard_partition.coverage res.Shard_build.partition);
  row "  size inflation %.2fx (log2 n = %.1f), valid spanner: %s" inflation
    log2n
    (verdict (ok && inflation <= log2n));
  row
    "  selection and shard.* counters are identical at every jobs count; \
     only wall time and the pool.* scheduling series move"

(* The other half of the same gate: DK11's independent iterations as
   parallel_for work items over pre-split rng streams. *)
let dk11_parallel () =
  let jobs = Exec.default_jobs () in
  banner
    (Printf.sprintf
       "dk11-parallel - DK11 iterations fanned out over the pool on \
        G(120, 0.08) (jobs=%d)"
       jobs);
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:120 ~p:0.08 in
  Exec.Pool.with_pool ~domains:jobs @@ fun pool ->
  let sel, dt =
    time (fun () ->
        Dk11.build (Rng.create ~seed) ~mode:Fault.VFT ~k:2 ~f:1 ~pool g)
  in
  let ok = verify_sampled ~trials:4 rng sel ~mode:Fault.VFT ~k:2 ~f:1 in
  row "  |H| = %d/%d edges over %d iterations in %.3f s, %s"
    sel.Selection.size (Graph.m g)
    (Dk11.iterations ~f:1 ~n:(Graph.n g) ())
    dt (verdict ok);
  row
    "  iterations draw from streams pre-split before the fan-out, so the \
     selection is bit-identical at every jobs count"

let with_temp suffix fn =
  let file = Filename.temp_file "ftspan_bench" suffix in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> fn file)

let file_bytes file = (Unix.stat file).Unix.st_size

(* The io-load gate of the storage PR: a million-edge graph must survive
   text -> binary -> text bit-identically, and the near-zero-copy binary
   load must beat the text parse by >= 10x. *)
let io_load () =
  banner "io-load - ftspan.graph.v1 binary vs text parse on a 10^6-edge graph";
  let rng = Rng.create ~seed in
  let g, gen_dt = time (fun () -> Generators.gnm rng ~n:250_000 ~m:1_000_000) in
  row "  generated gnm n=%d m=%d in %.2f s" (Graph.n g) (Graph.m g) gen_dt;
  with_temp ".graph" @@ fun text_file ->
  with_temp ".ftsb" @@ fun bin_file ->
  let (), t_text_save = time (fun () -> Graph_io.save g text_file) in
  let (), t_bin_save = time (fun () -> Graph_io.save g bin_file) in
  (* Best of three per load: one GC major slice landing inside a 0.1 s
     load would swing the ratio by 2-3x, so take the min (the standard
     way to measure the code rather than the collector). *)
  let best_load file =
    let graph = ref None in
    let best = ref infinity in
    for _ = 1 to 3 do
      let gr, dt = time (fun () -> Graph_io.load file) in
      if dt < !best then best := dt;
      graph := Some gr
    done;
    (Option.get !graph, !best)
  in
  let gt, t_text_load = best_load text_file in
  let gb, t_bin_load = best_load bin_file in
  row "  text: save %5.2f s, load %5.2f s  (%9d bytes)" t_text_save t_text_load
    (file_bytes text_file);
  row "  ftsb: save %5.2f s, load %5.2f s  (%9d bytes, %s backend)" t_bin_save
    t_bin_load (file_bytes bin_file)
    (Csr.backend_name (Graph.backend gb));
  let speedup = t_text_load /. t_bin_load in
  (* Lossless means the canonical text of all three agrees: the original,
     the text-parsed copy, and the binary-loaded copy. *)
  let canon = Graph_io.to_string g in
  let lossless =
    canon = Graph_io.to_string gt && canon = Graph_io.to_string gb
  in
  let bfs_equal = Bfs.distances gt 0 = Bfs.distances gb 0 in
  row "  round trip lossless: %s   bfs identical: %s"
    (verdict lossless) (verdict bfs_equal);
  row "  binary load speedup: %.1fx over text parse, %s (>= 10x required)"
    speedup
    (verdict (speedup >= 10.))

(* Both storage backends must drive the BFS inner loop to identical
   layers; the entry runs the same sweep twice so the checked-in bfs.*
   counters pin the equality. *)
let bfs_hotpath_int32 () =
  banner "bfs-hotpath-int32 - BFS sweep: int vs int32 backends, identical layers";
  let rng = Rng.create ~seed in
  let n = 20_000 in
  let g = Generators.connected_gnp rng ~n ~p:(10. /. float_of_int n) in
  let g32 = Graph.with_backend Csr.Int32_bigarray g in
  let sweep gr =
    let acc = ref 0 in
    for s = 0 to 49 do
      let d = Bfs.distances gr (s * (n / 50)) in
      acc := !acc + Array.fold_left ( + ) 0 d
    done;
    !acc
  in
  let sum_int, dt_int = time (fun () -> sweep g) in
  let sum_i32, dt_i32 = time (fun () -> sweep g32) in
  row "  %-6s backend: %8d adjacency bytes, 50-source sweep %.3f s" "int"
    (Graph.resident_bytes g) dt_int;
  row "  %-6s backend: %8d adjacency bytes, 50-source sweep %.3f s" "int32"
    (Graph.resident_bytes g32) dt_i32;
  row "  distance checksums %d vs %d: %s" sum_int sum_i32
    (verdict (sum_int = sum_i32 && Bfs.distances g 0 = Bfs.distances g32 0))

(* The dynamic-service gate of the service PR: update throughput on a
   sparse grid, and the repair-locality claim — after a deletion the
   repair walks the (2k-1)-hop neighborhood of the cut in the old
   spanner, so on a grid the touched-vertex count is a small constant
   region, not O(n).  The dynamic.* counters land in the checked-in
   baseline, pinning both the decision stream and the repair extent. *)
let dynamic_updates () =
  banner "dynamic-updates - arbitrary-order updates on a 30x30 grid (n=900)";
  let g = Generators.grid ~rows:30 ~cols:30 in
  let n = Graph.n g and m = Graph.m g in
  let d =
    Dynamic.create
      ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ())
      (Graph.create n)
  in
  let (), dt =
    time (fun () ->
        Graph.iter_edges g (fun e ->
            ignore
              (Dynamic.apply d
                 [ Dynamic.Insert { u = e.Graph.u; v = e.Graph.v; w = e.Graph.w } ])))
  in
  row "  %d inserts in %.3f s (%.0f inserts/s), spanner %d/%d" m dt
    (float_of_int m /. dt) (Dynamic.size d) m;
  let sel = Dynamic.snapshot d in
  let doomed = ref [] in
  List.iteri
    (fun i id ->
      if i mod 97 = 0 then
        doomed := Graph.endpoints sel.Selection.source id :: !doomed)
    (Selection.ids sel);
  let worst = ref 0 and total = ref 0 and dels = ref 0 in
  List.iter
    (fun (u, v) ->
      let s = Dynamic.apply d [ Dynamic.Delete_edge { u; v } ] in
      incr dels;
      total := !total + s.Dynamic.touched_vertices;
      if s.Dynamic.touched_vertices > !worst then
        worst := s.Dynamic.touched_vertices)
    !doomed;
  row "  %d deletions: repair touched %d vertices total, worst region %d" !dels
    !total !worst;
  row "  locality: worst repair region %.1f%% of n=%d, %s (< 25%% required)"
    (100. *. float_of_int !worst /. float_of_int n)
    n
    (verdict (!worst < n / 4));
  let rng = Rng.create ~seed in
  let ok =
    verify_sampled ~trials:2 rng (Dynamic.snapshot d) ~mode:Fault.VFT ~k:2 ~f:1
  in
  row "  post-repair selection verifies sampled: %s" (verdict ok)

(* The query-plane half of the same gate: one large fault-masked batch;
   the dynamic.query_latency log-histogram feeds the report's quantile
   block (p99 is the headline number), and dynamic.queries pins the
   batch shape. *)
let dynamic_query () =
  banner "dynamic-query - fault-masked query batches on G(300, 0.03)";
  let rng = Rng.create ~seed in
  let g = Generators.connected_gnp rng ~n:300 ~p:0.03 in
  let d = Dynamic.create ~opts:(Dynamic.opts ~mode:Fault.VFT ~k:2 ~f:1 ()) g in
  let pairs =
    Array.init 2000 (fun _ -> (Rng.int rng 300, Rng.int rng 300))
  in
  let faults = Fault.of_vertices [ 7; 123 ] in
  let res, dt = time (fun () -> Dynamic.query_batch d ~faults pairs) in
  let reachable =
    Array.fold_left
      (fun acc r -> if r.Dynamic.distance < infinity then acc + 1 else acc)
      0 res
  in
  row "  %d queries in %.3f s (%.0f queries/s), %d reachable under 2 faults"
    (Array.length pairs) dt
    (float_of_int (Array.length pairs) /. dt)
    reachable;
  let h = Obs.histogram_log "dynamic.query_latency" in
  row "  query latency p50 %.1f us, p99 %.1f us"
    (1e6 *. Obs.Histogram.quantile h 0.5)
    (1e6 *. Obs.Histogram.quantile h 0.99)

let smoke =
  [
    ("smoke-lbc", smoke_lbc);
    ("smoke-greedy", smoke_greedy);
    ("smoke-distributed", smoke_distributed);
    ("greedy-parallel", greedy_parallel);
    ("shard-build", shard_build);
    ("dk11-parallel", dk11_parallel);
    ("synchronizer-lossy", smoke_synchronizer_lossy);
    ("congest-hotpath", congest_hotpath);
    ("io-load", io_load);
    ("bfs-hotpath-int32", bfs_hotpath_int32);
    ("dynamic-updates", dynamic_updates);
    ("dynamic-query", dynamic_query);
  ]

let all =
  [ e1; e2; e3; e4; e5; e6; e7; e8; e9; e10; e11; e12; e13; e14; e15; e16; e17 ]

let by_name =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5);
    ("e6", e6); ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10);
    ("e11", e11); ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15);
    ("e16", e16); ("e17", e17);
  ]
