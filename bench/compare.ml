(* Bench regression gate over two ftspan.metrics.v1 reports.

   Usage:
     compare.exe [--slack F] [--tol-wall F] [--tol-wall-abs S]
                 [--tol-counter F] BASELINE.json RUN.json

   Entries are matched by id; the wall time and every counter are judged
   by Obs_compare against per-metric tolerances (counters tight — the
   repo's seeds make them deterministic; wall time loose, with an
   absolute floor so sub-noise timings cannot fail).  [--slack] scales
   every tolerance at once: the @obs-check alias passes [--slack 2] so
   the gate stays stable on shared runners.  Scheduling-dependent
   [pool.*] counters are skipped by Obs_compare in both documents, so
   the parallel entries (greedy-parallel) gate on their deterministic
   algorithm counters but never on steal order or jobs count.

   Exit status: 0 when every metric is within tolerance (improvements
   included), 1 on any regression or baseline metric missing from the
   run, 2 on usage or parse errors — the same error/usage split as
   main.exe. *)

let usage () =
  prerr_endline
    "usage: compare.exe [--slack F] [--tol-wall F] [--tol-wall-abs S] \
     [--tol-counter F] BASELINE.json RUN.json";
  exit 2

let bad fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "compare.exe: %s\n" msg;
      usage ())
    fmt

let read_report file =
  let text =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> bad "%s" msg
  in
  match Obs_json.of_string text with
  | Ok j -> j
  | Error msg -> bad "%s: %s" file msg

let () =
  let tol = ref Obs_compare.default_tolerances in
  let slack = ref 1.0 in
  let files = ref [] in
  let float_of name s =
    match float_of_string_opt s with
    | Some f when f > 0. -> f
    | _ -> bad "%s expects a positive number, got %S" name s
  in
  let rec go = function
    | [] -> ()
    | "--slack" :: v :: rest ->
        slack := float_of "--slack" v;
        go rest
    | "--tol-wall" :: v :: rest ->
        tol := { !tol with Obs_compare.wall_rel = float_of "--tol-wall" v };
        go rest
    | "--tol-wall-abs" :: v :: rest ->
        tol := { !tol with Obs_compare.wall_abs = float_of "--tol-wall-abs" v };
        go rest
    | "--tol-counter" :: v :: rest ->
        tol := { !tol with Obs_compare.counter_rel = float_of "--tol-counter" v };
        go rest
    | [ ("--slack" | "--tol-wall" | "--tol-wall-abs" | "--tol-counter") ] ->
        bad "missing option value"
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad "unknown option %S" arg
    | file :: rest ->
        files := file :: !files;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  let base_file, run_file =
    match List.rev !files with
    | [ b; r ] -> (b, r)
    | _ -> bad "expected exactly two report files"
  in
  let tol = Obs_compare.scale !slack !tol in
  let base = read_report base_file and run = read_report run_file in
  match Obs_compare.compare_reports ~tol base run with
  | Error msg -> bad "%s" msg
  | Ok findings ->
      Printf.printf "baseline %s vs run %s (slack %.2g)\n\n" base_file run_file
        !slack;
      Format.printf "%a@." Obs_compare.pp_findings findings;
      if Obs_compare.regressed findings then begin
        print_endline "\nREGRESSION: run exceeds the baseline tolerance";
        exit 1
      end
      else print_endline "\nOK: within tolerance of the baseline"
