(* Bench regression gate over two ftspan.metrics.v1 reports.

   Usage:
     compare.exe [--slack F] [--tol-wall F] [--tol-wall-abs S]
                 [--tol-counter F] BASELINE.json RUN.json
     compare.exe --check-heartbeat STREAM.jsonl
     compare.exe --check-trace TRACE.json

   Entries are matched by id; the wall time and every counter are judged
   by Obs_compare against per-metric tolerances (counters tight — the
   repo's seeds make them deterministic; wall time loose, with an
   absolute floor so sub-noise timings cannot fail).  [--slack] scales
   every tolerance at once: the @obs-check alias passes [--slack 2] so
   the gate stays stable on shared runners.  Scheduling-dependent
   [pool.*] counters are skipped by Obs_compare in both documents, so
   the parallel entries (greedy-parallel) gate on their deterministic
   algorithm counters but never on steal order or jobs count.

   [--check-heartbeat] is the second gate mode: it validates an
   ftspan.heartbeat.v1 JSON-lines stream (every line parses, every line
   carries the schema tag, at least one beat reports quantiles), so the
   @obs-stream-check alias can assert the streaming plane end to end.

   [--check-trace] is the third: it validates an ftspan.trace.v1
   document structurally (Obs_analyze.validate — per-event fields,
   monotonic seqs, lifecycle pairing), so the @trace-analyze-check alias
   can assert the causal-tracing plane end to end.  A file that is not a
   v1 trace at all is a usage-class failure (exit 2); a trace that
   parses but violates the structural contract is a gate failure
   (exit 1).

   Exit status: 0 when every metric is within tolerance (improvements
   included) / the stream or trace is valid, 1 on any regression,
   baseline metric missing from the run, or semantically invalid
   stream/trace, 2 on usage or parse errors — the same error/usage
   split as main.exe. *)

let usage () =
  prerr_endline
    "usage: compare.exe [--slack F] [--tol-wall F] [--tol-wall-abs S] \
     [--tol-counter F] BASELINE.json RUN.json";
  prerr_endline "       compare.exe --check-heartbeat STREAM.jsonl";
  prerr_endline "       compare.exe --check-trace TRACE.json";
  exit 2

let bad fmt =
  Printf.ksprintf
    (fun msg ->
      Printf.eprintf "compare.exe: %s\n" msg;
      usage ())
    fmt

let read_report file =
  let text =
    try
      let ic = open_in_bin file in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg -> bad "%s" msg
  in
  match Obs_json.of_string text with
  | Ok j -> j
  | Error msg -> bad "%s: %s" file msg

(* Validate one ftspan.heartbeat.v1 JSON-lines stream: every line must
   parse and carry the schema tag (parse errors are usage-class, exit 2);
   an empty stream or one whose beats never report a quantile block with
   p50/p99 is a gate failure (exit 1) — it means the quantile pipeline
   went dark while the run was alive. *)
let check_heartbeat file =
  let ic = try open_in file with Sys_error msg -> bad "%s" msg in
  let beats = ref 0 and with_quantiles = ref 0 in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      try
        while true do
          let line = input_line ic in
          if String.trim line <> "" then begin
            incr beats;
            let j =
              match Obs_json.of_string line with
              | Ok j -> j
              | Error msg -> bad "%s: beat %d: %s" file !beats msg
            in
            (match Option.bind (Obs_json.member "schema" j) Obs_json.to_str with
            | Some "ftspan.heartbeat.v1" -> ()
            | Some other -> bad "%s: beat %d: schema %S" file !beats other
            | None -> bad "%s: beat %d: missing schema tag" file !beats);
            match Obs_json.member "quantiles" j with
            | Some (Obs_json.Obj hists) ->
                let has_q (_, h) =
                  Obs_json.member "p50" h <> None
                  && Obs_json.member "p99" h <> None
                in
                if hists <> [] && List.for_all has_q hists then
                  incr with_quantiles
            | _ -> ()
          end
        done
      with End_of_file -> ());
  Printf.printf "heartbeat stream %s: %d beats, %d with quantiles\n" file
    !beats !with_quantiles;
  if !beats = 0 then begin
    print_endline "INVALID: stream is empty";
    exit 1
  end;
  if !with_quantiles = 0 then begin
    print_endline "INVALID: no beat reports latency quantiles";
    exit 1
  end;
  print_endline "OK: valid ftspan.heartbeat.v1 stream"

(* Validate one ftspan.trace.v1 document.  Not-a-trace (I/O error, JSON
   syntax, wrong schema, missing top-level fields) is usage-class, exit
   2; a trace whose events break the structural contract — malformed
   typed events, non-monotonic seqs, inconsistent accounting, deliveries
   without their send on a lossless trace — is a gate failure, exit 1. *)
let check_trace file =
  match Obs_analyze.load file with
  | Error msg -> bad "%s" msg
  | Ok tr -> (
      match Obs_analyze.validate tr with
      | [] ->
          Printf.printf
            "trace %s: %d events (%d seen, %d sampled, %d dropped)\n" file
            (List.length tr.Obs_analyze.t_events)
            tr.Obs_analyze.t_seen tr.Obs_analyze.t_sampled
            tr.Obs_analyze.t_dropped;
          print_endline "OK: valid ftspan.trace.v1 document"
      | violations ->
          List.iter (fun v -> Printf.printf "INVALID: %s\n" v) violations;
          exit 1)

(* Which gate carve-outs actually fired: the prefixes under which either
   document has at least one counter.  Printed so a reader of the gate
   log can see what was deliberately not compared. *)
let matched_exclusions docs =
  let counter_names j =
    match Option.bind (Obs_json.member "entries" j) Obs_json.to_list with
    | None -> []
    | Some entries ->
        List.concat_map
          (fun e ->
            match Obs_json.member "counters" e with
            | Some (Obs_json.Obj fields) -> List.map fst fields
            | _ -> [])
          entries
  in
  let names = List.concat_map counter_names docs in
  let starts_with p s =
    String.length s >= String.length p
    && String.sub s 0 (String.length p) = p
  in
  List.filter
    (fun p -> List.exists (starts_with p) names)
    Obs_compare.excluded_prefixes

let () =
  let tol = ref Obs_compare.default_tolerances in
  let slack = ref 1.0 in
  let files = ref [] in
  let float_of name s =
    match float_of_string_opt s with
    | Some f when f > 0. -> f
    | _ -> bad "%s expects a positive number, got %S" name s
  in
  let heartbeat = ref None in
  let trace = ref None in
  let rec go = function
    | [] -> ()
    | "--check-heartbeat" :: v :: rest ->
        heartbeat := Some v;
        go rest
    | "--check-trace" :: v :: rest ->
        trace := Some v;
        go rest
    | [ ("--check-heartbeat" | "--check-trace") ] -> bad "missing option value"
    | "--slack" :: v :: rest ->
        slack := float_of "--slack" v;
        go rest
    | "--tol-wall" :: v :: rest ->
        tol := { !tol with Obs_compare.wall_rel = float_of "--tol-wall" v };
        go rest
    | "--tol-wall-abs" :: v :: rest ->
        tol := { !tol with Obs_compare.wall_abs = float_of "--tol-wall-abs" v };
        go rest
    | "--tol-counter" :: v :: rest ->
        tol := { !tol with Obs_compare.counter_rel = float_of "--tol-counter" v };
        go rest
    | [ ("--slack" | "--tol-wall" | "--tol-wall-abs" | "--tol-counter") ] ->
        bad "missing option value"
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' ->
        bad "unknown option %S" arg
    | file :: rest ->
        files := file :: !files;
        go rest
  in
  go (List.tl (Array.to_list Sys.argv));
  (match (!heartbeat, !trace, !files) with
  | Some file, None, [] ->
      check_heartbeat file;
      exit 0
  | None, Some file, [] ->
      check_trace file;
      exit 0
  | Some _, Some _, _ -> bad "--check-heartbeat and --check-trace are exclusive"
  | Some _, None, _ -> bad "--check-heartbeat takes no report files"
  | None, Some _, _ -> bad "--check-trace takes no report files"
  | None, None, _ -> ());
  let base_file, run_file =
    match List.rev !files with
    | [ b; r ] -> (b, r)
    | _ -> bad "expected exactly two report files"
  in
  let tol = Obs_compare.scale !slack !tol in
  let base = read_report base_file and run = read_report run_file in
  match Obs_compare.compare_reports ~tol base run with
  | Error msg -> bad "%s" msg
  | Ok findings ->
      Printf.printf "baseline %s vs run %s (slack %.2g)\n\n" base_file run_file
        !slack;
      (match matched_exclusions [ base; run ] with
      | [] -> ()
      | ps ->
          Printf.printf "gate-excluded prefixes skipped: %s\n\n"
            (String.concat " " ps));
      Format.printf "%a@." Obs_compare.pp_findings findings;
      if Obs_compare.regressed findings then begin
        print_endline "\nREGRESSION: run exceeds the baseline tolerance";
        exit 1
      end
      else print_endline "\nOK: within tolerance of the baseline"
