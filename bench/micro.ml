(* Bechamel micro-benchmarks: one Test.make per experiment family, timing
   the primitive that dominates that experiment (Theorem 4's BFS rounds,
   one LBC decision, full spanner builds, a decomposition).  Estimated
   per-run time comes from bechamel's OLS fit over monotonic-clock
   samples. *)

open Bechamel
open Toolkit

let seed = 0xBEC

(* Fixed inputs, built once; the benchmarks measure the algorithms, not the
   generators. *)
let graph_mid = lazy (Generators.connected_gnp (Rng.create ~seed) ~n:300 ~p:0.08)
let graph_small = lazy (Generators.connected_gnp (Rng.create ~seed) ~n:100 ~p:0.2)
let graph_k24 = lazy (Generators.complete 24)
let graph_weighted =
  lazy
    (let r = Rng.create ~seed in
     Generators.with_uniform_weights r
       (Generators.connected_gnp r ~n:100 ~p:0.2)
       ~lo:0.5 ~hi:5.)

let bfs_test =
  Test.make ~name:"e1: hop-bounded BFS (n=300)"
    (Staged.stage (fun () ->
         let g = Lazy.force graph_mid in
         ignore (Bfs.hop_bounded_path g ~src:0 ~dst:Graph.(n g - 1) ~max_hops:3)))

let lbc_test =
  let ws = Lbc.Workspace.create () in
  Test.make ~name:"e1: LBC decide t=3 alpha=4 (n=300)"
    (Staged.stage (fun () ->
         let g = Lazy.force graph_mid in
         ignore (Lbc.decide ~ws ~mode:Fault.VFT g ~u:0 ~v:(Graph.n g - 1) ~t:3 ~alpha:4)))

let poly_greedy_test =
  Test.make ~name:"e2/e3: poly greedy k=2 f=2 (n=100)"
    (Staged.stage (fun () ->
         ignore (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 (Lazy.force graph_small))))

let poly_greedy_weighted_test =
  Test.make ~name:"e5: poly greedy weighted (n=100)"
    (Staged.stage (fun () ->
         ignore (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 (Lazy.force graph_weighted))))

let exp_greedy_test =
  Test.make ~name:"e4: exponential greedy k=2 f=1 (K24)"
    (Staged.stage (fun () ->
         ignore (Exp_greedy.build ~mode:Fault.VFT ~k:2 ~f:1 (Lazy.force graph_k24))))

let baswana_sen_test =
  Test.make ~name:"e7: baswana-sen k=2 (n=300)"
    (Staged.stage (fun () ->
         ignore (Baswana_sen.build (Rng.create ~seed) ~k:2 (Lazy.force graph_mid))))

let dk11_test =
  Test.make ~name:"e8: dk11 k=2 f=2 (n=100)"
    (Staged.stage (fun () ->
         ignore
           (Dk11.build (Rng.create ~seed) ~mode:Fault.VFT ~k:2 ~f:2
              (Lazy.force graph_small))))

let decomposition_test =
  Test.make ~name:"e6: padded decomposition (n=300)"
    (Staged.stage (fun () ->
         ignore (Decomposition.run (Rng.create ~seed) (Lazy.force graph_mid))))

let verify_test =
  let sel =
    lazy (Poly_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 (Lazy.force graph_small))
  in
  Test.make ~name:"verify: one adversarial fault check (n=100)"
    (Staged.stage (fun () ->
         let r = Rng.create ~seed in
         ignore
           (Verify.adversarial
              ~cfg:(Verify.config ~rng:r ~trials:1 ())
              (Lazy.force sel) ~mode:Fault.VFT ~stretch:3. ~f:2)))

let thorup_zwick_test =
  Test.make ~name:"e8: thorup-zwick k=2 (n=300)"
    (Staged.stage (fun () ->
         ignore (Thorup_zwick.build (Rng.create ~seed) ~k:2 (Lazy.force graph_mid))))

let batch_greedy_test =
  Test.make ~name:"e12: batched greedy batch=32 (n=100)"
    (Staged.stage (fun () ->
         ignore
           (Batch_greedy.build ~mode:Fault.VFT ~k:2 ~f:2 ~batch:32
              (Lazy.force graph_small))))

let tests =
  Test.make_grouped ~name:"ftspan"
    [
      bfs_test;
      lbc_test;
      poly_greedy_test;
      poly_greedy_weighted_test;
      exp_greedy_test;
      baswana_sen_test;
      thorup_zwick_test;
      dk11_test;
      decomposition_test;
      batch_greedy_test;
      verify_test;
    ]

let run () =
  Tables.banner "Micro-benchmarks (bechamel OLS estimates, ns/run)";
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> compare a b) rows in
  Printf.printf "  %-48s %14s %8s\n" "benchmark" "time/run" "r^2";
  List.iter
    (fun (name, r) ->
      let est =
        match Analyze.OLS.estimates r with Some (x :: _) -> x | _ -> nan
      in
      let r2 = match Analyze.OLS.r_square r with Some x -> x | None -> nan in
      let pretty =
        if est > 1e9 then Printf.sprintf "%8.2f s " (est /. 1e9)
        else if est > 1e6 then Printf.sprintf "%8.2f ms" (est /. 1e6)
        else if est > 1e3 then Printf.sprintf "%8.2f us" (est /. 1e3)
        else Printf.sprintf "%8.0f ns" est
      in
      Printf.printf "  %-48s %14s %8.3f\n" name pretty r2)
    rows
