open Cmdliner

(* ------------------------------ jobs ------------------------------- *)

let jobs_arg =
  let doc =
    "Worker domains for the parallel sections (the batched greedy's \
     decision phase under $(b,build), the fault batteries under \
     $(b,verify), the query plane under $(b,dynamic)).  Defaults to 1 — \
     fully sequential, so existing scripted runs are byte-identical — or \
     to $(b,FTSPAN_JOBS) when that is set.  Results are deterministic: \
     any jobs count produces the same output as 1."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let bad_jobs n = Printf.sprintf "--jobs must be >= 1 (got %d)" n

let resolve_jobs = function
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (`Msg (bad_jobs n))
  | None -> Ok (Exec.default_jobs ())

let parse_jobs value =
  match int_of_string_opt value with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (bad_jobs n)
  | None ->
      Error (Printf.sprintf "--jobs requires an integer argument (got %S)" value)

(* Run [f] with a pool of [jobs] workers ([None] when sequential), shut
   down on every exit path. *)
let with_jobs jobs f =
  if jobs = 1 then f None
  else Exec.Pool.with_pool ~domains:jobs (fun pool -> f (Some pool))

(* ------------------------------ shard ------------------------------ *)

let shard_arg =
  let doc =
    "Decomposition-sharded build (the paper's Theorem 11 run natively): \
     sample an O(log n) padded partition, build each cluster's spanner \
     on its own $(b,--jobs) pool worker, union the selections and keep \
     the boundary edges.  Trades an O(log n) size factor for \
     cluster-level parallelism; the selection is bit-identical at every \
     $(b,--jobs) count and replays from $(b,--seed)."
  in
  Arg.(value & flag & info [ "shard" ] ~doc)

(* ----------------------------- backend ----------------------------- *)

let backend_arg =
  let doc =
    "Adjacency storage backend: $(b,int) (native word arrays) or \
     $(b,int32) (compact int32 Bigarrays — half the resident bytes, and \
     the layout binary $(b,.ftsb) graphs map into near-zero-copy).  \
     Defaults to int for text graphs and int32 for $(b,.ftsb) files.  \
     Selections and counters are bit-identical across backends; only \
     wall time and resident memory move."
  in
  let backend_conv =
    Arg.enum [ ("int", Csr.Int_array); ("int32", Csr.Int32_bigarray) ]
  in
  Arg.(value & opt (some backend_conv) None & info [ "backend" ] ~docv:"B" ~doc)

let parse_backend = function
  | "int" -> Ok Csr.Int_array
  | "int32" -> Ok Csr.Int32_bigarray
  | other ->
      Error (Printf.sprintf "--backend must be int or int32 (got %S)" other)

(* ------------------------------ chaos ------------------------------ *)

let chaos_arg =
  let doc =
    "Inject network faults into the simulator and mask them with the \
     reliable-delivery protocol.  $(docv) is a comma-separated list of \
     KEY=VALUE pairs: $(b,drop)=P, $(b,dup)=P, $(b,reorder)=R (max round \
     lag), $(b,spike)=P, $(b,spikex)=F (delay multiplier), $(b,seed)=N \
     (fault-stream seed), $(b,crash)=V@T, $(b,recover)=V@T.  The fault \
     stream is private to the plan, so the spanner selection matches the \
     chaos-free run; retransmissions show up in the $(b,net.retries) \
     counter under $(b,--metrics)."
  in
  let plan_conv =
    Arg.conv
      ( (fun s ->
          match Chaos.parse_spec s with
          | Ok plan -> Ok plan
          | Error msg -> Error (`Msg msg)),
        Chaos.pp_plan )
  in
  Arg.(value & opt (some plan_conv) None & info [ "chaos" ] ~docv:"SPEC" ~doc)

(* ----------------------------- metrics ----------------------------- *)

type metrics_format = [ `Pretty | `Json ]

let metrics_arg =
  let doc =
    "Report collected telemetry (counters, timers, histograms, spans) \
     after the command: $(b,pretty) for a human-readable listing, \
     $(b,json) for an ftspan.metrics.v1 document (the schema bench/main.exe \
     --json writes).  $(b,--metrics) alone means $(b,pretty)."
  in
  let fmt = Arg.enum [ ("pretty", `Pretty); ("json", `Json) ] in
  Arg.(
    value
    & opt ~vopt:(Some `Pretty) (some fmt) None
    & info [ "metrics" ] ~docv:"FMT" ~doc)

(* Wrap a subcommand body: scope the obs registry to it, time it, and
   render the snapshot in the requested sink. *)
let with_metrics metrics ~id f =
  match metrics with
  | None -> f ()
  | Some fmt ->
      Obs.reset ();
      let t0 = Unix.gettimeofday () in
      let result = f () in
      let wall = Unix.gettimeofday () -. t0 in
      let entry = { Obs_sink.id; wall_s = wall; snap = Obs.snapshot () } in
      (match fmt with
      | `Pretty ->
          Printf.printf "-- metrics (%s, %.3f s) --\n" id wall;
          Format.printf "%a@." Obs_sink.pp entry.Obs_sink.snap
      | `Json ->
          print_endline
            (Obs_json.to_string ~indent:true (Obs_sink.json_of_report [ entry ])));
      result

(* ------------------------------ trace ------------------------------ *)

let trace_arg =
  let doc =
    "Record a structured event trace (per-edge LBC verdicts, greedy \
     keep/reject decisions, per-round CONGEST traffic) and write it to \
     $(docv) when the command finishes.  A $(b,,chrome) suffix selects \
     the Chrome trace-event format (open the file in chrome://tracing or \
     https://ui.perfetto.dev); the default is the native ftspan.trace.v1 \
     JSON.  A $(b,,sample=)S suffix (a rate in (0,1] or $(b,1/)N) head-samples \
     the bulk event stream — phase markers and fault events are always \
     kept — and $(b,,seed=)N picks the private sampling-RNG seed, so the \
     same seed replays the same kept set."
  in
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Obs_trace.parse_spec s with
          | Ok spec -> Ok spec
          | Error msg -> Error (`Msg msg)),
        Obs_trace.pp_spec )
  in
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "trace" ] ~docv:"FILE[,chrome][,sample=S][,seed=N]" ~doc)

(* Wrap a subcommand body in event collection; the file is written even
   when the body raises, so aborted runs keep their partial trace. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some spec ->
      Obs_trace.start ?sample:spec.Obs_trace.sample
        ~sample_seed:spec.Obs_trace.sample_seed ();
      Fun.protect
        ~finally:(fun () ->
          Obs_trace.stop ();
          Obs_trace.write ~file:spec.Obs_trace.file spec.Obs_trace.format;
          Printf.printf "trace written to %s (%d events, %d sampled, %d dropped)\n"
            spec.Obs_trace.file (Obs_trace.seen ()) (Obs_trace.sampled ())
            (Obs_trace.dropped ()))
        f

(* ------------------------- metrics stream -------------------------- *)

let stream_arg =
  let doc =
    "Stream run-time heartbeat snapshots to $(docv) while the command \
     runs: one ftspan.heartbeat.v1 JSON line per beat, carrying counter \
     deltas since the previous beat, latency quantiles (p50/p90/p99/p999 \
     of every log-linear histogram), GC numbers, and pool utilization.  \
     Beats default to one per second; a $(b,,)SECONDS suffix changes the \
     interval and $(b,,ops=)K beats every K logical operations instead."
  in
  let spec_conv =
    Arg.conv
      ( (fun s ->
          match Obs_heartbeat.parse_spec s with
          | Ok spec -> Ok spec
          | Error msg -> Error (`Msg msg)),
        Obs_heartbeat.pp_spec )
  in
  Arg.(
    value
    & opt (some spec_conv) None
    & info [ "metrics-stream" ] ~docv:"FILE[,SECONDS][,ops=K]" ~doc)

(* Wrap a subcommand body in the heartbeat reporter; the final beat and
   the close happen on every exit path. *)
let with_stream stream f =
  match stream with
  | None -> f ()
  | Some spec ->
      Obs_heartbeat.start spec;
      Fun.protect
        ~finally:(fun () ->
          Obs_heartbeat.stop ();
          Printf.printf "metrics stream written to %s (%d beats)\n"
            spec.Obs_heartbeat.file
            (Obs_heartbeat.beats ()))
        f
