(** The shared flag grammar of every ftspan tool.

    [ftspan build], [ftspan verify], [ftspan local], [ftspan congest],
    [ftspan dynamic] and [bench/main.exe] all speak the same execution
    dialect — [--jobs], [--backend], [--chaos], [--trace],
    [--metrics-stream], [--metrics] — and historically each front end
    re-declared it.  This module parses each flag {e once}: the cmdliner
    terms serve the [ftspan] subcommands, the plain-string parsers serve
    the bench runner's hand-rolled argv loop, and both produce the same
    error strings, so a typo reads identically wherever it was made.

    The [with_*] combinators are the matching run-time halves: each
    scopes one observability concern (pool lifetime, metrics snapshot,
    trace collection, heartbeat stream) around a command body and
    releases it on every exit path. *)

(** {1 Worker domains ([--jobs])} *)

(** [--jobs N] / [-j N]: worker domains for the parallel sections.
    [None] when absent (the tool then falls back to
    {!Exec.default_jobs}). *)
val jobs_arg : int option Cmdliner.Term.t

(** [resolve_jobs jobs] validates the parsed flag: [Ok n] with [n >= 1],
    [Ok (Exec.default_jobs ())] when absent, or the shared
    ["--jobs must be >= 1 (got %d)"] error. *)
val resolve_jobs : int option -> (int, [ `Msg of string ]) result

(** [parse_jobs s] is the string-level flavour for hand-rolled parsers:
    [Ok n] for an integer [s >= 1], else [Error msg] with the same
    wording the cmdliner path produces. *)
val parse_jobs : string -> (int, string) result

(** [with_jobs jobs f] runs [f (Some pool)] under a [jobs]-domain
    {!Exec.Pool.t} (shut down on every exit path), or [f None] when
    [jobs = 1] — sequential callers never pay pool startup. *)
val with_jobs : int -> (Exec.Pool.t option -> 'a) -> 'a

(** {1 Sharded build ([--shard])} *)

(** [--shard]: route [ftspan build] through the decomposition-sharded
    construction ({!Shard_build} for the greedy algorithms, the pooled
    {!Dk11} path for dk11). *)
val shard_arg : bool Cmdliner.Term.t

(** {1 Storage backend ([--backend])} *)

(** [--backend int|int32]: adjacency storage backend; [None] lets the
    loader pick per file format. *)
val backend_arg : Csr.backend option Cmdliner.Term.t

(** [parse_backend s] maps ["int"]/["int32"] to the backend, anything
    else to the shared ["--backend must be int or int32 (got %S)"]
    error. *)
val parse_backend : string -> (Csr.backend, string) result

(** {1 Chaos injection ([--chaos])} *)

(** [--chaos SPEC]: a {!Chaos} fault plan for the simulator runs. *)
val chaos_arg : Chaos.plan option Cmdliner.Term.t

(** {1 Telemetry ([--metrics], [--trace], [--metrics-stream])} *)

type metrics_format = [ `Pretty | `Json ]

(** [--metrics \[FMT\]]: report collected telemetry after the command;
    bare [--metrics] means [`Pretty]. *)
val metrics_arg : metrics_format option Cmdliner.Term.t

(** [with_metrics fmt ~id f] scopes the obs registry to [f], times it,
    and renders the snapshot in the requested sink ([f ()] untouched
    when [fmt] is [None]). *)
val with_metrics : metrics_format option -> id:string -> (unit -> 'a) -> 'a

(** [--trace FILE[,chrome][,sample=S][,seed=N]]: record a structured
    event trace while the command runs. *)
val trace_arg : Obs_trace.spec option Cmdliner.Term.t

(** [with_trace spec f] wraps [f] in event collection; the file is
    written even when [f] raises, so aborted runs keep their partial
    trace. *)
val with_trace : Obs_trace.spec option -> (unit -> 'a) -> 'a

(** [--metrics-stream FILE[,SECONDS][,ops=K]]: stream heartbeat
    snapshots while the command runs. *)
val stream_arg : Obs_heartbeat.spec option Cmdliner.Term.t

(** [with_stream spec f] wraps [f] in the heartbeat reporter; the final
    beat and the close happen on every exit path. *)
val with_stream : Obs_heartbeat.spec option -> (unit -> 'a) -> 'a
