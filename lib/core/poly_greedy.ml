type order =
  | By_weight
  | Input_order
  | Reverse_weight
  | Shuffled of Rng.t
  | Explicit of int array

type trace = { lbc_calls : int; bfs_rounds : int; yes_answers : int }

(* The trace is obs-backed: the greedy reads the [lbc.*] counters that
   Lbc.decide maintains, as a delta across the build.  Its own counters
   below add greedy-level series on top. *)
let c_lbc_calls = Obs.counter "lbc.calls"
let c_lbc_yes = Obs.counter "lbc.yes"
let c_lbc_bfs_rounds = Obs.counter "lbc.bfs_rounds"
let m_considered = Obs.counter "poly_greedy.edges_considered"
let m_added = Obs.counter "poly_greedy.edges_added"

let ordered_edges order g =
  let edges = Graph.edge_array g in
  (match order with
  | By_weight -> Array.sort (fun a b -> compare a.Graph.w b.Graph.w) edges
  | Input_order -> ()
  | Reverse_weight -> Array.sort (fun a b -> compare b.Graph.w a.Graph.w) edges
  | Shuffled rng -> Rng.shuffle rng edges
  | Explicit perm ->
      if Array.length perm <> Graph.m g then
        invalid_arg "Poly_greedy: explicit order must be a permutation of edge ids";
      let seen = Array.make (Graph.m g) false in
      Array.iter
        (fun id ->
          if id < 0 || id >= Graph.m g || seen.(id) then
            invalid_arg "Poly_greedy: explicit order must be a permutation of edge ids";
          seen.(id) <- true)
        perm;
      Array.iteri (fun i id -> edges.(i) <- Graph.edge g id) perm);
  edges

let build_impl ?(order = By_weight) ?on_add ~mode ~k ~f g =
  if k < 1 then invalid_arg "Poly_greedy.build: k must be >= 1";
  if f < 0 then invalid_arg "Poly_greedy.build: f must be >= 0";
  Obs.with_span "poly_greedy.build" @@ fun () ->
  let t = (2 * k) - 1 in
  let edges = ordered_edges order g in
  let h = Graph.create (Graph.n g) in
  let selected = Array.make (Graph.m g) false in
  let ws = Lbc.Workspace.create () in
  let calls0 = Obs.Counter.value c_lbc_calls in
  let yes0 = Obs.Counter.value c_lbc_yes in
  let rounds0 = Obs.Counter.value c_lbc_bfs_rounds in
  let consider e =
    Obs.Counter.incr m_considered;
    match Lbc.decide ~ws ~edge:e.Graph.id ~mode h ~u:e.Graph.u ~v:e.Graph.v ~t ~alpha:f with
    | Lbc.Yes { cut } ->
        Obs.Counter.incr m_added;
        if Obs_trace.enabled () then
          Obs_trace.emit
            (Obs_trace.Greedy_edge { edge = e.Graph.id; kept = true; weight = e.Graph.w });
        (match on_add with
        | Some fn ->
            (* [cut] holds H-local ids; report the certificate in the
               source graph's terms (vertex ids coincide; for EFT the
               H edge ids are translated back below by the caller). *)
            fn e cut
        | None -> ());
        ignore (Graph.add_edge h e.Graph.u e.Graph.v ~w:e.Graph.w);
        selected.(e.Graph.id) <- true
    | Lbc.No _ ->
        if Obs_trace.enabled () then
          Obs_trace.emit
            (Obs_trace.Greedy_edge { edge = e.Graph.id; kept = false; weight = e.Graph.w })
  in
  Array.iter consider edges;
  ( Selection.of_mask g selected,
    {
      lbc_calls = Obs.Counter.value c_lbc_calls - calls0;
      bfs_rounds = Obs.Counter.value c_lbc_bfs_rounds - rounds0;
      yes_answers = Obs.Counter.value c_lbc_yes - yes0;
    } )

let build_traced ?order ~mode ~k ~f g = build_impl ?order ~mode ~k ~f g

let build ?order ~mode ~k ~f g = fst (build_traced ?order ~mode ~k ~f g)

type certificate = { edge : Graph.edge; cut : int list }

let build_with_certificates ?order ~mode ~k ~f g =
  let certificates = ref [] in
  let on_add e cut = certificates := { edge = e; cut } :: !certificates in
  let sel, _ = build_impl ?order ~on_add ~mode ~k ~f g in
  (sel, List.rev !certificates)
