type order =
  | By_weight
  | Input_order
  | Reverse_weight
  | Shuffled of Rng.t
  | Explicit of int array

type trace = { lbc_calls : int; bfs_rounds : int; yes_answers : int }

let ordered_edges order g =
  let edges = Graph.edge_array g in
  (match order with
  | By_weight -> Array.sort (fun a b -> compare a.Graph.w b.Graph.w) edges
  | Input_order -> ()
  | Reverse_weight -> Array.sort (fun a b -> compare b.Graph.w a.Graph.w) edges
  | Shuffled rng -> Rng.shuffle rng edges
  | Explicit perm ->
      if Array.length perm <> Graph.m g then
        invalid_arg "Poly_greedy: explicit order must be a permutation of edge ids";
      let seen = Array.make (Graph.m g) false in
      Array.iter
        (fun id ->
          if id < 0 || id >= Graph.m g || seen.(id) then
            invalid_arg "Poly_greedy: explicit order must be a permutation of edge ids";
          seen.(id) <- true)
        perm;
      Array.iteri (fun i id -> edges.(i) <- Graph.edge g id) perm);
  edges

let build_impl ?(order = By_weight) ?on_add ~mode ~k ~f g =
  if k < 1 then invalid_arg "Poly_greedy.build: k must be >= 1";
  if f < 0 then invalid_arg "Poly_greedy.build: f must be >= 0";
  let t = (2 * k) - 1 in
  let edges = ordered_edges order g in
  let h = Graph.create (Graph.n g) in
  let selected = Array.make (Graph.m g) false in
  let ws = Lbc.Workspace.create () in
  let lbc_calls = ref 0 and bfs_rounds = ref 0 and yes_answers = ref 0 in
  let consider e =
    incr lbc_calls;
    match Lbc.decide ~ws ~mode h ~u:e.Graph.u ~v:e.Graph.v ~t ~alpha:f with
    | Lbc.Yes { cut } ->
        (* A round count: YES after r paths means r+1 BFS calls. *)
        incr yes_answers;
        bfs_rounds := !bfs_rounds + f + 1;
        (match on_add with
        | Some fn ->
            (* [cut] holds H-local ids; report the certificate in the
               source graph's terms (vertex ids coincide; for EFT the
               H edge ids are translated back below by the caller). *)
            fn e cut
        | None -> ());
        ignore (Graph.add_edge h e.Graph.u e.Graph.v ~w:e.Graph.w);
        selected.(e.Graph.id) <- true
    | Lbc.No { paths_seen } -> bfs_rounds := !bfs_rounds + paths_seen
  in
  Array.iter consider edges;
  ( Selection.of_mask g selected,
    { lbc_calls = !lbc_calls; bfs_rounds = !bfs_rounds; yes_answers = !yes_answers } )

let build_traced ?order ~mode ~k ~f g = build_impl ?order ~mode ~k ~f g

let build ?order ~mode ~k ~f g = fst (build_traced ?order ~mode ~k ~f g)

type certificate = { edge : Graph.edge; cut : int list }

let build_with_certificates ?order ~mode ~k ~f g =
  let certificates = ref [] in
  let on_add e cut = certificates := { edge = e; cut } :: !certificates in
  let sel, _ = build_impl ?order ~on_add ~mode ~k ~f g in
  (sel, List.rev !certificates)
