type order = Engine.order =
  | By_weight
  | Input_order
  | Reverse_weight
  | Shuffled of Rng.t
  | Explicit of int array

type trace = { lbc_calls : int; bfs_rounds : int; yes_answers : int }

(* The trace is obs-backed: the greedy reads the [lbc.*] counters that
   Lbc.decide maintains, as a delta across the build.  Its own counters
   below add greedy-level series on top. *)
let c_lbc_calls = Obs.counter "lbc.calls"
let c_lbc_yes = Obs.counter "lbc.yes"
let c_lbc_bfs_rounds = Obs.counter "lbc.bfs_rounds"
let m_considered = Obs.counter "poly_greedy.edges_considered"
let m_added = Obs.counter "poly_greedy.edges_added"

let build_impl ?order ?on_add ~mode ~k ~f g =
  if k < 1 then invalid_arg "Poly_greedy.build: k must be >= 1";
  if f < 0 then invalid_arg "Poly_greedy.build: f must be >= 0";
  let t = (2 * k) - 1 in
  let ws = Lbc.Workspace.create () in
  let calls0 = Obs.Counter.value c_lbc_calls in
  let yes0 = Obs.Counter.value c_lbc_yes in
  let rounds0 = Obs.Counter.value c_lbc_bfs_rounds in
  (* The decision oracle: one LBC gap call per candidate, sequential
     (batch 1), so every decision sees all earlier additions. *)
  let decide h edges decisions lo hi =
    for i = lo to hi - 1 do
      let e = edges.(i) in
      Obs.Counter.incr m_considered;
      match
        Lbc.decide ~ws ~edge:e.Graph.id ~mode h ~u:e.Graph.u ~v:e.Graph.v ~t
          ~alpha:f
      with
      | Lbc.Yes { cut } ->
          Obs.Counter.incr m_added;
          (* [cut] holds H-local ids; the certificate is reported in the
             source graph's terms (vertex ids coincide; for EFT the H edge
             ids are translated back by the caller). *)
          decisions.(i) <- Engine.Keep { cut }
      | Lbc.No _ -> ()
    done
  in
  let res =
    Engine.run ?order ~caller:"Poly_greedy" ~span:"poly_greedy.build" ?on_add
      ~decide g
  in
  ( res.Engine.selection,
    {
      lbc_calls = Obs.Counter.value c_lbc_calls - calls0;
      bfs_rounds = Obs.Counter.value c_lbc_bfs_rounds - rounds0;
      yes_answers = Obs.Counter.value c_lbc_yes - yes0;
    } )

let build_traced ?order ~mode ~k ~f g = build_impl ?order ~mode ~k ~f g

let build ?order ~mode ~k ~f g = fst (build_traced ?order ~mode ~k ~f g)

type certificate = { edge : Graph.edge; cut : int list }

let build_with_certificates ?order ~mode ~k ~f g =
  let certificates = ref [] in
  let on_add e cut = certificates := { edge = e; cut } :: !certificates in
  let sel, _ = build_impl ?order ~on_add ~mode ~k ~f g in
  (sel, List.rev !certificates)
