(* Witness-path search shared by the decision procedure: a path whose
   weight is within [budget], with as few hops as possible (small branching
   factor).  In unit-weight graphs weight and hops coincide, so plain BFS
   with [max_hops = budget] is both exact and fast. *)
let m_decisions = Obs.counter "exp_greedy.decisions"
let m_witness = Obs.counter "exp_greedy.witness_searches"

let witness_path ~unit_graph ~blocked_v ~blocked_e h ~u ~v ~budget =
  Obs.Counter.incr m_witness;
  if unit_graph then
    let max_hops = int_of_float (floor (budget +. 1e-9)) in
    if max_hops < 1 then None
    else
      Bfs.hop_bounded_path ~blocked_vertices:blocked_v ~blocked_edges:blocked_e
        h ~src:u ~dst:v ~max_hops
  else
    Hop_dp.min_hop_path ~blocked_vertices:blocked_v ~blocked_edges:blocked_e h
      ~src:u ~dst:v ~budget ~max_hops:(Graph.n h - 1)

let exists_fault_set ~mode h ~u ~v ~budget ~f =
  let unit_graph = Graph.is_unit_weighted h in
  let blocked_v = Array.make (Graph.n h) false in
  let blocked_e = Array.make (max 1 (Graph.m h)) false in
  (* DFS for a fault set of size <= f destroying all budget-paths: if no
     witness path survives, the current deletions are such a set. *)
  let rec search depth =
    match witness_path ~unit_graph ~blocked_v ~blocked_e h ~u ~v ~budget with
    | None -> true
    | Some p ->
        depth < f
        &&
        let try_vertex x =
          blocked_v.(x) <- true;
          let hit = search (depth + 1) in
          blocked_v.(x) <- false;
          hit
        in
        let try_edge id =
          blocked_e.(id) <- true;
          let hit = search (depth + 1) in
          blocked_e.(id) <- false;
          hit
        in
        (match mode with
        | Fault.VFT -> List.exists try_vertex (Path.interior p)
        | Fault.EFT -> List.exists try_edge p.Path.edges)
  in
  search 0

(* The literal decision of BDPW18/BP19: try all fault sets.  The fault set
   never usefully contains u or v (VFT faults on terminals exempt the pair
   from the spanner condition), so terminals are skipped. *)
let exists_fault_set_naive ~mode h ~u ~v ~budget ~f =
  let n = Graph.n h and m = Graph.m h in
  let blocked_v = Array.make n false in
  let blocked_e = Array.make (max 1 m) false in
  let universe = match mode with Fault.VFT -> n | Fault.EFT -> m in
  let blocked = match mode with Fault.VFT -> blocked_v | Fault.EFT -> blocked_e in
  let skip x = match mode with Fault.VFT -> x = u || x = v | Fault.EFT -> false in
  let cut_found () =
    Option.is_none
      (Dijkstra.distance_upto ~blocked_vertices:blocked_v ~blocked_edges:blocked_e
         h ~src:u ~dst:v ~cutoff:budget)
  in
  let rec enumerate count start =
    cut_found ()
    || (count < f
       &&
       let rec scan x =
         x < universe
         && ((not (skip x))
             && begin
                  blocked.(x) <- true;
                  let hit = enumerate (count + 1) (x + 1) in
                  blocked.(x) <- false;
                  hit
                end
            || scan (x + 1))
       in
       scan start)
  in
  enumerate 0 0

let build_greedy ~decide ~mode ~k ~f g =
  if k < 1 then invalid_arg "Exp_greedy.build: k must be >= 1";
  if f < 0 then invalid_arg "Exp_greedy.build: f must be >= 0";
  let stretch = float_of_int ((2 * k) - 1) in
  let oracle h edges decisions lo hi =
    for i = lo to hi - 1 do
      let e = edges.(i) in
      Obs.Counter.incr m_decisions;
      let budget = stretch *. e.Graph.w in
      if decide ~mode h ~u:e.Graph.u ~v:e.Graph.v ~budget ~f then
        decisions.(i) <- Engine.Keep { cut = [] }
    done
  in
  let res =
    Engine.run ~caller:"Exp_greedy" ~span:"exp_greedy.build" ~decide:oracle g
  in
  res.Engine.selection

let build ~mode ~k ~f g = build_greedy ~decide:exists_fault_set ~mode ~k ~f g

let build_naive ~mode ~k ~f g =
  build_greedy ~decide:exists_fault_set_naive ~mode ~k ~f g
