(** Batched (round-parallel) modified greedy — the parallelization probe
    the paper's conclusion asks about.

    The conclusion notes that the greedy "tends to be difficult to
    parallelize" because every decision depends on all earlier additions.
    The natural relaxation processes edges in batches: all edges of a
    batch are decided {e against the same} partial spanner (those LBC
    calls are embarrassingly parallel), then every YES edge of the batch
    is added at once.

    Correctness is unaffected: an edge rejected in batch [r] was rejected
    against [H_r ⊆ H_final], and Theorem 4's NO guarantee ("every
    length-(2k-1) cut of [H_r] for [u,v] exceeds [f]") is monotone under
    edge additions, so it holds for [H_final] too.  What degrades is the
    {e size}: edges of one batch cannot see each other, so mutual detours
    are missed — with a single batch the output is the whole graph.  The
    E12 experiment measures that size/parallelism trade-off. *)

type result = {
  selection : Selection.t;
  batches : int;  (** sequential rounds executed *)
  max_batch : int;  (** largest batch size (parallelism exposed) *)
}

(** [build ?order ~mode ~k ~f ~batch g] runs the batched greedy with
    batches of [batch] edges ([batch = 1] is exactly {!Poly_greedy.build};
    [batch >= m] decides every edge against the empty spanner).  Requires
    [batch >= 1]. *)
val build :
  ?order:Poly_greedy.order ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  batch:int ->
  Graph.t ->
  result

(** [build_parallel ?order ~mode ~k ~f ~batch ~domains g] is {!build} with
    the decision phase of each batch actually fanned out over [domains]
    OCaml 5 domains (the partial spanner is read-only during a decision
    phase, so the LBC calls are data-race-free by construction; every
    domain uses its own workspace).  Produces exactly the same selection
    as {!build} with the same parameters.  Requires [domains >= 1]. *)
val build_parallel :
  ?order:Poly_greedy.order ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  batch:int ->
  domains:int ->
  Graph.t ->
  result
