(** Batched (round-parallel) modified greedy — the parallelization probe
    the paper's conclusion asks about.

    The conclusion notes that the greedy "tends to be difficult to
    parallelize" because every decision depends on all earlier additions.
    The natural relaxation processes edges in batches: all edges of a
    batch are decided {e against the same} partial spanner (those LBC
    calls are embarrassingly parallel), then every YES edge of the batch
    is added at once.

    Correctness is unaffected: an edge rejected in batch [r] was rejected
    against [H_r ⊆ H_final], and Theorem 4's NO guarantee ("every
    length-(2k-1) cut of [H_r] for [u,v] exceeds [f]") is monotone under
    edge additions, so it holds for [H_final] too.  What degrades is the
    {e size}: edges of one batch cannot see each other, so mutual detours
    are missed — with a single batch the output is the whole graph.  The
    E12 experiment measures that size/parallelism trade-off. *)

type result = {
  selection : Selection.t;
  batches : int;  (** sequential rounds executed *)
  max_batch : int;  (** largest batch size (parallelism exposed) *)
}

(** [build ?order ?pool ~mode ~k ~f ~batch g] runs the batched greedy with
    batches of [batch] edges ([batch = 1] is exactly {!Poly_greedy.build};
    [batch >= m] decides every edge against the empty spanner).  Requires
    [batch >= 1].

    With [pool], the decision phase of each batch fans out over the
    pool's domains via {!Exec.parallel_for} with dynamic chunking (the
    partial spanner is read-only during a decision phase, so the LBC
    calls are data-race-free by construction; each worker decides with
    its own pool-owned {!Lbc.Workspace}, reused across batches and across
    builds on the same pool).  Verdicts are written by index, so the
    selection is {b bit-identical} to the [pool]-less build with the same
    parameters, for every domain count and steal order — the tests assert
    this and the bench counter gate relies on it. *)
val build :
  ?order:Poly_greedy.order ->
  ?pool:Exec.Pool.t ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  batch:int ->
  Graph.t ->
  result

(** The historical [build_parallel ~domains] wrapper (deprecated since
    the executor landed) is gone: create an {!Exec.Pool.t} once —
    [Exec.Pool.with_pool ~domains] for a scoped one — and pass it to
    {!build}, or go through {!Spanner.options}[ ?pool ?batch] at the
    facade level. *)
