let is_prime q =
  q >= 2
  &&
  let rec check d = d * d > q || (q mod d <> 0 && check (d + 1)) in
  check 2

(* Projective points of PG(2, q): nonzero triples over GF(q) normalized so
   that the first nonzero coordinate is 1.  There are q^2 + q + 1 of them:
   (1, y, z), (0, 1, z), (0, 0, 1). *)
let projective_points q =
  let pts = ref [ (0, 0, 1) ] in
  for z = 0 to q - 1 do
    pts := (0, 1, z) :: !pts
  done;
  for y = 0 to q - 1 do
    for z = 0 to q - 1 do
      pts := (1, y, z) :: !pts
    done
  done;
  !pts

let projective_plane_incidence ~q =
  if not (is_prime q) then
    invalid_arg "Lower_bound.projective_plane_incidence: q must be prime";
  let pts = Array.of_list (projective_points q) in
  let count = Array.length pts in
  assert (count = (q * q) + q + 1);
  let g = Graph.create (2 * count) in
  (* point i is vertex i; line j is vertex count + j; incidence = zero dot
     product over GF(q). *)
  for i = 0 to count - 1 do
    for j = 0 to count - 1 do
      let xi, yi, zi = pts.(i) and xj, yj, zj = pts.(j) in
      if ((xi * xj) + (yi * yj) + (zi * zj)) mod q = 0 then
        ignore (Graph.add_edge_unit g i (count + j))
    done
  done;
  g

let blow_up g ~copies =
  if copies < 1 then invalid_arg "Lower_bound.blow_up: copies must be >= 1";
  let n = Graph.n g in
  let big = Graph.create (n * copies) in
  Graph.iter_edges g (fun e ->
      for a = 0 to copies - 1 do
        for b = 0 to copies - 1 do
          ignore
            (Graph.add_edge big
               ((e.Graph.u * copies) + a)
               ((e.Graph.v * copies) + b)
               ~w:e.Graph.w)
        done
      done);
  big

let copies_for ~f =
  if f < 0 then invalid_arg "Lower_bound.copies_for: f must be >= 0";
  (f / 2) + 1

let hard_instance ~f g = blow_up g ~copies:(copies_for ~f)
