(* Thin compatibility layer over {!Dynamic} — see the .mli deprecation
   notes.  The handle keeps its own copy of the arrival graph so
   [snapshot] can expose a selection whose source ids are the arrival
   ids, exactly as the historical implementation did.  With no deletions
   the dynamic store assigns the same consecutive ids, so the kept mask
   transfers verbatim. *)

type t = { d : Dynamic.t; source : Graph.t }

let create ~mode ~k ~f ~n =
  if k < 1 then invalid_arg "Incremental.create: k must be >= 1";
  if f < 0 then invalid_arg "Incremental.create: f must be >= 0";
  {
    d = Dynamic.create ~opts:(Dynamic.opts ~mode ~k ~f ()) (Graph.create n);
    source = Graph.create n;
  }

let insert t u v ~w =
  ignore (Graph.add_edge t.source u v ~w);
  let stats = Dynamic.apply t.d [ Dynamic.Insert { u; v; w } ] in
  stats.Dynamic.kept > 0

let insert_unit t u v = insert t u v ~w:1.0
let size t = Dynamic.size t.d
let seen t = Graph.m t.source
let weight_monotone t = Dynamic.weight_monotone t.d

let snapshot t =
  let sel = Dynamic.snapshot t.d in
  Selection.of_mask t.source sel.Selection.selected
