type t = {
  mode : Fault.mode;
  k : int;
  f : int;
  source : Graph.t;  (* all arrivals *)
  spanner : Graph.t;  (* kept arrivals *)
  mutable kept_ids : int list;  (* source edge ids, newest first *)
  mutable kept : int;
  mutable last_weight : float;
  mutable monotone : bool;
  ws : Lbc.Workspace.t;
}

let create ~mode ~k ~f ~n =
  if k < 1 then invalid_arg "Incremental.create: k must be >= 1";
  if f < 0 then invalid_arg "Incremental.create: f must be >= 0";
  {
    mode;
    k;
    f;
    source = Graph.create n;
    spanner = Graph.create n;
    kept_ids = [];
    kept = 0;
    last_weight = neg_infinity;
    monotone = true;
    ws = Lbc.Workspace.create ();
  }

let insert t u v ~w =
  let id = Graph.add_edge t.source u v ~w in
  if w < t.last_weight then t.monotone <- false;
  t.last_weight <- max t.last_weight w;
  let verdict =
    Lbc.decide ~ws:t.ws ~mode:t.mode t.spanner ~u ~v ~t:((2 * t.k) - 1)
      ~alpha:t.f
  in
  match verdict with
  | Lbc.Yes _ ->
      ignore (Graph.add_edge t.spanner u v ~w);
      t.kept_ids <- id :: t.kept_ids;
      t.kept <- t.kept + 1;
      true
  | Lbc.No _ -> false

let insert_unit t u v = insert t u v ~w:1.0

let size t = t.kept
let seen t = Graph.m t.source
let weight_monotone t = t.monotone

let snapshot t = Selection.of_ids t.source t.kept_ids
