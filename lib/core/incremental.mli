(** Incremental (insertion-only) fault-tolerant spanner maintenance.

    {b Deprecated}: this module survives for one release as a thin
    compatibility layer over {!Dynamic}, which replaces it with a single
    handle accepting arbitrary-order insertions, deletions with targeted
    local repair, and a batched fault-masked query plane.  Migration:

    {v
    Incremental.create ~mode ~k ~f ~n   -->  Dynamic.create
                                               ~opts:(Dynamic.opts ~mode ~k ~f ())
                                               (Graph.create n)
    Incremental.insert t u v ~w         -->  Dynamic.apply t [Insert {u; v; w}]
    Incremental.size / snapshot         -->  Dynamic.size / Dynamic.snapshot
    v}

    The historical behavior is unchanged: each arriving edge runs the
    same LBC test against the spanner built so far (Theorem 8's size
    analysis is order-free; a NO answer is monotone under additions, so
    rejected edges never need revisiting), and {!weight_monotone} still
    reports whether arrivals respected the nondecreasing-weight order
    Theorem 10's weighted guarantee needs. *)

type t

(** [create ~mode ~k ~f ~n] starts an empty maintainer over [n] fixed
    vertices. *)
val create : mode:Fault.mode -> k:int -> f:int -> n:int -> t
[@@ocaml.deprecated "Use Dynamic.create (see Incremental's migration note)."]

(** [insert t u v ~w] feeds one arriving edge; returns [true] when the
    edge was kept.  Raises [Invalid_argument] on self-loops/duplicates,
    like {!Graph.add_edge}. *)
val insert : t -> int -> int -> w:float -> bool
[@@ocaml.deprecated "Use Dynamic.apply with an Insert op."]

(** [insert_unit t u v] is [insert t u v ~w:1.0]. *)
val insert_unit : t -> int -> int -> bool
[@@ocaml.deprecated "Use Dynamic.apply with an Insert op."]

(** [size t] is the current spanner size; [seen t] the number of arrivals. *)
val size : t -> int
[@@ocaml.deprecated "Use Dynamic.size."]

val seen : t -> int
[@@ocaml.deprecated "Use Dynamic.live_edges."]

(** [weight_monotone t] is [true] while arrivals came in nondecreasing
    weight order — the condition under which the weighted stretch guarantee
    (Theorem 10) applies to the current state. *)
val weight_monotone : t -> bool
[@@ocaml.deprecated "Use Dynamic.weight_monotone."]

(** [snapshot t] materializes the arrivals-so-far as a graph plus the kept
    selection over it. *)
val snapshot : t -> Selection.t
[@@ocaml.deprecated "Use Dynamic.snapshot."]
