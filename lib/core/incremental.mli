(** Incremental (insertion-only) fault-tolerant spanner maintenance.

    Theorem 8's size analysis holds for an {e arbitrary} edge order, and on
    unit-weight graphs so does correctness (Theorem 5) — which makes the
    modified greedy natural to run online: feed each arriving edge through
    the same LBC test against the spanner built so far.  The answer for an
    already-rejected edge only becomes more true as the spanner grows
    (Theorem 4's NO guarantee is monotone under edge additions), so no
    revisiting is ever needed.

    For weighted graphs the stretch guarantee additionally needs
    nondecreasing arrival weights (Theorem 10's ordering argument); the
    builder tracks whether arrivals respected that and reports it, leaving
    policy to the caller.

    The structure maintains its own growing source graph; {!snapshot}
    materializes the usual {!Selection.t} view at any point. *)

type t

(** [create ~mode ~k ~f ~n] starts an empty maintainer over [n] fixed
    vertices. *)
val create : mode:Fault.mode -> k:int -> f:int -> n:int -> t

(** [insert t u v ~w] feeds one arriving edge; returns [true] when the
    edge was kept.  Raises [Invalid_argument] on self-loops/duplicates,
    like {!Graph.add_edge}. *)
val insert : t -> int -> int -> w:float -> bool

(** [insert_unit t u v] is [insert t u v ~w:1.0]. *)
val insert_unit : t -> int -> int -> bool

(** [size t] is the current spanner size; [seen t] the number of arrivals. *)
val size : t -> int

val seen : t -> int

(** [weight_monotone t] is [true] while arrivals came in nondecreasing
    weight order — the condition under which the weighted stretch guarantee
    (Theorem 10) applies to the current state. *)
val weight_monotone : t -> bool

(** [snapshot t] materializes the arrivals-so-far as a graph plus the kept
    selection over it. *)
val snapshot : t -> Selection.t
