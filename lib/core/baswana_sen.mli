(** The Baswana-Sen randomized (2k-1)-spanner (Random Struct. Algorithms
    2007) — the non-fault-tolerant spanner algorithm the paper plugs into
    the Dinitz-Krauthgamer reduction for its CONGEST construction
    (Theorem 14).

    The algorithm maintains a clustering, initially all singletons.  In
    each of [k - 1] phases a [n^{-1/k}] fraction of clusters is sampled;
    a vertex of an unsampled cluster either hooks onto the lightest
    incident sampled cluster (keeping the lightest edge to every
    lighter-than-the-hook cluster) or, lacking a sampled neighbor, keeps
    the lightest edge to {e every} neighboring cluster and retires.  A
    final phase connects every vertex to each cluster it still touches.

    Expected size [O(k n^{1+1/k})]; stretch [2k - 1] with certainty
    (every discarded edge has an in-spanner detour by construction).  The
    library uses this both as a centralized baseline and, instrumented
    round-by-round, inside the distributed CONGEST implementation. *)

type cluster_state = {
  center_of : int array;
      (** final clustering (level [k-1]): center vertex per vertex, [-1] if
          the vertex retired from the clustering *)
  phases : int;  (** number of clustering phases performed, [k - 1] *)
}

(** [build rng ~k g] returns the spanner selection.  Requires [k >= 1];
    [k = 1] returns every edge (a 1-spanner must preserve exact
    distances). *)
val build : Rng.t -> k:int -> Graph.t -> Selection.t

(** [build_with_state rng ~k g] additionally exposes the final clustering,
    used by tests (cluster radius invariants). *)
val build_with_state : Rng.t -> k:int -> Graph.t -> Selection.t * cluster_state
