(** Blocking sets (Definition 2 of the paper) — the combinatorial object
    behind the size analysis of the modified greedy (Lemmas 6 and 7).

    A [t]-blocking set of a graph [H] is a set [B] of (vertex, edge) pairs
    with [v ∉ e], such that every cycle of [H] with at most [t] vertices
    contains both members of some pair.  Lemma 6: the greedy's LBC
    certificates [F_e] assemble into a (2k)-blocking set of size at most
    [(2k-1) f |E(H)|]; Lemma 7: any graph with such a blocking set has a
    dense girth->2k subgraph, which the Moore bound caps — yielding
    Theorem 8.

    This module makes that analysis executable: it builds [B] from
    {!Poly_greedy.build_with_certificates}, verifies the blocking property
    by enumerating short cycles, and runs the Lemma 7 subsampling whose
    girth claim is deterministic.  Vertex-fault mode only, matching the
    paper's definition. *)

type t = {
  pairs : (int * int) list;  (** (vertex id, source edge id) pairs *)
  spanner : Selection.t;
}

(** [of_certificates sel certs] assembles
    [B = { (x, e) : e ∈ E(H), x ∈ F_e }] from a VFT greedy run. *)
val of_certificates : Selection.t -> Poly_greedy.certificate list -> t

(** [size b] is [|B|]. *)
val size : t -> int

(** [lemma6_bound ~k ~f ~spanner_size] is [(2k-1) · f · |E(H)|], the size
    Lemma 6 guarantees. *)
val lemma6_bound : k:int -> f:int -> spanner_size:int -> int

(** A short cycle of the spanner, in source-graph terms. *)
type cycle = { vertices : int list; edges : int list }

(** [short_cycles ?limit sel ~max_len] enumerates the simple cycles of the
    spanner with at most [max_len] vertices (each cycle once).  Stops after
    [limit] cycles (default [200_000]); returns the cycles found and
    whether enumeration was exhaustive. *)
val short_cycles : ?limit:int -> Selection.t -> max_len:int -> cycle list * bool

(** [is_blocking b ~t] checks Definition 2 directly: every enumerated
    cycle of at most [t] vertices is hit by some pair.  Returns the first
    unblocked cycle, if any ([Error] when cycle enumeration hit the
    limit). *)
val is_blocking : ?limit:int -> t -> t_bound:int -> (cycle option, string) result

(** Result of one Lemma 7 subsampling experiment. *)
type subsample = {
  sampled_nodes : int;  (** [⌊n / (2(2k-1)f)⌋] *)
  surviving_edges : int;  (** edges of H'' *)
  expected_edges : float;  (** [m / (8((2k-1)f)^2)], the lemma's expectation *)
  girth_exceeds_2k : bool;  (** deterministic per the lemma *)
}

(** [lemma7_subsample rng b ~k ~f] performs the random-subset construction
    from the proof of Lemma 7 on the blocking set [b]. *)
val lemma7_subsample : Rng.t -> t -> k:int -> f:int -> subsample
