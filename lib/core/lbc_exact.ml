let masks_for ~mode g members =
  match mode with
  | Fault.VFT ->
      let mask = Array.make (Graph.n g) false in
      List.iter (fun x -> mask.(x) <- true) members;
      (Some mask, None)
  | Fault.EFT ->
      let mask = Array.make (max 1 (Graph.m g)) false in
      List.iter (fun id -> mask.(id) <- true) members;
      (None, Some mask)

let is_cut ~mode g ~u ~v ~t members =
  let blocked_vertices, blocked_edges = masks_for ~mode g members in
  Option.is_none
    (Bfs.hop_bounded_path ?blocked_vertices ?blocked_edges g ~src:u ~dst:v
       ~max_hops:t)

let min_cut ~mode g ~u ~v ~t ~limit =
  if u = v then invalid_arg "Lbc_exact.min_cut: u = v";
  if t < 1 || limit < 0 then invalid_arg "Lbc_exact.min_cut: bad parameters";
  let blocked_v = Array.make (Graph.n g) false in
  let blocked_e = Array.make (max 1 (Graph.m g)) false in
  let best : int list option ref = ref None in
  let best_size = ref (limit + 1) in
  (* Depth-first search: [chosen] is the current partial cut.  Branch over
     the members of a minimum-hop surviving path; prune when even one more
     deletion would not beat the best cut found. *)
  let rec search chosen depth =
    if depth < !best_size then
      match
        Bfs.hop_bounded_path ~blocked_vertices:blocked_v ~blocked_edges:blocked_e
          g ~src:u ~dst:v ~max_hops:t
      with
      | None ->
          best := Some chosen;
          best_size := depth
      | Some p ->
          if depth + 1 <= limit then begin
            let branch_vertex x =
              blocked_v.(x) <- true;
              search (x :: chosen) (depth + 1);
              blocked_v.(x) <- false
            in
            let branch_edge id =
              blocked_e.(id) <- true;
              search (id :: chosen) (depth + 1);
              blocked_e.(id) <- false
            in
            match mode with
            | Fault.VFT -> List.iter branch_vertex (Path.interior p)
            | Fault.EFT -> List.iter branch_edge p.Path.edges
          end
  in
  search [] 0;
  Option.map (List.sort compare) !best
