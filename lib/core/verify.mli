(** Fault-tolerant spanner verification.

    Checking Definition 1 directly quantifies over every fault set and
    every vertex pair.  Lemma 3 of the paper cuts the pair quantifier down
    to {e edges} of the source graph: [H] is an f-FT t-spanner iff for
    every fault set [F] and every surviving edge [{u,v}] of [G],
    [d_{H\F}(u,v) <= t * d_{G\F}(u,v)].  (The lemma states it for edges
    that are shortest paths; checking all surviving edges is equivalent
    and simpler.)  That is what {!check_under_fault} implements.

    The fault-set quantifier is genuinely exponential; the module offers
    - {!check_exhaustive}: all fault sets up to size [f] (small inputs —
      it refuses absurd instance sizes);
    - {!check_random}: uniform fault sets, plus
    - {!check_adversarial}: fault sets packed around a single edge's
      neighborhood, which is what actually breaks non-fault-tolerant
      spanners in practice.

    Fault batteries are embarrassingly parallel — one fault's evaluation
    touches only freshly allocated masks and BFS arrays over the
    read-only source graph — so the samplers and {!max_stretch_many}
    accept an [?pool] ({!Exec.Pool.t}) to fan the sweep out over domains.
    Faults are always drawn from the rng in sample order and results are
    recorded by index, so every figure a parallel run reports is
    identical to the sequential run's; the one observable difference is
    that a parallel battery evaluates {e every} sampled fault even when
    an early one already violates (the report still counts to the first
    violation in sample order). *)

type violation = {
  fault : Fault.t;
  u : int;
  v : int;
  d_source : float;  (** distance in G \ F *)
  d_spanner : float;  (** distance in H \ F *)
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  checked : int;  (** number of fault sets examined *)
  violation : violation option;  (** first violation found, if any *)
}

(** [ok report] is [true] when no violation was found. *)
val ok : report -> bool

(** [check_under_fault sel ~stretch fault] verifies the (Lemma 3) spanner
    condition for one fault set; [None] means it holds. *)
val check_under_fault : Selection.t -> stretch:float -> Fault.t -> violation option

(** [check_exhaustive sel ~mode ~stretch ~f ~max_sets] enumerates every
    fault set of size [<= f].  Raises [Invalid_argument] if there are more
    than [max_sets] of them (default [2e6]). *)
val check_exhaustive :
  ?max_sets:float ->
  Selection.t ->
  mode:Fault.mode ->
  stretch:float ->
  f:int ->
  report

(** [check_random ?pool rng sel ~mode ~stretch ~f ~trials] samples uniform
    fault sets. *)
val check_random :
  ?pool:Exec.Pool.t ->
  Rng.t -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> trials:int -> report

(** [check_adversarial ?pool rng sel ~mode ~stretch ~f ~trials] samples
    fault sets concentrated around random edges (see
    {!Fault.random_adversarial}). *)
val check_adversarial :
  ?pool:Exec.Pool.t ->
  Rng.t -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> trials:int -> report

(** Aggregate stretch statistics over sampled fault sets. *)
type profile = {
  samples : int;  (** fault sets measured *)
  mean : float;  (** mean of the per-fault worst stretch *)
  p95 : float;  (** 95th percentile of the per-fault worst stretch *)
  worst : float;  (** overall worst stretch observed *)
  disconnections : int;  (** fault sets under which some surviving pair was
                             disconnected in the spanner but not in the
                             source graph *)
}

val pp_profile : Format.formatter -> profile -> unit

(** [stretch_profile ?pool rng sel ~mode ~f ~trials] samples [trials]
    fault sets (alternating uniform and adversarial) and aggregates
    {!max_stretch_under_fault} over them — the empirical counterpart of
    the worst-case stretch guarantee. *)
val stretch_profile :
  ?pool:Exec.Pool.t ->
  Rng.t -> Selection.t -> mode:Fault.mode -> f:int -> trials:int -> profile

(** [max_stretch_under_fault sel fault] measures the worst ratio
    [d_{H\F}(u,v) / d_{G\F}(u,v)] over surviving source edges [{u,v}]
    (1.0 when every surviving edge is kept; [infinity] if some pair is
    disconnected in [H\F] but connected in [G\F]). *)
val max_stretch_under_fault : Selection.t -> Fault.t -> float

(** [max_stretch_many ?pool sel faults] is
    [Array.map (max_stretch_under_fault sel) faults], fanned out over
    [pool] when given — the bulk battery behind [ftspan verify --jobs]
    and the fault-injection example.  [faults.(i)]'s stretch lands at
    index [i], so the result is independent of the domain count. *)
val max_stretch_many :
  ?pool:Exec.Pool.t -> Selection.t -> Fault.t array -> float array
