(** Fault-tolerant spanner verification.

    Checking Definition 1 directly quantifies over every fault set and
    every vertex pair.  Lemma 3 of the paper cuts the pair quantifier down
    to {e edges} of the source graph: [H] is an f-FT t-spanner iff for
    every fault set [F] and every surviving edge [{u,v}] of [G],
    [d_{H\F}(u,v) <= t * d_{G\F}(u,v)].  (The lemma states it for edges
    that are shortest paths; checking all surviving edges is equivalent
    and simpler.)  That is what {!check_under_fault} implements.

    The fault-set quantifier is genuinely exponential; the module offers
    - {!exhaustive}: all fault sets up to size [f] (small inputs —
      it refuses absurd instance sizes);
    - {!random}: uniform fault sets, plus
    - {!adversarial}: fault sets packed around a single edge's
      neighborhood, which is what actually breaks non-fault-tolerant
      spanners in practice.

    Every battery reads its tunables — pool, trial count, sampling rng,
    exhaustive cap — from one {!config} record ({!default} covers the
    common case); the historical labelled-argument entry points remain
    as deprecated wrappers for one release.

    Fault batteries are embarrassingly parallel — one fault's evaluation
    touches only freshly allocated masks and BFS arrays over the
    read-only source graph — so the samplers and {!stretch_many}
    accept a [config.pool] ({!Exec.Pool.t}) to fan the sweep out over
    domains.
    Faults are always drawn from the rng in sample order and results are
    recorded by index, so every figure a parallel run reports is
    identical to the sequential run's; the one observable difference is
    that a parallel battery evaluates {e every} sampled fault even when
    an early one already violates (the report still counts to the first
    violation in sample order). *)

type violation = {
  fault : Fault.t;
  u : int;
  v : int;
  d_source : float;  (** distance in G \ F *)
  d_spanner : float;  (** distance in H \ F *)
}

val pp_violation : Format.formatter -> violation -> unit

type report = {
  checked : int;  (** number of fault sets examined *)
  violation : violation option;  (** first violation found, if any *)
}

(** [ok report] is [true] when no violation was found. *)
val ok : report -> bool

(** [check_under_fault sel ~stretch fault] verifies the (Lemma 3) spanner
    condition for one fault set; [None] means it holds. *)
val check_under_fault : Selection.t -> stretch:float -> Fault.t -> violation option

(** {1 Configuration}

    Every battery takes one {!config} instead of a spread of labelled
    optional arguments.  Start from {!default} (or the {!config}
    builder) and override what the call site cares about. *)

type config = {
  pool : Exec.Pool.t option;
      (** fan fault evaluations out over this pool; [None] = sequential *)
  trials : int;  (** sampled fault sets per battery (default 200) *)
  rng : Rng.t option;
      (** explicit sampling stream, shared across successive batteries —
          the CLI threads one through adversarial, then random, then the
          profile, so the chain's figures are a function of one seed *)
  seed : int;
      (** used only when [rng] is [None]: each battery then derives its
          own fresh deterministic stream *)
  max_sets : float;
      (** refusal cap for {!exhaustive} (default [2e6]) *)
}

(** [default] is [{pool = None; trials = 200; rng = None; seed = 0x5eed;
    max_sets = 2e6}]. *)
val default : config

(** [config ?pool ?trials ?rng ?seed ?max_sets ()] builds a config from
    {!default}.  Raises [Invalid_argument] if [trials < 1] or
    [max_sets <= 0]. *)
val config :
  ?pool:Exec.Pool.t ->
  ?trials:int ->
  ?rng:Rng.t ->
  ?seed:int ->
  ?max_sets:float ->
  unit ->
  config

(** [exhaustive ?cfg sel ~mode ~stretch ~f] enumerates every fault set of
    size [<= f].  Raises [Invalid_argument] if there are more than
    [cfg.max_sets] of them. *)
val exhaustive :
  ?cfg:config -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> report

(** [random ?cfg sel ~mode ~stretch ~f] samples [cfg.trials] uniform
    fault sets. *)
val random :
  ?cfg:config -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> report

(** [adversarial ?cfg sel ~mode ~stretch ~f] samples [cfg.trials] fault
    sets concentrated around random edges (see
    {!Fault.random_adversarial}). *)
val adversarial :
  ?cfg:config -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> report

(** {1 Deprecated labelled entry points}

    Thin wrappers over the {!config}-based batteries, kept for one
    release. *)

val check_exhaustive :
  ?max_sets:float ->
  Selection.t ->
  mode:Fault.mode ->
  stretch:float ->
  f:int ->
  report
[@@ocaml.deprecated "Use Verify.exhaustive with a Verify.config."]

val check_random :
  ?pool:Exec.Pool.t ->
  Rng.t -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> trials:int -> report
[@@ocaml.deprecated "Use Verify.random with a Verify.config."]

val check_adversarial :
  ?pool:Exec.Pool.t ->
  Rng.t -> Selection.t -> mode:Fault.mode -> stretch:float -> f:int -> trials:int -> report
[@@ocaml.deprecated "Use Verify.adversarial with a Verify.config."]

(** Aggregate stretch statistics over sampled fault sets. *)
type profile = {
  samples : int;  (** fault sets measured *)
  mean : float;  (** mean of the per-fault worst stretch *)
  p95 : float;  (** 95th percentile of the per-fault worst stretch *)
  worst : float;  (** overall worst stretch observed *)
  disconnections : int;  (** fault sets under which some surviving pair was
                             disconnected in the spanner but not in the
                             source graph *)
}

val pp_profile : Format.formatter -> profile -> unit

(** [profile ?cfg sel ~mode ~f] samples [cfg.trials] fault sets
    (alternating uniform and adversarial) and aggregates
    {!max_stretch_under_fault} over them — the empirical counterpart of
    the worst-case stretch guarantee. *)
val profile : ?cfg:config -> Selection.t -> mode:Fault.mode -> f:int -> profile

(** [max_stretch_under_fault sel fault] measures the worst ratio
    [d_{H\F}(u,v) / d_{G\F}(u,v)] over surviving source edges [{u,v}]
    (1.0 when every surviving edge is kept; [infinity] if some pair is
    disconnected in [H\F] but connected in [G\F]). *)
val max_stretch_under_fault : Selection.t -> Fault.t -> float

(** [stretch_many ?cfg sel faults] is
    [Array.map (max_stretch_under_fault sel) faults], fanned out over
    [cfg.pool] when given — the bulk battery behind
    [ftspan verify --jobs] and the fault-injection example.
    [faults.(i)]'s stretch lands at index [i], so the result is
    independent of the domain count. *)
val stretch_many : ?cfg:config -> Selection.t -> Fault.t array -> float array

val stretch_profile :
  ?pool:Exec.Pool.t ->
  Rng.t -> Selection.t -> mode:Fault.mode -> f:int -> trials:int -> profile
[@@ocaml.deprecated "Use Verify.profile with a Verify.config."]

val max_stretch_many :
  ?pool:Exec.Pool.t -> Selection.t -> Fault.t array -> float array
[@@ocaml.deprecated "Use Verify.stretch_many with a Verify.config."]
