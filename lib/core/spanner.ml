type algorithm =
  | Greedy_poly
  | Greedy_exponential
  | Dinitz_krauthgamer
  | Baswana_sen_union

let algorithm_name = function
  | Greedy_poly -> "greedy-poly"
  | Greedy_exponential -> "greedy-exp"
  | Dinitz_krauthgamer -> "dk11"
  | Baswana_sen_union -> "dk11-bs"

let all_algorithms =
  [ Greedy_poly; Greedy_exponential; Dinitz_krauthgamer; Baswana_sen_union ]

type params = { k : int; f : int; mode : Fault.mode }

let stretch p = float_of_int ((2 * p.k) - 1)

type options = {
  order : Engine.order option;
  batch : int;
  pool : Exec.Pool.t option;
  shard : bool;
}

let default_options = { order = None; batch = 1; pool = None; shard = false }

let options ?order ?(batch = 1) ?pool ?(shard = false) () =
  if batch < 1 then invalid_arg "Spanner.options: batch must be >= 1";
  { order; batch; pool; shard }

let build_sharded rng ~options ~algorithm params g =
  match algorithm with
  | Greedy_poly | Greedy_exponential ->
      let engine =
        match algorithm with
        | Greedy_exponential -> Shard_build.Exponential
        | _ -> Shard_build.Polynomial
      in
      (Shard_build.build ~rng ~engine ?pool:options.pool ~mode:params.mode
         ~k:params.k ~f:params.f g)
        .Shard_build.selection
  | Dinitz_krauthgamer | Baswana_sen_union -> (
      (* Always the pooled (pre-split stream) path, so the selection is
         the same whether --jobs handed us a pool or not. *)
      let run pool =
        Dk11.build rng ~mode:params.mode ~k:params.k ~f:params.f ~pool g
      in
      match options.pool with
      | Some pool -> run pool
      | None -> Exec.Pool.with_pool ~domains:1 run)

let build ?rng ?(algorithm = Greedy_poly) ?(options = default_options) params g
    =
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0x5eed in
  if options.shard then build_sharded rng ~options ~algorithm params g
  else
    match algorithm with
    | Greedy_poly ->
        if options.batch = 1 && options.pool = None then
          (* The exact historical path (and its poly_greedy.* telemetry):
             default options change nothing. *)
          Poly_greedy.build ?order:options.order ~mode:params.mode ~k:params.k
            ~f:params.f g
        else
          (Batch_greedy.build ?order:options.order ?pool:options.pool
             ~mode:params.mode ~k:params.k ~f:params.f ~batch:options.batch g)
            .Batch_greedy.selection
    | Greedy_exponential ->
        Exp_greedy.build ~mode:params.mode ~k:params.k ~f:params.f g
    | Dinitz_krauthgamer | Baswana_sen_union ->
        Dk11.build rng ~mode:params.mode ~k:params.k ~f:params.f g

type summary = {
  algorithm : string;
  params : params;
  n : int;
  m_source : int;
  m_spanner : int;
  weight_source : float;
  weight_spanner : float;
  bound_ratio : float;
}

let size_bound algorithm ~k ~f ~n =
  match algorithm with
  | Greedy_poly -> Bounds.poly_greedy_size ~k ~f ~n
  | Greedy_exponential -> Bounds.optimal_size ~k ~f ~n
  | Dinitz_krauthgamer | Baswana_sen_union -> Bounds.dk11_size ~k ~f ~n

let summarize ~algorithm params sel =
  let g = sel.Selection.source in
  let n = Graph.n g in
  {
    algorithm = algorithm_name algorithm;
    params;
    n;
    m_source = Graph.m g;
    m_spanner = sel.Selection.size;
    weight_source = Graph.total_weight g;
    weight_spanner = Selection.weight sel;
    bound_ratio =
      float_of_int sel.Selection.size
      /. size_bound algorithm ~k:params.k ~f:params.f ~n;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "%-11s k=%d f=%d %s n=%d: %d/%d edges (%.1f%%), weight %.1f/%.1f, bound ratio %.4f"
    s.algorithm s.params.k s.params.f
    (match s.params.mode with Fault.VFT -> "VFT" | Fault.EFT -> "EFT")
    s.n s.m_spanner s.m_source
    (100. *. float_of_int s.m_spanner /. float_of_int (max 1 s.m_source))
    s.weight_spanner s.weight_source s.bound_ratio
