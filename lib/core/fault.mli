(** Fault model: vertex faults (VFT) and edge faults (EFT).

    A fault set is a set of at most [f] vertices, or at most [f] edges, that
    an adversary deletes.  Every construction and checker in this library is
    parameterized by the {!mode}; the paper proves its results for vertex
    faults and notes the edge-fault case is essentially identical
    (Definition 1), which is mirrored here by a single code path branching
    only where the two models genuinely differ. *)

type mode = VFT  (** vertex faults *) | EFT  (** edge faults *)

type t = {
  mode : mode;
  members : int list;  (** vertex ids (VFT) or edge ids (EFT), distinct *)
}

val pp_mode : Format.formatter -> mode -> unit
val pp : Format.formatter -> t -> unit

(** [size fault] is the number of faulted elements. *)
val size : t -> int

(** [empty mode] is the fault-free set — handy for [f = 0] checks. *)
val empty : mode -> t

(** [of_vertices vs] / [of_edges es] build fault sets (deduplicating). *)
val of_vertices : int list -> t

val of_edges : int list -> t

(** [masks g fault] renders the fault set as the pair
    [(blocked_vertices, blocked_edges)] expected by the search routines:
    exactly one of the two is [Some]. *)
val masks : Graph.t -> t -> bool array option * bool array option

(** [spares fault u v] is [true] when the fault set does not delete [u],
    [v], or (in EFT mode with [edge_id]) the given edge — i.e. when the
    spanner condition must still hold for the pair. *)
val spares : t -> u:int -> v:int -> bool

(** {1 Sampling and enumeration} *)

(** [random rng mode g ~f] draws a uniformly random fault set of size
    [min f (universe size)]; in VFT mode the universe is all vertices, in
    EFT mode all edge ids. *)
val random : Rng.t -> mode -> Graph.t -> f:int -> t

(** [random_adversarial rng mode g ~f] draws a fault set biased toward
    breaking spanners: it picks a random edge [{u,v}] of [g] and samples
    faults from the joint neighborhood of [u] and [v] (VFT) or from their
    incident edges (EFT).  Random uniform faults almost never hit all short
    detours at realistic sizes; this sampler does. *)
val random_adversarial : Rng.t -> mode -> Graph.t -> f:int -> t

(** [enumerate mode g ~f fn] applies [fn] to every fault set of size at most
    [f] (including the empty set).  Exponential: intended for exhaustive
    verification on small instances. *)
val enumerate : mode -> Graph.t -> f:int -> (t -> unit) -> unit

(** [count_subsets ~universe ~f] is [sum_{i<=f} C(universe, i)] as a float —
    used to refuse absurd exhaustive checks. *)
val count_subsets : universe:int -> f:int -> float
