type t = { source : Graph.t; selected : bool array; size : int }

let count mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

let of_mask g mask =
  if Array.length mask <> Graph.m g then
    invalid_arg "Selection.of_mask: mask length must equal edge count";
  let selected = Array.copy mask in
  { source = g; selected; size = count selected }

let of_ids g ids =
  let selected = Array.make (Graph.m g) false in
  List.iter
    (fun id ->
      if id < 0 || id >= Graph.m g then invalid_arg "Selection.of_ids: bad edge id";
      selected.(id) <- true)
    ids;
  { source = g; selected; size = count selected }

let full g = { source = g; selected = Array.make (Graph.m g) true; size = Graph.m g }

let union a b =
  if a.source != b.source then invalid_arg "Selection.union: different sources";
  let selected = Array.mapi (fun i s -> s || b.selected.(i)) a.selected in
  { source = a.source; selected; size = count selected }

let mem sel id = id >= 0 && id < Array.length sel.selected && sel.selected.(id)

let ids sel =
  let acc = ref [] in
  for id = Array.length sel.selected - 1 downto 0 do
    if sel.selected.(id) then acc := id :: !acc
  done;
  !acc

let weight sel =
  let total = ref 0. in
  Array.iteri (fun id s -> if s then total := !total +. Graph.weight sel.source id) sel.selected;
  !total

let to_subgraph sel = Subgraph.of_edge_subset sel.source sel.selected

let blocked_edges sel extra_faults =
  let blocked = Array.map not sel.selected in
  List.iter
    (fun id -> if id >= 0 && id < Array.length blocked then blocked.(id) <- true)
    extra_faults;
  blocked

let pp ppf sel =
  Format.fprintf ppf "selection(%d/%d edges, weight %.3f)" sel.size
    (Graph.m sel.source) (weight sel)
