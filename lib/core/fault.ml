type mode = VFT | EFT

type t = { mode : mode; members : int list }

let pp_mode ppf = function
  | VFT -> Format.pp_print_string ppf "VFT"
  | EFT -> Format.pp_print_string ppf "EFT"

let pp ppf fault =
  Format.fprintf ppf "@[<h>%a{%a}@]" pp_mode fault.mode
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    fault.members

let size fault = List.length fault.members

let empty mode = { mode; members = [] }

let dedup xs = List.sort_uniq compare xs

let of_vertices vs = { mode = VFT; members = dedup vs }
let of_edges es = { mode = EFT; members = dedup es }

let masks g fault =
  match fault.mode with
  | VFT ->
      let mask = Array.make (Graph.n g) false in
      List.iter (fun v -> mask.(v) <- true) fault.members;
      (Some mask, None)
  | EFT ->
      let mask = Array.make (max 1 (Graph.m g)) false in
      List.iter (fun e -> mask.(e) <- true) fault.members;
      (None, Some mask)

let spares fault ~u ~v =
  match fault.mode with
  | VFT -> not (List.mem u fault.members || List.mem v fault.members)
  | EFT -> true

let universe mode g = match mode with VFT -> Graph.n g | EFT -> Graph.m g

let random rng mode g ~f =
  if f < 0 then invalid_arg "Fault.random: negative f";
  let n = universe mode g in
  let k = min f n in
  let members = Rng.sample_without_replacement rng ~k ~n in
  { mode; members }

let random_adversarial rng mode g ~f =
  if Graph.m g = 0 then empty mode
  else begin
    let e = Graph.edge g (Rng.int rng (Graph.m g)) in
    let u = e.Graph.u and v = e.Graph.v in
    match mode with
    | VFT ->
        (* Candidates: common and one-sided neighbors of the target edge,
           excluding its endpoints. *)
        let candidates = ref [] in
        Graph.iter_neighbors g u (fun x _ -> if x <> v then candidates := x :: !candidates);
        Graph.iter_neighbors g v (fun x _ -> if x <> u then candidates := x :: !candidates);
        let cands = Array.of_list (dedup !candidates) in
        if Array.length cands = 0 then empty VFT
        else begin
          Rng.shuffle rng cands;
          let k = min f (Array.length cands) in
          of_vertices (Array.to_list (Array.sub cands 0 k))
        end
    | EFT ->
        let candidates = ref [] in
        Graph.iter_neighbors g u (fun _ id -> if id <> e.Graph.id then candidates := id :: !candidates);
        Graph.iter_neighbors g v (fun _ id -> if id <> e.Graph.id then candidates := id :: !candidates);
        let cands = Array.of_list (dedup !candidates) in
        if Array.length cands = 0 then empty EFT
        else begin
          Rng.shuffle rng cands;
          let k = min f (Array.length cands) in
          of_edges (Array.to_list (Array.sub cands 0 k))
        end
  end

let enumerate mode g ~f fn =
  let n = universe mode g in
  (* Enumerate subsets of {0..n-1} of size <= f in lexicographic order. *)
  let rec extend members count start =
    fn { mode; members = List.rev members };
    if count < f then
      for x = start to n - 1 do
        extend (x :: members) (count + 1) (x + 1)
      done
  in
  extend [] 0 0

let count_subsets ~universe ~f =
  let rec binom n k = if k = 0 then 1. else binom n (k - 1) *. float_of_int (n - k + 1) /. float_of_int k in
  let total = ref 0. in
  for i = 0 to min f universe do
    total := !total +. binom universe i
  done;
  !total
