type order =
  | By_weight
  | Input_order
  | Reverse_weight
  | Shuffled of Rng.t
  | Explicit of int array

type decision = Keep of { cut : int list } | Skip

type decider = Graph.t -> Graph.edge array -> decision array -> int -> int -> unit

type result = { selection : Selection.t; batches : int; max_batch : int }

let ordered_edges ?(caller = "Engine") order g =
  let edges = Graph.edge_array g in
  (match order with
  | By_weight -> Array.sort (fun a b -> compare a.Graph.w b.Graph.w) edges
  | Input_order -> ()
  | Reverse_weight -> Array.sort (fun a b -> compare b.Graph.w a.Graph.w) edges
  | Shuffled rng -> Rng.shuffle rng edges
  | Explicit perm ->
      if Array.length perm <> Graph.m g then
        invalid_arg (caller ^ ": explicit order must be a permutation of edge ids");
      let seen = Array.make (Graph.m g) false in
      Array.iter
        (fun id ->
          if id < 0 || id >= Graph.m g || seen.(id) then
            invalid_arg
              (caller ^ ": explicit order must be a permutation of edge ids");
          seen.(id) <- true)
        perm;
      Array.iteri (fun i id -> edges.(i) <- Graph.edge g id) perm);
  edges

let run ?(order = By_weight) ?(caller = "Engine") ?span ?(batch = 1) ?on_batch
    ?on_add ?(trace = true) ~decide g =
  if batch < 1 then invalid_arg (caller ^ ": batch must be >= 1");
  let body () =
    let edges = ordered_edges ~caller order g in
    let m = Array.length edges in
    let h = Graph.create (Graph.n g) in
    let selected = Array.make (Graph.m g) false in
    let decisions = Array.make (max 1 m) Skip in
    let batches = ref 0 and max_batch = ref 0 in
    let pos = ref 0 in
    while !pos < m do
      let hi = min m (!pos + batch) in
      incr batches;
      if hi - !pos > !max_batch then max_batch := hi - !pos;
      (match on_batch with Some fn -> fn !batches | None -> ());
      (* Decision phase: the block is judged against the same frozen H. *)
      Array.fill decisions !pos (hi - !pos) Skip;
      decide h edges decisions !pos hi;
      (* Commit phase. *)
      let tracing = trace && Obs_trace.enabled () in
      for i = !pos to hi - 1 do
        let e = edges.(i) in
        match decisions.(i) with
        | Keep { cut } ->
            if tracing then
              Obs_trace.emit
                (Obs_trace.Greedy_edge
                   { edge = e.Graph.id; kept = true; weight = e.Graph.w });
            (match on_add with Some fn -> fn e cut | None -> ());
            ignore (Graph.add_edge h e.Graph.u e.Graph.v ~w:e.Graph.w);
            selected.(e.Graph.id) <- true
        | Skip ->
            if tracing then
              Obs_trace.emit
                (Obs_trace.Greedy_edge
                   { edge = e.Graph.id; kept = false; weight = e.Graph.w })
      done;
      pos := hi
    done;
    {
      selection = Selection.of_mask g selected;
      batches = !batches;
      max_batch = !max_batch;
    }
  in
  match span with Some name -> Obs.with_span name body | None -> body ()
