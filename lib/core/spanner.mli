(** Facade: one entry point over every spanner construction in the library.

    Use this module when you just want a fault-tolerant spanner and a
    uniform way to compare algorithms; drop down to the per-algorithm
    modules ({!Poly_greedy}, {!Exp_greedy}, {!Dk11}, {!Baswana_sen},
    {!Classic_greedy}) for their specific options. *)

type algorithm =
  | Greedy_poly  (** Algorithms 3/4 — the paper's contribution (default) *)
  | Greedy_exponential  (** Algorithm 1 — BDPW18/BP19 baseline *)
  | Dinitz_krauthgamer  (** DK11 reduction over Baswana-Sen *)
  | Baswana_sen_union
      (** DK11 with explicit Baswana-Sen — alias of [Dinitz_krauthgamer],
          kept for CLI discoverability *)

val algorithm_name : algorithm -> string
val all_algorithms : algorithm list

type params = {
  k : int;  (** stretch parameter: the spanner has stretch [2k - 1] *)
  f : int;  (** number of faults tolerated *)
  mode : Fault.mode;
}

(** [stretch params] is [2k - 1] as a float. *)
val stretch : params -> float

(** Execution options, threaded through {!build} so every facade caller
    (CLI, bench, examples) reaches the batched/parallel greedy without
    dropping to {!Batch_greedy} directly.

    - [order]: edge processing order for the greedy family ([None] = the
      algorithm's default, nondecreasing weight);
    - [batch]: decision block size ([1] = the fully sequential greedy);
    - [pool]: a persistent {!Exec.Pool.t} the per-batch decision phase
      fans out over.

    Without [shard], only [Greedy_poly] consumes [batch]/[pool]:
    [batch > 1] or a [pool] routes the build through [Batch_greedy.build]
    (whose selection is bit-identical at every domain count for a fixed
    [batch], but grows with [batch] — the E12 trade-off); the defaults
    reproduce the historical [Poly_greedy.build] path exactly, telemetry
    included.  The randomized algorithms ignore the options.

    [shard = true] selects the decomposition-sharded construction
    instead (the paper's Theorem 11 run natively — an O(log n) size
    factor for cluster-level parallelism): the greedy algorithms route
    through {!Shard_build} (engine picked by [algorithm]), and
    [Dinitz_krauthgamer]/[Baswana_sen_union] route through {!Dk11} with
    its iterations fanned out as [parallel_for] items.  Either way the
    selection is bit-identical at every [pool] size, including no pool
    at all; [order]/[batch] are ignored under [shard]. *)
type options = {
  order : Engine.order option;
  batch : int;
  pool : Exec.Pool.t option;
  shard : bool;
}

(** [default_options] is
    [{order = None; batch = 1; pool = None; shard = false}] — the
    sequential build. *)
val default_options : options

(** [options ?order ?batch ?pool ?shard ()] builds an options record from
    the defaults.  Raises [Invalid_argument] if [batch < 1]. *)
val options :
  ?order:Engine.order ->
  ?batch:int ->
  ?pool:Exec.Pool.t ->
  ?shard:bool ->
  unit ->
  options

(** [build ?rng ?algorithm ?options params g] constructs an
    f-fault-tolerant (2k-1)-spanner of [g].  [rng] is required only by
    randomized algorithms (defaults to a fixed seed); [options] defaults
    to {!default_options} (the sequential build). *)
val build :
  ?rng:Rng.t ->
  ?algorithm:algorithm ->
  ?options:options ->
  params ->
  Graph.t ->
  Selection.t

type summary = {
  algorithm : string;
  params : params;
  n : int;
  m_source : int;
  m_spanner : int;
  weight_source : float;
  weight_spanner : float;
  bound_ratio : float;
      (** spanner size divided by the paper's size bound for that
          algorithm — flat across [n] when the shape matches *)
}

(** [summarize ~algorithm params sel] computes the comparison record the
    experiment tables print. *)
val summarize : algorithm:algorithm -> params -> Selection.t -> summary

val pp_summary : Format.formatter -> summary -> unit
