(** Facade: one entry point over every spanner construction in the library.

    Use this module when you just want a fault-tolerant spanner and a
    uniform way to compare algorithms; drop down to the per-algorithm
    modules ({!Poly_greedy}, {!Exp_greedy}, {!Dk11}, {!Baswana_sen},
    {!Classic_greedy}) for their specific options. *)

type algorithm =
  | Greedy_poly  (** Algorithms 3/4 — the paper's contribution (default) *)
  | Greedy_exponential  (** Algorithm 1 — BDPW18/BP19 baseline *)
  | Dinitz_krauthgamer  (** DK11 reduction over Baswana-Sen *)
  | Baswana_sen_union
      (** DK11 with explicit Baswana-Sen — alias of [Dinitz_krauthgamer],
          kept for CLI discoverability *)

val algorithm_name : algorithm -> string
val all_algorithms : algorithm list

type params = {
  k : int;  (** stretch parameter: the spanner has stretch [2k - 1] *)
  f : int;  (** number of faults tolerated *)
  mode : Fault.mode;
}

(** [stretch params] is [2k - 1] as a float. *)
val stretch : params -> float

(** [build ?rng ?algorithm params g] constructs an f-fault-tolerant
    (2k-1)-spanner of [g].  [rng] is required only by randomized
    algorithms (defaults to a fixed seed). *)
val build : ?rng:Rng.t -> ?algorithm:algorithm -> params -> Graph.t -> Selection.t

type summary = {
  algorithm : string;
  params : params;
  n : int;
  m_source : int;
  m_spanner : int;
  weight_source : float;
  weight_spanner : float;
  bound_ratio : float;
      (** spanner size divided by the paper's size bound for that
          algorithm — flat across [n] when the shape matches *)
}

(** [summarize ~algorithm params sel] computes the comparison record the
    experiment tables print. *)
val summarize : algorithm:algorithm -> params -> Selection.t -> summary

val pp_summary : Format.formatter -> summary -> unit
