type t = {
  k : int;
  pivots : int array array;  (* pivots.(i).(v): nearest A_i vertex, -1 if none *)
  pivot_dist : float array array;  (* distance to that pivot *)
  bunches : (int, float) Hashtbl.t array;  (* bunches.(v): w -> d(w,v) *)
}

let build rng ~k g =
  if k < 1 then invalid_arg "Oracle.build: k must be >= 1";
  let n = Graph.n g in
  let levels = Thorup_zwick.sample_hierarchy rng ~k ~n in
  let sources_at level =
    let acc = ref [] in
    for v = 0 to n - 1 do
      if levels.(v) >= level then acc := v :: !acc
    done;
    !acc
  in
  (* Pivots and their distances per level (level 0: the vertex itself). *)
  let pivots = Array.make k [||] in
  let pivot_dist = Array.make k [||] in
  pivots.(0) <- Array.init n (fun v -> v);
  pivot_dist.(0) <- Array.make n 0.;
  let delta = Array.make (k + 1) [||] in
  delta.(0) <- Array.make n 0.;
  for i = 1 to k do
    let sources = if i > k - 1 then [] else sources_at i in
    if sources = [] then delta.(i) <- Array.make n infinity
    else begin
      (* distances and witnesses via multi-source Dijkstra with witness
         propagation: run one Dijkstra per source set, tracking the
         argmin.  We re-run a single multi-source pass and then recover
         witnesses by a second pass over the shortest-path DAG; simpler:
         run the pass with per-vertex witness updates inline. *)
      let dist = Array.make n infinity in
      let witness = Array.make n (-1) in
      let settled = Array.make n false in
      let heap = Pqueue.create ~capacity:n in
      List.iter
        (fun s ->
          dist.(s) <- 0.;
          witness.(s) <- s;
          Pqueue.push heap 0. s)
        sources;
      let rec drain () =
        match Pqueue.pop_min heap with
        | None -> ()
        | Some (d, x) ->
            if not settled.(x) then begin
              settled.(x) <- true;
              Graph.iter_neighbors g x (fun y id ->
                  let nd = d +. Graph.weight g id in
                  if nd < dist.(y) then begin
                    dist.(y) <- nd;
                    witness.(y) <- witness.(x);
                    Pqueue.push heap nd y
                  end);
              drain ()
            end
            else drain ()
      in
      drain ();
      delta.(i) <- dist;
      if i <= k - 1 then begin
        pivots.(i) <- witness;
        pivot_dist.(i) <- Array.copy dist
      end
    end
  done;
  (* Guard: levels > 0 may still be empty only when the hierarchy sampler
     gave up (it force-promotes, so pivots.(i) is always set); keep a
     defensive default. *)
  for i = 1 to k - 1 do
    if pivots.(i) = [||] then begin
      pivots.(i) <- Array.make n (-1);
      pivot_dist.(i) <- Array.make n infinity
    end
  done;
  (* Bunches: w \in B(v) iff v \in C(w); fill by growing every cluster. *)
  let bunches = Array.init n (fun _ -> Hashtbl.create 4) in
  for w = 0 to n - 1 do
    let i = levels.(w) in
    let members = Thorup_zwick.cluster g ~center:w ~bound:delta.(i + 1) in
    List.iter (fun (v, d, _) -> Hashtbl.replace bunches.(v) w d) members
  done;
  { k; pivots; pivot_dist; bunches }

let stretch_bound t = float_of_int ((2 * t.k) - 1)

let storage t =
  let bunch_entries =
    Array.fold_left (fun acc b -> acc + Hashtbl.length b) 0 t.bunches
  in
  bunch_entries + (t.k * Array.length t.bunches) (* pivot tables *)

let query t u v =
  if u = v then 0.
  else begin
    let u = ref u and v = ref v in
    let w = ref !u in
    let d_wu = ref 0. in
    let i = ref 0 in
    let result = ref None in
    while !result = None do
      (match Hashtbl.find_opt t.bunches.(!v) !w with
      | Some d_wv when !w >= 0 -> result := Some (!d_wu +. d_wv)
      | _ ->
          incr i;
          if !i > t.k - 1 then result := Some infinity
          else begin
            let tmp = !u in
            u := !v;
            v := tmp;
            w := t.pivots.(!i).(!u);
            d_wu := t.pivot_dist.(!i).(!u)
          end);
      ()
    done;
    match !result with Some d -> d | None -> infinity
  end
