(** Sound post-pruning of fault-tolerant spanners — a minimality probe.

    The greedy never removes an edge once added, so its output need not be
    (inclusion-)minimal.  This pass revisits the selected edges in
    nonincreasing weight order and deletes an edge whenever the remainder
    {e provably} stays an f-FT (2k-1)-spanner.  The certificate used is
    exact (Lemma 3 + the exact Length-Bounded Cut solver: for every source
    edge, no fault set of size [<= f] destroys all short detours), so
    pruning preserves correctness unconditionally; it is exponential in
    [f] and meant for the minimality experiment (E11), not production.

    The measured gap between greedy size and pruned size quantifies how
    much of the factor-k loss of Theorem 2 (and the approximation slack of
    Algorithm 2) materializes on real inputs. *)

type result = {
  pruned : Selection.t;
  removed : int;  (** edges deleted from the input selection *)
  candidates : int;  (** edges examined *)
}

(** [minimalize ~mode ~k ~f sel] runs the pass.  The input must itself be
    a valid f-FT (2k-1)-spanner (e.g. a greedy output); the output then is
    one too, and is minimal w.r.t. single-edge removal. *)
val minimalize : mode:Fault.mode -> k:int -> f:int -> Selection.t -> result
