(** Algorithm 1 of the paper: the exponential-time greedy of Bodwin-Dinitz-
    Parter-Vassilevska Williams (SODA'18) / Bodwin-Patel (PODC'19).

    For each edge [{u,v}] in nondecreasing weight order, the edge is added
    iff there exists a fault set [F] with [|F| <= f] such that
    [d_{H\F}(u,v) > (2k-1) * w(u,v)] in the current partial spanner [H].
    This produces the size-optimal [O(f^{1-1/k} n^{1+1/k})] fault-tolerant
    spanner, but the existence check is NP-hard, so the construction takes
    exponential time — the weakness this paper's Algorithm 3/4 removes.

    Our implementation of the existence check is exact branch-and-bound
    (branch over the members of a minimum-hop path within the stretch
    budget — any valid [F] must hit it) rather than brute-force enumeration
    of all [C(n,f)] sets; both are exponential in the worst case, but the
    branching version makes the baseline runnable on the instance sizes the
    comparison experiments use. *)

(** [build ~mode ~k ~f g] runs the exponential greedy.  Requires [k >= 1],
    [f >= 0].  Worst-case time grows like [(2k-1)^f] per edge in unweighted
    graphs (worse in weighted ones); keep [n], [f] small. *)
val build : mode:Fault.mode -> k:int -> f:int -> Graph.t -> Selection.t

(** [exists_fault_set ~mode h ~u ~v ~budget ~f] is the inner decision: does
    some fault set of size at most [f] push the [u]-[v] distance in [h]
    above [budget]?  Exposed for testing and for the LOCAL-model cluster
    centers. *)
val exists_fault_set :
  mode:Fault.mode -> Graph.t -> u:int -> v:int -> budget:float -> f:int -> bool

(** [build_naive ~mode ~k ~f g] is the greedy with the decision implemented
    exactly as in BDPW18/BP19: enumerate {e every} fault set of size at
    most [f] and test each.  [Theta(n^f)] per edge — only for the
    baseline-comparison experiment; agrees with {!build} edge for edge. *)
val build_naive : mode:Fault.mode -> k:int -> f:int -> Graph.t -> Selection.t
