(** The unified greedy engine.

    Every greedy spanner construction in this library — {!Classic_greedy},
    {!Poly_greedy}, {!Batch_greedy}, {!Exp_greedy} — is the same loop with
    a different decision oracle: order the edges, judge each candidate
    against the partial spanner [H], commit the accepted ones.  This
    module owns that scaffolding (ordering, the decide→commit loop,
    selection bookkeeping, per-edge trace emission) so the variants reduce
    to their decision procedures and their own telemetry.

    The loop is batched: edges are decided in blocks of [batch] against a
    {e frozen} [H], then the accepted block members are committed together
    ([batch = 1] is the fully sequential greedy — each decision sees every
    earlier commit).  The decider for a block may fan out over the
    persistent domain pool via {!Exec.parallel_for}, as
    [Batch_greedy.build ?pool] does; [H] is read-only during a decision
    phase, so block decisions are data-race-free by construction, and
    deciders that record verdicts by index inherit {!Exec}'s determinism
    contract (bit-identical decisions at every domain count).

    The engine carries no counters of its own: each variant keeps its
    historical [Obs] series by incrementing them inside its decider /
    [on_add] / [on_batch] hooks, which keeps metrics reports and the bench
    regression gate comparable across the refactor. *)

(** Edge processing order.  {!Poly_greedy.order} re-exports this type; see
    its documentation for which orders preserve which guarantees. *)
type order =
  | By_weight  (** nondecreasing weight — the classic greedy order *)
  | Input_order  (** edge-id (insertion) order *)
  | Reverse_weight  (** nonincreasing weight (ablation only) *)
  | Shuffled of Rng.t  (** uniformly random order (ablation) *)
  | Explicit of int array  (** a permutation of edge ids *)

(** The verdict a decider records for one candidate edge.  [Keep]'s [cut]
    is the decision certificate (the LBC fault set for {!Poly_greedy};
    [[]] when the oracle has none), passed through to [on_add]. *)
type decision = Keep of { cut : int list } | Skip

type decider = Graph.t -> Graph.edge array -> decision array -> int -> int -> unit
(** [decide h edges decisions lo hi] judges [edges.(lo..hi-1)] against the
    frozen partial spanner [h], recording verdicts in
    [decisions.(lo..hi-1)] (pre-filled with [Skip]).  [h] must not be
    mutated; writes to disjoint index ranges may run concurrently. *)

type result = {
  selection : Selection.t;  (** the kept edges, over the source graph *)
  batches : int;  (** decision blocks executed *)
  max_batch : int;  (** largest block size *)
}

(** [ordered_edges ?caller order g] is the edge array of [g] arranged per
    [order].  [Explicit] must be a permutation of the edge ids; violations
    raise [Invalid_argument] prefixed with [caller] (default ["Engine"]). *)
val ordered_edges : ?caller:string -> order -> Graph.t -> Graph.edge array

(** [run ?order ?caller ?span ?batch ?on_batch ?on_add ?trace ~decide g]
    drives the greedy over [g]:

    - [order] (default [By_weight]) fixes the processing order;
    - [span] (default none) wraps the whole build in {!Obs.with_span};
    - [batch] (default [1]) is the decision block size;
    - [on_batch i] runs before block [i] (1-based) is decided — variants
      emit their phase markers and block counters here;
    - [on_add e cut] runs for each kept edge, before it enters [H];
    - [trace] (default [true]) emits an {!Obs_trace.Greedy_edge} event per
      decided edge while tracing is on.

    Raises [Invalid_argument] (prefixed with [caller]) if [batch < 1] or
    the order is an invalid explicit permutation. *)
val run :
  ?order:order ->
  ?caller:string ->
  ?span:string ->
  ?batch:int ->
  ?on_batch:(int -> unit) ->
  ?on_add:(Graph.edge -> int list -> unit) ->
  ?trace:bool ->
  decide:decider ->
  Graph.t ->
  result
