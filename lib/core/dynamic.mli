(** Dynamic fault-tolerant spanner service: arbitrary-order updates,
    deletion repair, and a concurrent batched query plane.

    Insertion-only maintenance exploits that Theorem 8's size bound is
    order-free and that a NO verdict of Algorithm 2 is monotone under
    edge additions — but it only ever {e grows}.  This module is the
    full service shape:
    a {!t} handle absorbs edge insertions in {e any} order, edge and
    vertex {e deletions} with targeted local repair, and answers batches
    of fault-masked distance queries [d_{H\F}(u,v)] between update
    batches, fanned out over an {!Exec.Pool.t}.

    {2 Maintenance invariant}

    The handle maintains the modified-greedy invariant over the live
    graph [G] and spanner [H ⊆ G]: every live non-spanner edge [{a,b}]
    has received a NO verdict from [Lbc.decide] against some subgraph of
    the {e current} [H] (so [H \ F] keeps a [≤ 2k-1]-hop [a]-[b] detour
    for every fault set [F] of size [≤ f] — Theorem 5's argument).

    - {e Insert}: decide the new edge against [H]; YES keeps it.
      Rejections elsewhere stay valid (NO is monotone under additions).
    - {e Delete}: removing a {e non}-spanner edge only removes
      constraints.  Removing a spanner edge [{u,v}] can invalidate NO
      verdicts — but only of edges with an endpoint within [2k-1] hops
      of [u] or [v] in the {e old} [H] (any lost detour passed through
      [{u,v}]).  Repair therefore walks that neighborhood (its size is
      the [dynamic.repair.touched_vertices] counter — the locality
      measure), re-decides exactly the live non-spanner edges anchored
      there in nondecreasing weight order, and re-admits on YES.  No
      full rebuild happens, ever.
    - {e Shed} (optional, on by default): after repair, spanner edges
      anchored in the repaired region are probed with
      [Lbc.decide ~exclude:e] — a NO means [H \ e] already spans the
      edge's endpoints [alpha+1] ways over, so [e] is redundant and is
      dropped (heaviest first, one pass, no cascade); a final add-only
      re-check over the shed neighborhoods restores the invariant.

    {2 Weights}

    On unit-weight graphs the maintained [H] carries the full
    (2k-1)-stretch guarantee for any op sequence.  With general weights
    the guarantee additionally needs nondecreasing insertion weights
    (Theorem 10); out-of-order weighted insertions keep [H] a valid
    {e hop}-spanner but the weighted stretch may exceed [2k-1] —
    {!weight_monotone} reports which regime the handle is in.

    {2 Epochs and queries}

    Every mutating {!apply} bumps the handle's epoch.  {!query_batch}
    captures one immutable snapshot (the live graph plus the kept-edge
    mask) before fanning out, so a batch never observes a half-applied
    update; results land by query index, making the answers bit-identical
    at every pool size.  Re-entrant calls ({!apply} inside {!apply}, or
    {!query_batch} during {!apply}) are rejected. *)

type t

(** One update operation.  Vertices are the seed graph's [0..n-1] and
    stay fixed: [Delete_vertex] retires a vertex (with every live edge
    on it) permanently. *)
type op =
  | Insert of { u : int; v : int; w : float }
  | Delete_edge of { u : int; v : int }
  | Delete_vertex of int

type opts = {
  mode : Fault.mode;
  k : int;  (** stretch parameter: the spanner has stretch [2k-1] *)
  f : int;  (** faults tolerated *)
  pool : Exec.Pool.t option;
      (** query-plane executor; [None] answers batches sequentially *)
  shed : bool;  (** run the redundant-edge shed pass after deletions *)
}

(** [default_opts] is [{mode = VFT; k = 2; f = 1; pool = None;
    shed = true}]. *)
val default_opts : opts

(** [opts ?mode ?k ?f ?pool ?shed ()] builds options from
    {!default_opts}.  Raises [Invalid_argument] if [k < 1] or [f < 0]. *)
val opts :
  ?mode:Fault.mode ->
  ?k:int ->
  ?f:int ->
  ?pool:Exec.Pool.t ->
  ?shed:bool ->
  unit ->
  opts

(** [create ?opts g] starts a handle over the vertices of [g], seeded
    with [g]'s edges (fed through the greedy in nondecreasing weight
    order, so the initial spanner matches a fresh {!Spanner.build}).
    [g] itself is not retained or mutated. *)
val create : ?opts:opts -> Graph.t -> t

(** Per-{!apply} accounting.  [touched_vertices] is the total size of
    the repair neighborhoods this batch walked — the locality measure
    (compare it to {!n}). *)
type stats = {
  inserted : int;  (** [Insert] ops applied *)
  kept : int;  (** inserts admitted into the spanner *)
  deleted_edges : int;  (** live edges removed (incident ones included) *)
  deleted_vertices : int;
  touched_vertices : int;  (** repair-neighborhood vertices visited *)
  rechecked : int;  (** candidate edges re-decided during repair *)
  readded : int;  (** candidates re-admitted on YES *)
  shed : int;  (** spanner edges dropped as redundant *)
  epoch : int;  (** handle epoch after this batch *)
}

val pp_stats : Format.formatter -> stats -> unit

(** [apply t ops] applies the operations in order (consecutive deletions
    coalesce into one repair) and returns the batch accounting.  Raises
    [Invalid_argument] on out-of-range or retired vertices, self-loops,
    duplicate live edges, non-positive weights, deleting an absent edge,
    or re-entrant use. *)
val apply : t -> op list -> stats

type query_result = {
  qu : int;
  qv : int;
  distance : float;  (** [d_{H\F}(qu,qv)]; [infinity] when disconnected *)
  hops : int;  (** hop count of the answering path; [-1] when disconnected *)
}

val pp_query_result : Format.formatter -> query_result -> unit

(** [query_batch t ~faults pairs] answers [d_{H\F}(u,v)] for every pair
    against one immutable snapshot of the current epoch, in parallel on
    [opts.pool] when given.  [faults] uses {!snapshot}[ t]'s source
    graph for edge ids (EFT); a faulted or retired endpoint answers as
    disconnected.  Each query's latency feeds the
    [dynamic.query_latency] log-linear histogram.  Raises
    [Invalid_argument] on out-of-range endpoints or re-entrant use. *)
val query_batch : t -> faults:Fault.t -> (int * int) array -> query_result array

(** [snapshot t] materializes the current epoch: the live graph (edges
    in insertion order, so a given op history always yields the same
    ids) with the spanner as its selection.  Cached per epoch. *)
val snapshot : t -> Selection.t

(** {1 Accessors} *)

val n : t -> int

(** [size t] is the number of spanner edges; [live_edges t] the number
    of live source edges. *)
val size : t -> int

val live_edges : t -> int

(** [epoch t] starts at [0] and increments on every mutating
    {!apply}. *)
val epoch : t -> int

(** [weight_monotone t] is [true] while every insertion so far arrived
    in nondecreasing weight order (the weighted-stretch regime —
    Theorem 10). *)
val weight_monotone : t -> bool

val mode : t -> Fault.mode
val k : t -> int
val f : t -> int
