(** Algorithm 2 of the paper: the gap decision procedure [LBC(t, alpha)]
    for Length-Bounded Cut.

    Input: a graph, terminals [u, v], a hop bound [t] and a budget [alpha].
    A {e length-t-cut} is a set [F] of non-terminal vertices (VFT) or edges
    (EFT) whose removal leaves no [u]-[v] path of at most [t] hops.  The
    exact problem is NP-hard (Baier et al. 2006); the paper instead decides
    a gap version with the classic "frequency" Hitting-Set argument
    (Theorem 4):

    - if some length-t-cut of size [<= alpha] exists, the answer is [Yes];
    - if every length-t-cut has size [> alpha * t], the answer is [No];
    - in between, either answer may be returned.

    The procedure runs at most [alpha + 1] hop-bounded BFS rounds; each
    round either certifies [Yes] (no short path remains) or removes one
    short path wholesale.  Total cost [O((m + n) * alpha)].

    A [Yes] answer carries the accumulated removal set as a certificate:
    it is a genuine length-t-cut of size at most [alpha * (t-1)] in VFT
    mode ([alpha * t] in EFT mode), which is exactly the slack the greedy
    analysis absorbs (Lemma 6 uses cut size [<= (2k-1) f]). *)

module Workspace : sig
  (** Reusable scratch space (BFS arrays plus fault masks).  One workspace
      serves any number of sequential calls, growing as graphs grow.  A
      workspace must not be shared between concurrent calls: give each
      domain its own (as {!Batch_greedy.build} does with a pool). *)
  type t

  val create : unit -> t
end

type verdict =
  | Yes of { cut : int list }
      (** a length-t-cut: vertex ids (VFT) or edge ids (EFT) *)
  | No of { paths_seen : int }
      (** [alpha + 1] disjoint-ish short paths were consumed *)

val pp_verdict : Format.formatter -> verdict -> unit

(** [decide ?ws ?edge ?exclude ~mode g ~u ~v ~t ~alpha] runs Algorithm 2.
    Requirements: [u <> v], [t >= 1], [alpha >= 0].  The graph may lack
    the edge [{u,v}] (in the greedy it always does — the candidate edge
    is not yet added).

    [exclude] (default [[]]) lists edge ids of [g] the search must never
    traverse, in either mode — the verdict is then about [g] minus those
    edges.  {!Dynamic} uses it to probe "does the spanner still span
    [{u,v}] without edge [e]?" without materializing [g \ e]; excluded
    ids never appear in a [Yes] certificate.

    When [ws] is omitted a fresh workspace is created for the call, so
    workspace-less calls are reentrant and domain-safe; hot loops should
    still pass a reused [ws] to stay allocation-free.

    Every call reports to the telemetry layer (unless {!Obs.set_enabled}
    is off): counters [lbc.calls], [lbc.yes], [lbc.no] and
    [lbc.bfs_rounds] (exact BFS invocations), plus histograms
    [lbc.rounds_per_call] and [lbc.cut_size].  While {!Obs_trace} is
    collecting, the call additionally emits an [Lbc_begin]/[Lbc_end]
    event pair; [edge] (default [-1]) labels those events with the
    caller's candidate-edge id in the {e source} graph — the decision
    itself never reads it. *)
val decide :
  ?ws:Workspace.t ->
  ?edge:int ->
  ?exclude:int list ->
  mode:Fault.mode ->
  Graph.t ->
  u:int ->
  v:int ->
  t:int ->
  alpha:int ->
  verdict
