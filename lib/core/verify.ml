type violation = {
  fault : Fault.t;
  u : int;
  v : int;
  d_source : float;
  d_spanner : float;
}

let pp_violation ppf x =
  Format.fprintf ppf "@[<h>%a breaks {%d,%d}: d_G\\F=%g, d_H\\F=%g@]" Fault.pp
    x.fault x.u x.v x.d_source x.d_spanner

type report = { checked : int; violation : violation option }

let ok r = Option.is_none r.violation

let eps = 1e-9

(* Distances from [src] in the source graph and in the spanner, both under
   the fault set.  The spanner-with-faults is the source graph with
   "unselected or faulted" edges blocked (see {!Selection.blocked_edges}). *)
let fault_context sel fault =
  let g = sel.Selection.source in
  let bv, be = Fault.masks g fault in
  let h_blocked =
    Selection.blocked_edges sel
      (match fault.Fault.mode with Fault.EFT -> fault.Fault.members | Fault.VFT -> [])
  in
  (g, bv, be, h_blocked)

let distances_pair ~unit_graph g bv be h_blocked src =
  if unit_graph then
    let to_float a =
      Array.map (fun d -> if d < 0 then infinity else float_of_int d) a
    in
    ( to_float (Bfs.distances ?blocked_vertices:bv ?blocked_edges:be g src),
      to_float (Bfs.distances ?blocked_vertices:bv ~blocked_edges:h_blocked g src) )
  else
    ( Dijkstra.distances ?blocked_vertices:bv ?blocked_edges:be g src,
      Dijkstra.distances ?blocked_vertices:bv ~blocked_edges:h_blocked g src )

let vertex_faulted bv x =
  match bv with None -> false | Some a -> a.(x)

let edge_faulted be id =
  match be with None -> false | Some a -> a.(id)

let check_under_fault sel ~stretch fault =
  let g, bv, be, h_blocked = fault_context sel fault in
  let unit_graph = Graph.is_unit_weighted g in
  let found = ref None in
  let n = Graph.n g in
  let src = ref 0 in
  while !found = None && !src < n do
    let u = !src in
    if not (vertex_faulted bv u) then begin
      let needs_check = ref false in
      Graph.iter_neighbors g u (fun v id ->
          if v > u && (not (edge_faulted be id)) && not (vertex_faulted bv v)
          then needs_check := true);
      if !needs_check then begin
        let d_g, d_h = distances_pair ~unit_graph g bv be h_blocked u in
        Graph.iter_neighbors g u (fun v id ->
            if
              !found = None && v > u
              && (not (edge_faulted be id))
              && not (vertex_faulted bv v)
            then begin
              let w = Graph.weight g id in
              (* Lemma 3: the spanner condition need only be checked when
                 the edge realizes the faulted distance. *)
              if d_g.(v) >= w -. eps && d_h.(v) > (stretch *. w) +. eps then
                found :=
                  Some { fault; u; v; d_source = d_g.(v); d_spanner = d_h.(v) }
            end)
      end
    end;
    incr src
  done;
  !found

(* One fault's evaluation touches only freshly allocated masks and
   BFS/Dijkstra arrays plus read-only graph state, so a battery of faults
   is embarrassingly parallel: results land by fault index, making the
   parallel sweep bit-identical to the sequential one (Exec's determinism
   contract). *)
let max_stretch_under_fault sel fault =
  let g, bv, be, h_blocked = fault_context sel fault in
  let unit_graph = Graph.is_unit_weighted g in
  let worst = ref 1.0 in
  for u = 0 to Graph.n g - 1 do
    if not (vertex_faulted bv u) then begin
      let d_g, d_h = distances_pair ~unit_graph g bv be h_blocked u in
      Graph.iter_neighbors g u (fun v id ->
          if v > u && (not (edge_faulted be id)) && not (vertex_faulted bv v)
          then begin
            let ratio =
              if d_g.(v) = infinity then 1.0
              else if d_h.(v) = infinity then infinity
              else if d_g.(v) <= eps then 1.0
              else d_h.(v) /. d_g.(v)
            in
            if ratio > !worst then worst := ratio
          end)
    end
  done;
  !worst

let max_stretch_many ?pool sel faults =
  let n = Array.length faults in
  let out = Array.make n 1.0 in
  let body ~worker:_ lo hi =
    for i = lo to hi - 1 do
      out.(i) <- max_stretch_under_fault sel faults.(i)
    done
  in
  (match pool with
  | None -> if n > 0 then body ~worker:0 0 n
  | Some pool -> Exec.parallel_for pool ~lo:0 ~hi:n body);
  out

type profile = {
  samples : int;
  mean : float;
  p95 : float;
  worst : float;
  disconnections : int;
}

let pp_profile ppf p =
  Format.fprintf ppf
    "stretch over %d fault sets: mean %.3f, p95 %.3f, worst %s (%d disconnections)"
    p.samples p.mean p.p95
    (if p.worst = infinity then "inf" else Printf.sprintf "%.3f" p.worst)
    p.disconnections

let stretch_profile ?pool rng sel ~mode ~f ~trials =
  if trials < 1 then invalid_arg "Verify.stretch_profile: trials must be >= 1";
  let g = sel.Selection.source in
  (* Faults are drawn sequentially (index order) so the rng stream — and
     with it every profile figure — is identical with and without a
     pool; only the stretch evaluations fan out. *)
  let faults = Array.make trials (Fault.empty mode) in
  for i = 0 to trials - 1 do
    faults.(i) <-
      (if i mod 2 = 0 then Fault.random rng mode g ~f
       else Fault.random_adversarial rng mode g ~f)
  done;
  let values = max_stretch_many ?pool sel faults in
  let disconnections = ref 0 in
  Array.iter (fun s -> if s = infinity then incr disconnections) values;
  Array.sort compare values;
  let finite = Array.to_list values |> List.filter (fun v -> v < infinity) in
  let mean =
    match finite with
    | [] -> infinity
    | _ ->
        List.fold_left ( +. ) 0. finite /. float_of_int (List.length finite)
  in
  let p95 = values.(min (trials - 1) (trials * 95 / 100)) in
  {
    samples = trials;
    mean;
    p95;
    worst = values.(trials - 1);
    disconnections = !disconnections;
  }

let run_faults sel ~stretch faults =
  let checked = ref 0 in
  let violation = ref None in
  (try
     faults (fun fault ->
         incr checked;
         match check_under_fault sel ~stretch fault with
         | Some x ->
             violation := Some x;
             raise Exit
         | None -> ())
   with Exit -> ());
  { checked = !checked; violation = !violation }

let check_exhaustive ?(max_sets = 2e6) sel ~mode ~stretch ~f =
  let g = sel.Selection.source in
  let universe = match mode with Fault.VFT -> Graph.n g | Fault.EFT -> Graph.m g in
  let total = Fault.count_subsets ~universe ~f in
  if total > max_sets then
    invalid_arg
      (Printf.sprintf
         "Verify.check_exhaustive: %.3g fault sets exceed the %.3g cap" total
         max_sets);
  run_faults sel ~stretch (fun fn -> Fault.enumerate mode g ~f fn)

(* Parallel flavour of [run_faults] for a pre-drawn battery: every fault
   is evaluated (results by index), then the report is read off in sample
   order, so [checked] and the reported violation match what the
   sequential early-exit scan would have produced. *)
let run_fault_battery pool sel ~stretch faults =
  let n = Array.length faults in
  let found = Array.make n None in
  Exec.parallel_for pool ~lo:0 ~hi:n (fun ~worker:_ lo hi ->
      for i = lo to hi - 1 do
        found.(i) <- check_under_fault sel ~stretch faults.(i)
      done);
  let rec first i =
    if i >= n then { checked = n; violation = None }
    else
      match found.(i) with
      | Some _ as v -> { checked = i + 1; violation = v }
      | None -> first (i + 1)
  in
  first 0

let check_sampled ?pool draw rng sel ~stretch ~trials =
  match pool with
  | None -> run_faults sel ~stretch (fun fn -> for _ = 1 to trials do fn (draw rng) done)
  | Some _ when trials < 1 -> { checked = 0; violation = None }
  | Some pool ->
      let faults = Array.make trials (draw rng) in
      for i = 1 to trials - 1 do
        faults.(i) <- draw rng
      done;
      run_fault_battery pool sel ~stretch faults

let check_random ?pool rng sel ~mode ~stretch ~f ~trials =
  check_sampled ?pool
    (fun rng -> Fault.random rng mode sel.Selection.source ~f)
    rng sel ~stretch ~trials

let check_adversarial ?pool rng sel ~mode ~stretch ~f ~trials =
  check_sampled ?pool
    (fun rng -> Fault.random_adversarial rng mode sel.Selection.source ~f)
    rng sel ~stretch ~trials

(* ------------------------- config surface ------------------------- *)

type config = {
  pool : Exec.Pool.t option;
  trials : int;
  rng : Rng.t option;
  seed : int;
  max_sets : float;
}

let default =
  { pool = None; trials = 200; rng = None; seed = 0x5eed; max_sets = 2e6 }

let config ?pool ?(trials = default.trials) ?rng ?(seed = default.seed)
    ?(max_sets = default.max_sets) () =
  if trials < 1 then invalid_arg "Verify.config: trials must be >= 1";
  if max_sets <= 0. then invalid_arg "Verify.config: max_sets must be > 0";
  { pool; trials; rng; seed; max_sets }

(* A shared [rng] in the config threads one stream through successive
   batteries (the CLI's adversarial -> random -> profile chain); without
   one, each call derives a fresh deterministic stream from [seed]. *)
let cfg_rng cfg =
  match cfg.rng with Some r -> r | None -> Rng.create ~seed:cfg.seed

let random ?(cfg = default) sel ~mode ~stretch ~f =
  check_sampled ?pool:cfg.pool
    (fun rng -> Fault.random rng mode sel.Selection.source ~f)
    (cfg_rng cfg) sel ~stretch ~trials:cfg.trials

let adversarial ?(cfg = default) sel ~mode ~stretch ~f =
  check_sampled ?pool:cfg.pool
    (fun rng -> Fault.random_adversarial rng mode sel.Selection.source ~f)
    (cfg_rng cfg) sel ~stretch ~trials:cfg.trials

let exhaustive ?(cfg = default) sel ~mode ~stretch ~f =
  check_exhaustive ~max_sets:cfg.max_sets sel ~mode ~stretch ~f

let profile ?(cfg = default) sel ~mode ~f =
  stretch_profile ?pool:cfg.pool (cfg_rng cfg) sel ~mode ~f ~trials:cfg.trials

let stretch_many ?(cfg = default) sel faults =
  max_stretch_many ?pool:cfg.pool sel faults
