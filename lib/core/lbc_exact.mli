(** Exact Length-Bounded Cut by branch-and-bound — the test oracle for
    Algorithm 2 and the engine of the exponential-time greedy baseline.

    Length-Bounded Cut is NP-hard, so this solver is exponential in the
    cut size; it is intended for small budgets (the regimes where the
    exponential greedy of BDPW18/BP19 is runnable at all).  The search
    branches on the members of a minimum-hop violating path: any valid cut
    must contain at least one interior vertex (VFT) / edge (EFT) of that
    path, giving branching factor at most [t - 1] (resp. [t]) and depth at
    most the budget. *)

(** [min_cut ~mode g ~u ~v ~t ~limit] returns [Some cut] where [cut] is a
    minimum-cardinality length-[t]-cut of size [<= limit], or [None] when
    every length-[t]-cut is larger than [limit] (including the case where
    no cut exists at all, e.g. a direct [u]-[v] edge in VFT mode). *)
val min_cut :
  mode:Fault.mode ->
  Graph.t ->
  u:int ->
  v:int ->
  t:int ->
  limit:int ->
  int list option

(** [is_cut ~mode g ~u ~v ~t members] checks the cut property directly: no
    [u]-[v] path of at most [t] hops survives deleting [members]. *)
val is_cut : mode:Fault.mode -> Graph.t -> u:int -> v:int -> t:int -> int list -> bool
