type op =
  | Insert of { u : int; v : int; w : float }
  | Delete_edge of { u : int; v : int }
  | Delete_vertex of int

type opts = {
  mode : Fault.mode;
  k : int;
  f : int;
  pool : Exec.Pool.t option;
  shed : bool;
}

let default_opts = { mode = Fault.VFT; k = 2; f = 1; pool = None; shed = true }

let opts ?(mode = default_opts.mode) ?(k = default_opts.k)
    ?(f = default_opts.f) ?pool ?(shed = default_opts.shed) () =
  if k < 1 then invalid_arg "Dynamic.opts: k must be >= 1";
  if f < 0 then invalid_arg "Dynamic.opts: f must be >= 0";
  { mode; k; f; pool; shed }

(* Live-edge store.  [Graph.t] is insert-only, so the handle owns the
   authoritative edge records and materializes graphs from them: the
   spanner graph eagerly (it is what LBC decides against) and the full
   live graph lazily per epoch (the query snapshot). *)
type estate = {
  eu : int;
  ev : int;
  ew : float;
  mutable alive : bool;
  mutable kept : bool;
}

type t = {
  o : opts;
  nv : int;
  backend : Csr.backend;
  mutable edges : estate array;  (* insertion order; grows, never shrinks *)
  mutable n_edges : int;
  by_pair : (int * int, int) Hashtbl.t;  (* live (u<v) pair -> edge index *)
  adj : int list array;  (* every edge index ever incident, newest first *)
  retired : bool array;  (* vertices removed by Delete_vertex *)
  mutable live : int;  (* live edge count *)
  mutable kept_n : int;  (* spanner edge count *)
  mutable spanner : Graph.t;  (* graph of the kept live edges *)
  mutable spanner_dirty : bool;  (* deletions invalidate [spanner] *)
  mutable cur_epoch : int;
  mutable snap : (int * Selection.t) option;  (* epoch-tagged cache *)
  mutable busy : bool;  (* re-entrancy guard *)
  mutable last_w : float;
  mutable monotone : bool;
  (* Depth-bounded multi-source BFS scratch, stamp-cleared so a repair
     costs the neighborhood it walks, not O(n). *)
  mutable seen_stamp : int array;
  mutable stamp : int;
  queue : (int * int) Queue.t;
  ws : Lbc.Workspace.t;
}

let m_inserts = Obs.counter "dynamic.inserts"
let m_insert_kept = Obs.counter "dynamic.insert.kept"
let m_del_edges = Obs.counter "dynamic.deletes.edges"
let m_del_vertices = Obs.counter "dynamic.deletes.vertices"
let m_repairs = Obs.counter "dynamic.repair.calls"
let m_touched = Obs.counter "dynamic.repair.touched_vertices"
let m_rechecks = Obs.counter "dynamic.repair.rechecks"
let m_readded = Obs.counter "dynamic.repair.readded"
let m_shed_c = Obs.counter "dynamic.repair.shed"
let m_epochs = Obs.counter "dynamic.epochs"
let m_queries = Obs.counter "dynamic.queries"
let m_query_batches = Obs.counter "dynamic.query_batches"
let h_region = Obs.histogram "dynamic.repair.region_size"
let h_qlat = Obs.histogram_log "dynamic.query_latency"

let key u v = if u < v then (u, v) else (v, u)
let hops_bound t = (2 * t.o.k) - 1

let guard t what =
  if t.busy then
    invalid_arg (Printf.sprintf "Dynamic.%s: handle is mid-update" what)

let check_vertex t what x =
  if x < 0 || x >= t.nv then
    invalid_arg (Printf.sprintf "Dynamic.%s: vertex %d out of range" what x)

(* Rebuild the spanner graph from the live kept edges (insertion order).
   O(|H|) materialization only — never a greedy re-run; deferred to the
   next LBC decision so a burst of deletions pays it once. *)
let refresh_spanner t =
  if t.spanner_dirty then begin
    let g = Graph.create ~backend:t.backend t.nv in
    for i = 0 to t.n_edges - 1 do
      let e = t.edges.(i) in
      if e.alive && e.kept then ignore (Graph.add_edge g e.eu e.ev ~w:e.ew)
    done;
    t.spanner <- g;
    t.spanner_dirty <- false
  end

let decide t ~u ~v ~exclude =
  refresh_spanner t;
  Lbc.decide ~ws:t.ws ~exclude ~mode:t.o.mode t.spanner ~u ~v
    ~t:(hops_bound t) ~alpha:t.o.f

let store_edge t u v w =
  if t.n_edges = Array.length t.edges then begin
    let bigger =
      Array.make
        (max 16 (2 * Array.length t.edges))
        { eu = 0; ev = 0; ew = 0.; alive = false; kept = false }
    in
    Array.blit t.edges 0 bigger 0 t.n_edges;
    t.edges <- bigger
  end;
  let u, v = key u v in
  let idx = t.n_edges in
  t.edges.(idx) <- { eu = u; ev = v; ew = w; alive = true; kept = false };
  t.n_edges <- idx + 1;
  Hashtbl.replace t.by_pair (u, v) idx;
  t.adj.(u) <- idx :: t.adj.(u);
  t.adj.(v) <- idx :: t.adj.(v);
  t.live <- t.live + 1;
  idx

let insert_edge t u v w =
  check_vertex t "apply" u;
  check_vertex t "apply" v;
  if u = v then invalid_arg "Dynamic.apply: self-loop insert";
  if t.retired.(u) || t.retired.(v) then
    invalid_arg "Dynamic.apply: insert on a retired vertex";
  if Hashtbl.mem t.by_pair (key u v) then
    invalid_arg (Printf.sprintf "Dynamic.apply: duplicate edge {%d,%d}" u v);
  if w <= 0. then invalid_arg "Dynamic.apply: weight must be > 0";
  if w < t.last_w then t.monotone <- false;
  t.last_w <- max t.last_w w;
  let idx = store_edge t u v w in
  Obs.Counter.incr m_inserts;
  match decide t ~u ~v ~exclude:[] with
  | Lbc.Yes _ ->
      t.edges.(idx).kept <- true;
      t.kept_n <- t.kept_n + 1;
      ignore (Graph.add_edge t.spanner u v ~w);
      Obs.Counter.incr m_insert_kept;
      true
  | Lbc.No _ -> false

(* Depth-bounded multi-source BFS over the OLD spanner graph (deleted
   edges still present — a sound over-approximation of the affected
   region: any rejected edge whose [<= 2k-1]-hop detour used a deleted
   spanner edge has an endpoint within [2k-1] old-spanner hops of that
   edge).  Cost is proportional to the region walked, not n. *)
let affected_region t ~seeds ~depth =
  if Array.length t.seen_stamp < t.nv then t.seen_stamp <- Array.make t.nv 0;
  t.stamp <- t.stamp + 1;
  let stamp = t.stamp and seen = t.seen_stamp in
  let g = t.spanner in
  let region = ref [] in
  Queue.clear t.queue;
  List.iter
    (fun s ->
      if seen.(s) <> stamp then begin
        seen.(s) <- stamp;
        region := s :: !region;
        Queue.add (s, 0) t.queue
      end)
    seeds;
  while not (Queue.is_empty t.queue) do
    let x, dx = Queue.pop t.queue in
    if dx < depth then
      Graph.iter_neighbors g x (fun y _ ->
          if seen.(y) <> stamp then begin
            seen.(y) <- stamp;
            region := y :: !region;
            Queue.add (y, dx + 1) t.queue
          end)
  done;
  !region

(* Live non-spanner edges anchored in [region], in nondecreasing
   (weight, id) order — the greedy's order, so a given state always
   repairs the same way. *)
let candidates t region =
  let ids = ref [] in
  List.iter
    (fun x ->
      List.iter
        (fun idx ->
          let e = t.edges.(idx) in
          if e.alive && not e.kept then ids := idx :: !ids)
        t.adj.(x))
    region;
  List.sort_uniq compare !ids
  |> List.map (fun idx -> (t.edges.(idx).ew, idx))
  |> List.sort compare
  |> List.map snd

type stats = {
  inserted : int;
  kept : int;
  deleted_edges : int;
  deleted_vertices : int;
  touched_vertices : int;
  rechecked : int;
  readded : int;
  shed : int;
  epoch : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<h>+%d (kept %d) -%d edges -%d vertices; repair: touched %d, \
     rechecked %d, readded %d, shed %d; epoch %d@]"
    s.inserted s.kept s.deleted_edges s.deleted_vertices s.touched_vertices
    s.rechecked s.readded s.shed s.epoch

(* Mutable accumulator threaded through one [apply]. *)
type acc = {
  mutable a_inserted : int;
  mutable a_kept : int;
  mutable a_del_e : int;
  mutable a_del_v : int;
  mutable a_touched : int;
  mutable a_recheck : int;
  mutable a_readd : int;
  mutable a_shed : int;
}

let recheck_region t acc region =
  List.iter
    (fun idx ->
      let e = t.edges.(idx) in
      acc.a_recheck <- acc.a_recheck + 1;
      Obs.Counter.incr m_rechecks;
      match decide t ~u:e.eu ~v:e.ev ~exclude:[] with
      | Lbc.Yes _ ->
          e.kept <- true;
          t.kept_n <- t.kept_n + 1;
          ignore (Graph.add_edge t.spanner e.eu e.ev ~w:e.ew);
          acc.a_readd <- acc.a_readd + 1;
          Obs.Counter.incr m_readded
      | Lbc.No _ -> ())
    (candidates t region)

(* Targeted repair after a group of deletions whose kept edges touched
   [seeds].  Never a rebuild: the spanner graph is re-materialized once
   (O(|H|)), and greedy re-decisions run only over the affected
   neighborhood. *)
let repair t acc ~seeds =
  Obs.Counter.incr m_repairs;
  let depth = hops_bound t in
  (* Region on the OLD spanner, before the deletions take effect. *)
  let region = affected_region t ~seeds ~depth in
  let touched = List.length region in
  acc.a_touched <- acc.a_touched + touched;
  Obs.Counter.add m_touched touched;
  Obs.Histogram.observe_int h_region touched;
  if Obs_trace.enabled () then
    Obs_trace.emit
      (Obs_trace.Counter_sample
         { name = "dynamic.repair.touched_vertices"; value = touched });
  t.spanner_dirty <- true;
  (* Add-only pass: re-admit candidates the lost edges may have been
     covering (first [decide] re-materializes the spanner). *)
  recheck_region t acc region;
  if t.o.shed then begin
    refresh_spanner t;
    (* Shed probe, heaviest first: a NO on [H \ e] means the spanner
       keeps alpha+1 short detours without [e] — the edge is redundant
       (the repair may have restored coverage the deleted edges used to
       provide).  One pass, no cascade; [exclude] accumulates so later
       probes see earlier sheds without re-materializing. *)
    let kept_anchored =
      List.filter
        (fun idx ->
          let e = t.edges.(idx) in
          e.alive && e.kept)
        (List.sort_uniq compare
           (List.concat_map (fun x -> t.adj.(x)) region))
      |> List.map (fun idx -> (t.edges.(idx).ew, idx))
      |> List.sort (fun a b -> compare b a)
      |> List.map snd
    in
    let excluded = ref [] in
    let shed_seeds = ref [] in
    List.iter
      (fun idx ->
        let e = t.edges.(idx) in
        match Graph.find_edge t.spanner e.eu e.ev with
        | None -> ()
        | Some gid -> (
            match
              Lbc.decide ~ws:t.ws ~exclude:(gid :: !excluded) ~mode:t.o.mode
                t.spanner ~u:e.eu ~v:e.ev ~t:depth ~alpha:t.o.f
            with
            | Lbc.No _ ->
                e.kept <- false;
                t.kept_n <- t.kept_n - 1;
                excluded := gid :: !excluded;
                shed_seeds := e.eu :: e.ev :: !shed_seeds;
                acc.a_shed <- acc.a_shed + 1;
                Obs.Counter.incr m_shed_c
            | Lbc.Yes _ -> ()))
      kept_anchored;
    if !shed_seeds <> [] then begin
      (* Shedding can invalidate NO verdicts of edges whose detours used
         a shed edge; those live within [depth] old-spanner hops of it.
         One final add-only re-check restores the invariant (adds never
         invalidate other verdicts, so this terminates). *)
      let region2 = affected_region t ~seeds:!shed_seeds ~depth in
      let touched2 = List.length region2 in
      acc.a_touched <- acc.a_touched + touched2;
      Obs.Counter.add m_touched touched2;
      Obs.Histogram.observe_int h_region touched2;
      t.spanner_dirty <- true;
      recheck_region t acc region2
    end
  end

let apply t ops =
  guard t "apply";
  t.busy <- true;
  Fun.protect
    ~finally:(fun () -> t.busy <- false)
    (fun () ->
      if Obs_trace.enabled () then
        Obs_trace.emit
          (Obs_trace.Phase { name = "dynamic.apply"; index = t.cur_epoch });
      let acc =
        {
          a_inserted = 0;
          a_kept = 0;
          a_del_e = 0;
          a_del_v = 0;
          a_touched = 0;
          a_recheck = 0;
          a_readd = 0;
          a_shed = 0;
        }
      in
      let changed = ref false in
      let pending_seeds = ref [] in
      let flush_repair () =
        if !pending_seeds <> [] then begin
          let seeds = List.rev !pending_seeds in
          pending_seeds := [];
          repair t acc ~seeds
        end
      in
      let delete_edge_idx idx =
        let e = t.edges.(idx) in
        e.alive <- false;
        Hashtbl.remove t.by_pair (key e.eu e.ev);
        t.live <- t.live - 1;
        acc.a_del_e <- acc.a_del_e + 1;
        Obs.Counter.incr m_del_edges;
        if e.kept then begin
          e.kept <- false;
          t.kept_n <- t.kept_n - 1;
          (* The spanner graph stays stale until [repair] has walked the
             old neighborhood; [flush_repair] runs before any decision
             that could observe it. *)
          pending_seeds := e.ev :: e.eu :: !pending_seeds
        end
      in
      List.iter
        (fun op ->
          match op with
          | Insert { u; v; w } ->
              flush_repair ();
              changed := true;
              acc.a_inserted <- acc.a_inserted + 1;
              if insert_edge t u v w then acc.a_kept <- acc.a_kept + 1
          | Delete_edge { u; v } -> (
              check_vertex t "apply" u;
              check_vertex t "apply" v;
              match Hashtbl.find_opt t.by_pair (key u v) with
              | None ->
                  invalid_arg
                    (Printf.sprintf "Dynamic.apply: no live edge {%d,%d}" u v)
              | Some idx ->
                  changed := true;
                  delete_edge_idx idx)
          | Delete_vertex x ->
              check_vertex t "apply" x;
              if t.retired.(x) then
                invalid_arg
                  (Printf.sprintf "Dynamic.apply: vertex %d already retired" x);
              changed := true;
              t.retired.(x) <- true;
              acc.a_del_v <- acc.a_del_v + 1;
              Obs.Counter.incr m_del_vertices;
              List.iter
                (fun idx -> if t.edges.(idx).alive then delete_edge_idx idx)
                t.adj.(x))
        ops;
      flush_repair ();
      if !changed then begin
        t.cur_epoch <- t.cur_epoch + 1;
        Obs.Counter.incr m_epochs;
        t.snap <- None
      end;
      {
        inserted = acc.a_inserted;
        kept = acc.a_kept;
        deleted_edges = acc.a_del_e;
        deleted_vertices = acc.a_del_v;
        touched_vertices = acc.a_touched;
        rechecked = acc.a_recheck;
        readded = acc.a_readd;
        shed = acc.a_shed;
        epoch = t.cur_epoch;
      })

let create ?(opts = default_opts) g =
  if opts.k < 1 then invalid_arg "Dynamic.create: k must be >= 1";
  if opts.f < 0 then invalid_arg "Dynamic.create: f must be >= 0";
  let nv = Graph.n g in
  let t =
    {
      o = opts;
      nv;
      backend = Graph.backend g;
      edges = [||];
      n_edges = 0;
      by_pair = Hashtbl.create 64;
      adj = Array.make (max 1 nv) [];
      retired = Array.make (max 1 nv) false;
      live = 0;
      kept_n = 0;
      spanner = Graph.create ~backend:(Graph.backend g) nv;
      spanner_dirty = false;
      cur_epoch = 0;
      snap = None;
      busy = false;
      last_w = neg_infinity;
      monotone = true;
      seen_stamp = [||];
      stamp = 0;
      queue = Queue.create ();
      ws = Lbc.Workspace.create ();
    }
  in
  (* Seed with the greedy's order (nondecreasing weight, ties by id), so
     the initial spanner is exactly a fresh build's. *)
  let edges = Graph.edge_array g in
  Array.sort
    (fun a b -> compare (a.Graph.w, a.Graph.id) (b.Graph.w, b.Graph.id))
    edges;
  Array.iter (fun e -> ignore (insert_edge t e.Graph.u e.Graph.v e.Graph.w)) edges;
  t

type query_result = { qu : int; qv : int; distance : float; hops : int }

let pp_query_result ppf r =
  if r.hops < 0 then Format.fprintf ppf "@[<h>d(%d,%d) = inf@]" r.qu r.qv
  else
    Format.fprintf ppf "@[<h>d(%d,%d) = %g (%d hops)@]" r.qu r.qv r.distance
      r.hops

let snapshot t =
  guard t "snapshot";
  match t.snap with
  | Some (e, sel) when e = t.cur_epoch -> sel
  | _ ->
      let g = Graph.create ~backend:t.backend t.nv in
      let kept = ref [] in
      for i = 0 to t.n_edges - 1 do
        let e = t.edges.(i) in
        if e.alive then begin
          let id = Graph.add_edge g e.eu e.ev ~w:e.ew in
          if e.kept then kept := id :: !kept
        end
      done;
      let sel = Selection.of_ids g !kept in
      t.snap <- Some (t.cur_epoch, sel);
      sel

let query_batch t ~faults pairs =
  guard t "query_batch";
  let sel = snapshot t in
  let g = sel.Selection.source in
  Array.iter
    (fun (u, v) ->
      check_vertex t "query_batch" u;
      check_vertex t "query_batch" v)
    pairs;
  let nq = Array.length pairs in
  Obs.Counter.incr m_query_batches;
  Obs.Counter.add m_queries nq;
  if Obs_trace.enabled () then
    Obs_trace.emit
      (Obs_trace.Phase { name = "dynamic.query_batch"; index = t.cur_epoch });
  let bv, _ = Fault.masks g faults in
  let h_blocked =
    Selection.blocked_edges sel
      (match faults.Fault.mode with
      | Fault.EFT -> faults.Fault.members
      | Fault.VFT -> [])
  in
  let unit_graph = Graph.is_unit_weighted g in
  let max_hops = max 1 (Graph.n g) in
  let results =
    Array.make nq { qu = 0; qv = 0; distance = infinity; hops = -1 }
  in
  let epoch0 = t.cur_epoch in
  let answer i =
    let u, v = pairs.(i) in
    let t0 = Obs.now_s () in
    let r =
      if u = v then { qu = u; qv = v; distance = 0.; hops = 0 }
      else
        let path =
          if unit_graph then
            Bfs.hop_bounded_path ?blocked_vertices:bv ~blocked_edges:h_blocked
              g ~src:u ~dst:v ~max_hops
          else
            Dijkstra.shortest_path ?blocked_vertices:bv
              ~blocked_edges:h_blocked g ~src:u ~dst:v
        in
        match path with
        | None -> { qu = u; qv = v; distance = infinity; hops = -1 }
        | Some p ->
            {
              qu = u;
              qv = v;
              distance =
                (if unit_graph then float_of_int (Path.hops p)
                 else Path.weight g p);
              hops = Path.hops p;
            }
    in
    Obs.Histogram.observe h_qlat (Obs.now_s () -. t0);
    results.(i) <- r
  in
  (match t.o.pool with
  | None ->
      for i = 0 to nq - 1 do
        answer i
      done
  | Some pool ->
      if nq > 0 then
        Exec.parallel_for pool ~lo:0 ~hi:nq (fun ~worker:_ lo hi ->
            for i = lo to hi - 1 do
              answer i
            done));
  (* Epoch guard: the snapshot was captured above; a concurrent mutation
     would be a caller bug (the handle is not a concurrent structure on
     the update side), so fail loudly rather than answer from a torn
     state. *)
  if epoch0 <> t.cur_epoch then
    invalid_arg "Dynamic.query_batch: epoch moved mid-batch";
  results

let n t = t.nv
let size t = t.kept_n
let live_edges t = t.live
let epoch t = t.cur_epoch
let weight_monotone t = t.monotone
let mode t = t.o.mode
let k t = t.o.k
let f t = t.o.f
