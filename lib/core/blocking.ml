type t = { pairs : (int * int) list; spanner : Selection.t }

let of_certificates sel certs =
  let pairs =
    List.concat_map
      (fun c ->
        List.map
          (fun x -> (x, c.Poly_greedy.edge.Graph.id))
          c.Poly_greedy.cut)
      certs
  in
  { pairs; spanner = sel }

let size b = List.length b.pairs

let lemma6_bound ~k ~f ~spanner_size = ((2 * k) - 1) * f * spanner_size

type cycle = { vertices : int list; edges : int list }

(* Enumerate simple cycles with at most [max_len] vertices in the spanner,
   each exactly once: root every cycle at its smallest vertex [s], walk
   only through vertices [> s], and break the two traversal directions by
   requiring the first step to be smaller than the last. *)
let short_cycles ?(limit = 200_000) sel ~max_len =
  let sub = Selection.to_subgraph sel in
  let h = sub.Subgraph.graph in
  let n = Graph.n h in
  let cycles = ref [] in
  let count = ref 0 in
  let exhausted = ref true in
  let on_path = Array.make n false in
  (* path: reversed vertex stack; edges: reversed edge-id stack (spanner
     subgraph ids, translated on emission). *)
  let rec extend s path edges len =
    if !count >= limit then exhausted := false
    else
      let x = List.hd path in
      Graph.iter_neighbors h x (fun y id ->
          if !count < limit then
            if y = s && len >= 3 then begin
              match List.rev path with
              | _ :: first :: _ when first < x ->
                  incr count;
                  let vertices =
                    List.rev_map (fun v -> sub.Subgraph.to_parent_vertex.(v)) path
                  in
                  let edge_ids =
                    List.rev_map
                      (fun e -> sub.Subgraph.to_parent_edge.(e))
                      (id :: edges)
                  in
                  cycles := { vertices; edges = edge_ids } :: !cycles
              | _ -> ()
            end
            else if y > s && (not on_path.(y)) && len < max_len then begin
              on_path.(y) <- true;
              extend s (y :: path) (id :: edges) (len + 1);
              on_path.(y) <- false
            end)
  in
  for s = 0 to n - 1 do
    if !count < limit then begin
      on_path.(s) <- true;
      extend s [ s ] [] 1;
      on_path.(s) <- false
    end
  done;
  (!cycles, !exhausted)

let is_blocking ?limit b ~t_bound =
  let by_edge = Hashtbl.create 64 in
  List.iter
    (fun (x, e) ->
      let cur = try Hashtbl.find by_edge e with Not_found -> [] in
      Hashtbl.replace by_edge e (x :: cur))
    b.pairs;
  let cycles, exhaustive = short_cycles ?limit b.spanner ~max_len:t_bound in
  if not exhaustive then Error "cycle enumeration hit the limit"
  else begin
    let blocked c =
      List.exists
        (fun e ->
          match Hashtbl.find_opt by_edge e with
          | None -> false
          | Some xs -> List.exists (fun x -> List.mem x c.vertices) xs)
        c.edges
    in
    Ok (List.find_opt (fun c -> not (blocked c)) cycles)
  end

type subsample = {
  sampled_nodes : int;
  surviving_edges : int;
  expected_edges : float;
  girth_exceeds_2k : bool;
}

let lemma7_subsample rng b ~k ~f =
  let g = b.spanner.Selection.source in
  let n = Graph.n g in
  let m_h = b.spanner.Selection.size in
  let q = (2 * ((2 * k) - 1)) * max 1 f in
  let sample_size = max 0 (n / q) in
  let sample = Rng.sample_without_replacement rng ~k:sample_size ~n in
  let in_sample = Array.make n false in
  List.iter (fun v -> in_sample.(v) <- true) sample;
  (* H': spanner induced on the sample.  H'': drop every edge appearing in
     a pair whose vertex also survived. *)
  let dropped = Hashtbl.create 64 in
  List.iter
    (fun (x, e) ->
      let u, v = Graph.endpoints g e in
      if in_sample.(x) && in_sample.(u) && in_sample.(v) then
        Hashtbl.replace dropped e ())
    b.pairs;
  let keep = Array.make (Graph.m g) false in
  Array.iteri
    (fun e selected ->
      if selected then begin
        let u, v = Graph.endpoints g e in
        if in_sample.(u) && in_sample.(v) && not (Hashtbl.mem dropped e) then
          keep.(e) <- true
      end)
    b.spanner.Selection.selected;
  let sub = Subgraph.of_edge_subset g keep in
  let kf = float_of_int (((2 * k) - 1) * max 1 f) in
  {
    sampled_nodes = sample_size;
    surviving_edges = Graph.m sub.Subgraph.graph;
    expected_edges = float_of_int m_h /. (8. *. kf *. kf);
    girth_exceeds_2k = Girth.girth_exceeds sub.Subgraph.graph ~bound:(2 * k);
  }
