(** Algorithms 3 and 4 of the paper: the polynomial-time modified greedy —
    the headline contribution (Theorem 2).

    The exponential "does some fault set of size [f] disconnect all short
    detours?" test of Algorithm 1 is replaced by one call to the
    Length-Bounded Cut gap procedure {!Lbc.decide} with [t = 2k - 1] and
    [alpha = f]; the candidate edge is added exactly when that call answers
    [Yes].

    Guarantees (for either fault mode):
    - {b Correctness} (Theorems 5 and 10): the output is an f-fault-
      tolerant (2k-1)-spanner.  For weighted graphs the only use of the
      weights is the nondecreasing processing order — the short-detour
      test itself is purely hop-based, and the ordering argument converts
      hop bounds back into weighted stretch.
    - {b Size} (Theorem 8): at most [O(k f^{1-1/k} n^{1+1/k})] edges, for
      {e any} processing order.
    - {b Time} (Theorem 9): [O(m k f^{2-1/k} n^{1+1/k})].

    Because Theorem 8 holds for arbitrary orders, the [order] parameter is
    exposed: the weighted algorithm (Algorithm 4) is [`By_weight], the
    unweighted one (Algorithm 3) accepts anything.  Processing out of
    weight order on a weighted graph voids the stretch guarantee — the
    ordering-sensitivity experiment (E10) does exactly that on unit-weight
    graphs, where every order is valid. *)

type order = Engine.order =
  | By_weight  (** nondecreasing weight — Algorithm 4, the default *)
  | Input_order  (** edge-id order *)
  | Reverse_weight  (** nonincreasing weight (ablation only) *)
  | Shuffled of Rng.t  (** uniformly random order (ablation) *)
  | Explicit of int array  (** a permutation of edge ids *)

type trace = {
  lbc_calls : int;  (** = m *)
  bfs_rounds : int;  (** exact total BFS invocations inside LBC *)
  yes_answers : int;  (** = spanner size *)
}
(** The trace is a delta of the telemetry counters [lbc.calls],
    [lbc.bfs_rounds] and [lbc.yes] across the build (see {!Obs}); if
    collection is disabled via [Obs.set_enabled false], the trace reads
    all zeros.  Builds additionally record the [poly_greedy.build] span
    and the [poly_greedy.edges_considered] / [poly_greedy.edges_added]
    counters. *)

(** [build ?order ~mode ~k ~f g] runs the modified greedy.  Requires
    [k >= 1] and [f >= 0] ([f = 0] degenerates to the classic greedy
    test). *)
val build : ?order:order -> mode:Fault.mode -> k:int -> f:int -> Graph.t -> Selection.t

(** [build_traced] additionally reports work counters for the running-time
    experiments. *)
val build_traced :
  ?order:order ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  Graph.t ->
  Selection.t * trace

type certificate = {
  edge : Graph.edge;  (** the edge the greedy added *)
  cut : int list;
      (** the YES certificate of {!Lbc.decide} at the moment of addition:
          a length-(2k-1) cut for the edge's endpoints in the partial
          spanner, of size at most [(2k-1) f].  In VFT mode these are
          vertex ids; in EFT mode, edge ids {e of the partial spanner at
          that moment} (which equals the final spanner restricted to
          earlier additions). *)
}

(** [build_with_certificates] records, for every added edge, the fault-set
    certificate the LBC call produced.  These are exactly the sets [F_e]
    from which Lemma 6 assembles the (2k)-blocking set; the {!Blocking}
    module consumes them. *)
val build_with_certificates :
  ?order:order ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  Graph.t ->
  Selection.t * certificate list
