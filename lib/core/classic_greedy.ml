let build ~k g =
  if k < 1 then invalid_arg "Classic_greedy.build: k must be >= 1";
  let stretch = float_of_int ((2 * k) - 1) in
  let unit_graph = Graph.is_unit_weighted g in
  let decide h edges decisions lo hi =
    for i = lo to hi - 1 do
      let e = edges.(i) in
      let u = e.Graph.u and v = e.Graph.v in
      let spanned =
        if unit_graph then
          (* BFS suffices: need a path of at most 2k-1 hops. *)
          Option.is_some
            (Bfs.hop_bounded_path h ~src:u ~dst:v ~max_hops:((2 * k) - 1))
        else
          Option.is_some
            (Dijkstra.distance_upto h ~src:u ~dst:v
               ~cutoff:(stretch *. e.Graph.w))
      in
      if not spanned then decisions.(i) <- Engine.Keep { cut = [] }
    done
  in
  (* No span, no trace events: the classic greedy has always been the
     telemetry-silent baseline, and the bench regression gate compares
     counter sets across versions. *)
  let res = Engine.run ~caller:"Classic_greedy" ~trace:false ~decide g in
  res.Engine.selection
