let build ~k g =
  if k < 1 then invalid_arg "Classic_greedy.build: k must be >= 1";
  let stretch = float_of_int ((2 * k) - 1) in
  let order = Graph.edge_array g in
  Array.sort (fun a b -> compare a.Graph.w b.Graph.w) order;
  let h = Graph.create (Graph.n g) in
  let selected = Array.make (Graph.m g) false in
  let size = ref 0 in
  let unit_graph = Graph.is_unit_weighted g in
  let consider e =
    let u = e.Graph.u and v = e.Graph.v in
    let spanned =
      if unit_graph then
        (* BFS suffices: need a path of at most 2k-1 hops. *)
        Option.is_some
          (Bfs.hop_bounded_path h ~src:u ~dst:v ~max_hops:((2 * k) - 1))
      else
        Option.is_some
          (Dijkstra.distance_upto h ~src:u ~dst:v ~cutoff:(stretch *. e.Graph.w))
    in
    if not spanned then begin
      ignore (Graph.add_edge h u v ~w:e.Graph.w);
      selected.(e.Graph.id) <- true;
      incr size
    end
  in
  Array.iter consider order;
  Selection.of_mask g selected
