(** The Dinitz-Krauthgamer black-box fault-tolerance reduction (PODC 2011),
    which the paper combines with Baswana-Sen for its CONGEST algorithm
    (Theorem 13) and which serves as the pre-greedy centralized baseline.

    Given any algorithm [A] building a (2k-1)-spanner with [g(n)] edges,
    the reduction runs [J = ceil(c * f^3 * ln n)] independent iterations;
    in each, every vertex participates with probability [1/(f+1)] and [A]
    runs on the induced subgraph.  The union of all iterations is an
    f-VFT (2k-1)-spanner w.h.p., with [O(f^3 g(2n/f) log n)] edges — for
    [g(n) = n^{1+1/k}] this is [O(f^{2-1/k} n^{1+1/k} log n)], a factor
    [~f] denser than the greedy bound, which is exactly the gap experiment
    E8 measures.

    Two notes recorded for fidelity:
    - The paper's prose says vertices participate "with probability
      [1/f]"; we use [1/(f+1)], following the original DK11 analysis —
      with [p = 1/f] the reduction is vacuous at [f = 1] (every vertex
      would participate in every iteration, so no fault set is ever
      avoided).
    - [c] is the w.h.p. constant the asymptotic notation hides.  The
      iteration count is [ceil (c * e * (f+1)^3 * ln n)]: an iteration
      hits a fixed (edge, fault-set) pair with probability at least
      [1/(e (f+1)^2)], so the [e (f+1)^3] factor makes [c = 1] already
      give a per-pair failure probability below [n^{-(f+1)}]-ish on the
      instance sizes the experiments sweep; the experiments measure the
      residual failure rate over seeds explicitly.

    For edge faults, each {e edge} participates with probability
    [1/(f+1)] and [A] runs on the surviving spanning subgraph; this is the
    natural EFT analogue and is verified empirically by the test suite. *)

type algo = Rng.t -> Graph.t -> Selection.t
(** the plugged-in non-fault-tolerant spanner algorithm *)

(** [iterations ?c ~f ~n ()] is the iteration count
    [max 1 (ceil (c * e * (f+1)^3 * ln n))] (1 when [f = 0]). *)
val iterations : ?c:float -> f:int -> n:int -> unit -> int

(** [build rng ~mode ~k ~f ?c ?algo ?pool g] runs the reduction.  [algo]
    defaults to Baswana-Sen with parameter [k]; [f = 0] degenerates to a
    single run of [algo] on [g].

    With a [pool], the [J] independent iterations fan out over the
    workers as [parallel_for] items: each iteration samples from its own
    stream, pre-split from [rng] before the fan-out, and the per-worker
    keep masks are ORed afterwards, so the selection is {e bit-identical
    at every pool size} (including a 1-domain pool).  It is {e not}
    identical to the unpooled path, whose iterations draw from one shared
    stream — both are equally valid samples of the same reduction. *)
val build :
  Rng.t ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  ?c:float ->
  ?algo:algo ->
  ?pool:Exec.Pool.t ->
  Graph.t ->
  Selection.t
