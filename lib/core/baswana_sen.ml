type cluster_state = { center_of : int array; phases : int }

(* Per-vertex grouping of alive incident edges by the neighbor's cluster,
   using stamped scratch arrays so each phase costs O(m) total. *)
type scratch = {
  best_w : float array;  (* per center: lightest edge weight *)
  best_e : int array;  (* per center: lightest edge id *)
  stamp_of : int array;  (* per center: stamp of last refresh *)
  kill : int array;  (* per center: stamp when marked for edge removal *)
  mutable stamp : int;
}

let make_scratch n =
  {
    best_w = Array.make n infinity;
    best_e = Array.make n (-1);
    stamp_of = Array.make n 0;
    kill = Array.make n 0;
    stamp = 0;
  }

let build_with_state rng ~k g =
  if k < 1 then invalid_arg "Baswana_sen.build: k must be >= 1";
  let n = Graph.n g in
  let m = Graph.m g in
  let selected = Array.make m false in
  let alive = Array.make m true in
  let center = Array.init n (fun v -> v) in
  let p = if n <= 1 then 1.0 else float_of_int n ** (-1. /. float_of_int k) in
  let sc = make_scratch n in
  let add_edge id = selected.(id) <- true in
  (* Group the alive incident edges of [v] by old cluster center; returns
     the list of adjacent centers (own cluster excluded: intra-cluster
     edges are killed on sight, their detour being the cluster tree). *)
  let group old v =
    sc.stamp <- sc.stamp + 1;
    let adjacent = ref [] in
    Graph.iter_neighbors g v (fun y id ->
        if alive.(id) then begin
          let oc = old.(y) in
          if oc < 0 then ()
          else if oc = old.(v) && old.(v) >= 0 then alive.(id) <- false
          else begin
            if sc.stamp_of.(oc) <> sc.stamp then begin
              sc.stamp_of.(oc) <- sc.stamp;
              sc.best_w.(oc) <- infinity;
              sc.best_e.(oc) <- -1;
              adjacent := oc :: !adjacent
            end;
            let w = Graph.weight g id in
            if w < sc.best_w.(oc) then begin
              sc.best_w.(oc) <- w;
              sc.best_e.(oc) <- id
            end
          end
        end);
    !adjacent
  in
  (* Kill every alive edge of [v] leading to a cluster marked in
     [sc.kill] at the current stamp. *)
  let apply_kills old v =
    Graph.iter_neighbors g v (fun y id ->
        if alive.(id) then begin
          let oc = old.(y) in
          if oc >= 0 && sc.kill.(oc) = sc.stamp then alive.(id) <- false
        end)
  in
  (* Phase 1: k-1 rounds of cluster sampling. *)
  for _phase = 1 to k - 1 do
    let sampled = Array.make n false in
    let is_center = Array.make n false in
    for v = 0 to n - 1 do
      if center.(v) >= 0 then is_center.(center.(v)) <- true
    done;
    for c = 0 to n - 1 do
      if is_center.(c) then sampled.(c) <- Rng.bernoulli rng ~p
    done;
    let old = Array.copy center in
    for v = 0 to n - 1 do
      if old.(v) >= 0 && not sampled.(old.(v)) then begin
        let adjacent = group old v in
        let sampled_best = ref infinity and sampled_center = ref (-1) in
        List.iter
          (fun c ->
            if sampled.(c) && sc.best_w.(c) < !sampled_best then begin
              sampled_best := sc.best_w.(c);
              sampled_center := c
            end)
          adjacent;
        if !sampled_center < 0 then begin
          (* No sampled neighbor: connect to every adjacent cluster and
             retire from the clustering. *)
          List.iter
            (fun c ->
              add_edge sc.best_e.(c);
              sc.kill.(c) <- sc.stamp)
            adjacent;
          apply_kills old v;
          center.(v) <- -1
        end
        else begin
          (* Hook onto the lightest sampled cluster; also keep the lightest
             edge to every strictly lighter cluster, then drop all edges to
             the covered clusters. *)
          add_edge sc.best_e.(!sampled_center);
          sc.kill.(!sampled_center) <- sc.stamp;
          List.iter
            (fun c ->
              if c <> !sampled_center && sc.best_w.(c) < !sampled_best then begin
                add_edge sc.best_e.(c);
                sc.kill.(c) <- sc.stamp
              end)
            adjacent;
          apply_kills old v;
          center.(v) <- !sampled_center
        end
      end
    done
  done;
  (* Phase 2: lightest edge to every remaining adjacent cluster. *)
  let old = Array.copy center in
  for v = 0 to n - 1 do
    let adjacent = group old v in
    List.iter
      (fun c ->
        add_edge sc.best_e.(c);
        sc.kill.(c) <- sc.stamp)
      adjacent;
    apply_kills old v
  done;
  (Selection.of_mask g selected, { center_of = center; phases = k - 1 })

let build rng ~k g = fst (build_with_state rng ~k g)
