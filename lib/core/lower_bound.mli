(** Extremal lower-bound instances for fault-tolerant spanners.

    BDPW18 prove that [O(f^{1-1/k} n^{1+1/k})] is optimal for vertex
    faults; the hard instances behind such bounds (for [k = 2]) are
    {e blow-ups of high-girth graphs}:

    - start from a bipartite graph [B] with girth [>= 6] and
      [Theta(n_B^{3/2})] edges — the incidence graph of a projective plane
      of order [q] is the classic extremal example (girth exactly 6,
      [(q+1)]-regular, [n_B = 2(q^2+q+1)]);
    - replace every vertex by [c = floor(f/2) + 1] copies and every edge
      by the complete bipartite bundle between the copy sets.

    For any edge [(u_i, v_j)] of the blow-up, faulting the other [c - 1]
    copies of [u] {e and} of [v] — [2(c-1) <= f] faults — kills every
    detour of length [<= 3]: 2-hop detours need a common base neighbor
    (none, [B] is bipartite and simple); 3-hop detours either zigzag
    through another copy of [u] or [v] (faulted) or project to a 3-hop
    [u]-[v] path in [B], which with the edge [(u,v)] would close a
    4-cycle, contradicting girth 6.  Hence an f-VFT 3-spanner must keep
    {e every} edge: [c^2 m_B = Theta(f^{1/2} n^{3/2})] edges with
    [n = c n_B] — the BDPW18 lower-bound shape for [k = 2].  Experiment
    E15 verifies that the paper's greedy indeed keeps everything, i.e. it
    is {e exactly} optimal on the extremal family. *)

(** [projective_plane_incidence ~q] is the point-line incidence graph of
    PG(2, q): vertices [0 .. q^2+q] are points, the rest lines; girth 6,
    [(q+1)]-regular.  Requires [q] prime (the construction works over
    GF(q); prime powers would need field arithmetic). *)
val projective_plane_incidence : q:int -> Graph.t

(** [blow_up g ~copies] replaces every vertex by [copies] twins and every
    edge by the complete [copies x copies] bundle.  Vertex [(v, c)] gets
    index [v * copies + c].  Weights are inherited. *)
val blow_up : Graph.t -> copies:int -> Graph.t

(** [copies_for ~f] is [floor(f/2) + 1] — the largest blow-up factor whose
    every edge is forced with a fault budget of [f]. *)
val copies_for : f:int -> int

(** [hard_instance ~f g] is [blow_up g ~copies:(copies_for ~f)]; with
    [girth g >= 6], every f-VFT 3-spanner of it keeps all its edges. *)
val hard_instance : f:int -> Graph.t -> Graph.t
