let fk k = float_of_int k
let fpow base e = base ** e

let optimal_size ~k ~f ~n =
  let k = fk k and f = fk (max 1 f) and n = fk n in
  fpow f (1. -. (1. /. k)) *. fpow n (1. +. (1. /. k))

let poly_greedy_size ~k ~f ~n = fk k *. optimal_size ~k ~f ~n

let poly_greedy_time ~k ~f ~n ~m =
  let kf = fk k and ff = fk (max 1 f) and nf = fk n and mf = fk m in
  mf *. kf *. fpow ff (2. -. (1. /. kf)) *. fpow nf (1. +. (1. /. kf))

let dk11_size ~k ~f ~n =
  let kf = fk k and ff = fk (max 1 f) and nf = fk n in
  fpow ff (2. -. (1. /. kf)) *. fpow nf (1. +. (1. /. kf)) *. log nf

let local_size ~k ~f ~n = optimal_size ~k ~f ~n *. log (fk n)

let congest_size ~k ~f ~n = fk k *. dk11_size ~k ~f ~n

let congest_rounds ~k ~f ~n =
  let kf = fk k and ff = fk (max 1 f) and nf = fk n in
  (ff *. ff *. (log (max 2. ff) +. log (log (max 3. nf))))
  +. (kf *. kf *. ff *. log nf)

let log_log_slope points =
  let pts =
    List.filter_map
      (fun (x, y) -> if x > 0. && y > 0. then Some (log x, log y) else None)
      points
  in
  let n = float_of_int (List.length pts) in
  if List.length pts < 2 then invalid_arg "Bounds.log_log_slope: need >= 2 points";
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0. pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0. pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0. pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0. pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then
    invalid_arg "Bounds.log_log_slope: x values must differ";
  ((n *. sxy) -. (sx *. sy)) /. denom
