type result = { pruned : Selection.t; removed : int; candidates : int }

(* Exact spanner certificate (Lemma 3): for every source edge {u,v} not
   kept by [mask], no fault set of size <= f pushes the detour distance in
   the masked spanner above (2k-1)·w(u,v); kept edges are their own
   detour (and in EFT mode, faulting a kept edge shifts the obligation to
   the surviving edges of the pair's shortest path, which are each checked
   here themselves).  Exact in both fault modes and for arbitrary weights,
   via the exponential-greedy decision procedure. *)
let still_spanner ~mode ~k ~f g mask =
  let stretch = float_of_int ((2 * k) - 1) in
  let sub = Subgraph.of_edge_subset g mask in
  let h = sub.Subgraph.graph in
  let ok = ref true in
  Graph.iter_edges g (fun e ->
      if !ok && not mask.(e.Graph.id) then
        if
          Exp_greedy.exists_fault_set ~mode h ~u:e.Graph.u ~v:e.Graph.v
            ~budget:(stretch *. e.Graph.w) ~f
        then ok := false);
  !ok

let minimalize ~mode ~k ~f sel =
  let g = sel.Selection.source in
  let mask = Array.copy sel.Selection.selected in
  (* Heaviest first: removing an expensive edge is worth the most, and the
     weighted correctness argument tolerates any removal that keeps the
     hop-based certificate (detours among kept edges are all no heavier
     than the removed edge's weight class on greedy outputs). *)
  let kept =
    Graph.fold_edges g [] (fun acc e -> if mask.(e.Graph.id) then e :: acc else acc)
  in
  let by_weight_desc = List.sort (fun a b -> compare b.Graph.w a.Graph.w) kept in
  let removed = ref 0 and candidates = ref 0 in
  List.iter
    (fun e ->
      incr candidates;
      mask.(e.Graph.id) <- false;
      if still_spanner ~mode ~k ~f g mask then incr removed
      else mask.(e.Graph.id) <- true)
    by_weight_desc;
  { pruned = Selection.of_mask g mask; removed = !removed; candidates = !candidates }
