(** The Thorup-Zwick approximate distance oracle (J. ACM 2005) — the
    flagship application the paper's introduction cites for spanners.

    Preprocesses a weighted graph into a structure of expected size
    [O(k n^{1+1/k})] answering distance queries in [O(k)] time with
    stretch at most [2k - 1]:

    - hierarchy [A_0 ⊇ … ⊇ A_{k-1}] as in {!Thorup_zwick};
    - per vertex: the pivots [p_i(v)] (nearest [A_i] vertex) and the
      bunch [B(v) = ∪_i { w ∈ A_i \ A_{i+1} : d(w,v) < d(A_{i+1}, v) }]
      with exact distances;
    - query(u, v): walk [w = p_i(u)] for growing [i], swapping [u] and
      [v] each step, until [w ∈ B(v)]; answer [d(w,u) + d(w,v)].

    Combined with a fault-tolerant spanner, this is the "routing under
    failures" stack: build the oracle over the FT spanner and the answers
    keep their guarantee relative to the spanner's (faulted) distances —
    see [examples/distance_oracle.ml]. *)

type t

(** [build rng ~k g] preprocesses [g].  Requires [k >= 1]. *)
val build : Rng.t -> k:int -> Graph.t -> t

(** [query t u v] returns an estimate [d] with
    [d_G(u,v) <= d <= (2k-1) * d_G(u,v)] ([infinity] iff disconnected). *)
val query : t -> int -> int -> float

(** [stretch_bound t] is [2k - 1]. *)
val stretch_bound : t -> float

(** [storage t] is the total number of (vertex, distance) entries held in
    bunches and pivot tables — the oracle's size, O(k n^{1+1/k}) expected. *)
val storage : t -> int
