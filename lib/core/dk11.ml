type algo = Rng.t -> Graph.t -> Selection.t

let iterations ?(c = 1.0) ~f ~n () =
  if f <= 0 then 1
  else begin
    (* A fixed pair (edge, fault set) is "hit" by an iteration with
       probability p^2 (1-p)^f >= 1/(e (f+1)^2), so the union bound over
       the O(n^{f+2}) pairs needs J ~ e (f+1)^2 * (f+2) ln n; we expose the
       leading constant as [c] and keep the (f+1)^3 ln n shape. *)
    let ff = float_of_int (f + 1) in
    let j = c *. exp 1.0 *. (ff ** 3.) *. log (float_of_int (max 2 n)) in
    max 1 (int_of_float (ceil j))
  end

(* One reduction iteration: sample the participating subgraph from [rng],
   run [algo] on it, OR the kept edges (as parent ids) into [union]. *)
let iterate rng ~mode ~p ~algo g union =
  let n = Graph.n g in
  let sub =
    match mode with
    | Fault.VFT ->
        let keep = Array.init n (fun _ -> Rng.bernoulli rng ~p) in
        Subgraph.induced_mask g keep
    | Fault.EFT ->
        let keep = Array.init (Graph.m g) (fun _ -> Rng.bernoulli rng ~p) in
        Subgraph.of_edge_subset g keep
  in
  let sel = algo rng sub.Subgraph.graph in
  Array.iteri
    (fun sid chosen ->
      if chosen then union.(sub.Subgraph.to_parent_edge.(sid)) <- true)
    sel.Selection.selected

let build rng ~mode ~k ~f ?(c = 1.0) ?algo ?pool g =
  if k < 1 then invalid_arg "Dk11.build: k must be >= 1";
  if f < 0 then invalid_arg "Dk11.build: f must be >= 0";
  let algo = match algo with Some a -> a | None -> fun rng g -> Baswana_sen.build rng ~k g in
  let n = Graph.n g in
  if f = 0 then algo rng g
  else begin
    let j = iterations ~c ~f ~n () in
    let p = 1. /. float_of_int (f + 1) in
    match pool with
    | None ->
        (* The historical sequential path: every iteration draws from the
           caller's stream in turn. *)
        let union = Array.make (Graph.m g) false in
        for _iter = 1 to j do
          iterate rng ~mode ~p ~algo g union
        done;
        Selection.of_mask g union
    | Some pool ->
        (* Parallel: iterations are independent, so each gets a stream
           pre-split from [rng] (sequentially, before the fan-out) and a
           worker ORs into its own mask.  The union of masks is the same
           edge set whichever worker ran which iteration, so the
           selection is bit-identical at every pool size — though not to
           the unpooled path, whose iterations share one stream. *)
        let streams = Array.init j (fun _ -> Rng.split rng) in
        let masks =
          Array.init (Exec.Pool.size pool) (fun _ ->
              Array.make (Graph.m g) false)
        in
        Exec.parallel_for ~chunk:1 pool ~lo:0 ~hi:j (fun ~worker lo hi ->
            let mask = masks.(worker) in
            for iter = lo to hi - 1 do
              iterate streams.(iter) ~mode ~p ~algo g mask
            done);
        let union = Array.make (Graph.m g) false in
        Array.iter
          (Array.iteri (fun id b -> if b then union.(id) <- true))
          masks;
        Selection.of_mask g union
  end
