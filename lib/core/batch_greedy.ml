type result = { selection : Selection.t; batches : int; max_batch : int }

(* [decide_range] judges edges.(lo..hi-1) against the frozen spanner [h],
   writing verdicts into [verdicts]; [h] is not mutated, so concurrent
   calls on disjoint ranges are race-free. *)
let decide_range ~mode ~t ~f h edges verdicts lo hi =
  let ws = Lbc.Workspace.create () in
  for i = lo to hi - 1 do
    let e = edges.(i) in
    match
      Lbc.decide ~ws ~edge:e.Graph.id ~mode h ~u:e.Graph.u ~v:e.Graph.v ~t ~alpha:f
    with
    | Lbc.Yes _ -> verdicts.(i) <- true
    | Lbc.No _ -> ()
  done

let m_batches = Obs.counter "batch_greedy.batches"
let m_committed = Obs.counter "batch_greedy.edges_committed"

let build_impl ?(order = Poly_greedy.By_weight) ~decide ~mode ~k ~f ~batch g =
  if batch < 1 then invalid_arg "Batch_greedy.build: batch must be >= 1";
  if k < 1 then invalid_arg "Batch_greedy.build: k must be >= 1";
  if f < 0 then invalid_arg "Batch_greedy.build: f must be >= 0";
  Obs.with_span "batch_greedy.build" @@ fun () ->
  let t = (2 * k) - 1 in
  let edges =
    match order with
    | Poly_greedy.By_weight ->
        let a = Graph.edge_array g in
        Array.sort (fun x y -> compare x.Graph.w y.Graph.w) a;
        a
    | Poly_greedy.Input_order -> Graph.edge_array g
    | Poly_greedy.Reverse_weight ->
        let a = Graph.edge_array g in
        Array.sort (fun x y -> compare y.Graph.w x.Graph.w) a;
        a
    | Poly_greedy.Shuffled rng ->
        let a = Graph.edge_array g in
        Rng.shuffle rng a;
        a
    | Poly_greedy.Explicit perm -> Array.map (Graph.edge g) perm
  in
  let m = Array.length edges in
  let h = Graph.create (Graph.n g) in
  let selected = Array.make (Graph.m g) false in
  let verdicts = Array.make (max 1 m) false in
  let batches = ref 0 and max_batch = ref 0 in
  let pos = ref 0 in
  while !pos < m do
    let hi = min m (!pos + batch) in
    incr batches;
    Obs.Counter.incr m_batches;
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_trace.Phase { name = "batch_greedy.batch"; index = !batches });
    if hi - !pos > !max_batch then max_batch := hi - !pos;
    (* Decision phase: every edge of the batch is judged against the same
       frozen H. *)
    decide ~mode ~t ~f h edges verdicts !pos hi;
    (* Commit phase. *)
    let tracing = Obs_trace.enabled () in
    for i = !pos to hi - 1 do
      let e = edges.(i) in
      if tracing then
        Obs_trace.emit
          (Obs_trace.Greedy_edge
             { edge = e.Graph.id; kept = verdicts.(i); weight = e.Graph.w });
      if verdicts.(i) then begin
        ignore (Graph.add_edge h e.Graph.u e.Graph.v ~w:e.Graph.w);
        selected.(e.Graph.id) <- true;
        Obs.Counter.incr m_committed
      end
    done;
    pos := hi
  done;
  { selection = Selection.of_mask g selected; batches = !batches; max_batch = !max_batch }

let build ?order ~mode ~k ~f ~batch g =
  build_impl ?order ~decide:decide_range ~mode ~k ~f ~batch g

let build_parallel ?order ~mode ~k ~f ~batch ~domains g =
  if domains < 1 then invalid_arg "Batch_greedy.build_parallel: domains must be >= 1";
  if domains = 1 then build ?order ~mode ~k ~f ~batch g
  else begin
    let decide ~mode ~t ~f h edges verdicts lo hi =
      let span = hi - lo in
      let workers = min domains (max 1 span) in
      let chunk = (span + workers - 1) / workers in
      let spawn w =
        let wlo = lo + (w * chunk) in
        let whi = min hi (wlo + chunk) in
        Domain.spawn (fun () ->
            if wlo < whi then decide_range ~mode ~t ~f h edges verdicts wlo whi)
      in
      let handles = List.init workers spawn in
      List.iter Domain.join handles
    in
    build_impl ?order ~decide ~mode ~k ~f ~batch g
  end
