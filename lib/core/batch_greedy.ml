type result = { selection : Selection.t; batches : int; max_batch : int }

(* [decide_range ~ws] judges edges.(lo..hi-1) against the frozen spanner
   [h], writing verdicts into [verdicts]; [h] is not mutated, so
   concurrent calls on disjoint ranges are race-free.  The workspace is
   the caller's: sequential builds reuse one across every batch, parallel
   builds pass each worker its pool-owned workspace — either way the
   steady-state decide path allocates nothing. *)
let decide_range ~ws ~mode ~t ~f h edges verdicts lo hi =
  for i = lo to hi - 1 do
    let e = edges.(i) in
    match
      Lbc.decide ~ws ~edge:e.Graph.id ~mode h ~u:e.Graph.u ~v:e.Graph.v ~t ~alpha:f
    with
    | Lbc.Yes _ -> verdicts.(i) <- true
    | Lbc.No _ -> ()
  done

let m_batches = Obs.counter "batch_greedy.batches"
let m_committed = Obs.counter "batch_greedy.edges_committed"

(* Per-pool LBC workspaces, one per worker, keyed by pool id so they
   survive across builds on the same pool (worker indices bind to fixed
   domains for a pool's lifetime, so slot [w] is only ever touched by
   worker [w]).  A pool is expected to outlive many builds; the arrays
   grow to the largest graph seen and are garbage only after the pool
   itself is dropped. *)
let pool_workspaces : (int, Lbc.Workspace.t array) Hashtbl.t = Hashtbl.create 7

let workspaces_for pool =
  let key = Exec.Pool.id pool in
  match Hashtbl.find_opt pool_workspaces key with
  | Some a when Array.length a = Exec.Pool.size pool -> a
  | _ ->
      let a =
        Array.init (Exec.Pool.size pool) (fun _ -> Lbc.Workspace.create ())
      in
      Hashtbl.replace pool_workspaces key a;
      a

let build_impl ?order ~decide ~mode:_ ~k ~f:_ ~batch g =
  if batch < 1 then invalid_arg "Batch_greedy.build: batch must be >= 1";
  if k < 1 then invalid_arg "Batch_greedy.build: k must be >= 1";
  (* Adapter from the bool-verdict range deciders (kept as the unit the
     parallel build fans out over domains) to Engine decisions. *)
  let verdicts = Array.make (max 1 (Graph.m g)) false in
  let decide h edges decisions lo hi =
    Array.fill verdicts lo (hi - lo) false;
    decide h edges verdicts lo hi;
    for i = lo to hi - 1 do
      if verdicts.(i) then decisions.(i) <- Engine.Keep { cut = [] }
    done
  in
  let on_batch idx =
    Obs.Counter.incr m_batches;
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_trace.Phase { name = "batch_greedy.batch"; index = idx })
  in
  let on_add _ _ = Obs.Counter.incr m_committed in
  let res =
    Engine.run ?order ~caller:"Batch_greedy.build" ~span:"batch_greedy.build"
      ~batch ~on_batch ~on_add ~decide g
  in
  {
    selection = res.Engine.selection;
    batches = res.Engine.batches;
    max_batch = res.Engine.max_batch;
  }

let build ?order ?pool ~mode ~k ~f ~batch g =
  if f < 0 then invalid_arg "Batch_greedy.build: f must be >= 0";
  let t = (2 * k) - 1 in
  let decide =
    match pool with
    | None ->
        (* Sequential: one workspace reused across every batch. *)
        let ws = Lbc.Workspace.create () in
        fun h edges verdicts lo hi ->
          decide_range ~ws ~mode ~t ~f h edges verdicts lo hi
    | Some pool ->
        (* Parallel: the decision phase of each batch fans out over the
           pool with dynamic chunking, each worker deciding with its own
           pool-owned workspace.  Verdicts land by index, so the
           selection is bit-identical to the sequential build whatever
           the domain count or steal order. *)
        let workspaces = workspaces_for pool in
        fun h edges verdicts lo hi ->
          Exec.parallel_for pool ~lo ~hi (fun ~worker l r ->
              decide_range ~ws:workspaces.(worker) ~mode ~t ~f h edges
                verdicts l r)
  in
  build_impl ?order ~decide ~mode ~k ~f ~batch g
