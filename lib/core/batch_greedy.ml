type result = { selection : Selection.t; batches : int; max_batch : int }

(* [decide_range] judges edges.(lo..hi-1) against the frozen spanner [h],
   writing verdicts into [verdicts]; [h] is not mutated, so concurrent
   calls on disjoint ranges are race-free.  Each call owns a fresh
   workspace — required when ranges are fanned out over domains. *)
let decide_range ~mode ~t ~f h edges verdicts lo hi =
  let ws = Lbc.Workspace.create () in
  for i = lo to hi - 1 do
    let e = edges.(i) in
    match
      Lbc.decide ~ws ~edge:e.Graph.id ~mode h ~u:e.Graph.u ~v:e.Graph.v ~t ~alpha:f
    with
    | Lbc.Yes _ -> verdicts.(i) <- true
    | Lbc.No _ -> ()
  done

let m_batches = Obs.counter "batch_greedy.batches"
let m_committed = Obs.counter "batch_greedy.edges_committed"

let build_impl ?order ~decide ~mode ~k ~f ~batch g =
  if batch < 1 then invalid_arg "Batch_greedy.build: batch must be >= 1";
  if k < 1 then invalid_arg "Batch_greedy.build: k must be >= 1";
  if f < 0 then invalid_arg "Batch_greedy.build: f must be >= 0";
  let t = (2 * k) - 1 in
  (* Adapter from the bool-verdict range deciders (kept as the unit the
     parallel build fans out over domains) to Engine decisions. *)
  let verdicts = Array.make (max 1 (Graph.m g)) false in
  let decide h edges decisions lo hi =
    Array.fill verdicts lo (hi - lo) false;
    decide ~mode ~t ~f h edges verdicts lo hi;
    for i = lo to hi - 1 do
      if verdicts.(i) then decisions.(i) <- Engine.Keep { cut = [] }
    done
  in
  let on_batch idx =
    Obs.Counter.incr m_batches;
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_trace.Phase { name = "batch_greedy.batch"; index = idx })
  in
  let on_add _ _ = Obs.Counter.incr m_committed in
  let res =
    Engine.run ?order ~caller:"Batch_greedy.build" ~span:"batch_greedy.build"
      ~batch ~on_batch ~on_add ~decide g
  in
  {
    selection = res.Engine.selection;
    batches = res.Engine.batches;
    max_batch = res.Engine.max_batch;
  }

let build ?order ~mode ~k ~f ~batch g =
  build_impl ?order ~decide:decide_range ~mode ~k ~f ~batch g

let build_parallel ?order ~mode ~k ~f ~batch ~domains g =
  if domains < 1 then invalid_arg "Batch_greedy.build_parallel: domains must be >= 1";
  if domains = 1 then build ?order ~mode ~k ~f ~batch g
  else begin
    let decide ~mode ~t ~f h edges verdicts lo hi =
      let span = hi - lo in
      let workers = min domains (max 1 span) in
      let chunk = (span + workers - 1) / workers in
      let spawn w =
        let wlo = lo + (w * chunk) in
        let whi = min hi (wlo + chunk) in
        Domain.spawn (fun () ->
            if wlo < whi then decide_range ~mode ~t ~f h edges verdicts wlo whi)
      in
      let handles = List.init workers spawn in
      List.iter Domain.join handles
    in
    build_impl ?order ~decide ~mode ~k ~f ~batch g
  end
