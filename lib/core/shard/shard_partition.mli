(** Native padded low-diameter decomposition — the shared-memory twin of
    the message-passing {!Decomposition}.

    The paper's Theorem 11 builds an f-FT spanner in the LOCAL model by
    sampling [ell = O(log n)] independent random-shift partitions
    (exponential shifts [delta_u ~ Exp(beta)]; vertex [v] joins the
    cluster of the centre maximizing [delta_u - d(u, v)] over the hop
    metric), so that w.h.p. every edge is {e interior} to some cluster of
    some partition.  {!Decomposition.run} realizes that by flooding
    offers through the simulated {!Net}; this module computes the {e same
    fixed point} directly with a multi-source Dijkstra per partition — no
    network, no rounds, just the clustering — which is what the sharded
    builder ({!Shard_build}) fans out over the {!Exec} pool.

    {b Agreement with the simulation.}  Given the same [rng] seed, [beta]
    and partition count, [run] draws its shifts in exactly
    {!Decomposition.run}'s order and computes the identical assignment:
    each hop subtracts an exact [1.0] from the offer key (float
    subtraction of small integers is exact), and adoption is strict
    improvement in both, so [center_of], [depth_of] and [covered] match
    the simulated run bit for bit on any seeded graph (centre {e ties}
    are measure-zero under continuous shifts; [parent_of] may differ on
    equal-key relays, where both choices are valid shortest-path trees).
    The differential tests in [test/test_shard.ml] pin this down. *)

(** One partition: per-vertex centre, adoption parent ([-1] at centres)
    and hop depth below the centre.  Same shape as
    {!Decomposition.clustering}. *)
type clustering = {
  center_of : int array;
  parent_of : int array;
  depth_of : int array;
}

type t = {
  partitions : clustering array;
  covered : bool array;
      (** per source edge id: interior to some cluster of some partition *)
  beta : float;
  horizon : int;  (** [ceil (max shift)] — the simulated run's round count *)
  max_depth : int;  (** largest cluster radius over all partitions *)
}

(** [run rng ?beta ?partitions g] samples the decomposition.  [beta]
    defaults to 0.25 and must lie in (0,1); [partitions] defaults to
    [ceil (2 log2 n)] — enough for constant per-edge coverage failure
    probability.  Consumes the same [rng] draws as {!Decomposition.run}
    with the same arguments. *)
val run : Rng.t -> ?beta:float -> ?partitions:int -> Graph.t -> t

(** Fraction of edges interior to at least one cluster ([1.0] on an
    edgeless graph). *)
val coverage : t -> float

(** [members c] lists the clusters of one partition as
    [(centre, members)] pairs — centres in increasing order, members in
    increasing order, every vertex in exactly one cluster.  Deterministic,
    unlike {!Decomposition.cluster_members}'s hash order. *)
val members : clustering -> (int * int list) list
