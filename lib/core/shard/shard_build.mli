(** Decomposition-sharded spanner construction on the {!Exec} pool.

    The paper's Theorem 11 pipeline — padded partition, per-cluster
    greedy, union — run natively on shared memory: {!Shard_partition}
    samples [O(log n)] random-shift partitions, every cluster with at
    least two members becomes one work item, and {!Exec.parallel_for}
    hands each item to a pool worker that builds the cluster's induced
    subgraph and runs the pluggable greedy over it with a private
    {!Lbc.Workspace}.  The per-cluster selections are unioned with the
    {e boundary edges} (edges interior to no cluster of any partition;
    w.h.p. a vanishing fraction) force-kept, which makes the result an
    unconditionally valid f-FT (2k-1)-spanner: a surviving covered edge
    has its detour inside the cluster that contains it, and an uncovered
    edge is its own detour.  The price is the paper's O(log n) size
    factor — every partition may keep its own copy of a detour.

    {b Determinism contract.}  The partition is sampled sequentially from
    the caller's [rng]; cluster work items are fixed before the fan-out
    and workers write their selections {e by item index}; the union runs
    in item order on the caller.  The output is therefore bit-identical
    at any pool size ({e and} across the int/int32 storage backends), and
    one seed replays one build.

    Telemetry: [shard.clusters] (work items executed), the count of
    force-kept [shard.boundary_edges] (both gated by the bench regression
    harness), and a [shard.cluster_wall] log-histogram of per-cluster
    build seconds, all inside a [shard_build] span. *)

(** Per-cluster greedy: {!Poly_greedy}'s LBC oracle (the default) or the
    exponential-time optimal-size greedy ({!Exp_greedy} — tiny clusters
    only). *)
type engine = Polynomial | Exponential

type t = {
  selection : Selection.t;
  partition : Shard_partition.t;
  clusters : int;  (** cluster work items executed across all partitions *)
  boundary_edges : int;  (** uncovered edges force-kept into the union *)
}

(** [build ?rng ?engine ?beta ?partitions ?pool ~mode ~k ~f g] builds the
    sharded spanner.  [rng] (default seed [0x5eed]) drives only the
    decomposition; [beta]/[partitions] pass through to
    {!Shard_partition.run}.  [pool = None] runs the same code on a
    private single-domain pool — same output, no parallelism.  Raises
    [Invalid_argument] if [k < 1] or [f < 0]. *)
val build :
  ?rng:Rng.t ->
  ?engine:engine ->
  ?beta:float ->
  ?partitions:int ->
  ?pool:Exec.Pool.t ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  Graph.t ->
  t
