type engine = Polynomial | Exponential

type t = {
  selection : Selection.t;
  partition : Shard_partition.t;
  clusters : int;
  boundary_edges : int;
}

let m_clusters = Obs.counter "shard.clusters"
let m_boundary = Obs.counter "shard.boundary_edges"
let h_cluster_wall = Obs.histogram_log "shard.cluster_wall"

(* One cluster work item: the parent-id vertex set (ascending) and the
   interior edges in parent insertion order, pre-extracted so workers
   never scan the full edge list.  [edges] rows are
   [(parent_u, parent_v, weight, parent_edge_id)]. *)
type task = {
  verts : int array;
  edges : (int * int * float * int) array;
}

(* All cluster work items, partition by partition, clusters in centre
   order — a fixed sequence, so results indexed by task id are
   schedule-independent.  Extraction is one edge scan per partition
   (not per cluster). *)
let tasks_of g part =
  let n = Graph.n g in
  let task_of_center = Array.make n (-1) in
  let all = ref [] in
  Array.iter
    (fun c ->
      Array.fill task_of_center 0 n (-1);
      let groups =
        List.filter
          (fun (_, ms) -> match ms with _ :: _ :: _ -> true | _ -> false)
          (Shard_partition.members c)
      in
      List.iteri (fun i (ctr, _) -> task_of_center.(ctr) <- i) groups;
      let bufs = Array.make (max 1 (List.length groups)) [] in
      Graph.iter_edges g (fun e ->
          let cu = c.Shard_partition.center_of.(e.Graph.u) in
          if cu = c.Shard_partition.center_of.(e.Graph.v) then begin
            let i = task_of_center.(cu) in
            if i >= 0 then
              bufs.(i) <- (e.Graph.u, e.Graph.v, e.Graph.w, e.Graph.id) :: bufs.(i)
          end);
      List.iteri
        (fun i (_, ms) ->
          all :=
            {
              verts = Array.of_list ms;
              edges = Array.of_list (List.rev bufs.(i));
            }
            :: !all)
        groups)
    part.Shard_partition.partitions;
  Array.of_list (List.rev !all)

(* Build one cluster's induced subgraph and run the greedy over it,
   returning the kept parent edge ids (ascending).  [local] is the
   worker's parent-to-local vertex map, restored to -1 before return. *)
let run_cluster ~backend ~engine ~mode ~k ~f ~ws ~local task =
  let t0 = Obs.now_s () in
  Array.iteri (fun i v -> local.(v) <- i) task.verts;
  let sub = Graph.create ~backend (Array.length task.verts) in
  let parent_edge = Array.make (Array.length task.edges) (-1) in
  Array.iter
    (fun (u, v, w, pid) ->
      parent_edge.(Graph.add_edge sub local.(u) local.(v) ~w) <- pid)
    task.edges;
  Array.iter (fun v -> local.(v) <- -1) task.verts;
  let sel =
    match engine with
    | Exponential -> Exp_greedy.build ~mode ~k ~f sub
    | Polynomial ->
        let t = (2 * k) - 1 in
        let decide h edges decisions lo hi =
          for i = lo to hi - 1 do
            let e = edges.(i) in
            match
              Lbc.decide ~ws ~edge:e.Graph.id ~mode h ~u:e.Graph.u ~v:e.Graph.v
                ~t ~alpha:f
            with
            | Lbc.Yes _ -> decisions.(i) <- Engine.Keep { cut = [] }
            | Lbc.No _ -> ()
          done
        in
        (Engine.run ~caller:"Shard_build.build" ~trace:false ~decide sub)
          .Engine.selection
  in
  let kept = ref [] in
  for sid = Graph.m sub - 1 downto 0 do
    if sel.Selection.selected.(sid) then kept := parent_edge.(sid) :: !kept
  done;
  Obs.Histogram.observe h_cluster_wall (Obs.now_s () -. t0);
  !kept

let build ?rng ?(engine = Polynomial) ?beta ?partitions ?pool ~mode ~k ~f g =
  if k < 1 then invalid_arg "Shard_build.build: k must be >= 1";
  if f < 0 then invalid_arg "Shard_build.build: f must be >= 0";
  let rng = match rng with Some r -> r | None -> Rng.create ~seed:0x5eed in
  Obs.with_span "shard_build" @@ fun () ->
  let part = Shard_partition.run rng ?beta ?partitions g in
  let tasks = tasks_of g part in
  let results = Array.make (Array.length tasks) [] in
  let backend = Graph.backend g in
  let run_all pool =
    let scratch =
      Exec.Worker_local.create pool (fun _ ->
          (Lbc.Workspace.create (), Array.make (Graph.n g) (-1)))
    in
    Exec.parallel_for ~chunk:1 pool ~lo:0 ~hi:(Array.length tasks)
      (fun ~worker lo hi ->
        let ws, local = Exec.Worker_local.get scratch ~worker in
        for i = lo to hi - 1 do
          results.(i) <-
            run_cluster ~backend ~engine ~mode ~k ~f ~ws ~local tasks.(i)
        done)
  in
  (match pool with
  | Some pool -> run_all pool
  | None -> Exec.Pool.with_pool ~domains:1 run_all);
  let union = Array.make (Graph.m g) false in
  Array.iter (List.iter (fun id -> union.(id) <- true)) results;
  let boundary = ref 0 in
  Array.iteri
    (fun id covered ->
      if not covered then begin
        union.(id) <- true;
        incr boundary
      end)
    part.Shard_partition.covered;
  Obs.Counter.add m_clusters (Array.length tasks);
  Obs.Counter.add m_boundary !boundary;
  {
    selection = Selection.of_mask g union;
    partition = part;
    clusters = Array.length tasks;
    boundary_edges = !boundary;
  }
