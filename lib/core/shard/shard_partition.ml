type clustering = {
  center_of : int array;
  parent_of : int array;
  depth_of : int array;
}

type t = {
  partitions : clustering array;
  covered : bool array;
  beta : float;
  horizon : int;
  max_depth : int;
}

let coverage t =
  let m = Array.length t.covered in
  if m = 0 then 1.0
  else
    float_of_int (Array.fold_left (fun a c -> if c then a + 1 else a) 0 t.covered)
    /. float_of_int m

let members c =
  let n = Array.length c.center_of in
  let buckets = Array.make n [] in
  for v = n - 1 downto 0 do
    let ctr = c.center_of.(v) in
    buckets.(ctr) <- v :: buckets.(ctr)
  done;
  let acc = ref [] in
  for ctr = n - 1 downto 0 do
    match buckets.(ctr) with [] -> () | ms -> acc := (ctr, ms) :: !acc
  done;
  !acc

let default_partitions n =
  max 1 (int_of_float (ceil (2. *. log (float_of_int (max 2 n)) /. log 2.)))

(* Multi-source Dijkstra over the hop metric with initial costs
   [-delta_v]: vertex [w] settles at cost [-(delta_c - d(c, w))] for the
   centre [c] maximizing [delta_c - d(c, w)].  This is the fixed point
   the flooded offers of [Decomposition.run] converge to — each hop
   subtracts an exact [1.0] from the key, adoption is strict improvement
   in both, and a winning offer always travels fewer than [delta_c <=
   horizon] hops, so the simulation's round cap never truncates it. *)
let assign g delta =
  let n = Graph.n g in
  let cost = Array.make n 0.0 in
  let center_of = Array.init n (fun v -> v) in
  let parent_of = Array.make n (-1) in
  let depth_of = Array.make n 0 in
  let settled = Array.make n false in
  let heap = Pqueue.create ~capacity:(max 1 (2 * n)) in
  for v = 0 to n - 1 do
    cost.(v) <- -.delta.(v);
    Pqueue.push heap cost.(v) v
  done;
  let exhausted = ref false in
  while not !exhausted do
    match Pqueue.pop_min heap with
    | None -> exhausted := true
    | Some (c, v) ->
        if not settled.(v) then begin
          settled.(v) <- true;
          let cand = c +. 1.0 in
          Graph.iter_neighbors g v (fun w _eid ->
              if (not settled.(w)) && cand < cost.(w) then begin
                cost.(w) <- cand;
                center_of.(w) <- center_of.(v);
                parent_of.(w) <- v;
                depth_of.(w) <- depth_of.(v) + 1;
                Pqueue.push heap cand w
              end)
        end
  done;
  { center_of; parent_of; depth_of }

let run rng ?(beta = 0.25) ?partitions g =
  if beta <= 0. || beta >= 1. then
    invalid_arg "Shard_partition.run: beta in (0,1)";
  let n = Graph.n g in
  let ell =
    match partitions with
    | Some p ->
        if p < 1 then invalid_arg "Shard_partition.run: partitions >= 1";
        p
    | None -> default_partitions n
  in
  (* Shifts drawn exactly as Decomposition.run draws them, so one seed
     names one decomposition in both the native and the simulated world. *)
  let delta =
    Array.init ell (fun _ ->
        Array.init n (fun _ -> Rng.exponential rng ~rate:beta))
  in
  let max_delta =
    Array.fold_left (fun acc row -> Array.fold_left max acc row) 0. delta
  in
  let horizon = int_of_float (ceil max_delta) in
  let partitions = Array.init ell (fun p -> assign g delta.(p)) in
  let max_depth =
    Array.fold_left (fun acc c -> Array.fold_left max acc c.depth_of) 0 partitions
  in
  let covered = Array.make (Graph.m g) false in
  Graph.iter_edges g (fun e ->
      let rec scan p =
        p < ell
        && (partitions.(p).center_of.(e.Graph.u)
            = partitions.(p).center_of.(e.Graph.v)
           || scan (p + 1))
      in
      covered.(e.Graph.id) <- scan 0);
  { partitions; covered; beta; horizon; max_depth }
