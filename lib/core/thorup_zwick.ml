type state = { levels : int array; cluster_count : int }

(* Multi-source Dijkstra: distance from the nearest vertex of [sources]. *)
let multi_source_distances g sources =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let settled = Array.make n false in
  let heap = Pqueue.create ~capacity:n in
  List.iter
    (fun s ->
      dist.(s) <- 0.;
      Pqueue.push heap 0. s)
    sources;
  let rec drain () =
    match Pqueue.pop_min heap with
    | None -> ()
    | Some (d, x) ->
        if not settled.(x) then begin
          settled.(x) <- true;
          Graph.iter_neighbors g x (fun y id ->
              let nd = d +. Graph.weight g id in
              if nd < dist.(y) then begin
                dist.(y) <- nd;
                Pqueue.push heap nd y
              end)
        end;
        drain ()
  in
  drain ();
  dist

(* Truncated Dijkstra growing the cluster of [center]: only vertices with
   [d(center, v) < bound.(v)] are entered. *)
let cluster g ~center ~bound =
  let n = Graph.n g in
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let settled = Array.make n false in
  let heap = Pqueue.create ~capacity:16 in
  dist.(center) <- 0.;
  Pqueue.push heap 0. center;
  let members = ref [] in
  let rec drain () =
    match Pqueue.pop_min heap with
    | None -> ()
    | Some (d, x) ->
        if not settled.(x) then begin
          settled.(x) <- true;
          members := (x, d, parent.(x)) :: !members;
          Graph.iter_neighbors g x (fun y id ->
              let nd = d +. Graph.weight g id in
              if nd < dist.(y) && nd < bound.(y) then begin
                dist.(y) <- nd;
                parent.(y) <- id;
                Pqueue.push heap nd y
              end)
        end;
        drain ()
  in
  drain ();
  !members

let sample_hierarchy rng ~k ~n =
  if k < 1 then invalid_arg "Thorup_zwick.sample_hierarchy: k must be >= 1";
  if n < 1 then [||]
  else begin
    let p = if n <= 1 then 1.0 else float_of_int n ** (-1. /. float_of_int k) in
    let draw () =
      let levels = Array.make n 0 in
      for v = 0 to n - 1 do
        let rec climb i =
          if i <= k - 1 && Rng.bernoulli rng ~p then begin
            levels.(v) <- i;
            climb (i + 1)
          end
        in
        climb 1
      done;
      levels
    in
    let populated levels =
      let seen = Array.make k false in
      Array.iter (fun l -> seen.(l) <- true) levels;
      (* level i nonempty iff some vertex has top level >= i *)
      let ok = ref true in
      for i = 1 to k - 1 do
        let nonempty = ref false in
        Array.iter (fun l -> if l >= i then nonempty := true) levels;
        if not !nonempty then ok := false
      done;
      ignore seen;
      !ok
    in
    let rec attempt tries =
      let levels = draw () in
      if populated levels || tries <= 0 then levels else attempt (tries - 1)
    in
    let levels = attempt 50 in
    (* Last resort: promote one vertex to the highest still-empty levels so
       every A_i (i <= k-1) is nonempty; only size, not correctness, is
       affected. *)
    let top = ref 0 in
    Array.iteri (fun v l -> if l > levels.(!top) then top := v) levels;
    if levels.(!top) < k - 1 then levels.(!top) <- k - 1;
    levels
  end

let build_with_state rng ~k g =
  if k < 1 then invalid_arg "Thorup_zwick.build: k must be >= 1";
  let n = Graph.n g in
  let selected = Array.make (Graph.m g) false in
  let levels = sample_hierarchy rng ~k ~n in
  let sources_at level =
    let acc = ref [] in
    for v = 0 to n - 1 do
      if levels.(v) >= level then acc := v :: !acc
    done;
    !acc
  in
  (* delta.(i) = distances to A_i; A_k is empty, so delta.(k) = infinity. *)
  let delta = Array.make (k + 1) [||] in
  for i = 1 to k do
    let sources = if i > k - 1 then [] else sources_at i in
    delta.(i) <-
      (if sources = [] then Array.make n infinity
       else multi_source_distances g sources)
  done;
  let cluster_count = ref 0 in
  for w = 0 to n - 1 do
    let i = levels.(w) in
    let members = cluster g ~center:w ~bound:delta.(i + 1) in
    List.iter
      (fun (_, _, parent_edge) -> if parent_edge >= 0 then selected.(parent_edge) <- true)
      members;
    if List.length members > 1 then incr cluster_count
  done;
  (Selection.of_mask g selected, { levels; cluster_count = !cluster_count })

let build rng ~k g = fst (build_with_state rng ~k g)
