module Workspace = struct
  type t = {
    bfs : Bfs.Workspace.t;
    mutable blocked_v : bool array;
    mutable blocked_e : bool array;
  }

  let create () = { bfs = Bfs.Workspace.create (); blocked_v = [||]; blocked_e = [||] }

  (* Growth must preserve contents: a workspace is shared across calls on
     graphs of varying size, and replacing a mask with a fresh array would
     silently drop any entries a caller pre-blocked before [decide] — the
     masks are only guaranteed clean for indices the previous call dirtied. *)
  let grow a len =
    let bigger = Array.make (max len (2 * Array.length a)) false in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger

  let ensure ws ~n ~m =
    if Array.length ws.blocked_v < n then ws.blocked_v <- grow ws.blocked_v n;
    if Array.length ws.blocked_e < m then ws.blocked_e <- grow ws.blocked_e m
end

type verdict = Yes of { cut : int list } | No of { paths_seen : int }

let pp_verdict ppf = function
  | Yes { cut } -> Format.fprintf ppf "YES(cut size %d)" (List.length cut)
  | No { paths_seen } -> Format.fprintf ppf "NO(%d paths)" paths_seen

let m_calls = Obs.counter "lbc.calls"
let m_yes = Obs.counter "lbc.yes"
let m_no = Obs.counter "lbc.no"
let m_bfs_rounds = Obs.counter "lbc.bfs_rounds"
let h_rounds = Obs.histogram "lbc.rounds_per_call"
let h_cut = Obs.histogram "lbc.cut_size"

let decide ?ws ?(edge = -1) ?(exclude = []) ~mode g ~u ~v ~t ~alpha =
  if u = v then invalid_arg "Lbc.decide: u = v";
  (* One LBC verdict is the centralized algorithms' logical operation:
     the heartbeat stream paces itself on it. *)
  Obs_heartbeat.pulse ();
  if t < 1 then invalid_arg "Lbc.decide: t must be >= 1";
  if alpha < 0 then invalid_arg "Lbc.decide: alpha must be >= 0";
  (* Sampled once: the begin/end pair must agree on whether it exists
     even if tracing is toggled mid-call. *)
  let tracing = Obs_trace.enabled () in
  if tracing then Obs_trace.emit (Obs_trace.Lbc_begin { edge; u; v; t; alpha });
  (* The fallback workspace is created per call: a shared module-level
     scratch would make concurrent workspace-less calls (parallel batch
     decisions, future multi-domain users) corrupt each other's masks. *)
  let ws = match ws with Some ws -> ws | None -> Workspace.create () in
  Workspace.ensure ws ~n:(Graph.n g) ~m:(Graph.m g);
  let blocked_v = ws.Workspace.blocked_v and blocked_e = ws.Workspace.blocked_e in
  (* [dirty] tracks mask entries set during this call so they can be undone
     on exit; masks are false everywhere between calls. *)
  let dirty = ref [] in
  let block_vertex x =
    if not blocked_v.(x) then begin
      blocked_v.(x) <- true;
      dirty := x :: !dirty
    end
  in
  let block_edge id =
    if not blocked_e.(id) then begin
      blocked_e.(id) <- true;
      dirty := id :: !dirty
    end
  in
  (* Excluded edges are blocked outside the dirty list: they never enter a
     YES certificate, and they stay blocked across every round of this
     call.  [excluded] remembers which entries this call actually set so
     nested masks (a caller pre-blocking the same id) survive. *)
  let excluded =
    List.filter
      (fun id ->
        if id >= 0 && id < Graph.m g && not blocked_e.(id) then begin
          blocked_e.(id) <- true;
          true
        end
        else false)
      exclude
  in
  let cleanup () =
    (match mode with
    | Fault.VFT -> List.iter (fun x -> blocked_v.(x) <- false) !dirty
    | Fault.EFT -> List.iter (fun id -> blocked_e.(id) <- false) !dirty);
    List.iter (fun id -> blocked_e.(id) <- false) excluded
  in
  let find_path () =
    match mode with
    | Fault.VFT ->
        (* The edge mask only reaches the search when something is
           excluded; the common path stays mask-free. *)
        if exclude = [] then
          Bfs.hop_bounded_path ~ws:ws.Workspace.bfs ~blocked_vertices:blocked_v
            g ~src:u ~dst:v ~max_hops:t
        else
          Bfs.hop_bounded_path ~ws:ws.Workspace.bfs ~blocked_vertices:blocked_v
            ~blocked_edges:blocked_e g ~src:u ~dst:v ~max_hops:t
    | Fault.EFT ->
        Bfs.hop_bounded_path ~ws:ws.Workspace.bfs ~blocked_edges:blocked_e g
          ~src:u ~dst:v ~max_hops:t
  in
  let bfs_rounds = ref 0 in
  let rec rounds i =
    if i > alpha + 1 then No { paths_seen = alpha + 1 }
    else begin
      incr bfs_rounds;
      match find_path () with
      | None -> Yes { cut = !dirty }
      | Some p ->
          (match mode with
          | Fault.VFT -> List.iter block_vertex (Path.interior p)
          | Fault.EFT -> List.iter block_edge p.Path.edges);
          rounds (i + 1)
    end
  in
  let verdict = rounds 1 in
  if tracing then
    Obs_trace.emit
      (Obs_trace.Lbc_end
         {
           edge;
           yes = (match verdict with Yes _ -> true | No _ -> false);
           bfs_rounds = !bfs_rounds;
           cut_size = (match verdict with Yes _ -> List.length !dirty | No _ -> 0);
         });
  if Obs.enabled () then begin
    Obs.Counter.incr m_calls;
    Obs.Counter.add m_bfs_rounds !bfs_rounds;
    Obs.Histogram.observe_int h_rounds !bfs_rounds;
    match verdict with
    | Yes _ ->
        Obs.Counter.incr m_yes;
        Obs.Histogram.observe_int h_cut (List.length !dirty)
    | No _ -> Obs.Counter.incr m_no
  end;
  cleanup ();
  verdict
