(** The Thorup-Zwick (2k-1)-spanner (J. ACM 2005).

    The construction underlying the {e first} fault-tolerant spanners
    (Chechik-Langberg-Peleg-Roditty 2010 modified it to tolerate faults at
    cost ~k^f; the Dinitz-Krauthgamer reduction then subsumed that, and
    this paper's greedy subsumed DK11).  It is included both as a
    historically-faithful baseline and as an alternative plug-in for the
    DK11 reduction.

    Construction: sample a hierarchy [V = A_0 ⊇ A_1 ⊇ … ⊇ A_{k-1}]
    (each level keeps a vertex with probability [n^{-1/k}]); the cluster
    of a center [w ∈ A_i \ A_{i+1}] is
    [C(w) = { v : d(w,v) < d(A_{i+1}, v) }], and the spanner is the union
    of shortest-path trees of all clusters.  Expected size
    [O(k n^{1+1/k})]; stretch [2k - 1] with certainty. *)

type state = {
  levels : int array;
      (** per vertex: highest hierarchy level it belongs to, in
          [0 .. k-1] *)
  cluster_count : int;  (** number of nonempty clusters *)
}

(** [build rng ~k g] returns the spanner selection.  Requires [k >= 1]. *)
val build : Rng.t -> k:int -> Graph.t -> Selection.t

(** [build_with_state] additionally exposes the sampled hierarchy. *)
val build_with_state : Rng.t -> k:int -> Graph.t -> Selection.t * state

(** {1 Lower-level pieces}

    Shared with the {!Oracle} application (the TZ approximate distance
    oracle is the same hierarchy/cluster computation plus bunches). *)

(** [sample_hierarchy rng ~k ~n] draws per-vertex top levels in
    [0 .. k-1] (level [i] kept with probability [n^{-i/k}]).  Levels
    [1 .. k-1] are re-drawn (and, as a last resort, force-promoted) to be
    nonempty, which the oracle's query walk requires. *)
val sample_hierarchy : Rng.t -> k:int -> n:int -> int array

(** [multi_source_distances g sources] is the distance from each vertex to
    the nearest source ([infinity] if unreachable, or when [sources] is
    empty). *)
val multi_source_distances : Graph.t -> int list -> float array

(** [cluster g ~center ~bound] grows the truncated shortest-path tree of
    [center]: the vertices [v] with [d(center, v) < bound.(v)], as
    [(vertex, distance, parent_edge)] triples ([parent_edge = -1] at the
    center). *)
val cluster : Graph.t -> center:int -> bound:float array -> (int * float * int) list
