(** Closed-form versions of the paper's asymptotic bounds.

    The experiment harness normalizes measured quantities by these
    formulas: if a measured series matches the paper's shape, the
    normalized ratio is flat in the swept parameter.  Constants hidden by
    O-notation are deliberately set to 1 — only shapes are compared. *)

(** [optimal_size ~k ~f ~n] is [f^{1-1/k} * n^{1+1/k}] — the BDPW18/BP19
    optimal fault-tolerant spanner size (and the Althöfer et al. bound
    [n^{1+1/k}] when [f = 1]). *)
val optimal_size : k:int -> f:int -> n:int -> float

(** [poly_greedy_size ~k ~f ~n] is [k * f^{1-1/k} * n^{1+1/k}] — Theorem 8. *)
val poly_greedy_size : k:int -> f:int -> n:int -> float

(** [poly_greedy_time ~k ~f ~n ~m] is [m * k * f^{2-1/k} * n^{1+1/k}] —
    Theorem 9. *)
val poly_greedy_time : k:int -> f:int -> n:int -> m:int -> float

(** [dk11_size ~k ~f ~n] is [f^{2-1/k} * n^{1+1/k} * ln n] — Theorem 13
    with [g(n) = n^{1+1/k}]. *)
val dk11_size : k:int -> f:int -> n:int -> float

(** [local_size ~k ~f ~n] is [f^{1-1/k} * n^{1+1/k} * ln n] — Theorem 12. *)
val local_size : k:int -> f:int -> n:int -> float

(** [congest_size ~k ~f ~n] is [k * f^{2-1/k} * n^{1+1/k} * ln n] —
    Theorem 15. *)
val congest_size : k:int -> f:int -> n:int -> float

(** [congest_rounds ~k ~f ~n] is [f^2 (ln f + ln ln n) + k^2 f ln n] —
    Theorem 15. *)
val congest_rounds : k:int -> f:int -> n:int -> float

(** [log_log_slope points] fits a least-squares line to
    [(log x, log y)] pairs and returns its slope — the measured scaling
    exponent.  Requires at least two distinct x values. *)
val log_log_slope : (float * float) list -> float
