(** Edge selections: the common result type of every spanner construction.

    A spanner is represented as the set of {e source-graph} edge ids it
    keeps.  This makes downstream operations uniform: deleting an edge
    fault set from both the graph and the spanner is a mask union, and the
    spanner-with-faults is traversed by running BFS/Dijkstra on the source
    graph with "not selected or faulted" as the blocked-edge mask. *)

type t = {
  source : Graph.t;
  selected : bool array;  (** indexed by source edge id *)
  size : int;  (** number of selected edges *)
}

(** [of_mask g mask] wraps an explicit mask (copied). *)
val of_mask : Graph.t -> bool array -> t

(** [of_ids g ids] selects the listed edge ids. *)
val of_ids : Graph.t -> int list -> t

(** [full g] selects every edge (the trivial spanner). *)
val full : Graph.t -> t

(** [union a b] selects the union of two selections over the same source
    graph.  Raises [Invalid_argument] if the sources differ physically. *)
val union : t -> t -> t

(** [mem sel id] tests whether edge [id] is selected. *)
val mem : t -> int -> bool

(** [ids sel] lists selected edge ids in increasing order. *)
val ids : t -> int list

(** [weight sel] is the total weight of selected edges. *)
val weight : t -> float

(** [to_subgraph sel] materializes the spanner as its own graph (see
    {!Subgraph.t} for the id maps). *)
val to_subgraph : t -> Subgraph.t

(** [blocked_edges sel extra_faults] renders "kept by the spanner minus the
    faulted edges" as a blocked-edge mask over the source graph: entry [id]
    is [true] iff the edge is {e unavailable} (unselected or faulted). *)
val blocked_edges : t -> int list -> bool array

val pp : Format.formatter -> t -> unit
