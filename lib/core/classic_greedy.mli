(** The classic greedy (2k-1)-spanner of Althöfer et al. (1993).

    Edges are scanned in nondecreasing weight order; an edge is kept iff
    the partial spanner does not already connect its endpoints within
    stretch [2k - 1].  The output has girth exceeding [2k], hence at most
    [O(n^{1+1/k})] edges — the non-fault-tolerant anchor every
    fault-tolerant bound in the paper is measured against (it is also
    exactly Algorithm 1/3 with [f = 0]). *)

(** [build ~k g] returns the greedy (2k-1)-spanner selection.
    Requires [k >= 1]. *)
val build : k:int -> Graph.t -> Selection.t
