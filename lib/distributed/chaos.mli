(** Deterministic, seeded fault injection for the network simulators.

    The paper's object is a structure that {e survives faults}; this module
    brings faults to the execution layer.  A {!plan} describes an
    unreliable network — per-message drop and duplication probabilities,
    bounded reordering (synchronous nets) or delay spikes (asynchronous
    nets), and node crash/recover schedules.  Both {!Net} and {!Async_net}
    accept a started plan and consult it on every send/delivery.

    Every random choice is drawn from a private {!Rng.t} seeded by the
    plan, {e not} from the algorithm's generator, so

    - a chaotic run is replayable bit-for-bit from [(plan, algorithm
      seed)]; and
    - the algorithm's own random draws are untouched — a construction that
      masks the faults (e.g. via {!Reliable}) produces the very same
      spanner selection as the fault-free run.

    Fault events are visible three ways: the process-global [net.drops] /
    [net.dups] / [net.reorders] counters (plus [net.retries] /
    [net.giveups] maintained by {!Reliable}), per-{!state} {!counts}, and
    — while {!Obs_trace.enabled} — one [chaos] trace event per injected
    fault. *)

type plan = {
  drop : float;  (** per-message-copy drop probability, in [[0,1]] *)
  dup : float;  (** probability a message is delivered twice *)
  reorder : int;
      (** max extra rounds a synchronous message may lag (uniform in
          [[0, reorder]]); [0] preserves delivery order *)
  spike : float;
      (** probability an asynchronous delivery suffers a delay spike *)
  spike_factor : float;  (** delay multiplier applied by a spike, [>= 1] *)
  crashes : (int * float * float) list;
      (** [(node, from, until)] — the node is down for [from <= t < until];
          synchronous nets read [t] as the round number *)
  seed : int;  (** seed of the private fault stream *)
}

(** [plan ()] is the fault-free plan; every optional argument overrides
    one field.  Raises [Invalid_argument] on out-of-range values
    (probabilities outside [[0,1]], [reorder < 0], [spike_factor < 1]). *)
val plan :
  ?drop:float ->
  ?dup:float ->
  ?reorder:int ->
  ?spike:float ->
  ?spike_factor:float ->
  ?crashes:(int * float * float) list ->
  ?seed:int ->
  unit ->
  plan

(** [is_silent p] is [true] when [p] injects nothing — no drops, dups,
    reordering, spikes or crashes. *)
val is_silent : plan -> bool

(** {1 CLI spec grammar}

    [KEY=VALUE] pairs separated by commas:
    {v
    drop=P       drop probability            (float in [0,1])
    dup=P        duplication probability     (float in [0,1])
    reorder=R    max reorder lag in rounds   (int >= 0)
    spike=P      delay-spike probability     (float in [0,1])
    spikex=F     spike delay multiplier      (float >= 1, default 5)
    seed=N       fault-stream seed           (int, default 0xC4A05)
    crash=V@T    crash node V at time T      (repeatable)
    recover=V@T  recover node V at time T    (closes V's last crash)
    v}
    Example: [drop=0.2,dup=0.05,reorder=4,seed=7,crash=3@2.5]. *)

(** [parse_spec s] parses the grammar above. *)
val parse_spec : string -> (plan, string) result

(** [pp_plan ppf p] prints [p] back in spec form (fault-free fields are
    omitted; the seed is always shown). *)
val pp_plan : Format.formatter -> plan -> unit

(** {1 Runtime state} *)

type counts = {
  c_drops : int;  (** message copies destroyed (crash-induced included) *)
  c_dups : int;  (** network-generated duplicate copies *)
  c_reorders : int;  (** copies delivered late (lag > 0 or spiked) *)
}

type state

(** [start plan] arms a fresh fault stream: the same plan always yields
    the same schedule, independent of the algorithm's own generator. *)
val start : plan -> state

val plan_of : state -> plan
val counts : state -> counts

(** [crashed st ~node ~time] consults the crash schedule. *)
val crashed : state -> node:int -> time:float -> bool

(** {2 Draws — consumed by the simulators}

    Each draw advances the private stream and bumps the matching counter
    and (while tracing) emits a [chaos] event; [src]/[dst] label the
    affected message and [cid] is its causal id (default [-1] = none),
    so a traced fate joins the message's lifecycle. *)

(** [draw_drop st ~src ~dst] decides whether this copy is destroyed. *)
val draw_drop : ?cid:int -> state -> src:int -> dst:int -> bool

(** [draw_dup st ~src ~dst] decides whether the network duplicates this
    message. *)
val draw_dup : ?cid:int -> state -> src:int -> dst:int -> bool

(** [draw_lag st ~src ~dst] draws a synchronous reorder lag in
    [[0, reorder]] (counted when positive). *)
val draw_lag : ?cid:int -> state -> src:int -> dst:int -> int

(** [draw_spike st ~src ~dst] draws an asynchronous delay multiplier:
    [1.0], or [spike_factor] with probability [spike] (counted). *)
val draw_spike : ?cid:int -> state -> src:int -> dst:int -> float

(** [count_crash_drop st ~src ~dst] records a copy destroyed because an
    endpoint was crashed (no stream consumption). *)
val count_crash_drop : ?cid:int -> state -> src:int -> dst:int -> unit

(** {1 Shared telemetry}

    The retry/give-up series live here (not in {!Reliable}) so every
    layer reports through one family of [net.*] names. *)

val retries_counter : Obs.Counter.t  (** [net.retries] *)

val giveups_counter : Obs.Counter.t  (** [net.giveups] *)
