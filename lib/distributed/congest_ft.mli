(** The CONGEST fault-tolerant spanner of Section 5.2 (Theorem 15):
    Dinitz-Krauthgamer iterations instantiated with distributed
    Baswana-Sen, run in parallel under a per-edge congestion schedule.

    Phase 1: every vertex picks, for each of the [J = ceil(c f^3 ln n)]
    iterations, whether it participates (probability [1/(f+1)]), and ships
    the chosen iteration indices to its neighbors.  A vertex picks
    [O(f^2 log n)] iterations w.h.p. and each index costs [O(log f +
    log log n)] bits, so chunking into [O(log n)]-bit messages takes
    [O(f^2 (log f + log log n))] rounds — computed here from the actual
    sampled sets, not the asymptotic.

    Phase 2: all [J] Baswana-Sen instances run in parallel.  Each instance
    is executed on the simulator with per-round edge loads recorded; the
    parallel composition is then costed by congestion scheduling — BS step
    [r] takes [ceil(max_edge total_bits(r) / capacity)] physical rounds,
    exactly the "O(f log n) time steps per time step" argument in the
    paper's proof.  W.h.p. at most [O(f log n)] instances share an edge,
    giving [O(k^2 f log n)] rounds for this phase.

    The union of all instance spanners is an f-FT (2k-1)-spanner w.h.p.
    with [O(k f^{2-1/k} n^{1+1/k} log n)] edges.  Edge faults use the
    edge-sampled variant of the reduction (see {!Dk11}). *)

type result = {
  selection : Selection.t;
  iterations : int;  (** J *)
  phase1_rounds : int;
  phase2_base_rounds : int;  (** longest single instance, unscheduled *)
  phase2_rounds : int;  (** after congestion scheduling *)
  total_rounds : int;
  max_overlap : int;
      (** most instances simultaneously using one edge direction in one BS
          step — the paper bounds this by [O(f log n)] w.h.p. *)
  word_bits : int;  (** CONGEST capacity used *)
}

(** [build rng ?c ?word_bits ?chaos ~mode ~k ~f g] runs the construction.
    [c] is the DK11 iteration constant (default 1.0).  [chaos] makes
    every instance's network unreliable; the {!Reliable} protocol masks
    the faults, so the selection is unchanged while the recorded loads
    include retransmission traffic. *)
val build :
  Rng.t ->
  ?c:float ->
  ?word_bits:int ->
  ?chaos:Chaos.plan ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  Graph.t ->
  result
