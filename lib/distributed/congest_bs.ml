type msg =
  | Sampled_bit of { center : int; sampled : bool }
  | Announce of { center : int; sampled : bool }
  | Kill

type result = {
  selection : Selection.t;
  rounds : int;
  stats : Net.stats;
  history : (int * int * int) list array;
}

let word_bits_for n =
  let rec bits x acc = if x = 0 then acc else bits (x lsr 1) (acc + 1) in
  bits (max 1 n) 0 + 1

let build rng ?word_bits ?(record_history = false) ?chaos ~k g =
  if k < 1 then invalid_arg "Congest_bs.build: k must be >= 1";
  let n = Graph.n g in
  let w = match word_bits with Some b -> b | None -> 4 * word_bits_for n in
  let bits = function
    | Sampled_bit _ | Announce _ -> 2 * word_bits_for n
    | Kill -> 1
  in
  let net = Reliable.create ~record_history ?chaos ~model:(Net.Congest w) ~bits g in
  let m = Graph.m g in
  let selected = Array.make m false in
  let alive = Array.make m true in
  let center = Array.init n (fun v -> v) in
  let parent = Array.make n (-1) in
  let p = if n <= 1 then 1.0 else float_of_int n ** (-1. /. float_of_int k) in

  (* Per-vertex grouping scratch, stamped by vertex id sweep. *)
  let best_w = Array.make n infinity in
  let best_e = Array.make n (-1) in
  let stamp_of = Array.make n (-1) in
  let stamp = ref 0 in

  (* One announce round: every clustered vertex tells its neighbors its
     cluster and the cluster's sampling status; retired vertices stay
     silent.  Returns per-vertex views (neighbor -> (center, sampled)). *)
  let announce_round sampled_known =
    for v = 0 to n - 1 do
      if center.(v) >= 0 then
        Reliable.broadcast net ~src:v
          (Announce { center = center.(v); sampled = sampled_known.(v) })
    done;
    Reliable.next_round net;
    let view_center = Array.make n (-1) and view_sampled = Array.make n false in
    (* views are indexed by the *sender*: center/sampledness as last
       announced.  Every vertex receives the same announcement from a
       given sender, so a single global array per field is faithful. *)
    for v = 0 to n - 1 do
      List.iter
        (fun (sender, msg) ->
          match msg with
          | Announce { center = c; sampled } ->
              view_center.(sender) <- c;
              view_sampled.(sender) <- sampled
          | Sampled_bit _ | Kill -> ())
        (Reliable.inbox net v)
    done;
    (view_center, view_sampled)
  in

  (* Kill round: notify the other endpoint of each locally killed edge. *)
  let kill_round to_kill =
    List.iter
      (fun (v, y, id) ->
        if alive.(id) then begin
          alive.(id) <- false;
          Reliable.send net ~src:v ~dst:y Kill
        end)
      to_kill;
    Reliable.next_round net
  in

  for phase = 1 to k - 1 do
    (* Centers draw sampling bits and flood them down their trees. *)
    let sampled_center = Array.make n false in
    for c = 0 to n - 1 do
      if center.(c) = c then sampled_center.(c) <- Rng.bernoulli rng ~p
    done;
    let knows = Array.make n false in
    let sampled_known = Array.make n false in
    for v = 0 to n - 1 do
      if center.(v) = v then begin
        knows.(v) <- true;
        sampled_known.(v) <- sampled_center.(v)
      end
    done;
    for _r = 1 to phase do
      for v = 0 to n - 1 do
        if knows.(v) && center.(v) >= 0 then
          Reliable.broadcast net ~src:v
            (Sampled_bit { center = center.(v); sampled = sampled_known.(v) })
      done;
      Reliable.next_round net;
      for v = 0 to n - 1 do
        if (not knows.(v)) && center.(v) >= 0 then
          List.iter
            (fun (sender, msg) ->
              match msg with
              | Sampled_bit { center = c; sampled }
                when sender = parent.(v) && c = center.(v) ->
                  knows.(v) <- true;
                  sampled_known.(v) <- sampled
              | Sampled_bit _ | Announce _ | Kill -> ())
            (Reliable.inbox net v)
      done
    done;

    let view_center, view_sampled = announce_round sampled_known in

    (* Simultaneous local decisions against the announced snapshot. *)
    let old_center = Array.copy center in
    let to_kill = ref [] in
    for v = 0 to n - 1 do
      if old_center.(v) >= 0 && not sampled_known.(v) then begin
        incr stamp;
        let adjacent = ref [] in
        Graph.iter_neighbors g v (fun y id ->
            if alive.(id) then begin
              let oc = view_center.(y) in
              if oc < 0 then ()
              else if oc = old_center.(v) then to_kill := (v, y, id) :: !to_kill
              else begin
                if stamp_of.(oc) <> !stamp then begin
                  stamp_of.(oc) <- !stamp;
                  best_w.(oc) <- infinity;
                  best_e.(oc) <- -1;
                  adjacent := (oc, y) :: !adjacent
                end;
                let wt = Graph.weight g id in
                if wt < best_w.(oc) then begin
                  best_w.(oc) <- wt;
                  best_e.(oc) <- id
                end
              end
            end);
        let sampled_best = ref infinity and sampled_c = ref (-1) in
        List.iter
          (fun (c, y) ->
            if view_sampled.(y) && best_w.(c) < !sampled_best then begin
              sampled_best := best_w.(c);
              sampled_c := c
            end)
          !adjacent;
        let kill_cluster c =
          Graph.iter_neighbors g v (fun y id ->
              if alive.(id) && view_center.(y) = c then to_kill := (v, y, id) :: !to_kill)
        in
        if !sampled_c < 0 then begin
          List.iter
            (fun (c, _) ->
              selected.(best_e.(c)) <- true;
              kill_cluster c)
            !adjacent;
          center.(v) <- -1;
          parent.(v) <- -1
        end
        else begin
          let hook = best_e.(!sampled_c) in
          selected.(hook) <- true;
          List.iter
            (fun (c, _) ->
              if c <> !sampled_c && best_w.(c) < !sampled_best then begin
                selected.(best_e.(c)) <- true;
                kill_cluster c
              end)
            !adjacent;
          kill_cluster !sampled_c;
          center.(v) <- !sampled_c;
          parent.(v) <- Graph.other_endpoint g hook v
        end
      end
    done;
    kill_round !to_kill
  done;

  (* Final phase: lightest edge to every remaining adjacent cluster. *)
  let dummy_sampled = Array.make n false in
  let view_center, _ = announce_round dummy_sampled in
  let to_kill = ref [] in
  for v = 0 to n - 1 do
    incr stamp;
    let adjacent = ref [] in
    Graph.iter_neighbors g v (fun y id ->
        if alive.(id) then begin
          let oc = view_center.(y) in
          if oc < 0 then ()
          else if oc = center.(v) && center.(v) >= 0 then
            to_kill := (v, y, id) :: !to_kill
          else begin
            if stamp_of.(oc) <> !stamp then begin
              stamp_of.(oc) <- !stamp;
              best_w.(oc) <- infinity;
              best_e.(oc) <- -1;
              adjacent := (oc, y) :: !adjacent
            end;
            let wt = Graph.weight g id in
            if wt < best_w.(oc) then begin
              best_w.(oc) <- wt;
              best_e.(oc) <- id
            end
          end
        end);
    List.iter
      (fun (c, _) ->
        selected.(best_e.(c)) <- true;
        Graph.iter_neighbors g v (fun y id ->
            if alive.(id) && view_center.(y) = c then to_kill := (v, y, id) :: !to_kill))
      !adjacent
  done;
  kill_round !to_kill;

  let stats = Reliable.stats net in
  {
    selection = Selection.of_mask g selected;
    rounds = stats.Net.rounds;
    stats;
    history = Reliable.history net;
  }
