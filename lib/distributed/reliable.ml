(* Stop-and-wait-per-packet reliability: every data packet carries a
   per-directed-slot sequence number, the receiver acks every copy it
   sees (acks are lossy too), the sender retransmits on timeout with
   exponential backoff and gives up after [max_attempts].  Slot = directed
   edge = [2 * edge_id + dir], the same indexing as {!Net}'s load
   accounting. *)

type 'msg packet = Data of { seq : int; payload : 'msg } | Ack of { seq : int }

let header_bits = 32 (* sequence number, chaos mode only *)
let ack_bits = 32
let max_attempts = 30

(* Backoff multiplier: linear up to 8x, then flat — enough to ride out a
   long crash window without the physical round count exploding. *)
let backoff attempts = min attempts 8

(* Data-to-first-ack latency, in physical rounds (sync layer) or
   simulated seconds (Async): the service-level series the soak runs
   watch.  Log-linear so p99/p999 stay honest under backoff tails. *)
let h_rtt = Obs.histogram_log "reliable.rtt"

(* Unacked send window (both layers): a level, so a gauge — the soak
   runs watch it to see backlog building under loss. *)
let g_unacked = Obs.gauge "gauge.reliable.unacked"

(* Delivery-protocol events share the chaos lifecycle stream: kinds
   "retransmit"/"ack"/"dup_suppress"/"giveup", keyed by the data
   packet's causal id so the analyzer sees the whole story per
   message. *)
let trace_protocol kind ~cid ~src ~dst =
  if Obs_trace.enabled () then
    Obs_trace.emit (Obs_trace.Chaos_event { kind; cid; src; dst })

type 'msg pending = {
  p_src : int;
  p_dst : int;
  p_slot : int;
  p_seq : int;
  p_cid : int; (* causal id of the first transmission; reused on re-sends *)
  p_payload : 'msg;
  p_sent : int; (* physical round of the first transmission *)
  mutable p_attempts : int; (* transmissions so far *)
  mutable p_due : int; (* physical round of the next retransmission *)
}

type 'msg t = {
  g : Graph.t;
  net : 'msg packet Net.t;
  chaos : Chaos.state option; (* [None] = passthrough *)
  rto0 : int;
  next_seq : int array; (* per directed slot *)
  seen : (int * int, unit) Hashtbl.t; (* delivered (slot, seq) *)
  mutable outstanding : 'msg pending list;
  accum : (int * int * 'msg) list array; (* (sender, seq, payload) per dst *)
  inboxes : (int * 'msg) list array; (* previous logical round *)
  mutable clock : int; (* physical rounds completed *)
  mutable retransmits : int;
  mutable giveups : int;
}

let slot_of g ~src ~dst =
  match Graph.find_edge g src dst with
  | None ->
      invalid_arg
        (Printf.sprintf "Reliable.send: %d and %d are not adjacent" src dst)
  | Some id -> (2 * id) + if src < dst then 0 else 1

let create ?(record_history = false) ?chaos ~model ~bits g =
  let chaos =
    match chaos with
    | Some plan when not (Chaos.is_silent plan) -> Some (Chaos.start plan)
    | _ -> None
  in
  let lossy = chaos <> None in
  let packet_bits = function
    | Data { payload; _ } -> bits payload + if lossy then header_bits else 0
    | Ack _ -> ack_bits
  in
  let n = Graph.n g in
  let rto0 =
    2 + match chaos with Some ch -> (Chaos.plan_of ch).Chaos.reorder | None -> 0
  in
  {
    g;
    net = Net.create ~record_history ?chaos ~model ~bits:packet_bits g;
    chaos;
    rto0;
    next_seq = Array.make (max 1 (2 * Graph.m g)) 0;
    seen = Hashtbl.create (if lossy then 1024 else 1);
    outstanding = [];
    accum = Array.make n [];
    inboxes = Array.make n [];
    clock = 0;
    retransmits = 0;
    giveups = 0;
  }

let graph t = t.g

let send t ~src ~dst msg =
  match t.chaos with
  | None -> Net.send t.net ~src ~dst (Data { seq = 0; payload = msg })
  | Some _ ->
      let slot = slot_of t.g ~src ~dst in
      let seq = t.next_seq.(slot) in
      t.next_seq.(slot) <- seq + 1;
      let cid = Net.transmit t.net ~src ~dst (Data { seq; payload = msg }) in
      t.outstanding <-
        {
          p_src = src;
          p_dst = dst;
          p_slot = slot;
          p_seq = seq;
          p_cid = cid;
          p_payload = msg;
          p_sent = t.clock;
          p_attempts = 1;
          p_due = t.clock + t.rto0;
        }
        :: t.outstanding;
      Obs.Gauge.set g_unacked (List.length t.outstanding)

let broadcast t ~src msg =
  Graph.iter_neighbors t.g src (fun dst _ -> send t ~src ~dst msg)

(* Read one physical round's deliveries: ack every data copy (the ack
   itself may be lost — the sender's timeout covers that), accumulate
   first copies into the logical inbox, and clear acked packets. *)
let harvest t =
  let n = Graph.n t.g in
  for v = 0 to n - 1 do
    List.iter
      (fun (sender, cid, pkt) ->
        match pkt with
        | Ack { seq } ->
            (* [cid] here is the ack packet's own id; the event we emit
               belongs to the data packet, via the pending record *)
            t.outstanding <-
              List.filter
                (fun p ->
                  if p.p_src = v && p.p_dst = sender && p.p_seq = seq then begin
                    Obs.Histogram.observe_int h_rtt (t.clock - p.p_sent);
                    trace_protocol "ack" ~cid:p.p_cid ~src:p.p_src ~dst:p.p_dst;
                    false
                  end
                  else true)
                t.outstanding
        | Data { seq; payload } ->
            Net.send t.net ~src:v ~dst:sender (Ack { seq });
            let slot = slot_of t.g ~src:sender ~dst:v in
            if not (Hashtbl.mem t.seen (slot, seq)) then begin
              Hashtbl.add t.seen (slot, seq) ();
              t.accum.(v) <- (sender, seq, payload) :: t.accum.(v)
            end
            else trace_protocol "dup_suppress" ~cid ~src:sender ~dst:v)
      (Net.inbox_cids t.net v)
  done;
  Obs.Gauge.set g_unacked (List.length t.outstanding)

let step t =
  Net.next_round t.net;
  t.clock <- t.clock + 1;
  harvest t

let retransmit_due t =
  t.outstanding <-
    List.filter
      (fun p ->
        if p.p_due > t.clock then true
        else if p.p_attempts >= max_attempts then begin
          t.giveups <- t.giveups + 1;
          Obs.Counter.incr Chaos.giveups_counter;
          trace_protocol "giveup" ~cid:p.p_cid ~src:p.p_src ~dst:p.p_dst;
          false
        end
        else begin
          (* same causal id: the re-send is another attempt of the same
             application message, not a new lifecycle *)
          ignore
            (Net.transmit t.net
               ?cid:(if p.p_cid >= 0 then Some p.p_cid else None)
               ~src:p.p_src ~dst:p.p_dst
               (Data { seq = p.p_seq; payload = p.p_payload }));
          p.p_attempts <- p.p_attempts + 1;
          p.p_due <- t.clock + (t.rto0 * backoff p.p_attempts);
          t.retransmits <- t.retransmits + 1;
          Obs.Counter.incr Chaos.retries_counter;
          trace_protocol "retransmit" ~cid:p.p_cid ~src:p.p_src ~dst:p.p_dst;
          true
        end)
      t.outstanding;
  Obs.Gauge.set g_unacked (List.length t.outstanding)

let next_round t =
  match t.chaos with
  | None -> Net.next_round t.net
  | Some _ ->
      step t;
      while t.outstanding <> [] do
        retransmit_due t;
        if t.outstanding <> [] then step t
      done;
      let n = Graph.n t.g in
      for v = 0 to n - 1 do
        (* canonical order: by sender, then send order — independent of
           which physical round each copy happened to arrive in *)
        let sorted =
          List.sort
            (fun (s1, q1, _) (s2, q2, _) -> compare (s1, q1) (s2, q2))
            t.accum.(v)
        in
        t.inboxes.(v) <- List.map (fun (s, _, m) -> (s, m)) sorted;
        t.accum.(v) <- []
      done

let inbox t v =
  match t.chaos with
  | None ->
      List.map
        (fun (s, pkt) ->
          match pkt with
          | Data { payload; _ } -> (s, payload)
          | Ack _ -> assert false)
        (Net.inbox t.net v)
  | Some _ -> t.inboxes.(v)

let charge_rounds t k = Net.charge_rounds t.net k
let stats t = Net.stats t.net
let history t = Net.history t.net
let retransmits t = t.retransmits
let giveups t = t.giveups
let chaos_counts t = Option.map Chaos.counts t.chaos

(* ------------------------- asynchronous wrapper ---------------------- *)

module Async = struct
  type t = {
    g : Graph.t;
    anet : Async_net.t;
    chaos : Chaos.state option;
    rto0 : float;
    next_seq : int array;
    seen : (int * int, unit) Hashtbl.t; (* delivered (slot, seq) *)
    acked : (int * int, unit) Hashtbl.t;
    mutable retransmits : int;
    mutable giveups : int;
  }

  let create rng ?min_delay ?max_delay ?chaos g =
    let chaos =
      match chaos with
      | Some plan when not (Chaos.is_silent plan) -> Some (Chaos.start plan)
      | _ -> None
    in
    let anet = Async_net.create rng ?min_delay ?max_delay ?chaos g in
    {
      g;
      anet;
      chaos;
      (* a round trip is at most [2 * max_delay]; leave margin for spikes *)
      rto0 = 3. *. Async_net.max_delay anet;
      next_seq = Array.make (max 1 (2 * Graph.m g)) 0;
      seen = Hashtbl.create (if chaos <> None then 1024 else 1);
      acked = Hashtbl.create (if chaos <> None then 1024 else 1);
      retransmits = 0;
      giveups = 0;
    }

  let net t = t.anet

  let send t ~src ~dst handler =
    match t.chaos with
    | None -> Async_net.send t.anet ~src ~dst handler
    | Some _ ->
        let slot = slot_of t.g ~src ~dst in
        let seq = t.next_seq.(slot) in
        t.next_seq.(slot) <- seq + 1;
        let key = (slot, seq) in
        let t0 = Async_net.now t.anet in
        (* the first attempt's causal id, shared by every re-send *)
        let cid = ref (-1) in
        let deliver () =
          if not (Hashtbl.mem t.seen key) then begin
            Hashtbl.add t.seen key ();
            handler ()
          end
          else trace_protocol "dup_suppress" ~cid:!cid ~src ~dst;
          (* ack every copy: an earlier ack may have been dropped *)
          Async_net.send t.anet ~src:dst ~dst:src (fun () ->
              if not (Hashtbl.mem t.acked key) then begin
                Hashtbl.add t.acked key ();
                Obs.Gauge.add g_unacked (-1);
                Obs.Histogram.observe h_rtt (Async_net.now t.anet -. t0);
                trace_protocol "ack" ~cid:!cid ~src ~dst
              end)
        in
        let rec attempt n =
          let c =
            Async_net.transmit t.anet
              ?cid:(if !cid >= 0 then Some !cid else None)
              ~src ~dst deliver
          in
          if !cid < 0 then cid := c;
          let rto = t.rto0 *. float_of_int (backoff n) in
          Async_net.at t.anet ~time:(Async_net.now t.anet +. rto) (fun () ->
              if not (Hashtbl.mem t.acked key) then
                if n >= max_attempts then begin
                  t.giveups <- t.giveups + 1;
                  Obs.Counter.incr Chaos.giveups_counter;
                  trace_protocol "giveup" ~cid:!cid ~src ~dst;
                  (* close the window: a late ack must not double-credit
                     the gauge or record a bogus RTT *)
                  Hashtbl.add t.acked key ();
                  Obs.Gauge.add g_unacked (-1)
                end
                else begin
                  t.retransmits <- t.retransmits + 1;
                  Obs.Counter.incr Chaos.retries_counter;
                  trace_protocol "retransmit" ~cid:!cid ~src ~dst;
                  attempt (n + 1)
                end)
        in
        Obs.Gauge.add g_unacked 1;
        attempt 1

  let retransmits t = t.retransmits
  let giveups t = t.giveups
  let chaos_counts t = Option.map Chaos.counts t.chaos
end
