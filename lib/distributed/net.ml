type model = Local | Congest of int

(* Simulator-wide telemetry mirroring the per-network [stats] record, so
   the obs layer sees distributed work through the same pipeline as the
   centralized algorithms. *)
let m_rounds = Obs.counter "net.rounds"
let m_messages = Obs.counter "net.messages"
let m_bits = Obs.counter "net.bits"
let m_violations = Obs.counter "net.congest_violations"
let h_msg_bits = Obs.histogram "net.message_bits"

(* Congestion analytics: physical per-(edge, direction, round) load —
   duplicate copies included, unlike the offered-load stats — plus the
   spanner-vs-rest attribution split armed by [set_skeleton]. *)
let h_edge_round_load = Obs.histogram_log "net.edge_round_load"
let m_bits_spanner = Obs.counter "net.bits.spanner"
let m_bits_other = Obs.counter "net.bits.other"

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  max_edge_round_bits : int;
  congest_violations : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "rounds=%d messages=%d bits=%d max_msg=%db max_edge_load=%db violations=%d"
    s.rounds s.messages s.total_bits s.max_message_bits s.max_edge_round_bits
    s.congest_violations

type hot_edge = {
  he_edge : int;
  he_dir : int;
  he_bits : int;  (* cumulative physical bits over the run *)
  he_rounds : int;  (* rounds this directed slot carried traffic *)
}

let pp_hot_edge ppf h =
  Format.fprintf ppf "edge=%d dir=%d bits=%d rounds=%d" h.he_edge h.he_dir
    h.he_bits h.he_rounds

type 'msg t = {
  g : Graph.t;
  model : model;
  bits : 'msg -> int;
  record_history : bool;
  chaos : Chaos.state option;
  (* copies lagging behind their send round (chaos reordering):
     (rounds still to wait, src, dst, cid, msg), in stable order *)
  mutable lagging : (int * int * int * int * 'msg) list;
  mutable staged : (int * int * 'msg) list array;  (* (src, cid, msg) per dst *)
  mutable delivered : (int * int * 'msg) list array;
  mutable round : int;
  mutable messages : int;
  mutable total_bits : int;
  mutable max_message_bits : int;
  mutable max_edge_round_bits : int;
  mutable congest_violations : int;
  edge_round_bits : int array;  (* 2m slots: per edge per direction *)
  mutable touched : int list;  (* slots dirtied this round *)
  (* congestion accumulator over the whole run, per directed slot *)
  slot_bits : int array;  (* cumulative physical bits *)
  slot_rounds : int array;  (* rounds the slot carried traffic *)
  mutable skeleton : bool array option;  (* per edge id: in the spanner? *)
  mutable past_rounds : (int * int * int) list list;  (* reverse order *)
  (* totals at the previous [next_round], so the trace event carries this
     round's traffic rather than the running sum *)
  mutable msg_mark : int;
  mutable bits_mark : int;
}

let create ?(record_history = false) ?chaos ~model ~bits g =
  let n = Graph.n g in
  {
    g;
    model;
    bits;
    record_history;
    chaos;
    lagging = [];
    staged = Array.make n [];
    delivered = Array.make n [];
    round = 0;
    messages = 0;
    total_bits = 0;
    max_message_bits = 0;
    max_edge_round_bits = 0;
    congest_violations = 0;
    edge_round_bits = Array.make (max 1 (2 * Graph.m g)) 0;
    touched = [];
    slot_bits = Array.make (max 1 (2 * Graph.m g)) 0;
    slot_rounds = Array.make (max 1 (2 * Graph.m g)) 0;
    skeleton = None;
    past_rounds = [];
    msg_mark = 0;
    bits_mark = 0;
  }

let graph net = net.g

let set_skeleton net mask =
  if Array.length mask <> Graph.m net.g then
    invalid_arg
      (Printf.sprintf "Net.set_skeleton: mask has %d slots for %d edges"
         (Array.length mask) (Graph.m net.g));
  net.skeleton <- Some mask

let slot net ~src ~dst =
  match Graph.find_edge net.g src dst with
  | None ->
      invalid_arg
        (Printf.sprintf "Net.send: %d and %d are not adjacent" src dst)
  | Some id ->
      let dir = if src < dst then 0 else 1 in
      ((2 * id) + dir, id, dir)

(* One physical copy crossed the wire on slot [s]: the per-round load,
   the run-long congestion accumulator and the skeleton attribution all
   measure this — so duplicated copies count twice and a crashed
   sender's message not at all, unlike the offered-load stats. *)
let charge_wire net s b =
  if net.edge_round_bits.(s) = 0 then net.touched <- s :: net.touched;
  net.edge_round_bits.(s) <- net.edge_round_bits.(s) + b;
  if net.edge_round_bits.(s) > net.max_edge_round_bits then
    net.max_edge_round_bits <- net.edge_round_bits.(s);
  net.slot_bits.(s) <- net.slot_bits.(s) + b;
  match net.skeleton with
  | None -> ()
  | Some mask ->
      Obs.Counter.add (if mask.(s / 2) then m_bits_spanner else m_bits_other) b

let transmit net ?cid ~src ~dst msg =
  let s, _, _ = slot net ~src ~dst in
  let b = net.bits msg in
  net.messages <- net.messages + 1;
  net.total_bits <- net.total_bits + b;
  if b > net.max_message_bits then net.max_message_bits <- b;
  Obs.Counter.incr m_messages;
  Obs.Counter.add m_bits b;
  Obs.Histogram.observe_int h_msg_bits b;
  (match net.model with
  | Local -> ()
  | Congest cap ->
      if b > cap then begin
        net.congest_violations <- net.congest_violations + 1;
        Obs.Counter.incr m_violations
      end);
  let tracing = Obs_trace.enabled () in
  let cid =
    match cid with
    | Some c -> c
    | None -> if tracing then Obs_trace.mint_cid () else -1
  in
  if tracing then
    Obs_trace.emit
      (Obs_trace.Msg_send
         { cid; src; dst; at = float_of_int net.round; bits = b });
  (* Fault injection sits between accounting (the offered load above is
     what the algorithm sent) and delivery: each copy is independently
     dropped, duplicated, or delayed by a bounded number of rounds. *)
  (match net.chaos with
  | None ->
      charge_wire net s b;
      net.staged.(dst) <- (src, cid, msg) :: net.staged.(dst)
  | Some ch ->
      if Chaos.crashed ch ~node:src ~time:(float_of_int net.round) then
        (* never made it onto the wire: offered load only *)
        Chaos.count_crash_drop ~cid ch ~src ~dst
      else begin
        let stage_copy () =
          charge_wire net s b;
          if not (Chaos.draw_drop ~cid ch ~src ~dst) then begin
            match Chaos.draw_lag ~cid ch ~src ~dst with
            | 0 -> net.staged.(dst) <- (src, cid, msg) :: net.staged.(dst)
            | lag ->
                (* countdown counts round transitions: on-time delivery
                   consumes one, the lag adds [lag] more *)
                net.lagging <- (lag + 1, src, dst, cid, msg) :: net.lagging
          end
        in
        stage_copy ();
        if Chaos.draw_dup ~cid ch ~src ~dst then stage_copy ()
      end);
  cid

let send net ~src ~dst msg = ignore (transmit net ~src ~dst msg)

let broadcast net ~src msg =
  Graph.iter_neighbors net.g src (fun dst _ -> send net ~src ~dst msg)

let next_round net =
  let tmp = net.delivered in
  net.delivered <- net.staged;
  Array.fill tmp 0 (Array.length tmp) [];
  net.staged <- tmp;
  (match net.chaos with
  | None -> ()
  | Some ch ->
      let now = float_of_int (net.round + 1) in
      (* release lagging copies whose delay expired; they join this
         round's deliveries behind the on-time ones *)
      let still = ref [] in
      List.iter
        (fun (countdown, src, dst, cid, msg) ->
          if countdown <= 1 then
            net.delivered.(dst) <- (src, cid, msg) :: net.delivered.(dst)
          else still := (countdown - 1, src, dst, cid, msg) :: !still)
        (List.rev net.lagging);
      net.lagging <- List.rev !still;
      (* a crashed destination loses everything addressed to it *)
      Array.iteri
        (fun dst inbox ->
          if inbox <> [] && Chaos.crashed ch ~node:dst ~time:now then begin
            List.iter
              (fun (src, cid, _) -> Chaos.count_crash_drop ~cid ch ~src ~dst)
              inbox;
            net.delivered.(dst) <- []
          end)
        net.delivered);
  if Obs_trace.enabled () then begin
    let at = float_of_int (net.round + 1) in
    Array.iteri
      (fun dst inbox ->
        List.iter
          (fun (src, cid, _) ->
            Obs_trace.emit (Obs_trace.Msg_deliver { cid; src; dst; at }))
          inbox)
      net.delivered
  end;
  if net.record_history then begin
    let loads =
      List.map
        (fun s -> (s / 2, s mod 2, net.edge_round_bits.(s)))
        net.touched
    in
    net.past_rounds <- loads :: net.past_rounds
  end;
  List.iter
    (fun s ->
      net.slot_rounds.(s) <- net.slot_rounds.(s) + 1;
      Obs.Histogram.observe_int h_edge_round_load net.edge_round_bits.(s);
      net.edge_round_bits.(s) <- 0)
    net.touched;
  net.touched <- [];
  net.round <- net.round + 1;
  Obs.Counter.incr m_rounds;
  let round_msgs = net.messages - net.msg_mark in
  let round_bits = net.total_bits - net.bits_mark in
  net.msg_mark <- net.messages;
  net.bits_mark <- net.total_bits;
  if Obs_trace.enabled () then
    Obs_trace.emit
      (Obs_trace.Congest_round
         { round = net.round; messages = round_msgs; bits = round_bits });
  (* one simulator round = one heartbeat operation *)
  Obs_heartbeat.pulse ()

let inbox net v = List.map (fun (src, _, msg) -> (src, msg)) net.delivered.(v)

let inbox_cids net v =
  List.map (fun (src, cid, msg) -> (src, cid, msg)) net.delivered.(v)

(* Top-K busiest directed slots over the whole run, by cumulative
   physical bits (ties: smaller slot first — deterministic). *)
let hot_edges ?(top = 10) net =
  if top < 0 then invalid_arg "Net.hot_edges: top must be >= 0";
  let loaded = ref [] in
  Array.iteri
    (fun s b -> if b > 0 then loaded := (s, b) :: !loaded)
    net.slot_bits;
  let sorted =
    List.sort
      (fun (s1, b1) (s2, b2) ->
        if b1 <> b2 then compare b2 b1 else compare s1 s2)
      !loaded
  in
  List.filteri (fun i _ -> i < top) sorted
  |> List.map (fun (s, b) ->
         {
           he_edge = s / 2;
           he_dir = s mod 2;
           he_bits = b;
           he_rounds = net.slot_rounds.(s);
         })

let charge_rounds net k =
  if k < 0 then invalid_arg "Net.charge_rounds: negative";
  if net.record_history then
    for _ = 1 to k do
      net.past_rounds <- [] :: net.past_rounds
    done;
  net.round <- net.round + k;
  Obs.Counter.add m_rounds k

let stats net =
  {
    rounds = net.round;
    messages = net.messages;
    total_bits = net.total_bits;
    max_message_bits = net.max_message_bits;
    max_edge_round_bits = net.max_edge_round_bits;
    congest_violations = net.congest_violations;
  }

let history net = Array.of_list (List.rev net.past_rounds)
