type clustering = {
  center_of : int array;
  parent_of : int array;
  depth_of : int array;
}

type t = {
  partitions : clustering array;
  covered : bool array;
  rounds : int;
  max_depth : int;
  stats : Net.stats;
}

let coverage t =
  let m = Array.length t.covered in
  if m = 0 then 1.0
  else
    float_of_int (Array.fold_left (fun a c -> if c then a + 1 else a) 0 t.covered)
    /. float_of_int m

let cluster_members c =
  let tbl = Hashtbl.create 16 in
  Array.iteri
    (fun v ctr ->
      let cur = try Hashtbl.find tbl ctr with Not_found -> [] in
      Hashtbl.replace tbl ctr (v :: cur))
    c.center_of;
  Hashtbl.fold (fun ctr members acc -> (ctr, members) :: acc) tbl []

(* One message per round: for each partition that improved, the sender's
   current best offer (center, key).  Keys are [delta_center - hops]. *)
type offer = { partition : int; center : int; key : float }

let offer_bits _ = 3 * 64

let run rng ?(beta = 0.25) ?partitions g =
  if beta <= 0. || beta >= 1. then invalid_arg "Decomposition.run: beta in (0,1)";
  let n = Graph.n g in
  let ell =
    match partitions with
    | Some p ->
        if p < 1 then invalid_arg "Decomposition.run: partitions >= 1";
        p
    | None -> max 1 (int_of_float (ceil (2. *. log (float_of_int (max 2 n)) /. log 2.)))
  in
  let net = Net.create ~model:Net.Local ~bits:offer_bits g in
  (* Shifts: delta.(p).(v). *)
  let delta = Array.init ell (fun _ -> Array.init n (fun _ -> Rng.exponential rng ~rate:beta)) in
  let max_delta =
    Array.fold_left (fun acc row -> Array.fold_left max acc row) 0. delta
  in
  let horizon = int_of_float (ceil max_delta) in
  (* Per-partition per-vertex best offer state. *)
  let best_center = Array.init ell (fun _p -> Array.init n (fun v -> v)) in
  let best_key = Array.init ell (fun p -> Array.init n (fun v -> delta.(p).(v))) in
  let parent = Array.init ell (fun _ -> Array.make n (-1)) in
  let depth = Array.init ell (fun _ -> Array.make n 0) in
  (* A vertex re-broadcasts an offer only when it improved in the previous
     round; initially everything is fresh. *)
  let fresh = Array.init ell (fun _ -> Array.make n true) in
  for _round = 1 to horizon do
    for p = 0 to ell - 1 do
      for v = 0 to n - 1 do
        if fresh.(p).(v) then
          Net.broadcast net ~src:v
            { partition = p; center = best_center.(p).(v); key = best_key.(p).(v) }
      done
    done;
    Array.iter (fun row -> Array.fill row 0 n false) fresh;
    Net.next_round net;
    for v = 0 to n - 1 do
      List.iter
        (fun (sender, o) ->
          let cand = o.key -. 1.0 in
          (* Strictly positive keys only: a vertex always beats a
             non-positive offer with its own shift. *)
          if cand > best_key.(o.partition).(v) then begin
            best_key.(o.partition).(v) <- cand;
            best_center.(o.partition).(v) <- o.center;
            parent.(o.partition).(v) <- sender;
            depth.(o.partition).(v) <- 0;  (* fixed after convergence *)
            fresh.(o.partition).(v) <- true
          end)
        (Net.inbox net v)
    done
  done;
  (* Depths from parent pointers (simulation-side bookkeeping only). *)
  let max_depth = ref 0 in
  for p = 0 to ell - 1 do
    let rec depth_of v =
      if parent.(p).(v) < 0 then 0
      else if depth.(p).(v) > 0 then depth.(p).(v)
      else begin
        let d = 1 + depth_of parent.(p).(v) in
        depth.(p).(v) <- d;
        d
      end
    in
    for v = 0 to n - 1 do
      let d = depth_of v in
      if d > !max_depth then max_depth := d
    done
  done;
  let covered = Array.make (Graph.m g) false in
  Graph.iter_edges g (fun e ->
      let rec scan p =
        p < ell
        && (best_center.(p).(e.Graph.u) = best_center.(p).(e.Graph.v) || scan (p + 1))
      in
      covered.(e.Graph.id) <- scan 0);
  let partitions =
    Array.init ell (fun p ->
        { center_of = best_center.(p); parent_of = parent.(p); depth_of = depth.(p) })
  in
  if Obs_trace.enabled () then
    Array.iteri
      (fun p c ->
        let centers = Hashtbl.create 16 in
        Array.iter (fun ctr -> Hashtbl.replace centers ctr ()) c.center_of;
        Obs_trace.emit
          (Obs_trace.Cluster_stats
             {
               partition = p;
               clusters = Hashtbl.length centers;
               max_depth = Array.fold_left max 0 c.depth_of;
             }))
      partitions;
  {
    partitions;
    covered;
    rounds = horizon;
    max_depth = !max_depth;
    stats = Net.stats net;
  }
