type engine = Exponential | Polynomial

type result = {
  selection : Selection.t;
  decomposition : Decomposition.t;
  announce_rounds : int;
  gather_rounds : int;
  scatter_rounds : int;
  total_rounds : int;
  stats : Net.stats;
}

(* Gather/scatter payload: per partition, a bag of parent-graph edge ids. *)
type payload = { partition : int; edge_ids : int list }

let payload_bits p = 64 * (2 + List.length p.edge_ids)

let build rng ?(engine = Polynomial) ?beta ?partitions ?chaos ~mode ~k ~f g =
  Obs.with_span "local_spanner.build" @@ fun () ->
  let decomposition = Decomposition.run rng ?beta ?partitions g in
  let parts = decomposition.Decomposition.partitions in
  let ell = Array.length parts in
  let n = Graph.n g in
  let depth = decomposition.Decomposition.max_depth in
  let net = Reliable.create ?chaos ~model:Net.Local ~bits:payload_bits g in

  (* Round 0: neighbors exchange cluster ids (all partitions at once; the
     vector fits in one LOCAL message).  We charge one round; the cluster
     comparison below then uses global knowledge, which is exactly what the
     exchanged vectors provide. *)
  for v = 0 to n - 1 do
    Reliable.broadcast net ~src:v { partition = -1; edge_ids = [] }
  done;
  Reliable.next_round net;

  (* Convergecast: each vertex starts with its same-cluster incident edges
     (deduplicated by the smaller endpoint) and pushes accumulated ids to
     its parent, deepest layer first. *)
  let gathered = Array.init ell (fun _ -> Array.make n []) in
  for p = 0 to ell - 1 do
    let c = parts.(p) in
    Graph.iter_edges g (fun e ->
        if c.Decomposition.center_of.(e.Graph.u) = c.Decomposition.center_of.(e.Graph.v)
        then gathered.(p).(e.Graph.u) <- e.Graph.id :: gathered.(p).(e.Graph.u))
  done;
  for step = depth downto 1 do
    for p = 0 to ell - 1 do
      let c = parts.(p) in
      for v = 0 to n - 1 do
        if c.Decomposition.depth_of.(v) = step then begin
          let parent = c.Decomposition.parent_of.(v) in
          if parent >= 0 && gathered.(p).(v) <> [] then begin
            Reliable.send net ~src:v ~dst:parent
              { partition = p; edge_ids = gathered.(p).(v) };
            gathered.(p).(v) <- []
          end
        end
      done
    done;
    Reliable.next_round net;
    for v = 0 to n - 1 do
      List.iter
        (fun (_, pay) ->
          if pay.partition >= 0 then
            gathered.(pay.partition).(v) <- pay.edge_ids @ gathered.(pay.partition).(v))
        (Reliable.inbox net v)
    done
  done;

  (* Cluster centers run the centralized greedy on their gathered induced
     subgraph and the selections are unioned. *)
  let union = Array.make (Graph.m g) false in
  let per_cluster_selection = Array.init ell (fun _ -> Array.make n []) in
  for p = 0 to ell - 1 do
    let c = parts.(p) in
    List.iter
      (fun (center, members) ->
        if List.length members > 1 then begin
          let sub = Subgraph.induced g members in
          let sel =
            match engine with
            | Polynomial -> Poly_greedy.build ~mode ~k ~f sub.Subgraph.graph
            | Exponential -> Exp_greedy.build ~mode ~k ~f sub.Subgraph.graph
          in
          let chosen = ref [] in
          Array.iteri
            (fun sid keep ->
              if keep then begin
                let pid = sub.Subgraph.to_parent_edge.(sid) in
                union.(pid) <- true;
                chosen := pid :: !chosen
              end)
            sel.Selection.selected;
          per_cluster_selection.(p).(center) <- !chosen
        end)
      (Decomposition.cluster_members c)
  done;

  (* Scatter: flood each cluster's selection down its tree so every member
     learns the incident decisions (rounds and traffic are what matter for
     the simulation; the union above is the global result). *)
  let knows = Array.init ell (fun p -> Array.map (fun l -> l <> []) per_cluster_selection.(p)) in
  let pending = per_cluster_selection in
  for _step = 0 to depth - 1 do
    for p = 0 to ell - 1 do
      for v = 0 to n - 1 do
        if knows.(p).(v) && pending.(p).(v) <> [] then begin
          Reliable.broadcast net ~src:v { partition = p; edge_ids = pending.(p).(v) }
        end
      done
    done;
    (* mark forwarded *)
    for p = 0 to ell - 1 do
      for v = 0 to n - 1 do
        if knows.(p).(v) then pending.(p).(v) <- []
      done
    done;
    Reliable.next_round net;
    for v = 0 to n - 1 do
      List.iter
        (fun (sender, pay) ->
          if pay.partition >= 0 then begin
            let c = parts.(pay.partition) in
            if c.Decomposition.parent_of.(v) = sender && not knows.(pay.partition).(v)
            then begin
              knows.(pay.partition).(v) <- true;
              pending.(pay.partition).(v) <- pay.edge_ids
            end
          end)
        (Reliable.inbox net v)
    done
  done;

  let stats = Reliable.stats net in
  {
    selection = Selection.of_mask g union;
    decomposition;
    announce_rounds = 1;
    gather_rounds = depth;
    scatter_rounds = depth;
    total_rounds = decomposition.Decomposition.rounds + 1 + depth + depth;
    stats;
  }
