type result = {
  selection : Selection.t;
  iterations : int;
  phase1_rounds : int;
  phase2_base_rounds : int;
  phase2_rounds : int;
  total_rounds : int;
  max_overlap : int;
  word_bits : int;
}

let bits_needed x =
  let rec go v acc = if v = 0 then max 1 acc else go (v lsr 1) (acc + 1) in
  go (max 1 x) 0

let build rng ?(c = 1.0) ?word_bits ?chaos ~mode ~k ~f g =
  if k < 1 then invalid_arg "Congest_ft.build: k must be >= 1";
  if f < 0 then invalid_arg "Congest_ft.build: f must be >= 0";
  Obs.with_span "congest_ft.build" @@ fun () ->
  let n = Graph.n g in
  let m = Graph.m g in
  let word = match word_bits with Some b -> b | None -> 4 * (bits_needed n + 1) in
  let j = Dk11.iterations ~c ~f ~n () in
  let p = 1. /. float_of_int (f + 1) in
  let index_bits = bits_needed j in

  (* Phase 1: sample participation sets.  VFT samples vertices, EFT edges
     (each edge's choice is drawn and announced by its smaller endpoint). *)
  let vertex_iters = Array.make n [] in
  let edge_iters = Array.make (max 1 m) [] in
  (match mode with
  | Fault.VFT ->
      for v = 0 to n - 1 do
        for it = 0 to j - 1 do
          if Rng.bernoulli rng ~p then vertex_iters.(v) <- it :: vertex_iters.(v)
        done
      done
  | Fault.EFT ->
      for id = 0 to m - 1 do
        for it = 0 to j - 1 do
          if Rng.bernoulli rng ~p then edge_iters.(id) <- it :: edge_iters.(id)
        done
      done);
  (* Round cost of shipping the participation lists along every edge:
     chunked into [word]-bit messages; all edges ship in parallel, so the
     cost is the max per directed edge. *)
  let phase1_rounds =
    match mode with
    | Fault.VFT ->
        let worst = ref 1 in
        for v = 0 to n - 1 do
          let bits = List.length vertex_iters.(v) * index_bits in
          let rounds = max 1 ((bits + word - 1) / word) in
          if rounds > !worst then worst := rounds
        done;
        !worst
    | Fault.EFT ->
        (* each endpoint learns only the iterations of its own incident
           edges; the heaviest vertex ships the sum over its edges *)
        let worst = ref 1 in
        for v = 0 to n - 1 do
          let bits = ref 0 in
          Graph.iter_neighbors g v (fun _ id ->
              bits := !bits + (List.length edge_iters.(id) * index_bits));
          let rounds = max 1 ((!bits + word - 1) / word) in
          if rounds > !worst then worst := rounds
        done;
        !worst
  in

  (* Phase 2: run each instance with history recording, then cost the
     parallel composition by congestion scheduling over the union of
     per-round edge loads. *)
  let union = Array.make m false in
  let base_rounds = ref 0 in
  (* loads per BS step: hashtable (step, parent_edge, dir) -> (bits, instances) *)
  let loads : (int * int * int, int * int) Hashtbl.t = Hashtbl.create 4096 in
  for it = 0 to j - 1 do
    if Obs_trace.enabled () then
      Obs_trace.emit (Obs_trace.Phase { name = "congest_ft.iteration"; index = it });
    let sub =
      match mode with
      | Fault.VFT ->
          let keep = Array.init n (fun v -> List.mem it vertex_iters.(v)) in
          Subgraph.induced_mask g keep
      | Fault.EFT ->
          let keep = Array.init m (fun id -> List.mem it edge_iters.(id)) in
          Subgraph.of_edge_subset g keep
    in
    if Graph.n sub.Subgraph.graph > 1 then begin
      let inst =
        Congest_bs.build (Rng.split rng) ~word_bits:word ~record_history:true
          ?chaos ~k sub.Subgraph.graph
      in
      Array.iteri
        (fun sid chosen ->
          if chosen then union.(sub.Subgraph.to_parent_edge.(sid)) <- true)
        inst.Congest_bs.selection.Selection.selected;
      let hist = inst.Congest_bs.history in
      if Array.length hist > !base_rounds then base_rounds := Array.length hist;
      Array.iteri
        (fun step entries ->
          List.iter
            (fun (sub_edge, dir, bits) ->
              let key = (step, sub.Subgraph.to_parent_edge.(sub_edge), dir) in
              let b0, c0 = try Hashtbl.find loads key with Not_found -> (0, 0) in
              Hashtbl.replace loads key (b0 + bits, c0 + 1))
            entries)
        hist
    end
  done;
  (* Schedule: physical rounds for BS step r = ceil(max edge load / word). *)
  let per_step = Array.make (max 1 !base_rounds) 1 in
  let max_overlap = ref 0 in
  Hashtbl.iter
    (fun (step, _, _) (bits, count) ->
      let need = max 1 ((bits + word - 1) / word) in
      if need > per_step.(step) then per_step.(step) <- need;
      if count > !max_overlap then max_overlap := count)
    loads;
  let phase2_rounds = Array.fold_left ( + ) 0 per_step in
  {
    selection = Selection.of_mask g union;
    iterations = j;
    phase1_rounds;
    phase2_base_rounds = !base_rounds;
    phase2_rounds;
    total_rounds = phase1_rounds + phase2_rounds;
    max_overlap = !max_overlap;
    word_bits = word;
  }
