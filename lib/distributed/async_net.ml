(* Queued events carry their message identity (causal id + endpoints) so
   the run loop can emit the matching Msg_deliver when the handler fires;
   timers use the sentinel endpoints (-1). *)
type ev = { h : unit -> unit; ev_cid : int; ev_src : int; ev_dst : int }

type t = {
  g : Graph.t;
  rng : Rng.t;
  min_delay : float;
  max_delay : float;
  chaos : Chaos.state option;
  queue : Pqueue.t;
  mutable handlers : ev array;
  mutable handler_count : int;
  mutable clock : float;
  mutable sent : int;
  (* congestion accumulator: physical message copies per directed slot
     (2m slots, like Net.edge_round_bits), cumulative over the run *)
  slot_msgs : int array;
  (* ... and per 1.0-wide simulated-time window, flushed into the
     net.edge_window_load histogram when the clock crosses a boundary *)
  win_msgs : int array;
  mutable win_touched : int list;
  mutable win_id : int;
  mutable skeleton : bool array option;
}

let nop () = ()
let nop_ev = { h = nop; ev_cid = -1; ev_src = -1; ev_dst = -1 }

(* Pending deliveries + timers in the event queue: a level, so a gauge. *)
let g_inflight = Obs.gauge "gauge.net.inflight"

let h_window_load = Obs.histogram_log "net.edge_window_load"
let m_msgs_spanner = Obs.counter "net.msgs.spanner"
let m_msgs_other = Obs.counter "net.msgs.other"

let create rng ?(min_delay = 0.1) ?(max_delay = 1.0) ?chaos g =
  if min_delay < 0. || max_delay < min_delay then
    invalid_arg "Async_net.create: need 0 <= min_delay <= max_delay";
  {
    g;
    rng;
    min_delay;
    max_delay;
    chaos;
    queue = Pqueue.create ~capacity:64;
    handlers = Array.make 64 nop_ev;
    handler_count = 0;
    clock = 0.;
    sent = 0;
    slot_msgs = Array.make (max 1 (2 * Graph.m g)) 0;
    win_msgs = Array.make (max 1 (2 * Graph.m g)) 0;
    win_touched = [];
    win_id = 0;
    skeleton = None;
  }

let now net = net.clock
let messages net = net.sent
let max_delay net = net.max_delay

let set_skeleton net mask =
  if Array.length mask <> Graph.m net.g then
    invalid_arg
      (Printf.sprintf "Async_net.set_skeleton: mask has %d slots for %d edges"
         (Array.length mask) (Graph.m net.g));
  net.skeleton <- Some mask

type hot_edge = Net.hot_edge = {
  he_edge : int;
  he_dir : int;
  he_bits : int;
  he_rounds : int;
}

(* Windows are closed lazily, when a send observes the clock past the
   boundary — simulated time only, so the flush schedule replays
   deterministically. *)
let flush_window net =
  List.iter
    (fun s ->
      Obs.Histogram.observe_int h_window_load net.win_msgs.(s);
      net.win_msgs.(s) <- 0)
    net.win_touched;
  net.win_touched <- []

let hot_edges ?(top = 10) net =
  if top < 0 then invalid_arg "Async_net.hot_edges: top must be >= 0";
  let loaded = ref [] in
  Array.iteri
    (fun s c -> if c > 0 then loaded := (s, c) :: !loaded)
    net.slot_msgs;
  let sorted =
    List.sort
      (fun (s1, c1) (s2, c2) ->
        if c1 <> c2 then compare c2 c1 else compare s1 s2)
      !loaded
  in
  List.filteri (fun i _ -> i < top) sorted
  |> List.map (fun (s, c) ->
         { he_edge = s / 2; he_dir = s mod 2; he_bits = c; he_rounds = 0 })

let push_ev net ~time ev =
  if net.handler_count = Array.length net.handlers then begin
    let bigger = Array.make (2 * net.handler_count) nop_ev in
    Array.blit net.handlers 0 bigger 0 net.handler_count;
    net.handlers <- bigger
  end;
  let idx = net.handler_count in
  net.handlers.(idx) <- ev;
  net.handler_count <- idx + 1;
  Pqueue.push net.queue time idx;
  Obs.Gauge.add g_inflight 1

let push net ~time handler = push_ev net ~time { nop_ev with h = handler }

let at net ~time handler =
  if time < net.clock then invalid_arg "Async_net.at: time is in the past";
  push net ~time handler

(* One physical copy on directed slot [s]: the congestion accumulator,
   the current window and the skeleton attribution (dup copies charge
   twice, a crashed sender's message never). *)
let charge_wire net s =
  net.slot_msgs.(s) <- net.slot_msgs.(s) + 1;
  let wid = int_of_float net.clock in
  if wid > net.win_id then begin
    flush_window net;
    net.win_id <- wid
  end;
  if net.win_msgs.(s) = 0 then net.win_touched <- s :: net.win_touched;
  net.win_msgs.(s) <- net.win_msgs.(s) + 1;
  match net.skeleton with
  | None -> ()
  | Some mask ->
      Obs.Counter.incr (if mask.(s / 2) then m_msgs_spanner else m_msgs_other)

let transmit net ?cid ~src ~dst handler =
  let s =
    match Graph.find_edge net.g src dst with
    | Some id -> (2 * id) + (if src < dst then 0 else 1)
    | None ->
        invalid_arg
          (Printf.sprintf "Async_net.send: %d and %d are not adjacent" src dst)
  in
  net.sent <- net.sent + 1;
  let tracing = Obs_trace.enabled () in
  let cid =
    match cid with
    | Some c -> c
    | None -> if tracing then Obs_trace.mint_cid () else -1
  in
  if tracing then
    Obs_trace.emit
      (Obs_trace.Msg_send { cid; src; dst; at = net.clock; bits = 1 });
  let ev = { h = handler; ev_cid = cid; ev_src = src; ev_dst = dst } in
  let draw_delay () =
    net.min_delay +. Rng.float net.rng (net.max_delay -. net.min_delay +. 1e-12)
  in
  (match net.chaos with
  | None ->
      charge_wire net s;
      push_ev net ~time:(net.clock +. draw_delay ()) ev
  | Some ch ->
      if Chaos.crashed ch ~node:src ~time:net.clock then
        Chaos.count_crash_drop ~cid ch ~src ~dst
      else begin
        (* Each copy: drop, or deliver after the base delay — stretched by
           a spike — unless the destination is down at arrival time.  The
           delay still comes from the {e network's} generator; only the
           fault choices consume the chaos stream. *)
        let deliver_copy () =
          charge_wire net s;
          if not (Chaos.draw_drop ~cid ch ~src ~dst) then begin
            let delay = draw_delay () *. Chaos.draw_spike ~cid ch ~src ~dst in
            let time = net.clock +. delay in
            if Chaos.crashed ch ~node:dst ~time then
              Chaos.count_crash_drop ~cid ch ~src ~dst
            else push_ev net ~time ev
          end
        in
        deliver_copy ();
        if Chaos.draw_dup ~cid ch ~src ~dst then deliver_copy ()
      end);
  cid

let send net ~src ~dst handler = ignore (transmit net ~src ~dst handler)

let run ?(until = infinity) ?(max_events = max_int) net =
  let processed = ref 0 in
  let continue = ref true in
  while !continue && !processed < max_events do
    match Pqueue.pop_min net.queue with
    | None -> continue := false
    | Some (time, idx) ->
        if time > until then begin
          (* put it back for a later run and stop *)
          Pqueue.push net.queue time idx;
          continue := false
        end
        else begin
          net.clock <- max net.clock time;
          incr processed;
          let ev = net.handlers.(idx) in
          net.handlers.(idx) <- nop_ev;
          Obs.Gauge.add g_inflight (-1);
          if ev.ev_src >= 0 && Obs_trace.enabled () then
            Obs_trace.emit
              (Obs_trace.Msg_deliver
                 {
                   cid = ev.ev_cid;
                   src = ev.ev_src;
                   dst = ev.ev_dst;
                   at = net.clock;
                 });
          ev.h ();
          (* one delivered event = one heartbeat operation *)
          Obs_heartbeat.pulse ()
        end
  done;
  !processed
