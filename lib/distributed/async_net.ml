type t = {
  g : Graph.t;
  rng : Rng.t;
  min_delay : float;
  max_delay : float;
  chaos : Chaos.state option;
  queue : Pqueue.t;
  mutable handlers : (unit -> unit) array;
  mutable handler_count : int;
  mutable clock : float;
  mutable sent : int;
}

let nop () = ()

let create rng ?(min_delay = 0.1) ?(max_delay = 1.0) ?chaos g =
  if min_delay < 0. || max_delay < min_delay then
    invalid_arg "Async_net.create: need 0 <= min_delay <= max_delay";
  {
    g;
    rng;
    min_delay;
    max_delay;
    chaos;
    queue = Pqueue.create ~capacity:64;
    handlers = Array.make 64 nop;
    handler_count = 0;
    clock = 0.;
    sent = 0;
  }

let now net = net.clock
let messages net = net.sent
let max_delay net = net.max_delay

let push net ~time handler =
  if net.handler_count = Array.length net.handlers then begin
    let bigger = Array.make (2 * net.handler_count) nop in
    Array.blit net.handlers 0 bigger 0 net.handler_count;
    net.handlers <- bigger
  end;
  let idx = net.handler_count in
  net.handlers.(idx) <- handler;
  net.handler_count <- idx + 1;
  Pqueue.push net.queue time idx

let at net ~time handler =
  if time < net.clock then invalid_arg "Async_net.at: time is in the past";
  push net ~time handler

let send net ~src ~dst handler =
  (match Graph.find_edge net.g src dst with
  | Some _ -> ()
  | None ->
      invalid_arg (Printf.sprintf "Async_net.send: %d and %d are not adjacent" src dst));
  net.sent <- net.sent + 1;
  let draw_delay () =
    net.min_delay +. Rng.float net.rng (net.max_delay -. net.min_delay +. 1e-12)
  in
  match net.chaos with
  | None -> push net ~time:(net.clock +. draw_delay ()) handler
  | Some ch ->
      if Chaos.crashed ch ~node:src ~time:net.clock then
        Chaos.count_crash_drop ch ~src ~dst
      else begin
        (* Each copy: drop, or deliver after the base delay — stretched by
           a spike — unless the destination is down at arrival time.  The
           delay still comes from the {e network's} generator; only the
           fault choices consume the chaos stream. *)
        let deliver_copy () =
          if not (Chaos.draw_drop ch ~src ~dst) then begin
            let delay = draw_delay () *. Chaos.draw_spike ch ~src ~dst in
            let time = net.clock +. delay in
            if Chaos.crashed ch ~node:dst ~time then
              Chaos.count_crash_drop ch ~src ~dst
            else push net ~time handler
          end
        in
        deliver_copy ();
        if Chaos.draw_dup ch ~src ~dst then deliver_copy ()
      end

let run ?(until = infinity) ?(max_events = max_int) net =
  let processed = ref 0 in
  let continue = ref true in
  while !continue && !processed < max_events do
    match Pqueue.pop_min net.queue with
    | None -> continue := false
    | Some (time, idx) ->
        if time > until then begin
          (* put it back for a later run and stop *)
          Pqueue.push net.queue time idx;
          continue := false
        end
        else begin
          net.clock <- max net.clock time;
          incr processed;
          let handler = net.handlers.(idx) in
          net.handlers.(idx) <- nop;
          handler ();
          (* one delivered event = one heartbeat operation *)
          Obs_heartbeat.pulse ()
        end
  done;
  !processed
