(** The LOCAL-model fault-tolerant spanner of Section 5.1 (Theorem 12).

    Pipeline: build the padded decomposition of Theorem 11; gather each
    cluster's induced subgraph at its center by convergecast up the
    cluster BFS tree (LOCAL allows unbounded messages); have every center
    run the centralized greedy on its cluster; scatter the chosen edges
    back down.  The output is the union over all clusters of all
    partitions; w.h.p. every edge of [G] lies inside some cluster, so the
    union is an f-FT (2k-1)-spanner of [G] with
    [O(f^{1-1/k} n^{1+1/k} log n)] edges, and the round count is dominated
    by the cluster diameter, i.e. [O(log n)].

    The paper runs Algorithm 1 (the exponential greedy) at cluster centers
    — LOCAL permits unbounded local computation.  Centers here can run
    either that or the paper's own polynomial Algorithm 3/4, trading the
    extra factor [k] in cluster spanner size for tractability on large
    clusters; the default is the polynomial engine. *)

type engine =
  | Exponential  (** Algorithm 1 at the centers, as in the paper *)
  | Polynomial  (** Algorithm 3/4 at the centers (extra factor k) *)

type result = {
  selection : Selection.t;
  decomposition : Decomposition.t;
  announce_rounds : int;  (** neighbors exchange cluster ids *)
  gather_rounds : int;  (** convergecast depth *)
  scatter_rounds : int;  (** broadcast depth *)
  total_rounds : int;
  stats : Net.stats;  (** gather/scatter traffic (unbounded messages) *)
}

(** [build rng ?engine ?beta ?partitions ?chaos ~mode ~k ~f g] runs the
    LOCAL algorithm end to end on the simulator.  [chaos] makes the
    gather/scatter network unreliable; the {!Reliable} protocol masks
    the faults, so the selection is unchanged while [stats] includes the
    retransmission traffic. *)
val build :
  Rng.t ->
  ?engine:engine ->
  ?beta:float ->
  ?partitions:int ->
  ?chaos:Chaos.plan ->
  mode:Fault.mode ->
  k:int ->
  f:int ->
  Graph.t ->
  result
