(** Synchronizer-over-a-skeleton: the Peleg-Ullman application of
    (fault-tolerant) spanners.

    An alpha synchronizer lets an asynchronous network emulate synchronous
    pulses: a node enters pulse [p+1] once it has received [safe(p)] from
    its neighbors.  Running the safety exchange over a sparse {e skeleton}
    [S ⊆ G] instead of all of [G] cuts messages per pulse from [2m] to
    [2|S|]; the price is pulse {e skew} between [G]-neighbors, which is
    governed by their distance in [S] — i.e. by the skeleton's stretch.
    That trade-off is why spanners were introduced (PU89), and fault
    tolerance is what keeps it alive when nodes crash: a spanning tree
    skeleton partitions after one failure, an f-FT spanner skeleton keeps
    every surviving pair within stretch for up to [f] failures.

    The simulation runs on {!Async_net}.  Crashed nodes stop participating
    at their failure time; survivors are informed by an abstracted perfect
    failure detector (they drop the dead from their skeleton-neighbor
    lists at that moment).  Reported skew is
    [max_{surviving G-edge {u,v}} max_p |T_u(p) - T_v(p)|] where [T_x(p)]
    is the time [x] entered pulse [p]. *)

type report = {
  pulses : int;  (** pulses every survivor completed *)
  messages : int;  (** total messages, acks and retransmissions included *)
  completion_time : float;
  max_skew : float;  (** worst pulse-entry time gap across surviving
                         G-edges *)
  skeleton_edges : int;
  survivors_connected : bool;
      (** is the skeleton restricted to survivors still connected? *)
  retransmits : int;
      (** packets re-sent by the reliable-delivery layer (0 without
          chaos) *)
}

val pp_report : Format.formatter -> report -> unit

(** [run rng ?failures ?chaos ~pulses ~skeleton g] drives every node
    through [pulses] synchronized pulses over the given skeleton (a
    {!Selection.t} over [g]).  [failures = (time, nodes)] crashes the
    listed nodes at the given time.  [chaos] makes message delivery
    unreliable; safety messages then travel through {!Reliable.Async},
    whose acks and retransmissions are included in [messages].  Requires
    the skeleton (restricted to survivors) to leave each node with at
    least zero neighbors — isolated survivors simply free-run, which the
    skew metric exposes. *)
val run :
  Rng.t ->
  ?failures:float * int list ->
  ?chaos:Chaos.plan ->
  pulses:int ->
  skeleton:Selection.t ->
  Graph.t ->
  report
