(** Reliable delivery over an unreliable network.

    The simulators inject faults below the algorithm ({!Chaos}); this
    module masks them above it, so the paper's constructions — written
    against a perfectly reliable lockstep network — run unchanged on a
    lossy one.  The classic recipe: per-directed-edge sequence numbers,
    positive acknowledgements, timeout-driven retransmission with
    exponential backoff, and duplicate suppression at the receiver.

    The synchronous wrapper mirrors the {!Net} API.  With no chaos plan
    (or a silent one) it is a transparent passthrough — no headers, no
    acks, bit-identical accounting — so the reliable path costs nothing
    on a reliable network.  With faults enabled, {!next_round} runs as
    many {e physical} rounds as needed until every message of the
    {e logical} round is acknowledged (or given up after a bounded number
    of attempts), then exposes the logical inbox in a canonical
    [(sender, send-order)] order.  The algorithm therefore observes the
    same lockstep semantics either way, and — because fault draws consume
    the chaos plan's private stream, never the algorithm's generator —
    computes the very same result.

    Retransmissions count into the global [net.retries] counter and
    abandoned packets into [net.giveups] (both owned by {!Chaos});
    per-network totals are available via {!retransmits} / {!giveups}.
    While {!Obs_trace.enabled}, the protocol narrates each message's
    lifecycle under its causal id: every re-send reuses the first
    attempt's id (so one application message is one lifecycle however
    many attempts it takes), and [chaos] events of kind ["retransmit"],
    ["ack"], ["dup_suppress"] and ["giveup"] mark the protocol's
    reactions.  The [gauge.reliable.unacked] gauge tracks the live
    unacknowledged-send window. *)

type 'msg t

(** [create ?record_history ?chaos ~model ~bits g] wraps a fresh {!Net}.
    [chaos], when present and not {!Chaos.is_silent}, arms fault
    injection (a private {!Chaos.state} is started from the plan) and
    the retransmission protocol.  [bits] measures {e payloads}; the
    protocol charges data headers and acks only in chaos mode. *)
val create :
  ?record_history:bool ->
  ?chaos:Chaos.plan ->
  model:Net.model ->
  bits:('msg -> int) ->
  Graph.t ->
  'msg t

val graph : 'msg t -> Graph.t

(** [send t ~src ~dst msg] queues one logical message for the current
    logical round.  Same adjacency contract as {!Net.send}. *)
val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [broadcast t ~src msg] sends [msg] on every edge incident to
    [src]. *)
val broadcast : 'msg t -> src:int -> 'msg -> unit

(** [next_round t] completes the logical round: in passthrough mode one
    physical round; in chaos mode physical rounds repeat — retransmitting
    unacknowledged packets with backoff — until the round's traffic is
    fully acknowledged or abandoned. *)
val next_round : 'msg t -> unit

(** [inbox t v] lists [(sender, message)] pairs of the previous logical
    round, deduplicated, in ascending [(sender, send order)]. *)
val inbox : 'msg t -> int -> (int * 'msg) list

val charge_rounds : 'msg t -> int -> unit

(** [stats t] is the underlying network's accounting — physical rounds
    and offered load, protocol traffic included. *)
val stats : 'msg t -> Net.stats

val history : 'msg t -> (int * int * int) list array

(** [retransmits t] counts packets re-sent after a timeout. *)
val retransmits : 'msg t -> int

(** [giveups t] counts packets abandoned after the retry budget. *)
val giveups : 'msg t -> int

(** [chaos_counts t] is the injected-fault tally, when chaos is armed. *)
val chaos_counts : 'msg t -> Chaos.counts option

(** {1 Asynchronous wrapper}

    Same protocol over {!Async_net}: acknowledgements travel as ordinary
    messages, retransmission timers via {!Async_net.at} with timeouts
    scaled from the network's maximum delay.  Passthrough without
    chaos. *)
module Async : sig
  type t

  val create :
    Rng.t ->
    ?min_delay:float ->
    ?max_delay:float ->
    ?chaos:Chaos.plan ->
    Graph.t ->
    t

  (** [net t] is the wrapped network — for {!Async_net.at},
      {!Async_net.now}, {!Async_net.run} and {!Async_net.messages}
      (which counts protocol traffic too). *)
  val net : t -> Async_net.t

  (** [send t ~src ~dst handler] delivers [handler] exactly once (barring
      give-up), retransmitting on timeout and suppressing duplicates. *)
  val send : t -> src:int -> dst:int -> (unit -> unit) -> unit

  val retransmits : t -> int
  val giveups : t -> int
  val chaos_counts : t -> Chaos.counts option
end
