(** Distributed Baswana-Sen in the CONGEST model (Theorem 14).

    The same clustering process as the centralized {!Baswana_sen}, executed
    in synchronous rounds with [O(log n)]-bit messages:

    + at phase [i], each cluster center draws its sampling bit and floods
      it down the cluster BFS tree — [i] rounds, since level-[i-1]
      clusters have radius [< i];
    + one round in which every vertex announces [(center, sampled)] to its
      neighbors, after which all decisions are local (each vertex knows
      its incident edge weights and its neighbors' clusters);
    + one round of per-edge kill notifications keeping the two endpoints'
      views of the surviving edge set consistent.

    Phases [1 .. k-1] plus the final connect-to-all-clusters phase give
    [sum_i (i + 2) + 2 = O(k^2)] rounds, matching Theorem 14; expected
    size is [O(k n^{1+1/k})] as in the centralized version.

    Unlike the centralized implementation (which processes vertices
    sequentially), every vertex here decides against the same snapshot of
    the clustering — the genuinely distributed semantics.

    With [record_history] the per-round, per-edge bit loads are retained;
    {!Congest_ft} replays those histories to schedule many instances in
    parallel under a congestion bound (Theorem 15). *)

type result = {
  selection : Selection.t;
  rounds : int;
  stats : Net.stats;
  history : (int * int * int) list array;
      (** per round: [(edge, direction, bits)] — empty unless recorded *)
}

(** [build rng ?word_bits ?record_history ?chaos ~k g] runs the
    algorithm.  [word_bits] is the CONGEST message capacity (default:
    [4 * (ceil log2 n + 1)], i.e. a constant number of vertex ids).
    [chaos] injects network faults, masked by the {!Reliable} protocol:
    the selection is unchanged, while [rounds]/[stats]/[history] reflect
    the retransmission traffic. *)
val build :
  Rng.t ->
  ?word_bits:int ->
  ?record_history:bool ->
  ?chaos:Chaos.plan ->
  k:int ->
  Graph.t ->
  result
