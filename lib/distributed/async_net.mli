(** Event-driven asynchronous network simulator.

    The synchronous simulator ({!Net}) serves the paper's LOCAL/CONGEST
    algorithms; this one serves the {e applications} of spanners in
    asynchronous systems (synchronizers, Peleg-Ullman 1989 — one of the
    motivating applications in the paper's introduction).  Messages sent
    along an edge are delivered after an independent uniformly random
    delay in [[min_delay, max_delay]]; computation is event-driven and
    instantaneous.

    Delivery handlers are closures, so the simulator is protocol-agnostic:
    {!send} counts one message and schedules the handler at the delivery
    time; {!at} schedules a timer.  [run] drains the event queue in time
    order (deterministically, given the {!Rng.t}). *)

type t

(** [create rng ?min_delay ?max_delay g] builds an idle network over [g]
    (defaults: delays uniform in [[0.1, 1.0]]).  [chaos] makes delivery
    unreliable: each message is independently dropped or duplicated, delay
    spikes stretch the drawn delay, and crashed nodes neither send nor
    receive (see {!Chaos}).  Fault draws consume the chaos plan's private
    stream, never [rng], so a fault-masked run replays the same delays as
    a fault-free one.  {!messages} still counts every {!send} — offered
    load, like {!Net.stats}. *)
val create :
  Rng.t -> ?min_delay:float -> ?max_delay:float -> ?chaos:Chaos.state ->
  Graph.t -> t

(** [now net] is the current simulation time. *)
val now : t -> float

(** [messages net] counts messages sent so far. *)
val messages : t -> int

(** [max_delay net] is the network's maximum single-hop delay — the base
    for retransmission timeouts in {!Reliable.Async}. *)
val max_delay : t -> float

(** [send net ~src ~dst handler] sends one message along the edge
    [{src,dst}] (must exist); [handler] runs at the delivery time.
    Raises [Invalid_argument] for non-adjacent pairs. *)
val send : t -> src:int -> dst:int -> (unit -> unit) -> unit

(** [transmit net ?cid ~src ~dst handler] is {!send} returning the
    message's causal id (minted while tracing, [-1] otherwise; pass
    [cid] to re-send under an existing identity — {!Reliable.Async}
    does for retransmits).  While tracing, emits one [Msg_send] (with
    [bits = 1]: the async plane counts messages, not bits) and each
    surviving copy emits a [Msg_deliver] with the same id when its
    handler fires. *)
val transmit : t -> ?cid:int -> src:int -> dst:int -> (unit -> unit) -> int

(** [set_skeleton net mask] arms spanner-vs-rest congestion attribution
    ([mask] has one flag per edge id): every physical message copy from
    then on bumps [net.msgs.spanner] or [net.msgs.other].  Raises
    [Invalid_argument] on a size mismatch. *)
val set_skeleton : t -> bool array -> unit

type hot_edge = Net.hot_edge = {
  he_edge : int;
  he_dir : int;
  he_bits : int;  (** here: physical message copies over the run *)
  he_rounds : int;  (** always [0] — the async plane has no rounds *)
}

(** [hot_edges ?top net] is the congestion leaderboard: the [top]
    (default 10) busiest directed slots by physical message copies,
    busiest first, ties toward the smaller edge id.  Like
    {!Net.hot_edges} but counting messages; [he_rounds] is [0].
    Raises [Invalid_argument] on negative [top]. *)
val hot_edges : ?top:int -> t -> hot_edge list

(** [at net ~time handler] schedules a timer ([time] must not be in the
    past). *)
val at : t -> time:float -> (unit -> unit) -> unit

(** [run ?until ?max_events net] processes events in time order until the
    queue is empty (or [until]/[max_events] is hit).  Returns the number
    of events processed. *)
val run : ?until:float -> ?max_events:int -> t -> int
