type report = {
  pulses : int;
  messages : int;
  completion_time : float;
  max_skew : float;
  skeleton_edges : int;
  survivors_connected : bool;
  retransmits : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "pulses=%d messages=%d time=%.2f skew=%.2f skeleton=%d connected=%b \
     retransmits=%d"
    r.pulses r.messages r.completion_time r.max_skew r.skeleton_edges
    r.survivors_connected r.retransmits

(* Per-node pulse-to-pulse latency in simulated time: the α-synchronizer's
   service-level series.  Log-linear: lossy runs stretch the tail with
   retransmission backoff, which is exactly what p99/p999 should show. *)
let h_round_latency = Obs.histogram_log "sync.round_latency"

let run rng ?failures ?chaos ~pulses ~skeleton g =
  if pulses < 1 then invalid_arg "Synchronizer.run: pulses must be >= 1";
  if skeleton.Selection.source != g then
    invalid_arg "Synchronizer.run: skeleton must select edges of the given graph";
  let n = Graph.n g in
  let rel = Reliable.Async.create rng ?chaos g in
  let net = Reliable.Async.net rel in
  (* every synchronizer message travels a skeleton edge, but the
     attribution split still matters for mixed workloads sharing the
     net — and it lets the analyzer confirm exactly that *)
  Async_net.set_skeleton net skeleton.Selection.selected;
  (* Skeleton adjacency. *)
  let nbrs = Array.make n [] in
  List.iter
    (fun id ->
      let u, v = Graph.endpoints g id in
      nbrs.(u) <- v :: nbrs.(u);
      nbrs.(v) <- u :: nbrs.(v))
    (Selection.ids skeleton);
  let alive = Array.make n true in
  let pulse = Array.make n 0 in
  let entry_time = Array.make_matrix n (pulses + 1) nan in
  (* received.(v).(p): skeleton neighbors whose safe(p) arrived. *)
  let received = Array.make_matrix n (pulses + 1) [] in
  for v = 0 to n - 1 do
    entry_time.(v).(0) <- 0.
  done;
  let rec send_safe v p =
    if p <= pulses then
      List.iter
        (fun y ->
          (* The sender does not filter on [alive y]: without a failure
             detector event it cannot know; messages to the dead are
             counted and dropped on delivery. *)
          Reliable.Async.send rel ~src:v ~dst:y (fun () -> receive_safe y v p))
        nbrs.(v)
  and receive_safe v from p =
    if alive.(v) && p <= pulses then begin
      if not (List.mem from received.(v).(p)) then
        received.(v).(p) <- from :: received.(v).(p);
      try_advance v
    end
  and try_advance v =
    if alive.(v) && pulse.(v) < pulses then begin
      let p = pulse.(v) in
      let all_safe =
        List.for_all
          (fun y -> (not alive.(y)) || List.mem y received.(v).(p))
          nbrs.(v)
      in
      if all_safe then begin
        pulse.(v) <- p + 1;
        let now = Async_net.now net in
        entry_time.(v).(p + 1) <- now;
        if Obs_trace.enabled () then
          Obs_trace.emit
            (Obs_trace.Sync_pulse { node = v; pulse = p + 1; at = now });
        let prev = entry_time.(v).(p) in
        if Float.is_finite prev then
          Obs.Histogram.observe h_round_latency (now -. prev);
        send_safe v (p + 1);
        try_advance v
      end
    end
  in
  (* Failure injection + abstract perfect failure detector: survivors
     reconsider their advance condition the moment the crash happens. *)
  (match failures with
  | None -> ()
  | Some (time, victims) ->
      Async_net.at net ~time (fun () ->
          List.iter (fun v -> if v >= 0 && v < n then alive.(v) <- false) victims;
          for v = 0 to n - 1 do
            if alive.(v) then try_advance v
          done));
  (* Pulse 0 starts at time 0. *)
  Async_net.at net ~time:0. (fun () ->
      for v = 0 to n - 1 do
        send_safe v 0
      done);
  ignore (Async_net.run net);
  (* ------------------------------ metrics --------------------------- *)
  let survivor_min_pulse = ref pulses in
  let completion = ref 0. in
  for v = 0 to n - 1 do
    if alive.(v) then begin
      if pulse.(v) < !survivor_min_pulse then survivor_min_pulse := pulse.(v);
      let t = entry_time.(v).(pulse.(v)) in
      if t > !completion then completion := t
    end
  done;
  let max_skew = ref 0. in
  Graph.iter_edges g (fun e ->
      let u = e.Graph.u and v = e.Graph.v in
      if alive.(u) && alive.(v) then
        for p = 0 to min pulse.(u) pulse.(v) do
          let d = abs_float (entry_time.(u).(p) -. entry_time.(v).(p)) in
          if d > !max_skew then max_skew := d
        done);
  let dead_mask = Array.map not alive in
  let blocked_edges = Array.map not skeleton.Selection.selected in
  let label, _ = Components.labels ~blocked_vertices:dead_mask ~blocked_edges g in
  let survivors_connected =
    let root = ref (-1) in
    let ok = ref true in
    for v = 0 to n - 1 do
      if alive.(v) then
        if !root < 0 then root := v
        else if label.(v) <> label.(!root) then ok := false
    done;
    !ok
  in
  {
    pulses = !survivor_min_pulse;
    messages = Async_net.messages net;
    completion_time = !completion;
    max_skew = !max_skew;
    skeleton_edges = skeleton.Selection.size;
    survivors_connected;
    retransmits = Reliable.Async.retransmits rel;
  }
