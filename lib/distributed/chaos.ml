type plan = {
  drop : float;
  dup : float;
  reorder : int;
  spike : float;
  spike_factor : float;
  crashes : (int * float * float) list;
  seed : int;
}

let default_seed = 0xC4A05

let check_prob name p =
  if not (p >= 0. && p <= 1.) then
    invalid_arg (Printf.sprintf "Chaos.plan: %s must be in [0,1] (got %g)" name p)

let plan ?(drop = 0.) ?(dup = 0.) ?(reorder = 0) ?(spike = 0.)
    ?(spike_factor = 5.0) ?(crashes = []) ?(seed = default_seed) () =
  check_prob "drop" drop;
  check_prob "dup" dup;
  check_prob "spike" spike;
  if reorder < 0 then invalid_arg "Chaos.plan: reorder must be >= 0";
  if spike_factor < 1. then invalid_arg "Chaos.plan: spike_factor must be >= 1";
  List.iter
    (fun (v, from_t, until_t) ->
      if v < 0 then invalid_arg "Chaos.plan: crash node must be >= 0";
      if from_t < 0. || until_t < from_t then
        invalid_arg "Chaos.plan: crash window must satisfy 0 <= from <= until")
    crashes;
  { drop; dup; reorder; spike; spike_factor; crashes; seed }

let is_silent p =
  p.drop = 0. && p.dup = 0. && p.reorder = 0 && p.spike = 0. && p.crashes = []

(* --------------------------- spec grammar ---------------------------- *)

let ( let* ) = Result.bind

let parse_float key v =
  match float_of_string_opt v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "chaos: %s needs a float (got %S)" key v)

let parse_int key v =
  match int_of_string_opt v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "chaos: %s needs an integer (got %S)" key v)

(* crash=V@T / recover=V@T *)
let parse_at key v =
  match String.index_opt v '@' with
  | None -> Error (Printf.sprintf "chaos: %s needs NODE@TIME (got %S)" key v)
  | Some i ->
      let node = String.sub v 0 i in
      let time = String.sub v (i + 1) (String.length v - i - 1) in
      let* node = parse_int key node in
      let* time = parse_float key time in
      Ok (node, time)

let parse_spec s =
  let fields = String.split_on_char ',' (String.trim s) in
  let rec go acc crashes = function
    | [] ->
        let acc = { acc with crashes = List.rev crashes } in
        (try Ok (plan ~drop:acc.drop ~dup:acc.dup ~reorder:acc.reorder
                   ~spike:acc.spike ~spike_factor:acc.spike_factor
                   ~crashes:acc.crashes ~seed:acc.seed ())
         with Invalid_argument msg -> Error msg)
    | field :: rest -> (
        let field = String.trim field in
        if field = "" then go acc crashes rest
        else
          match String.index_opt field '=' with
          | None -> Error (Printf.sprintf "chaos: expected KEY=VALUE (got %S)" field)
          | Some i -> (
              let key = String.sub field 0 i in
              let v = String.sub field (i + 1) (String.length field - i - 1) in
              match key with
              | "drop" ->
                  let* x = parse_float key v in
                  go { acc with drop = x } crashes rest
              | "dup" ->
                  let* x = parse_float key v in
                  go { acc with dup = x } crashes rest
              | "reorder" ->
                  let* x = parse_int key v in
                  go { acc with reorder = x } crashes rest
              | "spike" ->
                  let* x = parse_float key v in
                  go { acc with spike = x } crashes rest
              | "spikex" ->
                  let* x = parse_float key v in
                  go { acc with spike_factor = x } crashes rest
              | "seed" ->
                  let* x = parse_int key v in
                  go { acc with seed = x } crashes rest
              | "crash" ->
                  let* node, time = parse_at key v in
                  go acc ((node, time, infinity) :: crashes) rest
              | "recover" -> (
                  let* node, time = parse_at key v in
                  (* close the node's most recent open crash window *)
                  let rec close = function
                    | [] ->
                        Error
                          (Printf.sprintf
                             "chaos: recover=%d@%g without a prior crash" node time)
                    | (n, f, u) :: tl when n = node && u = infinity ->
                        Ok ((n, f, time) :: tl)
                    | hd :: tl ->
                        let* tl = close tl in
                        Ok (hd :: tl)
                  in
                  match close crashes with
                  | Ok crashes -> go acc crashes rest
                  | Error e -> Error e)
              | _ -> Error (Printf.sprintf "chaos: unknown key %S" key)))
  in
  go (plan ()) [] fields

let pp_plan ppf p =
  let parts = ref [] in
  let add fmt = Printf.ksprintf (fun s -> parts := s :: !parts) fmt in
  if p.drop > 0. then add "drop=%g" p.drop;
  if p.dup > 0. then add "dup=%g" p.dup;
  if p.reorder > 0 then add "reorder=%d" p.reorder;
  if p.spike > 0. then begin
    add "spike=%g" p.spike;
    if p.spike_factor <> 5.0 then add "spikex=%g" p.spike_factor
  end;
  List.iter
    (fun (v, from_t, until_t) ->
      add "crash=%d@%g" v from_t;
      if until_t < infinity then add "recover=%d@%g" v until_t)
    p.crashes;
  add "seed=%d" p.seed;
  Format.pp_print_string ppf (String.concat "," (List.rev !parts))

(* ----------------------------- telemetry ----------------------------- *)

let m_drops = Obs.counter "net.drops"
let m_dups = Obs.counter "net.dups"
let m_reorders = Obs.counter "net.reorders"
let retries_counter = Obs.counter "net.retries"
let giveups_counter = Obs.counter "net.giveups"

let trace ?(cid = -1) kind ~src ~dst =
  if Obs_trace.enabled () then
    Obs_trace.emit (Obs_trace.Chaos_event { kind; cid; src; dst })

(* ------------------------------- state ------------------------------- *)

type counts = { c_drops : int; c_dups : int; c_reorders : int }

type state = {
  plan : plan;
  rng : Rng.t;
  mutable drops : int;
  mutable dups : int;
  mutable reorders : int;
}

let start plan =
  { plan; rng = Rng.create ~seed:plan.seed; drops = 0; dups = 0; reorders = 0 }

let plan_of st = st.plan
let counts st = { c_drops = st.drops; c_dups = st.dups; c_reorders = st.reorders }

let crashed st ~node ~time =
  List.exists
    (fun (v, from_t, until_t) -> v = node && time >= from_t && time < until_t)
    st.plan.crashes

let note_drop ?cid st ~src ~dst =
  st.drops <- st.drops + 1;
  Obs.Counter.incr m_drops;
  trace ?cid "drop" ~src ~dst

let draw_drop ?cid st ~src ~dst =
  let hit = st.plan.drop > 0. && Rng.bernoulli st.rng ~p:st.plan.drop in
  if hit then note_drop ?cid st ~src ~dst;
  hit

let draw_dup ?cid st ~src ~dst =
  let hit = st.plan.dup > 0. && Rng.bernoulli st.rng ~p:st.plan.dup in
  if hit then begin
    st.dups <- st.dups + 1;
    Obs.Counter.incr m_dups;
    trace ?cid "dup" ~src ~dst
  end;
  hit

let draw_lag ?cid st ~src ~dst =
  if st.plan.reorder = 0 then 0
  else begin
    let lag = Rng.int st.rng (st.plan.reorder + 1) in
    if lag > 0 then begin
      st.reorders <- st.reorders + 1;
      Obs.Counter.incr m_reorders;
      trace ?cid "reorder" ~src ~dst
    end;
    lag
  end

let draw_spike ?cid st ~src ~dst =
  if st.plan.spike > 0. && Rng.bernoulli st.rng ~p:st.plan.spike then begin
    st.reorders <- st.reorders + 1;
    Obs.Counter.incr m_reorders;
    trace ?cid "spike" ~src ~dst;
    st.plan.spike_factor
  end
  else 1.0

let count_crash_drop ?cid st ~src ~dst = note_drop ?cid st ~src ~dst
