(** Synchronous message-passing network simulator with LOCAL/CONGEST
    accounting.

    Both distributed models of the paper (Peleg's LOCAL and CONGEST) share
    the synchronous round structure: in each round every node may send one
    message per incident edge, then all messages are delivered
    simultaneously.  They differ only in the bandwidth constraint — LOCAL
    messages are unbounded, CONGEST messages carry [O(log n)] bits.

    The simulator delivers messages in lockstep rounds and {e accounts}
    bandwidth instead of physically limiting it: every send is measured by
    the caller-supplied [bits] function, per-(edge, round) totals are
    tracked, and sends exceeding the CONGEST capacity are recorded as
    violations.  Algorithm implementations are therefore forced to route
    all information flow along edges one round at a time (the quantity the
    paper's Section 5 theorems bound), while tests can assert that the
    CONGEST constructions never violate the bandwidth budget.

    Optionally the simulator records the per-round, per-edge bit usage
    history; the Theorem 15 construction uses this to compute the
    congestion-scheduled cost of running many Baswana-Sen instances in
    parallel. *)

type model =
  | Local
  | Congest of int  (** per-edge per-direction capacity in bits per round *)

type stats = {
  rounds : int;
  messages : int;
  total_bits : int;
  max_message_bits : int;
  max_edge_round_bits : int;
      (** busiest (edge, direction, round) load observed — {e physical}
          load: chaos-duplicated copies count once each, and a crashed
          sender's message not at all *)
  congest_violations : int;
      (** sends that individually exceeded the CONGEST capacity *)
}

val pp_stats : Format.formatter -> stats -> unit

(** One entry of the congestion leaderboard ({!hot_edges}). *)
type hot_edge = {
  he_edge : int;  (** edge id in the source graph *)
  he_dir : int;  (** [0] when the sender is the edge's smaller endpoint *)
  he_bits : int;  (** cumulative physical bits over the run *)
  he_rounds : int;  (** rounds this directed slot carried traffic *)
}

val pp_hot_edge : Format.formatter -> hot_edge -> unit

type 'msg t

(** [create ~model ~bits g] builds an idle network over the topology [g].
    [bits] measures message sizes.  Set [record_history] to retain
    per-round edge loads (see {!history}).  [chaos] makes the network
    unreliable: each message copy is independently dropped, duplicated or
    delayed by a bounded number of rounds, and crashed nodes neither send
    nor receive (see {!Chaos}).  Message accounting ([messages],
    [total_bits], [max_message_bits], CONGEST violations) measures the
    {e offered} load — what the algorithm sent — so the algorithm-side
    counters of a fault-masked run match the fault-free run exactly.
    Per-edge congestion accounting ([max_edge_round_bits], {!history},
    {!hot_edges} and the [net.edge_round_load] histogram) measures the
    {e physical} load: a chaos-duplicated copy charges its wire twice
    and a crashed sender's message never charges it.  Without a chaos
    plan the two coincide. *)
val create :
  ?record_history:bool ->
  ?chaos:Chaos.state ->
  model:model ->
  bits:('msg -> int) ->
  Graph.t ->
  'msg t

(** [graph net] is the underlying topology. *)
val graph : 'msg t -> Graph.t

(** [send net ~src ~dst msg] stages a message for delivery at the end of
    the current round.  [dst] must be adjacent to [src] (this is a
    message-passing network, not shared memory); raises [Invalid_argument]
    otherwise. *)
val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

(** [transmit net ?cid ~src ~dst msg] is {!send} returning the message's
    causal id.  A fresh id is minted ({!Obs_trace.mint_cid}) while
    tracing is enabled ([-1] otherwise); pass [cid] to re-send under an
    existing identity — {!Reliable} does for retransmits, so every
    attempt of one application message shares one lifecycle in the
    trace.  While tracing, emits one [Msg_send] (and the eventual
    [Msg_deliver]s carry the same id). *)
val transmit : 'msg t -> ?cid:int -> src:int -> dst:int -> 'msg -> int

(** [broadcast net ~src msg] stages [msg] on every edge incident to
    [src]. *)
val broadcast : 'msg t -> src:int -> 'msg -> unit

(** [next_round net] delivers all staged messages and advances the round
    counter.  Messages staged in round [r] are readable (only) during
    round [r + 1]. *)
val next_round : 'msg t -> unit

(** [inbox net v] lists [(sender, message)] pairs delivered to [v] at the
    start of the current round (i.e. sent during the previous one). *)
val inbox : 'msg t -> int -> (int * 'msg) list

(** [inbox_cids net v] is {!inbox} with each message's causal id:
    [(sender, cid, message)].  Ids are [-1] for messages sent while
    tracing was disabled and no explicit [cid] was given. *)
val inbox_cids : 'msg t -> int -> (int * int * 'msg) list

(** [set_skeleton net mask] arms spanner-vs-rest congestion attribution:
    [mask] holds one flag per edge id of the topology ([true] = the edge
    is in the spanner skeleton), and from then on every physical copy's
    bits are added to the [net.bits.spanner] or [net.bits.other]
    counter.  Raises [Invalid_argument] when [mask] doesn't have exactly
    one slot per edge. *)
val set_skeleton : 'msg t -> bool array -> unit

(** [hot_edges ?top net] is the congestion leaderboard: the [top]
    (default 10) busiest directed slots by cumulative physical bits over
    the run so far, busiest first (ties broken toward the smaller edge
    id — the order is deterministic).  Raises [Invalid_argument] on
    negative [top]. *)
val hot_edges : ?top:int -> 'msg t -> hot_edge list

(** [charge_rounds net k] advances the round counter by [k] without any
    message traffic — used to account for sub-protocols whose round cost
    is known but which the caller executes in aggregate form. *)
val charge_rounds : 'msg t -> int -> unit

(** [stats net] snapshots the accounting counters. *)
val stats : 'msg t -> stats

(** [history net] returns, for each completed round, the list of
    [(edge_id, direction, bits)] loads ([direction] is [0] when the sender
    is the edge's smaller endpoint).  Empty unless [record_history] was
    set. *)
val history : 'msg t -> (int * int * int) list array
