(** Padded low-diameter decompositions in the LOCAL model (Theorem 11).

    Built from random exponential shifts (Miller-Peng-Xu style, also
    implicit in the padded decompositions of Dinitz-Krauthgamer): every
    vertex [u] draws [delta_u ~ Exp(beta)] and every vertex joins the
    cluster of the [u] maximizing [delta_u - d_hop(u, v)].  Flooding the
    winning offers for [ceil(max delta)] rounds computes the assignment;
    an edge is cut with probability [O(beta)], cluster hop-radius is
    [max delta = O(log n / beta)] w.h.p.

    Repeating with [ell = Theta(log n)] independent partitions makes every
    edge interior to some cluster w.h.p.  All [ell] floods run
    simultaneously — LOCAL messages are unbounded, so a round carries one
    offer per partition — giving [O(log n)] rounds total, as Theorem 11
    requires. *)

type clustering = {
  center_of : int array;  (** cluster center per vertex *)
  parent_of : int array;  (** BFS-tree parent within the cluster, [-1] at
                              the center *)
  depth_of : int array;  (** hop depth below the center *)
}

type t = {
  partitions : clustering array;
  covered : bool array;
      (** per edge of the source graph: do both endpoints share a cluster
          in some partition? (Theorem 11.4 says w.h.p. all-true.) *)
  rounds : int;  (** LOCAL rounds consumed *)
  max_depth : int;  (** largest cluster tree depth over all partitions *)
  stats : Net.stats;
}

(** [coverage t] is the fraction of covered edges ([1.0] = padded). *)
val coverage : t -> float

(** [cluster_members c] groups vertices by center: returns an association
    list [(center, members)]. *)
val cluster_members : clustering -> (int * int list) list

(** [run rng ?beta ?partitions g] computes the decomposition.  [beta]
    defaults to [0.25]; [partitions] defaults to
    [max 1 (ceil (2 * log2 n))]. *)
val run : Rng.t -> ?beta:float -> ?partitions:int -> Graph.t -> t
