(** Streaming structured-event trace: the time-ordered complement to the
    aggregates of {!Obs}.

    Counters and histograms answer "how much in total"; the questions the
    paper's per-edge analysis turns on — how Algorithm 3's per-edge
    [LBC(2k-1, f)] verdicts and BFS-round counts evolve over the edge
    stream, how CONGEST rounds and message bits accrue over time — need
    the individual decisions in order.  This module records typed,
    timestamped events into a bounded ring buffer.  When the buffer
    overflows, the oldest events are overwritten and the loss is
    accounted ({!dropped}), so tracing a long run degrades gracefully
    instead of exhausting memory.

    Tracing is {e off by default} and one-branch-cheap when disabled:
    instrumented sites guard both the event allocation and the {!emit}
    call behind [if Obs_trace.enabled () then ...].  While enabled, emits
    are serialized by a mutex, so multi-domain producers (the parallel
    batched greedy) interleave safely.

    Two export formats:
    - the native [ftspan.trace.v1] JSON document ({!to_json}), a flat
      array of typed event records; and
    - the Chrome trace-event format ({!to_chrome}), loadable in
      [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}: spans
      and LBC calls become duration ([B]/[E]) events, network traffic
      becomes counter ([C]) tracks, per-edge verdicts become instant
      events.

    Span boundaries are captured automatically: {!start} installs an
    {!Obs.set_span_hook} observer, so every {!Obs.with_span} taken while
    tracing (and while {!Obs.enabled}) lands in the event log too. *)

(** One event payload.  Integer ids refer to the {e source} graph's edge
    numbering ([-1] when the caller had no id to attach). *)
type payload =
  | Span_begin of string  (** an {!Obs.with_span} scope opened *)
  | Span_end of string  (** ... and closed (exceptions included) *)
  | Lbc_begin of { edge : int; u : int; v : int; t : int; alpha : int }
      (** {!Lbc.decide} entered for candidate edge [edge] = [{u,v}] *)
  | Lbc_end of { edge : int; yes : bool; bfs_rounds : int; cut_size : int }
      (** ... and returned: verdict, BFS rounds spent, certificate size
          (0 on [No]) *)
  | Greedy_edge of { edge : int; kept : bool; weight : float }
      (** a greedy (poly/exp/batch) committed or rejected an edge *)
  | Congest_round of { round : int; messages : int; bits : int }
      (** one simulator round completed, with that round's traffic *)
  | Chaos_event of { kind : string; cid : int; src : int; dst : int }
      (** one injected network fault, recovery action or delivery-protocol
          event: [kind] is ["drop"], ["dup"], ["reorder"], ["spike"],
          ["retransmit"], ["ack"], ["dup_suppress"] or ["giveup"];
          [cid] is the affected message's causal id ([-1] when the fate
          has no message, e.g. ["crash"]/["recover"]); [src]/[dst] label
          the affected message *)
  | Msg_send of { cid : int; src : int; dst : int; at : float; bits : int }
      (** one physical transmission attempt of message [cid] on the wire
          [src -> dst] at simulated time/round [at].  Retransmits of the
          same application message emit further [Msg_send]s with the
          {e same} cid, so sends-per-cid counts delivery attempts *)
  | Msg_deliver of { cid : int; src : int; dst : int; at : float }
      (** message [cid] reached [dst]'s inbox at simulated time/round
          [at] (duplicate deliveries emit one event each) *)
  | Sync_pulse of { node : int; pulse : int; at : float }
      (** synchronizer [node] entered pulse number [pulse] at simulated
          time [at]; always kept by the sampler — the analyzer's
          critical-path reconstruction needs every pulse *)
  | Cluster_stats of { partition : int; clusters : int; max_depth : int }
      (** one partition of a padded decomposition converged *)
  | Phase of { name : string; index : int }
      (** a numbered algorithm phase boundary (DK11 iteration, greedy
          batch) *)
  | Counter_sample of { name : string; value : int }
      (** a point-in-time sample of a named counter (a Chrome counter
          track) *)
  | Mark of string  (** a free-form instant *)

type event = {
  seq : int;  (** 0-based global emission index (survives ring overflow) *)
  ts_s : float;  (** seconds since {!start} *)
  payload : payload;
}

(** [enabled ()] is [false] until {!start} and after {!stop}. *)
val enabled : unit -> bool

(** [mint_cid ()] draws the next causal message id from a process-global
    stream (dense, starting at 0, rewound by {!start}).  The simulators
    mint one per application message; ids are assigned in send order, so
    a seeded replay mints identical ids — the contract behind cid-keyed
    sampling and the analyzer's cross-run determinism. *)
val mint_cid : unit -> int

(** A head-sampling policy: keep each candidate event with probability
    [Rate r] ([0 < r <= 1]) or [One_in n] (probability [1/n]). *)
type sample = Rate of float | One_in of int

(** [start ?capacity ?sample ?sample_seed ()] clears the buffer, re-arms
    the clock, installs the {!Obs} span hook and enables collection.
    [capacity] (default [65536]) bounds the number of retained events;
    raises [Invalid_argument] if it is [< 1].

    With [sample], high-volume events draw a keep/drop verdict from a
    private stream seeded by [sample_seed] (default 1) — the chaos-plan
    discipline, so a sampled run replays bit-for-bit for a fixed seed.
    Always kept regardless of the draw: [Span_begin]/[Span_end],
    [Phase], [Mark], [Sync_pulse], and the rare fault-recovery chaos
    kinds (["crash"], ["recover"], ["giveup"]).  [Lbc_begin]/[Lbc_end]
    draw {e once per pair} (keyed on the edge id), so exported traces
    keep their begin/end balance.  Message events
    ([Msg_send]/[Msg_deliver]/[Chaos_event] with [cid >= 0]) draw once
    per {e causal id}: a kept message keeps its entire lifecycle —
    every retransmit, fate and delivery — and a sampled-out one
    vanishes wholesale, so per-message statistics computed from a
    sampled trace are unbiased.  Raises [Invalid_argument] on a rate
    outside (0, 1] or [One_in n] with [n < 1]. *)
val start : ?capacity:int -> ?sample:sample -> ?sample_seed:int -> unit -> unit

(** [stop ()] disables collection and removes the span hook.  The buffer
    is retained for export. *)
val stop : unit -> unit

(** [emit p] records [p] now.  A no-op while disabled — but hot paths
    should still test {!enabled} first so the payload is never
    allocated. *)
val emit : payload -> unit

(** [set_sink s] installs a streaming consumer called with every event as
    it is emitted (after it is stored; outside the buffer lock).  Sinks
    must not call {!emit}.  [None] removes it. *)
val set_sink : (event -> unit) option -> unit

(** [events ()] lists the retained events, oldest first.  After an
    overflow this is the {e suffix} of the sampled stream: [List.length]
    is [min (sampled ()) capacity].  [seq] values keep the global
    emission numbering, so they are non-contiguous while sampling. *)
val events : unit -> event list

(** [seen ()] counts every event emitted since {!start}, sampled-out
    ones included. *)
val seen : unit -> int

(** [sampled ()] counts the events the sampler admitted ([= seen ()]
    when not sampling). *)
val sampled : unit -> int

(** [dropped ()] counts events lost to the sampler or to ring overflow
    ([seen () - retained]). *)
val dropped : unit -> int

(** {1 Export} *)

type format = Native | Chrome

(** A parsed [--trace] argument. *)
type spec = {
  file : string;
  format : format;  (** default [Native] *)
  sample : sample option;  (** default [None] — keep everything *)
  sample_seed : int;  (** default [1] *)
}

(** [parse_spec s] parses the CLI's
    [FILE[,chrome|,native][,sample=R|,sample=1/N][,seed=N]] syntax.
    Option tokens are recognized from the right, so a comma inside the
    file name still parses; a malformed recognized option (e.g.
    [sample=nope], a rate outside (0, 1]) is an [Error] with a
    human-readable message. *)
val parse_spec : string -> (spec, string) result

(** [pp_spec ppf spec] prints the spec back in [parse_spec] syntax. *)
val pp_spec : Format.formatter -> spec -> unit

(** [to_json ()] is the native document:
    {v
    { "schema": "ftspan.trace.v1",
      "created_unix": ..., "seen": n, "sampled": s, "dropped": d,
      "events": [ { "seq": 0, "ts_s": 0.0012, "type": "lbc_begin",
                    "edge": 17, "u": 3, "v": 9, "t": 3, "alpha": 2 }, ... ] }
    v} *)
val to_json : unit -> Obs_json.t

(** [to_chrome ()] is a Chrome trace-event array: every element carries
    ["name"]/["ph"]/["ts"] (microseconds)/["pid"]/["tid"].  End events
    whose opening was lost to ring overflow are elided so the [B]/[E]
    nesting Perfetto reconstructs stays balanced. *)
val to_chrome : unit -> Obs_json.t

(** [write ~file fmt] writes the chosen export as indented JSON. *)
val write : file:string -> format -> unit
