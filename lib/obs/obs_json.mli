(** A minimal, dependency-free JSON tree: enough to serialize metric
    reports and to parse them back (the round-trip the obs tests and any
    downstream tooling rely on).  Not a general-purpose JSON library —
    no streaming, no number-precision preservation beyond OCaml floats.

    Serialization notes: floats print with round-trippable precision
    ([%.17g] trimmed), non-finite floats as [null] (JSON has no inf/nan),
    and strings escape control characters per RFC 8259. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:bool -> t -> string

(** [to_channel oc j] writes [j] (indented) followed by a newline. *)
val to_channel : out_channel -> t -> unit

(** [of_string s] parses one JSON value (surrounding whitespace allowed;
    trailing garbage is an error).  Numbers without [./e/E] parse as
    [Int], others as [Float]. *)
val of_string : string -> (t, string) result

(** {1 Accessors} — each returns [None] on a kind mismatch. *)

val member : string -> t -> t option
val to_int : t -> int option

(** [to_number j] accepts both [Int] and [Float]. *)
val to_number : t -> float option

val to_list : t -> t list option
val to_str : t -> string option
