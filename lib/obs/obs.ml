let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Monotonic clamp over the wall clock: the OS clock may step backwards
   (NTP); measurements must not.  The last reading is shared across
   domains, so it advances with a CAS loop — a plain ref would let two
   concurrent readers publish out-of-order values and one of them observe
   a backwards step. *)
let last_now = Atomic.make 0.

let rec clamp_now t =
  let last = Atomic.get last_now in
  if t <= last then last
  else if Atomic.compare_and_set last_now last t then t
  else clamp_now t

let now_s () = clamp_now (Unix.gettimeofday ())

(* --------------------------- domain shards --------------------------- *)

(* One lazily-registered slot per domain id, so the owning domain writes
   its shard with plain stores (no contention, no tearing of neighbours)
   and readers merge over all slots.  The slot array only grows; every
   structural write happens under one global registration mutex, and the
   array itself is republished through an Atomic so lock-free readers
   always see a well-formed (possibly slightly stale) version.

   Memory-model contract: a domain's shard contents are exact to any
   reader that synchronized with that domain after its last write — the
   Exec pool's region hand-off and Domain.join both qualify — and
   best-effort while the writer is still running. *)
module Shards = struct
  type 'a t = { slots : 'a option array Atomic.t; make : unit -> 'a }

  let registration = Mutex.create ()
  let create make = { slots = Atomic.make [||]; make }

  let register t id =
    Mutex.lock registration;
    let arr = Atomic.get t.slots in
    let arr =
      if id < Array.length arr then arr
      else begin
        let grown =
          Array.make (max (id + 1) ((2 * Array.length arr) + 4)) None
        in
        Array.blit arr 0 grown 0 (Array.length arr);
        Atomic.set t.slots grown;
        grown
      end
    in
    let s =
      match arr.(id) with
      | Some s -> s
      | None ->
          let s = t.make () in
          arr.(id) <- Some s;
          s
    in
    Mutex.unlock registration;
    s

  let get t =
    let id = (Domain.self () :> int) in
    let arr = Atomic.get t.slots in
    if id < Array.length arr then
      match Array.unsafe_get arr id with
      | Some s -> s
      | None -> register t id
    else register t id

  let iter f t =
    Array.iter (function Some s -> f s | None -> ()) (Atomic.get t.slots)

  let fold f acc t =
    Array.fold_left
      (fun acc -> function Some s -> f acc s | None -> acc)
      acc (Atomic.get t.slots)
end

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let name c = c.name
  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.value n)
  let incr c = add c 1
  let value c = Atomic.get c.value
  let reset c = Atomic.set c.value 0
end

module Timer = struct
  type shard = { mutable total : float; mutable count : int }
  type t = { name : string; shards : shard Shards.t }

  let name t = t.name
  let make name = { name; shards = Shards.create (fun () -> { total = 0.; count = 0 }) }

  let record t dt =
    if Atomic.get enabled_flag then begin
      let s = Shards.get t.shards in
      s.total <- s.total +. dt;
      s.count <- s.count + 1
    end

  let time t f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let t0 = now_s () in
      Fun.protect ~finally:(fun () -> record t (now_s () -. t0)) f
    end

  let total_s t = Shards.fold (fun acc s -> acc +. s.total) 0. t.shards
  let count t = Shards.fold (fun acc s -> acc + s.count) 0 t.shards

  let reset t =
    Shards.iter
      (fun s ->
        s.total <- 0.;
        s.count <- 0)
      t.shards
end

module Histogram = struct
  type scheme = Pow2 | Log_linear

  (* Pow2: upper bounds 2^0 .. 2^30, plus one overflow bucket — the
     right shape for the integer work counts (rounds, cut sizes, message
     bits) the repo histograms.  Values <= 1 land in bucket 0. *)
  let pow2_bounds = Array.init 31 (fun i -> Float.of_int (1 lsl i))

  (* Log_linear: 9 linear sub-buckets per decade over 1e-7 .. 9e3 (HDR
     style) plus one overflow bucket, so latency quantiles resolve to
     ~11% anywhere from 100ns to hours while using 100 buckets. *)
  let log_linear_bounds =
    Array.init (11 * 9) (fun i ->
        let decade = (i / 9) - 7 and unit = (i mod 9) + 1 in
        Float.of_int unit *. (10. ** Float.of_int decade))

  let bounds_of = function
    | Pow2 -> pow2_bounds
    | Log_linear -> log_linear_bounds

  let nbuckets_of scheme = Array.length (bounds_of scheme) + 1

  type shard = {
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    buckets : int array;
  }

  type t = { name : string; scheme : scheme; shards : shard Shards.t }

  let name h = h.name

  let make name scheme =
    {
      name;
      scheme;
      shards =
        Shards.create (fun () ->
            {
              count = 0;
              sum = 0.;
              min = 0.;
              max = 0.;
              buckets = Array.make (nbuckets_of scheme) 0;
            });
    }

  (* First bucket whose inclusive upper bound covers [v]; the last
     bucket is the overflow (+inf).  Binary search: both bound arrays
     are sorted and small. *)
  let bucket_of bounds v =
    let n = Array.length bounds in
    if v <= bounds.(0) then 0
    else if v > bounds.(n - 1) then n
    else begin
      let lo = ref 0 and hi = ref (n - 1) in
      (* invariant: bounds.(lo) < v <= bounds.(hi) *)
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if v <= bounds.(mid) then hi := mid else lo := mid
      done;
      !hi
    end

  let observe h v =
    if Atomic.get enabled_flag then begin
      let s = Shards.get h.shards in
      if s.count = 0 || v < s.min then s.min <- v;
      if s.count = 0 || v > s.max then s.max <- v;
      s.count <- s.count + 1;
      s.sum <- s.sum +. v;
      let b = bucket_of (bounds_of h.scheme) v in
      s.buckets.(b) <- s.buckets.(b) + 1
    end

  let observe_int h v = observe h (Float.of_int v)

  (* A merged copy across shards — the single source of truth for every
     aggregate read. *)
  let merged h =
    let acc =
      {
        count = 0;
        sum = 0.;
        min = 0.;
        max = 0.;
        buckets = Array.make (nbuckets_of h.scheme) 0;
      }
    in
    Shards.iter
      (fun s ->
        if s.count > 0 then begin
          if acc.count = 0 || s.min < acc.min then acc.min <- s.min;
          if acc.count = 0 || s.max > acc.max then acc.max <- s.max;
          acc.count <- acc.count + s.count;
          acc.sum <- acc.sum +. s.sum;
          Array.iteri
            (fun i c -> acc.buckets.(i) <- acc.buckets.(i) + c)
            s.buckets
        end)
      h.shards;
    acc

  let count h = Shards.fold (fun acc s -> acc + s.count) 0 h.shards
  let sum h = Shards.fold (fun acc s -> acc +. s.sum) 0. h.shards

  (* Quantile estimate over a merged view: find the bucket holding the
     rank-th observation and report its upper bound, clamped into the
     observed [min, max] envelope (which makes the one-sample and
     overflow-bucket answers exact). *)
  let quantile_of_merged bounds m q =
    if m.count = 0 then 0.
    else begin
      let rank =
        let r = int_of_float (Float.ceil (q *. float_of_int m.count)) in
        if r < 1 then 1 else if r > m.count then m.count else r
      in
      let nb = Array.length m.buckets in
      let est = ref m.max in
      let cum = ref 0 in
      (try
         for i = 0 to nb - 1 do
           cum := !cum + m.buckets.(i);
           if !cum >= rank then begin
             est := (if i < Array.length bounds then bounds.(i) else m.max);
             raise Exit
           end
         done
       with Exit -> ());
      Float.min m.max (Float.max m.min !est)
    end

  let quantile h q =
    if not (Float.is_finite q) || q < 0. || q > 1. then
      invalid_arg "Obs.Histogram.quantile: q must be in [0,1]";
    quantile_of_merged (bounds_of h.scheme) (merged h) q

  let reset h =
    Shards.iter
      (fun s ->
        s.count <- 0;
        s.sum <- 0.;
        s.min <- 0.;
        s.max <- 0.;
        Array.fill s.buckets 0 (Array.length s.buckets) 0)
      h.shards
end

module Gauge = struct
  (* A level, not a rate: each domain tracks its own contribution in a
     private shard ([set] overwrites it, [add] adjusts it) and the
     merged value is the sum of shards — the natural reading for
     queue-depth style gauges where each domain owns part of the
     level. *)
  type shard = { mutable v : int }
  type t = { name : string; shards : shard Shards.t }

  let name g = g.name
  let make name = { name; shards = Shards.create (fun () -> { v = 0 }) }

  let set g n =
    if Atomic.get enabled_flag then (Shards.get g.shards).v <- n

  let add g n =
    if Atomic.get enabled_flag then begin
      let s = Shards.get g.shards in
      s.v <- s.v + n
    end

  let value g = Shards.fold (fun acc s -> acc + s.v) 0 g.shards
  let reset g = Shards.iter (fun s -> s.v <- 0) g.shards
end

(* ------------------------------ spans ------------------------------- *)

(* Spans are accumulated directly into a merged tree: one node per
   distinct (parent path, name), so memory is bounded by the number of
   distinct span paths rather than the number of events.  The tree and
   the stack belong to the main domain, but [registry_mutex] guards the
   structural updates so a snapshot taken from another domain (the
   heartbeat reporter) never races a Hashtbl resize. *)
type span_node = {
  sp_name : string;
  mutable sp_count : int;
  mutable sp_total : float;
  sp_children : (string, span_node) Hashtbl.t;
}

(* Guards the metric registry and the span tree; see [snapshot]. *)
let registry_mutex = Mutex.create ()

let locked f =
  Mutex.lock registry_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_mutex) f

let make_span_node name =
  { sp_name = name; sp_count = 0; sp_total = 0.; sp_children = Hashtbl.create 4 }

let span_roots : (string, span_node) Hashtbl.t = Hashtbl.create 8
let span_stack : span_node list ref = ref []
let span_hook : ([ `Begin | `End ] -> string -> unit) option ref = ref None
let set_span_hook h = span_hook := h
let run_hook phase name =
  match !span_hook with Some h -> h phase name | None -> ()

let find_span_node table name =
  match Hashtbl.find_opt table name with
  | Some n -> n
  | None ->
      let n = make_span_node name in
      Hashtbl.add table name n;
      n

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let node =
      locked (fun () ->
          let table =
            match !span_stack with
            | [] -> span_roots
            | top :: _ -> top.sp_children
          in
          let node = find_span_node table name in
          span_stack := node :: !span_stack;
          node)
    in
    run_hook `Begin name;
    let t0 = now_s () in
    Fun.protect
      ~finally:(fun () ->
        let dt = now_s () -. t0 in
        locked (fun () ->
            node.sp_count <- node.sp_count + 1;
            node.sp_total <- node.sp_total +. dt;
            match !span_stack with
            | top :: rest when top == node -> span_stack := rest
            | _ -> (* a reset () ran inside the span; the stack is gone *) ());
        run_hook `End name)
      f
  end

(* ----------------------------- registry ----------------------------- *)

type metric =
  | M_counter of Counter.t
  | M_timer of Timer.t
  | M_histogram of Histogram.t
  | M_gauge of Gauge.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make extract kind =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match extract m with
          | Some x -> x
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs: %S is already registered as a different kind (wanted %s)"
                   name kind))
      | None ->
          let x, m = make () in
          Hashtbl.add registry name m;
          x)

let counter name =
  register name
    (fun () ->
      let c = { Counter.name; value = Atomic.make 0 } in
      (c, M_counter c))
    (function M_counter c -> Some c | _ -> None)
    "counter"

let timer name =
  register name
    (fun () ->
      let t = Timer.make name in
      (t, M_timer t))
    (function M_timer t -> Some t | _ -> None)
    "timer"

let gauge name =
  register name
    (fun () ->
      let g = Gauge.make name in
      (g, M_gauge g))
    (function M_gauge g -> Some g | _ -> None)
    "gauge"

let histogram_scheme scheme kind name =
  register name
    (fun () ->
      let h = Histogram.make name scheme in
      (h, M_histogram h))
    (function
      | M_histogram h when h.Histogram.scheme = scheme -> Some h
      | _ -> None)
    kind

let histogram name = histogram_scheme Histogram.Pow2 "pow2 histogram" name

let histogram_log name =
  histogram_scheme Histogram.Log_linear "log-linear histogram" name

(* ----------------------------- snapshot ----------------------------- *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float option * int) list;
  h_quantiles : (string * float) list;
}

type span_view = {
  s_name : string;
  s_count : int;
  s_total_s : float;
  s_children : span_view list;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * int) list;
  timers : (string * (int * float)) list;
  histograms : (string * histogram_view) list;
  spans : span_view list;
}

let quantile_points = [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ]

let view_histogram (h : Histogram.t) =
  let m = Histogram.merged h in
  let bounds = Histogram.bounds_of h.Histogram.scheme in
  let buckets = ref [] in
  for i = Array.length m.Histogram.buckets - 1 downto 0 do
    if m.Histogram.buckets.(i) > 0 then begin
      let bound =
        if i < Array.length bounds then Some bounds.(i) else None
      in
      buckets := (bound, m.Histogram.buckets.(i)) :: !buckets
    end
  done;
  {
    h_count = m.Histogram.count;
    h_sum = m.Histogram.sum;
    h_min = (if m.Histogram.count = 0 then 0. else m.Histogram.min);
    h_max = (if m.Histogram.count = 0 then 0. else m.Histogram.max);
    h_buckets = !buckets;
    h_quantiles =
      (if m.Histogram.count = 0 then []
       else
         List.map
           (fun (label, q) -> (label, Histogram.quantile_of_merged bounds m q))
           quantile_points);
  }

let rec view_span (n : span_node) =
  {
    s_name = n.sp_name;
    s_count = n.sp_count;
    s_total_s = n.sp_total;
    s_children = view_span_table n.sp_children;
  }

and view_span_table table =
  Hashtbl.fold (fun _ n acc -> view_span n :: acc) table []
  |> List.filter (fun s -> s.s_count > 0 || s.s_children <> [])
  |> List.sort (fun a b -> compare a.s_name b.s_name)

let snapshot () =
  locked (fun () ->
      let counters = ref []
      and gauges = ref []
      and timers = ref []
      and histograms = ref [] in
      Hashtbl.iter
        (fun name -> function
          | M_counter c -> counters := (name, Counter.value c) :: !counters
          | M_gauge g -> gauges := (name, Gauge.value g) :: !gauges
          | M_timer t ->
              timers := (name, (Timer.count t, Timer.total_s t)) :: !timers
          | M_histogram h -> histograms := (name, view_histogram h) :: !histograms)
        registry;
      let by_name (a, _) (b, _) = compare (a : string) b in
      {
        counters = List.sort by_name !counters;
        gauges = List.sort by_name !gauges;
        timers = List.sort by_name !timers;
        histograms = List.sort by_name !histograms;
        spans = view_span_table span_roots;
      })

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ -> function
          | M_counter c -> Counter.reset c
          | M_gauge g -> Gauge.reset g
          | M_timer t -> Timer.reset t
          | M_histogram h -> Histogram.reset h)
        registry;
      Hashtbl.reset span_roots;
      span_stack := [])
