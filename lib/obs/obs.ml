let enabled_flag = Atomic.make true
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

(* Monotonic clamp over the wall clock: the OS clock may step backwards
   (NTP); measurements must not. *)
let last_now = ref 0.
let now_s () =
  let t = Unix.gettimeofday () in
  if t > !last_now then last_now := t;
  !last_now

module Counter = struct
  type t = { name : string; value : int Atomic.t }

  let name c = c.name
  let add c n = if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.value n)
  let incr c = add c 1
  let value c = Atomic.get c.value
  let reset c = Atomic.set c.value 0
end

module Timer = struct
  type t = { name : string; mutable total : float; mutable count : int }

  let name t = t.name

  let record t dt =
    if Atomic.get enabled_flag then begin
      t.total <- t.total +. dt;
      t.count <- t.count + 1
    end

  let time t f =
    if not (Atomic.get enabled_flag) then f ()
    else begin
      let t0 = now_s () in
      Fun.protect ~finally:(fun () -> record t (now_s () -. t0)) f
    end

  let total_s t = t.total
  let count t = t.count
  let reset t = t.total <- 0.; t.count <- 0
end

module Histogram = struct
  (* Bucket upper bounds 2^0 .. 2^30, plus one overflow bucket.  Values
     <= 1 land in bucket 0; the layout matches the integer work counts
     (rounds, cut sizes, message bits) the repo histograms. *)
  let bounds = Array.init 31 (fun i -> Float.of_int (1 lsl i))
  let nbuckets = Array.length bounds + 1

  type t = {
    name : string;
    mutable count : int;
    mutable sum : float;
    mutable min : float;
    mutable max : float;
    buckets : int array;
  }

  let name h = h.name

  let bucket_of v =
    let rec go i = if i >= Array.length bounds || v <= bounds.(i) then i else go (i + 1) in
    go 0

  let observe h v =
    if Atomic.get enabled_flag then begin
      if h.count = 0 || v < h.min then h.min <- v;
      if h.count = 0 || v > h.max then h.max <- v;
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      let b = bucket_of v in
      h.buckets.(b) <- h.buckets.(b) + 1
    end

  let observe_int h v = observe h (Float.of_int v)
  let count h = h.count
  let sum h = h.sum

  let reset h =
    h.count <- 0;
    h.sum <- 0.;
    h.min <- 0.;
    h.max <- 0.;
    Array.fill h.buckets 0 nbuckets 0
end

(* ------------------------------ spans ------------------------------- *)

(* Spans are accumulated directly into a merged tree: one node per
   distinct (parent path, name), so memory is bounded by the number of
   distinct span paths rather than the number of events. *)
type span_node = {
  sp_name : string;
  mutable sp_count : int;
  mutable sp_total : float;
  sp_children : (string, span_node) Hashtbl.t;
}

let make_span_node name =
  { sp_name = name; sp_count = 0; sp_total = 0.; sp_children = Hashtbl.create 4 }

let span_roots : (string, span_node) Hashtbl.t = Hashtbl.create 8
let span_stack : span_node list ref = ref []
let span_hook : ([ `Begin | `End ] -> string -> unit) option ref = ref None
let set_span_hook h = span_hook := h
let run_hook phase name =
  match !span_hook with Some h -> h phase name | None -> ()

let find_span_node table name =
  match Hashtbl.find_opt table name with
  | Some n -> n
  | None ->
      let n = make_span_node name in
      Hashtbl.add table name n;
      n

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let table =
      match !span_stack with [] -> span_roots | top :: _ -> top.sp_children
    in
    let node = find_span_node table name in
    span_stack := node :: !span_stack;
    run_hook `Begin name;
    let t0 = now_s () in
    Fun.protect
      ~finally:(fun () ->
        node.sp_count <- node.sp_count + 1;
        node.sp_total <- node.sp_total +. (now_s () -. t0);
        run_hook `End name;
        match !span_stack with
        | top :: rest when top == node -> span_stack := rest
        | _ -> (* a reset () ran inside the span; the stack is gone *) ())
      f
  end

(* ----------------------------- registry ----------------------------- *)

type metric =
  | M_counter of Counter.t
  | M_timer of Timer.t
  | M_histogram of Histogram.t

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let register name make extract kind =
  match Hashtbl.find_opt registry name with
  | Some m -> (
      match extract m with
      | Some x -> x
      | None ->
          invalid_arg
            (Printf.sprintf "Obs: %S is already registered as a different kind (wanted %s)"
               name kind))
  | None ->
      let x, m = make () in
      Hashtbl.add registry name m;
      x

let counter name =
  register name
    (fun () ->
      let c = { Counter.name; value = Atomic.make 0 } in
      (c, M_counter c))
    (function M_counter c -> Some c | _ -> None)
    "counter"

let timer name =
  register name
    (fun () ->
      let t = { Timer.name; total = 0.; count = 0 } in
      (t, M_timer t))
    (function M_timer t -> Some t | _ -> None)
    "timer"

let histogram name =
  register name
    (fun () ->
      let h =
        { Histogram.name; count = 0; sum = 0.; min = 0.; max = 0.;
          buckets = Array.make Histogram.nbuckets 0 }
      in
      (h, M_histogram h))
    (function M_histogram h -> Some h | _ -> None)
    "histogram"

(* ----------------------------- snapshot ----------------------------- *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float option * int) list;
}

type span_view = {
  s_name : string;
  s_count : int;
  s_total_s : float;
  s_children : span_view list;
}

type snapshot = {
  counters : (string * int) list;
  timers : (string * (int * float)) list;
  histograms : (string * histogram_view) list;
  spans : span_view list;
}

let view_histogram (h : Histogram.t) =
  let buckets = ref [] in
  for i = Histogram.nbuckets - 1 downto 0 do
    if h.Histogram.buckets.(i) > 0 then begin
      let bound =
        if i < Array.length Histogram.bounds then Some Histogram.bounds.(i)
        else None
      in
      buckets := (bound, h.Histogram.buckets.(i)) :: !buckets
    end
  done;
  {
    h_count = h.Histogram.count;
    h_sum = h.Histogram.sum;
    h_min = (if h.Histogram.count = 0 then 0. else h.Histogram.min);
    h_max = (if h.Histogram.count = 0 then 0. else h.Histogram.max);
    h_buckets = !buckets;
  }

let rec view_span (n : span_node) =
  {
    s_name = n.sp_name;
    s_count = n.sp_count;
    s_total_s = n.sp_total;
    s_children = view_span_table n.sp_children;
  }

and view_span_table table =
  Hashtbl.fold (fun _ n acc -> view_span n :: acc) table []
  |> List.filter (fun s -> s.s_count > 0 || s.s_children <> [])
  |> List.sort (fun a b -> compare a.s_name b.s_name)

let snapshot () =
  let counters = ref [] and timers = ref [] and histograms = ref [] in
  Hashtbl.iter
    (fun name -> function
      | M_counter c -> counters := (name, Counter.value c) :: !counters
      | M_timer t -> timers := (name, (Timer.count t, Timer.total_s t)) :: !timers
      | M_histogram h -> histograms := (name, view_histogram h) :: !histograms)
    registry;
  let by_name (a, _) (b, _) = compare (a : string) b in
  {
    counters = List.sort by_name !counters;
    timers = List.sort by_name !timers;
    histograms = List.sort by_name !histograms;
    spans = view_span_table span_roots;
  }

let reset () =
  Hashtbl.iter
    (fun _ -> function
      | M_counter c -> Counter.reset c
      | M_timer t -> Timer.reset t
      | M_histogram h -> Histogram.reset h)
    registry;
  Hashtbl.reset span_roots;
  span_stack := []
