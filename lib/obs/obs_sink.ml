type entry = { id : string; wall_s : float; snap : Obs.snapshot }

(* ------------------------------ pretty ------------------------------ *)

let pp ppf (snap : Obs.snapshot) =
  let open Format in
  fprintf ppf "@[<v>";
  if snap.Obs.counters <> [] then begin
    fprintf ppf "counters:@,";
    List.iter
      (fun (name, v) -> fprintf ppf "  %-32s %12d@," name v)
      snap.Obs.counters
  end;
  if snap.Obs.gauges <> [] then begin
    fprintf ppf "gauges:@,";
    List.iter
      (fun (name, v) -> fprintf ppf "  %-32s %12d@," name v)
      snap.Obs.gauges
  end;
  if snap.Obs.timers <> [] then begin
    fprintf ppf "timers:@,";
    List.iter
      (fun (name, (count, total)) ->
        fprintf ppf "  %-32s %10.4f s over %d run%s@," name total count
          (if count = 1 then "" else "s"))
      snap.Obs.timers
  end;
  if snap.Obs.histograms <> [] then begin
    fprintf ppf "histograms:@,";
    List.iter
      (fun (name, h) ->
        let mean =
          if h.Obs.h_count = 0 then 0. else h.Obs.h_sum /. float_of_int h.Obs.h_count
        in
        fprintf ppf "  %-32s n=%d mean=%.2f min=%g max=%g" name h.Obs.h_count
          mean h.Obs.h_min h.Obs.h_max;
        (match
           ( List.assoc_opt "p50" h.Obs.h_quantiles,
             List.assoc_opt "p99" h.Obs.h_quantiles )
         with
        | Some p50, Some p99 -> fprintf ppf " p50=%g p99=%g" p50 p99
        | _ -> ());
        fprintf ppf "@,")
      snap.Obs.histograms
  end;
  if snap.Obs.spans <> [] then begin
    fprintf ppf "spans:@,";
    let rec pp_span indent s =
      fprintf ppf "  %s%-*s %10.4f s over %d run%s@," indent
        (max 1 (30 - String.length indent))
        s.Obs.s_name s.Obs.s_total_s s.Obs.s_count
        (if s.Obs.s_count = 1 then "" else "s");
      List.iter (pp_span (indent ^ "  ")) s.Obs.s_children
    in
    List.iter (pp_span "") snap.Obs.spans
  end;
  fprintf ppf "@]"

(* ------------------------------- json ------------------------------- *)

let json_of_histogram (h : Obs.histogram_view) =
  Obs_json.Obj
    [
      ("count", Obs_json.Int h.Obs.h_count);
      ("sum", Obs_json.Float h.Obs.h_sum);
      ("min", Obs_json.Float h.Obs.h_min);
      ("max", Obs_json.Float h.Obs.h_max);
      ( "quantiles",
        Obs_json.Obj
          (List.map
             (fun (label, v) -> (label, Obs_json.Float v))
             h.Obs.h_quantiles) );
      ( "buckets",
        Obs_json.List
          (List.map
             (fun (bound, count) ->
               Obs_json.Obj
                 [
                   ( "le",
                     match bound with
                     | Some b -> Obs_json.Float b
                     | None -> Obs_json.Null );
                   ("count", Obs_json.Int count);
                 ])
             h.Obs.h_buckets) );
    ]

let rec json_of_span (s : Obs.span_view) =
  Obs_json.Obj
    [
      ("name", Obs_json.String s.Obs.s_name);
      ("count", Obs_json.Int s.Obs.s_count);
      ("total_s", Obs_json.Float s.Obs.s_total_s);
      ("children", Obs_json.List (List.map json_of_span s.Obs.s_children));
    ]

let json_of_snapshot (snap : Obs.snapshot) =
  (* Gauges ride in the "counters" object: their names carry the
     "gauge." prefix, so consumers that care (the bench gate) can carve
     them out by name while everything else sees one flat numbers
     table. *)
  let numbers =
    List.sort
      (fun (a, _) (b, _) -> compare (a : string) b)
      (snap.Obs.counters @ snap.Obs.gauges)
  in
  Obs_json.Obj
    [
      ( "counters",
        Obs_json.Obj
          (List.map (fun (name, v) -> (name, Obs_json.Int v)) numbers) );
      ( "timers",
        Obs_json.Obj
          (List.map
             (fun (name, (count, total)) ->
               ( name,
                 Obs_json.Obj
                   [
                     ("count", Obs_json.Int count);
                     ("total_s", Obs_json.Float total);
                   ] ))
             snap.Obs.timers) );
      ( "histograms",
        Obs_json.Obj
          (List.map
             (fun (name, h) -> (name, json_of_histogram h))
             snap.Obs.histograms) );
      ("spans", Obs_json.List (List.map json_of_span snap.Obs.spans));
    ]

let json_of_entry e =
  match json_of_snapshot e.snap with
  | Obs_json.Obj fields ->
      Obs_json.Obj
        (("id", Obs_json.String e.id)
        :: ("wall_time_s", Obs_json.Float e.wall_s)
        :: fields)
  | _ -> assert false

let json_of_report ?(created = Unix.time ()) entries =
  Obs_json.Obj
    [
      ("schema", Obs_json.String "ftspan.metrics.v1");
      ("created_unix", Obs_json.Float created);
      ("entries", Obs_json.List (List.map json_of_entry entries));
    ]

let write_report ?created ~file entries =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs_json.to_channel oc (json_of_report ?created entries))
