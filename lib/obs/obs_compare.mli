(** Regression comparison of two [ftspan.metrics.v1] reports (see
    {!Obs_sink}): a checked-in baseline against a fresh run.

    Entries are matched by id, then the wall time and every counter are
    judged against per-metric tolerances.  Counters are deterministic
    given the repo's fixed seeds, so their tolerance is tight; wall
    times vary across machines, so theirs is loose and carries an
    absolute floor (sub-noise timings never fail).  Improvements never
    fail — the gate is one-sided.

    One carve-out: [pool.*] counters (the {!Exec} domain-pool's tasks,
    steals, and per-worker busy shares) are scheduling-dependent — they
    vary with the jobs count and the steal order — so the comparison
    skips them entirely, in both documents.  The chaos fault series
    ([net.drops], [net.dups], [net.reorders], [net.retries],
    [net.giveups]) are skipped for the analogous reason: they count
    injected faults and the retransmit protocol's reactions, which move
    with any fault-plan or backoff-policy change.  Everything else on a
    parallel or lossy entry (e.g. [greedy-parallel]'s [lbc.*] series)
    stays under the tight counter tolerance, which is exactly the
    determinism contract of [Exec.parallel_for] and of the reliable
    delivery layer.

    [bench/compare.exe] is the CLI over this module; the [@bench-compare]
    and [@obs-check] dune aliases run it against [BENCH_BASELINE.json]. *)

type verdict =
  | Within  (** inside tolerance *)
  | Improved  (** strictly below the baseline — never a failure *)
  | Regression  (** above the allowed limit *)
  | Missing  (** present in the baseline, absent from the run *)
  | New  (** absent from the baseline — informational only *)

type finding = {
  entry : string;  (** report entry id, e.g. ["smoke-lbc"] *)
  metric : string;  (** ["wall_time_s"], a counter name, or ["(entry)"] *)
  base_v : float option;
  run_v : float option;
  limit : float;  (** max allowed run value ([nan] when not applicable) *)
  verdict : verdict;
}

type tolerances = {
  wall_rel : float;  (** allowed relative increase of [wall_time_s] *)
  wall_abs : float;  (** absolute wall slack in seconds, added on top *)
  counter_rel : float;  (** allowed relative increase of any counter *)
}

(** Tight on counters (deterministic), loose on wall time:
    [{ wall_rel = 1.5; wall_abs = 0.25; counter_rel = 0.25 }]. *)
val default_tolerances : tolerances

(** [scale s t] multiplies every slack in [t] by [s] (the [--slack]
    flag; [@obs-check] uses [scale 2.]). *)
val scale : float -> tolerances -> tolerances

(** The single source of truth for the gate's carve-outs: every metric
    whose name starts with one of these prefixes is skipped by
    {!compare_reports}, in both documents.  Currently the [pool.]
    scheduling series and the chaos [net.*] fault series.
    [bench/compare.exe] prints which of these actually matched. *)
val excluded_prefixes : string list

(** [scheduling_dependent name] is true iff [name] matches one of
    {!excluded_prefixes}. *)
val scheduling_dependent : string -> bool

(** [compare_reports ?tol base run] matches the two documents (baseline
    first) and returns one finding per compared metric, grouped by
    entry.  [Error] on a malformed document or a schema tag other than
    [ftspan.metrics.v1]. *)
val compare_reports :
  ?tol:tolerances -> Obs_json.t -> Obs_json.t -> (finding list, string) result

(** [regressed fs] is true iff any finding is a {!Regression} or
    {!Missing} — the gate's exit condition. *)
val regressed : finding list -> bool

(** [pp_findings ppf fs] renders the delta table. *)
val pp_findings : Format.formatter -> finding list -> unit
