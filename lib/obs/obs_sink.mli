(** Sinks for {!Obs.snapshot}: a human-readable pretty-printer and a JSON
    emitter producing the repo's metrics-report schema.

    The schema ([ftspan.metrics.v1]) is shared by [bench/main.exe --json]
    and [ftspan build --metrics=json]:

    {v
    { "schema": "ftspan.metrics.v1",
      "created_unix": 1720000000.0,
      "entries": [
        { "id": "e2",
          "wall_time_s": 1.234,
          "counters":   { "lbc.calls": 12345, ... },
          "timers":     { "name": { "count": 3, "total_s": 0.5 }, ... },
          "histograms": { "name": { "count": 9, "sum": 41.0,
                                    "min": 1.0, "max": 16.0,
                                    "buckets": [ { "le": 1.0, "count": 2 },
                                                 { "le": null, "count": 1 } ] } },
          "spans": [ { "name": "poly_greedy.build", "count": 5,
                       "total_s": 1.1, "children": [ ... ] } ] } ] }
    v}

    A bucket's ["le"] is its inclusive upper bound; [null] marks the
    overflow bucket.  The third sink — the null sink — is not here: it is
    [Obs.set_enabled false], which stops collection at the source. *)

(** One measured unit of work (an experiment, a CLI invocation). *)
type entry = { id : string; wall_s : float; snap : Obs.snapshot }

(** [pp ppf snap] renders a snapshot as an indented human-readable
    listing (counters, timers, histograms, span tree). *)
val pp : Format.formatter -> Obs.snapshot -> unit

(** [json_of_snapshot snap] is the ["counters"/"timers"/"histograms"/
    "spans"] sub-object of the schema above. *)
val json_of_snapshot : Obs.snapshot -> Obs_json.t

(** [json_of_report ?created entries] is a full [ftspan.metrics.v1]
    document; [created] is seconds since the epoch and defaults to
    [Unix.time ()] — the one timestamp source every producer (CLI,
    bench) shares, so reports are identically shaped no matter who
    emits them. *)
val json_of_report : ?created:float -> entry list -> Obs_json.t

(** [write_report ?created ~file entries] writes the indented JSON
    document to [file]. *)
val write_report : ?created:float -> file:string -> entry list -> unit
