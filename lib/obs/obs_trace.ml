type payload =
  | Span_begin of string
  | Span_end of string
  | Lbc_begin of { edge : int; u : int; v : int; t : int; alpha : int }
  | Lbc_end of { edge : int; yes : bool; bfs_rounds : int; cut_size : int }
  | Greedy_edge of { edge : int; kept : bool; weight : float }
  | Congest_round of { round : int; messages : int; bits : int }
  | Chaos_event of { kind : string; cid : int; src : int; dst : int }
  | Msg_send of { cid : int; src : int; dst : int; at : float; bits : int }
  | Msg_deliver of { cid : int; src : int; dst : int; at : float }
  | Sync_pulse of { node : int; pulse : int; at : float }
  | Cluster_stats of { partition : int; clusters : int; max_depth : int }
  | Phase of { name : string; index : int }
  | Counter_sample of { name : string; value : int }
  | Mark of string

type event = { seq : int; ts_s : float; payload : payload }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let default_capacity = 1 lsl 16

(* Causal ids are minted in emission order from one process-global
   stream, so a seeded replay (same sends in the same order) assigns the
   same ids — the property the analyzer's cross-run determinism and the
   cid-keyed sampler both rely on.  {!start} rewinds the stream. *)
let cid_counter = Atomic.make 0
let mint_cid () = Atomic.fetch_and_add cid_counter 1

(* ----------------------------- sampling ----------------------------- *)

type sample = Rate of float | One_in of int

let default_sample_seed = 1

(* Head sampling (the Dapper family's cheap variant): each candidate
   event draws once from a private seeded stream, so a sampled run
   replays bit-for-bit for a fixed seed — the same discipline as the
   chaos fault streams.  Structural events (spans, phases, marks) and
   rare fault-recovery events always pass; LBC begin/end draw once per
   pair so exported traces keep their B/E balance. *)
type sampler = {
  smp_keep : unit -> bool;  (* one draw from the private stream *)
  smp_lbc : (int, bool) Hashtbl.t;  (* pending Lbc_begin verdicts by edge *)
  smp_cid : (int, bool) Hashtbl.t;  (* message-lifecycle verdicts by cid *)
}

let keep_always = function
  | Span_begin _ | Span_end _ | Phase _ | Mark _ | Sync_pulse _ -> true
  | Chaos_event { kind = "crash" | "recover" | "giveup"; _ } -> true
  | _ -> false

(* Called under [lock].  Message events are pair-sampled by causal id:
   the first event of a lifecycle draws the verdict and every later
   event with the same cid (deliveries, chaos fates, retransmits,
   acks) reuses it — a kept message keeps its whole life, a dropped one
   vanishes entirely.  Verdicts are retained for the run: a lifecycle
   has no single closing event. *)
let admit smp payload =
  let by_cid cid =
    if cid < 0 then smp.smp_keep ()
    else
      match Hashtbl.find_opt smp.smp_cid cid with
      | Some keep -> keep
      | None ->
          let keep = smp.smp_keep () in
          Hashtbl.add smp.smp_cid cid keep;
          keep
  in
  keep_always payload
  ||
  match payload with
  | Lbc_begin { edge; _ } ->
      let keep = smp.smp_keep () in
      Hashtbl.add smp.smp_lbc edge keep;
      keep
  | Lbc_end { edge; _ } -> (
      match Hashtbl.find_opt smp.smp_lbc edge with
      | Some keep ->
          Hashtbl.remove smp.smp_lbc edge;
          keep
      | None -> smp.smp_keep ())
  | Msg_send { cid; _ } | Msg_deliver { cid; _ } | Chaos_event { cid; _ } ->
      by_cid cid
  | _ -> smp.smp_keep ()

(* Ring state, guarded by [lock] (multi-domain producers: the parallel
   batched greedy emits from worker domains).  [seen_count] numbers every
   emission; [stored_count] counts the ones the sampler admitted, and
   indexes the ring, so sampled-out events leave no holes. *)
let lock = Mutex.create ()
let placeholder = { seq = -1; ts_s = 0.; payload = Mark "" }
let buf = ref (Array.make 0 placeholder)
let seen_count = ref 0
let stored_count = ref 0
let origin = ref 0.
let sink : (event -> unit) option ref = ref None
let sampler : sampler option ref = ref None

let emit payload =
  if Atomic.get enabled_flag then begin
    Mutex.lock lock;
    let seq = !seen_count in
    seen_count := seq + 1;
    let keep =
      match !sampler with None -> true | Some smp -> admit smp payload
    in
    let consumer =
      if not keep then None
      else begin
        let ev = { seq; ts_s = Obs.now_s () -. !origin; payload } in
        let cap = Array.length !buf in
        if cap > 0 then !buf.(!stored_count mod cap) <- ev;
        stored_count := !stored_count + 1;
        match !sink with Some f -> Some (f, ev) | None -> None
      end
    in
    Mutex.unlock lock;
    match consumer with Some (f, ev) -> f ev | None -> ()
  end

let span_hook phase name =
  emit (match phase with `Begin -> Span_begin name | `End -> Span_end name)

let start ?(capacity = default_capacity) ?sample
    ?(sample_seed = default_sample_seed) () =
  if capacity < 1 then invalid_arg "Obs_trace.start: capacity must be >= 1";
  (match sample with
  | Some (Rate r) when not (r > 0. && r <= 1.) ->
      invalid_arg "Obs_trace.start: sample rate must be in (0, 1]"
  | Some (One_in n) when n < 1 ->
      invalid_arg "Obs_trace.start: sample 1/N needs N >= 1"
  | _ -> ());
  Mutex.lock lock;
  buf := Array.make capacity placeholder;
  seen_count := 0;
  stored_count := 0;
  origin := Obs.now_s ();
  Atomic.set cid_counter 0;
  sampler :=
    (match sample with
    | None | Some (One_in 1) -> None
    | Some (Rate r) when r >= 1. -> None
    | Some s ->
        let st = Random.State.make [| 0x5bd1e995; sample_seed |] in
        let keep =
          match s with
          | Rate r -> fun () -> Random.State.float st 1. < r
          | One_in n -> fun () -> Random.State.int st n = 0
        in
        Some
          {
            smp_keep = keep;
            smp_lbc = Hashtbl.create 64;
            smp_cid = Hashtbl.create 256;
          });
  Mutex.unlock lock;
  Obs.set_span_hook (Some span_hook);
  Atomic.set enabled_flag true

let stop () =
  Atomic.set enabled_flag false;
  Obs.set_span_hook None

let set_sink s =
  Mutex.lock lock;
  sink := s;
  Mutex.unlock lock

let seen () = !seen_count
let sampled () = !stored_count
let retained () = min !stored_count (Array.length !buf)
let dropped () = !seen_count - retained ()

let events () =
  Mutex.lock lock;
  let cap = Array.length !buf in
  let kept = min !stored_count cap in
  let first = !stored_count - kept in
  let out = List.init kept (fun i -> !buf.((first + i) mod cap)) in
  Mutex.unlock lock;
  out

(* ------------------------------ export ------------------------------ *)

type format = Native | Chrome

type spec = {
  file : string;
  format : format;
  sample : sample option;
  sample_seed : int;
}

let parse_sample s =
  match String.index_opt s '/' with
  | Some i -> (
      let num = String.sub s 0 i in
      let den = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt num, int_of_string_opt den) with
      | Some 1, Some n when n >= 1 -> Ok (One_in n)
      | _ ->
          Error
            (Printf.sprintf "bad trace sample %S (want a rate in (0,1] or 1/N)"
               s))
  | None -> (
      match float_of_string_opt s with
      | Some r when r > 0. && r <= 1. -> Ok (Rate r)
      | _ ->
          Error
            (Printf.sprintf "bad trace sample %S (want a rate in (0,1] or 1/N)"
               s))

(* Option tokens are recognized from the right end of the spec, so a
   comma in the file name still parses: everything left of the last
   run of recognized tokens is the file. *)
let parse_spec s =
  let is_opt tok =
    tok = "chrome" || tok = "native"
    || String.starts_with ~prefix:"sample=" tok
    || String.starts_with ~prefix:"seed=" tok
  in
  let apply acc tok =
    match acc with
    | Error _ as e -> e
    | Ok spec ->
        if tok = "chrome" then Ok { spec with format = Chrome }
        else if tok = "native" then Ok { spec with format = Native }
        else if String.starts_with ~prefix:"sample=" tok then
          let v = String.sub tok 7 (String.length tok - 7) in
          Result.map (fun smp -> { spec with sample = Some smp }) (parse_sample v)
        else
          let v = String.sub tok 5 (String.length tok - 5) in
          match int_of_string_opt v with
          | Some n -> Ok { spec with sample_seed = n }
          | None -> Error (Printf.sprintf "bad trace sample seed %S" v)
  in
  let rec split opts = function
    | tok :: rest when is_opt tok -> split (tok :: opts) rest
    | rest -> (opts, rest)
  in
  let opts, file_rev = split [] (List.rev (String.split_on_char ',' s)) in
  let file = String.concat "," (List.rev file_rev) in
  if file = "" then Error "trace spec needs a file name"
  else
    List.fold_left apply
      (Ok
         {
           file;
           format = Native;
           sample = None;
           sample_seed = default_sample_seed;
         })
      opts

let pp_sample ppf = function
  | Rate r -> Format.fprintf ppf "sample=%g" r
  | One_in n -> Format.fprintf ppf "sample=1/%d" n

let pp_spec ppf spec =
  Format.fprintf ppf "%s%s" spec.file
    (match spec.format with Native -> "" | Chrome -> ",chrome");
  (match spec.sample with
  | None -> ()
  | Some smp -> Format.fprintf ppf ",%a" pp_sample smp);
  if spec.sample_seed <> default_sample_seed then
    Format.fprintf ppf ",seed=%d" spec.sample_seed

let json_of_payload p =
  let open Obs_json in
  match p with
  | Span_begin name -> [ ("type", String "span_begin"); ("name", String name) ]
  | Span_end name -> [ ("type", String "span_end"); ("name", String name) ]
  | Lbc_begin { edge; u; v; t; alpha } ->
      [
        ("type", String "lbc_begin"); ("edge", Int edge); ("u", Int u);
        ("v", Int v); ("t", Int t); ("alpha", Int alpha);
      ]
  | Lbc_end { edge; yes; bfs_rounds; cut_size } ->
      [
        ("type", String "lbc_end"); ("edge", Int edge);
        ("verdict", String (if yes then "yes" else "no"));
        ("bfs_rounds", Int bfs_rounds); ("cut_size", Int cut_size);
      ]
  | Greedy_edge { edge; kept; weight } ->
      [
        ("type", String "greedy_edge"); ("edge", Int edge);
        ("kept", Bool kept); ("weight", Float weight);
      ]
  | Congest_round { round; messages; bits } ->
      [
        ("type", String "congest_round"); ("round", Int round);
        ("messages", Int messages); ("bits", Int bits);
      ]
  | Chaos_event { kind; cid; src; dst } ->
      [
        ("type", String "chaos"); ("kind", String kind); ("cid", Int cid);
        ("src", Int src); ("dst", Int dst);
      ]
  | Msg_send { cid; src; dst; at; bits } ->
      [
        ("type", String "msg_send"); ("cid", Int cid); ("src", Int src);
        ("dst", Int dst); ("at", Float at); ("bits", Int bits);
      ]
  | Msg_deliver { cid; src; dst; at } ->
      [
        ("type", String "msg_deliver"); ("cid", Int cid); ("src", Int src);
        ("dst", Int dst); ("at", Float at);
      ]
  | Sync_pulse { node; pulse; at } ->
      [
        ("type", String "sync_pulse"); ("node", Int node);
        ("pulse", Int pulse); ("at", Float at);
      ]
  | Cluster_stats { partition; clusters; max_depth } ->
      [
        ("type", String "cluster_stats"); ("partition", Int partition);
        ("clusters", Int clusters); ("max_depth", Int max_depth);
      ]
  | Phase { name; index } ->
      [ ("type", String "phase"); ("name", String name); ("index", Int index) ]
  | Counter_sample { name; value } ->
      [ ("type", String "counter"); ("name", String name); ("value", Int value) ]
  | Mark name -> [ ("type", String "mark"); ("name", String name) ]

let to_json () =
  let open Obs_json in
  Obj
    [
      ("schema", String "ftspan.trace.v1");
      ("created_unix", Float (Unix.time ()));
      ("seen", Int (seen ()));
      ("sampled", Int (sampled ()));
      ("dropped", Int (dropped ()));
      ( "events",
        List
          (List.map
             (fun ev ->
               Obj
                 (("seq", Int ev.seq)
                 :: ("ts_s", Float ev.ts_s)
                 :: json_of_payload ev.payload))
             (events ())) );
    ]

(* Chrome trace-event format: every record carries name/ph/ts/pid/tid
   (the invariant chrome://tracing and Perfetto importers rely on); ts is
   in microseconds.  One synthetic process, one thread. *)
let chrome_event ?(args = []) ~name ~ph ~ts_s extra =
  let open Obs_json in
  Obj
    (("name", String name)
    :: ("ph", String ph)
    :: ("ts", Float (ts_s *. 1e6))
    :: ("pid", Int 1)
    :: ("tid", Int 1)
    :: (extra @ (if args = [] then [] else [ ("args", Obj args) ])))

let to_chrome () =
  let open Obs_json in
  let instant ?args ~name ts_s =
    chrome_event ?args ~name ~ph:"i" ~ts_s [ ("s", String "t") ]
  in
  let counter ~name ts_s args = chrome_event ~args ~name ~ph:"C" ~ts_s [] in
  (* [depth] balances B/E across the retained window: an End whose Begin
     was overwritten by the ring would otherwise unbalance the stack the
     importer reconstructs. *)
  let depth = ref 0 in
  let convert ev =
    let ts_s = ev.ts_s in
    match ev.payload with
    | Span_begin name ->
        incr depth;
        Some (chrome_event ~name ~ph:"B" ~ts_s [])
    | Span_end name ->
        if !depth = 0 then None
        else begin
          decr depth;
          Some (chrome_event ~name ~ph:"E" ~ts_s [])
        end
    | Lbc_begin { edge; u; v; t; alpha } ->
        incr depth;
        Some
          (chrome_event ~name:"lbc.decide" ~ph:"B" ~ts_s
             ~args:
               [
                 ("edge", Int edge); ("u", Int u); ("v", Int v);
                 ("t", Int t); ("alpha", Int alpha);
               ]
             [])
    | Lbc_end { edge; yes; bfs_rounds; cut_size } ->
        if !depth = 0 then None
        else begin
          decr depth;
          Some
            (chrome_event ~name:"lbc.decide" ~ph:"E" ~ts_s
               ~args:
                 [
                   ("edge", Int edge);
                   ("verdict", String (if yes then "yes" else "no"));
                   ("bfs_rounds", Int bfs_rounds); ("cut_size", Int cut_size);
                 ]
               [])
        end
    | Greedy_edge { edge; kept; weight } ->
        Some
          (instant
             ~name:(if kept then "greedy.keep" else "greedy.reject")
             ~args:[ ("edge", Int edge); ("weight", Float weight) ]
             ts_s)
    | Congest_round { round; messages; bits } ->
        Some
          (counter ~name:"net.traffic" ts_s
             [ ("round", Int round); ("messages", Int messages); ("bits", Int bits) ])
    | Chaos_event { kind; cid; src; dst } ->
        Some
          (instant ~name:("chaos." ^ kind)
             ~args:[ ("cid", Int cid); ("src", Int src); ("dst", Int dst) ]
             ts_s)
    | Msg_send { cid; src; dst; at; bits } ->
        Some
          (instant ~name:"msg.send"
             ~args:
               [
                 ("cid", Int cid); ("src", Int src); ("dst", Int dst);
                 ("at", Float at); ("bits", Int bits);
               ]
             ts_s)
    | Msg_deliver { cid; src; dst; at } ->
        Some
          (instant ~name:"msg.deliver"
             ~args:
               [
                 ("cid", Int cid); ("src", Int src); ("dst", Int dst);
                 ("at", Float at);
               ]
             ts_s)
    | Sync_pulse { node; pulse; at } ->
        Some
          (instant ~name:"sync.pulse"
             ~args:[ ("node", Int node); ("pulse", Int pulse); ("at", Float at) ]
             ts_s)
    | Cluster_stats { partition; clusters; max_depth } ->
        Some
          (instant ~name:"decomposition.partition"
             ~args:
               [
                 ("partition", Int partition); ("clusters", Int clusters);
                 ("max_depth", Int max_depth);
               ]
             ts_s)
    | Phase { name; index } ->
        Some (instant ~name ~args:[ ("index", Int index) ] ts_s)
    | Counter_sample { name; value } ->
        Some (counter ~name ts_s [ ("value", Int value) ])
    | Mark name -> Some (instant ~name ts_s)
  in
  let meta =
    chrome_event ~name:"process_name" ~ph:"M" ~ts_s:0.
      ~args:[ ("name", String "ftspan") ]
      []
  in
  List (meta :: List.filter_map convert (events ()))

let write ~file fmt =
  let doc = match fmt with Native -> to_json () | Chrome -> to_chrome () in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs_json.to_channel oc doc)
