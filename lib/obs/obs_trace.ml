type payload =
  | Span_begin of string
  | Span_end of string
  | Lbc_begin of { edge : int; u : int; v : int; t : int; alpha : int }
  | Lbc_end of { edge : int; yes : bool; bfs_rounds : int; cut_size : int }
  | Greedy_edge of { edge : int; kept : bool; weight : float }
  | Congest_round of { round : int; messages : int; bits : int }
  | Chaos_event of { kind : string; src : int; dst : int }
  | Cluster_stats of { partition : int; clusters : int; max_depth : int }
  | Phase of { name : string; index : int }
  | Counter_sample of { name : string; value : int }
  | Mark of string

type event = { seq : int; ts_s : float; payload : payload }

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let default_capacity = 1 lsl 16

(* Ring state, guarded by [lock] (multi-domain producers: the parallel
   batched greedy emits from worker domains). *)
let lock = Mutex.create ()
let placeholder = { seq = -1; ts_s = 0.; payload = Mark "" }
let buf = ref (Array.make 0 placeholder)
let seen_count = ref 0
let origin = ref 0.
let sink : (event -> unit) option ref = ref None

let emit payload =
  if Atomic.get enabled_flag then begin
    Mutex.lock lock;
    let ev = { seq = !seen_count; ts_s = Obs.now_s () -. !origin; payload } in
    let cap = Array.length !buf in
    if cap > 0 then !buf.(ev.seq mod cap) <- ev;
    seen_count := ev.seq + 1;
    let consumer = !sink in
    Mutex.unlock lock;
    match consumer with Some f -> f ev | None -> ()
  end

let span_hook phase name =
  emit (match phase with `Begin -> Span_begin name | `End -> Span_end name)

let start ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Obs_trace.start: capacity must be >= 1";
  Mutex.lock lock;
  buf := Array.make capacity placeholder;
  seen_count := 0;
  origin := Obs.now_s ();
  Mutex.unlock lock;
  Obs.set_span_hook (Some span_hook);
  Atomic.set enabled_flag true

let stop () =
  Atomic.set enabled_flag false;
  Obs.set_span_hook None

let set_sink s =
  Mutex.lock lock;
  sink := s;
  Mutex.unlock lock

let seen () = !seen_count
let retained () = min !seen_count (Array.length !buf)
let dropped () = !seen_count - retained ()

let events () =
  Mutex.lock lock;
  let cap = Array.length !buf in
  let kept = retained () in
  let first = !seen_count - kept in
  let out = List.init kept (fun i -> !buf.((first + i) mod cap)) in
  Mutex.unlock lock;
  out

(* ------------------------------ export ------------------------------ *)

type format = Native | Chrome

let parse_spec s =
  if s = "" then None
  else
    match String.rindex_opt s ',' with
    | Some i when i > 0 -> (
        let file = String.sub s 0 i in
        match String.sub s (i + 1) (String.length s - i - 1) with
        | "chrome" -> Some (file, Chrome)
        | "native" -> Some (file, Native)
        | _ -> Some (s, Native) (* a comma in the file name, not a format *))
    | _ -> Some (s, Native)

let pp_spec ppf (file, fmt) =
  Format.fprintf ppf "%s%s" file (match fmt with Native -> "" | Chrome -> ",chrome")

let json_of_payload p =
  let open Obs_json in
  match p with
  | Span_begin name -> [ ("type", String "span_begin"); ("name", String name) ]
  | Span_end name -> [ ("type", String "span_end"); ("name", String name) ]
  | Lbc_begin { edge; u; v; t; alpha } ->
      [
        ("type", String "lbc_begin"); ("edge", Int edge); ("u", Int u);
        ("v", Int v); ("t", Int t); ("alpha", Int alpha);
      ]
  | Lbc_end { edge; yes; bfs_rounds; cut_size } ->
      [
        ("type", String "lbc_end"); ("edge", Int edge);
        ("verdict", String (if yes then "yes" else "no"));
        ("bfs_rounds", Int bfs_rounds); ("cut_size", Int cut_size);
      ]
  | Greedy_edge { edge; kept; weight } ->
      [
        ("type", String "greedy_edge"); ("edge", Int edge);
        ("kept", Bool kept); ("weight", Float weight);
      ]
  | Congest_round { round; messages; bits } ->
      [
        ("type", String "congest_round"); ("round", Int round);
        ("messages", Int messages); ("bits", Int bits);
      ]
  | Chaos_event { kind; src; dst } ->
      [
        ("type", String "chaos"); ("kind", String kind); ("src", Int src);
        ("dst", Int dst);
      ]
  | Cluster_stats { partition; clusters; max_depth } ->
      [
        ("type", String "cluster_stats"); ("partition", Int partition);
        ("clusters", Int clusters); ("max_depth", Int max_depth);
      ]
  | Phase { name; index } ->
      [ ("type", String "phase"); ("name", String name); ("index", Int index) ]
  | Counter_sample { name; value } ->
      [ ("type", String "counter"); ("name", String name); ("value", Int value) ]
  | Mark name -> [ ("type", String "mark"); ("name", String name) ]

let to_json () =
  let open Obs_json in
  Obj
    [
      ("schema", String "ftspan.trace.v1");
      ("created_unix", Float (Unix.time ()));
      ("seen", Int (seen ()));
      ("dropped", Int (dropped ()));
      ( "events",
        List
          (List.map
             (fun ev ->
               Obj
                 (("seq", Int ev.seq)
                 :: ("ts_s", Float ev.ts_s)
                 :: json_of_payload ev.payload))
             (events ())) );
    ]

(* Chrome trace-event format: every record carries name/ph/ts/pid/tid
   (the invariant chrome://tracing and Perfetto importers rely on); ts is
   in microseconds.  One synthetic process, one thread. *)
let chrome_event ?(args = []) ~name ~ph ~ts_s extra =
  let open Obs_json in
  Obj
    (("name", String name)
    :: ("ph", String ph)
    :: ("ts", Float (ts_s *. 1e6))
    :: ("pid", Int 1)
    :: ("tid", Int 1)
    :: (extra @ (if args = [] then [] else [ ("args", Obj args) ])))

let to_chrome () =
  let open Obs_json in
  let instant ?args ~name ts_s =
    chrome_event ?args ~name ~ph:"i" ~ts_s [ ("s", String "t") ]
  in
  let counter ~name ts_s args = chrome_event ~args ~name ~ph:"C" ~ts_s [] in
  (* [depth] balances B/E across the retained window: an End whose Begin
     was overwritten by the ring would otherwise unbalance the stack the
     importer reconstructs. *)
  let depth = ref 0 in
  let convert ev =
    let ts_s = ev.ts_s in
    match ev.payload with
    | Span_begin name ->
        incr depth;
        Some (chrome_event ~name ~ph:"B" ~ts_s [])
    | Span_end name ->
        if !depth = 0 then None
        else begin
          decr depth;
          Some (chrome_event ~name ~ph:"E" ~ts_s [])
        end
    | Lbc_begin { edge; u; v; t; alpha } ->
        incr depth;
        Some
          (chrome_event ~name:"lbc.decide" ~ph:"B" ~ts_s
             ~args:
               [
                 ("edge", Int edge); ("u", Int u); ("v", Int v);
                 ("t", Int t); ("alpha", Int alpha);
               ]
             [])
    | Lbc_end { edge; yes; bfs_rounds; cut_size } ->
        if !depth = 0 then None
        else begin
          decr depth;
          Some
            (chrome_event ~name:"lbc.decide" ~ph:"E" ~ts_s
               ~args:
                 [
                   ("edge", Int edge);
                   ("verdict", String (if yes then "yes" else "no"));
                   ("bfs_rounds", Int bfs_rounds); ("cut_size", Int cut_size);
                 ]
               [])
        end
    | Greedy_edge { edge; kept; weight } ->
        Some
          (instant
             ~name:(if kept then "greedy.keep" else "greedy.reject")
             ~args:[ ("edge", Int edge); ("weight", Float weight) ]
             ts_s)
    | Congest_round { round; messages; bits } ->
        Some
          (counter ~name:"net.traffic" ts_s
             [ ("round", Int round); ("messages", Int messages); ("bits", Int bits) ])
    | Chaos_event { kind; src; dst } ->
        Some
          (instant ~name:("chaos." ^ kind)
             ~args:[ ("src", Int src); ("dst", Int dst) ]
             ts_s)
    | Cluster_stats { partition; clusters; max_depth } ->
        Some
          (instant ~name:"decomposition.partition"
             ~args:
               [
                 ("partition", Int partition); ("clusters", Int clusters);
                 ("max_depth", Int max_depth);
               ]
             ts_s)
    | Phase { name; index } ->
        Some (instant ~name ~args:[ ("index", Int index) ] ts_s)
    | Counter_sample { name; value } ->
        Some (counter ~name ts_s [ ("value", Int value) ])
    | Mark name -> Some (instant ~name ts_s)
  in
  let meta =
    chrome_event ~name:"process_name" ~ph:"M" ~ts_s:0.
      ~args:[ ("name", String "ftspan") ]
      []
  in
  List (meta :: List.filter_map convert (events ()))

let write ~file fmt =
  let doc = match fmt with Native -> to_json () | Chrome -> to_chrome () in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Obs_json.to_channel oc doc)
