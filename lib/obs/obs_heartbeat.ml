(* Periodic JSON-lines snapshots of the live registry: the streaming
   complement to the one-shot end-of-run report of Obs_sink.  One line
   per beat, ftspan.heartbeat.v1, appended to a file as the run goes —
   cheap enough (one atomic load per pulse when armed, one branch when
   not) to leave the pulse calls in the round/decide loops permanently. *)

type spec = { file : string; interval_s : float option; every_ops : int option }

let default_interval = 1.0

let parse_spec s =
  let is_opt tok =
    String.starts_with ~prefix:"ops=" tok || float_of_string_opt tok <> None
  in
  let apply acc tok =
    match acc with
    | Error _ as e -> e
    | Ok spec ->
        if String.starts_with ~prefix:"ops=" tok then
          let v = String.sub tok 4 (String.length tok - 4) in
          match int_of_string_opt v with
          | Some k when k >= 1 -> Ok { spec with every_ops = Some k }
          | _ ->
              Error
                (Printf.sprintf "bad heartbeat ops count %S (want ops=K, K >= 1)"
                   v)
        else
          match float_of_string_opt tok with
          | Some dt when dt > 0. -> Ok { spec with interval_s = Some dt }
          | _ ->
              Error
                (Printf.sprintf
                   "bad heartbeat interval %S (want seconds > 0 or ops=K)" tok)
  in
  let rec split opts = function
    | tok :: rest when is_opt tok -> split (tok :: opts) rest
    | rest -> (opts, rest)
  in
  let opts, file_rev = split [] (List.rev (String.split_on_char ',' s)) in
  let file = String.concat "," (List.rev file_rev) in
  if file = "" then Error "metrics stream spec needs a file name"
  else
    List.fold_left apply
      (Ok { file; interval_s = None; every_ops = None })
      opts

let pp_spec ppf spec =
  Format.fprintf ppf "%s" spec.file;
  Option.iter (fun dt -> Format.fprintf ppf ",%g" dt) spec.interval_s;
  Option.iter (fun k -> Format.fprintf ppf ",ops=%d" k) spec.every_ops

(* ------------------------------- state ------------------------------ *)

type state = {
  spec : spec;
  oc : out_channel;
  writer : Mutex.t;
  start_s : float;
  mutable last_beat_s : float;
  mutable beats : int;
  skipped : int Atomic.t;
  mutable prev_counters : (string * int) list;
}

let active : state option Atomic.t = Atomic.make None
let ops = Atomic.make 0

(* Survives [stop] so the CLI can print a summary after closing. *)
let last_beats = ref 0
let last_skipped = ref 0

let json_of_beat st =
  let now = Obs.now_s () in
  let snap = Obs.snapshot () in
  (* Counter deltas since the previous beat; a counter that went
     backwards was reset (bench jobs reset the registry), so report its
     absolute value instead of a negative delta. *)
  let deltas =
    List.filter_map
      (fun (name, v) ->
        let prev =
          Option.value ~default:0 (List.assoc_opt name st.prev_counters)
        in
        let d = if v >= prev then v - prev else v in
        if d <> 0 then Some (name, Obs_json.Int d) else None)
      snap.Obs.counters
  in
  let quantiles =
    List.filter_map
      (fun (name, h) ->
        if h.Obs.h_count = 0 then None
        else
          Some
            ( name,
              Obs_json.Obj
                (("count", Obs_json.Int h.Obs.h_count)
                :: List.map
                     (fun (label, v) -> (label, Obs_json.Float v))
                     h.Obs.h_quantiles) ))
      snap.Obs.histograms
  in
  let gc = Gc.quick_stat () in
  let doc =
    Obs_json.Obj
      [
        ("schema", Obs_json.String "ftspan.heartbeat.v1");
        ("beat", Obs_json.Int st.beats);
        ("skipped", Obs_json.Int (Atomic.get st.skipped));
        ("t_s", Obs_json.Float (now -. st.start_s));
        ("counters", Obs_json.Obj deltas);
        ( "gauges",
          (* levels, not rates: absolute values, no delta *)
          Obs_json.Obj
            (List.map (fun (n, v) -> (n, Obs_json.Int v)) snap.Obs.gauges) );
        ("quantiles", Obs_json.Obj quantiles);
        ( "gc",
          Obs_json.Obj
            [
              ("minor_words", Obs_json.Float gc.Gc.minor_words);
              ("promoted_words", Obs_json.Float gc.Gc.promoted_words);
              ("major_words", Obs_json.Float gc.Gc.major_words);
              ("minor_collections", Obs_json.Int gc.Gc.minor_collections);
              ("major_collections", Obs_json.Int gc.Gc.major_collections);
              ("heap_words", Obs_json.Int gc.Gc.heap_words);
            ] );
      ]
  in
  (doc, snap.Obs.counters, now)

(* Caller holds [st.writer]. *)
let beat st =
  let doc, counters, now = json_of_beat st in
  output_string st.oc (Obs_json.to_string ~indent:false doc);
  output_char st.oc '\n';
  flush st.oc;
  st.prev_counters <- counters;
  st.last_beat_s <- now;
  st.beats <- st.beats + 1;
  last_beats := st.beats;
  last_skipped := Atomic.get st.skipped

(* Best-effort from any domain: a pulse that loses the race skips its
   beat (the next one catches up) — but the loss is counted, both in the
   state (every later beat reports the running total in its "skipped"
   field) and in the registry ("heartbeat.skipped"), so a starved
   reporter is visible instead of silent. *)
let skipped_counter = lazy (Obs.counter "heartbeat.skipped")

let try_beat st =
  if Mutex.try_lock st.writer then
    Fun.protect
      ~finally:(fun () -> Mutex.unlock st.writer)
      (fun () ->
        match Atomic.get active with
        | Some st' when st' == st -> beat st
        | _ -> ())
  else begin
    Atomic.incr st.skipped;
    Obs.Counter.incr (Lazy.force skipped_counter)
  end

let pulse () =
  match Atomic.get active with
  | None -> ()
  | Some st ->
      let due_ops =
        match st.spec.every_ops with
        | Some k -> (Atomic.fetch_and_add ops 1 + 1) mod k = 0
        | None -> false
      in
      let due =
        due_ops
        ||
        match st.spec.interval_s with
        | Some dt -> Obs.now_s () -. st.last_beat_s >= dt
        | None ->
            (* neither mode given: default to a 1 Hz interval *)
            st.spec.every_ops = None
            && Obs.now_s () -. st.last_beat_s >= default_interval
      in
      if due then try_beat st

let stop () =
  match Atomic.exchange active None with
  | None -> ()
  | Some st ->
      (* Wait out any in-flight beat, then write the closing snapshot so
         even a run shorter than one interval leaves a line. *)
      Mutex.lock st.writer;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock st.writer)
        (fun () -> beat st);
      close_out st.oc

let start spec =
  stop ();
  let oc = open_out spec.file in
  let now = Obs.now_s () in
  Atomic.set ops 0;
  last_beats := 0;
  last_skipped := 0;
  Atomic.set active
    (Some
       {
         spec;
         oc;
         writer = Mutex.create ();
         start_s = now;
         last_beat_s = now;
         beats = 0;
         skipped = Atomic.make 0;
         prev_counters = [];
       })

let beats () = !last_beats
let skipped () = !last_skipped
