type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ----------------------------- printing ----------------------------- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else begin
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.15g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f
  end

let to_buffer ?(indent = false) buf j =
  let pad level = if indent then Buffer.add_string buf (String.make (2 * level) ' ') in
  let nl () = if indent then Buffer.add_char buf '\n' in
  let rec go level = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_literal f)
    | String s -> escape_string buf s
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
        Buffer.add_char buf '[';
        nl ();
        List.iteri
          (fun i x ->
            if i > 0 then begin Buffer.add_char buf ','; nl () end;
            pad (level + 1);
            go (level + 1) x)
          xs;
        nl ();
        pad level;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        nl ();
        List.iteri
          (fun i (k, v) ->
            if i > 0 then begin Buffer.add_char buf ','; nl () end;
            pad (level + 1);
            escape_string buf k;
            Buffer.add_string buf (if indent then ": " else ":");
            go (level + 1) v)
          fields;
        nl ();
        pad level;
        Buffer.add_char buf '}'
  in
  go 0 j

let to_string ?(indent = false) j =
  let buf = Buffer.create 256 in
  to_buffer ~indent buf j;
  Buffer.contents buf

let to_channel oc j =
  output_string oc (to_string ~indent:true j);
  output_char oc '\n'

(* ----------------------------- parsing ------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | Some x -> error "expected %c at offset %d, found %c" c !pos x
    | None -> error "expected %c at offset %d, found end of input" c !pos
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else error "invalid literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
          (if !pos >= n then error "unterminated escape";
           let e = s.[!pos] in
           advance ();
           match e with
           | '"' -> Buffer.add_char buf '"'
           | '\\' -> Buffer.add_char buf '\\'
           | '/' -> Buffer.add_char buf '/'
           | 'n' -> Buffer.add_char buf '\n'
           | 'r' -> Buffer.add_char buf '\r'
           | 't' -> Buffer.add_char buf '\t'
           | 'b' -> Buffer.add_char buf '\b'
           | 'f' -> Buffer.add_char buf '\012'
           | 'u' ->
               if !pos + 4 > n then error "truncated \\u escape";
               let hex = String.sub s !pos 4 in
               pos := !pos + 4;
               let code =
                 try int_of_string ("0x" ^ hex)
                 with _ -> error "bad \\u escape %S" hex
               in
               (* ASCII only; non-ASCII code points pass through as '?'
                  (the metrics layer never emits them) *)
               Buffer.add_char buf (if code < 0x80 then Char.chr code else '?')
           | c -> error "bad escape \\%c" c);
          go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do advance () done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> error "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> error "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> error "expected , or } at offset %d" !pos
          in
          fields []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> error "expected , or ] at offset %d" !pos
          in
          items []
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then error "trailing garbage at offset %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ----------------------------- accessors ---------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let to_list = function List xs -> Some xs | _ -> None
let to_str = function String s -> Some s | _ -> None
