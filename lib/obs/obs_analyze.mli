(** Offline analysis of [ftspan.trace.v1] streams.

    {!Obs_trace} writes what happened; this module answers what it {e
    meant}: per-message delivery latency (exact offline quantiles, not
    the live histograms' bucketed ones), per-edge retransmit
    amplification, reorder depth, and the synchronizer's critical path —
    which node entered each pulse last, and which edge's delivery gated
    it.

    All statistics derive from the events' simulated [at] times and
    causal ids, never from wall-clock [ts_s] stamps: analyzing two
    same-seed runs yields byte-identical reports.  On an unsampled,
    non-overflowing trace the report's retransmit total reconciles
    exactly with the [net.retries] counter of the run that produced
    it. *)

(** A parsed event.  Unrecognized [type]s parse to [Other]; recognized
    ones with missing or ill-typed fields parse to [Malformed] (a
    structural violation reported by {!validate}, not a parse
    failure). *)
type ev =
  | Send of { cid : int; src : int; dst : int; at : float; bits : int }
  | Deliver of { cid : int; src : int; dst : int; at : float }
  | Fate of { kind : string; cid : int; src : int; dst : int }
      (** ["chaos"] events: injected fates ([drop]/[dup]/...) and
          protocol reactions ([retransmit]/[ack]/...). *)
  | Pulse of { node : int; pulse : int; at : float }
  | Other
  | Malformed of string

type trace = {
  t_seen : int;
  t_sampled : int;
  t_dropped : int;
  t_events : (int * ev) list;  (** [(seq, event)], document order *)
}

(** [parse j] reads a [ftspan.trace.v1] document.  [Error] means the
    document is not structurally a v1 trace at all (wrong schema,
    missing top-level fields) — the caller's "unreadable" class, as
    opposed to per-event violations found by {!validate}. *)
val parse : Obs_json.t -> (trace, string) result

(** [load file] reads and {!parse}s a trace file.  [Error] covers I/O
    failures, JSON syntax errors and schema mismatches alike. *)
val load : string -> (trace, string) result

(** [validate tr] lists structural violations: malformed events,
    non-monotonic [seq]s, inconsistent seen/sampled/dropped accounting,
    and — only when [t_dropped = 0], i.e. nothing was sampled out or
    overwritten — deliveries whose send is absent.  Empty means
    well-formed. *)
val validate : trace -> string list

type edge_stat = {
  e_src : int;
  e_dst : int;
  e_msgs : int;  (** distinct application messages (causal ids) *)
  e_sends : int;  (** transmission attempts, retransmits included *)
  e_delivers : int;
  e_retransmits : int;
  e_giveups : int;
  e_amplification : float;
      (** [e_sends /. e_msgs]; [1.0] means no retransmission *)
  e_max_reorder : int;
  e_reordered : int;
      (** first deliveries that overtook an earlier send on this edge *)
}

type pulse_stat = {
  p_pulse : int;
  p_node : int;  (** last node to enter the pulse (ties: smaller id) *)
  p_at : float;
  p_gate : (int * int * float) option;
      (** [(src, dst, at)] of the latest delivery into that node at or
          before the pulse entry — the edge that gated the pulse *)
}

type quantile = { q_label : string; q_value : float }

type report = {
  a_messages : int;
  a_sends : int;
  a_delivers : int;
  a_delivered : int;
  a_retransmits : int;
  a_giveups : int;
  a_acks : int;
  a_dup_suppressed : int;
  a_drops : int;
  a_dups : int;
  a_latency : quantile list;
      (** exact p50/p90/p99/p999 of first-send to first-delivery gaps;
          empty when nothing was delivered *)
  a_latency_mean : float;
  a_latency_max : float;
  a_edges : edge_stat list;  (** busiest first, capped at [top] *)
  a_edges_total : int;
  a_max_reorder : int;
  a_reordered : int;
  a_pulses : pulse_stat list;
}

(** [analyze ?top tr] builds the report, keeping the [top] (default 10)
    busiest directed edges by sends.  Raises [Invalid_argument] on
    negative [top]. *)
val analyze : ?top:int -> trace -> report

val pp_report : Format.formatter -> report -> unit

(** [json_of_report r] is the report as a [ftspan.trace-report.v1]
    document. *)
val json_of_report : report -> Obs_json.t
