type verdict = Within | Improved | Regression | Missing | New

type finding = {
  entry : string;
  metric : string;
  base_v : float option;
  run_v : float option;
  limit : float;
  verdict : verdict;
}

type tolerances = { wall_rel : float; wall_abs : float; counter_rel : float }

let default_tolerances = { wall_rel = 1.5; wall_abs = 0.25; counter_rel = 0.25 }

let scale s t =
  if s <= 0. then invalid_arg "Obs_compare.scale: factor must be positive";
  {
    wall_rel = s *. t.wall_rel;
    wall_abs = s *. t.wall_abs;
    counter_rel = s *. t.counter_rel;
  }

(* The one list of gate-excluded metric prefixes.  [pool.*] counters
   (tasks, steals, per-worker busy shares) depend on which worker
   claimed which chunk, which varies run to run and with the jobs count.
   The algorithm counters next to them ARE deterministic, so the gate
   excludes exactly these prefixes instead of loosening every counter
   tolerance.  The chaos series ([net.drops] and friends) are likewise
   excluded: they count injected faults and protocol reactions, which
   any change to a fault plan or retransmit policy legitimately moves —
   the gate guards the algorithm counters next to them instead.
   [gauge.*] values are instantaneous levels (queue depths, unacked
   windows) — whatever the last snapshot happened to catch — and
   [heartbeat.*] counts reporter-lock races; neither is a stable
   quantity to gate on. *)
let excluded_prefixes =
  [ "pool."; "net.drops"; "net.dups"; "net.reorders"; "net.retries";
    "net.giveups"; "gauge."; "heartbeat." ]

let scheduling_dependent name =
  List.exists
    (fun prefix -> String.starts_with ~prefix name)
    excluded_prefixes

(* ---------------------- report destructuring ------------------------ *)

type entry_view = {
  ev_id : string;
  ev_wall : float;
  ev_counters : (string * float) list;  (* in document order *)
}

let ( let* ) = Result.bind

let field name conv j ~ctx =
  match Option.bind (Obs_json.member name j) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing or ill-typed %S" ctx name)

let view_entry j =
  let* id = field "id" Obs_json.to_str j ~ctx:"entry" in
  let ctx = "entry " ^ id in
  let* wall = field "wall_time_s" Obs_json.to_number j ~ctx in
  let* counters =
    match Obs_json.member "counters" j with
    | Some (Obs_json.Obj fields) ->
        let rec conv acc = function
          | [] -> Ok (List.rev acc)
          | (name, v) :: rest -> (
              match Obs_json.to_number v with
              | Some x -> conv ((name, x) :: acc) rest
              | None ->
                  Error (Printf.sprintf "%s: counter %S is not a number" ctx name))
        in
        conv [] fields
    | _ -> Error (ctx ^ ": missing counters object")
  in
  Ok { ev_id = id; ev_wall = wall; ev_counters = counters }

let view_report j ~ctx =
  let* schema = field "schema" Obs_json.to_str j ~ctx in
  if schema <> "ftspan.metrics.v1" then
    Error (Printf.sprintf "%s: unexpected schema %S" ctx schema)
  else
    let* entries = field "entries" Obs_json.to_list j ~ctx in
    let rec conv acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest ->
          let* v = view_entry e in
          conv (v :: acc) rest
    in
    conv [] entries

(* --------------------------- comparison ----------------------------- *)

let judge ~base ~limit ~run =
  if run > limit then Regression else if run < base then Improved else Within

let compare_entry tol (b : entry_view) (r : entry_view) =
  let wall_limit = (b.ev_wall *. (1. +. tol.wall_rel)) +. tol.wall_abs in
  let wall =
    {
      entry = b.ev_id;
      metric = "wall_time_s";
      base_v = Some b.ev_wall;
      run_v = Some r.ev_wall;
      limit = wall_limit;
      verdict = judge ~base:b.ev_wall ~limit:wall_limit ~run:r.ev_wall;
    }
  in
  let counters =
    List.filter_map
      (fun (name, bv) ->
        if scheduling_dependent name then None
        else
          Some
            (match List.assoc_opt name r.ev_counters with
            | None ->
                {
                  entry = b.ev_id; metric = name; base_v = Some bv;
                  run_v = None; limit = nan; verdict = Missing;
                }
            | Some rv ->
                let limit = bv *. (1. +. tol.counter_rel) in
                {
                  entry = b.ev_id; metric = name; base_v = Some bv;
                  run_v = Some rv; limit;
                  verdict = judge ~base:bv ~limit ~run:rv;
                }))
      b.ev_counters
  in
  let fresh =
    List.filter_map
      (fun (name, rv) ->
        if List.mem_assoc name b.ev_counters || scheduling_dependent name then
          None
        else
          Some
            {
              entry = b.ev_id; metric = name; base_v = None; run_v = Some rv;
              limit = nan; verdict = New;
            })
      r.ev_counters
  in
  (wall :: counters) @ fresh

let compare_reports ?(tol = default_tolerances) base run =
  let* base = view_report base ~ctx:"baseline" in
  let* run = view_report run ~ctx:"run" in
  let of_base b =
    match List.find_opt (fun r -> r.ev_id = b.ev_id) run with
    | None ->
        [
          {
            entry = b.ev_id; metric = "(entry)"; base_v = Some b.ev_wall;
            run_v = None; limit = nan; verdict = Missing;
          };
        ]
    | Some r -> compare_entry tol b r
  in
  let fresh =
    List.filter_map
      (fun r ->
        if List.exists (fun b -> b.ev_id = r.ev_id) base then None
        else
          Some
            {
              entry = r.ev_id; metric = "(entry)"; base_v = None;
              run_v = Some r.ev_wall; limit = nan; verdict = New;
            })
      run
  in
  Ok (List.concat_map of_base base @ fresh)

let regressed =
  List.exists (fun f ->
      match f.verdict with Regression | Missing -> true | _ -> false)

(* ----------------------------- printing ----------------------------- *)

let verdict_label = function
  | Within -> "within"
  | Improved -> "improved"
  | Regression -> "REGRESSION"
  | Missing -> "MISSING"
  | New -> "new"

let pp_value ppf = function
  | None -> Format.fprintf ppf "%12s" "-"
  | Some v ->
      if Float.is_integer v && Float.abs v < 1e15 then
        Format.fprintf ppf "%12.0f" v
      else Format.fprintf ppf "%12.4f" v

let pp_findings ppf findings =
  Format.fprintf ppf "@[<v>%-18s %-34s %12s %12s %12s  %s@,"
    "entry" "metric" "baseline" "run" "limit" "verdict";
  List.iter
    (fun f ->
      Format.fprintf ppf "%-18s %-34s %a %a %a  %s@," f.entry f.metric
        pp_value f.base_v pp_value f.run_v
        pp_value (if Float.is_nan f.limit then None else Some f.limit)
        (verdict_label f.verdict))
    findings;
  let count v =
    List.length
      (List.filter (fun f -> f.verdict = v) findings)
  in
  Format.fprintf ppf
    "@,%d metrics: %d within, %d improved, %d new, %d regression(s), %d missing@]"
    (List.length findings) (count Within) (count Improved) (count New)
    (count Regression) (count Missing)
