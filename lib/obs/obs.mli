(** Lightweight telemetry: named counters, timers, histograms and nestable
    spans, collected into a process-global registry and reported through
    the sinks of {!Obs_sink}.

    The layer is designed for hot paths: instrumented code accumulates
    locally and flushes {e once per logical operation} (one BFS, one LBC
    call), so the steady-state cost is a handful of atomic adds per
    operation.  The master switch {!set_enabled} turns every collection
    point into a no-op — the "null sink" mode — leaving only a dead branch
    in the hot loops.

    Concurrency: counters are atomic and safe to bump from multiple
    domains (the parallel batched greedy does).  Timers and histograms
    are {e sharded per domain}: each domain lazily registers a private
    slot keyed on [Domain.self ()] and records with plain stores into it,
    and every aggregate read ([total_s], [count], [quantile], snapshots)
    merges the shards.  Merged values are exact for any writer the reader
    has synchronized with — the {!Exec} pool's region hand-off and
    [Domain.join] both qualify — so end-of-region totals under the
    parallel greedy are exact, not best-effort; a read raced against a
    still-running writer may miss its latest observations but never
    tears.  Spans remain main-domain constructs.

    Metrics are identified by name.  Requesting an existing name returns
    the already-registered metric, so independent modules may share a
    series (the greedy reads the [lbc.*] counters that {!Lbc.decide}
    writes).  Names use dotted lower-case paths: ["lbc.calls"],
    ["bfs.edges_scanned"]. *)

(** [enabled ()] is the master collection switch (initially [true]). *)
val enabled : unit -> bool

(** [set_enabled b] turns collection on or off globally.  While disabled,
    counter/timer/histogram updates and spans cost one branch and record
    nothing. *)
val set_enabled : bool -> unit

(** [now_s ()] is a monotonically non-decreasing wall-clock reading in
    seconds.  (The OS clock may step backwards; this never does — the
    clamp state is atomic, so the guarantee holds across domains.) *)
val now_s : unit -> float

module Counter : sig
  (** A named monotonic integer, atomic across domains. *)
  type t

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit

  (** Current value.  Reads are not gated on {!Obs.enabled}. *)
  val value : t -> int
end

(** [counter name] registers (or retrieves) the counter [name].
    Raises [Invalid_argument] if [name] is registered as another kind. *)
val counter : string -> Counter.t

module Timer : sig
  (** A named accumulator of elapsed wall-clock time, sharded per
      domain: [record] writes the calling domain's shard, the reads
      below merge all shards. *)
  type t

  val name : t -> string

  (** [time t f] runs [f ()] and adds its duration to [t] (exceptions
      included).  When collection is disabled this is exactly [f ()]. *)
  val time : t -> (unit -> 'a) -> 'a

  (** [record t dt] adds a pre-measured duration in seconds to the
      calling domain's shard. *)
  val record : t -> float -> unit

  val total_s : t -> float
  val count : t -> int
end

val timer : string -> Timer.t

module Gauge : sig
  (** A named level (as opposed to a {!Counter}'s monotonic rate),
      sharded per domain: [set]/[add] touch only the calling domain's
      shard, and [value] reports the {e sum} over all shards — the
      natural merge for queue-depth style gauges where each domain owns
      a piece of the level.  Gauge readings depend on scheduling, so
      snapshots report them separately and the bench gate excludes the
      [gauge.*] prefix. *)
  type t

  val name : t -> string

  (** [set g n] overwrites the calling domain's contribution. *)
  val set : t -> int -> unit

  (** [add g n] adjusts the calling domain's contribution ([n] may be
      negative). *)
  val add : t -> int -> unit

  (** Merged (summed) value across domains. *)
  val value : t -> int
end

(** [gauge name] registers (or retrieves) the gauge [name]; same registry
    rules as {!counter}.  Names use the ["gauge."] prefix by convention so
    regression gates can carve them out. *)
val gauge : string -> Gauge.t

module Histogram : sig
  (** A named distribution: count/sum/min/max plus one of two bucket
      layouts, sharded per domain like {!Timer}.

      - {b pow2} ({!Obs.histogram}): upper bounds 1, 2, 4, ..., 2^30,
        +inf — the right shape for integer work counts (BFS rounds, cut
        sizes, message bits), which span orders of magnitude.
      - {b log-linear} ({!Obs.histogram_log}): 9 linear sub-buckets per
        decade over 1e-7 .. 9e3 plus +inf (HDR-histogram style), the
        right shape for latencies in seconds — every bucket is within
        ~11% of its bound, so tail quantiles stay honest. *)
  type t

  val name : t -> string
  val observe : t -> float -> unit
  val observe_int : t -> int -> unit
  val count : t -> int
  val sum : t -> float

  (** [quantile h q] estimates the [q]-quantile ([0 <= q <= 1]) from the
      merged buckets: the reported value is the covering bucket's upper
      bound clamped into the observed [[min, max]] envelope, so a
      one-sample histogram answers exactly and the overflow bucket
      reports the observed max.  [0.] when the histogram is empty.
      Raises [Invalid_argument] on [q] outside [[0, 1]]. *)
  val quantile : t -> float -> float
end

(** [histogram name] registers (or retrieves) the power-of-two-bucketed
    histogram [name].  Raises [Invalid_argument] if [name] is registered
    as another kind {e or} as a histogram with the other bucket
    layout. *)
val histogram : string -> Histogram.t

(** [histogram_log name] is the log-linear (latency) flavour; same
    registry rules as {!histogram}. *)
val histogram_log : string -> Histogram.t

(** [with_span name f] runs [f ()] inside a span: a named, nestable timing
    scope.  Spans with the same name under the same parent are merged
    (count + total time), so the recorded structure is a bounded tree of
    distinct paths, not an unbounded event log.  Exceptions propagate and
    the span still closes.  Intended for coarse operations (one spanner
    build, one experiment) — not per-edge work. *)
val with_span : string -> (unit -> 'a) -> 'a

(** [set_span_hook h] installs (or, with [None], removes) an observer
    called on every span boundary that {!with_span} records: [`Begin]
    right before the body runs and [`End] when it closes (exceptions
    included).  The hook fires only while {!enabled} — spans skipped by
    the master switch are invisible to it.  {!Obs_trace} uses this to turn
    the merged span tree into a time-ordered event log; hooks must not
    call {!with_span} themselves. *)
val set_span_hook : ([ `Begin | `End ] -> string -> unit) option -> unit

(** {1 Snapshots}

    A snapshot is an immutable copy of every registered metric, consumed
    by the sinks in {!Obs_sink}.  Taking one merges every timer's and
    histogram's domain shards; it is safe from any domain (the registry
    and span tree are mutex-guarded), with the staleness caveat of the
    concurrency contract above. *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0 when the histogram is empty *)
  h_max : float;  (** 0 when the histogram is empty *)
  h_buckets : (float option * int) list;
      (** nonzero buckets only, in increasing bound order; the bound is
          the bucket's inclusive upper edge, [None] for the overflow
          bucket *)
  h_quantiles : (string * float) list;
      (** [("p50", v); ("p90", v); ("p99", v); ("p999", v)] per
          {!Histogram.quantile}; [[]] when the histogram is empty *)
}

type span_view = {
  s_name : string;
  s_count : int;
  s_total_s : float;
  s_children : span_view list;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * int) list;  (** sorted by name; merged across shards *)
  timers : (string * (int * float)) list;  (** name, (count, total seconds) *)
  histograms : (string * histogram_view) list;
  spans : span_view list;
}

val snapshot : unit -> snapshot

(** [reset ()] zeroes every registered metric (all shards) and clears
    recorded spans (registrations survive).  Call it before a measured
    section to scope the next {!snapshot} to that section. *)
val reset : unit -> unit
