(** Lightweight telemetry: named counters, timers, histograms and nestable
    spans, collected into a process-global registry and reported through
    the sinks of {!Obs_sink}.

    The layer is designed for hot paths: instrumented code accumulates
    locally and flushes {e once per logical operation} (one BFS, one LBC
    call), so the steady-state cost is a handful of atomic adds per
    operation.  The master switch {!set_enabled} turns every collection
    point into a no-op — the "null sink" mode — leaving only a dead branch
    in the hot loops.

    Concurrency: counters are atomic and safe to bump from multiple
    domains (the parallel batched greedy does).  Timers, histograms and
    spans use plain mutable state and assume a single domain; under
    parallel sections their values are best-effort.

    Metrics are identified by name.  Requesting an existing name returns
    the already-registered metric, so independent modules may share a
    series (the greedy reads the [lbc.*] counters that {!Lbc.decide}
    writes).  Names use dotted lower-case paths: ["lbc.calls"],
    ["bfs.edges_scanned"]. *)

(** [enabled ()] is the master collection switch (initially [true]). *)
val enabled : unit -> bool

(** [set_enabled b] turns collection on or off globally.  While disabled,
    counter/timer/histogram updates and spans cost one branch and record
    nothing. *)
val set_enabled : bool -> unit

(** [now_s ()] is a monotonically non-decreasing wall-clock reading in
    seconds.  (The OS clock may step backwards; this never does.) *)
val now_s : unit -> float

module Counter : sig
  (** A named monotonic integer, atomic across domains. *)
  type t

  val name : t -> string
  val incr : t -> unit
  val add : t -> int -> unit

  (** Current value.  Reads are not gated on {!Obs.enabled}. *)
  val value : t -> int
end

(** [counter name] registers (or retrieves) the counter [name].
    Raises [Invalid_argument] if [name] is registered as another kind. *)
val counter : string -> Counter.t

module Timer : sig
  (** A named accumulator of elapsed wall-clock time. *)
  type t

  val name : t -> string

  (** [time t f] runs [f ()] and adds its duration to [t] (exceptions
      included).  When collection is disabled this is exactly [f ()]. *)
  val time : t -> (unit -> 'a) -> 'a

  (** [record t dt] adds a pre-measured duration in seconds. *)
  val record : t -> float -> unit

  val total_s : t -> float
  val count : t -> int
end

val timer : string -> Timer.t

module Histogram : sig
  (** A named distribution: count/sum/min/max plus power-of-two buckets
      (upper bounds 1, 2, 4, ..., 2^30, +inf) — the right shape for
      BFS-round and cut-size distributions, which span orders of
      magnitude. *)
  type t

  val name : t -> string
  val observe : t -> float -> unit
  val observe_int : t -> int -> unit
  val count : t -> int
  val sum : t -> float
end

val histogram : string -> Histogram.t

(** [with_span name f] runs [f ()] inside a span: a named, nestable timing
    scope.  Spans with the same name under the same parent are merged
    (count + total time), so the recorded structure is a bounded tree of
    distinct paths, not an unbounded event log.  Exceptions propagate and
    the span still closes.  Intended for coarse operations (one spanner
    build, one experiment) — not per-edge work. *)
val with_span : string -> (unit -> 'a) -> 'a

(** [set_span_hook h] installs (or, with [None], removes) an observer
    called on every span boundary that {!with_span} records: [`Begin]
    right before the body runs and [`End] when it closes (exceptions
    included).  The hook fires only while {!enabled} — spans skipped by
    the master switch are invisible to it.  {!Obs_trace} uses this to turn
    the merged span tree into a time-ordered event log; hooks must not
    call {!with_span} themselves. *)
val set_span_hook : ([ `Begin | `End ] -> string -> unit) option -> unit

(** {1 Snapshots}

    A snapshot is an immutable copy of every registered metric, consumed
    by the sinks in {!Obs_sink}. *)

type histogram_view = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** 0 when the histogram is empty *)
  h_max : float;  (** 0 when the histogram is empty *)
  h_buckets : (float option * int) list;
      (** nonzero buckets only, in increasing bound order; the bound is
          the bucket's inclusive upper edge, [None] for the overflow
          bucket *)
}

type span_view = {
  s_name : string;
  s_count : int;
  s_total_s : float;
  s_children : span_view list;
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  timers : (string * (int * float)) list;  (** name, (count, total seconds) *)
  histograms : (string * histogram_view) list;
  spans : span_view list;
}

val snapshot : unit -> snapshot

(** [reset ()] zeroes every registered metric and clears recorded spans
    (registrations survive).  Call it before a measured section to scope
    the next {!snapshot} to that section. *)
val reset : unit -> unit
