(** Streaming heartbeat: periodic JSON-lines snapshots of the live
    {!Obs} registry, appended to a file while a long run is in flight —
    the time-series complement to the one end-of-run document of
    {!Obs_sink}.

    Instrumented loops call {!pulse} once per logical operation (an LBC
    decision, a simulator round, a pool region); while no stream is
    armed a pulse is one atomic load.  When a beat is due — every
    [interval_s] seconds, or every [every_ops] pulses — one line is
    appended:

    {v
    {"schema":"ftspan.heartbeat.v1","beat":3,"skipped":0,"t_s":1.51,
     "counters":{"lbc.calls":407,"net.retries":12},
     "gauges":{"gauge.net.inflight":12,"gauge.reliable.unacked":3},
     "quantiles":{"reliable.rtt":{"count":913,"p50":4,"p90":8,"p99":20,"p999":30},
                  "pool.utilization":{"count":9,"p50":90,...}},
     "gc":{"minor_words":5.1e6,"promoted_words":...,"major_words":...,
           "minor_collections":12,"major_collections":1,"heap_words":491520}}
    v}

    [counters] holds {e deltas} since the previous beat (nonzero only;
    a counter that went backwards was reset and reports its absolute
    value); [gauges] holds every registered gauge's merged {e absolute}
    level (a gauge is not a rate; deltas would be meaningless);
    [quantiles] holds every non-empty histogram's count and
    p50/p90/p99/p999 per {!Obs.Histogram.quantile}; [gc] is from
    [Gc.quick_stat].  One final beat is always written by {!stop}, so
    even a run shorter than one interval leaves a line.

    Beats may fire from any domain (pulses race; one wins, the others
    skip).  A skipped beat is counted, not silent: every line's
    [skipped] field is the running total of beats lost to the
    [try_lock] race so far — the final beat reports the whole run's
    figure — and the registry counter ["heartbeat.skipped"] tracks the
    same total.  The snapshot honesty caveats of {!Obs.snapshot}
    apply. *)

(** A parsed [--metrics-stream] argument: where to append, and when a
    beat is due.  With both cadence fields [None], beats default to
    once per second; with both set, whichever fires first wins. *)
type spec = {
  file : string;
  interval_s : float option;  (** beat every this many seconds *)
  every_ops : int option;  (** ... or every this many {!pulse} calls *)
}

(** [parse_spec s] parses [FILE[,SECONDS][,ops=K]].  Trailing tokens
    that look like a cadence are recognized from the right (so a comma
    inside the file name still parses); a malformed one ([ops=0], a
    non-positive interval) is an [Error] with a readable message. *)
val parse_spec : string -> (spec, string) result

(** [pp_spec ppf spec] prints the spec back in [parse_spec] syntax. *)
val pp_spec : Format.formatter -> spec -> unit

(** [start spec] (re)arms the stream: truncates [spec.file] and starts
    beating.  An already-armed stream is {!stop}ped first. *)
val start : spec -> unit

(** [stop ()] writes one final beat, closes the file and disarms.  A
    no-op when not armed. *)
val stop : unit -> unit

(** [pulse ()] notes one logical operation and writes a beat if one is
    due.  Safe from any domain; one atomic load when disarmed. *)
val pulse : unit -> unit

(** [beats ()] counts the lines written by the current stream — or, after
    {!stop}, by the last one (for end-of-run summaries). *)
val beats : unit -> int

(** [skipped ()] counts the beats the current (or, after {!stop}, the
    last) stream lost to the [try_lock] race. *)
val skipped : unit -> int
