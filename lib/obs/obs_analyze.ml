(* Offline lifecycle analysis of a ftspan.trace.v1 stream: group message
   events by causal id and answer the service-level questions the live
   counters cannot — where delivery latency goes, which edges amplify
   traffic through retransmission, how deep reordering runs, and which
   edge's slowest delivery gated each synchronizer pulse.

   Every statistic derives from the events' simulated [at] times and the
   deterministic cid numbering, never from the wall-clock [ts_s] stamps,
   so two runs of the same seeded experiment analyze to identical
   reports. *)

type ev =
  | Send of { cid : int; src : int; dst : int; at : float; bits : int }
  | Deliver of { cid : int; src : int; dst : int; at : float }
  | Fate of { kind : string; cid : int; src : int; dst : int }
  | Pulse of { node : int; pulse : int; at : float }
  | Other
  | Malformed of string

type trace = {
  t_seen : int;
  t_sampled : int;
  t_dropped : int;
  t_events : (int * ev) list;  (* (seq, event), document order *)
}

(* ------------------------------ parsing ------------------------------ *)

let field name conv j =
  Option.bind (Obs_json.member name j) conv

let parse_event j =
  match field "type" Obs_json.to_str j with
  | None -> Malformed "event without a \"type\" field"
  | Some ty -> (
      let int name = field name Obs_json.to_int j in
      let num name = field name Obs_json.to_number j in
      let str name = field name Obs_json.to_str j in
      let missing () =
        Malformed (Printf.sprintf "%s event with missing or ill-typed fields" ty)
      in
      match ty with
      | "msg_send" -> (
          match (int "cid", int "src", int "dst", num "at", int "bits") with
          | Some cid, Some src, Some dst, Some at, Some bits ->
              Send { cid; src; dst; at; bits }
          | _ -> missing ())
      | "msg_deliver" -> (
          match (int "cid", int "src", int "dst", num "at") with
          | Some cid, Some src, Some dst, Some at ->
              Deliver { cid; src; dst; at }
          | _ -> missing ())
      | "chaos" -> (
          match (str "kind", int "src", int "dst") with
          | Some kind, Some src, Some dst ->
              (* cid is optional: pre-causal-id traces lack it *)
              let cid = Option.value ~default:(-1) (int "cid") in
              Fate { kind; cid; src; dst }
          | _ -> missing ())
      | "sync_pulse" -> (
          match (int "node", int "pulse", num "at") with
          | Some node, Some pulse, Some at -> Pulse { node; pulse; at }
          | _ -> missing ())
      | _ -> Other)

let parse j =
  let ( let* ) = Result.bind in
  let top name conv =
    match field name conv j with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "trace: missing or ill-typed %S" name)
  in
  let* schema = top "schema" Obs_json.to_str in
  if schema <> "ftspan.trace.v1" then
    Error (Printf.sprintf "trace: unexpected schema %S" schema)
  else
    let* seen = top "seen" Obs_json.to_int in
    let* sampled = top "sampled" Obs_json.to_int in
    let* dropped = top "dropped" Obs_json.to_int in
    let* events = top "events" Obs_json.to_list in
    let parsed =
      List.map
        (fun e ->
          match field "seq" Obs_json.to_int e with
          | Some seq -> (seq, parse_event e)
          | None -> (-1, Malformed "event without a \"seq\" field"))
        events
    in
    Ok { t_seen = seen; t_sampled = sampled; t_dropped = dropped;
         t_events = parsed }

let load file =
  match
    In_channel.with_open_text file In_channel.input_all
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match Obs_json.of_string text with
      | Error e -> Error (Printf.sprintf "%s: %s" file e)
      | Ok j -> parse j)

(* ---------------------------- validation ----------------------------- *)

let validate tr =
  let bad = ref [] in
  let note fmt = Printf.ksprintf (fun s -> bad := s :: !bad) fmt in
  if tr.t_seen < 0 || tr.t_sampled < 0 || tr.t_dropped < 0 then
    note "negative seen/sampled/dropped accounting";
  if tr.t_sampled > tr.t_seen then
    note "sampled (%d) exceeds seen (%d)" tr.t_sampled tr.t_seen;
  if List.length tr.t_events > tr.t_sampled then
    note "more events (%d) than sampled (%d)"
      (List.length tr.t_events) tr.t_sampled;
  let last_seq = ref (-1) in
  List.iter
    (fun (seq, ev) ->
      (match ev with
      | Malformed msg -> note "seq %d: %s" seq msg
      | _ -> ());
      if seq <= !last_seq then
        note "non-monotonic event seq (%d after %d)" seq !last_seq;
      last_seq := seq)
    tr.t_events;
  (* With nothing sampled out or overwritten, every delivery's send must
     be present (cid pair-sampling guarantees it; a violation means the
     producer broke the lifecycle contract). *)
  if tr.t_dropped = 0 then begin
    let sent = Hashtbl.create 256 in
    List.iter
      (fun (_, ev) ->
        match ev with
        | Send { cid; _ } when cid >= 0 -> Hashtbl.replace sent cid ()
        | _ -> ())
      tr.t_events;
    List.iter
      (fun (seq, ev) ->
        match ev with
        | Deliver { cid; _ } when cid >= 0 && not (Hashtbl.mem sent cid) ->
            note "seq %d: delivery of cid %d without a send" seq cid
        | _ -> ())
      tr.t_events
  end;
  List.rev !bad

(* ----------------------------- analysis ------------------------------ *)

type edge_stat = {
  e_src : int;
  e_dst : int;
  e_msgs : int;  (* distinct application messages (cids) *)
  e_sends : int;  (* transmission attempts, retransmits included *)
  e_delivers : int;
  e_retransmits : int;
  e_giveups : int;
  e_amplification : float;  (* e_sends / e_msgs; 1.0 = no retransmission *)
  e_max_reorder : int;
  e_reordered : int;  (* first deliveries that overtook an earlier send *)
}

type pulse_stat = {
  p_pulse : int;
  p_node : int;  (* last node to enter the pulse *)
  p_at : float;
  p_gate : (int * int * float) option;
      (* (src, dst, deliver time) of the latest delivery to that node
         at or before the pulse entry — the edge that gated the pulse *)
}

type quantile = { q_label : string; q_value : float }

type report = {
  a_messages : int;
  a_sends : int;
  a_delivers : int;
  a_delivered : int;  (* messages with at least one delivery *)
  a_retransmits : int;
  a_giveups : int;
  a_acks : int;
  a_dup_suppressed : int;
  a_drops : int;
  a_dups : int;
  a_latency : quantile list;  (* exact offline quantiles; [] if none *)
  a_latency_mean : float;
  a_latency_max : float;
  a_edges : edge_stat list;  (* busiest first, capped at [top] *)
  a_edges_total : int;  (* edges with traffic, before capping *)
  a_max_reorder : int;
  a_reordered : int;
  a_pulses : pulse_stat list;  (* one per pulse number, ascending *)
}

let exact_quantiles values =
  let n = Array.length values in
  if n = 0 then []
  else begin
    Array.sort compare values;
    List.map
      (fun (q_label, q) ->
        let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
        let rank = if rank < 1 then 1 else if rank > n then n else rank in
        { q_label; q_value = values.(rank - 1) })
      [ ("p50", 0.5); ("p90", 0.9); ("p99", 0.99); ("p999", 0.999) ]
  end

type cid_life = {
  mutable l_first_send : float;
  mutable l_first_deliver : float;
  mutable l_sends : int;
  mutable l_delivers : int;
}

type edge_acc = {
  mutable g_msgs : int;
  mutable g_sends : int;
  mutable g_delivers : int;
  mutable g_retransmits : int;
  mutable g_giveups : int;
  (* reorder tracking: per-edge send order index by cid, running max
     delivered index, max observed depth, inversion count *)
  g_send_idx : (int, int) Hashtbl.t;
  g_delivered : (int, unit) Hashtbl.t;
  mutable g_next_idx : int;
  mutable g_max_seen_idx : int;
  mutable g_max_reorder : int;
  mutable g_reordered : int;
}

let analyze ?(top = 10) tr =
  if top < 0 then invalid_arg "Obs_analyze.analyze: top must be >= 0";
  let lives : (int, cid_life) Hashtbl.t = Hashtbl.create 1024 in
  let life cid =
    match Hashtbl.find_opt lives cid with
    | Some l -> l
    | None ->
        let l =
          { l_first_send = nan; l_first_deliver = nan; l_sends = 0;
            l_delivers = 0 }
        in
        Hashtbl.add lives cid l;
        l
  in
  let edges : (int * int, edge_acc) Hashtbl.t = Hashtbl.create 256 in
  let edge src dst =
    let key = (src, dst) in
    match Hashtbl.find_opt edges key with
    | Some e -> e
    | None ->
        let e =
          { g_msgs = 0; g_sends = 0; g_delivers = 0; g_retransmits = 0;
            g_giveups = 0; g_send_idx = Hashtbl.create 64;
            g_delivered = Hashtbl.create 64; g_next_idx = 0;
            g_max_seen_idx = -1; g_max_reorder = 0; g_reordered = 0 }
        in
        Hashtbl.add edges key e;
        e
  in
  let sends = ref 0 and delivers = ref 0 in
  let retransmits = ref 0 and giveups = ref 0 in
  let acks = ref 0 and dup_suppressed = ref 0 in
  let drops = ref 0 and dups = ref 0 in
  let pulses : (int, int * float) Hashtbl.t = Hashtbl.create 64 in
  let node_deliver : (int, (int * int * float) list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Send { cid; src; dst; at; _ } ->
          incr sends;
          let e = edge src dst in
          e.g_sends <- e.g_sends + 1;
          if cid >= 0 then begin
            let l = life cid in
            l.l_sends <- l.l_sends + 1;
            if Float.is_nan l.l_first_send || at < l.l_first_send then
              l.l_first_send <- at;
            if not (Hashtbl.mem e.g_send_idx cid) then begin
              Hashtbl.add e.g_send_idx cid e.g_next_idx;
              e.g_next_idx <- e.g_next_idx + 1;
              e.g_msgs <- e.g_msgs + 1
            end
          end
          else e.g_msgs <- e.g_msgs + 1
      | Deliver { cid; src; dst; at } ->
          incr delivers;
          let e = edge src dst in
          e.g_delivers <- e.g_delivers + 1;
          if cid >= 0 then begin
            let l = life cid in
            l.l_delivers <- l.l_delivers + 1;
            if Float.is_nan l.l_first_deliver || at < l.l_first_deliver then
              l.l_first_deliver <- at;
            (* reorder depth: a first delivery overtaken by [d] younger
               messages already delivered on this directed edge *)
            (match Hashtbl.find_opt e.g_send_idx cid with
            | Some idx when not (Hashtbl.mem e.g_delivered cid) ->
                Hashtbl.add e.g_delivered cid ();
                if e.g_max_seen_idx > idx then begin
                  let depth = e.g_max_seen_idx - idx in
                  e.g_reordered <- e.g_reordered + 1;
                  if depth > e.g_max_reorder then e.g_max_reorder <- depth
                end
                else e.g_max_seen_idx <- idx
            | _ -> ());
            Hashtbl.replace node_deliver dst
              ((src, dst, at)
              :: Option.value ~default:[] (Hashtbl.find_opt node_deliver dst))
          end
      | Fate { kind; src; dst; _ } -> (
          match kind with
          | "retransmit" ->
              incr retransmits;
              let e = edge src dst in
              e.g_retransmits <- e.g_retransmits + 1
          | "giveup" ->
              incr giveups;
              let e = edge src dst in
              e.g_giveups <- e.g_giveups + 1
          | "ack" -> incr acks
          | "dup_suppress" -> incr dup_suppressed
          | "drop" -> incr drops
          | "dup" -> incr dups
          | _ -> ())
      | Pulse { node; pulse; at } -> (
          (* the gating node enters last; ties go to the smaller id so
             the answer is deterministic *)
          match Hashtbl.find_opt pulses pulse with
          | Some (n0, at0) when at0 > at || (at0 = at && n0 <= node) -> ()
          | _ -> Hashtbl.replace pulses pulse (node, at))
      | Other | Malformed _ -> ())
    tr.t_events;
  let latencies =
    Hashtbl.fold
      (fun _ l acc ->
        if Float.is_nan l.l_first_send || Float.is_nan l.l_first_deliver then
          acc
        else (l.l_first_deliver -. l.l_first_send) :: acc)
      lives []
  in
  let lat_arr = Array.of_list latencies in
  let lat_n = Array.length lat_arr in
  let lat_sum = Array.fold_left ( +. ) 0. lat_arr in
  let lat_max = Array.fold_left Float.max neg_infinity lat_arr in
  let delivered =
    Hashtbl.fold (fun _ l acc -> if l.l_delivers > 0 then acc + 1 else acc)
      lives 0
  in
  let edge_list =
    Hashtbl.fold
      (fun (src, dst) e acc ->
        {
          e_src = src;
          e_dst = dst;
          e_msgs = e.g_msgs;
          e_sends = e.g_sends;
          e_delivers = e.g_delivers;
          e_retransmits = e.g_retransmits;
          e_giveups = e.g_giveups;
          e_amplification =
            (if e.g_msgs = 0 then 0.
             else float_of_int e.g_sends /. float_of_int e.g_msgs);
          e_max_reorder = e.g_max_reorder;
          e_reordered = e.g_reordered;
        }
        :: acc)
      edges []
  in
  let edge_sorted =
    List.sort
      (fun a b ->
        if a.e_sends <> b.e_sends then compare b.e_sends a.e_sends
        else compare (a.e_src, a.e_dst) (b.e_src, b.e_dst))
      edge_list
  in
  let pulse_list =
    Hashtbl.fold (fun p (node, at) acc -> (p, node, at) :: acc) pulses []
    |> List.sort compare
    |> List.map (fun (p, node, at) ->
           let gate =
             match Hashtbl.find_opt node_deliver node with
             | None -> None
             | Some ds ->
                 List.fold_left
                   (fun best (src, dst, t) ->
                     if t > at then best
                     else
                       match best with
                       | Some (_, _, tb) when tb >= t -> best
                       | _ -> Some (src, dst, t))
                   None ds
           in
           { p_pulse = p; p_node = node; p_at = at; p_gate = gate })
  in
  {
    a_messages = Hashtbl.length lives;
    a_sends = !sends;
    a_delivers = !delivers;
    a_delivered = delivered;
    a_retransmits = !retransmits;
    a_giveups = !giveups;
    a_acks = !acks;
    a_dup_suppressed = !dup_suppressed;
    a_drops = !drops;
    a_dups = !dups;
    a_latency = exact_quantiles lat_arr;
    a_latency_mean = (if lat_n = 0 then 0. else lat_sum /. float_of_int lat_n);
    a_latency_max = (if lat_n = 0 then 0. else lat_max);
    a_edges = List.filteri (fun i _ -> i < top) edge_sorted;
    a_edges_total = List.length edge_sorted;
    a_max_reorder =
      List.fold_left (fun m e -> max m e.e_max_reorder) 0 edge_list;
    a_reordered = List.fold_left (fun m e -> m + e.e_reordered) 0 edge_list;
    a_pulses = pulse_list;
  }

(* ----------------------------- rendering ----------------------------- *)

let pp_report ppf r =
  let open Format in
  fprintf ppf "@[<v>messages: %d (%d delivered, %d sends, %d deliveries)@,"
    r.a_messages r.a_delivered r.a_sends r.a_delivers;
  fprintf ppf
    "fates: %d retransmits, %d giveups, %d acks, %d dup-suppressed, %d \
     drops, %d dups@,"
    r.a_retransmits r.a_giveups r.a_acks r.a_dup_suppressed r.a_drops r.a_dups;
  (match r.a_latency with
  | [] -> fprintf ppf "delivery latency: no delivered messages@,"
  | qs ->
      fprintf ppf "delivery latency: mean=%g max=%g" r.a_latency_mean
        r.a_latency_max;
      List.iter (fun q -> fprintf ppf " %s=%g" q.q_label q.q_value) qs;
      fprintf ppf "@,");
  fprintf ppf "reordering: %d deliveries overtaken, max depth %d@,"
    r.a_reordered r.a_max_reorder;
  fprintf ppf "edges with traffic: %d (showing %d)@," r.a_edges_total
    (List.length r.a_edges);
  List.iter
    (fun e ->
      fprintf ppf
        "  %d->%d: msgs=%d sends=%d delivers=%d retransmits=%d amp=%.2f"
        e.e_src e.e_dst e.e_msgs e.e_sends e.e_delivers e.e_retransmits
        e.e_amplification;
      if e.e_giveups > 0 then fprintf ppf " giveups=%d" e.e_giveups;
      if e.e_reordered > 0 then
        fprintf ppf " reordered=%d (depth<=%d)" e.e_reordered e.e_max_reorder;
      fprintf ppf "@,")
    r.a_edges;
  if r.a_pulses <> [] then begin
    fprintf ppf "synchronizer critical path:@,";
    List.iter
      (fun p ->
        fprintf ppf "  pulse %d: gated by node %d at %g" p.p_pulse p.p_node
          p.p_at;
        (match p.p_gate with
        | Some (src, dst, t) ->
            fprintf ppf " (last delivery %d->%d at %g)" src dst t
        | None -> fprintf ppf " (no prior delivery in trace)");
        fprintf ppf "@,")
      r.a_pulses
  end;
  fprintf ppf "@]"

let json_of_report r =
  let open Obs_json in
  Obj
    [
      ("schema", String "ftspan.trace-report.v1");
      ("messages", Int r.a_messages);
      ("delivered", Int r.a_delivered);
      ("sends", Int r.a_sends);
      ("delivers", Int r.a_delivers);
      ("retransmits", Int r.a_retransmits);
      ("giveups", Int r.a_giveups);
      ("acks", Int r.a_acks);
      ("dup_suppressed", Int r.a_dup_suppressed);
      ("drops", Int r.a_drops);
      ("dups", Int r.a_dups);
      ( "latency",
        if r.a_latency = [] then Null
        else
          Obj
            (("mean", Float r.a_latency_mean)
            :: ("max", Float r.a_latency_max)
            :: List.map (fun q -> (q.q_label, Float q.q_value)) r.a_latency) );
      ("max_reorder_depth", Int r.a_max_reorder);
      ("reordered_deliveries", Int r.a_reordered);
      ("edges_with_traffic", Int r.a_edges_total);
      ( "edges",
        List
          (List.map
             (fun e ->
               Obj
                 [
                   ("src", Int e.e_src); ("dst", Int e.e_dst);
                   ("msgs", Int e.e_msgs); ("sends", Int e.e_sends);
                   ("delivers", Int e.e_delivers);
                   ("retransmits", Int e.e_retransmits);
                   ("giveups", Int e.e_giveups);
                   ("amplification", Float e.e_amplification);
                   ("max_reorder", Int e.e_max_reorder);
                   ("reordered", Int e.e_reordered);
                 ])
             r.a_edges) );
      ( "critical_path",
        List
          (List.map
             (fun p ->
               Obj
                 (("pulse", Int p.p_pulse)
                 :: ("node", Int p.p_node)
                 :: ("at", Float p.p_at)
                 ::
                 (match p.p_gate with
                 | None -> []
                 | Some (src, dst, t) ->
                     [
                       ( "gate",
                         Obj
                           [
                             ("src", Int src); ("dst", Int dst);
                             ("at", Float t);
                           ] );
                     ])))
             r.a_pulses) );
    ]
