(* Persistent domain pool with dynamically chunked parallel-for.

   Scheduling model: one shared atomic cursor per region.  Claiming a
   chunk is a single fetch-and-add, so the "deque" degenerates to the
   cheapest possible sharded queue — every worker steals from the same
   tail.  For the workloads this repo fans out (per-edge LBC verdicts,
   per-fault stretch sweeps) chunk costs dwarf the claim cost by orders
   of magnitude, and the single cursor keeps the claim order irrelevant
   to results: callers write by index.

   Synchronization: helpers park on [work] waiting for the generation
   counter to move; the caller bumps it under the mutex, broadcasts, runs
   its own share, then parks on [donec] until every helper checked back
   in.  The mutex hand-offs double as the memory barriers that publish
   the region closure to helpers and their writes (verdict arrays, busy
   times) back to the caller. *)

let jobs_override = ref None

let set_default_jobs n =
  if n < 1 then invalid_arg "Exec.set_default_jobs: jobs must be >= 1";
  jobs_override := Some n

let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "FTSPAN_JOBS" with
      | None -> 1
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | _ -> 1))

let m_regions = Obs.counter "pool.regions"
let m_tasks = Obs.counter "pool.tasks"
let m_steals = Obs.counter "pool.steals"
let h_utilization = Obs.histogram "pool.utilization"

module Pool = struct
  type t = {
    id : int;
    size : int;
    mutex : Mutex.t;
    work : Condition.t;  (* helpers park here between regions *)
    donec : Condition.t;  (* the caller parks here until helpers finish *)
    mutable job : (int -> unit) option;
    mutable generation : int;
    mutable active : int;  (* helpers still inside the current region *)
    mutable stopped : bool;
    mutable in_region : bool;  (* caller-side nesting guard *)
    mutable helpers : unit Domain.t array;
    busy_timers : Obs.Timer.t array;  (* pool.busy.N, N = worker index *)
  }

  let next_id = Atomic.make 0
  let size t = t.size
  let id t = t.id

  (* Helper [w] parks until the generation moves past the last region it
     ran, executes the published job, and checks back in.  The job
     closure catches its own exceptions (see [parallel_for]), so a raise
     can never unwind this loop and leak the domain. *)
  let rec helper_loop pool w gen =
    Mutex.lock pool.mutex;
    while (not pool.stopped) && pool.generation = gen do
      Condition.wait pool.work pool.mutex
    done;
    if pool.stopped then Mutex.unlock pool.mutex
    else begin
      let gen' = pool.generation in
      let job = Option.get pool.job in
      Mutex.unlock pool.mutex;
      (try job w with _ -> ());
      Mutex.lock pool.mutex;
      pool.active <- pool.active - 1;
      if pool.active = 0 then Condition.broadcast pool.donec;
      Mutex.unlock pool.mutex;
      helper_loop pool w gen'
    end

  let create ~domains () =
    if domains < 1 then invalid_arg "Exec.Pool.create: domains must be >= 1";
    let pool =
      {
        id = Atomic.fetch_and_add next_id 1;
        size = domains;
        mutex = Mutex.create ();
        work = Condition.create ();
        donec = Condition.create ();
        job = None;
        generation = 0;
        active = 0;
        stopped = false;
        in_region = false;
        helpers = [||];
        busy_timers =
          Array.init domains (fun w ->
              Obs.timer (Printf.sprintf "pool.busy.%d" w));
      }
    in
    pool.helpers <-
      Array.init (domains - 1) (fun i ->
          Domain.spawn (fun () -> helper_loop pool (i + 1) 0));
    pool

  let shutdown pool =
    Mutex.lock pool.mutex;
    if pool.stopped then Mutex.unlock pool.mutex
    else begin
      pool.stopped <- true;
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      Array.iter Domain.join pool.helpers
    end

  let with_pool ~domains f =
    let pool = create ~domains () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

  (* Publish [job], run the caller's share, wait for the helpers. *)
  let run_region pool job =
    Mutex.lock pool.mutex;
    if pool.stopped then begin
      Mutex.unlock pool.mutex;
      invalid_arg "Exec.parallel_for: pool is shut down"
    end;
    pool.job <- Some job;
    pool.generation <- pool.generation + 1;
    pool.active <- pool.size - 1;
    Condition.broadcast pool.work;
    Mutex.unlock pool.mutex;
    job 0;
    Mutex.lock pool.mutex;
    while pool.active > 0 do
      Condition.wait pool.donec pool.mutex
    done;
    pool.job <- None;
    Mutex.unlock pool.mutex
end

let region_seq = Atomic.make 0

(* Flush one region's scheduling telemetry.  Runs on the caller, after
   the region closed.  The per-worker [pool.busy.N] timers are NOT
   recorded here: each worker records its own share from its own domain
   (the timers are sharded per domain, so that is exact), and the
   region's closing mutex hand-off publishes those writes before any
   caller-side read merges them. *)
let record_region _pool ~tasks ~steals ~busy ~elapsed =
  Obs.Counter.incr m_regions;
  Obs.Counter.add m_tasks tasks;
  Obs.Counter.add m_steals steals;
  let total_busy = Array.fold_left ( +. ) 0. busy in
  if elapsed > 0. then
    Obs.Histogram.observe h_utilization
      (100. *. total_busy /. (elapsed *. float_of_int (Array.length busy)))

let parallel_for ?chunk pool ~lo ~hi body =
  if hi > lo then begin
    let span = hi - lo in
    let workers = Pool.size pool in
    let chunk =
      match chunk with
      | Some c when c >= 1 -> c
      | Some _ -> invalid_arg "Exec.parallel_for: chunk must be >= 1"
      | None -> max 1 (min 64 (span / (workers * 8)))
    in
    if Obs_trace.enabled () then
      Obs_trace.emit
        (Obs_trace.Phase
           { name = "pool.parallel_for"; index = Atomic.fetch_and_add region_seq 1 });
    Obs.with_span "pool.parallel_for" @@ fun () ->
    if workers = 1 || span <= chunk || pool.Pool.in_region then begin
      (* Sequential fast path: a 1-domain pool, a range too small to
         split, or a nested submission from inside a region (helpers do
         not re-enter the scheduler; the work runs inline instead). *)
      let t0 = Unix.gettimeofday () in
      body ~worker:0 lo hi;
      let dt = Unix.gettimeofday () -. t0 in
      if dt > 0. then Obs.Timer.record pool.Pool.busy_timers.(0) dt;
      let busy = Array.make workers 0. in
      busy.(0) <- dt;
      record_region pool ~tasks:1 ~steals:0 ~busy ~elapsed:dt;
      Obs_heartbeat.pulse ()
    end
    else begin
      let next = Atomic.make lo in
      let failure = Atomic.make None in
      let tasks = Atomic.make 0 and steals = Atomic.make 0 in
      let busy = Array.make workers 0. in
      let run w =
        let t0 = Unix.gettimeofday () in
        let continue = ref true in
        while !continue do
          let l = Atomic.fetch_and_add next chunk in
          if l >= hi then continue := false
          else begin
            Atomic.incr tasks;
            if w <> 0 then Atomic.incr steals;
            let h = min hi (l + chunk) in
            try body ~worker:w l h
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)));
              (* Stop the cursor so no further chunk is claimed; chunks
                 already claimed finish on their own workers. *)
              Atomic.set next hi;
              continue := false
          end
        done;
        let dt = Unix.gettimeofday () -. t0 in
        (* Recorded on the worker's own domain: the sharded timer makes
           this exact, where a caller-side flush was best-effort. *)
        if dt > 0. then Obs.Timer.record pool.Pool.busy_timers.(w) dt;
        busy.(w) <- busy.(w) +. dt
      in
      let t0 = Unix.gettimeofday () in
      pool.Pool.in_region <- true;
      Fun.protect
        ~finally:(fun () -> pool.Pool.in_region <- false)
        (fun () -> Pool.run_region pool run);
      record_region pool ~tasks:(Atomic.get tasks) ~steals:(Atomic.get steals)
        ~busy
        ~elapsed:(Unix.gettimeofday () -. t0);
      Obs_heartbeat.pulse ();
      match Atomic.get failure with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ()
    end
  end

module Worker_local = struct
  type 'a t = { init : int -> 'a; slots : 'a option array }

  let create pool init = { init; slots = Array.make (Pool.size pool) None }

  let get t ~worker =
    match t.slots.(worker) with
    | Some v -> v
    | None ->
        let v = t.init worker in
        t.slots.(worker) <- Some v;
        v
end
