(** Persistent domain-pool executor: the parallel substrate under every
    multicore code path in the library.

    The paper's greedy spends its whole budget in per-edge [LBC(2k-1, f)]
    calls whose costs vary wildly — a [Yes] can return after one BFS, a
    [No] burns [alpha + 1] rounds — so static equal chunks leave domains
    idle behind one expensive chunk, and spawning fresh domains per batch
    (the old, since-removed [Batch_greedy.build_parallel]) pays domain
    startup on every round.  This module fixes both: a {!Pool} is a set of worker domains
    created {e once}, parked on a condition variable between regions, and
    handed dynamically-chunked index ranges through one shared atomic
    cursor, so uneven work load-balances by construction and steady-state
    regions spawn nothing.

    {b Determinism contract.}  {!parallel_for} partitions [\[lo, hi)] into
    chunks and promises only {e that every index is passed to [body]
    exactly once} (in some order, on some worker).  Callers that write
    results {e by index} into pre-sized arrays — the way
    {!Batch_greedy.build} records verdicts and {!Verify.stretch_many}
    records stretches — therefore produce {e bit-identical} results
    regardless of the domain count, the chunk size, or which worker stole
    which range.  Do not fold results in completion order; index-addressed
    writes are the contract.

    Telemetry (all under the [pool.] prefix, which the bench regression
    gate deliberately ignores — chunk claims are scheduling, not
    algorithm, counters): [pool.regions], [pool.tasks] (chunks executed),
    [pool.steals] (chunks executed by a helper domain rather than the
    submitting one), per-worker busy timers [pool.busy.N], and a
    [pool.utilization] histogram of percent-busy per region.  While
    {!Obs_trace} collects, each region additionally emits a
    [Phase {name = "pool.parallel_for"}] event and runs inside a
    [pool.parallel_for] span, so the trace viewer shows the fan-out. *)

(** Default worker count for tools: the value set by {!set_default_jobs}
    (the CLI's [--jobs]), else the [FTSPAN_JOBS] environment variable,
    else [1].  Malformed or non-positive values of [FTSPAN_JOBS] read as
    [1]. *)
val default_jobs : unit -> int

(** [set_default_jobs n] overrides {!default_jobs} for this process.
    Raises [Invalid_argument] if [n < 1]. *)
val set_default_jobs : int -> unit

module Pool : sig
  (** A fixed team of [domains - 1] helper domains plus the calling
      domain.  Helpers are spawned by {!create} and live until
      {!shutdown}; between regions they block on a condition variable and
      cost nothing.

      Ownership: a pool belongs to the domain that created it.  Only that
      domain may submit regions or shut the pool down.  A region
      submitted from inside another region on the same pool runs inline
      on the submitting worker (no deadlock, same determinism). *)
  type t

  (** [create ~domains ()] spawns [domains - 1] helper domains
      ([domains = 1] spawns none — a sequential pool).  Raises
      [Invalid_argument] if [domains < 1]. *)
  val create : domains:int -> unit -> t

  (** Total workers, the caller included: the [domains] of {!create}.
      Worker indices passed to {!parallel_for} bodies range over
      [0 .. size - 1]; index [0] is always the submitting domain, and a
      given helper always reports the same index, so per-worker state
      (workspaces) binds to a fixed domain for the pool's lifetime. *)
  val size : t -> int

  (** A process-unique id, stable for the pool's lifetime — the key
      callers use to cache per-pool state ({!Batch_greedy} keeps its
      per-worker LBC workspaces under it). *)
  val id : t -> int

  (** [shutdown p] wakes every helper, waits for them to exit, and joins
      their domains.  Idempotent.  Must not be called while a region is
      running.  Submitting to a shut-down pool raises
      [Invalid_argument]. *)
  val shutdown : t -> unit

  (** [with_pool ~domains f] is [f (create ~domains ())] with a
      guaranteed {!shutdown} on every exit path. *)
  val with_pool : domains:int -> (t -> 'a) -> 'a
end

(** [parallel_for ?chunk pool ~lo ~hi body] runs
    [body ~worker l h] over disjoint subranges [\[l, h)] covering
    [\[lo, hi)] exactly once, fanned out over the pool's workers.

    Ranges are claimed dynamically: workers repeatedly take the next
    [chunk] indices from a shared cursor until the range is exhausted, so
    a worker stuck on an expensive chunk never idles the others.  [chunk]
    defaults to a size that yields several chunks per worker; pass an
    explicit value to tune the balance between steal granularity and
    cursor contention.  Raises [Invalid_argument] if [chunk < 1].

    [worker] identifies the executing worker ([0 .. Pool.size - 1], [0] =
    the caller); use it to index per-worker scratch state.  [body] must
    not submit to the same pool from a helper, must not mutate state
    shared across indices, and should write its results by index (see the
    determinism contract above).

    If [body] raises, the region stops claiming new chunks, every worker
    returns to its parking lot (no helper is leaked or wedged — the pool
    stays usable), and the first exception re-raises in the caller with
    its original backtrace.  Chunks already claimed when the exception
    hit may still have run; treat the output arrays as garbage.

    Empty ranges ([hi <= lo]) return immediately and record nothing. *)
val parallel_for :
  ?chunk:int ->
  Pool.t ->
  lo:int ->
  hi:int ->
  (worker:int -> int -> int -> unit) ->
  unit

module Worker_local : sig
  (** Lazily-initialized per-worker state for one pool: slot [w] is
      created on worker [w]'s first {!get} and then reused by that worker
      only, so access is race-free without locks.  This is how per-domain
      scratch (an [Lbc.Workspace]) persists across batches and across
      builds on the same pool. *)
  type 'a t

  (** [create pool init] allocates one empty slot per pool worker;
      [init w] runs on worker [w] at its first {!get}. *)
  val create : Pool.t -> (int -> 'a) -> 'a t

  (** [get t ~worker] is worker [worker]'s slot, initializing it on first
      use.  Must only be called with the caller's own worker index (from
      a {!parallel_for} body, or [~worker:0] outside any region). *)
  val get : 'a t -> worker:int -> 'a
end
