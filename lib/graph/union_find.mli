(** Disjoint-set forest with union by rank and path compression. *)

type t

(** [create n] makes [n] singleton sets [0..n-1]. *)
val create : int -> t

(** [find uf x] is the canonical representative of [x]'s set. *)
val find : t -> int -> int

(** [union uf x y] merges the sets of [x] and [y]; returns [true] when they
    were previously distinct. *)
val union : t -> int -> int -> bool

(** [same uf x y] tests whether [x] and [y] share a set. *)
val same : t -> int -> int -> bool

(** [count uf] is the current number of disjoint sets. *)
val count : t -> int
