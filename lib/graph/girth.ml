(* BFS from [src], truncated at depth [limit].  Whenever an edge joins two
   already-seen vertices we have found a cycle through [src]'s BFS tree of
   length at most [depth u + depth v + 1]; the minimum over all such events
   and all sources is the exact girth (the standard O(nm) algorithm: for the
   shortest cycle C and a vertex src on C, the BFS from src certifies
   |C|). *)
let shortest_cycle_through g src ~limit =
  let n = Graph.n g in
  let depth = Array.make n (-1) in
  let parent_edge = Array.make n (-1) in
  let queue = Array.make n 0 in
  depth.(src) <- 0;
  queue.(0) <- src;
  let head = ref 0 and tail = ref 1 in
  let best = ref max_int in
  while !head < !tail do
    let x = queue.(!head) in
    incr head;
    if depth.(x) < limit then
      let visit y id =
        if id <> parent_edge.(x) then
          if depth.(y) < 0 then begin
            depth.(y) <- depth.(x) + 1;
            parent_edge.(y) <- id;
            queue.(!tail) <- y;
            incr tail
          end
          else begin
            (* Non-tree edge: cycle of length depth x + depth y + 1 (it may
               not pass through src, but then an even shorter cycle is found
               from another source). *)
            let len = depth.(x) + depth.(y) + 1 in
            if len < !best then best := len
          end
      in
      Graph.iter_neighbors g x visit
  done;
  !best

let girth g =
  let best = ref max_int in
  for src = 0 to Graph.n g - 1 do
    let limit = if !best = max_int then Graph.n g else (!best / 2) + 1 in
    let c = shortest_cycle_through g src ~limit in
    if c < !best then best := c
  done;
  if !best = max_int then None else Some !best

let girth_exceeds g ~bound =
  let limit = (bound / 2) + 1 in
  let rec loop src =
    if src >= Graph.n g then true
    else if shortest_cycle_through g src ~limit <= bound then false
    else loop (src + 1)
  in
  loop 0
