(** Minimal binary min-heap with float keys and integer payloads.

    Tailored to Dijkstra: supports lazy deletion (duplicate pushes with
    improved keys) rather than decrease-key. *)

type t

(** [create ~capacity] allocates a heap; it grows as needed. *)
val create : capacity:int -> t

val is_empty : t -> bool
val length : t -> int

(** [push h key payload] inserts an entry. *)
val push : t -> float -> int -> unit

(** [pop_min h] removes and returns the entry with the smallest key. *)
val pop_min : t -> (float * int) option

val clear : t -> unit
