type t = {
  n : int;
  m : int;
  min_degree : int;
  max_degree : int;
  avg_degree : float;
  density : float;
  total_weight : float;
  components : int;
}

let compute g =
  let n = Graph.n g and m = Graph.m g in
  let min_d = ref max_int and max_d = ref 0 in
  for v = 0 to n - 1 do
    let d = Graph.degree g v in
    if d < !min_d then min_d := d;
    if d > !max_d then max_d := d
  done;
  let pairs = float_of_int n *. float_of_int (n - 1) /. 2. in
  {
    n;
    m;
    min_degree = (if n = 0 then 0 else !min_d);
    max_degree = !max_d;
    avg_degree = (if n = 0 then 0. else 2. *. float_of_int m /. float_of_int n);
    density = (if n < 2 then 0. else float_of_int m /. pairs);
    total_weight = Graph.total_weight g;
    components = Components.count g;
  }

let degree_histogram g =
  let hist = Array.make (Graph.max_degree g + 1) 0 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    hist.(d) <- hist.(d) + 1
  done;
  hist

let diameter g =
  let best = ref 0 in
  for v = 0 to Graph.n g - 1 do
    let e = Bfs.eccentricity g v in
    if e > !best then best := e
  done;
  !best

let pp ppf s =
  Format.fprintf ppf
    "n=%d m=%d deg[%d..%d] avg=%.2f density=%.4f weight=%.2f components=%d"
    s.n s.m s.min_degree s.max_degree s.avg_degree s.density s.total_weight
    s.components
