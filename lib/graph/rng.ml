type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

let split rng = Random.State.split rng

let copy rng = Random.State.copy rng

let int rng bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  Random.State.int rng bound

let float rng bound = Random.State.float rng bound

let bool rng = Random.State.bool rng

let bernoulli rng ~p =
  if p <= 0. then false
  else if p >= 1. then true
  else Random.State.float rng 1.0 < p

let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  (* Inverse-CDF sampling; [1. -. u] avoids log 0. *)
  let u = Random.State.float rng 1.0 in
  -.log (1. -. u) /. rate

let uniform_weight rng ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform_weight: hi < lo";
  lo +. Random.State.float rng (hi -. lo)

let shuffle rng a =
  let n = Array.length a in
  for i = n - 1 downto 1 do
    let j = Random.State.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation rng n =
  let a = Array.init n (fun i -> i) in
  shuffle rng a;
  a

let sample_without_replacement rng ~k ~n =
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  (* Classic sequential sampling (Knuth 3.4.2 S): O(n) time, sorted output. *)
  let rec loop i chosen acc =
    if chosen = k then List.rev acc
    else
      let remaining = n - i in
      let needed = k - chosen in
      if Random.State.int rng remaining < needed then
        loop (i + 1) (chosen + 1) (i :: acc)
      else loop (i + 1) chosen acc
  in
  loop 0 0 []

let pick rng a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Rng.pick: empty array";
  a.(Random.State.int rng n)
