(** Incremental compressed-sparse-row (CSR) adjacency with pluggable
    packed storage.

    The flat core behind {!Graph}: incident half-edges live in packed
    arrays instead of cons lists, so the traversal inner loops ({!Bfs},
    {!Dijkstra}, {!Hop_dp}) walk contiguous memory.  Two regions hold
    the half-edges of a vertex [u]:

    - the {b packed region} — [nbr.(i)]/[eid.(i)] for
      [i] in [off.(u) .. off.(u+1) - 1], the classic CSR layout, stored
      in one of two {!backend}s:
      {ul
       {- [Int_array] — native OCaml [int array]s (one word per entry);}
       {- [Int32_bigarray] — [int32] C-layout [Bigarray]s, half the
          resident bytes and cache-denser inner loops, indexable up to
          [Int32.max_int] half-edges.  Binary graph files
          ({!Graph_binio}) map straight into this backend.}}
    - the {b append buffer} — a chain starting at [buf_head.(u)] through
      [buf_next], holding the half-edges added since the last
      compaction.  Always native [int array]s: it is small and
      mutation-heavy, so the backend seam only covers the packed bulk.

    {!add} appends into the buffer in O(1) and, once the buffer holds
    more than a quarter of the packed half-edges (floor
    {!compaction_floor}), merges it into a fresh packed layout
    ({!compact}).  The merge is geometric, so the total compaction cost
    over [m] insertions is [O((n + m) log m)] — negligible next to even
    a single BFS per insertion, the access pattern of the greedy
    spanner loop.

    {b Ordering contract}: iteration enumerates the half-edges of a
    vertex in strictly decreasing edge-id order (newest first) — buffer
    chain first, then the packed slice.  This is exactly the order of
    the historical [(neighbor, id) list] adjacency, which greedy
    verdicts, BFS parents and the checked-in bench counters all depend
    on; {!compact}, {!convert} and both backends preserve it, so
    selections are bit-identical whichever backend holds the graph.

    {b Concurrency}: {!iter}, {!scanner}, {!find}, {!degree} never
    mutate; concurrent readers (e.g. the parallel batch decision phase)
    are safe.  {!add} may compact and replace the arrays — single
    writer, no concurrent readers during a write. *)

(** Packed-region storage backends. *)
type backend =
  | Int_array  (** native [int array]s — the default *)
  | Int32_bigarray  (** [int32] C-layout Bigarrays — half the words *)

(** [backend_name b] is ["int"] or ["int32"] (the CLI/bench spelling). *)
val backend_name : backend -> string

(** An [int32] C-layout Bigarray slice — the storage unit of the
    [Int32_bigarray] backend and of {!Graph_binio} mapped regions. *)
type i32 = (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t

(** {1 Construction} *)

(** [create ?backend n] is the empty adjacency over vertices [0 .. n-1].
    [backend] defaults to {!default_backend}. *)
val create : ?backend:backend -> int -> t

(** [add t u v id] records the half-edge [u -> v] with edge id [id].
    Amortized O(1); may trigger {!compact}.  Callers add both directions
    of an undirected edge.  No bounds or duplicate checks — {!Graph}
    validates — except the overflow guard: raises [Invalid_argument]
    when the half-edge count would exceed the backend's index range
    ({!max_half}) instead of wrapping around. *)
val add : t -> int -> int -> int -> unit

(** [convert b t] is an independent copy of [t] repacked into backend
    [b] (compacted first; the iteration order, and hence every verdict
    derived from it, is unchanged).  Raises [Invalid_argument] if [t]
    does not fit [b]'s index range. *)
val convert : backend -> t -> t

(** [copy t] is an independent deep copy (same backend). *)
val copy : t -> t

(** {1 Bulk constructors}

    For loaders ({!Graph_binio}) that already hold a packed layout and
    must not pay per-edge insertion.  Both validate shape — offsets
    monotone from 0 and covering [nbr]/[eid], neighbors in range —
    and raise [Invalid_argument] otherwise; edge-id semantics are
    checked by [Graph.of_adjacency].  The arrays are adopted, not
    copied: do not mutate them afterwards. *)

(** [of_packed_int ~off ~nbr ~eid] wraps a packed [Int_array] layout
    ([off] has [n+1] entries). *)
val of_packed_int : off:int array -> nbr:int array -> eid:int array -> t

(** [of_packed_i32 ~off ~nbr ~eid] wraps a packed [Int32_bigarray]
    layout — e.g. regions mapped straight from a binary graph file. *)
val of_packed_i32 : off:i32 -> nbr:i32 -> eid:i32 -> t

(** {1 Traversal} *)

(** [iter t u fn] applies [fn v id] to every half-edge of [u], newest
    first (see the ordering contract above). *)
val iter : t -> int -> (int -> int -> unit) -> unit

(** [scanner t] resolves the backend dispatch and array captures once
    and returns the per-vertex scan: [scan u fn] is {!iter}[ t u fn].
    The hot-loop idiom — build one scanner per traversal of an
    unchanging structure, re-build after any {!add} (compaction replaces
    the arrays wholesale). *)
val scanner : t -> int -> (int -> int -> unit) -> unit

(** [find t u v] is the id of the most recently added half-edge
    [u -> v], if any. *)
val find : t -> int -> int -> int option

(** [degree t u] is the number of half-edges of [u].  O(1). *)
val degree : t -> int -> int

(** {1 Storage accounting} *)

(** [backend t] is the backend holding [t]'s packed region. *)
val backend : t -> backend

(** [vertices t] is the vertex count [n]. *)
val vertices : t -> int

(** [half_edges t] is the total number of half-edges stored (twice the
    edge count). *)
val half_edges : t -> int

(** [resident_bytes t] is the resident size of [t]'s storage in bytes
    (packed region at the backend's width plus buffers and degrees).
    Also exported as the [gauge.graph.bytes.int]/[.int32] gauges,
    refreshed whenever an adjacency is (re)built. *)
val resident_bytes : t -> int

(** [max_half b] is the largest half-edge count backend [b] can index
    ([Sys.max_array_length] / [Int32.max_int]). *)
val max_half : backend -> int

(** The compaction trigger floor, in buffered half-edges (see {!add}). *)
val compaction_floor : int

(** {1 Process default}

    [Graph.create] picks {!default_backend} unless told otherwise;
    [set_default_backend] flips the whole process (the bench harness's
    [--backend int32] does this once at startup — counters stay
    bit-identical, only wall time and resident bytes move). *)

val set_default_backend : backend -> unit

val default_backend : unit -> backend

(** {1 Maintenance} *)

(** [buffered t] is the number of half-edges awaiting compaction
    (exposed for the compaction-invariant tests). *)
val buffered : t -> int

(** [compact t] merges the append buffer into the packed region; a no-op
    when the buffer is empty.  Iteration order is unchanged. *)
val compact : t -> unit
