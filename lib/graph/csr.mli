(** Incremental compressed-sparse-row (CSR) adjacency.

    The flat core behind {!Graph}: incident half-edges live in packed int
    arrays instead of cons lists, so the traversal inner loops ({!Bfs},
    {!Dijkstra}, {!Hop_dp}) walk contiguous memory.  Two regions hold the
    half-edges of a vertex [u]:

    - the {b packed region} — [nbr.(i)]/[eid.(i)] for
      [i] in [off.(u) .. off.(u+1) - 1], the classic CSR layout;
    - the {b append buffer} — a chain starting at [buf_head.(u)] through
      [buf_next], holding the half-edges added since the last compaction.

    {!add} appends into the buffer in O(1) and, once the buffer holds more
    than a quarter of the packed half-edges (with a constant floor),
    merges it into a fresh packed layout ({!compact}).  The merge is
    geometric, so the total compaction cost over [m] insertions is
    [O((n + m) log m)] — negligible next to even a single BFS per
    insertion, the access pattern of the greedy spanner loop.

    {b Ordering contract}: iteration enumerates the half-edges of a vertex
    in strictly decreasing edge-id order (newest first) — buffer chain
    first, then the packed slice.  This is exactly the order of the
    historical [(neighbor, id) list] adjacency, which greedy verdicts,
    BFS parents and the checked-in bench counters all depend on;
    {!compact} preserves it.

    {b Concurrency}: [iter], [find], [degree] and reads of the public
    fields never mutate; concurrent readers (e.g. the parallel batch
    decision phase) are safe.  [add] may compact and replace the arrays —
    single writer, no concurrent readers during a write. *)

type t = private {
  n : int;  (** vertex count, fixed at creation *)
  mutable off : int array;  (** [n + 1] slice offsets into [nbr]/[eid] *)
  mutable nbr : int array;  (** packed neighbor vertices *)
  mutable eid : int array;  (** packed edge ids, parallel to [nbr] *)
  mutable buf_head : int array;
      (** per-vertex head of the append-buffer chain, [-1] when empty *)
  mutable buf_nbr : int array;  (** buffered neighbor vertices *)
  mutable buf_eid : int array;  (** buffered edge ids *)
  mutable buf_next : int array;  (** chain links, [-1] terminated *)
  mutable buf_len : int;  (** half-edges currently buffered *)
  mutable deg : int array;  (** per-vertex degree (packed + buffered) *)
  mutable half : int;  (** total half-edges stored *)
}
(** Read-only view; hot loops index [off]/[nbr]/[eid] and walk the
    [buf_*] chains directly (see {!Bfs.search} for the idiom).  The
    arrays are replaced wholesale by {!add}-triggered compaction: capture
    them once per traversal of an unchanging structure, re-read after any
    [add]. *)

(** [create n] is the empty adjacency over vertices [0 .. n-1]. *)
val create : int -> t

(** [add t u v id] records the half-edge [u -> v] with edge id [id].
    Amortized O(1); may trigger {!compact}.  Callers add both directions
    of an undirected edge.  No bounds or duplicate checks — {!Graph}
    validates. *)
val add : t -> int -> int -> int -> unit

(** [iter t u fn] applies [fn v id] to every half-edge of [u], newest
    first (see the ordering contract above). *)
val iter : t -> int -> (int -> int -> unit) -> unit

(** [find t u v] is the id of the most recently added half-edge [u -> v],
    if any. *)
val find : t -> int -> int -> int option

(** [degree t u] is the number of half-edges of [u].  O(1). *)
val degree : t -> int -> int

(** [buffered t] is the number of half-edges awaiting compaction
    (exposed for the compaction-invariant tests). *)
val buffered : t -> int

(** [compact t] merges the append buffer into the packed region; a no-op
    when the buffer is empty.  Iteration order is unchanged. *)
val compact : t -> unit

(** [copy t] is an independent deep copy. *)
val copy : t -> t
