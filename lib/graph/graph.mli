(** Undirected, optionally weighted graphs with stable integer edge ids.

    This is the substrate shared by every algorithm in the library.
    Vertices are the integers [0 .. n-1], fixed at creation.  Edges are
    appended and receive consecutive ids [0 .. m-1]; ids are stable for the
    lifetime of the graph, which lets fault sets, spanner selections and
    blocked-edge masks all be represented as arrays indexed by edge id.

    Parallel edges and self-loops are rejected by {!add_edge}; spanner
    theory assumes simple graphs.  Weights default to [1.0]; a graph in
    which every weight equals [1.0] is treated as unweighted by algorithms
    that care about the distinction (see {!is_unit_weighted}).

    Adjacency is stored flat ({!Csr}: packed offset/neighbor/edge-id
    slices plus an append buffer for recent insertions), so traversal
    inner loops stream over contiguous memory rather than chasing cons
    cells.  The packed slices live in a pluggable storage {!Csr.backend}
    — native [int array]s by default, or compact [int32] Bigarrays
    ([Graph.create ~backend:Csr.Int32_bigarray], half the resident
    bytes, the landing zone for {!Graph_binio} binary loads).  Both
    backends expose the same iteration order, so every selection and
    counter is bit-identical whichever one holds the graph.  This module
    remains the construction and ownership layer: build and mutate
    through it, read through {!iter_neighbors} (or a {!Csr.scanner} over
    {!adjacency} in hot loops). *)

type edge = private {
  u : int;  (** smaller endpoint *)
  v : int;  (** larger endpoint *)
  w : float;  (** weight, [> 0] *)
  id : int;  (** position in insertion order *)
}

type t

(** {1 Construction} *)

(** [create ?backend n] is the edgeless graph on vertices [0..n-1].

    {b Migration note}: [?backend] selects the {!Csr} packed-storage
    backend and defaults to {!Csr.default_backend} (i.e.
    [Csr.Int_array] unless the process flipped it), so existing callers
    are unchanged.  Pass [~backend:Csr.Int32_bigarray] for the compact
    layout. *)
val create : ?backend:Csr.backend -> int -> t

(** [add_edge g u v ~w] appends the edge [{u,v}] with weight [w] and returns
    its id.  Raises [Invalid_argument] on self-loops, out-of-range
    endpoints, non-positive weights, or duplicate edges. *)
val add_edge : t -> int -> int -> w:float -> int

(** [add_edge_unit g u v] is [add_edge g u v ~w:1.0]. *)
val add_edge_unit : t -> int -> int -> int

(** [of_edges n pairs] builds a unit-weight graph from an edge list. *)
val of_edges : ?backend:Csr.backend -> int -> (int * int) list -> t

(** [of_weighted_edges n triples] builds a graph from [(u, v, w)] triples. *)
val of_weighted_edges : ?backend:Csr.backend -> int -> (int * int * float) list -> t

(** [of_adjacency ?weights adj] adopts a pre-built adjacency (typically
    from {!Csr.of_packed_i32} over file-mapped regions) and
    reconstructs the edge store in one linear pass — the bulk-load path
    that skips [add_edge]'s per-edge duplicate probe.  [weights.(id)]
    supplies edge weights (default all [1.0]).  Validates everything
    [add_edge] would have: raises [Invalid_argument] unless every id in
    [0, m) is exactly one undirected, non-loop, non-parallel edge with
    positive weight. *)
val of_adjacency : ?weights:float array -> Csr.t -> t

(** [copy g] is an independent copy sharing nothing mutable with [g]. *)
val copy : t -> t

(** [with_backend b g] is an independent copy of [g] with its adjacency
    repacked into backend [b] — same edge ids, same iteration order,
    hence bit-identical traversals and selections. *)
val with_backend : Csr.backend -> t -> t

(** {1 Accessors} *)

(** [n g] is the number of vertices. *)
val n : t -> int

(** [m g] is the number of edges. *)
val m : t -> int

(** [edge g id] returns the edge with the given id.  Raises
    [Invalid_argument] if [id] is out of range. *)
val edge : t -> int -> edge

(** [endpoints g id] is [(u, v)] of edge [id]. *)
val endpoints : t -> int -> int * int

(** [weight g id] is the weight of edge [id]. *)
val weight : t -> int -> float

(** [other_endpoint g id x] is the endpoint of edge [id] different from [x].
    Raises [Invalid_argument] if [x] is not an endpoint. *)
val other_endpoint : t -> int -> int -> int

(** [neighbors g u] lists [(v, edge_id)] for every edge incident to [u].
    The returned list is in reverse insertion order; treat it as a set.

    {b Migration note}: adjacency is no longer stored as lists, so this
    allocates a fresh list per call.  Code that used to walk
    [Graph.neighbors] should iterate with {!iter_neighbors} (same order,
    allocation-free) or, in traversal inner loops, index the {!adjacency}
    slices directly. *)
val neighbors : t -> int -> (int * int) list

(** [degree g u] is the number of edges incident to [u]. *)
val degree : t -> int -> int

(** [mem_edge g u v] tests whether the edge [{u,v}] is present. *)
val mem_edge : t -> int -> int -> bool

(** [find_edge g u v] returns the id of edge [{u,v}] if present. *)
val find_edge : t -> int -> int -> int option

(** {1 Iteration} *)

(** [iter_edges g fn] applies [fn] to every edge in insertion order. *)
val iter_edges : t -> (edge -> unit) -> unit

(** [fold_edges g init fn] folds [fn] over edges in insertion order. *)
val fold_edges : t -> 'a -> ('a -> edge -> 'a) -> 'a

(** [edge_array g] is a fresh array of all edges in insertion order. *)
val edge_array : t -> edge array

(** [iter_neighbors g u fn] applies [fn v edge_id] for each edge incident to
    [u].  Allocation-free; preferred in inner loops. *)
val iter_neighbors : t -> int -> (int -> int -> unit) -> unit

(** [adjacency g] is the live flat adjacency ({!Csr.t}) of [g], for
    traversals that scan with a {!Csr.scanner} ({!Bfs}, {!Dijkstra},
    {!Hop_dp}).  Read-only: the arrays are replaced wholesale by the
    next {!add_edge}-triggered compaction, so build one scanner per
    traversal and re-build after any mutation. *)
val adjacency : t -> Csr.t

(** [backend g] is the storage backend of [g]'s adjacency. *)
val backend : t -> Csr.backend

(** [resident_bytes g] is the resident size of [g]'s adjacency storage
    in bytes (see {!Csr.resident_bytes}; the edge store is excluded —
    it is backend-independent). *)
val resident_bytes : t -> int

(** {1 Aggregates} *)

(** [total_weight g] is the sum of all edge weights. *)
val total_weight : t -> float

(** [max_degree g] is the largest vertex degree ([0] for edgeless). *)
val max_degree : t -> int

(** [is_unit_weighted g] is [true] when every edge has weight [1.0]. *)
val is_unit_weighted : t -> bool

(** {1 Printing} *)

(** [pp] prints a short summary ["graph(n=.., m=..)"]. *)
val pp : Format.formatter -> t -> unit

(** [pp_edge] prints an edge as ["{u,v} w=.. #id"]. *)
val pp_edge : Format.formatter -> edge -> unit
