(** Plain-text graph serialization.

    Format (one record per line, [#] starts a comment):
    {v
    p <n> <m>
    e <u> <v> <w>
    v}
    The [p] line must come first; exactly [m] edge lines follow.  Weights
    are optional on read (default [1.0]). *)

(** [to_string g] serializes [g]. *)
val to_string : Graph.t -> string

(** [of_string s] parses a graph.  Raises [Failure] with a line-numbered
    message on malformed input. *)
val of_string : string -> Graph.t

(** [save g file] writes [to_string g] to [file]. *)
val save : Graph.t -> string -> unit

(** [load file] reads and parses [file]. *)
val load : string -> Graph.t

(** [to_dot ?highlight g] renders Graphviz source for [g] ([graph { ... }]
    with weights as labels).  Edges whose id is set in [highlight] are
    drawn bold/colored — pass a spanner's [Selection.selected] mask to
    visualize which edges survived sparsification. *)
val to_dot : ?highlight:bool array -> Graph.t -> string
