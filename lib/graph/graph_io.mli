(** Plain-text graph serialization (with binary dispatch by extension).

    Format (one record per line, [#] starts a comment):
    {v
    p <n> <m>
    e <u> <v> <w>
    v}
    The [p] line must come first; exactly [m] edge lines follow.  Weights
    are optional on read (default [1.0]).

    Files named [*.ftsb] are the binary [ftspan.graph.v1] format:
    {!save} and {!load} dispatch on the extension, delegating to
    {!Graph_binio} (whose {!Graph_binio.Not_a_graph} /
    {!Graph_binio.Corrupt} exceptions then replace the [Failure]s
    documented below). *)

(** The extension that selects the binary format, [".ftsb"]. *)
val binary_suffix : string

(** [to_string g] serializes [g] as text. *)
val to_string : Graph.t -> string

(** [of_string s] parses a text graph.  Raises [Failure] with a
    line-numbered message on malformed input.  [backend] selects the
    adjacency storage (default {!Csr.default_backend}). *)
val of_string : ?backend:Csr.backend -> string -> Graph.t

(** [save g file] writes [g] to [file] — text, streamed edge-by-edge
    (peak memory is one line, not the whole serialization), or binary
    when [file] ends in {!binary_suffix}. *)
val save : Graph.t -> string -> unit

(** [load ?backend file] reads [file] — text, streamed line-by-line, or
    binary when [file] ends in {!binary_suffix}.  Text-parse [Failure]
    messages are prefixed with the file name
    (["Graph_io: FILE: line N: ..."]). *)
val load : ?backend:Csr.backend -> string -> Graph.t

(** [to_dot ?highlight g] renders Graphviz source for [g] ([graph { ... }]
    with weights as labels).  Edges whose id is set in [highlight] are
    drawn bold/colored — pass a spanner's [Selection.selected] mask to
    visualize which edges survived sparsification. *)
val to_dot : ?highlight:bool array -> Graph.t -> string
