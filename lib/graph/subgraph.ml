type t = {
  graph : Graph.t;
  to_parent_vertex : int array;
  of_parent_vertex : int array;
  to_parent_edge : int array;
}

let induced_mask g keep =
  let n = Graph.n g in
  let of_parent = Array.make n (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if v < Array.length keep && keep.(v) then begin
      of_parent.(v) <- !count;
      incr count
    end
  done;
  let to_parent = Array.make !count 0 in
  for v = 0 to n - 1 do
    if of_parent.(v) >= 0 then to_parent.(of_parent.(v)) <- v
  done;
  (* Count surviving edges up front and fill the id map in place: sub
     edge ids are consecutive in insertion order, so the map slot of an
     edge is exactly the id [add_edge] hands back. *)
  let kept = ref 0 in
  Graph.iter_edges g (fun e ->
      if of_parent.(e.Graph.u) >= 0 && of_parent.(e.Graph.v) >= 0 then incr kept);
  let sub = Graph.create ~backend:(Graph.backend g) !count in
  let to_parent_edge = Array.make !kept (-1) in
  Graph.iter_edges g (fun e ->
      let su = of_parent.(e.Graph.u) and sv = of_parent.(e.Graph.v) in
      if su >= 0 && sv >= 0 then
        to_parent_edge.(Graph.add_edge sub su sv ~w:e.Graph.w) <- e.Graph.id);
  { graph = sub; to_parent_vertex = to_parent; of_parent_vertex = of_parent; to_parent_edge }

let induced g vertices =
  let keep = Array.make (Graph.n g) false in
  List.iter (fun v -> keep.(v) <- true) vertices;
  induced_mask g keep

let of_edge_subset g keep =
  let n = Graph.n g in
  let wanted e = e.Graph.id < Array.length keep && keep.(e.Graph.id) in
  let kept = ref 0 in
  Graph.iter_edges g (fun e -> if wanted e then incr kept);
  let sub = Graph.create ~backend:(Graph.backend g) n in
  let to_parent_edge = Array.make !kept (-1) in
  Graph.iter_edges g (fun e ->
      if wanted e then
        to_parent_edge.(Graph.add_edge sub e.Graph.u e.Graph.v ~w:e.Graph.w) <-
          e.Graph.id);
  {
    graph = sub;
    to_parent_vertex = Array.init n (fun i -> i);
    of_parent_vertex = Array.init n (fun i -> i);
    to_parent_edge;
  }
