(** Simple paths extracted by the search routines.

    A path records both its vertex sequence and the ids of the edges it
    traverses; the greedy fault-tolerant spanner algorithms need both (the
    vertex version of Length-Bounded Cut blocks interior vertices, the edge
    version blocks edge ids). *)

type t = {
  vertices : int list;  (** [src; ...; dst], length [hops + 1] *)
  edges : int list;  (** edge ids in traversal order, length [hops] *)
}

(** [hops p] is the number of edges on [p]. *)
val hops : t -> int

(** [source p] and [target p] are the endpoints.  Raise [Invalid_argument]
    on the empty path. *)
val source : t -> int

val target : t -> int

(** [interior p] is the vertex list with both endpoints removed — exactly
    the vertices a length-bounded {e vertex} cut is allowed to delete. *)
val interior : t -> int list

(** [weight g p] is the total weight of [p]'s edges in graph [g]. *)
val weight : Graph.t -> t -> float

(** [is_valid g p] checks that consecutive vertices are joined by the listed
    edges of [g] and that the path is non-empty and self-consistent. *)
val is_valid : Graph.t -> t -> bool

val pp : Format.formatter -> t -> unit
