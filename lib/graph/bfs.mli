(** Breadth-first search under fault masks.

    These routines power Algorithm 2 of the paper (the Length-Bounded Cut
    approximation), whose inner loop is "find a path of at most [t] hops
    from [u] to [v] avoiding the current fault set".  Fault sets are
    represented as boolean masks indexed by vertex or edge id, so a single
    BFS costs [O(m + n)] regardless of the mask.

    The hop-bounded search accepts a reusable {!Workspace.t}: the greedy
    spanner algorithm performs [Theta(m * f)] searches, and reusing scratch
    arrays (with stamp-based visited marks, so nothing is cleared between
    calls) keeps each search allocation-free. *)

module Workspace : sig
  type t

  (** [create ()] allocates an empty workspace; it grows lazily to fit the
      largest graph it is used with. *)
  val create : unit -> t
end

(** [hop_bounded_path ?ws ?blocked_vertices ?blocked_edges g ~src ~dst
    ~max_hops] returns a path from [src] to [dst] with a minimum number of
    hops, provided that minimum is at most [max_hops]; [None] otherwise.

    A vertex [x] with [blocked_vertices.(x) = true] is never visited (if
    [src] or [dst] is blocked the result is [None]); an edge [id] with
    [blocked_edges.(id) = true] is never traversed.  Masks may be longer
    than [n g] / [m g]; extra entries are ignored. *)
val hop_bounded_path :
  ?ws:Workspace.t ->
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  src:int ->
  dst:int ->
  max_hops:int ->
  Path.t option

(** [distances ?blocked_vertices ?blocked_edges g src] returns the array of
    hop distances from [src]; unreachable (or blocked) vertices get [-1]. *)
val distances :
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  int ->
  int array

(** [hop_distance g u v] is the unweighted distance, [None] if
    disconnected. *)
val hop_distance : Graph.t -> int -> int -> int option

(** [eccentricity g u] is the largest hop distance from [u] to any vertex
    reachable from [u]. *)
val eccentricity : Graph.t -> int -> int
