(** Girth of unweighted graphs.

    The size analysis of every greedy spanner rests on the Moore bound:
    a graph with girth greater than [2k] has at most [O(n^{1+1/k})] edges.
    The classic greedy (2k-1)-spanner has girth exceeding [2k] by
    construction — a property the test suite checks with this module. *)

(** [girth g] is the length of a shortest cycle of [g] (ignoring weights),
    or [None] if [g] is a forest.  Runs BFS from every vertex: exact in
    [O(n * m)]. *)
val girth : Graph.t -> int option

(** [girth_exceeds g ~bound] is [true] iff [g] has no cycle of length
    [<= bound].  Faster than {!girth} when [bound] is small because each
    BFS is truncated at depth [bound/2 + 1]. *)
val girth_exceeds : Graph.t -> bound:int -> bool
