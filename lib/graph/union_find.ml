type t = { parent : int array; rank : int array; mutable sets : int }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0; sets = n }

let rec find uf x =
  let p = uf.parent.(x) in
  if p = x then x
  else begin
    let root = find uf p in
    uf.parent.(x) <- root;
    root
  end

let union uf x y =
  let rx = find uf x and ry = find uf y in
  if rx = ry then false
  else begin
    let rx, ry = if uf.rank.(rx) < uf.rank.(ry) then (ry, rx) else (rx, ry) in
    uf.parent.(ry) <- rx;
    if uf.rank.(rx) = uf.rank.(ry) then uf.rank.(rx) <- uf.rank.(rx) + 1;
    uf.sets <- uf.sets - 1;
    true
  end

let same uf x y = find uf x = find uf y

let count uf = uf.sets
