let vertex_blocked mask x =
  match mask with
  | None -> false
  | Some a -> x < Array.length a && a.(x)

let labels ?blocked_vertices ?blocked_edges g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let queue = Array.make n 0 in
  let next = ref 0 in
  for s = 0 to n - 1 do
    if label.(s) < 0 && not (vertex_blocked blocked_vertices s) then begin
      let c = !next in
      incr next;
      label.(s) <- c;
      queue.(0) <- s;
      let head = ref 0 and tail = ref 1 in
      while !head < !tail do
        let x = queue.(!head) in
        incr head;
        let visit y id =
          let edge_ok =
            match blocked_edges with
            | None -> true
            | Some a -> not (id < Array.length a && a.(id))
          in
          if label.(y) < 0 && edge_ok && not (vertex_blocked blocked_vertices y)
          then begin
            label.(y) <- c;
            queue.(!tail) <- y;
            incr tail
          end
        in
        Graph.iter_neighbors g x visit
      done
    end
  done;
  (label, !next)

let count g = snd (labels g)

let is_connected g = Graph.n g <= 1 || count g = 1

let same_component g u v =
  let label, _ = labels g in
  label.(u) >= 0 && label.(u) = label.(v)
