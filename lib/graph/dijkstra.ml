(* Work counters flushed once per run; accumulation inside the loop is
   local (see Bfs for the pattern). *)
let m_runs = Obs.counter "dijkstra.runs"
let m_settled = Obs.counter "dijkstra.nodes_settled"
let m_relaxed = Obs.counter "dijkstra.edges_relaxed"

let vertex_blocked mask x =
  match mask with
  | None -> false
  | Some a -> x < Array.length a && a.(x)

let edge_blocked mask id =
  match mask with
  | None -> false
  | Some a -> id < Array.length a && a.(id)

(* Shared core: Dijkstra with lazy deletion.  Stops early when [stop_at]
   is settled or the frontier key exceeds [cutoff].  Fills [dist] and
   [parent_edge]/[parent_vertex] when provided. *)
let run ?blocked_vertices ?blocked_edges ?parent_edge ?parent_vertex
    ?(cutoff = infinity) ?stop_at g src dist =
  let scan = Csr.scanner (Graph.adjacency g) in
  let heap = Pqueue.create ~capacity:(Graph.n g) in
  if not (vertex_blocked blocked_vertices src) then begin
    dist.(src) <- 0.;
    Pqueue.push heap 0. src
  end;
  let settled = Array.make (Graph.n g) false in
  let stop = ref false in
  let n_settled = ref 0 and n_relaxed = ref 0 in
  while (not !stop) && not (Pqueue.is_empty heap) do
    match Pqueue.pop_min heap with
    | None -> stop := true
    | Some (d, x) ->
        if not settled.(x) then begin
          settled.(x) <- true;
          incr n_settled;
          if d > cutoff then stop := true
          else if Some x = stop_at then stop := true
          else begin
            let relax y id =
              incr n_relaxed;
              if
                (not settled.(y))
                && (not (edge_blocked blocked_edges id))
                && not (vertex_blocked blocked_vertices y)
              then begin
                let nd = d +. Graph.weight g id in
                if nd < dist.(y) && nd <= cutoff then begin
                  dist.(y) <- nd;
                  (match parent_edge with Some a -> a.(y) <- id | None -> ());
                  (match parent_vertex with Some a -> a.(y) <- x | None -> ());
                  Pqueue.push heap nd y
                end
              end
            in
            scan x relax
          end
        end
  done;
  Obs.Counter.incr m_runs;
  Obs.Counter.add m_settled !n_settled;
  Obs.Counter.add m_relaxed !n_relaxed

let distances ?blocked_vertices ?blocked_edges g src =
  let dist = Array.make (Graph.n g) infinity in
  run ?blocked_vertices ?blocked_edges g src dist;
  dist

let distance_upto ?blocked_vertices ?blocked_edges g ~src ~dst ~cutoff =
  if vertex_blocked blocked_vertices src || vertex_blocked blocked_vertices dst
  then None
  else if src = dst then Some 0.
  else begin
    let dist = Array.make (Graph.n g) infinity in
    run ?blocked_vertices ?blocked_edges ~cutoff ~stop_at:dst g src dist;
    if dist.(dst) <= cutoff then Some dist.(dst) else None
  end

let shortest_path ?blocked_vertices ?blocked_edges g ~src ~dst =
  if vertex_blocked blocked_vertices src || vertex_blocked blocked_vertices dst
  then None
  else if src = dst then Some { Path.vertices = [ src ]; edges = [] }
  else begin
    let n = Graph.n g in
    let dist = Array.make n infinity in
    let parent_edge = Array.make n (-1) in
    let parent_vertex = Array.make n (-1) in
    run ?blocked_vertices ?blocked_edges ~parent_edge ~parent_vertex
      ~stop_at:dst g src dist;
    if dist.(dst) = infinity then None
    else begin
      let rec climb x vertices edges =
        if x = src then Some { Path.vertices = src :: vertices; edges }
        else climb parent_vertex.(x) (x :: vertices) (parent_edge.(x) :: edges)
      in
      climb dst [] []
    end
  end
