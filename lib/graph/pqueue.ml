type t = {
  mutable keys : float array;
  mutable payloads : int array;
  mutable len : int;
}

let create ~capacity =
  let cap = max 8 capacity in
  { keys = Array.make cap 0.; payloads = Array.make cap 0; len = 0 }

let is_empty h = h.len = 0
let length h = h.len
let clear h = h.len <- 0

let grow h =
  let cap = Array.length h.keys in
  if h.len = cap then begin
    let keys = Array.make (2 * cap) 0. and payloads = Array.make (2 * cap) 0 in
    Array.blit h.keys 0 keys 0 cap;
    Array.blit h.payloads 0 payloads 0 cap;
    h.keys <- keys;
    h.payloads <- payloads
  end

let swap h i j =
  let k = h.keys.(i) and p = h.payloads.(i) in
  h.keys.(i) <- h.keys.(j);
  h.payloads.(i) <- h.payloads.(j);
  h.keys.(j) <- k;
  h.payloads.(j) <- p

let push h key payload =
  grow h;
  let i = ref h.len in
  h.keys.(!i) <- key;
  h.payloads.(!i) <- payload;
  h.len <- h.len + 1;
  while !i > 0 && h.keys.((!i - 1) / 2) > h.keys.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop_min h =
  if h.len = 0 then None
  else begin
    let key = h.keys.(0) and payload = h.payloads.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.keys.(0) <- h.keys.(h.len);
      h.payloads.(0) <- h.payloads.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && h.keys.(l) < h.keys.(!smallest) then smallest := l;
        if r < h.len && h.keys.(r) < h.keys.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          swap h !i !smallest;
          i := !smallest
        end
      done
    end;
    Some (key, payload)
  end
