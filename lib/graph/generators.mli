(** Graph generators: the workload suite for every experiment.

    The paper's algorithms are input-agnostic, so the evaluation sweeps
    standard families: Erdős–Rényi graphs (the main density-controlled
    family), structured graphs (grids, tori, hypercubes — good for
    distributed experiments because their diameter is known), geometric
    graphs (the historical home of fault-tolerant spanners), preferential-
    attachment and planted-partition graphs (skewed degree / community
    structure), and random regular graphs.

    All randomized generators take an explicit {!Rng.t}.  Generated graphs
    are always simple; unless a weights option says otherwise they are
    unit-weighted. *)

(** {1 Deterministic families} *)

(** [complete n] is K_n (unit weights). *)
val complete : int -> Graph.t

(** [path n] is the path on [n] vertices. *)
val path : int -> Graph.t

(** [cycle n] is the cycle on [n >= 3] vertices. *)
val cycle : int -> Graph.t

(** [grid ~rows ~cols] is the [rows x cols] grid; vertex [(r,c)] has index
    [r * cols + c]. *)
val grid : rows:int -> cols:int -> Graph.t

(** [torus ~rows ~cols] is the grid with wraparound edges (requires
    [rows >= 3] and [cols >= 3] to stay simple). *)
val torus : rows:int -> cols:int -> Graph.t

(** [hypercube ~dim] is the [dim]-dimensional boolean hypercube on [2^dim]
    vertices. *)
val hypercube : dim:int -> Graph.t

(** {1 Random families} *)

(** [gnp rng ~n ~p] is an Erdős–Rényi graph: each of the [C(n,2)] edges
    appears independently with probability [p]. *)
val gnp : Rng.t -> n:int -> p:float -> Graph.t

(** [gnm rng ~n ~m] draws [m] distinct edges uniformly at random.  Requires
    [m <= C(n,2)]. *)
val gnm : Rng.t -> n:int -> m:int -> Graph.t

(** [random_geometric rng ~n ~radius ~euclidean_weights] scatters [n] points
    uniformly in the unit square and joins points at Euclidean distance
    [<= radius]; if [euclidean_weights] then each edge is weighted by that
    distance, otherwise unit weights. *)
val random_geometric :
  Rng.t -> n:int -> radius:float -> euclidean_weights:bool -> Graph.t

(** [barabasi_albert rng ~n ~attach] grows a preferential-attachment graph:
    starts from a clique on [attach + 1] vertices, then each new vertex
    attaches to [attach] distinct existing vertices chosen proportionally
    to degree. *)
val barabasi_albert : Rng.t -> n:int -> attach:int -> Graph.t

(** [random_regular rng ~n ~d] samples a simple [d]-regular graph by the
    configuration model with restarts.  Requires [n * d] even and
    [d < n]. *)
val random_regular : Rng.t -> n:int -> d:int -> Graph.t

(** [cycle_with_chords rng ~n ~chords] is a Hamiltonian cycle plus [chords]
    random chords — a highly fault-tolerant family with girth control. *)
val cycle_with_chords : Rng.t -> n:int -> chords:int -> Graph.t

(** [planted_partition rng ~blocks ~block_size ~p_in ~p_out] is the
    stochastic block model with equal-size blocks. *)
val planted_partition :
  Rng.t -> blocks:int -> block_size:int -> p_in:float -> p_out:float -> Graph.t

(** {1 Transformations} *)

(** [with_uniform_weights rng g ~lo ~hi] is a copy of [g] whose weights are
    redrawn uniformly from [[lo, hi]]. *)
val with_uniform_weights : Rng.t -> Graph.t -> lo:float -> hi:float -> Graph.t

(** [ensure_connected rng g] is a copy of [g] plus a uniformly random edge
    between components until connected (no-op if already connected). *)
val ensure_connected : Rng.t -> Graph.t -> Graph.t

(** [connected_gnp rng ~n ~p] is [ensure_connected] of [gnp] — the workhorse
    input for the size-scaling experiments. *)
val connected_gnp : Rng.t -> n:int -> p:float -> Graph.t
