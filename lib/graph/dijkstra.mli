(** Weighted shortest paths under fault masks.

    Used by the classic (non-fault-tolerant) greedy spanner, the
    exponential-time greedy baseline, and the verifier, all of which need
    weighted distances in a graph with some vertices/edges removed. *)

(** [distances ?blocked_vertices ?blocked_edges g src] returns weighted
    distances from [src]; unreachable (or blocked) vertices get
    [infinity]. *)
val distances :
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  int ->
  float array

(** [distance_upto ?blocked_vertices ?blocked_edges g ~src ~dst ~cutoff]
    returns [Some d] if the shortest-path distance [d] from [src] to [dst]
    satisfies [d <= cutoff], and [None] otherwise.  The search stops as
    soon as the frontier exceeds [cutoff], which makes the greedy spanner's
    "is this edge already spanned?" test cheap on sparse partial
    spanners. *)
val distance_upto :
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  src:int ->
  dst:int ->
  cutoff:float ->
  float option

(** [shortest_path ?blocked_vertices ?blocked_edges g ~src ~dst] returns a
    lowest-weight path, if one exists. *)
val shortest_path :
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  src:int ->
  dst:int ->
  Path.t option
