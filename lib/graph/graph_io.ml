let binary_suffix = ".ftsb"

let add_edge_line buf e =
  Buffer.add_string buf
    (Printf.sprintf "e %d %d %.12g\n" e.Graph.u e.Graph.v e.Graph.w)

let to_string g =
  let buf = Buffer.create (64 + (Graph.m g * 16)) in
  Buffer.add_string buf (Printf.sprintf "p %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun e -> add_edge_line buf e);
  Buffer.contents buf

(* One text record.  [fail] receives the 1-based line number so callers
   can prefix whatever location context they have (file name for [load],
   nothing for [of_string]). *)
let parse_line ?backend ~fail graph line_no line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then ()
  else
    match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
    | [ "p"; n; _m ] -> (
        if !graph <> None then fail line_no "duplicate p line";
        match int_of_string_opt n with
        | Some n when n >= 0 -> graph := Some (Graph.create ?backend n)
        | _ -> fail line_no "bad vertex count")
    | "e" :: u :: v :: rest -> (
        match !graph with
        | None -> fail line_no "edge before p line"
        | Some g -> (
            let w =
              match rest with
              | [] -> Some 1.0
              | [ w ] -> float_of_string_opt w
              | _ -> None
            in
            match (int_of_string_opt u, int_of_string_opt v, w) with
            | Some u, Some v, Some w -> (
                try ignore (Graph.add_edge g u v ~w)
                with Invalid_argument msg -> fail line_no msg)
            | _ -> fail line_no "bad edge line"))
    | _ -> fail line_no "unrecognized record"

let of_string ?backend s =
  let lines = String.split_on_char '\n' s in
  let graph = ref None in
  let fail line_no msg =
    failwith (Printf.sprintf "Graph_io: line %d: %s" line_no msg)
  in
  List.iteri (fun i line -> parse_line ?backend ~fail graph (i + 1) line) lines;
  match !graph with
  | Some g -> g
  | None -> failwith "Graph_io: missing p line"

let save g file =
  if Filename.check_suffix file binary_suffix then Graph_binio.save g file
  else begin
    let oc = open_out file in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        Printf.fprintf oc "p %d %d\n" (Graph.n g) (Graph.m g);
        Graph.iter_edges g (fun e ->
            Printf.fprintf oc "e %d %d %.12g\n" e.Graph.u e.Graph.v e.Graph.w))
  end

let load ?backend file =
  if Filename.check_suffix file binary_suffix then Graph_binio.load ?backend file
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        (* Stream line-by-line: peak memory is the graph plus one line,
           not the graph plus the whole file. *)
        let graph = ref None in
        let fail line_no msg =
          failwith (Printf.sprintf "Graph_io: %s: line %d: %s" file line_no msg)
        in
        let line_no = ref 0 in
        (try
           while true do
             let line = input_line ic in
             incr line_no;
             parse_line ?backend ~fail graph !line_no line
           done
         with End_of_file -> ());
        match !graph with
        | Some g -> g
        | None -> failwith (Printf.sprintf "Graph_io: %s: missing p line" file))
  end

let to_dot ?highlight g =
  let buf = Buffer.create (128 + (Graph.m g * 32)) in
  Buffer.add_string buf "graph ftspan {\n  node [shape=circle, fontsize=10];\n";
  let unit_graph = Graph.is_unit_weighted g in
  Graph.iter_edges g (fun e ->
      let marked =
        match highlight with
        | Some mask -> e.Graph.id < Array.length mask && mask.(e.Graph.id)
        | None -> false
      in
      let label =
        if unit_graph then "" else Printf.sprintf " label=\"%.3g\"" e.Graph.w
      in
      let style = if marked then " color=\"#1f77b4\" penwidth=2.0" else " color=gray" in
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [%s%s];\n" e.Graph.u e.Graph.v
           (String.trim (label ^ style))
           ""));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
