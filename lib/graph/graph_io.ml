let to_string g =
  let buf = Buffer.create (64 + (Graph.m g * 16)) in
  Buffer.add_string buf (Printf.sprintf "p %d %d\n" (Graph.n g) (Graph.m g));
  Graph.iter_edges g (fun e ->
      Buffer.add_string buf (Printf.sprintf "e %d %d %.12g\n" e.Graph.u e.Graph.v e.Graph.w));
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let graph = ref None in
  let fail line_no msg = failwith (Printf.sprintf "Graph_io: line %d: %s" line_no msg) in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      let line = String.trim line in
      if line = "" || line.[0] = '#' then ()
      else
        match String.split_on_char ' ' line |> List.filter (fun t -> t <> "") with
        | [ "p"; n; _m ] -> (
            if !graph <> None then fail line_no "duplicate p line";
            match int_of_string_opt n with
            | Some n when n >= 0 -> graph := Some (Graph.create n)
            | _ -> fail line_no "bad vertex count")
        | "e" :: u :: v :: rest -> (
            match !graph with
            | None -> fail line_no "edge before p line"
            | Some g -> (
                let w =
                  match rest with
                  | [] -> Some 1.0
                  | [ w ] -> float_of_string_opt w
                  | _ -> None
                in
                match (int_of_string_opt u, int_of_string_opt v, w) with
                | Some u, Some v, Some w -> (
                    try ignore (Graph.add_edge g u v ~w)
                    with Invalid_argument msg -> fail line_no msg)
                | _ -> fail line_no "bad edge line"))
        | _ -> fail line_no "unrecognized record")
    lines;
  match !graph with
  | Some g -> g
  | None -> failwith "Graph_io: missing p line"

let save g file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let bytes = really_input_string ic len in
      of_string bytes)

let to_dot ?highlight g =
  let buf = Buffer.create (128 + (Graph.m g * 32)) in
  Buffer.add_string buf "graph ftspan {\n  node [shape=circle, fontsize=10];\n";
  let unit_graph = Graph.is_unit_weighted g in
  Graph.iter_edges g (fun e ->
      let marked =
        match highlight with
        | Some mask -> e.Graph.id < Array.length mask && mask.(e.Graph.id)
        | None -> false
      in
      let label =
        if unit_graph then "" else Printf.sprintf " label=\"%.3g\"" e.Graph.w
      in
      let style = if marked then " color=\"#1f77b4\" penwidth=2.0" else " color=gray" in
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [%s%s];\n" e.Graph.u e.Graph.v
           (String.trim (label ^ style))
           ""));
  Buffer.add_string buf "}\n";
  Buffer.contents buf
