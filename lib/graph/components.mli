(** Connected components (optionally under fault masks). *)

(** [labels ?blocked_vertices ?blocked_edges g] assigns each vertex a
    component label in [0 .. count-1]; blocked vertices get [-1]. *)
val labels :
  ?blocked_vertices:bool array ->
  ?blocked_edges:bool array ->
  Graph.t ->
  int array * int

(** [count g] is the number of connected components. *)
val count : Graph.t -> int

(** [is_connected g] tests global connectivity (vacuously true for
    [n <= 1]). *)
val is_connected : Graph.t -> bool

(** [same_component g u v] tests whether [u] and [v] are connected. *)
val same_component : Graph.t -> int -> int -> bool
